package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artefact and every DESIGN.md ablation must be
	// registered.
	want := []string{
		"fig2a", "fig2b", "fig8", "fig9", "fig10", "fig11", "tab1",
		"fig12", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22", "fig23",
		"abl-substrate", "abl-layers", "abl-sweep", "abl-sync", "abl-baseline",
		"abl-yield",
		"ext-900mhz", "ext-multilink", "ext-throughput", "ext-schedule",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	for _, id := range IDs() {
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "nope", 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	r.AddRow(1, 2)
	r.AddNote("hello %d", 7)
	if len(r.Rows) != 1 || r.Notes[0] != "hello 7" {
		t.Error("helpers broken")
	}
	col := r.Column(1)
	if len(col) != 1 || col[0] != 2 {
		t.Errorf("column = %v", col)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: t", "a", "b", "1.00", "2.00", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAddRowArityPanics(t *testing.T) {
	r := &Result{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("bad arity should panic")
		}
	}()
	r.AddRow(1)
}

func TestFormatCell(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "—",
		math.Inf(1):  "+inf",
		math.Inf(-1): "-inf",
		0.001:        "1.00e-03",
		3.14159:      "3.14",
		2.5e7:        "2.5e+07",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFig2aShapes(t *testing.T) {
	res, err := Run(context.Background(), "fig2a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// Histogram masses both ≈100%.
	var mMass, xMass float64
	for _, row := range res.Rows {
		mMass += row[1]
		xMass += row[2]
	}
	if math.Abs(mMass-100) > 1 || math.Abs(xMass-100) > 1 {
		t.Errorf("histogram masses %v / %v", mMass, xMass)
	}
	// Matched distribution should sit right of mismatched: compare the
	// mass-weighted means.
	var mMean, xMean float64
	for _, row := range res.Rows {
		mMean += row[0] * row[1] / 100
		xMean += row[0] * row[2] / 100
	}
	if mMean-xMean < 5 {
		t.Errorf("fig2a gap = %v dB, want ≥ 5", mMean-xMean)
	}
}

func TestFigs8to10Ordering(t *testing.T) {
	rog, err := Run(context.Background(), "fig8", 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(context.Background(), "fig9", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(context.Background(), "fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(r *Result) float64 { return maxIn(r.Column(1)) }
	if !(peak(rog) > peak(naive)+10) {
		t.Errorf("Rogers %.1f dB should dwarf naive FR4 %.1f dB", peak(rog), peak(naive))
	}
	if math.Abs(peak(opt)-peak(rog)) > 3.5 {
		t.Errorf("optimized FR4 %.1f dB should be comparable to Rogers %.1f dB", peak(opt), peak(rog))
	}
}

func TestTable1Range(t *testing.T) {
	res, err := Run(context.Background(), "tab1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 || len(res.Columns) != 8 {
		t.Fatalf("table shape %dx%d", len(res.Rows), len(res.Columns))
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range res.Rows {
		for _, v := range row[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if min > 3 || max < 40 || max > 62 {
		t.Errorf("rotation range %.1f–%.1f°, want ≈2–49°", min, max)
	}
}

func TestFig16HeadlineGain(t *testing.T) {
	res, err := Run(context.Background(), "fig16", 1)
	if err != nil {
		t.Fatal(err)
	}
	gains := res.Column(3)
	if maxIn(gains) < 8 {
		t.Errorf("max transmissive gain %.1f dB, want ≥ 8 (paper: 15)", maxIn(gains))
	}
	if minIn(gains) < -3 {
		t.Errorf("surface made a distance worse by %.1f dB", -minIn(gains))
	}
}

func TestFig17AllBandGain(t *testing.T) {
	res, err := Run(context.Background(), "fig17", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Errorf("rows = %d, want 11 (2.40–2.50 step 0.01)", len(res.Rows))
	}
	if minIn(res.Column(3)) < 5 {
		t.Errorf("min in-band gain %.1f dB, want ≥ 5 (paper: >10)", minIn(res.Column(3)))
	}
}

func TestFig18SurfaceHelps(t *testing.T) {
	res, err := Run(context.Background(), "fig18", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[1] < row[2] {
			t.Errorf("absorber omni: surface hurts at %v mW (%v vs %v)", row[0], row[1], row[2])
		}
		if row[3] < row[4] {
			t.Errorf("absorber directional: surface hurts at %v mW", row[0])
		}
	}
	// Monotone growth with power for the with-surface curve.
	prev := -1.0
	for _, row := range res.Rows {
		if row[1] < prev-0.05 {
			t.Errorf("omni capacity not monotone at %v mW", row[0])
		}
		prev = row[1]
	}
}

func TestFig19DirectionalRobust(t *testing.T) {
	res, err := Run(context.Background(), "fig19", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Directional: surface should help at high power even in multipath.
	last := res.Rows[len(res.Rows)-1]
	if last[3] < last[4] {
		t.Errorf("directional multipath: surface hurts at 1 W (%v vs %v)", last[3], last[4])
	}
}

func TestFig22ReflectiveGain(t *testing.T) {
	res, err := Run(context.Background(), "fig22", 1)
	if err != nil {
		t.Fatal(err)
	}
	if maxIn(res.Column(3)) < 10 {
		t.Errorf("max reflective gain %.1f dB, want ≥ 10 (paper: 17)", maxIn(res.Column(3)))
	}
}

func TestFig23Detection(t *testing.T) {
	res, err := Run(context.Background(), "fig23", 1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "with surface: detected=true") {
		t.Errorf("respiration not detected with surface:\n%s", joined)
	}
	if !strings.Contains(joined, "without surface: detected=false") {
		t.Errorf("respiration detected without surface:\n%s", joined)
	}
}

func TestAblationSweepOrdering(t *testing.T) {
	res, err := Run(context.Background(), "abl-sweep", 1)
	if err != nil {
		t.Fatal(err)
	}
	full, ctf := res.Rows[0], res.Rows[1]
	if full[1] < ctf[1]-0.01 {
		t.Errorf("full scan (%.2f dBm) should be ≥ Algorithm 1 (%.2f dBm)", full[1], ctf[1])
	}
	if full[1]-ctf[1] > 3 {
		t.Errorf("Algorithm 1 gives up %.1f dB, want ≤ 3", full[1]-ctf[1])
	}
	if ctf[2] >= full[2] {
		t.Errorf("Algorithm 1 should use far fewer switches: %v vs %v", ctf[2], full[2])
	}
}

func TestExt900MHz(t *testing.T) {
	res, err := Run(context.Background(), "ext-900mhz", 1)
	if err != nil {
		t.Fatal(err)
	}
	// At the band center row, efficiency decent and rotation large.
	var centerRow []float64
	for _, row := range res.Rows {
		if math.Abs(row[0]-910) < 6 {
			centerRow = row
		}
	}
	if centerRow == nil {
		t.Fatal("no row near 910 MHz")
	}
	if centerRow[1] < -6 {
		t.Errorf("900 MHz efficiency %.1f dB", centerRow[1])
	}
	if centerRow[2] < 30 {
		t.Errorf("900 MHz rotation %.1f°", centerRow[2])
	}
}

func TestExtMultilink(t *testing.T) {
	res, err := Run(context.Background(), "ext-multilink", 1)
	if err != nil {
		t.Fatal(err)
	}
	joint := res.Rows[2]
	bare := res.Rows[3]
	if joint[5] <= bare[5] {
		t.Errorf("joint optimum sum SE %.2f should beat no-surface %.2f", joint[5], bare[5])
	}
}
