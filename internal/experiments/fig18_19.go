package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/simclock"
)

// Fig18Powers is the paper's transmit-power sweep: 0.002 mW to 1 W.
var Fig18Powers = []float64{2e-6, 2e-5, 2e-4, 2e-3, 2e-2, 0.2, 1.0}

func init() {
	registerSweep(&Sweep{
		ID:          "fig18",
		Description: "Fig. 18 — capacity vs transmit power in the absorber environment (omni + directional)",
		Title:       "Fig. 18 — spectral efficiency (bit/s/Hz) vs TX power, absorber environment",
		Columns:     []string{"txPower_mW", "omni_with", "omni_without", "dir_with", "dir_without"},
		Points:      len(Fig18Powers),
		Point:       fig18Point,
		Finish: func(res *Result, seed int64) error {
			res.AddNote("surface helps at every power; gap narrows toward the estimator's saturation ceiling (paper's curves converge near 0.55)")
			return nil
		},
	})
	registerSweep(&Sweep{
		ID:          "fig19",
		Description: "Fig. 19 — capacity vs transmit power under rich multipath; omni crossover near 2 mW",
		Title:       "Fig. 19 — spectral efficiency vs TX power, rich multipath (laboratory)",
		Columns:     []string{"txPower_mW", "omni_with", "omni_without", "dir_with", "dir_without"},
		Points:      len(Fig18Powers),
		Point:       fig19Point,
		Finish: func(res *Result, seed int64) error {
			crossover := math.NaN()
			for _, row := range res.Rows {
				if math.IsNaN(crossover) && row[1] > row[2] {
					crossover = row[0]
				}
			}
			if math.IsNaN(crossover) {
				res.AddNote("omni: surface never overtakes the baseline in this draw")
			} else {
				res.AddNote("omni: surface overtakes baseline from %s mW (paper: 2 mW)", fmt.Sprintf("≈%.3g", crossover))
			}
			res.AddNote("directional: surface helps across the sweep (pattern suppresses multipath, Fig. 19b)")
			return nil
		},
	})
}

// capacityAtPower runs the Figs. 18/19 workload for one antenna type,
// environment and transmit power, returning the spectral efficiency with
// and without the surface. When noiseKey is non-empty the bias search
// observes RSSI with full receiver noise drawn from an RNG folded from
// (seed, noiseKey) — keying the noise stream per point is what keeps the
// per-point function pure so the power axis can shard. The controller can
// mis-tune at low SNR, which is the mechanism behind Fig. 19(a)'s
// crossover.
func capacityAtPower(ctx context.Context, ant antenna.Model, env channel.Environment,
	pw float64, seed int64, noiseKey string) (seWith, seWithout float64, err error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return 0, 0, err
	}
	sc := channel.DefaultScene(surf, 0.48)
	sc.TxPowerW = pw
	sc.Tx.Antenna = ant
	sc.Rx.Antenna = ant
	sc.Env = env
	base := channel.DefaultScene(nil, 0.48)
	base.TxPowerW = pw
	base.Tx.Antenna = ant
	base.Rx.Antenna = ant
	base.Env = env

	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	var rng = simclock.RNG(seed, noiseKey)
	sen := control.SensorFunc(func() (float64, error) {
		p := sc.ReceivedPowerDBm()
		if noiseKey != "" {
			// The sweep's per-step RSSI estimate carries noise whose
			// dB spread grows as the signal sinks toward the
			// interference floor. The constant is calibrated so the
			// controller stops finding the true optimum around the
			// paper's 2 mW omni crossover (Fig. 19a).
			snr := sc.SNR()
			sigma := 70 / math.Sqrt(1+snr)
			p += sigma * rng.NormFloat64()
		}
		return p, nil
	})
	if _, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen); err != nil {
		return 0, 0, err
	}
	return sc.SpectralEfficiency(), base.SpectralEfficiency(), nil
}

// fig18Point computes one power step of Fig. 18: noiseless control, so
// omni and directional legs are pure in (seed, point).
func fig18Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	pw := Fig18Powers[i]
	omniW, omniWo, err := capacityAtPower(ctx, antenna.OmniWiFi, channel.Absorber(), pw, seed, "")
	if err != nil {
		return PointResult{}, err
	}
	dirW, dirWo, err := capacityAtPower(ctx, antenna.DirectionalPatch, channel.Absorber(), pw, seed+1, "")
	if err != nil {
		return PointResult{}, err
	}
	return Row(pw*1e3, omniW, omniWo, dirW, dirWo), nil
}

// fig19Point computes one power step of Fig. 19 under rich multipath with
// noisy control. The noise RNG is keyed by (branch, point) so each power
// step draws an independent, reproducible stream.
func fig19Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	pw := Fig18Powers[i]
	env := channel.Laboratory(seed+101, 12)
	omniW, omniWo, err := capacityAtPower(ctx, antenna.OmniWiFi, env, pw, seed,
		fmt.Sprintf("fig19/omni/%d", i))
	if err != nil {
		return PointResult{}, err
	}
	dirW, dirWo, err := capacityAtPower(ctx, antenna.DirectionalPatch, env, pw, seed+1,
		fmt.Sprintf("fig19/dir/%d", i))
	if err != nil {
		return PointResult{}, err
	}
	return Row(pw*1e3, omniW, omniWo, dirW, dirWo), nil
}
