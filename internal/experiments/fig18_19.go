package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("fig18", "Fig. 18 — capacity vs transmit power in the absorber environment (omni + directional)", fig18)
	register("fig19", "Fig. 19 — capacity vs transmit power under rich multipath; omni crossover near 2 mW", fig19)
}

// Fig18Powers is the paper's transmit-power sweep: 0.002 mW to 1 W.
var Fig18Powers = []float64{2e-6, 2e-5, 2e-4, 2e-3, 2e-2, 0.2, 1.0}

// capacityVsPower runs the Figs. 18/19 workload for one antenna type and
// environment. When noisyControl is true the bias search observes RSSI
// with full receiver noise (the controller can mis-tune at low SNR —
// the mechanism behind Fig. 19(a)'s crossover).
func capacityVsPower(ctx context.Context, id, title string, ant antenna.Model, env channel.Environment, noisyControl bool, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      id,
		Title:   title,
		Columns: []string{"txPower_mW", "se_with", "se_without", "delta"},
	}
	rng := simclock.RNG(seed, id)
	for _, pw := range Fig18Powers {
		sc := channel.DefaultScene(surf, 0.48)
		sc.TxPowerW = pw
		sc.Tx.Antenna = ant
		sc.Rx.Antenna = ant
		sc.Env = env
		base := channel.DefaultScene(nil, 0.48)
		base.TxPowerW = pw
		base.Tx.Antenna = ant
		base.Rx.Antenna = ant
		base.Env = env

		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) {
			p := sc.ReceivedPowerDBm()
			if noisyControl {
				// The sweep's per-step RSSI estimate carries noise whose
				// dB spread grows as the signal sinks toward the
				// interference floor. The constant is calibrated so the
				// controller stops finding the true optimum around the
				// paper's 2 mW omni crossover (Fig. 19a).
				snr := sc.SNR()
				sigma := 70 / math.Sqrt(1+snr)
				p += sigma * rng.NormFloat64()
			}
			return p, nil
		})
		if _, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen); err != nil {
			return nil, err
		}
		seWith := sc.SpectralEfficiency()
		seWithout := base.SpectralEfficiency()
		res.AddRow(pw*1e3, seWith, seWithout, seWith-seWithout)
	}
	return res, nil
}

func fig18(ctx context.Context, seed int64) (*Result, error) {
	omni, err := capacityVsPower(ctx, "fig18", "", antenna.OmniWiFi, channel.Absorber(), false, seed)
	if err != nil {
		return nil, err
	}
	dir, err := capacityVsPower(ctx, "fig18", "", antenna.DirectionalPatch, channel.Absorber(), false, seed+1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig18",
		Title:   "Fig. 18 — spectral efficiency (bit/s/Hz) vs TX power, absorber environment",
		Columns: []string{"txPower_mW", "omni_with", "omni_without", "dir_with", "dir_without"},
	}
	for i := range omni.Rows {
		res.AddRow(omni.Rows[i][0], omni.Rows[i][1], omni.Rows[i][2], dir.Rows[i][1], dir.Rows[i][2])
	}
	res.AddNote("surface helps at every power; gap narrows toward the estimator's saturation ceiling (paper's curves converge near 0.55)")
	return res, nil
}

func fig19(ctx context.Context, seed int64) (*Result, error) {
	env := channel.Laboratory(seed+101, 12)
	omni, err := capacityVsPower(ctx, "fig19", "", antenna.OmniWiFi, env, true, seed)
	if err != nil {
		return nil, err
	}
	dir, err := capacityVsPower(ctx, "fig19", "", antenna.DirectionalPatch, env, true, seed+1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig19",
		Title:   "Fig. 19 — spectral efficiency vs TX power, rich multipath (laboratory)",
		Columns: []string{"txPower_mW", "omni_with", "omni_without", "dir_with", "dir_without"},
	}
	crossover := math.NaN()
	for i := range omni.Rows {
		res.AddRow(omni.Rows[i][0], omni.Rows[i][1], omni.Rows[i][2], dir.Rows[i][1], dir.Rows[i][2])
		if math.IsNaN(crossover) && omni.Rows[i][1] > omni.Rows[i][2] {
			crossover = omni.Rows[i][0]
		}
	}
	if math.IsNaN(crossover) {
		res.AddNote("omni: surface never overtakes the baseline in this draw")
	} else {
		res.AddNote("omni: surface overtakes baseline from %s mW (paper: 2 mW)", fmt.Sprintf("≈%.3g", crossover))
	}
	res.AddNote("directional: surface helps across the sweep (pattern suppresses multipath, Fig. 19b)")
	return res, nil
}
