package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("fig17", "Fig. 17 — power improvement vs operating frequency across the ISM band", fig17)
}

func fig17(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig17",
		Title:   "Fig. 17 — with/without metasurface across 2.40–2.50 GHz (mismatched)",
		Columns: []string{"freq_GHz", "with_dBm", "without_dBm", "gain_dB"},
	}
	minGain := 1e9
	for f := 2.40e9; f <= 2.50e9+1e6; f += 0.01e9 {
		sc := channel.DefaultScene(surf, 0.48)
		sc.FreqHz = f
		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 2, act, sen)
		if err != nil {
			return nil, err
		}
		base := channel.DefaultScene(nil, 0.48)
		base.FreqHz = f
		gain := scan.BestPowerDBm - base.ReceivedPowerDBm()
		if gain < minGain {
			minGain = gain
		}
		res.AddRow(f/1e9, scan.BestPowerDBm, base.ReceivedPowerDBm(), gain)
	}
	res.AddNote("minimum gain across the band %.1f dB (paper: > 10 dB everywhere)", minGain)
	_ = units.ISMBandHigh
	return res, nil
}
