package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
)

func init() {
	freqs := axis(2.40e9, 2.50e9+1e6, 0.01e9)
	registerSweep(&Sweep{
		ID:          "fig17",
		Description: "Fig. 17 — power improvement vs operating frequency across the ISM band",
		Title:       "Fig. 17 — with/without metasurface across 2.40–2.50 GHz (mismatched)",
		Columns:     []string{"freq_GHz", "with_dBm", "without_dBm", "gain_dB"},
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			f := freqs[i]
			sc := channel.DefaultScene(surf, 0.48)
			sc.FreqHz = f
			act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
			sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
			scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 2, act, sen)
			if err != nil {
				return PointResult{}, err
			}
			base := channel.DefaultScene(nil, 0.48)
			base.FreqHz = f
			return Row(f/1e9, scan.BestPowerDBm, base.ReceivedPowerDBm(),
				scan.BestPowerDBm-base.ReceivedPowerDBm()), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("minimum gain across the band %.1f dB (paper: > 10 dB everywhere)", minIn(res.Column(3)))
			return nil
		},
	})
}
