package experiments

// Engine-level contracts of the memoized physics layer and row batching:
// the response cache and point batching are performance features, so the
// tables they produce must be bit-identical to the uncached, unbatched
// serial reference for any worker count. Run under -race in CI.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/metasurface"
)

// cacheTestIDs are surface-heavy experiments: bias-plane scans (fig15,
// fig16) exercise the axis cache across dense grids; tab1 exercises the
// rotation path.
var cacheTestIDs = []string{"fig15", "fig16", "tab1"}

// TestCachedMatchesUncached: with the response cache enabled the engine
// must reproduce the uncached serial tables bit-for-bit, at 1 and 8
// workers, sharded and not.
func TestCachedMatchesUncached(t *testing.T) {
	ctx := context.Background()
	metasurface.SetCaching(false)
	ref := &Engine{Concurrency: 1, IDs: cacheTestIDs}
	uncached, err := ref.RunAll(ctx, 7)
	metasurface.SetCaching(true)
	if err != nil {
		t.Fatalf("uncached reference: %v", err)
	}
	for _, workers := range []int{1, 8} {
		for _, shard := range []bool{false, true} {
			eng := &Engine{Concurrency: workers, IDs: cacheTestIDs, ShardRows: shard}
			got, err := eng.RunAll(ctx, 7)
			if err != nil {
				t.Fatalf("workers %d shard %v: %v", workers, shard, err)
			}
			if len(got) != len(uncached) {
				t.Fatalf("workers %d shard %v: %d results, want %d", workers, shard, len(got), len(uncached))
			}
			for i := range got {
				if !sameResult(got[i], uncached[i]) {
					t.Errorf("workers %d shard %v: cached %q differs from uncached reference",
						workers, shard, got[i].ID)
				}
			}
		}
	}
}

// TestBatchedMatchesSerial: grouping sweep points into per-job batches
// must not change the assembled tables, for any batch size (including
// one larger than any axis) or worker count.
func TestBatchedMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serial := &Engine{Concurrency: 1, IDs: cacheTestIDs}
	want, err := serial.RunAll(ctx, 42)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, batch := range []int{2, 3, 1000} {
		for _, workers := range []int{1, 8} {
			eng := &Engine{Concurrency: workers, IDs: cacheTestIDs, ShardRows: true, BatchRows: batch}
			got, err := eng.RunAll(ctx, 42)
			if err != nil {
				t.Fatalf("batch %d workers %d: %v", batch, workers, err)
			}
			for i := range got {
				if !sameResult(got[i], want[i]) {
					t.Errorf("batch %d workers %d: %q differs from serial", batch, workers, got[i].ID)
				}
			}
		}
	}
}

// TestBatchedMidBatchErrorSalvage: a point failure inside a batch must
// name the point, leave the batch's remaining points unrun, and salvage
// the completed prefix exactly like the unbatched path.
func TestBatchedMidBatchErrorSalvage(t *testing.T) {
	boom := errors.New("boom")
	s := countingSweep("zz-batchfail", 7)
	inner := s.Point
	s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
		if i == 4 {
			return PointResult{}, boom
		}
		return inner(ctx, seed, i)
	}
	tempSweep(t, s)

	eng := &Engine{Concurrency: 1, ShardRows: true, BatchRows: 3, IDs: []string{"zz-batchfail"}}
	rep, err := eng.Collect(context.Background(), 7)
	if err == nil {
		t.Fatal("mid-batch failure not reported")
	}
	for _, want := range []string{"zz-batchfail", "seed 7", "point 4/7", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q does not name %q", err, want)
		}
	}
	if len(rep.Salvaged) != 1 || len(rep.Salvaged[0].Rows) != 4 {
		t.Fatalf("salvage = %+v, want one partial table with 4 rows", rep.Salvaged)
	}
}

// TestReportCarriesCacheStats: a single-worker run must attribute cache
// lookups per experiment and carry exact run-wide totals; the rendered
// summary must surface them.
func TestReportCarriesCacheStats(t *testing.T) {
	// Response tables are design-keyed and process-wide: any earlier test
	// using fig16's design leaves its entries warm, which would turn this
	// run's misses into hits. Start from a cold registry.
	metasurface.ResetResponseTables()
	metasurface.ResetGlobalCacheStats()
	rep, err := Execute(context.Background(), Options{IDs: []string{"fig16"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits == 0 || rep.CacheMisses == 0 {
		t.Fatalf("run-wide cache stats empty: %d/%d", rep.CacheHits, rep.CacheMisses)
	}
	if len(rep.Timings) != 1 {
		t.Fatalf("timings = %d", len(rep.Timings))
	}
	tm := rep.Timings[0]
	if tm.CacheHits != rep.CacheHits || tm.CacheMisses != rep.CacheMisses {
		t.Errorf("single-experiment attribution %d/%d != run totals %d/%d",
			tm.CacheHits, tm.CacheMisses, rep.CacheHits, rep.CacheMisses)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache:", "hit rate"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}

	// A disabled cache leaves all counters zero and the summary silent.
	metasurface.SetCaching(false)
	defer metasurface.SetCaching(true)
	rep, err = Execute(context.Background(), Options{IDs: []string{"fig16"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 || rep.CacheMisses != 0 {
		t.Errorf("disabled cache still counted %d/%d", rep.CacheHits, rep.CacheMisses)
	}
	sb.Reset()
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cache:") {
		t.Errorf("render shows cache line for an uncached run:\n%s", sb.String())
	}
}

// TestMultiWorkerCacheUnattributed: per-experiment cache counters cannot
// be measured when jobs interleave across workers — the report must then
// say "unattributed" in the rendered summary rather than leaving
// misleading zeros, while the run-wide totals stay exact.
func TestMultiWorkerCacheUnattributed(t *testing.T) {
	metasurface.ResetGlobalCacheStats()
	rep, err := Execute(context.Background(),
		Options{IDs: []string{"fig16"}, Concurrency: 2, ShardRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Concurrency != 2 {
		t.Fatalf("resolved concurrency = %d, want 2", rep.Concurrency)
	}
	if rep.CacheHits+rep.CacheMisses == 0 {
		t.Fatal("run-wide cache totals empty")
	}
	for _, tm := range rep.Timings {
		if tm.CacheHits != 0 || tm.CacheMisses != 0 {
			t.Errorf("%s: multi-worker run attributed cache counters %d/%d", tm.ID, tm.CacheHits, tm.CacheMisses)
		}
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unattributed (2 workers)") {
		t.Errorf("render does not flag unattributed per-experiment counters:\n%s", sb.String())
	}

	// Single-worker runs attribute exactly and must NOT carry the flag.
	rep, err = Execute(context.Background(), Options{IDs: []string{"fig16"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "unattributed") {
		t.Errorf("single-worker render wrongly flags unattributed:\n%s", sb.String())
	}
}

// TestBatchRowsRecordedInReport: the report and its rendering reflect the
// batch size used.
func TestBatchRowsRecordedInReport(t *testing.T) {
	rep, err := Execute(context.Background(),
		Options{IDs: []string{"fig16"}, Concurrency: 2, ShardRows: true, BatchRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchRows != 4 {
		t.Errorf("BatchRows = %d, want 4", rep.BatchRows)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "×4-point batches") {
		t.Errorf("render missing batch annotation:\n%s", sb.String())
	}
}
