package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// tempSweep registers a sweep for the duration of one test.
func tempSweep(t *testing.T, s *Sweep) {
	t.Helper()
	registerSweep(s)
	t.Cleanup(func() {
		delete(registry, s.ID)
		delete(descriptions, s.ID)
		delete(sweeps, s.ID)
	})
}

// countingSweep builds an n-point sweep whose point i yields the row
// {i, seed} and whose Finish adds a row-count note.
func countingSweep(id string, n int) *Sweep {
	return &Sweep{
		ID:          id,
		Description: "test sweep",
		Title:       "test sweep " + id,
		Columns:     []string{"point", "seed"},
		Points:      n,
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			return Row(float64(i), float64(seed)), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("%d rows assembled", len(res.Rows))
			return nil
		},
	}
}

// TestSweepZeroPoints: an empty axis is legal — the serial path and the
// sharded engine both yield an empty table, and Finish still runs.
func TestSweepZeroPoints(t *testing.T) {
	tempSweep(t, countingSweep("zz-empty", 0))
	ctx := context.Background()

	serial, err := Run(ctx, "zz-empty", 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(serial.Rows) != 0 {
		t.Fatalf("serial rows = %d, want 0", len(serial.Rows))
	}
	if len(serial.Notes) != 1 || serial.Notes[0] != "0 rows assembled" {
		t.Fatalf("Finish did not run on empty sweep: notes = %v", serial.Notes)
	}

	eng := &Engine{Concurrency: 4, ShardRows: true, IDs: []string{"zz-empty"}}
	got, err := eng.RunAll(ctx, 1)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if len(got) != 1 || !sameResult(got[0], serial) {
		t.Fatalf("sharded zero-point sweep differs from serial: %+v", got)
	}
}

// TestSweepPointErrorSerial: the serial path returns the completed prefix
// alongside a *PointError naming the failing point.
func TestSweepPointErrorSerial(t *testing.T) {
	boom := errors.New("boom")
	s := countingSweep("zz-fail", 5)
	inner := s.Point
	s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
		if i == 3 {
			return PointResult{}, boom
		}
		return inner(ctx, seed, i)
	}
	tempSweep(t, s)

	res, err := Run(context.Background(), "zz-fail", 1)
	var perr *PointError
	if !errors.As(err, &perr) || perr.Point != 3 || perr.Points != 5 {
		t.Fatalf("err = %v, want *PointError naming point 3/5", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v does not unwrap to the point failure", err)
	}
	if res == nil || len(res.Rows) != 3 {
		t.Fatalf("salvaged prefix = %+v, want the 3 completed rows", res)
	}
	for i, row := range res.Rows {
		if row[0] != float64(i) {
			t.Errorf("salvaged row %d = %v, out of axis order", i, row)
		}
	}
	if len(res.Notes) != 0 {
		t.Errorf("Finish ran on a truncated table: notes = %v", res.Notes)
	}
}

// TestSweepPointErrorMidShard: a sharded engine run whose per-point fn
// fails names the experiment, seed and point, and the report salvages the
// contiguous completed prefix.
func TestSweepPointErrorMidShard(t *testing.T) {
	boom := errors.New("boom")
	s := countingSweep("zz-shardfail", 5)
	inner := s.Point
	s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
		if i == 3 {
			return PointResult{}, boom
		}
		return inner(ctx, seed, i)
	}
	tempSweep(t, s)

	// One worker makes completion deterministic: points 0..2 finish
	// before point 3 fails and point 4 is never fed.
	eng := &Engine{Concurrency: 1, ShardRows: true, IDs: []string{"zz-shardfail"}}
	rep, err := eng.Collect(context.Background(), 7)
	if err == nil {
		t.Fatal("mid-shard failure not reported")
	}
	for _, want := range []string{"zz-shardfail", "seed 7", "point 3/5", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q does not name %q", err, want)
		}
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v does not unwrap to the point failure", err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("failed sweep still produced %d full results", len(rep.Results))
	}
	if len(rep.Salvaged) != 1 || len(rep.Salvaged[0].Rows) != 3 {
		t.Fatalf("salvage = %+v, want one partial table with 3 rows", rep.Salvaged)
	}
	for i, row := range rep.Salvaged[0].Rows {
		if row[0] != float64(i) || row[1] != 7 {
			t.Errorf("salvaged row %d = %v, want [%d 7]", i, row, i)
		}
	}
}

// TestSweepPointErrorNamesRealFailure: with several workers, fail-fast
// cancellation lands context.Canceled in whichever points were in flight
// — the reported error must still name the point that actually broke,
// not a lower-indexed cancelled one.
func TestSweepPointErrorNamesRealFailure(t *testing.T) {
	boom := errors.New("boom")
	s := countingSweep("zz-cancelmask", 5)
	s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
		if i == 3 {
			return PointResult{}, boom
		}
		// Every other point parks until the fail-fast cancellation, so
		// cancelled errors deterministically occupy lower slots.
		<-ctx.Done()
		return PointResult{}, ctx.Err()
	}
	tempSweep(t, s)

	eng := &Engine{Concurrency: 4, ShardRows: true, IDs: []string{"zz-cancelmask"}}
	_, err := eng.Collect(context.Background(), 1)
	if err == nil {
		t.Fatal("mid-shard failure not reported")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real point failure, not a cancellation", err)
	}
	var perr *PointError
	if !errors.As(err, &perr) || perr.Point != 3 {
		t.Fatalf("err = %v, want PointError naming point 3", err)
	}
}

// TestShardedEngineMatchesSerial is the row-sharding determinism
// contract: for every registered experiment, a sharded engine at 1 and 8
// workers reproduces the serial RunAll tables bit-for-bit. Run under
// -race this also certifies that per-point slot collection is the only
// place shards touch shared state.
func TestShardedEngineMatchesSerial(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 7} {
		serial, err := RunAll(ctx, seed)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, workers := range []int{1, 8} {
			eng := &Engine{Concurrency: workers, ShardRows: true}
			got, err := eng.RunAll(ctx, seed)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if len(got) != len(serial) {
				t.Fatalf("seed %d workers %d: %d results, serial %d", seed, workers, len(got), len(serial))
			}
			for i := range got {
				if !sameResult(got[i], serial[i]) {
					t.Errorf("seed %d workers %d: sharded result %q differs from serial path", seed, workers, got[i].ID)
				}
			}
		}
	}
}

// TestShardedReplicateMatchesUnsharded: the multi-seed aggregates must be
// bit-identical whether rows sharded or not.
func TestShardedReplicateMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	seeds := []int64{1, 7, 42}
	ids := []string{"fig2a", "fig16", "tab1"}
	plain := &Engine{Concurrency: 4, IDs: ids}
	ref, err := plain.Replicate(ctx, seeds)
	if err != nil {
		t.Fatal(err)
	}
	sharded := &Engine{Concurrency: 4, IDs: ids, ShardRows: true}
	agg, err := sharded.Replicate(ctx, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(ref) {
		t.Fatalf("sharded replicated %d experiments, want %d", len(agg), len(ref))
	}
	for i := range agg {
		a, b := agg[i], ref[i]
		if a.ID != b.ID || fmt.Sprint(a.Mean) != fmt.Sprint(b.Mean) || fmt.Sprint(a.Stddev) != fmt.Sprint(b.Stddev) {
			t.Errorf("sharded aggregate %q differs from unsharded reference", a.ID)
		}
	}
}

// TestShardedReportShape: the timing rows of a sharded run carry the row
// counts and shard (point) counts the Render summary reports.
func TestShardedReportShape(t *testing.T) {
	ctx := context.Background()
	rep, err := Execute(ctx, Options{IDs: []string{"fig16", "tab1"}, Concurrency: 2, ShardRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ShardRows {
		t.Error("report does not record row sharding")
	}
	byID := map[string]Timing{}
	for _, tm := range rep.Timings {
		byID[tm.ID] = tm
	}
	if tm := byID["fig16"]; tm.Points != len(Fig15Distances) || tm.Rows != len(Fig15Distances) {
		t.Errorf("fig16 timing = %+v, want %d points/rows", tm, len(Fig15Distances))
	}
	if tm := byID["tab1"]; tm.Points != len(Table1Biases) || tm.Rows != len(Table1Biases) {
		t.Errorf("tab1 timing = %+v, want %d points/rows", tm, len(Table1Biases))
	}
	for _, tm := range rep.Timings {
		if tm.Busy <= 0 || tm.Elapsed <= 0 {
			t.Errorf("%s: no busy/wall time recorded: %+v", tm.ID, tm)
		}
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"row-sharded", "shards", "rows"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("sharded report render missing %q:\n%s", want, sb.String())
		}
	}
}

// TestAxisMatchesLoop: axis must reproduce the accumulating loop exactly,
// endpoint semantics included.
func TestAxisMatchesLoop(t *testing.T) {
	got := axis(2.0e9, 2.8e9+1e6, 0.02e9)
	var want []float64
	for f := 2.0e9; f <= 2.8e9+1e6; f += 0.02e9 {
		want = append(want, f)
	}
	if len(got) != len(want) {
		t.Fatalf("axis length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("axis[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
