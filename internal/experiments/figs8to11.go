package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("fig8", "S21 efficiency of the Rogers 5880 rotator stack, 2.0–2.8 GHz", fig8)
	register("fig9", "S21 efficiency of the naive FR4 stack (Rogers geometry on cheap laminate)", fig9)
	register("fig10", "S21 efficiency of the optimized FR4 stack (the LLAMA design)", fig10)
	register("fig11", "S21 efficiency vs frequency under bias combinations (Vy sweep)", fig11)
}

// s21Sweep renders the Figs. 8–10 frequency sweep for one design.
func s21Sweep(id, title string, design metasurface.Design) (*Result, error) {
	surf, err := metasurface.New(design)
	if err != nil {
		return nil, err
	}
	surf.SetBias(8, 8)
	res := &Result{
		ID:      id,
		Title:   title,
		Columns: []string{"freq_GHz", "effX_dB", "effY_dB"},
	}
	for f := 2.0e9; f <= 2.8e9+1e6; f += 0.02e9 {
		res.AddRow(f/1e9,
			surf.EfficiencyDB(metasurface.AxisX, f),
			surf.EfficiencyDB(metasurface.AxisY, f))
	}
	peak := maxIn(res.Column(1))
	res.AddNote("peak X-pol efficiency %.1f dB; -5 dB bandwidth %.0f MHz",
		peak, surf.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6)/1e6)
	return res, nil
}

func fig8(ctx context.Context, seed int64) (*Result, error) {
	return s21Sweep("fig8", "Fig. 8 — cascaded rotator on Rogers 5880 (tanδ 0.0009)",
		metasurface.Rogers5880Design(units.DefaultCarrierHz))
}

func fig9(ctx context.Context, seed int64) (*Result, error) {
	return s21Sweep("fig9", "Fig. 9 — same geometry on FR4 (tanδ 0.02): loss dominates",
		metasurface.NaiveFR4Design(units.DefaultCarrierHz))
}

func fig10(ctx context.Context, seed int64) (*Result, error) {
	return s21Sweep("fig10", "Fig. 10 — optimized thin two-layer FR4 stack",
		metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
}

func fig11(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	biases := []float64{2, 3, 4, 5, 6, 10, 15}
	cols := []string{"freq_GHz"}
	for _, v := range biases {
		cols = append(cols, "Vy="+formatCell(v)+"V_dB")
	}
	res := &Result{
		ID:      "fig11",
		Title:   "Fig. 11 — S21 efficiency under different Y-axis bias voltages (Vx = 8 V)",
		Columns: cols,
	}
	for f := 2.0e9; f <= 2.8e9+1e6; f += 0.025e9 {
		row := []float64{f / 1e9}
		for _, vy := range biases {
			surf.SetBias(8, vy)
			row = append(row, surf.EfficiencyDB(metasurface.AxisY, f))
		}
		res.AddRow(row...)
	}
	// Paper claim: always above ≈-8 dB inside 2.4–2.5 GHz.
	worst := 0.0
	for _, row := range res.Rows {
		if row[0] < 2.4 || row[0] > 2.5 {
			continue
		}
		for _, v := range row[1:] {
			if v < worst {
				worst = v
			}
		}
	}
	res.AddNote("worst in-band efficiency across biases: %.1f dB (paper: ≥ -8 dB)", worst)
	return res, nil
}
