package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	registerSweep(s21Sweep("fig8",
		"S21 efficiency of the Rogers 5880 rotator stack, 2.0–2.8 GHz",
		"Fig. 8 — cascaded rotator on Rogers 5880 (tanδ 0.0009)",
		metasurface.Rogers5880Design(units.DefaultCarrierHz)))
	registerSweep(s21Sweep("fig9",
		"S21 efficiency of the naive FR4 stack (Rogers geometry on cheap laminate)",
		"Fig. 9 — same geometry on FR4 (tanδ 0.02): loss dominates",
		metasurface.NaiveFR4Design(units.DefaultCarrierHz)))
	registerSweep(s21Sweep("fig10",
		"S21 efficiency of the optimized FR4 stack (the LLAMA design)",
		"Fig. 10 — optimized thin two-layer FR4 stack",
		optimizedFR4))
	registerSweep(fig11Sweep())
}

// s21Sweep declares the Figs. 8–10 frequency sweep for one design: one
// point per frequency step, each building its own Surface (SetBias
// mutates surface state, so points must not share one).
func s21Sweep(id, description, title string, design metasurface.Design) *Sweep {
	freqs := axis(2.0e9, 2.8e9+1e6, 0.02e9)
	return &Sweep{
		ID:          id,
		Description: description,
		Title:       title,
		Columns:     []string{"freq_GHz", "effX_dB", "effY_dB"},
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(design)
			if err != nil {
				return PointResult{}, err
			}
			surf.SetBias(8, 8)
			f := freqs[i]
			return Row(f/1e9,
				surf.EfficiencyDB(metasurface.AxisX, f),
				surf.EfficiencyDB(metasurface.AxisY, f)), nil
		},
		Finish: func(res *Result, seed int64) error {
			surf, err := metasurface.New(design)
			if err != nil {
				return err
			}
			surf.SetBias(8, 8)
			res.AddNote("peak X-pol efficiency %.1f dB; -5 dB bandwidth %.0f MHz",
				maxIn(res.Column(1)), surf.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6)/1e6)
			return nil
		},
	}
}

// fig11Sweep declares the bias-combination frequency sweep: each point is
// one frequency, scanned across the Vy settings with a point-local
// surface.
func fig11Sweep() *Sweep {
	freqs := axis(2.0e9, 2.8e9+1e6, 0.025e9)
	design := optimizedFR4
	biases := []float64{2, 3, 4, 5, 6, 10, 15}
	cols := []string{"freq_GHz"}
	for _, v := range biases {
		cols = append(cols, "Vy="+formatCell(v)+"V_dB")
	}
	return &Sweep{
		ID:          "fig11",
		Description: "S21 efficiency vs frequency under bias combinations (Vy sweep)",
		Title:       "Fig. 11 — S21 efficiency under different Y-axis bias voltages (Vx = 8 V)",
		Columns:     cols,
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(design)
			if err != nil {
				return PointResult{}, err
			}
			f := freqs[i]
			row := []float64{f / 1e9}
			for _, vy := range biases {
				surf.SetBias(8, vy)
				row = append(row, surf.EfficiencyDB(metasurface.AxisY, f))
			}
			return Row(row...), nil
		},
		Finish: func(res *Result, seed int64) error {
			// Paper claim: always above ≈-8 dB inside 2.4–2.5 GHz.
			worst := 0.0
			for _, row := range res.Rows {
				if row[0] < 2.4 || row[0] > 2.5 {
					continue
				}
				for _, v := range row[1:] {
					if v < worst {
						worst = v
					}
				}
			}
			res.AddNote("worst in-band efficiency across biases: %.1f dB (paper: ≥ -8 dB)", worst)
			return nil
		},
	}
}
