package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	registerSweep(s21Sweep("fig8",
		"S21 efficiency of the Rogers 5880 rotator stack, 2.0–2.8 GHz",
		"Fig. 8 — cascaded rotator on Rogers 5880 (tanδ 0.0009)",
		metasurface.Rogers5880Design(units.DefaultCarrierHz)))
	registerSweep(s21Sweep("fig9",
		"S21 efficiency of the naive FR4 stack (Rogers geometry on cheap laminate)",
		"Fig. 9 — same geometry on FR4 (tanδ 0.02): loss dominates",
		metasurface.NaiveFR4Design(units.DefaultCarrierHz)))
	registerSweep(s21Sweep("fig10",
		"S21 efficiency of the optimized FR4 stack (the LLAMA design)",
		"Fig. 10 — optimized thin two-layer FR4 stack",
		optimizedFR4))
	registerSweep(fig11Sweep())
}

// s21Sweep declares the Figs. 8–10 frequency sweep for one design: one
// point per frequency step, each building its own Surface (SetBias
// mutates surface state, so points must not share one).
func s21Sweep(id, description, title string, design metasurface.Design) *Sweep {
	freqs := axis(2.0e9, 2.8e9+1e6, 0.02e9)
	return &Sweep{
		ID:          id,
		Description: description,
		Title:       title,
		Columns:     []string{"freq_GHz", "effX_dB", "effY_dB"},
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(design)
			if err != nil {
				return PointResult{}, err
			}
			f := freqs[i]
			// One batched evaluation serves both polarizations: the Jones
			// matrix at (f, 8 V, 8 V) is computed once and projected onto
			// each axis (bit-identical to two EfficiencyDB calls,
			// invariant #11).
			m := surf.JonesBatch(metasurface.Transmissive,
				[]metasurface.BatchPoint{{F: f, VX: 8, VY: 8}}, nil)[0]
			return Row(f/1e9,
				units.LinearToDB(metasurface.JonesEfficiency(m, metasurface.AxisX)),
				units.LinearToDB(metasurface.JonesEfficiency(m, metasurface.AxisY))), nil
		},
		Finish: func(res *Result, seed int64) error {
			surf, err := metasurface.New(design)
			if err != nil {
				return err
			}
			surf.SetBias(8, 8)
			res.AddNote("peak X-pol efficiency %.1f dB; -5 dB bandwidth %.0f MHz",
				maxIn(res.Column(1)), surf.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6)/1e6)
			return nil
		},
	}
}

// fig11Sweep declares the bias-combination frequency sweep: each point is
// one frequency, scanned across the Vy settings with a point-local
// surface.
func fig11Sweep() *Sweep {
	freqs := axis(2.0e9, 2.8e9+1e6, 0.025e9)
	design := optimizedFR4
	biases := []float64{2, 3, 4, 5, 6, 10, 15}
	cols := []string{"freq_GHz"}
	for _, v := range biases {
		cols = append(cols, "Vy="+formatCell(v)+"V_dB")
	}
	return &Sweep{
		ID:          "fig11",
		Description: "S21 efficiency vs frequency under bias combinations (Vy sweep)",
		Title:       "Fig. 11 — S21 efficiency under different Y-axis bias voltages (Vx = 8 V)",
		Columns:     cols,
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(design)
			if err != nil {
				return PointResult{}, err
			}
			f := freqs[i]
			// The whole Vy axis of this frequency resolves in one batched
			// pass — one snapshot load and one grouped miss computation
			// instead of seven scalar round-trips (bit-identical to the
			// SetBias+EfficiencyDB loop, invariant #11).
			pts := make([]metasurface.BatchPoint, len(biases))
			for j, vy := range biases {
				pts[j] = metasurface.BatchPoint{F: f, VX: 8, VY: vy}
			}
			row := []float64{f / 1e9}
			for _, m := range surf.JonesBatch(metasurface.Transmissive, pts, nil) {
				row = append(row, units.LinearToDB(metasurface.JonesEfficiency(m, metasurface.AxisY)))
			}
			return Row(row...), nil
		},
		Finish: func(res *Result, seed int64) error {
			// Paper claim: always above ≈-8 dB inside 2.4–2.5 GHz.
			worst := 0.0
			for _, row := range res.Rows {
				if row[0] < 2.4 || row[0] > 2.5 {
					continue
				}
				for _, v := range row[1:] {
					if v < worst {
						worst = v
					}
				}
			}
			res.AddNote("worst in-band efficiency across biases: %.1f dB (paper: ≥ -8 dB)", worst)
			return nil
		},
	}
}
