package experiments

import (
	"context"
	"math"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/materials"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	registerSweep(ablSubstrateSweep())
	registerSweep(ablLayersSweep())
	registerSweep(ablSweepSweep())
	registerSweep(ablSyncSweep())
	registerSweep(ablBaselineSweep())
	registerSweep(ext900MHzSweep())
	registerSweep(extMultilinkSweep())
}

func ablSubstrateSweep() *Sweep {
	tands := []float64{0.0009, 0.004, 0.01, 0.02, 0.03}
	return &Sweep{
		ID:          "abl-substrate",
		Description: "Ablation — substrate loss tangent vs peak efficiency and cost",
		Title:       "Substrate sweep: loss tangent vs in-band efficiency and board cost",
		Columns:     []string{"tanDelta", "effX_dB", "boardCost_USD"},
		Points:      len(tands),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			tand := tands[i]
			d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
			d.Substrate = materials.Dielectric{
				Name: "sweep", EpsilonR: 4.4, LossTangent: tand,
				// Cost model: low-loss laminates price superlinearly.
				CostPerM2PerLayer: 150 + 3000*math.Pow(0.02/math.Max(tand, 1e-4), 1.2)/22.2,
			}
			surf, err := metasurface.New(d)
			if err != nil {
				return PointResult{}, err
			}
			surf.SetBias(8, 8)
			return Row(tand, surf.EfficiencyDB(metasurface.AxisX, units.DefaultCarrierHz), d.BillOfMaterials().PCB), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("efficiency degrades smoothly with tanδ while cost explodes toward low-loss laminates — the optimization target of §3.2")
			return nil
		},
	}
}

func ablLayersSweep() *Sweep {
	layerCounts := []int{1, 2, 3, 4}
	return &Sweep{
		ID:          "abl-layers",
		Description: "Ablation — BFS layer count vs bandwidth (Eq. 12) vs insertion loss",
		Title:       "BFS layer count: phase budget vs bandwidth vs loss",
		Columns:     []string{"layers", "effX_dB", "bw5dB_MHz", "maxRot_deg"},
		Points:      len(layerCounts),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			layers := layerCounts[i]
			d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
			d.BFSLayers = layers
			d.LoadPitch = d.CalibrateLoadPitch(units.Radians(97), 0.9, 15)
			surf, err := metasurface.New(d)
			if err != nil {
				return PointResult{}, err
			}
			surf.SetBias(8, 8)
			eff := surf.EfficiencyDB(metasurface.AxisX, units.DefaultCarrierHz)
			bw := surf.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6) / 1e6
			surf.SetBias(2, 15)
			rot := surf.RotationDegrees(units.DefaultCarrierHz)
			return Row(float64(layers), eff, bw, rot), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("two layers hit the paper's balance: enough phase budget for ≈48° rotation at acceptable loss (Eq. 12 trade)")
			return nil
		},
	}
}

// ablSweepSweep compares the bias-search strategies; each strategy is one
// point running on its own surface and scene (the searches set bias
// before every measurement, so the outcomes are state-independent).
func ablSweepSweep() *Sweep {
	return &Sweep{
		ID:          "abl-sweep",
		Description: "Ablation — Algorithm 1 vs full scan vs coordinate descent",
		Title:       "Bias search strategies: optimality vs switch budget (50 Hz supply)",
		Columns:     []string{"strategy", "best_dBm", "switches", "time_s"},
		Points:      3,
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			sc := channel.DefaultScene(surf, 0.48)
			act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
			sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
			var res control.Result
			switch i {
			case 0:
				res, err = control.FullScan(ctx, control.DefaultSweepConfig(), 1, act, sen)
			case 1:
				res, err = control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen)
			default:
				res, err = control.CoordinateDescent(ctx, control.DefaultSweepConfig(), 2, act, sen)
			}
			if err != nil {
				return PointResult{}, err
			}
			period := control.DefaultSweepConfig().SwitchPeriod
			return Row(float64(i+1), res.BestPowerDBm, float64(res.Switches), res.Elapsed(period).Seconds()), nil
		},
		Finish: func(res *Result, seed int64) error {
			full, ctf := res.Rows[0], res.Rows[1]
			res.AddNote("strategy 1 = full scan (reference optimum), 2 = Algorithm 1 coarse-to-fine, 3 = golden-section coordinate descent")
			res.AddNote("Algorithm 1 gives up %.1f dB vs the full scan while being %.0f× faster (paper: ~30 s → 1 s)",
				full[1]-ctf[1], full[2]/ctf[2])
			return nil
		},
	}
}

// ablSyncSweep asks how much optimum power the controller loses if the
// Eq. 13 labelling is off by a fraction of the switch period: mislabelled
// samples smear adjacent voltage states, flattening the measured
// landscape. Each offset fraction is one point; the perfectly-labelled
// reference sweep is recomputed per point (it is deterministic and cheap,
// and recomputing keeps the point pure).
func ablSyncSweep() *Sweep {
	fracs := []float64{0, 0.1, 0.25, 0.4, 0.5}
	return &Sweep{
		ID:          "abl-sync",
		Description: "Ablation — Eq. 13 synchronization sensitivity to clock offset",
		Title:       "Synchronization error vs found-optimum quality",
		Columns:     []string{"offset_fraction", "found_dBm", "penalty_dB"},
		Points:      len(fracs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			sc := channel.DefaultScene(surf, 0.48)
			act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
			// Reference: perfectly-labelled sweep.
			ref, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act,
				control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil }))
			if err != nil {
				return PointResult{}, err
			}
			frac := fracs[i]
			var prevPower float64
			first := true
			sen := control.SensorFunc(func() (float64, error) {
				cur := sc.ReceivedPowerDBm()
				if first {
					first = false
					prevPower = cur
					return cur, nil
				}
				// A mislabelled sample mixes the previous state's power in
				// proportion to the timing error.
				curW := units.DBmToWatts(cur)
				prevW := units.DBmToWatts(prevPower)
				prevPower = cur
				return units.WattsToDBm((1-frac)*curW + frac*prevW), nil
			})
			found, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen)
			if err != nil {
				return PointResult{}, err
			}
			// Evaluate the *true* power at the bias the confused controller
			// chose.
			surf.SetBias(found.BestVx, found.BestVy)
			truth := sc.ReceivedPowerDBm()
			return Row(frac, truth, ref.BestPowerDBm-truth), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("timing error past ≈25%% of the switch period starts costing real dB — why Eq. 13's labelling (and the 50 Hz/1 MHz rate coherence) matters")
			return nil
		},
	}
}

// ablBaselineSweep models the cited amplitude-based baseline: each element
// either passes or blocks the through signal (no polarization rotation),
// so the best it can do on a mismatched link is maximize through power.
func ablBaselineSweep() *Sweep {
	dists := []float64{0.24, 0.36, 0.48, 0.60}
	return &Sweep{
		ID:          "abl-baseline",
		Description: "Ablation — polarization rotator vs RFocus-style on/off amplitude surface",
		Title:       "Mismatched-link gain: LLAMA rotator vs on/off amplitude surface",
		Columns:     []string{"dist_cm", "rotator_gain_dB", "amplitude_gain_dB"},
		Points:      len(dists),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			d := dists[i]
			sc := channel.DefaultScene(surf, d)
			base := channel.DefaultScene(nil, d)
			basePower := base.ReceivedPowerDBm()

			act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
			sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
			scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
			if err != nil {
				return PointResult{}, err
			}
			rotGain := scan.BestPowerDBm - basePower

			// Amplitude surface: transparent ("on", identity with small
			// insertion loss) or opaque ("off"). Neither state rotates
			// polarization, so the mismatch loss survives intact; the best
			// on-state gain is bounded by the insertion loss of a pane.
			onState := jones.Cascade(jones.Rotator(0)).Scale(complex(units.DBToFieldRatio(-1.0), 0))
			h := onState.MulVec(sc.Tx.State())
			plf := jones.PLF(h, sc.Rx.State())
			onPower := basePower // same path, polarization unchanged
			_ = plf
			ampGain := math.Max(onPower-basePower-1.0, -1.0) // −1 dB pane loss
			return Row(d*100, rotGain, ampGain), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("an amplitude-only surface cannot touch the polarization term: the rotator's gain comes precisely from re-aligning it (§6's distinction from RFocus)")
			return nil
		},
	}
}

func ext900MHzSweep() *Sweep {
	freqs := axis(0.88e9, 0.95e9+1e5, 0.01e9)
	design := metasurface.OptimizedFR4Design(units.RFIDBandCenter)
	return &Sweep{
		ID:          "ext-900mhz",
		Description: "Extension — the §3.2 rescaled 900 MHz (RFID band) design",
		Title:       "Rescaled 900 MHz design (§3.2): efficiency and rotation at the RFID band",
		Columns:     []string{"freq_MHz", "effX_dB", "rotation_at_2_15_deg"},
		Points:      len(freqs),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(design)
			if err != nil {
				return PointResult{}, err
			}
			f := freqs[i]
			surf.SetBias(8, 8)
			eff := surf.EfficiencyDB(metasurface.AxisX, f)
			surf.SetBias(2, 15)
			rot := surf.RotationDegrees(f)
			return Row(f/1e6, eff, rot), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("comparable efficiency and rotation tunability after geometric scaling — the paper's 900 MHz claim")
			return nil
		},
	}
}

// extMultilinkSweep: two IoT receivers with different polarization
// mismatches share one surface, so a single bias setting must compromise.
// The joint grid search couples every bias cell to the same running
// maxima, so the experiment is a single sweep point.
func extMultilinkSweep() *Sweep {
	return &Sweep{
		ID:          "ext-multilink",
		Description: "Extension — §7 future work: two mismatched links sharing one surface",
		Title:       "Two links, one surface: per-link optima vs the joint compromise",
		Columns:     []string{"policy", "Vx_V", "Vy_V", "seA", "seB", "sum"},
		Points:      1,
		Point: func(ctx context.Context, seed int64, _ int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			scA := channel.DefaultScene(surf, 0.48)
			scA.Rx.Orientation = 0 // Tx at 90° → full mismatch
			scB := channel.DefaultScene(surf, 0.60)
			scB.Rx.Orientation = math.Pi / 4 // Tx at 90° → partial mismatch

			baseA := channel.DefaultScene(nil, 0.48)
			baseA.Rx.Orientation = 0
			baseB := channel.DefaultScene(nil, 0.60)
			baseB.Rx.Orientation = math.Pi / 4

			type point struct{ vx, vy, seA, seB float64 }
			var bestJoint, bestA, bestB point
			for vx := 0.0; vx <= 30; vx += 1.5 {
				for vy := 0.0; vy <= 30; vy += 1.5 {
					surf.SetBias(vx, vy)
					p := point{vx: vx, vy: vy, seA: scA.SpectralEfficiency(), seB: scB.SpectralEfficiency()}
					if p.seA+p.seB > bestJoint.seA+bestJoint.seB {
						bestJoint = p
					}
					if p.seA > bestA.seA {
						bestA = p
					}
					if p.seB > bestB.seB {
						bestB = p
					}
				}
			}
			pt := PointResult{Rows: [][]float64{
				{1, bestA.vx, bestA.vy, bestA.seA, bestA.seB, bestA.seA + bestA.seB},
				{2, bestB.vx, bestB.vy, bestB.seA, bestB.seB, bestB.seA + bestB.seB},
				{3, bestJoint.vx, bestJoint.vy, bestJoint.seA, bestJoint.seB, bestJoint.seA + bestJoint.seB},
				{4, math.NaN(), math.NaN(), baseA.SpectralEfficiency(), baseB.SpectralEfficiency(),
					baseA.SpectralEfficiency() + baseB.SpectralEfficiency()},
			}}
			pt.AddNote("policy 1/2 = selfish per-link optimum, 3 = joint sum-capacity, 4 = no surface; the joint setting beats no-surface for both links (the §7 polarization-reuse direction)")
			return pt, nil
		},
	}
}
