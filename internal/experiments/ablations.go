package experiments

import (
	"context"
	"math"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/materials"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("abl-substrate", "Ablation — substrate loss tangent vs peak efficiency and cost", ablSubstrate)
	register("abl-layers", "Ablation — BFS layer count vs bandwidth (Eq. 12) vs insertion loss", ablLayers)
	register("abl-sweep", "Ablation — Algorithm 1 vs full scan vs coordinate descent", ablSweep)
	register("abl-sync", "Ablation — Eq. 13 synchronization sensitivity to clock offset", ablSync)
	register("abl-baseline", "Ablation — polarization rotator vs RFocus-style on/off amplitude surface", ablBaseline)
	register("ext-900mhz", "Extension — the §3.2 rescaled 900 MHz (RFID band) design", ext900MHz)
	register("ext-multilink", "Extension — §7 future work: two mismatched links sharing one surface", extMultilink)
}

func ablSubstrate(ctx context.Context, seed int64) (*Result, error) {
	res := &Result{
		ID:      "abl-substrate",
		Title:   "Substrate sweep: loss tangent vs in-band efficiency and board cost",
		Columns: []string{"tanDelta", "effX_dB", "boardCost_USD"},
	}
	for _, tand := range []float64{0.0009, 0.004, 0.01, 0.02, 0.03} {
		d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
		d.Substrate = materials.Dielectric{
			Name: "sweep", EpsilonR: 4.4, LossTangent: tand,
			// Cost model: low-loss laminates price superlinearly.
			CostPerM2PerLayer: 150 + 3000*math.Pow(0.02/math.Max(tand, 1e-4), 1.2)/22.2,
		}
		surf, err := metasurface.New(d)
		if err != nil {
			return nil, err
		}
		surf.SetBias(8, 8)
		res.AddRow(tand, surf.EfficiencyDB(metasurface.AxisX, units.DefaultCarrierHz), d.BillOfMaterials().PCB)
	}
	res.AddNote("efficiency degrades smoothly with tanδ while cost explodes toward low-loss laminates — the optimization target of §3.2")
	return res, nil
}

func ablLayers(ctx context.Context, seed int64) (*Result, error) {
	res := &Result{
		ID:      "abl-layers",
		Title:   "BFS layer count: phase budget vs bandwidth vs loss",
		Columns: []string{"layers", "effX_dB", "bw5dB_MHz", "maxRot_deg"},
	}
	for _, layers := range []int{1, 2, 3, 4} {
		d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
		d.BFSLayers = layers
		d.LoadPitch = d.CalibrateLoadPitch(units.Radians(97), 0.9, 15)
		surf, err := metasurface.New(d)
		if err != nil {
			return nil, err
		}
		surf.SetBias(8, 8)
		eff := surf.EfficiencyDB(metasurface.AxisX, units.DefaultCarrierHz)
		bw := surf.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6) / 1e6
		surf.SetBias(2, 15)
		rot := surf.RotationDegrees(units.DefaultCarrierHz)
		res.AddRow(float64(layers), eff, bw, rot)
	}
	res.AddNote("two layers hit the paper's balance: enough phase budget for ≈48° rotation at acceptable loss (Eq. 12 trade)")
	return res, nil
}

func ablSweep(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	sc := channel.DefaultScene(surf, 0.48)
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })

	res := &Result{
		ID:      "abl-sweep",
		Title:   "Bias search strategies: optimality vs switch budget (50 Hz supply)",
		Columns: []string{"strategy", "best_dBm", "switches", "time_s"},
	}
	full, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1, act, sen)
	if err != nil {
		return nil, err
	}
	ctf, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen)
	if err != nil {
		return nil, err
	}
	cd, err := control.CoordinateDescent(ctx, control.DefaultSweepConfig(), 2, act, sen)
	if err != nil {
		return nil, err
	}
	period := control.DefaultSweepConfig().SwitchPeriod
	res.AddRow(1, full.BestPowerDBm, float64(full.Switches), full.Elapsed(period).Seconds())
	res.AddRow(2, ctf.BestPowerDBm, float64(ctf.Switches), ctf.Elapsed(period).Seconds())
	res.AddRow(3, cd.BestPowerDBm, float64(cd.Switches), cd.Elapsed(period).Seconds())
	res.AddNote("strategy 1 = full scan (reference optimum), 2 = Algorithm 1 coarse-to-fine, 3 = golden-section coordinate descent")
	res.AddNote("Algorithm 1 gives up %.1f dB vs the full scan while being %.0f× faster (paper: ~30 s → 1 s)",
		full.BestPowerDBm-ctf.BestPowerDBm, float64(full.Switches)/float64(ctf.Switches))
	return res, nil
}

func ablSync(ctx context.Context, seed int64) (*Result, error) {
	// How much optimum power does the controller lose if the Eq. 13
	// labelling is off by a fraction of the switch period? Mislabelled
	// samples smear adjacent voltage states, flattening the measured
	// landscape.
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	sc := channel.DefaultScene(surf, 0.48)
	res := &Result{
		ID:      "abl-sync",
		Title:   "Synchronization error vs found-optimum quality",
		Columns: []string{"offset_fraction", "found_dBm", "penalty_dB"},
	}
	// Reference: perfectly-labelled sweep.
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	ref, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act,
		control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil }))
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0, 0.1, 0.25, 0.4, 0.5} {
		frac := frac
		var prevPower float64
		first := true
		sen := control.SensorFunc(func() (float64, error) {
			cur := sc.ReceivedPowerDBm()
			if first {
				first = false
				prevPower = cur
				return cur, nil
			}
			// A mislabelled sample mixes the previous state's power in
			// proportion to the timing error.
			curW := units.DBmToWatts(cur)
			prevW := units.DBmToWatts(prevPower)
			prevPower = cur
			return units.WattsToDBm((1-frac)*curW + frac*prevW), nil
		})
		found, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen)
		if err != nil {
			return nil, err
		}
		// Evaluate the *true* power at the bias the confused controller
		// chose.
		surf.SetBias(found.BestVx, found.BestVy)
		truth := sc.ReceivedPowerDBm()
		res.AddRow(frac, truth, ref.BestPowerDBm-truth)
	}
	res.AddNote("timing error past ≈25%% of the switch period starts costing real dB — why Eq. 13's labelling (and the 50 Hz/1 MHz rate coherence) matters")
	return res, nil
}

// rfocusStyle models the cited amplitude-based baseline: each element
// either passes or blocks the through signal (no polarization rotation),
// so the best it can do on a mismatched link is maximize through power.
func ablBaseline(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "abl-baseline",
		Title:   "Mismatched-link gain: LLAMA rotator vs on/off amplitude surface",
		Columns: []string{"dist_cm", "rotator_gain_dB", "amplitude_gain_dB"},
	}
	for _, d := range []float64{0.24, 0.36, 0.48, 0.60} {
		sc := channel.DefaultScene(surf, d)
		base := channel.DefaultScene(nil, d)
		basePower := base.ReceivedPowerDBm()

		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
		if err != nil {
			return nil, err
		}
		rotGain := scan.BestPowerDBm - basePower

		// Amplitude surface: transparent ("on", identity with small
		// insertion loss) or opaque ("off"). Neither state rotates
		// polarization, so the mismatch loss survives intact; the best
		// on-state gain is bounded by the insertion loss of a pane.
		onState := jones.Cascade(jones.Rotator(0)).Scale(complex(units.DBToFieldRatio(-1.0), 0))
		h := onState.MulVec(sc.Tx.State())
		plf := jones.PLF(h, sc.Rx.State())
		onPower := basePower // same path, polarization unchanged
		_ = plf
		ampGain := math.Max(onPower-basePower-1.0, -1.0) // −1 dB pane loss
		res.AddRow(d*100, rotGain, ampGain)
	}
	res.AddNote("an amplitude-only surface cannot touch the polarization term: the rotator's gain comes precisely from re-aligning it (§6's distinction from RFocus)")
	return res, nil
}

func ext900MHz(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.RFIDBandCenter))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ext-900mhz",
		Title:   "Rescaled 900 MHz design (§3.2): efficiency and rotation at the RFID band",
		Columns: []string{"freq_MHz", "effX_dB", "rotation_at_2_15_deg"},
	}
	for f := 0.88e9; f <= 0.95e9+1e5; f += 0.01e9 {
		surf.SetBias(8, 8)
		eff := surf.EfficiencyDB(metasurface.AxisX, f)
		surf.SetBias(2, 15)
		rot := surf.RotationDegrees(f)
		res.AddRow(f/1e6, eff, rot)
	}
	res.AddNote("comparable efficiency and rotation tunability after geometric scaling — the paper's 900 MHz claim")
	return res, nil
}

func extMultilink(ctx context.Context, seed int64) (*Result, error) {
	// Two IoT receivers with different polarization mismatches share one
	// surface: a single bias setting must compromise. Sweep for the
	// best joint (sum-capacity) setting and report per-link outcomes.
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	scA := channel.DefaultScene(surf, 0.48)
	scA.Rx.Orientation = 0 // Tx at 90° → full mismatch
	scB := channel.DefaultScene(surf, 0.60)
	scB.Rx.Orientation = math.Pi / 4 // Tx at 90° → partial mismatch

	baseA := channel.DefaultScene(nil, 0.48)
	baseA.Rx.Orientation = 0
	baseB := channel.DefaultScene(nil, 0.60)
	baseB.Rx.Orientation = math.Pi / 4

	type point struct{ vx, vy, seA, seB float64 }
	var bestJoint, bestA, bestB point
	for vx := 0.0; vx <= 30; vx += 1.5 {
		for vy := 0.0; vy <= 30; vy += 1.5 {
			surf.SetBias(vx, vy)
			p := point{vx: vx, vy: vy, seA: scA.SpectralEfficiency(), seB: scB.SpectralEfficiency()}
			if p.seA+p.seB > bestJoint.seA+bestJoint.seB {
				bestJoint = p
			}
			if p.seA > bestA.seA {
				bestA = p
			}
			if p.seB > bestB.seB {
				bestB = p
			}
		}
	}
	res := &Result{
		ID:      "ext-multilink",
		Title:   "Two links, one surface: per-link optima vs the joint compromise",
		Columns: []string{"policy", "Vx_V", "Vy_V", "seA", "seB", "sum"},
	}
	res.AddRow(1, bestA.vx, bestA.vy, bestA.seA, bestA.seB, bestA.seA+bestA.seB)
	res.AddRow(2, bestB.vx, bestB.vy, bestB.seA, bestB.seB, bestB.seA+bestB.seB)
	res.AddRow(3, bestJoint.vx, bestJoint.vy, bestJoint.seA, bestJoint.seB, bestJoint.seA+bestJoint.seB)
	res.AddRow(4, math.NaN(), math.NaN(), baseA.SpectralEfficiency(), baseB.SpectralEfficiency(),
		baseA.SpectralEfficiency()+baseB.SpectralEfficiency())
	res.AddNote("policy 1/2 = selfish per-link optimum, 3 = joint sum-capacity, 4 = no surface; the joint setting beats no-surface for both links (the §7 polarization-reuse direction)")
	return res, nil
}
