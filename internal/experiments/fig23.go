package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/sensing"
	"github.com/llama-surface/llama/internal/simclock"
)

func init() {
	// The with/without traces must be zipped row-by-row over a shared time
	// axis, so the whole recording is a single sweep point.
	registerSweep(&Sweep{
		ID:          "fig23",
		Description: "Fig. 23 — human respiration sensing with/without the surface at 5 mW",
		Title:       "Fig. 23 — respiration RSSI trace (60 s, decimated) and detection outcome",
		Columns:     []string{"time_s", "with_dBm", "without_dBm"},
		Points:      1,
		Point:       fig23Point,
	})
}

func fig23Point(ctx context.Context, seed int64, _ int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	surf.SetBias(8, 8)

	run := func(s *metasurface.Surface) (trace []float64, a sensing.Analysis, err error) {
		// §5.2.2 geometry: transceiver pair 70 cm apart, surface 2 m
		// away, 5 mW transmit power, co-polarized endpoints.
		sc := channel.DefaultScene(s, 0.70)
		sc.Mode = metasurface.Reflective
		sc.Geom = channel.Geometry{TxRx: 0.70, TxSurface: 2.0, SurfaceRx: 2.0}
		sc.TxPowerW = 5e-3
		sc.Tx.Orientation = 0
		sc.MeasurementSaturation = 0
		mon, err := sensing.NewMonitor(sc, sensing.DefaultBreather(), 10, 0.4)
		if err != nil {
			return nil, a, err
		}
		trace = mon.Record(60, simclock.RNG(seed, "fig23"))
		a, err = sensing.Analyze(trace, mon.SampleRateHz)
		return trace, a, err
	}
	withTrace, withA, err := run(surf)
	if err != nil {
		return PointResult{}, err
	}
	withoutTrace, withoutA, err := run(nil)
	if err != nil {
		return PointResult{}, err
	}

	var pt PointResult
	for i := 0; i < len(withTrace); i += 10 { // decimate to 1 Hz rows
		pt.Rows = append(pt.Rows, []float64{float64(i) / 10, withTrace[i], withoutTrace[i]})
	}
	pt.AddNote("with surface: detected=%v rate=%.2f Hz (true 0.25), peak SNR %.1f dB",
		withA.Detected, withA.RateHz, withA.PeakSNRdB)
	pt.AddNote("without surface: detected=%v, peak SNR %.1f dB (paper: undetectable at 5 mW)",
		withoutA.Detected, withoutA.PeakSNRdB)
	return pt, nil
}
