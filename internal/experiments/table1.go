package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("tab1", "Table 1 — simulated polarization rotation degrees over the (Vx, Vy) grid", table1)
}

// Table1Biases is the voltage grid of the paper's Table 1.
var Table1Biases = []float64{2, 3, 4, 5, 6, 10, 15}

func table1(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	cols := []string{"Vy_V"}
	for _, vx := range Table1Biases {
		cols = append(cols, "Vx="+formatCell(vx))
	}
	res := &Result{
		ID:      "tab1",
		Title:   "Table 1 — simulated rotation degrees θr(Vx, Vy) at 2.44 GHz",
		Columns: cols,
	}
	min, max := 180.0, 0.0
	for _, vy := range Table1Biases {
		row := []float64{vy}
		for _, vx := range Table1Biases {
			surf.SetBias(vx, vy)
			r := surf.RotationDegrees(units.DefaultCarrierHz)
			row = append(row, r)
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		res.AddRow(row...)
	}
	res.AddNote("rotation range %.1f°–%.1f° (paper Table 1: 1.9°–48.7°)", min, max)
	return res, nil
}
