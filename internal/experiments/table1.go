package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// Table1Biases is the voltage grid of the paper's Table 1.
var Table1Biases = []float64{2, 3, 4, 5, 6, 10, 15}

func init() {
	cols := []string{"Vy_V"}
	for _, vx := range Table1Biases {
		cols = append(cols, "Vx="+formatCell(vx))
	}
	registerSweep(&Sweep{
		ID:          "tab1",
		Description: "Table 1 — simulated polarization rotation degrees over the (Vx, Vy) grid",
		Title:       "Table 1 — simulated rotation degrees θr(Vx, Vy) at 2.44 GHz",
		Columns:     cols,
		Points:      len(Table1Biases),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			vy := Table1Biases[i]
			row := []float64{vy}
			for _, vx := range Table1Biases {
				surf.SetBias(vx, vy)
				row = append(row, surf.RotationDegrees(units.DefaultCarrierHz))
			}
			return Row(row...), nil
		},
		Finish: func(res *Result, seed int64) error {
			min, max := 180.0, 0.0
			for _, row := range res.Rows {
				for _, r := range row[1:] {
					if r < min {
						min = r
					}
					if r > max {
						max = r
					}
				}
			}
			res.AddNote("rotation range %.1f°–%.1f° (paper Table 1: 1.9°–48.7°)", min, max)
			return nil
		},
	})
}
