package experiments

// Engine-level contracts of the design-keyed response tables: sharing
// across surfaces and persistence across processes must be invisible in
// the output bytes (determinism invariant 10), fig15's per-distance
// surfaces must actually reuse one table, LUT-mode cells must never be
// resumed as exact, and the load/save glue must survive corrupt records.
// Run under -race in CI.

import (
	"context"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
	"github.com/llama-surface/llama/internal/units"
)

// TestSharedTableTransparent is the acceptance contract of the shared
// response tables: for seeds {1, 7, 42} at 1 and 8 workers, a run
// answering from freshly shared tables AND a run warm-started purely
// from tables persisted by an earlier process must both be bit-identical
// to the uncached reference.
func TestSharedTableTransparent(t *testing.T) {
	ctx := context.Background()
	ids := []string{"fig16", "tab1"}
	seeds := []int64{1, 7, 42}

	// Uncached references, one per seed (global switch off, serial).
	metasurface.SetCaching(false)
	ref := map[int64][]*Result{}
	for _, seed := range seeds {
		eng := &Engine{Concurrency: 1, IDs: ids}
		res, err := eng.RunAll(ctx, seed)
		if err != nil {
			metasurface.SetCaching(true)
			t.Fatalf("uncached reference seed %d: %v", seed, err)
		}
		ref[seed] = res
	}
	metasurface.SetCaching(true)

	dir := t.TempDir()
	for pass, label := range []string{"fresh-shared", "persisted-reloaded"} {
		for _, workers := range []int{1, 8} {
			for _, seed := range seeds {
				// Each cell starts from an empty registry: pass 0 computes
				// into fresh shared tables (and persists them via StoreDir),
				// pass 1 is warm-started from disk alone.
				metasurface.ResetResponseTables()
				metasurface.ResetGlobalCacheStats()
				rep, err := Execute(ctx, Options{
					IDs: ids, Seeds: []int64{seed},
					Concurrency: workers, ShardRows: workers > 1,
					StoreDir: dir,
				})
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", label, seed, workers, err)
				}
				for _, w := range rep.StoreWarnings {
					t.Errorf("%s seed %d workers %d: unexpected store warning: %s", label, seed, workers, w)
				}
				if len(rep.Results) != len(ref[seed]) {
					t.Fatalf("%s seed %d workers %d: %d results, want %d",
						label, seed, workers, len(rep.Results), len(ref[seed]))
				}
				for i := range rep.Results {
					if !sameResult(rep.Results[i], ref[seed][i]) {
						t.Errorf("%s seed %d workers %d: %q differs from uncached reference",
							label, seed, workers, rep.Results[i].ID)
					}
				}
				if pass == 1 && rep.CacheMisses != 0 {
					// Pass 0 persisted every (axis, QWP) entry these very
					// queries need; a miss means the warm start silently
					// failed and the test proved nothing.
					t.Errorf("%s seed %d workers %d: %d misses on a fully persisted table",
						label, seed, workers, rep.CacheMisses)
				}
			}
		}
		if pass == 0 {
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if recs, err := st.ListTables(); err != nil || len(recs) == 0 {
				t.Fatalf("no response tables persisted after pass 0 (err %v)", err)
			}
		}
	}
}

// TestFig15CrossSurfaceReuse is the regression the tentpole exists for:
// fig15 builds one Surface per distance (seven surfaces, one design), so
// with design-keyed tables the whole sweep must cost roughly ONE
// distance's worth of physics — ≥6/7 of lookups hit, and total misses
// stay within 1.5× of a single-distance run. Per-surface caches (the
// pre-table design) pass the hit-rate bar but fail the miss bound at ~7×.
func TestFig15CrossSurfaceReuse(t *testing.T) {
	ctx := context.Background()

	// Baseline: one distance from a cold registry.
	metasurface.ResetResponseTables()
	metasurface.ResetGlobalCacheStats()
	before := metasurface.GlobalCacheStats()
	if _, err := fig15Point(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	single := metasurface.GlobalCacheStats().Sub(before)
	if single.Misses == 0 {
		t.Fatal("single-distance baseline recorded no misses; fig15 is not exercising the cache")
	}

	// Full sweep, again from cold.
	metasurface.ResetResponseTables()
	before = metasurface.GlobalCacheStats()
	for i := range Fig15Distances {
		if _, err := fig15Point(ctx, 1, i); err != nil {
			t.Fatalf("distance %d: %v", i, err)
		}
	}
	full := metasurface.GlobalCacheStats().Sub(before)

	n := float64(len(Fig15Distances))
	if hr := full.HitRate(); hr < (n-1)/n {
		t.Errorf("fig15 hit rate %.4f, want ≥ %d/%d: per-distance surfaces are not sharing a table",
			hr, len(Fig15Distances)-1, len(Fig15Distances))
	}
	if limit := single.Misses * 3 / 2; full.Misses > limit {
		t.Errorf("full fig15 missed %d times vs %d for one distance (limit %d): the sweep is recomputing per surface",
			full.Misses, single.Misses, limit)
	}
}

// TestLUTRunTaintsStoredCells: cells persisted by an approximate-mode run
// are marked, refused by resume (with a warning naming the mode), and
// recomputed to the exact bytes — after which the clean record resumes
// normally.
func TestLUTRunTaintsStoredCells(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	metasurface.ResetResponseTables()
	exact, err := Execute(ctx, Options{IDs: []string{"fig16"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}

	metasurface.ResetResponseTables()
	rep, err := Execute(ctx, Options{IDs: []string{"fig16"}, Concurrency: 1, StoreDir: dir, LUT: true})
	// Execute's LUT switch has flag semantics (stays on); restore exact
	// mode immediately so a failure below cannot poison other tests.
	metasurface.SetLUT(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTInterpolated == 0 {
		t.Fatal("LUT run interpolated nothing; fig16's scan should sit inside the default grid")
	}
	if tm := rep.Timings[0]; tm.LUTInterpolated != rep.LUTInterpolated || tm.LUTFallbacks != rep.LUTFallbacks {
		t.Errorf("single-worker LUT attribution %d/%d != run totals %d/%d",
			tm.LUTInterpolated, tm.LUTFallbacks, rep.LUTInterpolated, rep.LUTFallbacks)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "APPROXIMATE") {
		t.Errorf("render does not flag the approximate mode:\n%s", sb.String())
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Get("fig16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Meta.LUT {
		t.Fatal("cell persisted by a LUT run is not marked approximate; resume would serve wrong bytes as exact")
	}

	// Resume in exact mode: the tainted record must be recomputed, not
	// reused, and the recomputed bytes equal the exact reference.
	metasurface.ResetResponseTables()
	res, err := Execute(ctx, Options{IDs: []string{"fig16"}, Concurrency: 1, StoreDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReusedCells != 0 || res.ComputedCells != 1 {
		t.Errorf("resume reused %d / computed %d cells, want 0/1 (tainted record refused)",
			res.ReusedCells, res.ComputedCells)
	}
	tainted := false
	for _, w := range res.StoreWarnings {
		if strings.Contains(w, "LUT mode") {
			tainted = true
		}
	}
	if !tainted {
		t.Errorf("resume did not warn about the LUT-tainted record: %v", res.StoreWarnings)
	}
	if !sameResult(res.Results[0], exact.Results[0]) {
		t.Error("recomputed cell differs from the exact reference")
	}

	// The re-persisted record is clean: a second resume reuses it.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := st2.Get("fig16", 1); err != nil || rec.Meta.LUT {
		t.Fatalf("record after exact recompute: err=%v lut=%v, want a clean record", err, rec != nil && rec.Meta.LUT)
	}
	again, err := Execute(ctx, Options{IDs: []string{"fig16"}, Concurrency: 1, StoreDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.ReusedCells != 1 {
		t.Errorf("clean record not reused on the second resume: %+v reused", again.ReusedCells)
	}
}

// TestLoadSaveResponseTablesGlue: the store↔metasurface glue round-trips
// tables losslessly, union-merges with records already on disk, warns
// (and keeps going) on records metasurface rejects, and treats a nil
// store as a no-op.
func TestLoadSaveResponseTablesGlue(t *testing.T) {
	if nt, ne, w := LoadResponseTables(nil); nt != 0 || ne != 0 || w != nil {
		t.Errorf("nil-store load: %d/%d/%v", nt, ne, w)
	}
	if nt, ne, w := SaveResponseTables(nil); nt != 0 || ne != 0 || w != nil {
		t.Errorf("nil-store save: %d/%d/%v", nt, ne, w)
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
	f := units.DefaultCarrierHz

	metasurface.ResetResponseTables()
	s := metasurface.MustNew(d)
	s.SetBias(8, 8)
	s.JonesTransmissive(f) // 2 axis entries + 1 QWP entry
	if nt, ne, w := SaveResponseTables(st); nt != 1 || ne != 3 || len(w) != 0 {
		t.Fatalf("save: %d tables / %d entries / %v, want 1/3/none", nt, ne, w)
	}

	metasurface.ResetResponseTables()
	if nt, ne, w := LoadResponseTables(st); nt != 1 || ne != 3 || len(w) != 0 {
		t.Fatalf("load: %d tables / %d entries / %v, want 1/3/none", nt, ne, w)
	}
	warm := metasurface.MustNew(d)
	warm.SetBias(8, 8)
	warm.JonesTransmissive(f)
	if cs := warm.CacheStats(); cs.Misses != 0 || cs.Hits != 3 {
		t.Fatalf("warm surface = %+v, want 3 hits / 0 misses", cs)
	}

	// A new bias point grows the table; saving union-merges with disk.
	warm.SetBias(8, 9)
	warm.JonesTransmissive(f) // Y-axis entry is new
	if nt, ne, w := SaveResponseTables(st); nt != 1 || ne != 4 || len(w) != 0 {
		t.Fatalf("merge save: %d tables / %d entries / %v, want 1/4/none", nt, ne, w)
	}
	metasurface.ResetResponseTables()
	if _, ne, _ := LoadResponseTables(st); ne != 4 {
		t.Fatalf("reload after merge: %d entries, want 4", ne)
	}

	// A record the store lists but metasurface rejects (wrong arity) must
	// warn, name the fingerprint, and not block the good table.
	if err := st.PutTable(&store.TableRecord{Fingerprint: "bogus-fp", Axis: [][]string{{"X", "1"}}}); err != nil {
		t.Fatal(err)
	}
	metasurface.ResetResponseTables()
	nt, ne, warns := LoadResponseTables(st)
	if nt != 1 || ne != 4 {
		t.Errorf("load with corrupt sibling: %d tables / %d entries, want the good 1/4", nt, ne)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "bogus-fp") || !strings.Contains(warns[0], "skipping") {
		t.Errorf("corrupt record warning = %v, want one naming bogus-fp and 'skipping'", warns)
	}
}
