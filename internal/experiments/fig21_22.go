package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
)

// Fig21Distances are the Tx–surface separations of §5.2.1 (Tx–Rx fixed at
// 70 cm on the same side of the surface).
var Fig21Distances = []float64{0.24, 0.30, 0.36, 0.42, 0.48, 0.54, 0.60, 0.66}

func init() {
	registerSweep(&Sweep{
		ID:          "fig21",
		Description: "Fig. 21 — reflective-mode power landscape over the bias plane at 8 Tx–surface distances",
		Title:       "Fig. 21 — reflective bias-plane landscape vs Tx–surface distance (mismatched)",
		Columns:     []string{"dist_cm", "bestVx_V", "bestVy_V", "peak_dBm", "valley_dBm", "range_dB"},
		Points:      len(Fig21Distances),
		Point:       fig21Point,
		Warm:        warmScanAxis(1.5),
		Finish: func(res *Result, seed int64) error {
			res.AddNote("bias dynamic range is much smaller than transmissive Fig. 15 (rotation largely cancels on reflection)")
			return nil
		},
	})
	registerSweep(&Sweep{
		ID:          "fig22",
		Description: "Fig. 22 — reflective power and capacity with/without the surface vs distance",
		Title:       "Fig. 22 — reflective received power and spectral efficiency vs Tx–surface distance",
		Columns:     []string{"dist_cm", "with_dBm", "without_dBm", "gain_dB", "se_with", "se_without"},
		Points:      len(Fig21Distances),
		Point:       fig22Point,
		Warm:        warmScanAxis(1.5),
		Finish: func(res *Result, seed int64) error {
			gains := res.Column(3)
			ses := res.Column(4)
			baseSes := res.Column(5)
			var maxDeltaSE float64
			for i := range ses {
				if d := ses[i] - baseSes[i]; d > maxDeltaSE {
					maxDeltaSE = d
				}
			}
			res.AddNote("max reflective gain %.1f dB (paper: 17 dB); max capacity delta %.2f bit/s/Hz (paper: 0.18)",
				maxIn(gains), maxDeltaSE)
			return nil
		},
	})
}

// reflectiveScene builds the same-side geometry for one Tx–surface leg.
// The capacity leg of Fig. 22 runs at 5 µW so the measured-SNR estimator
// is not pinned at its saturation ceiling for both configurations (the
// same regime the paper's capacity axis spans, 0.1–0.6).
func reflectiveScene(surf *metasurface.Surface, d float64) *channel.Scene {
	sc := channel.DefaultScene(surf, 0.70)
	sc.Mode = metasurface.Reflective
	sc.Geom = channel.Geometry{TxRx: 0.70, TxSurface: d, SurfaceRx: d}
	sc.TxPowerW = 5e-6
	return sc
}

// fig21Point scans the bias plane at one Tx–surface distance.
func fig21Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	d := Fig21Distances[i]
	sc := reflectiveScene(surf, d)
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
	scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
	if err != nil {
		return PointResult{}, err
	}
	valley := scan.Samples[0].PowerDBm
	for _, s := range scan.Samples {
		if s.PowerDBm < valley {
			valley = s.PowerDBm
		}
	}
	return Row(d*100, scan.BestVx, scan.BestVy, scan.BestPowerDBm, valley, scan.BestPowerDBm-valley), nil
}

// fig22Point compares tuned reflective power and capacity against the
// bare link at one Tx–surface distance.
func fig22Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	d := Fig21Distances[i]
	sc := reflectiveScene(surf, d)
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
	scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
	if err != nil {
		return PointResult{}, err
	}
	base := reflectiveScene(nil, d)
	base.Surface = nil
	return Row(d*100, scan.BestPowerDBm, base.ReceivedPowerDBm(),
		scan.BestPowerDBm-base.ReceivedPowerDBm(),
		sc.SpectralEfficiency(), base.SpectralEfficiency()), nil
}
