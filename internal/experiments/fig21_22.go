package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("fig21", "Fig. 21 — reflective-mode power landscape over the bias plane at 8 Tx–surface distances", fig21)
	register("fig22", "Fig. 22 — reflective power and capacity with/without the surface vs distance", fig22)
}

// Fig21Distances are the Tx–surface separations of §5.2.1 (Tx–Rx fixed at
// 70 cm on the same side of the surface).
var Fig21Distances = []float64{0.24, 0.30, 0.36, 0.42, 0.48, 0.54, 0.60, 0.66}

// reflectiveScene builds the same-side geometry for one Tx–surface leg.
// The capacity leg of Fig. 22 runs at 5 µW so the measured-SNR estimator
// is not pinned at its saturation ceiling for both configurations (the
// same regime the paper's capacity axis spans, 0.1–0.6).
func reflectiveScene(surf *metasurface.Surface, d float64) *channel.Scene {
	sc := channel.DefaultScene(surf, 0.70)
	sc.Mode = metasurface.Reflective
	sc.Geom = channel.Geometry{TxRx: 0.70, TxSurface: d, SurfaceRx: d}
	sc.TxPowerW = 5e-6
	return sc
}

func fig21(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig21",
		Title:   "Fig. 21 — reflective bias-plane landscape vs Tx–surface distance (mismatched)",
		Columns: []string{"dist_cm", "bestVx_V", "bestVy_V", "peak_dBm", "valley_dBm", "range_dB"},
	}
	for _, d := range Fig21Distances {
		sc := reflectiveScene(surf, d)
		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
		if err != nil {
			return nil, err
		}
		valley := scan.Samples[0].PowerDBm
		for _, s := range scan.Samples {
			if s.PowerDBm < valley {
				valley = s.PowerDBm
			}
		}
		res.AddRow(d*100, scan.BestVx, scan.BestVy, scan.BestPowerDBm, valley, scan.BestPowerDBm-valley)
	}
	res.AddNote("bias dynamic range is much smaller than transmissive Fig. 15 (rotation largely cancels on reflection)")
	return res, nil
}

func fig22(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig22",
		Title:   "Fig. 22 — reflective received power and spectral efficiency vs Tx–surface distance",
		Columns: []string{"dist_cm", "with_dBm", "without_dBm", "gain_dB", "se_with", "se_without"},
	}
	for _, d := range Fig21Distances {
		sc := reflectiveScene(surf, d)
		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
		if err != nil {
			return nil, err
		}
		base := reflectiveScene(nil, d)
		base.Surface = nil
		res.AddRow(d*100, scan.BestPowerDBm, base.ReceivedPowerDBm(),
			scan.BestPowerDBm-base.ReceivedPowerDBm(),
			sc.SpectralEfficiency(), base.SpectralEfficiency())
	}
	gains := res.Column(3)
	ses := res.Column(4)
	baseSes := res.Column(5)
	var maxDeltaSE float64
	for i := range ses {
		if d := ses[i] - baseSes[i]; d > maxDeltaSE {
			maxDeltaSE = d
		}
	}
	res.AddNote("max reflective gain %.1f dB (paper: 17 dB); max capacity delta %.2f bit/s/Hz (paper: 0.18)",
		maxIn(gains), maxDeltaSE)
	return res, nil
}
