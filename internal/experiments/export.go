package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV renders the result as RFC-4180 CSV: a header row of column
// names followed by the numeric body. NaN renders as an empty cell and
// ±Inf as "inf"/"-inf", so spreadsheets ingest the file without choking.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	row := make([]string, len(r.Columns))
	for _, vals := range r.Rows {
		for i, v := range vals {
			row[i] = csvCell(v)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the aggregate as CSV: each source column appears
// twice, as its mean ("col") and its seed-axis spread ("col_sd").
func (r *ReplicatedResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 2*len(r.Columns))
	for _, c := range r.Columns {
		header = append(header, c, c+"_sd")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	row := make([]string, 2*len(r.Columns))
	for ri := range r.Mean {
		for ci := range r.Columns {
			row[2*ci] = csvCell(r.Mean[ri][ci])
			row[2*ci+1] = csvCell(r.Stddev[ri][ci])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableEmitter is the rendering surface shared by Result and
// ReplicatedResult, letting WriteTables walk either uniformly.
type tableEmitter interface {
	Render(io.Writer) error
	WriteCSV(io.Writer) error
	WriteJSON(io.Writer) error
}

// WriteTables writes every table of the report in the given format
// ("text", "csv" or "json"): the mean±stddev aggregates when the run
// was replicated across several seeds, the per-seed tables otherwise —
// each followed by a blank line. This is the exact byte stream
// llama-bench prints to stdout and llama-serve serves for a completed
// run; both call here, so the two can never drift (determinism
// invariant 7 in ARCHITECTURE.md). Tables emitted before a mid-stream
// error stay written; the error names the table that failed.
func (rep *Report) WriteTables(w io.Writer, format string) error {
	var emit func(tableEmitter) error
	switch format {
	case "text":
		emit = func(t tableEmitter) error { return t.Render(w) }
	case "csv":
		emit = func(t tableEmitter) error { return t.WriteCSV(w) }
	case "json":
		emit = func(t tableEmitter) error { return t.WriteJSON(w) }
	default:
		return fmt.Errorf("experiments: unknown format %q (want text, csv or json)", format)
	}
	var tables []tableEmitter
	var ids []string
	if len(rep.Replicated) > 0 {
		for _, res := range rep.Replicated {
			tables = append(tables, res)
			ids = append(ids, res.ID)
		}
	} else {
		for _, res := range rep.Results {
			tables = append(tables, res)
			ids = append(ids, res.ID)
		}
	}
	for i, t := range tables {
		if err := emit(t); err != nil {
			return fmt.Errorf("emitting %s (after %d of %d tables): %w", ids[i], i, len(tables), err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return fmt.Errorf("emitting %s (after %d of %d tables): %w", ids[i], i, len(tables), err)
		}
	}
	return nil
}

// csvCell formats one numeric CSV cell, keeping NaN/Inf spreadsheet-safe.
func csvCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return ""
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// replicatedJSON is the stable JSON shape of a ReplicatedResult.
type replicatedJSON struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Seeds   []int64     `json:"seeds"`
	Mean    [][]float64 `json:"mean"`
	Stddev  [][]float64 `json:"stddev"`
}

// WriteJSON renders the aggregate as a single JSON document, with the
// same non-finite-value clamping as Result.WriteJSON.
func (r *ReplicatedResult) WriteJSON(w io.Writer) error {
	doc := replicatedJSON{
		ID: r.ID, Title: r.Title, Columns: r.Columns, Seeds: r.Seeds,
		Mean: cleanRows(r.Mean), Stddev: cleanRows(r.Stddev),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("experiments: json: %w", err)
	}
	return nil
}

// cleanRows clamps non-finite values for JSON encoding (NaN → 0,
// ±Inf → ±1e308); shared by both WriteJSON implementations.
func cleanRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		clean := make([]float64, len(row))
		for j, v := range row {
			if math.IsNaN(v) {
				v = 0
			} else if math.IsInf(v, 0) {
				v = math.Copysign(1e308, v)
			}
			clean[j] = v
		}
		out[i] = clean
	}
	return out
}

// resultJSON is the stable JSON shape of a Result.
type resultJSON struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
	Notes   []string    `json:"notes,omitempty"`
}

// WriteJSON renders the result as a single JSON document.
// encoding/json rejects NaN/Inf, so non-finite cells are clamped by
// cleanRows (NaN → 0, ±Inf → ±1e308, a sentinel far outside any
// physical value in these tables).
func (r *Result) WriteJSON(w io.Writer) error {
	doc := resultJSON{ID: r.ID, Title: r.Title, Columns: r.Columns, Notes: r.Notes, Rows: cleanRows(r.Rows)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("experiments: json: %w", err)
	}
	return nil
}
