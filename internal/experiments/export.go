package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV renders the result as RFC-4180 CSV: a header row of column
// names followed by the numeric body. NaN renders as an empty cell and
// ±Inf as "inf"/"-inf", so spreadsheets ingest the file without choking.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	row := make([]string, len(r.Columns))
	for _, vals := range r.Rows {
		for i, v := range vals {
			switch {
			case math.IsNaN(v):
				row[i] = ""
			case math.IsInf(v, 1):
				row[i] = "inf"
			case math.IsInf(v, -1):
				row[i] = "-inf"
			default:
				row[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the stable JSON shape of a Result.
type resultJSON struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
	Notes   []string    `json:"notes,omitempty"`
}

// WriteJSON renders the result as a single JSON document. Non-finite
// values are replaced by nulls via string round-tripping of the row
// slice (encoding/json rejects NaN/Inf).
func (r *Result) WriteJSON(w io.Writer) error {
	doc := resultJSON{ID: r.ID, Title: r.Title, Columns: r.Columns, Notes: r.Notes}
	doc.Rows = make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		clean := make([]float64, len(row))
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// JSON has no NaN/Inf; clamp to a sentinel far outside
				// any physical value in these tables.
				v = math.Copysign(1e308, v)
				if math.IsNaN(row[j]) {
					v = 0
				}
			}
			clean[j] = v
		}
		doc.Rows[i] = clean
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("experiments: json: %w", err)
	}
	return nil
}
