package experiments

import (
	"context"
	"fmt"
)

// A Sweep declares one experiment as an axis of independent points: a
// fixed number of points plus a per-point function that is pure in
// (seed, point). The serial reference path executes points 0..Points-1 in
// order; the Engine, when row sharding is enabled, fans the same points
// out across its worker pool as individual jobs and reassembles them in
// slot (point) order, so both paths produce bit-identical tables.
//
// A sweep point may produce several rows (a histogram computed in one
// pass) or exactly one (a distance step of a §5 sweep). Experiments whose
// work does not decompose along any axis declare a single point; they
// still ride the same queue, they just don't shard.
type Sweep struct {
	// ID is the registry key (e.g. "fig16"); Description the one-line
	// summary shown by -list.
	ID, Description string
	// Title and Columns seed the assembled Result.
	Title   string
	Columns []string
	// Points is the axis length. Zero is legal and yields an empty table
	// (Finish still runs).
	Points int
	// Point computes point i. It must be pure in (seed, i): no state may
	// leak between points, and ctx is consulted only for cancellation.
	// That purity is the sharding contract — the Engine may run points in
	// any order on any goroutine.
	Point func(ctx context.Context, seed int64, i int) (PointResult, error)
	// Finish post-processes the assembled table (summary notes computed
	// over all rows). It runs exactly once, after every point, on the
	// already-ordered rows — never concurrently. Optional.
	Finish func(res *Result, seed int64) error
	// Warm, when set, pre-populates memoization state for the batch of
	// points [start, start+count) before they run — typically one
	// Surface.Warm covering the batch's whole operating-point axis, so a
	// cold process resolves the batch's misses in one grouped pass
	// instead of one mutex round-trip per point. Warm MUST be
	// bit-neutral: it may only populate the same caches the points
	// themselves would populate, never alter an output (the sharded and
	// serial paths call it at different batch granularities, and both
	// must still reproduce the unwarmed tables bit-for-bit). Optional.
	Warm func(ctx context.Context, seed int64, start, count int)
}

// PointResult is the output of one sweep point: the rows it contributes
// (in order) and any per-point notes.
type PointResult struct {
	Rows  [][]float64
	Notes []string
}

// Row wraps a single table row as a PointResult — the common case for
// per-distance/per-frequency sweep points.
func Row(vals ...float64) PointResult {
	return PointResult{Rows: [][]float64{vals}}
}

// AddNote appends a formatted note to the point's output.
func (p *PointResult) AddNote(format string, args ...any) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// PointError names the sweep point whose per-point function failed.
type PointError struct {
	// Point is the failing index on the 0-based axis of Points points.
	Point, Points int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *PointError) Error() string {
	return fmt.Sprintf("point %d/%d: %v", e.Point, e.Points, e.Err)
}

// Unwrap returns the underlying point failure.
func (e *PointError) Unwrap() error { return e.Err }

// sweeps indexes the row-shardable experiments by ID. Every sweep is also
// in registry (via its serial closure), so the non-sharded paths need no
// special cases.
var sweeps = map[string]*Sweep{}

// RegisterSweep adds a custom sweep-shaped experiment to the registry,
// making it runnable by ID through every execution path (serial,
// engine, scheduler, service). It is intended for init-time extension —
// registration is not safe concurrently with running experiments — and
// panics on a duplicate ID, a nil Point function or negative Points,
// all programmer errors.
func RegisterSweep(s *Sweep) { registerSweep(s) }

// registerSweep registers a sweep-shaped experiment: the serial closure
// goes into the ordinary registry and the sweep itself is indexed for the
// Engine's row-sharded mode.
func registerSweep(s *Sweep) {
	if s.Point == nil {
		panic("experiments: sweep " + s.ID + " has no Point function")
	}
	if s.Points < 0 {
		panic("experiments: sweep " + s.ID + " has negative Points")
	}
	register(s.ID, s.Description, s.runSerial)
	sweeps[s.ID] = s
}

// newResult builds the empty table a sweep's points fill in.
func (s *Sweep) newResult() *Result {
	return &Result{
		ID:      s.ID,
		Title:   s.Title,
		Columns: append([]string(nil), s.Columns...),
	}
}

// appendPoint folds one point's output into the table, enforcing column
// arity exactly like Result.AddRow.
func (s *Sweep) appendPoint(res *Result, pt PointResult) {
	for _, row := range pt.Rows {
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes, pt.Notes...)
}

// finish runs the optional Finish hook on the assembled table.
func (s *Sweep) finish(res *Result, seed int64) error {
	if s.Finish == nil {
		return nil
	}
	return s.Finish(res, seed)
}

// runSerial is the sweep's registry Runner: points in axis order on one
// goroutine — the reference the sharded path must reproduce bit-for-bit.
// On a point failure the rows assembled so far are returned alongside a
// *PointError naming the failing point, so callers can salvage the
// completed prefix.
func (s *Sweep) runSerial(ctx context.Context, seed int64) (*Result, error) {
	res := s.newResult()
	if s.Warm != nil && s.Points > 0 {
		s.Warm(ctx, seed, 0, s.Points)
	}
	for i := 0; i < s.Points; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		pt, err := s.Point(ctx, seed, i)
		if err != nil {
			return res, &PointError{Point: i, Points: s.Points, Err: err}
		}
		s.appendPoint(res, pt)
	}
	return res, s.finish(res, seed)
}

// axis materializes the inclusive accumulating for-loop the imperative
// runners used (`for v := start; v <= stopIncl; v += step`) so sweep
// points index bit-identical axis values.
func axis(start, stopIncl, step float64) []float64 {
	var out []float64
	for v := start; v <= stopIncl; v += step {
		out = append(out, v)
	}
	return out
}
