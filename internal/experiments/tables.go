package experiments

// Glue between the per-design response tables (internal/metasurface)
// and their persisted records (internal/store). The store deliberately
// treats table entries as opaque string rows, and metasurface knows
// nothing about disk layout — this file is the only place the two
// meet, so llama-bench, llama-serve and llama-worker all warm-start
// and persist tables through one code path.

import (
	"fmt"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
)

// LoadResponseTables imports every persisted response table from the
// store into the process-wide table registry, so surfaces built
// afterwards (or already built for the same designs) answer from warm
// tables. It returns the number of tables and entries imported and a
// warning per record that could not be used — corrupt or
// metasurface-rejected records cost recomputation, never correctness,
// so they warn instead of failing.
func LoadResponseTables(st *store.Store) (tables, entries int, warns []string) {
	if st == nil {
		return 0, 0, nil
	}
	recs, err := st.ListTables()
	if err != nil {
		return 0, 0, []string{fmt.Sprintf("store: listing response tables: %v: starting cold", err)}
	}
	for _, rec := range recs {
		n, err := metasurface.ImportResponseTable(metasurface.TableExport{
			Fingerprint: rec.Fingerprint,
			Axis:        rec.Axis,
			QWP:         rec.QWP,
		})
		if err != nil {
			warns = append(warns, fmt.Sprintf("store: response table %s at %s: %v: skipping", rec.Fingerprint, rec.Path, err))
			continue
		}
		tables++
		entries += n
	}
	return tables, entries, warns
}

// LoadLUTGrids imports every persisted LUT grid from the store into the
// process-wide table registry, so approximate-mode lookups interpolate
// from the imported grid instead of paying a dense rebuild
// (metasurface.GlobalLUTGridBuilds stays at zero for warm designs). It
// returns the number of grids and samples imported plus a warning per
// unusable record — like tables, grids are pure acceleration state, so
// a bad record warns and the grid rebuilds on demand.
func LoadLUTGrids(st *store.Store) (grids, samples int, warns []string) {
	if st == nil {
		return 0, 0, nil
	}
	recs, err := st.ListGrids()
	if err != nil {
		return 0, 0, []string{fmt.Sprintf("store: listing LUT grids: %v: rebuilding on demand", err)}
	}
	for _, rec := range recs {
		n, err := metasurface.ImportLUTGrid(metasurface.GridExport{
			Fingerprint: rec.Fingerprint,
			Meta:        rec.Meta,
			Samples:     rec.Samples,
		})
		if err != nil {
			warns = append(warns, fmt.Sprintf("store: LUT grid %s at %s: %v: rebuilding on demand", rec.Fingerprint, rec.Path, err))
			continue
		}
		grids++
		samples += n
	}
	return grids, samples, warns
}

// SaveLUTGrids persists every built in-memory LUT grid to the store.
// Unlike response tables there is nothing to union-merge: a grid is a
// pure function of (design, LUTConfig), so the freshly built grid IS
// the record and simply overwrites. It returns the number of grids and
// samples written and any warnings.
func SaveLUTGrids(st *store.Store) (grids, samples int, warns []string) {
	if st == nil {
		return 0, 0, nil
	}
	for _, ex := range metasurface.ExportLUTGrids() {
		rec := &store.GridRecord{Fingerprint: ex.Fingerprint, Meta: ex.Meta, Samples: ex.Samples}
		if err := st.PutGrid(rec); err != nil {
			warns = append(warns, fmt.Sprintf("%v", err))
			continue
		}
		grids++
		samples += rec.Entries()
	}
	return grids, samples, warns
}

// SaveResponseTables persists every non-empty in-memory response table
// to the store, union-merged with whatever is already on disk: an
// existing record's entries are imported first (existing in-memory
// entries win, so nothing this process computed is overwritten), then
// the merged table is re-exported and written atomically. Concurrent
// writers can still lose each other's *new* entries to a last-write
// race — acceptable for what is pure acceleration state. A corrupt
// existing record is warned about and overwritten with the fresh
// table. It returns the number of tables and entries written and any
// warnings.
func SaveResponseTables(st *store.Store) (tables, entries int, warns []string) {
	if st == nil {
		return 0, 0, nil
	}
	for _, ex := range metasurface.ExportResponseTables() {
		if len(ex.Axis) == 0 && len(ex.QWP) == 0 {
			continue // an empty table record would only add scan noise
		}
		if old, err := st.GetTable(ex.Fingerprint); err == nil {
			if _, err := metasurface.ImportResponseTable(metasurface.TableExport{
				Fingerprint: old.Fingerprint,
				Axis:        old.Axis,
				QWP:         old.QWP,
			}); err != nil {
				warns = append(warns, fmt.Sprintf("store: merging response table %s at %s: %v: overwriting", ex.Fingerprint, old.Path, err))
			} else {
				// Re-export so the written record carries the union.
				for _, merged := range metasurface.ExportResponseTables() {
					if merged.Fingerprint == ex.Fingerprint {
						ex = merged
						break
					}
				}
			}
		} else if !store.IsTableNotFound(err) {
			warns = append(warns, fmt.Sprintf("store: reading response table %s: %v: overwriting", ex.Fingerprint, err))
		}
		rec := &store.TableRecord{Fingerprint: ex.Fingerprint, Axis: ex.Axis, QWP: ex.QWP}
		if err := st.PutTable(rec); err != nil {
			warns = append(warns, fmt.Sprintf("%v", err))
			continue
		}
		tables++
		entries += rec.Entries()
	}
	return tables, entries, warns
}
