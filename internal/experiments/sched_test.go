package experiments

// Scheduler-level coverage: concurrent submissions sharing one pool
// must be byte-equivalent to sequential one-shot runs (the contract
// llama-serve builds invariant 7 on), Submit/Cancel cycles must not
// leak goroutines, and submission validation must fail fast. Run under
// -race in CI.

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// tablesCSV renders the one-shot reference bytes for a spec: the serial
// (Concurrency 1, unsharded) engine run — what `llama-bench -format
// csv` prints for the same selection.
func tablesCSV(t *testing.T, opts Options) string {
	t.Helper()
	rep, err := Execute(context.Background(), opts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatalf("reference render: %v", err)
	}
	return buf.String()
}

// handleCSV waits for a submission and renders its tables as CSV.
func handleCSV(t *testing.T, h *RunHandle) string {
	t.Helper()
	rep, err := h.Report()
	if err != nil {
		t.Fatalf("submission: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatalf("submission render: %v", err)
	}
	return buf.String()
}

// TestConcurrentSubmissionsMatchSequential is the scheduler's
// determinism contract: two overlapping Submits sharing one pool
// produce exactly the bytes two sequential llama-bench runs produce,
// for workers {1, 8} × shard on/off. Their jobs interleave in one
// queue, so a clean pass certifies that slot-indexed collection keeps
// submissions independent.
func TestConcurrentSubmissionsMatchSequential(t *testing.T) {
	ctx := context.Background()
	specA := RunSpec{IDs: []string{"fig2a", "tab1"}, Seeds: []int64{1, 2}}
	specB := RunSpec{IDs: []string{"fig12", "fig2b"}, Seeds: []int64{3, 4}}
	wantA := tablesCSV(t, Options{IDs: specA.IDs, Seeds: specA.Seeds, Concurrency: 1})
	wantB := tablesCSV(t, Options{IDs: specB.IDs, Seeds: specB.Seeds, Concurrency: 1})
	for _, workers := range []int{1, 8} {
		for _, shard := range []bool{false, true} {
			s := NewScheduler(SchedulerConfig{Workers: workers})
			sA, sB := specA, specB
			sA.ShardRows, sB.ShardRows = shard, shard
			hA, err := s.Submit(ctx, sA)
			if err != nil {
				t.Fatalf("workers %d shard %v: submit A: %v", workers, shard, err)
			}
			hB, err := s.Submit(ctx, sB)
			if err != nil {
				t.Fatalf("workers %d shard %v: submit B: %v", workers, shard, err)
			}
			gotA, gotB := handleCSV(t, hA), handleCSV(t, hB)
			if gotA != wantA {
				t.Errorf("workers %d shard %v: submission A bytes differ from sequential run", workers, shard)
			}
			if gotB != wantB {
				t.Errorf("workers %d shard %v: submission B bytes differ from sequential run", workers, shard)
			}
			s.Close()
		}
	}
}

// TestSubmissionCancelIndependent: cancelling one submission must not
// perturb a concurrent one — the survivor's bytes still match the
// sequential reference.
func TestSubmissionCancelIndependent(t *testing.T) {
	ctx := context.Background()
	want := tablesCSV(t, Options{IDs: []string{"tab1"}, Seeds: []int64{1, 2}, Concurrency: 1})
	s := NewScheduler(SchedulerConfig{Workers: 4})
	defer s.Close()
	victim, err := s.Submit(ctx, RunSpec{IDs: []string{"fig15"}, Seeds: []int64{1, 2, 3}, ShardRows: true})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := s.Submit(ctx, RunSpec{IDs: []string{"tab1"}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, err := victim.Report(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled submission: err = %v, want context.Canceled", err)
	}
	if got := handleCSV(t, survivor); got != want {
		t.Error("survivor bytes differ after neighbour cancellation")
	}
	if !victim.Progress().Finished {
		t.Error("cancelled handle not marked finished")
	}
}

// TestSchedulerGoroutineBound is the leak bound the service relies on:
// many Submit/cancel cycles against one scheduler leave no stragglers —
// during the churn the count stays near baseline + pool, and after
// Close it settles back to the pre-scheduler level. Run under -race.
func TestSchedulerGoroutineBound(t *testing.T) {
	before := runtime.NumGoroutine()
	const workers = 4
	s := NewScheduler(SchedulerConfig{Workers: workers})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		h, err := s.Submit(ctx, RunSpec{IDs: []string{"fig2a"}, Seeds: []int64{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			h.Cancel()
		}
		<-h.Done()
	}
	// Mid-life: only the pool (plus a little runtime slack) may remain.
	if n := runtime.NumGoroutine(); n > before+workers+8 {
		t.Errorf("goroutines during churn: before=%d now=%d — per-submission leak", before, n)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after close=%d — scheduler leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitValidation: bad specs fail fast, before any job runs.
func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), RunSpec{IDs: []string{"no-such-id"}}); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Errorf("unknown id: err = %v", err)
	}
	if _, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1"}, Resume: true}); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("resume without store: err = %v", err)
	}
}

// TestSubmitAfterClose: a closed scheduler refuses work with the typed
// sentinel instead of wedging the submitter.
func TestSubmitAfterClose(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1"}}); !errors.Is(err, ErrSchedulerClosed) {
		t.Errorf("submit after close: err = %v, want ErrSchedulerClosed", err)
	}
}

// TestResolveIDsEmptyAndDuplicates: an explicitly empty selection (the
// decoded-JSON `"ids": []` shape) means everything — not a silent
// zero-experiment run — and duplicated IDs collapse to one cell so no
// spec can compute or emit a table twice.
func TestResolveIDsEmptyAndDuplicates(t *testing.T) {
	all, err := resolveIDs([]string{})
	if err != nil {
		t.Fatal(err)
	}
	if want := IDs(); len(all) != len(want) {
		t.Errorf("empty selection resolved to %d ids, want all %d", len(all), len(want))
	}
	dedup, err := resolveIDs([]string{"tab1", "fig2a", "tab1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup) != 2 || dedup[0] != "fig2a" || dedup[1] != "tab1" {
		t.Errorf("deduped selection = %v, want [fig2a tab1]", dedup)
	}
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Close()
	h, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1", "tab1"}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Errorf("duplicated spec produced %d tables, want 1", len(rep.Results))
	}
}

// TestEngineResumeRequiresStore: the Engine-level guard matching the
// Options/CLI checks — Resume with no Store configured is a
// configuration error, not a silent no-op.
func TestEngineResumeRequiresStore(t *testing.T) {
	eng := &Engine{Resume: true}
	if _, err := eng.RunAll(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "Engine.Store") {
		t.Errorf("err = %v, want Engine.Store requirement", err)
	}
}

// TestHandleProgressAndSpec: the handle reports the normalized spec and
// monotone progress that ends complete.
func TestHandleProgressAndSpec(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Close()
	h, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1", "fig2a"}, Seeds: nil})
	if err != nil {
		t.Fatal(err)
	}
	spec := h.Spec()
	if want := []string{"fig2a", "tab1"}; len(spec.IDs) != 2 || spec.IDs[0] != want[0] || spec.IDs[1] != want[1] {
		t.Errorf("normalized IDs = %v, want %v", spec.IDs, want)
	}
	if len(spec.Seeds) != 1 || spec.Seeds[0] != 1 {
		t.Errorf("defaulted seeds = %v, want [1]", spec.Seeds)
	}
	if _, err := h.Report(); err != nil {
		t.Fatal(err)
	}
	p := h.Progress()
	if !p.Finished || p.DoneJobs != p.TotalJobs || p.TotalCells != 2 {
		t.Errorf("final progress = %+v, want finished with all jobs done over 2 cells", p)
	}
}

// TestConcurrentSubmitStress hammers one scheduler from many
// goroutines to give -race a fair shot at the registry/queue paths.
func TestConcurrentSubmitStress(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4})
	defer s.Close()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1"}, Seeds: []int64{int64(i + 1)}})
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = h.Report()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submitter %d: %v", i, err)
		}
	}
}
