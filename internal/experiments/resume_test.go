package experiments

import (
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/store"
)

// resumeTestIDs are fast experiments with distinct shapes: a histogram
// sweep and a bias-rotation table.
var resumeTestIDs = []string{"fig2a", "tab1"}

// sameReplicated compares aggregates bit-for-bit (NaN-safe), ignoring
// wall time.
func sameReplicated(a, b *ReplicatedResult) bool {
	if a.ID != b.ID || a.Title != b.Title ||
		!reflect.DeepEqual(a.Columns, b.Columns) || !reflect.DeepEqual(a.Seeds, b.Seeds) ||
		len(a.Mean) != len(b.Mean) {
		return false
	}
	for ri := range a.Mean {
		if len(a.Mean[ri]) != len(b.Mean[ri]) {
			return false
		}
		for ci := range a.Mean[ri] {
			if math.Float64bits(a.Mean[ri][ci]) != math.Float64bits(b.Mean[ri][ci]) ||
				math.Float64bits(a.Stddev[ri][ci]) != math.Float64bits(b.Stddev[ri][ci]) {
				return false
			}
		}
	}
	return true
}

// seedRange returns seeds lo..hi inclusive.
func seedRange(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}

// TestResumeBitIdentity is determinism invariant 6: a run with seeds
// {1..5} persisted to a store, followed by a resumed run with seeds
// {1..10}, must reuse the first five cells per experiment and produce
// Results and Replicated output bit-identical to a fresh {1..10} run —
// for workers {1, 8}, sharded and not. Run under -race in CI.
func TestResumeBitIdentity(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		for _, shard := range []bool{false, true} {
			dir := t.TempDir()
			base := Options{IDs: resumeTestIDs, Concurrency: workers, ShardRows: shard}

			first := base
			first.Seeds = seedRange(1, 5)
			first.StoreDir = dir
			firstRep, err := Execute(ctx, first)
			if err != nil {
				t.Fatalf("workers %d shard %v: first run: %v", workers, shard, err)
			}
			if firstRep.PersistedCells != len(resumeTestIDs)*5 {
				t.Errorf("workers %d shard %v: persisted %d cells, want %d",
					workers, shard, firstRep.PersistedCells, len(resumeTestIDs)*5)
			}

			resumed := base
			resumed.Seeds = seedRange(1, 10)
			resumed.StoreDir = dir
			resumed.Resume = true
			resumedRep, err := Execute(ctx, resumed)
			if err != nil {
				t.Fatalf("workers %d shard %v: resumed run: %v", workers, shard, err)
			}
			if resumedRep.ReusedCells != len(resumeTestIDs)*5 || resumedRep.ComputedCells != len(resumeTestIDs)*5 {
				t.Errorf("workers %d shard %v: reused %d / computed %d cells, want %d / %d",
					workers, shard, resumedRep.ReusedCells, resumedRep.ComputedCells,
					len(resumeTestIDs)*5, len(resumeTestIDs)*5)
			}
			if len(resumedRep.StoreWarnings) != 0 {
				t.Errorf("workers %d shard %v: unexpected store warnings: %v",
					workers, shard, resumedRep.StoreWarnings)
			}

			fresh := base
			fresh.Seeds = seedRange(1, 10)
			freshRep, err := Execute(ctx, fresh)
			if err != nil {
				t.Fatalf("workers %d shard %v: fresh run: %v", workers, shard, err)
			}

			if len(resumedRep.Results) != len(freshRep.Results) {
				t.Fatalf("workers %d shard %v: %d resumed results, fresh %d",
					workers, shard, len(resumedRep.Results), len(freshRep.Results))
			}
			for i := range freshRep.Results {
				if !sameResult(resumedRep.Results[i], freshRep.Results[i]) {
					t.Errorf("workers %d shard %v: resumed result %q differs from fresh run",
						workers, shard, freshRep.Results[i].ID)
				}
			}
			if len(resumedRep.Replicated) != len(freshRep.Replicated) {
				t.Fatalf("workers %d shard %v: %d resumed aggregates, fresh %d",
					workers, shard, len(resumedRep.Replicated), len(freshRep.Replicated))
			}
			for i := range freshRep.Replicated {
				if !sameReplicated(resumedRep.Replicated[i], freshRep.Replicated[i]) {
					t.Errorf("workers %d shard %v: resumed aggregate %q differs from fresh run",
						workers, shard, freshRep.Replicated[i].ID)
				}
			}

			// A second resume over the full seed set recomputes nothing.
			again, err := Execute(ctx, resumed)
			if err != nil {
				t.Fatalf("workers %d shard %v: second resume: %v", workers, shard, err)
			}
			if again.ReusedCells != len(resumeTestIDs)*10 || again.ComputedCells != 0 {
				t.Errorf("workers %d shard %v: second resume reused %d / computed %d, want %d / 0",
					workers, shard, again.ReusedCells, again.ComputedCells, len(resumeTestIDs)*10)
			}
			for i := range freshRep.Replicated {
				if !sameReplicated(again.Replicated[i], freshRep.Replicated[i]) {
					t.Errorf("workers %d shard %v: fully reused aggregate %q differs from fresh run",
						workers, shard, freshRep.Replicated[i].ID)
				}
			}
		}
	}
}

// TestResumeRendersReuseCounts: the stderr summary reports reused and
// recomputed cell counts.
func TestResumeRendersReuseCounts(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	if _, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 2), StoreDir: dir}); err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 5), StoreDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "store: reused 2 cell(s), recomputed 3, persisted 3") {
		t.Errorf("render missing store reuse summary:\n%s", sb.String())
	}
}

// corruptStoredCell damages the record for (id, seed) in dir with the
// given mutator.
func corruptStoredCell(t *testing.T, dir, id string, seed int64, mutate func(data []byte) []byte) string {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := st.CellPath(id, seed)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestResumeRecomputesDamagedCells: truncated records, schema-version
// drift, and stored tables shaped unlike the current sweep each surface
// as a warning naming the experiment, seed and file — and the cell is
// recomputed and re-persisted, so the resumed output still matches a
// fresh run bit-for-bit.
func TestResumeRecomputesDamagedCells(t *testing.T) {
	ctx := context.Background()
	fresh, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 3)})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(data []byte) []byte
		wants  []string
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/3] }, []string{"corrupt"}},
		{"schema", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), `"schema":1`, `"schema":42`, 1))
		}, []string{"schema version 42"}},
		{"shape", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), `"Vy_V"`, `"volts"`, 1))
		}, []string{"stored columns", "sweep declares"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 3), StoreDir: dir}); err != nil {
				t.Fatal(err)
			}
			path := corruptStoredCell(t, dir, "tab1", 2, tc.mutate)

			rep, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 3), StoreDir: dir, Resume: true})
			if err != nil {
				t.Fatalf("resume over damaged store must not fail: %v", err)
			}
			if rep.ReusedCells != 2 || rep.ComputedCells != 1 {
				t.Errorf("reused %d / computed %d, want 2 / 1", rep.ReusedCells, rep.ComputedCells)
			}
			if len(rep.StoreWarnings) != 1 {
				t.Fatalf("warnings = %v, want exactly one", rep.StoreWarnings)
			}
			for _, want := range append([]string{"tab1", "seed 2", path}, tc.wants...) {
				if !strings.Contains(rep.StoreWarnings[0], want) {
					t.Errorf("warning %q does not name %q", rep.StoreWarnings[0], want)
				}
			}
			for i := range fresh.Results {
				if !sameResult(rep.Results[i], fresh.Results[i]) {
					t.Errorf("recomputed result %q differs from fresh run", fresh.Results[i].ID)
				}
			}
			for i := range fresh.Replicated {
				if !sameReplicated(rep.Replicated[i], fresh.Replicated[i]) {
					t.Errorf("recomputed aggregate %q differs from fresh run", fresh.Replicated[i].ID)
				}
			}

			// The damaged cell was re-persisted: a second resume reuses
			// everything cleanly.
			again, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: seedRange(1, 3), StoreDir: dir, Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			if again.ReusedCells != 3 || len(again.StoreWarnings) != 0 {
				t.Errorf("after repair: reused %d, warnings %v", again.ReusedCells, again.StoreWarnings)
			}
		})
	}
}

// TestResumeRequiresStoreDir: Options.Resume without a store is a
// configuration error, caught before any compute.
func TestResumeRequiresStoreDir(t *testing.T) {
	_, err := Execute(context.Background(), Options{IDs: []string{"tab1"}, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "StoreDir") {
		t.Fatalf("err = %v, want StoreDir requirement", err)
	}
}

// TestStorePersistsCompletedCellsOnFailure: when one experiment fails,
// sibling experiments' completed cells are still written to the store,
// so a later resume recomputes only what actually broke. IDs sort
// zz-pfail-aa before zz-pfail-bb, so on one worker the completing sweep
// finishes before the failing one runs — deterministic.
func TestStorePersistsCompletedCellsOnFailure(t *testing.T) {
	tempSweep(t, countingSweep("zz-pfail-aa", 3))
	boom := countingSweep("zz-pfail-bb", 3)
	boom.Finish = func(res *Result, seed int64) error {
		return errors.New("boom")
	}
	tempSweep(t, boom)

	dir := t.TempDir()
	rep, err := Execute(context.Background(),
		Options{IDs: []string{"zz-pfail-aa", "zz-pfail-bb"}, Concurrency: 1, StoreDir: dir})
	if err == nil {
		t.Fatal("failing experiment did not report")
	}
	if rep.PersistedCells != 1 {
		t.Errorf("persisted %d cells, want 1 (the completed sibling)", rep.PersistedCells)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("zz-pfail-aa", 1); err != nil {
		t.Fatalf("completed sibling not persisted: %v", err)
	}
	if _, err := st.Get("zz-pfail-bb", 1); !store.IsNotFound(err) {
		t.Fatalf("failed cell must not be stored: %v", err)
	}
}
