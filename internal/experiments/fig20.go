package experiments

import (
	"context"
	"math"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/devices"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	// One optimization pass feeds one sampling pass that fills every
	// histogram bin, so the figure is a single sweep point.
	registerSweep(&Sweep{
		ID:          "fig20",
		Description: "Fig. 20 — low-cost IoT link RSSI PDFs with/without the metasurface (mismatched)",
		Title:       "Fig. 20 — ESP8266 ↔ AP RSSI PDFs, mismatched, with vs without LLAMA",
		Columns:     []string{"rssi_dBm", "pdf_with_pct", "pdf_without_pct"},
		Points:      1,
		Point:       fig20Point,
	})
}

func fig20Point(ctx context.Context, seed int64, _ int) (PointResult, error) {
	const samples = 2000
	const bins = 30
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	scSurf := channel.DefaultScene(surf, 2.0)
	scBare := channel.DefaultScene(nil, 2.0)

	// Optimize the surface for the IoT link before sampling.
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) {
		probe := *scSurf
		probe.FreqHz = devices.NetgearAP.FreqHz
		probe.TxPowerW = units.DBmToWatts(devices.NetgearAP.TxPowerDBm)
		probe.Tx.Antenna = devices.NetgearAP.Antenna
		probe.Rx.Antenna = devices.ESP8266.Antenna
		// Match the sampled link exactly: AP element at 0°, plug
		// installed sideways at 90°.
		probe.Tx.Orientation = 0
		probe.Rx.Orientation = math.Pi / 2
		return probe.ReceivedPowerDBm(), nil
	})
	if _, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen); err != nil {
		return PointResult{}, err
	}

	rng := simclock.RNG(seed, "fig20")
	withLink, err := devices.NewLink(devices.NetgearAP, devices.ESP8266, 0, math.Pi/2, scSurf)
	if err != nil {
		return PointResult{}, err
	}
	withoutLink, err := devices.NewLink(devices.NetgearAP, devices.ESP8266, 0, math.Pi/2, scBare)
	if err != nil {
		return PointResult{}, err
	}
	wSamp := withLink.SampleRSSI(samples, rng)
	oSamp := withoutLink.SampleRSSI(samples, rng)
	lo, hi := -60.0, -25.0
	wHist := signal.Histogram(wSamp, lo, hi, bins)
	oHist := signal.Histogram(oSamp, lo, hi, bins)

	var pt PointResult
	w := (hi - lo) / bins
	for i := 0; i < bins; i++ {
		pt.Rows = append(pt.Rows, []float64{lo + (float64(i)+0.5)*w, wHist[i], oHist[i]})
	}
	wMean, _ := signal.MeanAndStd(wSamp)
	oMean, _ := signal.MeanAndStd(oSamp)
	pt.AddNote("mean with surface %.1f dBm, without %.1f dBm: gain %.1f dB (paper: ≈10 dB)",
		wMean, oMean, wMean-oMean)
	return pt, nil
}
