// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the design-space ablations called out in
// DESIGN.md. Each experiment is a pure function of a seed, producing a
// numeric Result that cmd/llama-bench renders as text and bench_test.go
// exercises as a benchmark.
//
// Experiments are declared as Sweeps: an axis of points plus a per-point
// function pure in (seed, point). The serial path (Run/RunAll) walks the
// axis in order; the concurrent Engine fans whole experiments — and, with
// ShardRows, individual sweep points — across one bounded worker pool,
// collecting into pre-assigned slots so output is bit-identical to the
// serial path for any worker count. See ARCHITECTURE.md at the repository
// root for the layer diagram and the determinism invariants.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Result is a rendered experiment outcome: a labelled numeric table (the
// rows/series the paper plots) plus free-form notes on the headline
// comparison.
type Result struct {
	// ID is the registry key (e.g. "fig16").
	ID string
	// Title describes the paper artefact reproduced.
	Title string
	// Columns labels the numeric columns.
	Columns []string
	// Rows is the table body.
	Rows [][]float64
	// Notes carries the headline observations (who wins, by how much).
	Notes []string
}

// AddRow appends a row, enforcing column arity.
func (r *Result) AddRow(vals ...float64) {
	if len(vals) != len(r.Columns) {
		panic(fmt.Sprintf("experiments: %s: row arity %d != %d columns", r.ID, len(vals), len(r.Columns)))
	}
	r.Rows = append(r.Rows, vals)
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as an aligned text table.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	cells := make([][]string, len(r.Rows))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "—"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Column extracts one column by index.
func (r *Result) Column(i int) []float64 {
	out := make([]float64, len(r.Rows))
	for ri, row := range r.Rows {
		out[ri] = row[i]
	}
	return out
}

// Runner generates a result from a seed. Runners must be pure: the same
// seed always yields bit-identical output, and the supplied context is
// consulted only for cancellation (it never feeds entropy into the
// result). That purity is what lets the Engine fan runners out across
// goroutines and still reproduce the serial tables exactly.
type Runner func(ctx context.Context, seed int64) (*Result, error)

// registry maps experiment IDs to runners, populated by init functions in
// the per-figure files.
var registry = map[string]Runner{}

// descriptions holds one-line summaries for listing.
var descriptions = map[string]string{}

// register adds an experiment; duplicate IDs are programmer errors.
func register(id, description string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	descriptions[id] = description
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line summary for an experiment ID.
func Describe(id string) string { return descriptions[id] }

// Run executes one experiment by ID under ctx.
func Run(ctx context.Context, id string, seed int64) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r(ctx, seed)
}

// RunAll executes every experiment serially in ID order. It is the
// reference path the concurrent Engine must reproduce bit-for-bit; on
// error the results computed so far are returned alongside it.
func RunAll(ctx context.Context, seed int64) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := Run(ctx, id, seed)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// maxIn returns the maximum of xs; -Inf for empty input.
func maxIn(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// minIn returns the minimum of xs; +Inf for empty input.
func minIn(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
