package experiments

// The scheduler is the engine's execution core, split out of the old
// one-shot Engine.run monolith so ONE bounded worker pool can serve MANY
// concurrent submissions: a long-lived service Submits runs as they
// arrive and every run's jobs — whole-experiment cells, sharded sweep
// points, batched point runs — interleave in the same queue. Collection
// stays slot-indexed per submission and assembly runs per submission in
// slot order, so sharing the pool cannot change any submission's bytes;
// that is what lets `llama-serve` promise service-served results
// bit-identical to `llama-bench` output (determinism invariant 7 in
// ARCHITECTURE.md). The one-shot paths (Engine, Execute,
// llama.RunExperiments) construct a private scheduler per run, so every
// entry point executes this same core.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
)

// RunSpec describes one submission: which experiments, across which
// seeds, and how the work fans out. It is the submission-shaped
// equivalent of Options (which remains the one-shot configuration).
type RunSpec struct {
	// IDs restricts the run to a subset of the registry; nil or empty
	// means every registered experiment, and duplicates count once.
	// Submit resolves, sorts and dedupes the list, so a handle's Spec
	// always names the concrete IDs it runs.
	IDs []string
	// Seeds are the replication seeds; nil means {1}.
	Seeds []int64
	// ShardRows splits sweep-shaped experiments into per-point row jobs.
	ShardRows bool
	// BatchRows groups that many consecutive sweep points per sharded
	// job; ≤1 means one point per job.
	BatchRows int
	// Resume consults the scheduler's store before queueing each cell
	// and reuses valid records; requires the scheduler to have a store.
	// Output is bit-identical to a fresh run (invariant 6).
	Resume bool
}

// clone deep-copies the spec's slices so callers cannot mutate a
// submission's layout after the fact.
func (sp RunSpec) clone() RunSpec {
	sp.IDs = append([]string(nil), sp.IDs...)
	sp.Seeds = append([]int64(nil), sp.Seeds...)
	return sp
}

// ErrSchedulerClosed is returned by Submit once Close has begun: the
// pool is draining and can accept no further work. Service fronts map
// it to a retryable (503-style) condition rather than a spec error.
var ErrSchedulerClosed = errors.New("experiments: scheduler is closed")

// SchedulerConfig sizes a Scheduler.
type SchedulerConfig struct {
	// Workers bounds the shared pool; ≤0 means runtime.GOMAXPROCS(0).
	Workers int
	// Store, when non-nil, is the durable results backend: every
	// submission persists its freshly computed cells there, and Resume
	// submissions consult it before queueing jobs.
	Store *store.Store
	// LeaseOnly starts no local workers at all: jobs are dispatched
	// exclusively through TryLease (the fleet coordinator's pull path),
	// so the coordinator process spends no CPU on compute. Zero-job
	// submissions (fully resumed from the store) still finalize
	// immediately, so result reconstruction works without a fleet.
	LeaseOnly bool
}

// Dispatch lanes: the priority lane is always served before the normal
// lane, and within each lane submissions are served round-robin, one
// job at a time — so one huge submission cannot starve its neighbours,
// and a decode-heavy reconstruction (the service's result path) never
// queues behind live compute.
const (
	lanePriority = iota
	laneNormal
	laneCount
)

// Scheduler owns one bounded worker pool and the per-submission job
// queues behind it. Dispatch is round-robin across the submissions of a
// lane (fairness) with the priority lane drained first. It is
// long-lived: create one, Submit many runs concurrently, Close once.
// Methods are safe for concurrent use.
type Scheduler struct {
	workers int
	st      *store.Store

	pool sync.WaitGroup // worker goroutines

	mu   sync.Mutex
	cond *sync.Cond // signalled when a lane gains work or the pool stops

	active map[*submission]struct{}
	// lanes are the dispatch rings: FIFOs of submissions that still have
	// unfed jobs. A worker takes the front submission's next job and, if
	// the submission has more, re-appends it at the back — that rotation
	// is the round-robin.
	lanes   [laneCount][]*submission
	closed  bool           // no new submissions
	stopped bool           // workers may exit (set after the last submission drains)
	subs    sync.WaitGroup // finalizers of live submissions
}

// NewScheduler starts the worker pool. Close must be called to release
// it.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if cfg.LeaseOnly {
		w = 0
	}
	s := &Scheduler{
		workers: w,
		st:      cfg.Store,
		active:  make(map[*submission]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.pool.Add(w)
	for i := 0; i < w; i++ {
		go s.worker()
	}
	return s
}

// Store returns the scheduler's durable results backend, nil when the
// scheduler is memory-only.
func (s *Scheduler) Store() *store.Store { return s.st }

// Workers returns the resolved pool width.
func (s *Scheduler) Workers() int { return s.workers }

// worker pulls jobs off the dispatch rings until Close stops the pool.
// Jobs from different submissions interleave round-robin; each job
// writes only its own pre-assigned slot.
func (s *Scheduler) worker() {
	defer s.pool.Done()
	for {
		jb, ok := s.next()
		if !ok {
			return
		}
		jb.sub.execute(jb)
	}
}

// next blocks until a job is dispatchable and returns it, or returns
// false once the pool is stopped. The priority lane is drained first;
// within a lane the front submission yields one job and rotates to the
// back, so concurrent submissions advance in lockstep regardless of
// size. Jobs requeued by an expired lease are dealt before the
// submission's undispatched tail, and jobs a late external completion
// already settled are skipped.
func (s *Scheduler) next() (schedJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for lane := range s.lanes {
			for len(s.lanes[lane]) > 0 {
				sub := s.lanes[lane][0]
				s.lanes[lane] = s.lanes[lane][1:]
				jb, ok := sub.popJobLocked()
				if sub.pendingLocked() {
					s.lanes[lane] = append(s.lanes[lane], sub)
				} else {
					sub.inRing = false
					sub.maybeReleaseLocked()
				}
				if ok {
					return jb, true
				}
			}
		}
		if s.stopped {
			return schedJob{}, false
		}
		s.cond.Wait()
	}
}

// popJobLocked yields the submission's next dispatchable job: requeued
// lease returns first (skipping any a late completion settled in the
// meantime), then the undispatched tail of the fixed queue. Caller
// holds the scheduler mutex.
func (sub *submission) popJobLocked() (schedJob, bool) {
	for len(sub.requeue) > 0 {
		jb := sub.requeue[0]
		sub.requeue = sub.requeue[1:]
		if !sub.settled[jb.ji].Load() {
			return jb, true
		}
	}
	if sub.nextJob < len(sub.queue) {
		jb := sub.queue[sub.nextJob]
		sub.nextJob++
		return jb, true
	}
	return schedJob{}, false
}

// pendingLocked reports whether the submission still has undispatched
// work (requeued or never dealt). Caller holds the scheduler mutex.
func (sub *submission) pendingLocked() bool {
	return len(sub.requeue) > 0 || sub.nextJob < len(sub.queue)
}

// maybeReleaseLocked closes fed — releasing the cancel watcher — once
// the submission can produce no further dispatches: every queue job
// dealt, nothing requeued, and no lease outstanding that could requeue.
// Caller holds the scheduler mutex.
func (sub *submission) maybeReleaseLocked() {
	if sub.fedClosed || sub.inRing || sub.pendingLocked() || len(sub.leased) > 0 {
		return
	}
	sub.fedClosed = true
	close(sub.fed)
}

// dropSettledRequeueLocked prunes requeued entries a late external
// completion settled, so a stale copy can never hold fed open. Caller
// holds the scheduler mutex.
func (sub *submission) dropSettledRequeueLocked() {
	keep := sub.requeue[:0]
	for _, jb := range sub.requeue {
		if !sub.settled[jb.ji].Load() {
			keep = append(keep, jb)
		}
	}
	sub.requeue = keep
}

// abandon settles a cancelled submission's unfinished jobs — requeued,
// undispatched, and leased-out alike — and accounts them as done, so
// the submission finalizes promptly even while every worker is busy
// elsewhere and no lease holder ever reports back. Jobs already
// dispatched to a local worker account for themselves in execute; a
// lease completion arriving after this loses the settle race and is
// dropped.
func (s *Scheduler) abandon(sub *submission) {
	s.mu.Lock()
	n := 0
	settle := func(ji int) {
		if sub.settled[ji].CompareAndSwap(false, true) {
			n++
		}
	}
	for _, jb := range sub.requeue {
		settle(jb.ji)
	}
	sub.requeue = nil
	for ; sub.nextJob < len(sub.queue); sub.nextJob++ {
		settle(sub.queue[sub.nextJob].ji)
	}
	for ji := range sub.leased {
		settle(ji)
		delete(sub.leased, ji)
	}
	if sub.inRing {
		ring := s.lanes[sub.lane]
		for i, x := range ring {
			if x == sub {
				s.lanes[sub.lane] = append(ring[:i], ring[i+1:]...)
				break
			}
		}
		sub.inRing = false
	}
	sub.maybeReleaseLocked()
	s.mu.Unlock()
	sub.jobDone(n)
}

// watchCancel abandons the submission's unfed jobs the moment its
// context dies; it exits quietly once every job has been dispatched.
func (sub *submission) watchCancel(s *Scheduler) {
	select {
	case <-sub.ctx.Done():
		s.abandon(sub)
	case <-sub.fed:
	}
}

// Submit validates and lays out spec, enqueues its jobs on the normal
// lane behind whatever is already running, and returns a handle
// immediately. The submission's output is bit-identical to what Execute
// would produce for the same spec, regardless of what else shares the
// pool. ctx cancellation (or RunHandle.Cancel) stops the submission
// without touching its neighbours.
func (s *Scheduler) Submit(ctx context.Context, spec RunSpec) (*RunHandle, error) {
	return s.submit(ctx, spec, laneNormal)
}

// SubmitPriority is Submit on the priority lane: its jobs are
// dispatched before any normal-lane job (round-robin among priority
// submissions). It exists for latency-sensitive reconstruction work —
// the service re-serves a completed run by decoding stored cells, and
// the few jobs such a submission queues (only cells the store lost)
// must not wait behind hours of live compute. Output bytes are
// unaffected by the lane (determinism invariant 3).
func (s *Scheduler) SubmitPriority(ctx context.Context, spec RunSpec) (*RunHandle, error) {
	return s.submit(ctx, spec, lanePriority)
}

// submit is the shared Submit/SubmitPriority body.
func (s *Scheduler) submit(ctx context.Context, spec RunSpec, lane int) (*RunHandle, error) {
	sub, err := newSubmission(ctx, spec, s.st)
	if err != nil {
		return nil, err
	}
	if err := s.launch(sub, lane); err != nil {
		return nil, err
	}
	return &RunHandle{sub: sub}, nil
}

// launch registers a laid-out submission and makes its jobs
// dispatchable on the given lane.
func (s *Scheduler) launch(sub *submission, lane int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sub.cancelFn() // release the derived context
		return ErrSchedulerClosed
	}
	sub.sched = s
	sub.workers = s.workers
	// The response-cache counters are process-global, so per-job deltas
	// are attributable only when exactly one job runs at a time.
	sub.trackCache = s.workers == 1
	sub.lane = lane
	s.active[sub] = struct{}{}
	s.subs.Add(1)
	if len(sub.queue) == 0 {
		// Fully resumed from the store (or an empty selection): nothing
		// to dispatch, finalize straight away — the pool is never touched,
		// so decode-only reconstructions cannot queue behind compute.
		s.mu.Unlock()
		go sub.finish()
		return nil
	}
	sub.inRing = true
	s.lanes[lane] = append(s.lanes[lane], sub)
	s.cond.Broadcast()
	s.mu.Unlock()
	go sub.watchCancel(s)
	return nil
}

// Close cancels every live submission, waits for them to finalize
// (completed cells of in-flight runs persist to the store — the salvage
// path), then stops and releases the worker pool. Safe to call more
// than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*submission, 0, len(s.active))
	for sub := range s.active {
		live = append(live, sub)
	}
	s.mu.Unlock()
	for _, sub := range live {
		sub.cancelFn()
	}
	s.subs.Wait()
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.pool.Wait()
}

// schedJob is one unit of queued work: a whole-experiment cell, one
// sweep point, or a contiguous batch of points of one cell. ji is the
// job's index in its submission's fixed queue — the settle key that
// makes completion idempotent when a job is dispatched more than once
// (lease expiry requeues it).
type schedJob struct {
	sub          *submission
	cell         int
	point, count int
	ji           int
}

// submission is one Submit call in flight: its fixed cell/job layout,
// collection slots, and completion state. The layout is built before
// any job runs (invariant 3), so concurrent submissions sharing the
// pool cannot perturb each other's slot assignment.
type submission struct {
	spec  RunSpec
	ids   []string
	seeds []int64
	batch int

	parent     context.Context // the submitter's context: its cancellation wins
	ctx        context.Context // derived; cancelled on failure/Cancel/Close
	cancelFn   context.CancelFunc
	userCancel atomic.Bool

	sched      *Scheduler
	st         *store.Store
	workers    int
	trackCache bool

	// Dispatch state, guarded by the scheduler's mu: the lane the
	// submission queues on, the index of its next undispatched job, and
	// whether it currently sits in its lane's ring. fed is closed (once,
	// fedClosed guards the double-dispatch paths) when the submission can
	// yield no further dispatch — every job dealt or abandoned, nothing
	// requeued, no lease outstanding — releasing watchCancel. requeue
	// holds jobs returned by expired/abandoned leases, dealt before the
	// queue tail; leased tracks job indices currently out on a lease.
	lane      int
	nextJob   int
	inRing    bool
	fedClosed bool
	fed       chan struct{}
	requeue   []schedJob
	leased    map[int]struct{}

	// settled has one flag per queue slot; the first finisher — local
	// execute, external lease completion, or abandonment — wins the CAS
	// and alone writes the job's collection slots and accounts it in
	// jobDone. Everyone else drops their result. That single gate is what
	// makes duplicate completions, reassignment races, and late replies
	// from presumed-dead workers safe (invariant 9).
	settled []atomic.Bool

	start      time.Time
	cacheStart metasurface.CacheStats
	lutStart   metasurface.LUTStats
	// lutMode snapshots whether approximate LUT mode was on when the
	// submission was created; persisted cells are stamped with it so
	// resume runs can refuse to reuse approximate rows.
	lutMode bool

	cells      []cellRun
	queue      []schedJob
	storeWarns []string
	reused     int

	completed atomic.Int64 // job slots executed or abandoned
	done      chan struct{}
	report    *Report
	err       error
}

// newSubmission validates spec and lays out every cell and job slot —
// consulting the store for reusable cells when spec.Resume is set —
// before any worker can touch it.
func newSubmission(ctx context.Context, spec RunSpec, st *store.Store) (*submission, error) {
	if spec.Resume && st == nil {
		return nil, errors.New("experiments: RunSpec.Resume requires a results store (set Options.StoreDir / SchedulerConfig.Store)")
	}
	ids, err := resolveIDs(spec.IDs)
	if err != nil {
		return nil, err
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	batch := spec.BatchRows
	if batch < 1 {
		batch = 1
	}
	runCtx, cancel := context.WithCancel(ctx)
	sub := &submission{
		spec: RunSpec{
			IDs:       ids,
			Seeds:     append([]int64(nil), seeds...),
			ShardRows: spec.ShardRows,
			BatchRows: batch,
			Resume:    spec.Resume,
		},
		ids:        ids,
		seeds:      append([]int64(nil), seeds...),
		batch:      batch,
		parent:     ctx,
		ctx:        runCtx,
		cancelFn:   cancel,
		st:         st,
		fed:        make(chan struct{}),
		start:      time.Now(),
		cacheStart: metasurface.GlobalCacheStats(),
		lutStart:   metasurface.GlobalLUTStats(),
		lutMode:    metasurface.LUTEnabled(),
		done:       make(chan struct{}),
	}
	// Lay out every cell and its job slots before any worker starts: the
	// fixed layout is what makes collection order-independent. With
	// BatchRows > 1 a job covers a contiguous run of sweep points, but
	// collection slots stay per point, so batching cannot reorder rows.
	sub.cells = make([]cellRun, 0, len(ids)*len(seeds))
	for _, id := range ids {
		for _, seed := range seeds {
			c := cellRun{id: id, seed: seed}
			if spec.Resume && st != nil {
				// A valid stored record stands in for the whole cell: no
				// jobs are queued and res is the decoded table, so
				// aggregation folds stored and fresh seeds identically.
				if res, warn, ok := loadStored(st, id, seed); ok {
					c.loaded = true
					c.res = res
					sub.cells = append(sub.cells, c)
					sub.reused++
					continue
				} else if warn != "" {
					sub.storeWarns = append(sub.storeWarns, warn)
				}
			}
			if spec.ShardRows {
				c.sweep = sweeps[id]
			}
			slots := 1
			if c.sweep != nil {
				slots = c.sweep.Points
			}
			c.points = make([]PointResult, slots)
			c.done = make([]bool, slots)
			c.errs = make([]error, slots)
			c.started = make([]time.Time, slots)
			c.elapsed = make([]time.Duration, slots)
			c.cacheHits = make([]uint64, slots)
			c.cacheMisses = make([]uint64, slots)
			c.lutInterp = make([]uint64, slots)
			c.lutFallback = make([]uint64, slots)
			ci := len(sub.cells)
			sub.cells = append(sub.cells, c)
			if c.sweep != nil {
				for p := 0; p < c.sweep.Points; p += batch {
					n := batch
					if p+n > c.sweep.Points {
						n = c.sweep.Points - p
					}
					sub.queue = append(sub.queue, schedJob{sub: sub, cell: ci, point: p, count: n})
				}
			} else {
				sub.queue = append(sub.queue, schedJob{sub: sub, cell: ci, point: 0, count: 1})
			}
		}
	}
	for i := range sub.queue {
		sub.queue[i].ji = i
	}
	sub.settled = make([]atomic.Bool, len(sub.queue))
	sub.leased = make(map[int]struct{})
	return sub, nil
}

// execute runs one job on a pool worker. It computes into local
// scratch first and commits to the job's pre-assigned slots only after
// winning the settle CAS — a local re-execution of a requeued job can
// race a late external completion of the same job, and exactly one of
// them may write. A job error cancels this submission (fail fast)
// without touching the scheduler's other submissions.
func (sub *submission) execute(jb schedJob) {
	if sub.settled[jb.ji].Load() {
		return // a late external completion beat the requeue; nothing to do
	}
	c := &sub.cells[jb.cell]
	if c.sweep == nil {
		var cs metasurface.CacheStats
		var ls metasurface.LUTStats
		if sub.trackCache {
			cs = metasurface.GlobalCacheStats()
			ls = metasurface.GlobalLUTStats()
		}
		started := time.Now()
		res, err := Run(sub.ctx, c.id, c.seed)
		elapsed := time.Since(started)
		var hits, misses, interp, fallback uint64
		if sub.trackCache {
			d := metasurface.GlobalCacheStats().Sub(cs)
			hits, misses = d.Hits, d.Misses
			ld := metasurface.GlobalLUTStats().Sub(ls)
			interp, fallback = ld.Interpolated, ld.Fallbacks
		}
		if !sub.settled[jb.ji].CompareAndSwap(false, true) {
			return
		}
		defer sub.jobDone(1)
		c.started[jb.point] = started
		c.elapsed[jb.point] = elapsed
		c.cacheHits[jb.point], c.cacheMisses[jb.point] = hits, misses
		c.lutInterp[jb.point], c.lutFallback[jb.point] = interp, fallback
		if err != nil {
			c.errs[jb.point] = fmt.Errorf("experiments: %s (seed %d): %w", c.id, c.seed, err)
			if res != nil && len(res.Rows) > 0 {
				c.partial = res // a sweep's serial runner salvages its prefix
			}
			sub.cancelFn() // fail fast: stop feeding this submission's jobs
			return
		}
		c.res = res
		c.done[jb.point] = true
		return
	}
	scratch := make([]PointResult, jb.count)
	started := make([]time.Time, jb.count)
	elapsed := make([]time.Duration, jb.count)
	hits := make([]uint64, jb.count)
	misses := make([]uint64, jb.count)
	interp := make([]uint64, jb.count)
	fallback := make([]uint64, jb.count)
	ran := 0
	var runErr error
	for p := jb.point; p < jb.point+jb.count; p++ {
		i := p - jb.point
		var cs metasurface.CacheStats
		var ls metasurface.LUTStats
		if sub.trackCache {
			cs = metasurface.GlobalCacheStats()
			ls = metasurface.GlobalLUTStats()
		}
		started[i] = time.Now()
		if p == jb.point && c.sweep.Warm != nil {
			// Warm the whole batch inside the first point's stat-sampling
			// window, so warming's cache traffic stays attributed to this
			// batch (per-point counters still sum to the run totals).
			c.sweep.Warm(sub.ctx, c.seed, jb.point, jb.count)
		}
		pt, err := c.sweep.Point(sub.ctx, c.seed, p)
		elapsed[i] = time.Since(started[i])
		if sub.trackCache {
			d := metasurface.GlobalCacheStats().Sub(cs)
			hits[i], misses[i] = d.Hits, d.Misses
			ld := metasurface.GlobalLUTStats().Sub(ls)
			interp[i], fallback[i] = ld.Interpolated, ld.Fallbacks
		}
		ran++
		if err != nil {
			runErr = err
			break // the batch's remaining points stay unrun
		}
		scratch[i] = pt
	}
	if !sub.settled[jb.ji].CompareAndSwap(false, true) {
		return
	}
	defer sub.jobDone(1)
	for i := 0; i < ran; i++ {
		p := jb.point + i
		c.started[p] = started[i]
		c.elapsed[p] = elapsed[i]
		c.cacheHits[p], c.cacheMisses[p] = hits[i], misses[i]
		c.lutInterp[p], c.lutFallback[p] = interp[i], fallback[i]
		if i == ran-1 && runErr != nil {
			c.errs[p] = runErr
			sub.cancelFn()
			return
		}
		c.points[p] = scratch[i]
		c.done[p] = true
	}
}

// jobDone accounts n finished (or abandoned) job slots; retiring the
// last slot triggers finalization. The atomic counter orders every
// worker's slot writes before the finalizer's reads, and finish runs
// on its own goroutine so a pool worker is never stalled behind
// another submission's assembly and fsync'd persistence.
func (sub *submission) jobDone(n int) {
	if n == 0 {
		return
	}
	if sub.completed.Add(int64(n)) == int64(len(sub.queue)) {
		go sub.finish()
	}
}

// finish finalizes the submission (assembly, persistence, report),
// publishes the result and unregisters from the scheduler.
func (sub *submission) finish() {
	sub.finalize()
	close(sub.done)
	if s := sub.sched; s != nil {
		s.mu.Lock()
		delete(s.active, sub)
		s.mu.Unlock()
		s.subs.Done()
	}
}

// finalize is the single-threaded tail of a submission: slot-ordered
// assembly (sweep reassembly, salvage, per-cell errors), deterministic
// error policy, persistence of freshly computed cells, and report
// aggregation — byte-for-byte the same policy the one-shot engine
// applied, so a submission's report cannot depend on what else shared
// the pool.
func (sub *submission) finalize() {
	cacheDelta := metasurface.GlobalCacheStats().Sub(sub.cacheStart)
	lutDelta := metasurface.GlobalLUTStats().Sub(sub.lutStart)
	conc := sub.workers
	if n := len(sub.queue); conc > n {
		conc = n
	}
	if conc < 1 {
		conc = 1
	}
	rep := &Report{
		Seeds:           append([]int64(nil), sub.seeds...),
		Concurrency:     conc,
		Wall:            time.Since(sub.start),
		ShardRows:       sub.spec.ShardRows,
		BatchRows:       sub.batch,
		CacheHits:       cacheDelta.Hits,
		CacheMisses:     cacheDelta.Misses,
		LUTInterpolated: lutDelta.Interpolated,
		LUTFallbacks:    lutDelta.Fallbacks,
	}
	cells := sub.cells
	seeds := sub.seeds
	// Assemble every cell in slot order, then resolve the error policy
	// deterministically: the submitter's cancellation wins, then the
	// first real (non-cancellation) cell failure by slot index, then any
	// remaining cell error.
	for ci := range cells {
		cells[ci].assemble()
	}
	firstErr := sub.parent.Err()
	if firstErr == nil && sub.userCancel.Load() {
		firstErr = context.Canceled
	}
	if firstErr == nil {
		for ci := range cells {
			cerr := cells[ci].err
			if cerr == nil && len(cells[ci].errs) > 0 {
				// A whole-experiment worker error lands in errs[0].
				cerr = cells[ci].errs[0]
			}
			if cerr == nil {
				continue
			}
			if firstErr == nil {
				firstErr = cerr
			}
			if !errors.Is(cerr, context.Canceled) {
				firstErr = cerr
				break
			}
		}
	}

	// Persist every freshly computed cell — including completed cells of
	// a run that failed or was cancelled elsewhere, so partial progress
	// survives and a later Resume recomputes only what is actually
	// missing. A write failure names its cell and always surfaces — as
	// the run error when nothing else failed first, and as a store
	// warning regardless, so a compute failure can never mask it — but
	// never discards the in-memory results.
	storeWarns := sub.storeWarns
	persisted := 0
	if sub.st != nil {
		for ci := range cells {
			c := &cells[ci]
			if c.loaded || c.res == nil {
				continue
			}
			h, m := c.cacheDelta()
			rec := storeRecord(c.res, c.seed, store.Meta{
				Concurrency: conc, ShardRows: sub.spec.ShardRows, BatchRows: sub.batch,
				CacheHits: h, CacheMisses: m, ElapsedNs: int64(c.busy()),
				LUT: sub.lutMode,
			})
			if err := sub.st.Put(rec); err != nil {
				err = fmt.Errorf("experiments: %s (seed %d): persisting result: %w", c.id, c.seed, err)
				storeWarns = append(storeWarns, err.Error())
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			persisted++
		}
		if err := sub.st.Sync(); err != nil {
			err = fmt.Errorf("experiments: syncing store manifest: %w", err)
			storeWarns = append(storeWarns, err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	rep.PersistedCells = persisted
	rep.ReusedCells = sub.reused
	rep.StoreWarnings = storeWarns
	for ci := range cells {
		if !cells[ci].loaded && cells[ci].res != nil {
			rep.ComputedCells++
		}
	}

	// Report assembly in slot order; on failure keep completed cells (and
	// salvaged sweep prefixes) so callers can recover partial output.
	for i, id := range sub.ids {
		var perSeed []*Result
		var wall, busy time.Duration
		var hits, misses, interp, fallback uint64
		points := 1
		// An experiment row missing any seed is excluded from the report
		// proper, but its completed seeds must not vanish: a failure in
		// one seed's cell salvages the siblings' complete tables
		// alongside any failed cell's contiguous prefix.
		incomplete := false
		for s := range seeds {
			if cells[i*len(seeds)+s].res == nil {
				incomplete = true
				break
			}
		}
		for s := range seeds {
			c := &cells[i*len(seeds)+s]
			wall += c.span()
			busy += c.busy()
			h, m := c.cacheDelta()
			hits += h
			misses += m
			li, lf := c.lutDelta()
			interp += li
			fallback += lf
			if c.jobs() > points {
				points = c.jobs()
			}
			if c.res != nil {
				if incomplete {
					rep.Salvaged = append(rep.Salvaged, c.res)
				} else {
					perSeed = append(perSeed, c.res)
				}
			}
			if c.partial != nil && len(c.partial.Rows) > 0 {
				rep.Salvaged = append(rep.Salvaged, c.partial)
			}
		}
		if incomplete {
			continue // incomplete experiment row: excluded from the report
		}
		rep.Timings = append(rep.Timings, Timing{
			ID: id, Elapsed: wall, Busy: busy,
			Rows: len(perSeed[0].Rows), Points: points,
			CacheHits: hits, CacheMisses: misses,
			LUTInterpolated: interp, LUTFallbacks: fallback,
		})
		rep.Results = append(rep.Results, perSeed[0])
		if len(seeds) > 1 {
			agg, err := replicate(id, seeds, perSeed, wall)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rep.Replicated = append(rep.Replicated, agg)
		}
	}
	sub.report, sub.err = rep, firstErr
}

// RunHandle tracks one submission: progress while it runs, cancellation,
// and the report when it finishes. Methods are safe for concurrent use.
type RunHandle struct{ sub *submission }

// Spec returns the normalized spec the submission runs: IDs resolved
// and sorted, seeds defaulted, batch size clamped.
func (h *RunHandle) Spec() RunSpec { return h.sub.spec.clone() }

// Done returns a channel closed when the submission has finished —
// assembled, persisted and reported.
func (h *RunHandle) Done() <-chan struct{} { return h.sub.done }

// Cancel stops the submission: unfed jobs are abandoned, in-flight jobs
// see a cancelled context, and completed cells still persist to the
// store (the salvage path), so a cancelled run's finished work survives
// for a later Resume. Safe to call repeatedly; a no-op once the
// submission finished.
func (h *RunHandle) Cancel() {
	h.sub.userCancel.Store(true)
	h.sub.cancelFn()
}

// Report blocks until the submission finishes and returns its report
// and error — exactly what Execute returns for the same spec.
func (h *RunHandle) Report() (*Report, error) {
	<-h.sub.done
	return h.sub.report, h.sub.err
}

// Progress returns a point-in-time snapshot of the submission's advance
// through the queue.
func (h *RunHandle) Progress() Progress {
	sub := h.sub
	p := Progress{
		TotalJobs:   len(sub.queue),
		DoneJobs:    int(sub.completed.Load()),
		TotalCells:  len(sub.cells),
		ReusedCells: sub.reused,
	}
	select {
	case <-sub.done:
		p.Finished = true
	default:
	}
	return p
}

// Progress is a point-in-time snapshot of one submission.
type Progress struct {
	// TotalJobs and DoneJobs count queued job slots (experiment cells,
	// sweep points, or point batches); DoneJobs includes slots abandoned
	// by cancellation, so it always reaches TotalJobs.
	TotalJobs, DoneJobs int
	// TotalCells is the (experiment × seed) cell count of the spec;
	// ReusedCells of those were answered from the store at layout.
	TotalCells, ReusedCells int
	// Finished reports whether the submission has fully finished (its
	// report is available).
	Finished bool
}
