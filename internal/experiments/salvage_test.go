package experiments

// Regression coverage for mid-batch failure salvage: whatever the batch
// size, worker count, or completion order, Report.Salvaged must carry
// only contiguous completed row prefixes — a failure inside one batch
// while later batches have already completed must not punch holes into
// (or zero-fill) the salvaged table — and a failure in one seed's cell
// must not discard sibling seeds' complete tables. Run under -race in
// CI.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBatchedSalvageLaterBatchesComplete is the adversarial ordering for
// batched salvage: batch [3..5]'s point 4 fails only after the last
// batch [6..8] has fully completed on another worker, so the done flags
// are non-contiguous at failure time. The salvaged table must still be
// exactly points 0..3 — no holes, no zero-filled rows from the
// never-run point 5.
func TestBatchedSalvageLaterBatchesComplete(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	done := map[int]bool{}
	lastBatchDone := make(chan struct{})
	s := countingSweep("zz-latebatch", 9)
	inner := s.Point
	s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
		if i == 4 {
			<-lastBatchDone
			return PointResult{}, boom
		}
		pt, err := inner(ctx, seed, i)
		mu.Lock()
		done[i] = true
		if done[6] && done[7] && done[8] {
			select {
			case <-lastBatchDone:
			default:
				close(lastBatchDone)
			}
		}
		mu.Unlock()
		return pt, err
	}
	tempSweep(t, s)

	eng := &Engine{Concurrency: 8, ShardRows: true, BatchRows: 3, IDs: []string{"zz-latebatch"}}
	rep, err := eng.Collect(context.Background(), 7)
	if err == nil {
		t.Fatal("mid-batch failure not reported")
	}
	for _, want := range []string{"zz-latebatch", "seed 7", "point 4/9", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q does not name %q", err, want)
		}
	}
	if len(rep.Salvaged) != 1 {
		t.Fatalf("salvage = %d tables, want 1", len(rep.Salvaged))
	}
	rows := rep.Salvaged[0].Rows
	if len(rows) != 4 {
		t.Fatalf("salvaged %d rows, want the 4-point prefix: %v", len(rows), rows)
	}
	for i, row := range rows {
		if row[0] != float64(i) || row[1] != 7 {
			t.Fatalf("salvaged row %d = %v, want [%d 7] — hole or zero-filled row", i, row, i)
		}
	}
}

// TestBatchedFailureKeepsSiblingSeeds: a mid-batch failure in one seed's
// cell must not throw away a sibling seed's fully completed table — the
// report salvages both the complete sibling and the failed cell's
// contiguous prefix, at 1 and 8 workers.
func TestBatchedFailureKeepsSiblingSeeds(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			boom := errors.New("boom")
			var seed1Done atomic.Int32
			seed1Complete := make(chan struct{})
			id := fmt.Sprintf("zz-sibling%d", workers)
			s := countingSweep(id, 9)
			inner := s.Point
			s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
				if seed == 2 && i == 3 {
					// Fail only after seed 1's cell fully completed, so the
					// sibling's table deterministically exists.
					<-seed1Complete
					return PointResult{}, boom
				}
				pt, err := inner(ctx, seed, i)
				if seed == 1 && err == nil && seed1Done.Add(1) == 9 {
					close(seed1Complete)
				}
				return pt, err
			}
			tempSweep(t, s)

			eng := &Engine{Concurrency: workers, ShardRows: true, BatchRows: 3, IDs: []string{id}}
			rep, err := eng.run(context.Background(), []int64{1, 2})
			if err == nil {
				t.Fatal("mid-batch failure not reported")
			}
			for _, want := range []string{id, "seed 2", "point 3/9", "boom"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("err %q does not name %q", err, want)
				}
			}
			if len(rep.Results) != 0 {
				t.Errorf("failed experiment row still produced %d full results", len(rep.Results))
			}
			if len(rep.Salvaged) != 2 {
				t.Fatalf("salvage = %d tables, want seed 1's complete table + seed 2's prefix", len(rep.Salvaged))
			}
			complete, prefix := rep.Salvaged[0], rep.Salvaged[1]
			if len(complete.Rows) != 9 {
				t.Fatalf("sibling seed's table = %d rows, want all 9", len(complete.Rows))
			}
			for i, row := range complete.Rows {
				if row[0] != float64(i) || row[1] != 1 {
					t.Fatalf("sibling row %d = %v, want [%d 1]", i, row, i)
				}
			}
			if len(complete.Notes) != 1 {
				t.Errorf("sibling table lost its Finish note: %v", complete.Notes)
			}
			if len(prefix.Rows) != 3 {
				t.Fatalf("failed cell salvaged %d rows, want the 3-point prefix: %v", len(prefix.Rows), prefix.Rows)
			}
			for i, row := range prefix.Rows {
				if row[0] != float64(i) || row[1] != 2 {
					t.Fatalf("salvaged row %d = %v, want [%d 2] — hole or zero-filled row", i, row, i)
				}
			}
		})
	}
}

// TestBatchedSalvageContiguousStress sweeps failure position × batch
// size × worker count (with and without points that park on ctx until
// fail-fast cancellation) and asserts every salvaged table is a
// contiguous prefix of the serial table — multi-row points included.
func TestBatchedSalvageContiguousStress(t *testing.T) {
	boom := errors.New("boom")
	for _, points := range []int{5, 9} {
		for failAt := 0; failAt < points; failAt++ {
			for _, batch := range []int{2, 3} {
				for _, workers := range []int{1, 8} {
					for _, park := range []bool{false, true} {
						id := fmt.Sprintf("zz-st-%d-%d-%d-%d-%v", points, failAt, batch, workers, park)
						s := &Sweep{
							ID: id, Description: "stress", Title: "stress",
							Columns: []string{"a", "b"},
							Points:  points,
						}
						s.Point = func(ctx context.Context, seed int64, i int) (PointResult, error) {
							if i == failAt {
								return PointResult{}, boom
							}
							if park && i > failAt {
								<-ctx.Done()
								return PointResult{}, ctx.Err()
							}
							return PointResult{Rows: [][]float64{
								{float64(i), float64(seed)},
								{float64(i) + 0.5, float64(seed)},
							}}, nil
						}
						tempSweep(t, s)
						eng := &Engine{Concurrency: workers, ShardRows: true, BatchRows: batch, IDs: []string{id}}
						rep, err := eng.Collect(context.Background(), 3)
						if err == nil {
							t.Fatalf("%s: no error", id)
						}
						for _, sv := range rep.Salvaged {
							if len(sv.Rows)%2 != 0 {
								t.Fatalf("%s: point split across salvage boundary: %v", id, sv.Rows)
							}
							for ri, row := range sv.Rows {
								want := float64(ri / 2)
								if ri%2 == 1 {
									want += 0.5
								}
								if row[0] != want || row[1] != 3 {
									t.Fatalf("%s: salvage row %d = %v, want [%v 3] — non-contiguous", id, ri, row, want)
								}
							}
							if len(sv.Rows)/2 > failAt {
								t.Fatalf("%s: salvaged %d points past the failure at %d", id, len(sv.Rows)/2, failAt)
							}
						}
					}
				}
			}
		}
	}
}
