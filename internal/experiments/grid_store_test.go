package experiments

// Engine-level contracts of LUT grid persistence: the load/save glue
// must round-trip a built grid through the store, a warm-started process
// must reach interpolated answers with ZERO grid builds (the acceptance
// observable for the ROADMAP "grid persistence" item), and a corrupt
// record must warn and fall back to rebuild-on-demand without blocking
// its siblings.

import (
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
	"github.com/llama-surface/llama/internal/units"
)

func TestLoadSaveLUTGridsGlue(t *testing.T) {
	if ng, ns, w := LoadLUTGrids(nil); ng != 0 || ns != 0 || w != nil {
		t.Errorf("nil-store load: %d/%d/%v", ng, ns, w)
	}
	if ng, ns, w := SaveLUTGrids(nil); ng != 0 || ns != 0 || w != nil {
		t.Errorf("nil-store save: %d/%d/%v", ng, ns, w)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
	f := units.DefaultCarrierHz

	// "First process": LUT mode builds the grid on first lookup; saving
	// persists it.
	metasurface.ResetResponseTables()
	metasurface.ResetGlobalLUTStats()
	metasurface.SetLUTConfig(metasurface.LUTConfig{})
	metasurface.SetLUT(true)
	defer func() {
		metasurface.SetLUT(false)
		metasurface.ResetGlobalLUTStats()
		metasurface.ResetResponseTables()
	}()
	s := metasurface.MustNew(d)
	s.SetBias(8, 8)
	want := s.JonesTransmissive(f)
	if b := metasurface.GlobalLUTGridBuilds(); b != 1 {
		t.Fatalf("building process: %d grid builds, want 1", b)
	}
	ng, ns, warns := SaveLUTGrids(st)
	if ng != 1 || ns == 0 || len(warns) != 0 {
		t.Fatalf("save: %d grids / %d samples / %v, want 1 grid, samples, no warnings", ng, ns, warns)
	}

	// "Second process": fresh registry, warm-start from the store, same
	// lookup — same bits, zero builds.
	metasurface.ResetResponseTables()
	metasurface.ResetGlobalLUTStats()
	if ng, ns2, w := LoadLUTGrids(st); ng != 1 || ns2 != ns || len(w) != 0 {
		t.Fatalf("load: %d grids / %d samples / %v, want 1/%d/none", ng, ns2, w, ns)
	}
	warm := metasurface.MustNew(d)
	warm.SetBias(8, 8)
	got := warm.JonesTransmissive(f)
	if got != want {
		t.Fatal("warm-started LUT answer differs from the building process")
	}
	if b := metasurface.GlobalLUTGridBuilds(); b != 0 {
		t.Fatalf("warm-started process built %d grids, want 0", b)
	}
	if g := metasurface.GlobalLUTStats(); g.Interpolated == 0 {
		t.Fatal("warm-started lookup did not interpolate")
	}

	// A record the store lists but metasurface rejects must warn, name
	// the fingerprint, and not block the good grid.
	if err := st.PutGrid(&store.GridRecord{Fingerprint: "bogus-fp", Meta: []string{"2"}}); err != nil {
		t.Fatal(err)
	}
	metasurface.ResetResponseTables()
	ng, _, warns = LoadLUTGrids(st)
	if ng != 1 {
		t.Errorf("load with corrupt sibling: %d grids, want the good 1", ng)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "bogus-fp") || !strings.Contains(warns[0], "rebuilding on demand") {
		t.Errorf("corrupt record warning = %v, want one naming bogus-fp and 'rebuilding on demand'", warns)
	}
}
