package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	// The §3.4 estimation procedure is one sequential measurement
	// protocol (its turntable steps depend on earlier observations), so
	// the whole figure is a single sweep point.
	registerSweep(&Sweep{
		ID:          "fig12",
		Description: "Fig. 12 — polarization rotation angle estimation procedure (§3.4)",
		Title:       "Fig. 12 — rotation estimation: matched orientation, min/max bias states, rotation range",
		Columns:     []string{"theta0_deg", "thetaMin_deg", "thetaMax_deg", "minRotation_deg", "maxRotation_deg", "switches"},
		Points:      1,
		Point:       fig12Point,
	})
}

func fig12Point(ctx context.Context, seed int64, _ int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	// Fig. 12's matched-setup bench: Tx aligned with Rx, 48 cm apart.
	sc := channel.DefaultScene(surf, 0.48)
	sc.Tx.Orientation = 0
	measure := control.PowerAt(func(rxAngle, vx, vy float64) (float64, error) {
		surf.SetBias(vx, vy)
		sc.Rx.Orientation = rxAngle
		return sc.ReceivedPowerDBm(), nil
	})
	cfg := control.DefaultRotationEstimateConfig()
	cfg.AngleStepDeg = 1
	est, err := control.EstimateRotation(ctx, cfg, measure)
	if err != nil {
		return PointResult{}, err
	}
	pt := Row(
		units.Degrees(est.Theta0),
		units.Degrees(est.ThetaMin),
		units.Degrees(est.ThetaMax),
		est.MinRotationDeg,
		est.MaxRotationDeg,
		float64(est.Switches),
	)
	pt.AddNote("estimated rotation range %.1f°–%.1f° (paper Fig. 12d: ≈4.8°–45.1°)",
		est.MinRotationDeg, est.MaxRotationDeg)
	// Also render the Fig. 12(a) Malus curve: Rx power vs orientation
	// difference without the surface.
	bare := channel.DefaultScene(nil, 0.48)
	bare.Tx.Orientation = 0
	for deg := 0.0; deg <= 180; deg += 15 {
		bare.Rx.Orientation = units.Radians(deg)
		pt.AddNote("no-surface power at %3.0f°: %.1f dBm", deg, bare.ReceivedPowerDBm())
	}
	return pt, nil
}
