package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// Fig15Distances are the paper's half-wavelength Tx–Rx steps (§5.1.1).
var Fig15Distances = []float64{0.24, 0.30, 0.36, 0.42, 0.48, 0.54, 0.60}

// warmScanAxis returns a Sweep.Warm hook that pre-resolves, in one
// batched pass, every per-axis response a default-scene FullScan with
// the given voltage step will look up. A bias-plane scan visits the
// cross product of ScanVoltages on both axes, but the memoized axis
// responses are keyed per axis by (frequency, bias) — so warming the
// diagonal {v, v} covers the entire plane. The hook warms both Jones
// modes at once (the memoized primitives are mode-agnostic) and is
// bit-neutral: it populates exactly the cache entries the scan's own
// lookups would create, regardless of batch bounds.
func warmScanAxis(stepV float64) func(ctx context.Context, seed int64, start, count int) {
	return func(ctx context.Context, seed int64, start, count int) {
		surf, err := metasurface.New(optimizedFR4)
		if err != nil {
			return // the points will surface the error themselves
		}
		vs := control.ScanVoltages(control.DefaultSweepConfig(), stepV)
		pts := make([]metasurface.BatchPoint, len(vs))
		for i, v := range vs {
			pts[i] = metasurface.BatchPoint{F: units.DefaultCarrierHz, VX: v, VY: v}
		}
		surf.Warm(pts)
	}
}

func init() {
	registerSweep(&Sweep{
		ID:          "fig15",
		Description: "Fig. 15 — transmissive power heatmaps over the bias plane at 7 Tx–Rx distances, plus rotation range vs distance",
		Title:       "Fig. 15 — bias-plane power landscape vs distance (mismatched, absorber)",
		Columns:     []string{"dist_cm", "bestVx_V", "bestVy_V", "peak_dBm", "valley_dBm", "range_dB", "maxRot_deg", "minRot_deg"},
		Points:      len(Fig15Distances),
		Point:       fig15Point,
		Warm:        warmScanAxis(1.5),
		Finish: func(res *Result, seed int64) error {
			res.AddNote("optimal bias pair shifts with distance (surface↔Tx standing wave); paper Fig. 15(h): rotation 3°–45°")
			return nil
		},
	})
	registerSweep(&Sweep{
		ID:          "fig16",
		Description: "Fig. 16 — received power with/without the surface vs Tx–Rx distance (mismatched)",
		Title:       "Fig. 16 — received power with vs without the metasurface (mismatched polarization)",
		Columns:     []string{"dist_cm", "with_dBm", "without_dBm", "gain_dB"},
		Points:      len(Fig15Distances),
		Point:       fig16Point,
		Warm:        warmScanAxis(1),
		Finish: func(res *Result, seed int64) error {
			gains := res.Column(3)
			res.AddNote("max gain %.1f dB across distances (paper: up to 15 dB → 5.6× range per Friis)", maxIn(gains))
			return nil
		},
	})
}

// fig15Point runs one Tx–Rx distance: a full bias-plane scan for the
// power landscape, then the §3.4 rotation-range estimate (coarser
// turntable for speed). Each point owns its Surface — the scan mutates
// bias state, so points must not share one.
func fig15Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	d := Fig15Distances[i]
	sc := channel.DefaultScene(surf, d)
	act := control.ActuatorFunc(func(vx, vy float64) error {
		surf.SetBias(vx, vy)
		return nil
	})
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
	scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
	if err != nil {
		return PointResult{}, err
	}
	valley := scan.Samples[0].PowerDBm
	for _, s := range scan.Samples {
		if s.PowerDBm < valley {
			valley = s.PowerDBm
		}
	}
	// Fig. 15(h): rotation range achieved at this distance, via the
	// §3.4 estimation procedure (coarser turntable for speed).
	cfg := control.DefaultRotationEstimateConfig()
	cfg.AngleStepDeg = 3
	est, err := control.EstimateRotation(ctx, cfg,
		func(rxAngle, vx, vy float64) (float64, error) {
			surf.SetBias(vx, vy)
			scRot := channel.DefaultScene(surf, d)
			scRot.Tx.Orientation = 0
			scRot.Rx.Orientation = rxAngle
			return scRot.ReceivedPowerDBm(), nil
		})
	if err != nil {
		return PointResult{}, err
	}
	return Row(d*100, scan.BestVx, scan.BestVy, scan.BestPowerDBm, valley,
		scan.BestPowerDBm-valley, est.MaxRotationDeg, est.MinRotationDeg), nil
}

// fig16Point scans one distance with the surface and compares the best
// bias against the bare mismatched link.
func fig16Point(ctx context.Context, seed int64, i int) (PointResult, error) {
	surf, err := metasurface.New(optimizedFR4)
	if err != nil {
		return PointResult{}, err
	}
	d := Fig15Distances[i]
	sc := channel.DefaultScene(surf, d)
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
	scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1, act, sen)
	if err != nil {
		return PointResult{}, err
	}
	base := channel.DefaultScene(nil, d)
	return Row(d*100, scan.BestPowerDBm, base.ReceivedPowerDBm(), scan.BestPowerDBm-base.ReceivedPowerDBm()), nil
}
