package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	register("fig15", "Fig. 15 — transmissive power heatmaps over the bias plane at 7 Tx–Rx distances, plus rotation range vs distance", fig15)
	register("fig16", "Fig. 16 — received power with/without the surface vs Tx–Rx distance (mismatched)", fig16)
}

// Fig15Distances are the paper's half-wavelength Tx–Rx steps (§5.1.1).
var Fig15Distances = []float64{0.24, 0.30, 0.36, 0.42, 0.48, 0.54, 0.60}

func fig15(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig15",
		Title:   "Fig. 15 — bias-plane power landscape vs distance (mismatched, absorber)",
		Columns: []string{"dist_cm", "bestVx_V", "bestVy_V", "peak_dBm", "valley_dBm", "range_dB", "maxRot_deg", "minRot_deg"},
	}
	for _, d := range Fig15Distances {
		sc := channel.DefaultScene(surf, d)
		act := control.ActuatorFunc(func(vx, vy float64) error {
			surf.SetBias(vx, vy)
			return nil
		})
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1.5, act, sen)
		if err != nil {
			return nil, err
		}
		valley := scan.Samples[0].PowerDBm
		for _, s := range scan.Samples {
			if s.PowerDBm < valley {
				valley = s.PowerDBm
			}
		}
		// Fig. 15(h): rotation range achieved at this distance, via the
		// §3.4 estimation procedure (coarser turntable for speed).
		cfg := control.DefaultRotationEstimateConfig()
		cfg.AngleStepDeg = 3
		est, err := control.EstimateRotation(ctx, cfg,
			func(rxAngle, vx, vy float64) (float64, error) {
				surf.SetBias(vx, vy)
				scRot := channel.DefaultScene(surf, d)
				scRot.Tx.Orientation = 0
				scRot.Rx.Orientation = rxAngle
				return scRot.ReceivedPowerDBm(), nil
			})
		if err != nil {
			return nil, err
		}
		res.AddRow(d*100, scan.BestVx, scan.BestVy, scan.BestPowerDBm, valley,
			scan.BestPowerDBm-valley, est.MaxRotationDeg, est.MinRotationDeg)
	}
	res.AddNote("optimal bias pair shifts with distance (surface↔Tx standing wave); paper Fig. 15(h): rotation 3°–45°")
	return res, nil
}

func fig16(ctx context.Context, seed int64) (*Result, error) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig16",
		Title:   "Fig. 16 — received power with vs without the metasurface (mismatched polarization)",
		Columns: []string{"dist_cm", "with_dBm", "without_dBm", "gain_dB"},
	}
	for _, d := range Fig15Distances {
		sc := channel.DefaultScene(surf, d)
		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		scan, err := control.FullScan(ctx, control.DefaultSweepConfig(), 1, act, sen)
		if err != nil {
			return nil, err
		}
		base := channel.DefaultScene(nil, d)
		res.AddRow(d*100, scan.BestPowerDBm, base.ReceivedPowerDBm(), scan.BestPowerDBm-base.ReceivedPowerDBm())
	}
	gains := res.Column(3)
	res.AddNote("max gain %.1f dB across distances (paper: up to 15 dB → 5.6× range per Friis)", maxIn(gains))
	return res, nil
}
