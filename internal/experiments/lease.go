package experiments

// Lease support: the fleet coordinator's pull path into the scheduler.
// TryLease deals the same jobs the local pool would have executed, in
// the same lane/round-robin order, to an external holder (a remote
// worker reached over HTTP — see internal/fleet). A leased job is
// completed with rows the holder computed, failed, or abandoned back
// onto its submission's queue when the holder's lease expires. Every
// terminal path funnels through the submission's per-job settle CAS,
// so a duplicate or late completion from a presumed-dead worker is
// dropped without corrupting collection slots — fleet transparency,
// determinism invariant 9 in ARCHITECTURE.md.

import (
	"context"
	"fmt"
	"time"
)

// JobDesc names one leased job in worker-computable terms: which
// experiment, which seed, and — for a row-sharded job — which
// contiguous point batch of the sweep axis. It is pure data; a worker
// process with the same experiment registry recomputes the job from it
// bit-identically (ComputeJob).
type JobDesc struct {
	// ID and Seed name the (experiment, seed) cell the job belongs to.
	ID   string
	Seed int64
	// Sharded reports whether the job is a sweep point batch (compute
	// Count points starting at Point) or a whole-experiment cell
	// (Point/Count are 0/1 and the worker runs the full experiment).
	Sharded bool
	// Point is the first axis index of a sharded job's batch.
	Point int
	// Count is the number of consecutive points the job covers.
	Count int
}

// String renders the desc for logs: "fig15/seed7[3+2]" for a sharded
// batch, "tab1/seed1" for a whole cell.
func (d JobDesc) String() string {
	if d.Sharded {
		return fmt.Sprintf("%s/seed%d[%d+%d]", d.ID, d.Seed, d.Point, d.Count)
	}
	return fmt.Sprintf("%s/seed%d", d.ID, d.Seed)
}

// ExternalResult carries a lease holder's computed output back into
// the submission. Exactly one of Points/Cell is set, matching the
// job's shape (JobDesc.Sharded).
type ExternalResult struct {
	// Points holds one PointResult per point of a sharded job's batch,
	// in axis order.
	Points []PointResult
	// Cell is the full table of a whole-experiment job.
	Cell *Result
	// Elapsed optionally reports the holder's compute time for the
	// whole job; it feeds timing aggregation only, never result bytes.
	Elapsed time.Duration
}

// ComputeJob recomputes a leased job from its desc using the local
// experiment registry — the worker-side half of the lease protocol.
// It is pure in desc (invariant 1 applied remotely): any process with
// the same registry produces bit-identical output for the same desc.
func ComputeJob(ctx context.Context, d JobDesc) (ExternalResult, error) {
	start := time.Now()
	if d.Sharded {
		sw, ok := sweeps[d.ID]
		if !ok {
			return ExternalResult{}, fmt.Errorf("experiments: %s is not a registered sweep", d.ID)
		}
		if d.Point < 0 || d.Count < 1 || d.Point+d.Count > sw.Points {
			return ExternalResult{}, fmt.Errorf("experiments: %s: batch [%d+%d] outside axis of %d points", d.ID, d.Point, d.Count, sw.Points)
		}
		pts := make([]PointResult, d.Count)
		if sw.Warm != nil {
			sw.Warm(ctx, d.Seed, d.Point, d.Count)
		}
		for i := 0; i < d.Count; i++ {
			pt, err := sw.Point(ctx, d.Seed, d.Point+i)
			if err != nil {
				return ExternalResult{}, &PointError{Point: d.Point + i, Points: sw.Points, Err: err}
			}
			pts[i] = pt
		}
		return ExternalResult{Points: pts, Elapsed: time.Since(start)}, nil
	}
	res, err := Run(ctx, d.ID, d.Seed)
	if err != nil {
		return ExternalResult{}, err
	}
	return ExternalResult{Cell: res, Elapsed: time.Since(start)}, nil
}

// LeasedJob is one job dealt to an external holder by TryLease. The
// holder must end it exactly one way — Complete, Fail, or Abandon —
// though calling into an already-settled job is always safe (the
// settle CAS makes every terminal idempotent). Methods are safe for
// concurrent use.
type LeasedJob struct {
	sub *submission
	jb  schedJob
}

// TryLease deals the next dispatchable job to an external holder, or
// returns nil when no job is currently queued (the caller polls or
// backs off; leasing never blocks). Dispatch order is exactly the
// local pool's — priority lane first, round-robin within a lane — so
// leasing out work cannot change any submission's bytes.
func (s *Scheduler) TryLease() *LeasedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	for lane := range s.lanes {
		for len(s.lanes[lane]) > 0 {
			sub := s.lanes[lane][0]
			s.lanes[lane] = s.lanes[lane][1:]
			jb, ok := sub.popJobLocked()
			if ok {
				// The outstanding lease holds fed open: the job may still
				// be requeued, so the cancel watcher must stay armed.
				sub.leased[jb.ji] = struct{}{}
			}
			if sub.pendingLocked() {
				s.lanes[lane] = append(s.lanes[lane], sub)
			} else {
				sub.inRing = false
				sub.maybeReleaseLocked()
			}
			if ok {
				return &LeasedJob{sub: sub, jb: jb}
			}
		}
	}
	return nil
}

// Desc returns the job in worker-computable terms.
func (l *LeasedJob) Desc() JobDesc {
	c := &l.sub.cells[l.jb.cell]
	return JobDesc{
		ID:      c.id,
		Seed:    c.seed,
		Sharded: c.sweep != nil,
		Point:   l.jb.point,
		Count:   l.jb.count,
	}
}

// Settled reports whether the job has already reached a terminal state
// (completed by anyone, failed, or abandoned by cancellation). A
// coordinator uses it to skip reassigning work that no longer needs a
// holder.
func (l *LeasedJob) Settled() bool { return l.sub.settled[l.jb.ji].Load() }

// Complete delivers the holder's computed output. A malformed payload
// (wrong batch length, wrong row arity, missing table) is rejected
// with an error BEFORE the settle CAS, leaving the job leased — the
// caller abandons it so an honest worker recomputes it; a corrupt
// reply must never poison collection slots. A well-formed duplicate —
// the job was reassigned and someone else already settled it — is
// dropped silently: Complete returns nil and the slots keep the first
// writer's bytes, which are identical anyway (invariant 1).
func (l *LeasedJob) Complete(res ExternalResult) error {
	sub, jb := l.sub, l.jb
	c := &sub.cells[jb.cell]
	if c.sweep != nil {
		if len(res.Points) != jb.count {
			return fmt.Errorf("experiments: %s: completion carries %d points, lease covers %d", l.Desc(), len(res.Points), jb.count)
		}
		for i, pt := range res.Points {
			for _, row := range pt.Rows {
				if len(row) != len(c.sweep.Columns) {
					return fmt.Errorf("experiments: %s: point %d row arity %d != %d columns", l.Desc(), jb.point+i, len(row), len(c.sweep.Columns))
				}
			}
		}
	} else {
		if res.Cell == nil {
			return fmt.Errorf("experiments: %s: completion carries no result table", l.Desc())
		}
		if res.Cell.ID != c.id {
			return fmt.Errorf("experiments: %s: completion names experiment %q", l.Desc(), res.Cell.ID)
		}
		for ri, row := range res.Cell.Rows {
			if len(row) != len(res.Cell.Columns) {
				return fmt.Errorf("experiments: %s: row %d arity %d != %d columns", l.Desc(), ri, len(row), len(res.Cell.Columns))
			}
		}
	}
	if !sub.settled[jb.ji].CompareAndSwap(false, true) {
		l.detach()
		return nil // duplicate or post-abandon completion: dropped
	}
	now := time.Now()
	if c.sweep != nil {
		for i, pt := range res.Points {
			p := jb.point + i
			c.started[p] = now
			c.points[p] = pt
			c.done[p] = true
		}
		c.elapsed[jb.point] = res.Elapsed
	} else {
		c.started[jb.point] = now
		c.elapsed[jb.point] = res.Elapsed
		c.res = res.Cell
		c.done[jb.point] = true
	}
	l.detach()
	sub.jobDone(1)
	return nil
}

// Fail records the holder's compute error as the job's failure and
// fails the submission fast, exactly as a local worker error would.
// Idempotent: if the job already settled, the error is dropped.
func (l *LeasedJob) Fail(err error) {
	sub, jb := l.sub, l.jb
	if !sub.settled[jb.ji].CompareAndSwap(false, true) {
		l.detach()
		return
	}
	c := &sub.cells[jb.cell]
	if c.sweep == nil {
		err = fmt.Errorf("experiments: %s (seed %d): %w", c.id, c.seed, err)
	}
	c.errs[jb.point] = err
	sub.cancelFn()
	l.detach()
	sub.jobDone(1)
}

// Abandon returns an unfinished job to its submission's queue — the
// lease expired, the worker reported a malformed payload, or the
// coordinator is shutting down — so another holder (or a local worker)
// picks it up. If the submission has meanwhile been cancelled the job
// is settled instead of requeued, so a dead run never keeps work
// circulating. Idempotent.
func (l *LeasedJob) Abandon() {
	sub, jb := l.sub, l.jb
	if sub.settled[jb.ji].Load() {
		l.detach()
		return
	}
	if sub.ctx.Err() != nil {
		// Cancelled submission: account the slot instead of recirculating.
		if sub.settled[jb.ji].CompareAndSwap(false, true) {
			l.detach()
			sub.jobDone(1)
		} else {
			l.detach()
		}
		return
	}
	s := sub.sched
	s.mu.Lock()
	delete(sub.leased, jb.ji)
	if !sub.settled[jb.ji].Load() {
		sub.requeue = append(sub.requeue, jb)
		if !sub.inRing && !sub.fedClosed {
			sub.inRing = true
			s.lanes[sub.lane] = append(s.lanes[sub.lane], sub)
		}
		s.cond.Broadcast() // wake local workers for the requeued job
	} else {
		sub.dropSettledRequeueLocked()
		sub.maybeReleaseLocked()
	}
	s.mu.Unlock()
}

// detach drops the job's lease bookkeeping and lets fed close if this
// was the submission's last open obligation.
func (l *LeasedJob) detach() {
	sub := l.sub
	s := sub.sched
	s.mu.Lock()
	delete(sub.leased, l.jb.ji)
	sub.dropSettledRequeueLocked()
	sub.maybeReleaseLocked()
	s.mu.Unlock()
}
