package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sameResult compares two results bit-for-bit. reflect.DeepEqual is not
// usable here: some tables legitimately carry NaN cells (e.g.
// ext-multilink's no-surface bias columns) and DeepEqual declares
// NaN ≠ NaN. Comparing the raw float64 bit patterns is both NaN-safe
// and the literal "bit-identical" contract the engine promises.
func sameResult(a, b *Result) bool {
	if a.ID != b.ID || a.Title != b.Title ||
		!reflect.DeepEqual(a.Columns, b.Columns) || !reflect.DeepEqual(a.Notes, b.Notes) ||
		len(a.Rows) != len(b.Rows) {
		return false
	}
	for ri := range a.Rows {
		if len(a.Rows[ri]) != len(b.Rows[ri]) {
			return false
		}
		for ci := range a.Rows[ri] {
			if math.Float64bits(a.Rows[ri][ci]) != math.Float64bits(b.Rows[ri][ci]) {
				return false
			}
		}
	}
	return true
}

// TestEngineMatchesSerial is the cross-cutting determinism contract: for
// every seed the paper cares about, a single-worker engine, a wide
// engine, and the serial reference path must produce bit-identical
// result slices. Run it under -race: the worker pool is the only place
// concurrency touches experiment state, so a clean pass here certifies
// the whole fan-out.
func TestEngineMatchesSerial(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 7, 42} {
		serial, err := RunAll(ctx, seed)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, workers := range []int{1, 8} {
			eng := &Engine{Concurrency: workers}
			got, err := eng.RunAll(ctx, seed)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if len(got) != len(serial) {
				t.Fatalf("seed %d workers %d: %d results, serial %d", seed, workers, len(got), len(serial))
			}
			for i := range got {
				if !sameResult(got[i], serial[i]) {
					t.Errorf("seed %d workers %d: result %q differs from serial path", seed, workers, got[i].ID)
				}
			}
		}
	}
}

// TestEngineCancellation cancels a run mid-flight and checks it returns
// promptly with ctx.Err() and leaks no goroutines.
func TestEngineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	eng := &Engine{Concurrency: 4}
	go func() {
		time.Sleep(5 * time.Millisecond) // a few experiments deep
		cancel()
	}()
	start := time.Now()
	_, err := eng.RunAll(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled RunAll took %v, want prompt return", d)
	}
	// Workers drain synchronously before RunAll returns, so the goroutine
	// count must settle back to (roughly) the pre-call level; poll a
	// little to absorb unrelated runtime goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d — worker leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineCancelledBeforeStart: an already-dead context must not run
// anything.
func TestEngineCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Concurrency: 2}
	rep, err := eng.Collect(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil && len(rep.Results) != 0 {
		t.Errorf("dead context still produced %d results", len(rep.Results))
	}
}

// TestCollectSalvagesCompletedOnCancel: cancellation mid-run must not
// throw away tables that already finished — the report carries them
// alongside ctx.Err(). Uses temporary registry entries so the ordering
// is deterministic: the fast experiment signals completion, then the
// test cancels while the slow one is still blocked.
func TestCollectSalvagesCompletedOnCancel(t *testing.T) {
	done := make(chan struct{})
	registry["zz-fast"] = func(ctx context.Context, seed int64) (*Result, error) {
		r := &Result{ID: "zz-fast", Title: "salvage probe", Columns: []string{"seed"}}
		r.AddRow(float64(seed))
		close(done)
		return r, nil
	}
	registry["zz-slow"] = func(ctx context.Context, seed int64) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	defer func() {
		delete(registry, "zz-fast")
		delete(registry, "zz-slow")
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-done
		cancel()
	}()
	eng := &Engine{Concurrency: 2, IDs: []string{"zz-fast", "zz-slow"}}
	rep, err := eng.Collect(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].ID != "zz-fast" {
		t.Fatalf("completed results not salvaged: %+v", rep.Results)
	}
}

// TestEngineUnknownID rejects bad ID subsets up front.
func TestEngineUnknownID(t *testing.T) {
	eng := &Engine{IDs: []string{"tab1", "nope"}}
	if _, err := eng.RunAll(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown-id error naming %q", err, "nope")
	}
}

// TestReplicateStatistics checks the mean/stddev aggregation against a
// hand-rolled fold over the individual per-seed runs, and that the
// x-axis column (identical across seeds) carries zero spread.
func TestReplicateStatistics(t *testing.T) {
	ctx := context.Background()
	seeds := []int64{1, 2, 3}
	ids := []string{"fig2a", "tab1"}
	eng := &Engine{Concurrency: 4, IDs: ids}
	agg, err := eng.Replicate(ctx, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(ids) {
		t.Fatalf("replicated %d experiments, want %d", len(agg), len(ids))
	}
	for _, rr := range agg {
		runs := make([]*Result, len(seeds))
		for i, s := range seeds {
			runs[i], err = Run(ctx, rr.ID, s)
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(rr.Mean) != len(runs[0].Rows) || len(rr.Stddev) != len(runs[0].Rows) {
			t.Fatalf("%s: aggregate shape %d rows, want %d", rr.ID, len(rr.Mean), len(runs[0].Rows))
		}
		for ri := range runs[0].Rows {
			for ci := range runs[0].Columns {
				same := true
				var sum float64
				for _, r := range runs {
					same = same && r.Rows[ri][ci] == runs[0].Rows[ri][ci]
					sum += r.Rows[ri][ci]
				}
				mean := sum / float64(len(runs))
				var ss float64
				for _, r := range runs {
					d := r.Rows[ri][ci] - mean
					ss += d * d
				}
				sd := math.Sqrt(ss / float64(len(runs)-1))
				if same { // identical cells fold exactly (no sum/n rounding)
					mean, sd = runs[0].Rows[ri][ci], 0
				}
				if got := rr.Mean[ri][ci]; got != mean {
					t.Fatalf("%s[%d][%d]: mean %v, want %v", rr.ID, ri, ci, got, mean)
				}
				if got := rr.Stddev[ri][ci]; got != sd {
					t.Fatalf("%s[%d][%d]: stddev %v, want %v", rr.ID, ri, ci, got, sd)
				}
			}
		}
		// Column 0 is the independent axis in both tables: same for
		// every seed, so its spread must be exactly zero.
		for ri := range rr.Stddev {
			if rr.Stddev[ri][0] != 0 {
				t.Errorf("%s row %d: x-axis stddev = %v, want 0", rr.ID, ri, rr.Stddev[ri][0])
			}
		}
	}
}

// TestReplicateDeterministicAcrossWorkers: the aggregate statistics must
// be bit-identical no matter how the (experiment × seed) cells were
// scheduled.
func TestReplicateDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	seeds := []int64{1, 7, 42}
	ids := []string{"fig2a", "fig16", "tab1"}
	var ref []*ReplicatedResult
	for _, workers := range []int{1, 3, 8} {
		eng := &Engine{Concurrency: workers, IDs: ids}
		agg, err := eng.Replicate(ctx, seeds)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i := range agg {
			agg[i].Elapsed = 0 // wall time legitimately varies
		}
		if ref == nil {
			ref = agg
			continue
		}
		if !reflect.DeepEqual(agg, ref) {
			t.Errorf("workers %d: replicated aggregate differs from single-worker reference", workers)
		}
	}
}

// TestExecuteReport covers the Options→Report path llama.RunExperiments
// uses: defaults, timings, and the multi-seed switch.
func TestExecuteReport(t *testing.T) {
	ctx := context.Background()
	rep, err := Execute(ctx, Options{IDs: []string{"tab1", "fig16"}, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seeds) != 1 || rep.Seeds[0] != 1 {
		t.Errorf("default seeds = %v, want [1]", rep.Seeds)
	}
	if rep.Replicated != nil {
		t.Error("single-seed run should not aggregate")
	}
	if len(rep.Results) != 2 || len(rep.Timings) != 2 {
		t.Fatalf("report shape: %d results, %d timings", len(rep.Results), len(rep.Timings))
	}
	if rep.Results[0].ID != "fig16" || rep.Results[1].ID != "tab1" {
		t.Errorf("results out of ID order: %s, %s", rep.Results[0].ID, rep.Results[1].ID)
	}
	for _, tm := range rep.Timings {
		if tm.Elapsed <= 0 {
			t.Errorf("%s: no wall time recorded", tm.ID)
		}
	}
	if rep.Wall <= 0 {
		t.Error("no total wall time recorded")
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine:", "tab1", "fig16"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report render missing %q:\n%s", want, sb.String())
		}
	}

	multi, err := Execute(ctx, Options{IDs: []string{"tab1"}, Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Replicated) != 1 || len(multi.Replicated[0].Seeds) != 3 {
		t.Fatalf("multi-seed run: %+v", multi.Replicated)
	}
	if len(multi.Results) != 1 || multi.Results[0].ID != "tab1" {
		t.Errorf("multi-seed run should still carry the first seed's tables")
	}
}

// TestReplicateSingleSeed: one seed is a degenerate but valid
// replication — the aggregate is that run's table with zero spread,
// never (nil, nil).
func TestReplicateSingleSeed(t *testing.T) {
	eng := &Engine{IDs: []string{"tab1"}}
	agg, err := eng.Replicate(context.Background(), []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 || agg[0].ID != "tab1" {
		t.Fatalf("agg = %+v", agg)
	}
	ref, err := Run(context.Background(), "tab1", 1)
	if err != nil {
		t.Fatal(err)
	}
	for ri := range agg[0].Mean {
		for ci := range agg[0].Mean[ri] {
			if agg[0].Mean[ri][ci] != ref.Rows[ri][ci] || agg[0].Stddev[ri][ci] != 0 {
				t.Fatalf("cell [%d][%d]: mean %v (want %v), stddev %v (want 0)",
					ri, ci, agg[0].Mean[ri][ci], ref.Rows[ri][ci], agg[0].Stddev[ri][ci])
			}
		}
	}
}

// TestReplicatedRender spot-checks the mean±stddev text table.
func TestReplicatedRender(t *testing.T) {
	rr := &ReplicatedResult{
		ID:      "x",
		Title:   "sample",
		Columns: []string{"d", "v"},
		Seeds:   []int64{1, 2},
		Mean:    [][]float64{{10, 2.5}},
		Stddev:  [][]float64{{0, 0.5}},
	}
	var sb strings.Builder
	if err := rr.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: sample [2 seeds]", "10.00", "2.50±0.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "10.00±") {
		t.Errorf("zero-spread cell should render plain:\n%s", out)
	}
}

// TestReplicateShapeMismatch: experiments whose table shape varies with
// the seed cannot be aggregated and must fail loudly, not fold garbage.
func TestReplicateShapeMismatch(t *testing.T) {
	_, err := replicate("x", []int64{1, 2}, []*Result{
		{Columns: []string{"a"}, Rows: [][]float64{{1}}},
		{Columns: []string{"a"}, Rows: [][]float64{{1}, {2}}},
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "non-uniform shape") {
		t.Fatalf("err = %v, want shape mismatch", err)
	}
}
