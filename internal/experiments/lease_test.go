package experiments

// Lease-path coverage at the scheduler layer: dispatching jobs to
// external holders (the fleet coordinator's pull path) must leave
// submission bytes identical to the local pool's, and every messy
// ending — duplicate completion, abandonment, holder failure,
// submission cancellation with leases outstanding, malformed payloads
// — must resolve through the settle CAS without corrupting slots or
// wedging finalization. This is determinism invariant 9 at its root.
// Run under -race in CI.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainLeases runs a simulated fleet of n holders against the
// scheduler: each loops TryLease → ComputeJob → Complete until done
// closes. It is the in-process equivalent of n llama-worker processes.
func drainLeases(t *testing.T, s *Scheduler, n int, done <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				lj := s.TryLease()
				if lj == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				res, err := ComputeJob(context.Background(), lj.Desc())
				if err != nil {
					lj.Fail(err)
					continue
				}
				if err := lj.Complete(res); err != nil {
					t.Errorf("complete %s: %v", lj.Desc(), err)
				}
			}
		}()
	}
	return &wg
}

// TestLeaseOnlyBitIdentity: a scheduler with no local workers, drained
// entirely through TryLease by 1..4 simulated holders, produces bytes
// identical to the serial reference for sharded and unsharded specs.
func TestLeaseOnlyBitIdentity(t *testing.T) {
	spec := RunSpec{IDs: []string{"fig15", "tab1"}, Seeds: []int64{1, 2}}
	want := tablesCSV(t, Options{IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1})
	for _, holders := range []int{1, 4} {
		for _, shard := range []bool{false, true} {
			s := NewScheduler(SchedulerConfig{LeaseOnly: true})
			if s.Workers() != 0 {
				t.Fatalf("LeaseOnly scheduler has %d local workers", s.Workers())
			}
			done := make(chan struct{})
			wg := drainLeases(t, s, holders, done)
			sp := spec
			sp.ShardRows = shard
			h, err := s.Submit(context.Background(), sp)
			if err != nil {
				t.Fatal(err)
			}
			if got := handleCSV(t, h); got != want {
				t.Errorf("holders %d shard %v: lease-drained bytes differ from serial run", holders, shard)
			}
			close(done)
			wg.Wait()
			s.Close()
		}
	}
}

// TestLeaseHybridBitIdentity: local pool workers and lease holders
// draining the same submission concurrently still reproduce the serial
// bytes — the settle CAS arbitrates whoever gets each job first.
func TestLeaseHybridBitIdentity(t *testing.T) {
	spec := RunSpec{IDs: []string{"fig15"}, Seeds: []int64{1, 2, 3}, ShardRows: true}
	want := tablesCSV(t, Options{IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1})
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Close()
	done := make(chan struct{})
	wg := drainLeases(t, s, 2, done)
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := handleCSV(t, h); got != want {
		t.Error("hybrid local+lease bytes differ from serial run")
	}
	close(done)
	wg.Wait()
}

// leaseAll drains every currently queued job of a lease-only scheduler
// into held leases.
func leaseAll(s *Scheduler) []*LeasedJob {
	var out []*LeasedJob
	for {
		lj := s.TryLease()
		if lj == nil {
			return out
		}
		out = append(out, lj)
	}
}

// TestLeaseDuplicateCompleteDropped: the same job completed through two
// holders (the reassignment shape: lease expires, job re-granted, the
// presumed-dead holder answers late) keeps the first writer's rows and
// drops the second without error; the submission still finishes with
// the reference bytes and accounts every job exactly once.
func TestLeaseDuplicateCompleteDropped(t *testing.T) {
	spec := RunSpec{IDs: []string{"tab1"}, Seeds: []int64{1}, ShardRows: true, BatchRows: 2}
	want := tablesCSV(t, Options{IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1})
	s := NewScheduler(SchedulerConfig{LeaseOnly: true})
	defer s.Close()
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	leases := leaseAll(s)
	if len(leases) == 0 {
		t.Fatal("no jobs leased")
	}
	// First holder "dies": its jobs are abandoned and re-granted.
	victim := leases[0]
	victim.Abandon()
	regrant := s.TryLease()
	if regrant == nil {
		t.Fatal("abandoned job was not requeued")
	}
	if victim.Desc() != regrant.Desc() {
		t.Fatalf("requeued desc %s != abandoned desc %s", regrant.Desc(), victim.Desc())
	}
	res, err := ComputeJob(context.Background(), regrant.Desc())
	if err != nil {
		t.Fatal(err)
	}
	if err := regrant.Complete(res); err != nil {
		t.Fatal(err)
	}
	// The late duplicate from the presumed-dead holder is dropped silently.
	if err := victim.Complete(res); err != nil {
		t.Errorf("late duplicate complete: %v, want silent drop", err)
	}
	if !victim.Settled() {
		t.Error("job not settled after completion")
	}
	for _, lj := range leases[1:] {
		r, err := ComputeJob(context.Background(), lj.Desc())
		if err != nil {
			t.Fatal(err)
		}
		if err := lj.Complete(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := handleCSV(t, h); got != want {
		t.Error("bytes differ after duplicate completion")
	}
	p := h.Progress()
	if p.DoneJobs != p.TotalJobs {
		t.Errorf("progress %d/%d after duplicate completion", p.DoneJobs, p.TotalJobs)
	}
}

// TestLeaseFailFailsSubmission: a holder's compute failure reported
// through Fail fails the submission fast, like a local worker error.
func TestLeaseFailFailsSubmission(t *testing.T) {
	s := NewScheduler(SchedulerConfig{LeaseOnly: true})
	defer s.Close()
	h, err := s.Submit(context.Background(), RunSpec{IDs: []string{"tab1"}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	leases := leaseAll(s)
	if len(leases) != 2 {
		t.Fatalf("leased %d jobs, want 2", len(leases))
	}
	leases[0].Fail(errors.New("varactor bank caught fire"))
	for _, lj := range leases[1:] {
		res, err := ComputeJob(context.Background(), lj.Desc())
		if err != nil {
			t.Fatal(err)
		}
		_ = lj.Complete(res) // settle so the submission can finalize
	}
	if _, err := h.Report(); err == nil || !strings.Contains(err.Error(), "caught fire") {
		t.Errorf("report err = %v, want the holder's failure", err)
	}
}

// TestLeaseCancelSettlesOutstanding: cancelling a submission with
// leases outstanding finalizes promptly — the run must not wait out a
// lease TTL for holders that will never answer — and a completion
// arriving after cancellation is dropped without corrupting anything.
func TestLeaseCancelSettlesOutstanding(t *testing.T) {
	s := NewScheduler(SchedulerConfig{LeaseOnly: true})
	defer s.Close()
	h, err := s.Submit(context.Background(), RunSpec{IDs: []string{"fig15"}, Seeds: []int64{1}, ShardRows: true})
	if err != nil {
		t.Fatal(err)
	}
	leases := leaseAll(s)
	if len(leases) == 0 {
		t.Fatal("no jobs leased")
	}
	h.Cancel()
	finished := make(chan struct{})
	go func() { <-h.Done(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled submission with outstanding leases did not finalize")
	}
	if _, err := h.Report(); !errors.Is(err, context.Canceled) {
		t.Errorf("report err = %v, want context.Canceled", err)
	}
	// Post-cancel endings of the orphaned leases are all safe no-ops.
	res, cerr := ComputeJob(context.Background(), leases[0].Desc())
	if cerr != nil {
		t.Fatal(cerr)
	}
	if err := leases[0].Complete(res); err != nil {
		t.Errorf("post-cancel complete: %v, want silent drop", err)
	}
	if len(leases) > 1 {
		leases[1].Abandon() // must settle, not recirculate, on a dead run
		if !leases[1].Settled() {
			t.Error("post-cancel abandon left job unsettled")
		}
	}
}

// TestLeaseCompleteValidates: malformed completion payloads are
// rejected before the settle CAS — the job stays completable by an
// honest holder and the final bytes match the reference.
func TestLeaseCompleteValidates(t *testing.T) {
	spec := RunSpec{IDs: []string{"tab1"}, Seeds: []int64{1}, ShardRows: true, BatchRows: 3}
	want := tablesCSV(t, Options{IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1})
	s := NewScheduler(SchedulerConfig{LeaseOnly: true})
	defer s.Close()
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	leases := leaseAll(s)
	lj := leases[0]
	good, err := ComputeJob(context.Background(), lj.Desc())
	if err != nil {
		t.Fatal(err)
	}
	if err := lj.Complete(ExternalResult{}); err == nil {
		t.Error("empty payload accepted for a sharded job")
	}
	short := ExternalResult{Points: good.Points[:len(good.Points)-1]}
	if err := lj.Complete(short); err == nil {
		t.Error("short batch accepted")
	}
	mangled := ExternalResult{Points: make([]PointResult, len(good.Points))}
	copy(mangled.Points, good.Points)
	mangled.Points[0] = PointResult{Rows: [][]float64{{1}}} // wrong arity
	if err := lj.Complete(mangled); err == nil {
		t.Error("wrong-arity row accepted")
	}
	if lj.Settled() {
		t.Fatal("rejected payloads settled the job")
	}
	if err := lj.Complete(good); err != nil {
		t.Fatalf("honest completion after rejections: %v", err)
	}
	for _, rest := range leases[1:] {
		r, err := ComputeJob(context.Background(), rest.Desc())
		if err != nil {
			t.Fatal(err)
		}
		if err := rest.Complete(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := handleCSV(t, h); got != want {
		t.Error("bytes differ after payload-validation round trip")
	}
}

// TestComputeJobValidatesDesc: descs outside the registered axis (a
// confused or stale worker) error instead of panicking.
func TestComputeJobValidatesDesc(t *testing.T) {
	ctx := context.Background()
	if _, err := ComputeJob(ctx, JobDesc{ID: "no-such", Sharded: true, Count: 1}); err == nil {
		t.Error("unknown sweep accepted")
	}
	if _, err := ComputeJob(ctx, JobDesc{ID: "tab1", Sharded: true, Point: 10000, Count: 5}); err == nil {
		t.Error("out-of-axis batch accepted")
	}
	if _, err := ComputeJob(ctx, JobDesc{ID: "no-such"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestLeaseRoundTripEncoding: an ExternalResult that crosses the wire
// must round-trip NaN and ±Inf exactly; this guards the in-memory half
// (the fleet package's wire tests guard the string encoding).
func TestLeaseRoundTripEncoding(t *testing.T) {
	res, err := ComputeJob(context.Background(), JobDesc{ID: "tab1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell == nil || len(res.Cell.Rows) == 0 {
		t.Fatal("whole-cell compute returned no table")
	}
	var buf bytes.Buffer
	if err := res.Cell.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
