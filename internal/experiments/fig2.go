package experiments

import (
	"context"
	"math"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/devices"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
)

func init() {
	registerSweep(rssiPDFSweep("fig2a",
		"Wi-Fi RSSI PDFs, matched vs mismatched antenna orientation (AP ↔ ESP8266)",
		"Fig. 2(a) — impact of polarization mismatch on a Wi-Fi link",
		devices.NetgearAP, devices.ESP8266,
		func(seed int64) channel.Environment { return channel.Absorber() },
		2.0, -60, -25))
	registerSweep(rssiPDFSweep("fig2b",
		"BLE RSSI PDFs, matched vs mismatched (MetaMotionR ↔ Raspberry Pi 3)",
		"Fig. 2(b) — impact of polarization mismatch on a BLE link",
		devices.MetaMotionR, devices.RaspberryPi3,
		func(seed int64) channel.Environment { return channel.Home(seed+7, 4) },
		2.0, -90, -55))
}

// rssiPDFSweep builds the histogram experiment shared by both Fig. 2
// panels. The histogram is computed in one sampling pass, so the whole
// panel is a single sweep point: it rides the engine queue but does not
// shard further.
func rssiPDFSweep(id, description, title string, tx, rx devices.Radio,
	envFor func(seed int64) channel.Environment, dist, lo, hi float64) *Sweep {
	return &Sweep{
		ID:          id,
		Description: description,
		Title:       title,
		Columns:     []string{"rssi_dBm", "pdf_match_pct", "pdf_mismatch_pct"},
		Points:      1,
		Point: func(ctx context.Context, seed int64, _ int) (PointResult, error) {
			const samples = 2000
			const bins = 30
			sc := channel.DefaultScene(nil, dist)
			sc.Env = envFor(seed)
			matched, err := devices.NewLink(tx, rx, 0, 0, sc)
			if err != nil {
				return PointResult{}, err
			}
			mismatched, err := devices.NewLink(tx, rx, 0, math.Pi/2, sc)
			if err != nil {
				return PointResult{}, err
			}
			rng := simclock.RNG(seed, id)
			mSamp := matched.SampleRSSI(samples, rng)
			xSamp := mismatched.SampleRSSI(samples, rng)
			mHist := signal.Histogram(mSamp, lo, hi, bins)
			xHist := signal.Histogram(xSamp, lo, hi, bins)

			var pt PointResult
			w := (hi - lo) / bins
			for i := 0; i < bins; i++ {
				pt.Rows = append(pt.Rows, []float64{lo + (float64(i)+0.5)*w, mHist[i], xHist[i]})
			}
			mMean, _ := signal.MeanAndStd(mSamp)
			xMean, _ := signal.MeanAndStd(xSamp)
			pt.AddNote("mean matched %.1f dBm, mismatched %.1f dBm: gap %.1f dB (paper shows ≈10)",
				mMean, xMean, mMean-xMean)
			return pt, nil
		},
	}
}
