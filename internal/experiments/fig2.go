package experiments

import (
	"context"

	"math"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/devices"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
)

func init() {
	register("fig2a", "Wi-Fi RSSI PDFs, matched vs mismatched antenna orientation (AP ↔ ESP8266)", fig2a)
	register("fig2b", "BLE RSSI PDFs, matched vs mismatched (MetaMotionR ↔ Raspberry Pi 3)", fig2b)
}

// rssiPDF builds the histogram experiment shared by both Fig. 2 panels.
func rssiPDF(id, title string, tx, rx devices.Radio, env channel.Environment, dist float64, lo, hi float64, seed int64) (*Result, error) {
	const samples = 2000
	const bins = 30
	sc := channel.DefaultScene(nil, dist)
	sc.Env = env
	matched, err := devices.NewLink(tx, rx, 0, 0, sc)
	if err != nil {
		return nil, err
	}
	mismatched, err := devices.NewLink(tx, rx, 0, math.Pi/2, sc)
	if err != nil {
		return nil, err
	}
	rng := simclock.RNG(seed, id)
	mSamp := matched.SampleRSSI(samples, rng)
	xSamp := mismatched.SampleRSSI(samples, rng)
	mHist := signal.Histogram(mSamp, lo, hi, bins)
	xHist := signal.Histogram(xSamp, lo, hi, bins)

	res := &Result{
		ID:      id,
		Title:   title,
		Columns: []string{"rssi_dBm", "pdf_match_pct", "pdf_mismatch_pct"},
	}
	w := (hi - lo) / bins
	for i := 0; i < bins; i++ {
		res.AddRow(lo+(float64(i)+0.5)*w, mHist[i], xHist[i])
	}
	mMean, _ := signal.MeanAndStd(mSamp)
	xMean, _ := signal.MeanAndStd(xSamp)
	res.AddNote("mean matched %.1f dBm, mismatched %.1f dBm: gap %.1f dB (paper shows ≈10)", mMean, xMean, mMean-xMean)
	return res, nil
}

func fig2a(ctx context.Context, seed int64) (*Result, error) {
	return rssiPDF("fig2a", "Fig. 2(a) — impact of polarization mismatch on a Wi-Fi link",
		devices.NetgearAP, devices.ESP8266, channel.Absorber(), 2.0, -60, -25, seed)
}

func fig2b(ctx context.Context, seed int64) (*Result, error) {
	return rssiPDF("fig2b", "Fig. 2(b) — impact of polarization mismatch on a BLE link",
		devices.MetaMotionR, devices.RaspberryPi3, channel.Home(seed+7, 4), 2.0, -90, -55, seed)
}
