package experiments

// Persistence glue between the engine and internal/store: converting
// Result tables to self-describing store records and back, and the
// resume-time validation that decides whether a stored cell can stand in
// for a fresh computation. The conversion is lossless — the string
// encoding in store round-trips every float64 bit-exactly — which is
// what lets a resumed run reproduce a fresh run bit-for-bit
// (determinism invariant 6 in ARCHITECTURE.md).

import (
	"fmt"
	"slices"

	"github.com/llama-surface/llama/internal/store"
)

// storeRecord converts one computed cell into its persisted form.
func storeRecord(res *Result, seed int64, meta store.Meta) *store.Record {
	return &store.Record{
		ID:      res.ID,
		Seed:    seed,
		Title:   res.Title,
		Columns: slices.Clone(res.Columns),
		Rows:    store.EncodeRows(res.Rows),
		Notes:   slices.Clone(res.Notes),
		Meta:    meta,
	}
}

// CellRecord converts one computed cell into its persisted store form
// — the exact record a submission's finalize writes, so worker-side
// (fleet) and coordinator-side persistence of the same cell produce
// byte-identical files.
func CellRecord(res *Result, seed int64, meta store.Meta) *store.Record {
	return storeRecord(res, seed, meta)
}

// resultFromRecord converts a validated store record back into the
// Result the engine would have computed.
func resultFromRecord(rec *store.Record) (*Result, error) {
	rows, err := rec.DecodeRows()
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:      rec.ID,
		Title:   rec.Title,
		Columns: slices.Clone(rec.Columns),
		Rows:    rows,
		Notes:   slices.Clone(rec.Notes),
	}, nil
}

// loadStored consults the store for one (experiment, seed) cell. It
// returns (result, "", true) when a valid record exists, and otherwise
// (nil, warning, false): the warning is empty for a cell that simply
// was never stored, and names the experiment, seed and file for a
// record that exists but cannot be used (corrupt, schema-mismatched, or
// shaped unlike the current sweep) — those cells are recomputed, never
// fatal.
func loadStored(st *store.Store, id string, seed int64) (*Result, string, bool) {
	rec, err := st.Get(id, seed)
	if err != nil {
		if store.IsNotFound(err) {
			return nil, "", false
		}
		return nil, fmt.Sprintf("%v: recomputing", err), false
	}
	// Cells computed in approximate LUT mode are never reused: their rows
	// are not bit-identical to exact computation, and invariant 6
	// promises a resumed run reproduces a fresh (exact) run bit-for-bit.
	// Recomputing them is cheap — and under LUT mode, cheap by design.
	if rec.Meta.LUT {
		return nil, fmt.Sprintf("store: record for %s (seed %d) at %s was computed in approximate LUT mode: recomputing",
			id, seed, rec.Path), false
	}
	// A record that predates a change to the experiment's table shape
	// would fold garbage into the aggregates; validate against the
	// sweep's declared columns before trusting it.
	if sw := sweeps[id]; sw != nil && !slices.Equal(rec.Columns, sw.Columns) {
		return nil, fmt.Sprintf("store: stale record for %s (seed %d) at %s: stored columns %v, sweep declares %v: recomputing",
			id, seed, rec.Path, rec.Columns, sw.Columns), false
	}
	res, err := resultFromRecord(rec)
	if err != nil {
		return nil, fmt.Sprintf("store: corrupt record for %s (seed %d) at %s: %v: recomputing",
			id, seed, rec.Path, err), false
	}
	return res, "", true
}
