package experiments

import (
	"math"
	"strings"
	"testing"
)

// Golden-output tests: the exact bytes of every Result writer, frozen.
// These formats are consumed downstream (spreadsheets, plotting scripts,
// the llama-bench CLI), so a formatting drift is an API break even when
// the numbers are right.

func goldenResult() *Result {
	r := &Result{ID: "golden", Title: "golden fixture", Columns: []string{"dist_cm", "gain_dB", "note_val"}}
	r.AddRow(24, 15.25, 0.001)
	r.AddRow(48, math.NaN(), math.Inf(1))
	r.AddNote("headline %.1f dB", 15.25)
	return r
}

func goldenReplicated() *ReplicatedResult {
	return &ReplicatedResult{
		ID: "golden", Title: "golden fixture", Columns: []string{"d", "v"},
		Seeds: []int64{1, 2}, Mean: [][]float64{{10, 2.5}}, Stddev: [][]float64{{0, 0.5}},
	}
}

func TestGoldenRender(t *testing.T) {
	const want = "== golden: golden fixture\n" +
		"dist_cm  gain_dB  note_val  \n" +
		"  24.00    15.25  1.00e-03  \n" +
		"  48.00        —      +inf  \n" +
		"   note: headline 15.2 dB\n"
	var sb strings.Builder
	if err := goldenResult().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("Render drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenWriteCSV(t *testing.T) {
	const want = "dist_cm,gain_dB,note_val\n" +
		"24,15.25,0.001\n" +
		"48,,inf\n"
	var sb strings.Builder
	if err := goldenResult().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("WriteCSV drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenWriteJSON(t *testing.T) {
	const want = `{
  "id": "golden",
  "title": "golden fixture",
  "columns": [
    "dist_cm",
    "gain_dB",
    "note_val"
  ],
  "rows": [
    [
      24,
      15.25,
      0.001
    ],
    [
      48,
      0,
      1e+308
    ]
  ],
  "notes": [
    "headline 15.2 dB"
  ]
}
`
	var sb strings.Builder
	if err := goldenResult().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("WriteJSON drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenReplicatedRender(t *testing.T) {
	const want = "== golden: golden fixture [2 seeds]\n" +
		"    d          v  \n" +
		"10.00  2.50±0.50  \n"
	var sb strings.Builder
	if err := goldenReplicated().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("ReplicatedResult.Render drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenReplicatedWriteCSV(t *testing.T) {
	const want = "d,d_sd,v,v_sd\n" +
		"10,0,2.5,0.5\n"
	var sb strings.Builder
	if err := goldenReplicated().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("ReplicatedResult.WriteCSV drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenReplicatedWriteJSON(t *testing.T) {
	const want = `{
  "id": "golden",
  "title": "golden fixture",
  "columns": [
    "d",
    "v"
  ],
  "seeds": [
    1,
    2
  ],
  "mean": [
    [
      10,
      2.5
    ]
  ],
  "stddev": [
    [
      0,
      0.5
    ]
  ]
}
`
	var sb strings.Builder
	if err := goldenReplicated().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("ReplicatedResult.WriteJSON drifted from golden output.\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestRenderByteStable: a real experiment table renders to identical
// bytes on repeated runs with the same seed — the property the golden
// fixtures above rely on.
func TestRenderByteStable(t *testing.T) {
	render := func() string {
		res, err := Run(t.Context(), "tab1", 1)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("tab1 render is not byte-stable across runs")
	}
}
