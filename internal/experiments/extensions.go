package experiments

import (
	"context"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/radio"
	"github.com/llama-surface/llama/internal/schedule"
	"github.com/llama-surface/llama/internal/units"
)

func init() {
	registerSweep(extThroughputSweep())
	registerSweep(ablYieldSweep())
	registerSweep(extScheduleSweep())
}

// extThroughputSweep grounds the paper's performance-metrics remark ("an
// increase in the received power usually translates to a throughput
// improvement"): the RSSI gains of Fig. 16 walked through 802.11g rate
// adaptation, one distance per point.
func extThroughputSweep() *Sweep {
	dists := []float64{0.5, 1, 2, 4, 8, 16}
	return &Sweep{
		ID:          "ext-throughput",
		Description: "Extension — Wi-Fi rate-adaptation throughput with/without the surface vs distance",
		Title:       "802.11g adapted throughput over the mismatched link, with vs without LLAMA",
		Columns:     []string{"dist_m", "snr_with_dB", "snr_without_dB", "tput_with_Mbps", "tput_without_Mbps", "speedup"},
		Points:      len(dists),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			const frame = 1500
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			d := dists[i]
			sc := channel.DefaultScene(surf, d)
			sc.TxPowerW = 1e-3 // low-power IoT radio
			act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
			sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
			if _, err := control.CoarseToFine(ctx, control.DefaultSweepConfig(), act, sen); err != nil {
				return PointResult{}, err
			}
			base := channel.DefaultScene(nil, d)
			base.TxPowerW = 1e-3
			snrWith := sc.SNR()
			snrWithout := base.SNR()
			tpWith := radio.AdaptedThroughput(radio.WiFi11g, snrWith, frame)
			tpWithout := radio.AdaptedThroughput(radio.WiFi11g, snrWithout, frame)
			speedup := 0.0
			if tpWithout > 0 {
				speedup = tpWith / tpWithout
			}
			return Row(d, units.LinearToDB(snrWith), units.LinearToDB(snrWithout),
				tpWith/1e6, tpWithout/1e6, speedup), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("the 15 dB-class polarization gain climbs several rungs of the MCS ladder; at range the mismatched link falls off the PER cliff entirely while the corrected one keeps carrying traffic")
			return nil
		},
	}
}

// ablYieldSweep asks the manufacturing question behind the paper's cost
// argument: how much fabrication spread and how many dead varactors can
// the $5/unit panel absorb? One failure rate per point.
func ablYieldSweep() *Sweep {
	rates := []float64{0, 0.005, 0.02, 0.05, 0.15, 0.30}
	return &Sweep{
		ID:          "abl-yield",
		Description: "Ablation — manufacturing spread and varactor failures vs panel performance",
		Title:       "Manufactured-panel yield: spread/failures vs rotation and efficiency",
		Columns:     []string{"failRate_pct", "failedUnits", "rotation_deg", "rotLoss_deg", "effLoss_dB"},
		Points:      len(rates),
		Point: func(ctx context.Context, seed int64, i int) (PointResult, error) {
			f0 := units.DefaultCarrierHz
			rate := rates[i]
			spec := metasurface.DefaultLatticeSpec()
			spec.FailureRate = rate
			lat, err := metasurface.NewLattice(optimizedFR4, spec, seed)
			if err != nil {
				return PointResult{}, err
			}
			rep, err := lat.Yield(f0, 2, 15)
			if err != nil {
				return PointResult{}, err
			}
			lat.SetBias(2, 15)
			return Row(rate*100, float64(rep.FailedUnits), lat.RotationDegrees(f0),
				rep.RotationLossDeg, rep.EfficiencyLossDB), nil
		},
		Finish: func(res *Result, seed int64) error {
			res.AddNote("the coherent average over 180 units makes the panel robust: a few dead varactor banks barely move the aggregate rotation — yield at cheap assembly is not the bottleneck")
			return nil
		},
	}
}

// extScheduleSweep runs the §7 policies over two links with conflicting
// polarization needs. The policies are ranked against each other over one
// shared bias grid, so the comparison is a single sweep point.
func extScheduleSweep() *Sweep {
	return &Sweep{
		ID:          "ext-schedule",
		Description: "Extension — §7 polarization-reuse scheduling policies over two conflicting links",
		Title:       "Polarization-reuse scheduling: per-policy aggregate and worst-link throughput",
		Columns:     []string{"policy_rank", "sum_Mbps", "min_Mbps", "shareA", "shareB"},
		Points:      1,
		Point: func(ctx context.Context, seed int64, _ int) (PointResult, error) {
			surf, err := metasurface.New(optimizedFR4)
			if err != nil {
				return PointResult{}, err
			}
			mk := func(name string, rxOrient, dist float64) schedule.Link {
				sc := channel.DefaultScene(surf, dist)
				sc.Rx.Orientation = rxOrient
				sc.TxPowerW = 2e-5 // mid-ladder regime where conflicts cost rate
				return schedule.Link{
					Name: name,
					Throughput: func(vx, vy float64) float64 {
						surf.SetBias(vx, vy)
						return radio.AdaptedThroughput(radio.WiFi11g, sc.SNR(), 1500)
					},
				}
			}
			links := []schedule.Link{
				mk("device-A", 0, 0.48),
				mk("device-B", 1.2, 0.60),
			}
			ranked, err := schedule.Compare(links, schedule.BiasGrid{VMin: 0, VMax: 30, Step: 3})
			if err != nil {
				return PointResult{}, err
			}
			var pt PointResult
			for i, a := range ranked {
				pt.Rows = append(pt.Rows, []float64{float64(i + 1), a.Sum() / 1e6, a.Min() / 1e6,
					a.PerLink[0].Share, a.PerLink[1].Share})
				pt.AddNote("rank %d = %s", i+1, a.Policy)
			}
			pt.AddNote("with log-like rate curves a static compromise is often competitive; time sharing wins only when the compromise falls off the PER cliff (see schedule package tests)")
			return pt, nil
		},
	}
}
