package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleResult() *Result {
	r := &Result{ID: "x", Title: "sample", Columns: []string{"a", "b", "c"}}
	r.AddRow(1, 2.5, -3)
	r.AddRow(math.NaN(), math.Inf(1), math.Inf(-1))
	r.AddNote("a note")
	return r
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(records))
	}
	if records[0][0] != "a" || records[0][2] != "c" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "2.5" {
		t.Errorf("row value = %q", records[1][1])
	}
	// NaN → empty, Inf → inf/-inf.
	if records[2][0] != "" || records[2][1] != "inf" || records[2][2] != "-inf" {
		t.Errorf("special values = %v", records[2])
	}
}

func TestWriteJSONValid(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID      string      `json:"id"`
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
		Notes   []string    `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.ID != "x" || len(doc.Rows) != 2 || len(doc.Notes) != 1 {
		t.Errorf("doc shape: %+v", doc)
	}
}

func TestCSVOfRealExperiment(t *testing.T) {
	res, err := Run(context.Background(), "tab1", 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 8 { // header + 7 Vy rows
		t.Errorf("tab1 CSV records = %d", len(records))
	}
}
