package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Engine executes registered experiments concurrently across a bounded
// worker pool. Experiments are pure functions of their seed, so the only
// determinism hazards are scheduling and aggregation order; the Engine
// assigns every (experiment, seed) cell a fixed slot before any worker
// starts and aggregates in slot order, which makes its output bit-identical
// to the serial RunAll path for any worker count.
type Engine struct {
	// Concurrency bounds the worker pool. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// IDs restricts the run to a subset of the registry; nil means every
	// registered experiment. Output is always produced in sorted-ID
	// order regardless of the order given here, matching the serial
	// RunAll path.
	IDs []string
}

// Timing records one experiment's wall-clock cost, summed across seeds
// when the run is replicated.
type Timing struct {
	ID      string
	Elapsed time.Duration
}

// Report summarises an Engine run: the per-seed results in ID order,
// per-experiment wall time, and the total wall time of the fan-out.
type Report struct {
	// Seeds are the seeds run, in the order given.
	Seeds []int64
	// Concurrency is the resolved worker count.
	Concurrency int
	// Wall is the end-to-end wall time of the whole run.
	Wall time.Duration
	// Results holds the tables for Seeds[0], in ID order — deep-equal to
	// the serial RunAll output for that seed.
	Results []*Result
	// Timings lists per-experiment wall time (summed across seeds), in
	// ID order.
	Timings []Timing
	// Replicated aggregates each experiment across all seeds; nil when
	// the run used a single seed.
	Replicated []*ReplicatedResult
}

// Render writes the timing summary as an aligned text table.
func (rep *Report) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== engine: %d experiments × %d seed(s), %d worker(s), wall %v\n",
		len(rep.Timings), len(rep.Seeds), rep.Concurrency, rep.Wall.Round(time.Microsecond))
	width := 0
	for _, t := range rep.Timings {
		if len(t.ID) > width {
			width = len(t.ID)
		}
	}
	for _, t := range rep.Timings {
		fmt.Fprintf(&sb, "%-*s  %v\n", width, t.ID, t.Elapsed.Round(time.Microsecond))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ReplicatedResult aggregates one experiment across several seeds:
// per-cell mean and sample standard deviation over the seed axis, so the
// figure tables carry error bars like the paper's.
type ReplicatedResult struct {
	// ID and Title identify the underlying experiment.
	ID    string
	Title string
	// Columns labels the numeric columns (same as the per-seed Result).
	Columns []string
	// Seeds are the replication seeds, in run order.
	Seeds []int64
	// Mean and Stddev are per-cell statistics over the seed axis; both
	// have the row/column shape of the per-seed tables. Stddev is the
	// sample standard deviation (n−1), zero for a single seed.
	Mean   [][]float64
	Stddev [][]float64
	// Elapsed is the total wall time this experiment cost across seeds.
	Elapsed time.Duration
}

// Render writes the aggregate as an aligned text table. Cells whose
// spread is exactly zero (typically the x-axis column, identical across
// seeds) render as the plain mean; the rest render as mean±stddev.
func (r *ReplicatedResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s [%d seeds]\n", r.ID, r.Title, len(r.Seeds)); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Mean))
	for ri, row := range r.Mean {
		cells[ri] = make([]string, len(row))
		for ci, m := range row {
			s := formatCell(m)
			if sd := r.Stddev[ri][ci]; sd != 0 {
				s += "±" + formatCell(sd)
			}
			cells[ri][ci] = s
			if n := len([]rune(cells[ri][ci])); n > widths[ci] {
				widths[ci] = n
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	// fmt pads %*s by rune count, so the rune-measured widths align
	// even though "±" and "—" are multi-byte.
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Options configures a full engine run (the shape llama.RunExperiments
// takes).
type Options struct {
	// IDs restricts the run; nil means every registered experiment.
	IDs []string
	// Seeds are the replication seeds; nil means {1}.
	Seeds []int64
	// Concurrency bounds the worker pool; ≤0 means GOMAXPROCS.
	Concurrency int
}

// Execute runs opts through an Engine and returns the combined report.
// On failure the report carries whatever completed, and the error names
// the experiment (and seed) that failed.
func Execute(ctx context.Context, opts Options) (*Report, error) {
	e := &Engine{Concurrency: opts.Concurrency, IDs: opts.IDs}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	return e.run(ctx, seeds)
}

// RunAll fans every selected experiment out across the pool and returns
// the results in ID order — deep-equal to the serial RunAll for the same
// seed, for any Concurrency ≥ 1.
func (e *Engine) RunAll(ctx context.Context, seed int64) ([]*Result, error) {
	rep, err := e.run(ctx, []int64{seed})
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// Collect is RunAll plus per-experiment timing and the run summary.
func (e *Engine) Collect(ctx context.Context, seed int64) (*Report, error) {
	return e.run(ctx, []int64{seed})
}

// Replicate runs every selected experiment across all seeds and
// aggregates per-cell mean/stddev. Aggregation iterates seeds in the
// given order, so the statistics are bit-identical for any worker count.
// A single seed is valid: the aggregate is that run with zero spread.
func (e *Engine) Replicate(ctx context.Context, seeds []int64) ([]*ReplicatedResult, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiments: Replicate needs at least one seed")
	}
	rep, err := e.run(ctx, seeds)
	if err != nil {
		return nil, err
	}
	if len(seeds) == 1 {
		// run only aggregates for multi-seed reports (Report.Replicated
		// stays nil for single-seed runs); fold the degenerate case here
		// so this method never returns (nil, nil) after a full run.
		out := make([]*ReplicatedResult, len(rep.Results))
		for i, r := range rep.Results {
			agg, err := replicate(r.ID, seeds, []*Result{r}, rep.Timings[i].Elapsed)
			if err != nil {
				return nil, err
			}
			out[i] = agg
		}
		return out, nil
	}
	return rep.Replicated, nil
}

// selected resolves the ID list, validating against the registry.
func (e *Engine) selected() ([]string, error) {
	if e.IDs == nil {
		return IDs(), nil
	}
	ids := append([]string(nil), e.IDs...)
	sort.Strings(ids)
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	return ids, nil
}

// workers resolves the pool size for n jobs.
func (e *Engine) workers(n int) int {
	w := e.Concurrency
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run is the engine core: one bounded pool over the (experiment × seed)
// job matrix, slot-indexed collection, then deterministic aggregation.
func (e *Engine) run(ctx context.Context, seeds []int64) (*Report, error) {
	ids, err := e.selected()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	nJobs := len(ids) * len(seeds)
	grid := make([]*Result, nJobs) // grid[idIdx*len(seeds)+seedIdx]
	elapsed := make([]time.Duration, nJobs)
	jobErrs := make([]error, nJobs)
	workers := e.workers(nJobs)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				id, seed := ids[j/len(seeds)], seeds[j%len(seeds)]
				t0 := time.Now()
				res, err := Run(runCtx, id, seed)
				elapsed[j] = time.Since(t0)
				if err != nil {
					jobErrs[j] = fmt.Errorf("experiments: %s (seed %d): %w", id, seed, err)
					cancel() // fail fast: stop feeding new jobs
					continue
				}
				grid[j] = res
			}
		}()
	}
feed:
	for j := 0; j < nJobs; j++ {
		select {
		case jobs <- j:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Seeds:       append([]int64(nil), seeds...),
		Concurrency: workers,
		Wall:        time.Since(start),
	}
	// Error policy, in deterministic order: the caller's cancellation
	// wins, then the first real (non-cancellation) job failure by slot
	// index, then any remaining job error. Assembly still runs below so
	// the report salvages every completed cell either way.
	firstErr := ctx.Err()
	if firstErr == nil {
		for _, jerr := range jobErrs {
			if jerr == nil {
				continue
			}
			if firstErr == nil {
				firstErr = jerr
			}
			if !errors.Is(jerr, context.Canceled) {
				firstErr = jerr
				break
			}
		}
	}

	// Assemble in slot order; on failure keep completed prefix cells so
	// callers can salvage partial output.
	for i, id := range ids {
		var perSeed []*Result
		total := time.Duration(0)
		for s := range seeds {
			j := i*len(seeds) + s
			total += elapsed[j]
			if grid[j] != nil {
				perSeed = append(perSeed, grid[j])
			}
		}
		if len(perSeed) < len(seeds) {
			continue // incomplete cell row: excluded from the report
		}
		rep.Timings = append(rep.Timings, Timing{ID: id, Elapsed: total})
		rep.Results = append(rep.Results, perSeed[0])
		if len(seeds) > 1 {
			agg, err := replicate(id, seeds, perSeed, total)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rep.Replicated = append(rep.Replicated, agg)
		}
	}
	return rep, firstErr
}

// replicate folds one experiment's per-seed tables into mean/stddev.
// Summation iterates seeds in run order, so the result is independent of
// which worker produced which table.
func replicate(id string, seeds []int64, runs []*Result, total time.Duration) (*ReplicatedResult, error) {
	first := runs[0]
	for _, r := range runs[1:] {
		if len(r.Rows) != len(first.Rows) || len(r.Columns) != len(first.Columns) {
			return nil, fmt.Errorf("experiments: %s: non-uniform shape across seeds (%dx%d vs %dx%d)",
				id, len(r.Rows), len(r.Columns), len(first.Rows), len(first.Columns))
		}
	}
	agg := &ReplicatedResult{
		ID:      id,
		Title:   first.Title,
		Columns: append([]string(nil), first.Columns...),
		Seeds:   append([]int64(nil), seeds...),
		Elapsed: total,
	}
	n := float64(len(runs))
	agg.Mean = make([][]float64, len(first.Rows))
	agg.Stddev = make([][]float64, len(first.Rows))
	for ri := range first.Rows {
		agg.Mean[ri] = make([]float64, len(first.Columns))
		agg.Stddev[ri] = make([]float64, len(first.Columns))
		for ci := range first.Columns {
			// Cells identical across seeds (x-axis columns, mostly) fold
			// exactly: sum/n rounding must not smear a zero spread into
			// ±1e-15 noise in the rendered error bars.
			v0, same := first.Rows[ri][ci], true
			var sum float64
			for _, r := range runs {
				v := r.Rows[ri][ci]
				same = same && v == v0
				sum += v
			}
			if same {
				agg.Mean[ri][ci] = v0
				continue
			}
			mean := sum / n
			agg.Mean[ri][ci] = mean
			if len(runs) > 1 {
				var ss float64
				for _, r := range runs {
					d := r.Rows[ri][ci] - mean
					ss += d * d
				}
				agg.Stddev[ri][ci] = math.Sqrt(ss / (n - 1))
			}
		}
	}
	return agg, nil
}
