package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"sort"
	"strings"
	"time"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
)

// Engine executes registered experiments concurrently across a bounded
// worker pool. Experiments are pure functions of their seed, so the only
// determinism hazards are scheduling and aggregation order; the Engine
// assigns every (experiment, seed) cell a fixed slot before any worker
// starts and aggregates in slot order, which makes its output bit-identical
// to the serial RunAll path for any worker count.
//
// With ShardRows set, experiments declared as Sweeps are split further:
// every sweep point becomes its own job, interleaved with whole-experiment
// jobs in the same queue, so a single long experiment saturates the pool
// instead of bounding wall-clock. Point outputs are collected into
// per-point slots and reassembled in axis order, so sharded output is
// still bit-identical to the serial path.
type Engine struct {
	// Concurrency bounds the worker pool. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// IDs restricts the run to a subset of the registry; nil or empty
	// means every registered experiment, and duplicates count once.
	// Output is always produced in sorted-ID order regardless of the
	// order given here, matching the serial RunAll path.
	IDs []string
	// ShardRows splits sweep-shaped experiments into per-point row jobs.
	// Experiments registered as plain Runners still run whole.
	ShardRows bool
	// BatchRows groups that many consecutive sweep points into one queued
	// job (with ShardRows), amortizing per-job queue overhead on axes
	// with many cheap points. ≤1 means one point per job. Collection
	// stays slot-indexed per point, so output is unchanged.
	BatchRows int
	// Store, when non-nil, persists every freshly computed (experiment,
	// seed) cell after the run — including completed cells of a run that
	// failed elsewhere, so partial progress survives restarts.
	Store *store.Store
	// Resume makes the run consult Store before queueing each cell: a
	// cell with a valid stored record is reused instead of recomputed,
	// and the union of stored + fresh per-seed tables folds into the
	// same Results/Replicated output a fresh run would produce,
	// bit-identically (determinism invariant 6). Cells whose records are
	// missing, corrupt, schema-mismatched or shaped unlike the current
	// sweep are recomputed (and re-persisted), never fatal.
	Resume bool
}

// Timing records one experiment's cost, summed across seeds when the run
// is replicated.
type Timing struct {
	// ID is the experiment.
	ID string
	// Elapsed is the wall-clock span the experiment occupied: from its
	// first job starting to its last job finishing (summed across seeds).
	Elapsed time.Duration
	// Busy is the total compute time across the experiment's jobs. For an
	// unsharded experiment Busy == Elapsed; for a sharded sweep
	// Busy/Elapsed is the shard speedup the fan-out achieved.
	Busy time.Duration
	// Rows is the assembled table's row count (per seed).
	Rows int
	// Points is the number of jobs the experiment contributed per seed:
	// 1 for a whole-experiment job, the axis length for a sharded sweep.
	Points int
	// CacheHits and CacheMisses are the metasurface response-cache
	// lookups attributed to this experiment's jobs. The counters are
	// process-global, so per-experiment attribution is measurable only
	// on single-worker runs, where exactly one job executes at a time.
	// Multi-worker runs interleave jobs and CANNOT attribute lookups to
	// an experiment: these fields are then zero — meaning "unattributed",
	// not "no lookups" — and only the run-wide totals in Report are
	// exact. Report.Render says so explicitly instead of printing the
	// misleading zeros.
	CacheHits, CacheMisses uint64
	// LUTInterpolated and LUTFallbacks are the approximate-mode lookups
	// attributed to this experiment's jobs (interpolated answers and
	// out-of-grid exact fallbacks). Same single-worker attribution rule
	// as CacheHits; always zero when LUT mode is off.
	LUTInterpolated, LUTFallbacks uint64
}

// Report summarises an Engine run: the per-seed results in ID order,
// per-experiment wall time, and the total wall time of the fan-out.
type Report struct {
	// Seeds are the seeds run, in the order given.
	Seeds []int64
	// Concurrency is the resolved worker count.
	Concurrency int
	// Wall is the end-to-end wall time of the whole run.
	Wall time.Duration
	// Results holds the tables for Seeds[0], in ID order — deep-equal to
	// the serial RunAll output for that seed.
	Results []*Result
	// Timings lists per-experiment wall time (summed across seeds), in
	// ID order.
	Timings []Timing
	// Replicated aggregates each experiment across all seeds; nil when
	// the run used a single seed.
	Replicated []*ReplicatedResult
	// ShardRows records whether sweep points ran as individual jobs.
	ShardRows bool
	// Salvaged carries the partial tables of sweeps that failed mid-shard:
	// the contiguous prefix of completed points, in cell order, so a late
	// point failure does not discard every finished row.
	Salvaged []*Result
	// CacheHits and CacheMisses are the metasurface response-cache
	// lookups the whole run performed (global-counter delta from run
	// start to end — exact for any worker count, though concurrent runs
	// in the same process would cross-attribute). Both zero when caching
	// is disabled.
	CacheHits, CacheMisses uint64
	// LUTInterpolated and LUTFallbacks are the approximate-mode lookups
	// the whole run performed: grid-interpolated answers and out-of-grid
	// points that fell back to the exact path. Both zero unless the run
	// opted into LUT mode — in which case its rows are NOT bit-identical
	// to an exact run, and Render flags them as approximate.
	LUTInterpolated, LUTFallbacks uint64
	// BatchRows records the per-job point batch size the run used.
	BatchRows int
	// ReusedCells counts the (experiment, seed) cells answered from the
	// results store instead of recomputed (resume runs only), and
	// ComputedCells the cells computed fresh this run.
	ReusedCells, ComputedCells int
	// PersistedCells counts the freshly computed cells written to the
	// results store.
	PersistedCells int
	// StoreWarnings lists the stored records that existed but could not
	// be reused (corrupt, truncated, schema-mismatched, or shaped unlike
	// the current sweep), each naming the experiment, seed and file.
	// Those cells were recomputed.
	StoreWarnings []string
}

// Render writes the timing summary as an aligned text table. Sharded
// sweeps additionally report their job count and the busy/wall shard
// speedup the fan-out achieved.
func (rep *Report) Render(w io.Writer) error {
	var sb strings.Builder
	mode := ""
	if rep.ShardRows {
		mode = ", row-sharded"
		if rep.BatchRows > 1 {
			mode = fmt.Sprintf("%s ×%d-point batches", mode, rep.BatchRows)
		}
	}
	fmt.Fprintf(&sb, "== engine: %d experiments × %d seed(s), %d worker(s), wall %v%s\n",
		len(rep.Timings), len(rep.Seeds), rep.Concurrency, rep.Wall.Round(time.Microsecond), mode)
	width := 0
	for _, t := range rep.Timings {
		if len(t.ID) > width {
			width = len(t.ID)
		}
	}
	for _, t := range rep.Timings {
		fmt.Fprintf(&sb, "%-*s  %12v  %4d rows", width, t.ID, t.Elapsed.Round(time.Microsecond), t.Rows)
		if t.Points > 1 {
			speedup := 1.0
			if t.Elapsed > 0 {
				speedup = float64(t.Busy) / float64(t.Elapsed)
			}
			fmt.Fprintf(&sb, "  %4d shards  busy %v (%.1f×)",
				t.Points, t.Busy.Round(time.Microsecond), speedup)
		}
		if n := t.CacheHits + t.CacheMisses; n > 0 {
			fmt.Fprintf(&sb, "  cache %d/%d", t.CacheHits, n)
		}
		if n := t.LUTInterpolated + t.LUTFallbacks; n > 0 {
			fmt.Fprintf(&sb, "  lut %d/%d", t.LUTInterpolated, n)
		}
		sb.WriteByte('\n')
	}
	if n := rep.CacheHits + rep.CacheMisses; n > 0 {
		fmt.Fprintf(&sb, "cache: %d hits / %d misses (%.1f%% hit rate)",
			rep.CacheHits, rep.CacheMisses, 100*float64(rep.CacheHits)/float64(n))
		if rep.Concurrency > 1 {
			// The global counters cannot be split per experiment when
			// jobs interleave; say so rather than leaving per-line zeros
			// that read as "no lookups".
			fmt.Fprintf(&sb, "; per-experiment: unattributed (%d workers)", rep.Concurrency)
		}
		sb.WriteByte('\n')
	}
	if n := rep.LUTInterpolated + rep.LUTFallbacks; n > 0 {
		fmt.Fprintf(&sb, "lut: %d interpolated / %d exact fallbacks (APPROXIMATE mode — rows are not bit-exact)\n",
			rep.LUTInterpolated, rep.LUTFallbacks)
	}
	if rep.ReusedCells > 0 || rep.PersistedCells > 0 || len(rep.StoreWarnings) > 0 {
		fmt.Fprintf(&sb, "store: reused %d cell(s), recomputed %d, persisted %d\n",
			rep.ReusedCells, rep.ComputedCells, rep.PersistedCells)
	}
	for _, warn := range rep.StoreWarnings {
		// Warnings already carry their "store:"/"experiments:" context;
		// prefix only the severity.
		fmt.Fprintf(&sb, "warning: %s\n", warn)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ReplicatedResult aggregates one experiment across several seeds:
// per-cell mean and sample standard deviation over the seed axis, so the
// figure tables carry error bars like the paper's.
type ReplicatedResult struct {
	// ID and Title identify the underlying experiment.
	ID    string
	Title string
	// Columns labels the numeric columns (same as the per-seed Result).
	Columns []string
	// Seeds are the replication seeds, in run order.
	Seeds []int64
	// Mean and Stddev are per-cell statistics over the seed axis; both
	// have the row/column shape of the per-seed tables. Stddev is the
	// sample standard deviation (n−1), zero for a single seed.
	Mean   [][]float64
	Stddev [][]float64
	// Elapsed is the total wall time this experiment cost across seeds.
	Elapsed time.Duration
}

// Render writes the aggregate as an aligned text table. Cells whose
// spread is exactly zero (typically the x-axis column, identical across
// seeds) render as the plain mean; the rest render as mean±stddev.
func (r *ReplicatedResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s [%d seeds]\n", r.ID, r.Title, len(r.Seeds)); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Mean))
	for ri, row := range r.Mean {
		cells[ri] = make([]string, len(row))
		for ci, m := range row {
			s := formatCell(m)
			if sd := r.Stddev[ri][ci]; sd != 0 {
				s += "±" + formatCell(sd)
			}
			cells[ri][ci] = s
			if n := len([]rune(cells[ri][ci])); n > widths[ci] {
				widths[ci] = n
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	// fmt pads %*s by rune count, so the rune-measured widths align
	// even though "±" and "—" are multi-byte.
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Options configures a full engine run (the shape llama.RunExperiments
// takes).
type Options struct {
	// IDs restricts the run; nil means every registered experiment.
	IDs []string
	// Seeds are the replication seeds; nil means {1}.
	Seeds []int64
	// Concurrency bounds the worker pool; ≤0 means GOMAXPROCS.
	Concurrency int
	// ShardRows splits each sweep-shaped experiment's rows across the
	// pool, so even a single experiment saturates the workers. Output is
	// bit-identical either way.
	ShardRows bool
	// BatchRows groups that many consecutive sweep points per sharded
	// job (≤1 = one point per job); see Engine.BatchRows.
	BatchRows int
	// StoreDir, when non-empty, opens (creating if needed) a durable
	// results store there and persists every freshly computed
	// (experiment, seed) cell into it.
	StoreDir string
	// Resume reuses valid records already in StoreDir instead of
	// recomputing their cells; missing, corrupt or shape-mismatched
	// records are recomputed and re-persisted. Output is bit-identical
	// to a fresh run. Requires StoreDir.
	Resume bool
	// LUT opts the run into the approximate interpolated-lookup mode:
	// per-axis responses come from each design's precomputed
	// (bias, freq) grid by bilinear interpolation instead of exact
	// evaluation. Rows are NOT bit-identical to an exact run (they stay
	// within the tested error bound); cells persisted by a LUT run are
	// marked and never reused by resume. The switch is process-global
	// for the duration of the run.
	LUT bool
	// LUTGrid overrides the LUT bias-axis resolution (samples across the
	// design's bias range); ≤0 keeps the default. Only meaningful with
	// LUT.
	LUTGrid int
}

// Execute runs opts through an Engine and returns the combined report.
// On failure the report carries whatever completed, and the error names
// the experiment, seed and (for sharded sweeps) point that failed.
func Execute(ctx context.Context, opts Options) (*Report, error) {
	e := &Engine{Concurrency: opts.Concurrency, IDs: opts.IDs, ShardRows: opts.ShardRows, BatchRows: opts.BatchRows, Resume: opts.Resume}
	if opts.Resume && opts.StoreDir == "" {
		return nil, errors.New("experiments: Resume requires StoreDir")
	}
	if opts.LUT {
		// Opt-in only: turning LUT mode ON for this run is explicit, and
		// the switch stays on afterwards (flag semantics, like SetCaching
		// from the llama-bench -cache flag). Execute never turns it off —
		// a process that wants exact mode back calls SetLUT(false).
		cfg := metasurface.ActiveLUTConfig()
		if opts.LUTGrid > 0 {
			cfg.BiasSteps = opts.LUTGrid
		}
		metasurface.SetLUTConfig(cfg)
		metasurface.SetLUT(true)
	}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		e.Store = st
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	// Warm-start: import every persisted response table before any
	// compute, so a fresh process answers previously computed physics
	// from memory, and persist the (possibly grown) tables after the
	// run. Both directions are pure acceleration — their warnings ride
	// in StoreWarnings, never fail the run. Table entries are exact even
	// under LUT mode (interpolated answers are never memoized), so
	// saving is always safe.
	var loadWarns []string
	if e.Store != nil {
		_, _, loadWarns = LoadResponseTables(e.Store)
		if metasurface.LUTEnabled() {
			// Approximate mode also warm-starts its dense grids, so the
			// run interpolates from imported samples instead of paying a
			// per-design grid build.
			_, _, gridWarns := LoadLUTGrids(e.Store)
			loadWarns = append(loadWarns, gridWarns...)
		}
	}
	rep, err := e.run(ctx, seeds)
	if rep != nil {
		var saveWarns []string
		if e.Store != nil {
			_, _, saveWarns = SaveResponseTables(e.Store)
			_, _, gridWarns := SaveLUTGrids(e.Store)
			saveWarns = append(saveWarns, gridWarns...)
		}
		rep.StoreWarnings = append(append(loadWarns, rep.StoreWarnings...), saveWarns...)
	}
	return rep, err
}

// RunAll fans every selected experiment out across the pool and returns
// the results in ID order — deep-equal to the serial RunAll for the same
// seed, for any Concurrency ≥ 1.
func (e *Engine) RunAll(ctx context.Context, seed int64) ([]*Result, error) {
	rep, err := e.run(ctx, []int64{seed})
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// Collect is RunAll plus per-experiment timing and the run summary.
func (e *Engine) Collect(ctx context.Context, seed int64) (*Report, error) {
	return e.run(ctx, []int64{seed})
}

// Replicate runs every selected experiment across all seeds and
// aggregates per-cell mean/stddev. Aggregation iterates seeds in the
// given order, so the statistics are bit-identical for any worker count.
// A single seed is valid: the aggregate is that run with zero spread.
func (e *Engine) Replicate(ctx context.Context, seeds []int64) ([]*ReplicatedResult, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiments: Replicate needs at least one seed")
	}
	rep, err := e.run(ctx, seeds)
	if err != nil {
		return nil, err
	}
	if len(seeds) == 1 {
		// run only aggregates for multi-seed reports (Report.Replicated
		// stays nil for single-seed runs); fold the degenerate case here
		// so this method never returns (nil, nil) after a full run.
		out := make([]*ReplicatedResult, len(rep.Results))
		for i, r := range rep.Results {
			agg, err := replicate(r.ID, seeds, []*Result{r}, rep.Timings[i].Elapsed)
			if err != nil {
				return nil, err
			}
			out[i] = agg
		}
		return out, nil
	}
	return rep.Replicated, nil
}

// resolveIDs resolves an ID selection into the sorted, deduplicated
// concrete list, validating against the registry. An empty selection —
// nil or zero-length, as a decoded JSON `"ids": []` arrives — means
// every registered experiment; a duplicated ID counts once, so no spec
// can compute or emit a table twice.
func resolveIDs(sel []string) ([]string, error) {
	if len(sel) == 0 {
		return IDs(), nil
	}
	ids := append([]string(nil), sel...)
	sort.Strings(ids)
	ids = slices.Compact(ids)
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	return ids, nil
}

// workers resolves the pool size for n jobs.
func (e *Engine) workers(n int) int {
	w := e.Concurrency
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellRun is the per-(experiment, seed) collection state of one engine
// run. Workers write only into their job's own slot (points[p],
// elapsed[p], errs[p]), so the cell needs no locking; everything else is
// touched single-threaded during assembly.
type cellRun struct {
	id   string
	seed int64
	// loaded marks a cell answered from the results store on a resume
	// run: res was decoded from its record, no jobs were queued, and it
	// is skipped by assembly and re-persistence.
	loaded bool
	// sweep is non-nil when the cell runs as per-point row jobs.
	sweep *Sweep
	// Per-job slots: one entry for a whole-experiment cell, Points
	// entries for a sharded sweep.
	points  []PointResult
	done    []bool
	errs    []error
	started []time.Time
	elapsed []time.Duration
	// Per-slot response-cache lookup deltas, recorded only on
	// single-worker runs (see Timing.CacheHits).
	cacheHits, cacheMisses []uint64
	// Per-slot approximate-mode lookup deltas, same attribution rule.
	lutInterp, lutFallback []uint64
	// res is the assembled table (nil when the cell failed or was
	// cancelled); partial is the salvaged prefix of a failed sweep.
	res     *Result
	partial *Result
	err     error
}

// jobs returns the number of job slots the cell contributes to the queue.
func (c *cellRun) jobs() int { return len(c.points) }

// busy sums the compute time of the cell's executed jobs.
func (c *cellRun) busy() time.Duration {
	var total time.Duration
	for _, d := range c.elapsed {
		total += d
	}
	return total
}

// cacheDelta sums the cell's per-slot response-cache lookups.
func (c *cellRun) cacheDelta() (hits, misses uint64) {
	for p := range c.cacheHits {
		hits += c.cacheHits[p]
		misses += c.cacheMisses[p]
	}
	return hits, misses
}

// lutDelta sums the cell's per-slot approximate-mode lookups.
func (c *cellRun) lutDelta() (interp, fallback uint64) {
	for p := range c.lutInterp {
		interp += c.lutInterp[p]
		fallback += c.lutFallback[p]
	}
	return interp, fallback
}

// span returns the wall-clock interval the cell occupied: first job start
// to last job end. Zero when nothing ran.
func (c *cellRun) span() time.Duration {
	var first, last time.Time
	for p := range c.started {
		if c.started[p].IsZero() {
			continue
		}
		end := c.started[p].Add(c.elapsed[p])
		if first.IsZero() || c.started[p].Before(first) {
			first = c.started[p]
		}
		if end.After(last) {
			last = end
		}
	}
	if first.IsZero() {
		return 0
	}
	return last.Sub(first)
}

// assemble folds the cell's job slots into its final table. For sweep
// cells it reassembles points in axis order — bit-identical to the serial
// path — and on a point failure salvages the contiguous completed prefix
// and names the failing point. Runs single-threaded after the pool
// drains.
func (c *cellRun) assemble() {
	if c.sweep == nil {
		// Whole-experiment cell: the worker already stored res/err.
		return
	}
	s := c.sweep
	// Lowest incomplete slot bounds the salvageable prefix. The failure
	// is named by the lowest point with a real (non-cancellation) error —
	// fail-fast cancellation lands context.Canceled in whatever points
	// were in flight, and those must not mask the point that actually
	// broke; a cancellation error is reported only when no real one
	// exists.
	prefix := s.Points
	for p := 0; p < s.Points; p++ {
		if !c.done[p] {
			prefix = p
			break
		}
	}
	fail := -1
	for p := 0; p < s.Points; p++ {
		if c.errs[p] == nil {
			continue
		}
		if fail == -1 {
			fail = p
		}
		if !errors.Is(c.errs[p], context.Canceled) {
			fail = p
			break
		}
	}
	if fail >= 0 {
		c.err = fmt.Errorf("experiments: %s (seed %d): %w",
			c.id, c.seed, &PointError{Point: fail, Points: s.Points, Err: c.errs[fail]})
	}
	res := s.newResult()
	for p := 0; p < prefix; p++ {
		s.appendPoint(res, c.points[p])
	}
	if prefix < s.Points {
		// Incomplete: keep the prefix as salvage, but never run Finish on
		// a truncated table — its summary would describe rows that do not
		// exist.
		c.partial = res
		return
	}
	if err := s.finish(res, c.seed); err != nil {
		c.err = fmt.Errorf("experiments: %s (seed %d): %w", c.id, c.seed, err)
		c.partial = res
		return
	}
	c.res = res
}

// run executes one one-shot engine run through the scheduler core: lay
// the submission out, start a private scheduler sized exactly like the
// old in-place pool (min of Concurrency and job count), and wait. The
// heavy lifting — layout, the worker pool, slot-ordered assembly,
// persistence and deterministic aggregation — lives in sched.go, shared
// with the long-lived Submit path, so both produce identical bytes.
func (e *Engine) run(ctx context.Context, seeds []int64) (*Report, error) {
	if e.Resume && e.Store == nil {
		return nil, errors.New("experiments: Engine.Resume requires Engine.Store (set Options.StoreDir)")
	}
	spec := RunSpec{IDs: e.IDs, Seeds: seeds, ShardRows: e.ShardRows, BatchRows: e.BatchRows, Resume: e.Resume}
	sub, err := newSubmission(ctx, spec, e.Store)
	if err != nil {
		return nil, err
	}
	s := NewScheduler(SchedulerConfig{Workers: e.workers(len(sub.queue)), Store: e.Store})
	defer s.Close()
	if err := s.launch(sub, laneNormal); err != nil {
		return nil, err
	}
	<-sub.done
	return sub.report, sub.err
}

// replicate folds one experiment's per-seed tables into mean/stddev.
// Summation iterates seeds in run order, so the result is independent of
// which worker produced which table.
func replicate(id string, seeds []int64, runs []*Result, total time.Duration) (*ReplicatedResult, error) {
	first := runs[0]
	for _, r := range runs[1:] {
		if len(r.Rows) != len(first.Rows) || len(r.Columns) != len(first.Columns) {
			return nil, fmt.Errorf("experiments: %s: non-uniform shape across seeds (%dx%d vs %dx%d)",
				id, len(r.Rows), len(r.Columns), len(first.Rows), len(first.Columns))
		}
	}
	agg := &ReplicatedResult{
		ID:      id,
		Title:   first.Title,
		Columns: append([]string(nil), first.Columns...),
		Seeds:   append([]int64(nil), seeds...),
		Elapsed: total,
	}
	n := float64(len(runs))
	agg.Mean = make([][]float64, len(first.Rows))
	agg.Stddev = make([][]float64, len(first.Rows))
	for ri := range first.Rows {
		agg.Mean[ri] = make([]float64, len(first.Columns))
		agg.Stddev[ri] = make([]float64, len(first.Columns))
		for ci := range first.Columns {
			// Cells identical across seeds (x-axis columns, mostly) fold
			// exactly: sum/n rounding must not smear a zero spread into
			// ±1e-15 noise in the rendered error bars.
			v0, same := first.Rows[ri][ci], true
			var sum float64
			for _, r := range runs {
				v := r.Rows[ri][ci]
				same = same && v == v0
				sum += v
			}
			if same {
				agg.Mean[ri][ci] = v0
				continue
			}
			mean := sum / n
			agg.Mean[ri][ci] = mean
			if len(runs) > 1 {
				var ss float64
				for _, r := range runs {
					d := r.Rows[ri][ci] - mean
					ss += d * d
				}
				agg.Stddev[ri][ci] = math.Sqrt(ss / (n - 1))
			}
		}
	}
	return agg, nil
}
