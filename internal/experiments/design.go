package experiments

import (
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// optimizedFR4 is the paper's calibrated low-cost design, computed once
// at package init. Design is an immutable value, so sweep points may
// share it read-only and build their own (bias-mutable) Surface from it;
// the calibration bisection is deterministic, so hoisting it preserves
// bit-identical experiment output.
var optimizedFR4 = metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
