package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleGrid builds a representative grid record (a 2×2 grid per axis).
func sampleGrid(fp string) *GridRecord {
	row := []string{"0.1", "0", "0.9", "0", "0.9", "0", "0.1", "0", "377", "0.5", "0"}
	samples := make([][]string, 8)
	for i := range samples {
		samples[i] = row
	}
	return &GridRecord{
		Fingerprint: fp,
		Meta:        []string{"2", "2", "0.25", "0", "30", "1.8375e+09", "6.125e+08"},
		Samples:     samples,
	}
}

// TestGridRecordRoundTrip: PutGrid stamps schema, timestamp and path;
// GetGrid returns the identical rows (the store never interprets them).
func TestGridRecordRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleGrid("fp-grid")
	if err := s.PutGrid(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != GridSchemaVersion || rec.Path == "" || rec.SavedUnixNs == 0 {
		t.Errorf("PutGrid left schema=%d path=%q saved=%d", rec.Schema, rec.Path, rec.SavedUnixNs)
	}
	got, err := s.GetGrid("fp-grid")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != "fp-grid" || got.Entries() != 8 || len(got.Meta) != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	// A pinned timestamp must survive re-puts.
	got.SavedUnixNs = 42
	if err := s.PutGrid(got); err != nil {
		t.Fatal(err)
	}
	if again, err := s.GetGrid("fp-grid"); err != nil || again.SavedUnixNs != 42 {
		t.Errorf("pinned SavedUnixNs overwritten: %v / %+v", err, again)
	}
}

// TestGridNotFound: a never-persisted grid is a typed not-found distinct
// from corruption.
func TestGridNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.GetGrid("never-written")
	if !IsGridNotFound(err) {
		t.Fatalf("err = %v, want GridNotFoundError", err)
	}
	var nf *GridNotFoundError
	if !errors.As(err, &nf) || nf.Fingerprint != "never-written" || nf.Path == "" {
		t.Errorf("not-found detail: %+v", nf)
	}
	if IsGridNotFound(errors.New("other")) {
		t.Error("IsGridNotFound matched an unrelated error")
	}
}

// TestGridRecordCorrupt: truncated, multi-line, schema-drifted,
// fingerprint-less and mislabelled records all surface as CorruptError
// naming the path — never as not-found, never as a zero record.
func TestGridRecordCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGrid(sampleGrid("fp-x")); err != nil {
		t.Fatal(err)
	}
	path := s.GridPath("fp-x")
	for name, data := range map[string]string{
		"empty":          "",
		"truncated":      `{"schema":1,"fingerprint":"fp-`,
		"multi-line":     "{}\n{}\n",
		"schema drift":   `{"schema":999,"fingerprint":"fp-x"}` + "\n",
		"no fingerprint": `{"schema":1}` + "\n",
		"mislabelled":    `{"schema":1,"fingerprint":"fp-other"}` + "\n",
	} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := s.GetGrid("fp-x")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want CorruptError", name, err)
			continue
		}
		if !strings.Contains(ce.Error(), path) {
			t.Errorf("%s: corrupt error does not name the file: %v", name, ce)
		}
		if IsGridNotFound(err) {
			t.Errorf("%s: corruption misreported as not-found", name)
		}
	}
}

// TestListGrids: listing returns readable records sorted by fingerprint,
// skipping damaged and mislabelled files instead of failing warm start.
func TestListGrids(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := s.ListGrids(); err != nil || len(recs) != 0 {
		t.Fatalf("empty store: %v / %d records", err, len(recs))
	}
	for _, fp := range []string{"zz", "aa", "mm"} {
		if err := s.PutGrid(sampleGrid(fp)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(s.gridsDir(), "broken.json"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.gridsDir(), "liar.json"),
		[]byte(`{"schema":1,"fingerprint":"someone-else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.ListGrids()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 (damaged files skipped)", len(recs))
	}
	for i, want := range []string{"aa", "mm", "zz"} {
		if recs[i].Fingerprint != want {
			t.Errorf("record %d = %s, want %s (sorted by fingerprint)", i, recs[i].Fingerprint, want)
		}
		if recs[i].Path == "" {
			t.Errorf("record %d missing path", i)
		}
	}
}

// TestGridPathEscaping: hostile fingerprints cannot escape the grids
// directory.
func TestGridPathEscaping(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := s.GridPath("../../etc/passwd")
	if filepath.Dir(p) != s.gridsDir() {
		t.Fatalf("hostile fingerprint escaped the grids dir: %s", p)
	}
	if err := s.PutGrid(&GridRecord{Fingerprint: "../../x", Meta: []string{"2"}}); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetGrid("../../x"); err != nil || got.Fingerprint != "../../x" {
		t.Fatalf("escaped round trip: %v", err)
	}
}

// TestPutGridValidates: nil and fingerprint-less records are rejected
// before touching disk.
func TestPutGridValidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGrid(nil); err == nil {
		t.Error("nil record accepted")
	}
	if err := s.PutGrid(&GridRecord{}); err == nil {
		t.Error("fingerprint-less record accepted")
	}
}
