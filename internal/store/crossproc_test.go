package store

// Cross-process writer property: fleet deployments point several
// llama-worker processes at one shared store directory, so the same
// cell can be persisted by racing writers. Because records are a pure
// function of (experiment, seed) and every write is temp-file + fsync +
// rename, the race must resolve to exactly one valid, byte-identical
// record per cell — never a torn read, never duplicate index entries.
// Two Store handles on one directory stand in for two processes here
// (each has its own mutex and manifest, so nothing is serialized
// between them except the filesystem, exactly as across processes).

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fleetCellRecord builds the deterministic record two racing workers
// would both compute for one cell: same rows, same pinned Meta, so the
// encoded bytes are identical no matter who writes.
func fleetCellRecord(id string, seed int64) *Record {
	var rows [][]float64
	for i := 0; i < 4; i++ {
		v := math.Sin(float64(i)*1.3) * float64(seed+1)
		edge := 0.0
		if i == 1 {
			edge = math.NaN()
		} else if i == 2 {
			edge = math.Inf(-1)
		}
		rows = append(rows, []float64{float64(i), v, edge})
	}
	return &Record{
		ID:      id,
		Seed:    seed,
		Title:   "cross-process fixture",
		Columns: []string{"i", "value", "edge"},
		Rows:    EncodeRows(rows),
		// Pinned: Put only stamps SavedUnixNs when zero, and a wall-clock
		// stamp would make the two writers' bytes differ.
		Meta: Meta{SavedUnixNs: 1_700_000_000_000_000_000, Concurrency: 1},
	}
}

// TestCrossProcessWriters: two handles on one directory persist the
// same cells concurrently; afterwards every cell has exactly one valid
// record with the reference bytes, the rebuilt manifest agrees, and no
// temp files leak.
func TestCrossProcessWriters(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		id   string
		seed int64
	}
	var cells []cell
	for _, id := range []string{"fig15", "fig16", "tab1"} {
		for seed := int64(1); seed <= 4; seed++ {
			cells = append(cells, cell{id, seed})
		}
	}

	// Reference bytes: what a single writer produces for each cell.
	refDir := t.TempDir()
	ref, err := Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[cell][]byte)
	for _, cl := range cells {
		rec := fleetCellRecord(cl.id, cl.seed)
		if err := ref.Put(rec); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ref.CellPath(cl.id, cl.seed))
		if err != nil {
			t.Fatal(err)
		}
		want[cl] = data
	}

	// Both "processes" write every cell several times, concurrently, with
	// interleaved Syncs so the index.jsonl rewrite races too.
	var wg sync.WaitGroup
	for _, st := range []*Store{a, b} {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(st *Store) {
				defer wg.Done()
				for _, cl := range cells {
					if err := st.Put(fleetCellRecord(cl.id, cl.seed)); err != nil {
						t.Errorf("put %s/seed%d: %v", cl.id, cl.seed, err)
					}
					if err := st.Sync(); err != nil {
						t.Errorf("sync: %v", err)
					}
				}
			}(st)
		}
	}
	wg.Wait()
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	// Every cell file holds exactly the reference bytes — rename is
	// atomic, so a reader can never observe a torn or interleaved record.
	for _, cl := range cells {
		data, err := os.ReadFile(a.CellPath(cl.id, cl.seed))
		if err != nil {
			t.Fatalf("read %s/seed%d: %v", cl.id, cl.seed, err)
		}
		if !bytes.Equal(data, want[cl]) {
			t.Errorf("%s/seed%d: bytes differ from single-writer reference", cl.id, cl.seed)
		}
	}

	// No temp files or extra records leaked.
	entries, err := os.ReadDir(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cells) {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("cells dir has %d entries, want %d: %v", len(entries), len(cells), names)
	}

	// A fresh Open (the next process) sees every cell exactly once and
	// Get round-trips it.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != len(cells) {
		t.Fatalf("fresh open: %d records, want %d", fresh.Len(), len(cells))
	}
	for _, cl := range cells {
		rec, err := fresh.Get(cl.id, cl.seed)
		if err != nil {
			t.Fatalf("get %s/seed%d: %v", cl.id, cl.seed, err)
		}
		if _, err := rec.DecodeRows(); err != nil {
			t.Errorf("decode %s/seed%d: %v", cl.id, cl.seed, err)
		}
	}

	// The manifest on disk indexes each cell file exactly once.
	f, err := os.Open(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := make(map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		for _, cl := range cells {
			if strings.Contains(line, fmt.Sprintf("%q", filepath.Join("cells", cellFile(cl.id, cl.seed)))) {
				seen[cellFile(cl.id, cl.seed)]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, cl := range cells {
		if n := seen[cellFile(cl.id, cl.seed)]; n != 1 {
			t.Errorf("index.jsonl references %s/seed%d %d times, want exactly 1", cl.id, cl.seed, n)
		}
	}
}
