package store

// Response-table records: the persisted form of the per-design response
// tables (internal/metasurface/table.go), under DIR/tables/. Cell
// records persist *results*; table records persist the *memoized
// physics* those results were computed from, so a fresh process — a
// llama-bench resume, a restarted llama-serve, a new fleet worker —
// starts with every previously computed evaluation already warm. A
// table record is pure acceleration state: losing one costs
// recomputation, never correctness, which is why corrupt records are
// skipped (warn + recompute) rather than fatal. Entry rows are opaque
// string tuples here — the metasurface package owns their arity and
// float encoding; the store only guarantees atomic, schema-versioned,
// lossless round-trips.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// TableSchemaVersion is the table-record format this package writes.
const TableSchemaVersion = 1

// TableRecord is the persisted response table of one design fingerprint.
type TableRecord struct {
	// Schema is the record format version (TableSchemaVersion when
	// written by this package).
	Schema int `json:"schema"`
	// Fingerprint is the canonical design identity the entries belong to
	// (metasurface.DesignFingerprint).
	Fingerprint string `json:"fingerprint"`
	// SavedUnixNs stamps the write time.
	SavedUnixNs int64 `json:"saved_unix_ns"`
	// Axis and QWP hold the serialized table entries as string rows with
	// lossless float columns; the metasurface package defines and
	// validates their layout.
	Axis [][]string `json:"axis,omitempty"`
	QWP  [][]string `json:"qwp,omitempty"`

	// Path is where the record was read from or written to; set by
	// GetTable/PutTable/ListTables, never serialized.
	Path string `json:"-"`
}

// Entries returns the total entry count of the record.
func (r *TableRecord) Entries() int { return len(r.Axis) + len(r.QWP) }

// TableNotFoundError reports that no table record exists for a
// fingerprint.
type TableNotFoundError struct {
	// Fingerprint is the missing table; Path is where its record would
	// live.
	Fingerprint string
	Path        string
}

// Error implements error.
func (e *TableNotFoundError) Error() string {
	return fmt.Sprintf("store: no table record for %s at %s", e.Fingerprint, e.Path)
}

// IsTableNotFound reports whether err means "table never persisted" (as
// opposed to persisted but unreadable).
func IsTableNotFound(err error) bool {
	var nf *TableNotFoundError
	return errors.As(err, &nf)
}

// tablesDir returns the directory table records live in.
func (s *Store) tablesDir() string { return filepath.Join(s.dir, "tables") }

// TablePath returns the path the record for a fingerprint lives at,
// whether or not it exists yet. Fingerprints are path-escaped like cell
// IDs, so a hostile fingerprint can never traverse directories.
func (s *Store) TablePath(fingerprint string) string {
	return filepath.Join(s.tablesDir(), url.PathEscape(fingerprint)+".json")
}

// PutTable atomically persists one table record (temp file + fsync +
// rename, like cell records), stamping its Schema and Path, and its
// SavedUnixNs when unset (pinned stamps keep cross-process writers
// byte-identical). Table records are not manifest-tracked: ListTables scans the
// tables directory, so there is nothing to Sync.
func (s *Store) PutTable(rec *TableRecord) error {
	if rec == nil || rec.Fingerprint == "" {
		return errors.New("store: PutTable needs a record with a fingerprint")
	}
	if err := os.MkdirAll(s.tablesDir(), 0o755); err != nil {
		return fmt.Errorf("store: create %s: %w", s.tablesDir(), err)
	}
	rec.Schema = TableSchemaVersion
	if rec.SavedUnixNs == 0 {
		rec.SavedUnixNs = time.Now().UnixNano()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode table %s: %w", rec.Fingerprint, err)
	}
	path := s.TablePath(rec.Fingerprint)
	if err := writeFileAtomic(path, append(line, '\n')); err != nil {
		return fmt.Errorf("store: write table %s: %w", rec.Fingerprint, err)
	}
	rec.Path = path
	return nil
}

// GetTable loads and validates the record for a design fingerprint. It
// returns a *TableNotFoundError when the table was never persisted, and
// a *CorruptError (with Seed 0) naming the path when a record exists
// but is truncated, unparseable, schema-mismatched or mislabelled.
// Callers treat a corrupt record as "start cold": warn and recompute.
func (s *Store) GetTable(fingerprint string) (*TableRecord, error) {
	path := s.TablePath(fingerprint)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &TableNotFoundError{Fingerprint: fingerprint, Path: path}
		}
		return nil, &CorruptError{ID: fingerprint, Path: path, Err: err}
	}
	rec, err := decodeTableRecord(data)
	if err != nil {
		return nil, &CorruptError{ID: fingerprint, Path: path, Err: err}
	}
	if rec.Fingerprint != fingerprint {
		return nil, &CorruptError{ID: fingerprint, Path: path,
			Err: fmt.Errorf("record labelled %s", rec.Fingerprint)}
	}
	rec.Path = path
	return rec, nil
}

// ListTables returns every readable table record, sorted by
// fingerprint. Unreadable records are skipped — they stay on disk as
// evidence and surface as *CorruptError from GetTable — so a single
// damaged record never blocks warm-starting the rest.
func (s *Store) ListTables() ([]*TableRecord, error) {
	entries, err := os.ReadDir(s.tablesDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // no table was ever persisted
		}
		return nil, fmt.Errorf("store: scan %s: %w", s.tablesDir(), err)
	}
	var out []*TableRecord
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(s.tablesDir(), name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rec, err := decodeTableRecord(data)
		if err != nil {
			continue
		}
		if name != url.PathEscape(rec.Fingerprint)+".json" {
			continue // mislabelled file: evidence for GetTable, not a listing
		}
		rec.Path = path
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

// decodeTableRecord parses one single-line table record, enforcing the
// schema version.
func decodeTableRecord(data []byte) (*TableRecord, error) {
	trimmed := strings.TrimRight(string(data), "\n")
	if trimmed == "" {
		return nil, errors.New("empty table record file")
	}
	if strings.Contains(trimmed, "\n") {
		return nil, errors.New("table record file holds more than one line")
	}
	var rec TableRecord
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		return nil, fmt.Errorf("truncated or invalid JSON: %v", err)
	}
	if rec.Schema != TableSchemaVersion {
		return nil, fmt.Errorf("table schema version %d, want %d", rec.Schema, TableSchemaVersion)
	}
	if rec.Fingerprint == "" {
		return nil, errors.New("table record has no fingerprint")
	}
	return &rec, nil
}
