package store

// LUT grid records: the persisted form of the per-design dense
// interpolation grids (internal/metasurface/grid_io.go), under
// DIR/grids/. Like table records, grid records are pure acceleration
// state — losing one costs a parallel rebuild, never correctness — so
// corrupt records are skipped (warn + rebuild) rather than fatal. Rows
// are opaque string tuples here: the metasurface package owns their
// arity and float encoding; the store only guarantees atomic,
// schema-versioned, lossless round-trips.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GridSchemaVersion is the grid-record format this package writes.
const GridSchemaVersion = 1

// GridRecord is the persisted LUT grid of one design fingerprint.
type GridRecord struct {
	// Schema is the record format version (GridSchemaVersion when
	// written by this package).
	Schema int `json:"schema"`
	// Fingerprint is the canonical design identity the grid belongs to
	// (metasurface.DesignFingerprint).
	Fingerprint string `json:"fingerprint"`
	// SavedUnixNs stamps the write time.
	SavedUnixNs int64 `json:"saved_unix_ns"`
	// Meta is the grid geometry row and Samples the serialized sample
	// rows, all with lossless float columns; the metasurface package
	// defines and validates their layout.
	Meta    []string   `json:"meta"`
	Samples [][]string `json:"samples,omitempty"`

	// Path is where the record was read from or written to; set by
	// GetGrid/PutGrid/ListGrids, never serialized.
	Path string `json:"-"`
}

// Entries returns the sample count of the record.
func (r *GridRecord) Entries() int { return len(r.Samples) }

// GridNotFoundError reports that no grid record exists for a
// fingerprint.
type GridNotFoundError struct {
	// Fingerprint is the missing grid; Path is where its record would
	// live.
	Fingerprint string
	Path        string
}

// Error implements error.
func (e *GridNotFoundError) Error() string {
	return fmt.Sprintf("store: no grid record for %s at %s", e.Fingerprint, e.Path)
}

// IsGridNotFound reports whether err means "grid never persisted" (as
// opposed to persisted but unreadable).
func IsGridNotFound(err error) bool {
	var nf *GridNotFoundError
	return errors.As(err, &nf)
}

// gridsDir returns the directory grid records live in.
func (s *Store) gridsDir() string { return filepath.Join(s.dir, "grids") }

// GridPath returns the path the record for a fingerprint lives at,
// whether or not it exists yet. Fingerprints are path-escaped like cell
// IDs, so a hostile fingerprint can never traverse directories.
func (s *Store) GridPath(fingerprint string) string {
	return filepath.Join(s.gridsDir(), url.PathEscape(fingerprint)+".json")
}

// PutGrid atomically persists one grid record (temp file + fsync +
// rename, like cell records), stamping its Schema and Path, and its
// SavedUnixNs when unset. Grid records are not manifest-tracked:
// ListGrids scans the grids directory, so there is nothing to Sync.
func (s *Store) PutGrid(rec *GridRecord) error {
	if rec == nil || rec.Fingerprint == "" {
		return errors.New("store: PutGrid needs a record with a fingerprint")
	}
	if err := os.MkdirAll(s.gridsDir(), 0o755); err != nil {
		return fmt.Errorf("store: create %s: %w", s.gridsDir(), err)
	}
	rec.Schema = GridSchemaVersion
	if rec.SavedUnixNs == 0 {
		rec.SavedUnixNs = time.Now().UnixNano()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode grid %s: %w", rec.Fingerprint, err)
	}
	path := s.GridPath(rec.Fingerprint)
	if err := writeFileAtomic(path, append(line, '\n')); err != nil {
		return fmt.Errorf("store: write grid %s: %w", rec.Fingerprint, err)
	}
	rec.Path = path
	return nil
}

// GetGrid loads and validates the record for a design fingerprint. It
// returns a *GridNotFoundError when the grid was never persisted, and a
// *CorruptError (with Seed 0) naming the path when a record exists but
// is truncated, unparseable, schema-mismatched or mislabelled. Callers
// treat a corrupt record as "rebuild on demand": warn and recompute.
func (s *Store) GetGrid(fingerprint string) (*GridRecord, error) {
	path := s.GridPath(fingerprint)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &GridNotFoundError{Fingerprint: fingerprint, Path: path}
		}
		return nil, &CorruptError{ID: fingerprint, Path: path, Err: err}
	}
	rec, err := decodeGridRecord(data)
	if err != nil {
		return nil, &CorruptError{ID: fingerprint, Path: path, Err: err}
	}
	if rec.Fingerprint != fingerprint {
		return nil, &CorruptError{ID: fingerprint, Path: path,
			Err: fmt.Errorf("record labelled %s", rec.Fingerprint)}
	}
	rec.Path = path
	return rec, nil
}

// ListGrids returns every readable grid record, sorted by fingerprint.
// Unreadable records are skipped — they stay on disk as evidence and
// surface as *CorruptError from GetGrid — so a single damaged record
// never blocks warm-starting the rest.
func (s *Store) ListGrids() ([]*GridRecord, error) {
	entries, err := os.ReadDir(s.gridsDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // no grid was ever persisted
		}
		return nil, fmt.Errorf("store: scan %s: %w", s.gridsDir(), err)
	}
	var out []*GridRecord
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(s.gridsDir(), name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rec, err := decodeGridRecord(data)
		if err != nil {
			continue
		}
		if name != url.PathEscape(rec.Fingerprint)+".json" {
			continue // mislabelled file: evidence for GetGrid, not a listing
		}
		rec.Path = path
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

// decodeGridRecord parses one single-line grid record, enforcing the
// schema version.
func decodeGridRecord(data []byte) (*GridRecord, error) {
	trimmed := strings.TrimRight(string(data), "\n")
	if trimmed == "" {
		return nil, errors.New("empty grid record file")
	}
	if strings.Contains(trimmed, "\n") {
		return nil, errors.New("grid record file holds more than one line")
	}
	var rec GridRecord
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		return nil, fmt.Errorf("truncated or invalid JSON: %v", err)
	}
	if rec.Schema != GridSchemaVersion {
		return nil, fmt.Errorf("grid schema version %d, want %d", rec.Schema, GridSchemaVersion)
	}
	if rec.Fingerprint == "" {
		return nil, errors.New("grid record has no fingerprint")
	}
	return &rec, nil
}
