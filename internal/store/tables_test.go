package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTable builds a representative table record.
func sampleTable(fp string) *TableRecord {
	return &TableRecord{
		Fingerprint: fp,
		Axis: [][]string{
			{"X", "2.45e9", "8", "0.1", "0", "0.9", "0", "0.9", "0", "0.1", "0", "377", "0.5", "0"},
			{"Y", "2.45e9", "NaN", "+Inf", "-Inf", "0", "0", "0", "0", "0", "0", "377", "0", "0"},
		},
		QWP: [][]string{{"2.45e9", "1", "2"}},
	}
}

// TestTableRecordRoundTrip: PutTable stamps schema, timestamp and path;
// GetTable returns the identical rows (the store never interprets
// them, so NaN/Inf strings must survive untouched).
func TestTableRecordRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleTable("fp-abc123")
	if err := s.PutTable(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != TableSchemaVersion || rec.Path == "" || rec.SavedUnixNs == 0 {
		t.Errorf("PutTable left schema=%d path=%q saved=%d", rec.Schema, rec.Path, rec.SavedUnixNs)
	}
	got, err := s.GetTable("fp-abc123")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != "fp-abc123" || got.Entries() != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Axis[1][2] != "NaN" || got.Axis[1][3] != "+Inf" {
		t.Errorf("non-finite cells mangled: %v", got.Axis[1])
	}
	// A pinned timestamp must survive re-puts (cross-process writers
	// rely on pinned stamps for byte-identical records).
	got.SavedUnixNs = 42
	if err := s.PutTable(got); err != nil {
		t.Fatal(err)
	}
	again, err := s.GetTable("fp-abc123")
	if err != nil {
		t.Fatal(err)
	}
	if again.SavedUnixNs != 42 {
		t.Errorf("pinned SavedUnixNs overwritten: %d", again.SavedUnixNs)
	}
}

// TestTableNotFound: a never-persisted table is a typed not-found
// distinct from corruption.
func TestTableNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.GetTable("never-written")
	if !IsTableNotFound(err) {
		t.Fatalf("err = %v, want TableNotFoundError", err)
	}
	var nf *TableNotFoundError
	if !errors.As(err, &nf) || nf.Fingerprint != "never-written" || nf.Path == "" {
		t.Errorf("not-found detail: %+v", nf)
	}
	if IsTableNotFound(errors.New("other")) {
		t.Error("IsTableNotFound matched an unrelated error")
	}
}

// TestTableRecordCorrupt: truncated, multi-line, schema-drifted,
// fingerprint-less and mislabelled records all surface as CorruptError
// naming the path — never as not-found, never as a zero record.
func TestTableRecordCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutTable(sampleTable("fp-x")); err != nil {
		t.Fatal(err)
	}
	path := s.TablePath("fp-x")
	for name, data := range map[string]string{
		"empty":          "",
		"truncated":      `{"schema":1,"fingerprint":"fp-`,
		"multi-line":     "{}\n{}\n",
		"schema drift":   `{"schema":999,"fingerprint":"fp-x"}` + "\n",
		"no fingerprint": `{"schema":1}` + "\n",
		"mislabelled":    `{"schema":1,"fingerprint":"fp-other"}` + "\n",
	} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := s.GetTable("fp-x")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want CorruptError", name, err)
			continue
		}
		if !strings.Contains(ce.Error(), path) {
			t.Errorf("%s: corrupt error does not name the file: %v", name, ce)
		}
		if IsTableNotFound(err) {
			t.Errorf("%s: corruption misreported as not-found", name)
		}
	}
}

// TestListTables: listing returns readable records sorted by
// fingerprint, skipping damaged and mislabelled files instead of
// failing the warm start.
func TestListTables(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty store: no tables dir yet, no error.
	if recs, err := s.ListTables(); err != nil || len(recs) != 0 {
		t.Fatalf("empty store: %v / %d records", err, len(recs))
	}
	for _, fp := range []string{"zz", "aa", "mm"} {
		if err := s.PutTable(sampleTable(fp)); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt record and a mislabelled one sit alongside the good ones.
	if err := os.WriteFile(filepath.Join(s.tablesDir(), "broken.json"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.tablesDir(), "liar.json"),
		[]byte(`{"schema":1,"fingerprint":"someone-else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 (damaged files skipped)", len(recs))
	}
	for i, want := range []string{"aa", "mm", "zz"} {
		if recs[i].Fingerprint != want {
			t.Errorf("record %d = %s, want %s (sorted by fingerprint)", i, recs[i].Fingerprint, want)
		}
		if recs[i].Path == "" {
			t.Errorf("record %d missing path", i)
		}
	}
}

// TestTablePathEscaping: hostile fingerprints cannot escape the tables
// directory.
func TestTablePathEscaping(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := s.TablePath("../../etc/passwd")
	if filepath.Dir(p) != s.tablesDir() {
		t.Fatalf("hostile fingerprint escaped the tables dir: %s", p)
	}
	if err := s.PutTable(&TableRecord{Fingerprint: "../../x", Axis: [][]string{{"X"}}}); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetTable("../../x"); err != nil || got.Entries() != 1 {
		t.Fatalf("escaped round trip: %v", err)
	}
}

// TestPutTableValidates: nil and fingerprint-less records are rejected
// before touching disk.
func TestPutTableValidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutTable(nil); err == nil {
		t.Error("nil record accepted")
	}
	if err := s.PutTable(&TableRecord{}); err == nil {
		t.Error("fingerprint-less record accepted")
	}
}
