package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleRecord builds a record whose cells cover every float64 shape the
// tables can contain: finite, non-representable fractions, denormals,
// negative zero, NaN and both infinities.
func sampleRecord(id string, seed int64) (*Record, [][]float64) {
	rows := [][]float64{
		{1.0 / 3.0, -0.0, 5e-324},
		{math.NaN(), math.Inf(1), math.Inf(-1)},
		{1e300, -2.5, 0.1 + 0.2},
	}
	return &Record{
		ID: id, Seed: seed, Title: "round trip",
		Columns: []string{"a", "b", "c"},
		Rows:    EncodeRows(rows),
		Notes:   []string{"a note"},
		Meta:    Meta{Concurrency: 4, ShardRows: true, BatchRows: 2, ElapsedNs: 12345},
	}, rows
}

// TestRoundTripBitExact: Put then Get must reproduce every cell's exact
// bit pattern, NaN and ±Inf included.
func TestRoundTripBitExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, rows := sampleRecord("fig99", 7)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fig99", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Title != "round trip" || len(got.Notes) != 1 {
		t.Errorf("record header mangled: %+v", got)
	}
	dec, err := got.DecodeRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(dec), len(rows))
	}
	for ri := range rows {
		for ci := range rows[ri] {
			if math.Float64bits(dec[ri][ci]) != math.Float64bits(rows[ri][ci]) {
				t.Errorf("cell [%d][%d]: bits %x != %x (value %v vs %v)",
					ri, ci, math.Float64bits(dec[ri][ci]), math.Float64bits(rows[ri][ci]),
					dec[ri][ci], rows[ri][ci])
			}
		}
	}
}

// TestRecordIsSingleJSONLLine: the on-disk record is one self-describing
// JSONL line, and the manifest lists it.
func TestRecordIsSingleJSONLLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := sampleRecord("tab9", 3)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rec.Path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 || !strings.HasSuffix(string(data), "\n") {
		t.Errorf("record is not a single JSONL line (%d newlines)", n)
	}
	for _, want := range []string{`"schema":1`, `"id":"tab9"`, `"seed":3`, `"columns"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("record not self-describing, missing %s in %s", want, data)
		}
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		t.Fatalf("no index written: %v", err)
	}
	if !strings.Contains(string(idx), `"id":"tab9"`) {
		t.Errorf("index does not list the record: %s", idx)
	}
}

// TestGetNotFound: a missing cell is a *NotFoundError, distinguishable
// from corruption.
func TestGetNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("fig1", 1)
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Error("missing record misreported as corrupt")
	}
}

// TestTruncatedRecordIsCorrupt: a half-written record surfaces as a
// *CorruptError naming the experiment, seed and path — never a panic.
func TestTruncatedRecordIsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := sampleRecord("fig5", 2)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(rec.Path)
	if err := os.WriteFile(rec.Path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("fig5", 2)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CorruptError", err)
	}
	if ce.ID != "fig5" || ce.Seed != 2 || ce.Path != rec.Path {
		t.Errorf("corrupt error does not name the cell: %+v", ce)
	}
	for _, want := range []string{"fig5", "seed 2", rec.Path} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestSchemaMismatchIsCorrupt: a record from a different format version
// must be rejected, not misparsed.
func TestSchemaMismatchIsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := sampleRecord("fig7", 4)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(rec.Path)
	mangled := strings.Replace(string(data), `"schema":1`, `"schema":99`, 1)
	if mangled == string(data) {
		t.Fatal("failed to mangle schema version")
	}
	if err := os.WriteFile(rec.Path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("fig7", 4)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("err = %v, want CorruptError naming the schema version", err)
	}
}

// TestMislabelledRecordIsCorrupt: a record whose body claims a different
// cell than its filename must not be served.
func TestMislabelledRecordIsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := sampleRecord("figA", 1)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Copy figA's bytes into figB's slot.
	data, _ := os.ReadFile(rec.Path)
	if err := os.WriteFile(s.CellPath("figB", 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("figB", 1)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(err.Error(), "labelled figA") {
		t.Fatalf("err = %v, want CorruptError naming the mislabel", err)
	}
}

// TestReopenRebuildsManifest: a reopened store sees earlier records; a
// deleted index file is rebuilt rather than fatal.
func TestReopenRebuildsManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		rec, _ := sampleRecord("fig3", seed)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.jsonl")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened store Len = %d, want 3", s2.Len())
	}
	if _, err := s2.Get("fig3", 2); err != nil {
		t.Fatalf("reopened store lost a record: %v", err)
	}
}

// TestPutOverwrites: re-putting a cell replaces the old record (the
// resume path re-persists recomputed cells over corrupt ones).
func TestPutOverwrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := sampleRecord("fig8", 5)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	rec2 := &Record{ID: "fig8", Seed: 5, Title: "v2", Columns: []string{"x"}, Rows: EncodeRows([][]float64{{42}})}
	if err := s.Put(rec2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fig8", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "v2" || len(got.Columns) != 1 || s.Len() != 1 {
		t.Errorf("overwrite failed: %+v (len %d)", got, s.Len())
	}
}

// TestIDEscaping: experiment IDs with path-hostile characters stay inside
// the cells directory.
func TestIDEscaping(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "../evil/..id"
	rec := &Record{ID: id, Seed: 1, Columns: []string{"x"}, Rows: EncodeRows([][]float64{{1}})}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(rec.Path) != filepath.Join(dir, "cells") {
		t.Fatalf("record escaped the cells directory: %s", rec.Path)
	}
	if _, err := s.Get(id, 1); err != nil {
		t.Fatalf("escaped ID not retrievable: %v", err)
	}
}

// TestPutRejectsBadArity: a record whose rows disagree with its columns
// never reaches disk.
func TestPutRejectsBadArity(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{ID: "x", Seed: 1, Columns: []string{"a", "b"}, Rows: [][]string{{"1"}}}
	if err := s.Put(rec); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v, want arity error", err)
	}
}

// TestSyncBatchesManifestWrites: Put defers the manifest; one Sync
// flushes every pending entry, and a Sync with nothing pending is a
// no-op that never errors.
func TestSyncBatchesManifestWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		rec, _ := sampleRecord("figS", seed)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "index.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("manifest written before Sync: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(idx), `"id":"figS"`); n != 4 {
		t.Errorf("manifest lists %d records, want 4:\n%s", n, idx)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("idempotent Sync errored: %v", err)
	}
}

// TestOpenEmptyDir rejects the degenerate configuration loudly.
func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
}

// gcPut stores one minimal cell record stamped with the given save
// time, so GC retention tests never sleep.
func gcPut(t *testing.T, s *Store, id string, seed int64, saved int64) {
	t.Helper()
	rec := &Record{
		ID: id, Seed: seed, Title: id,
		Columns: []string{"x"},
		Rows:    EncodeRows([][]float64{{1}}),
		Meta:    Meta{SavedUnixNs: saved},
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
}

// TestGCRemovesOnlyUnreferencedStaleCells is the store-lifecycle
// contract: a sweep removes exactly the cells that (a) no run record
// references and (b) aged past the retention window — referenced cells
// and fresh cells survive, and the manifest stays consistent across a
// reopen.
func TestGCRemovesOnlyUnreferencedStaleCells(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1_000_000 * int64(1e9)) // an arbitrary fixed epoch, ns
	old := now - int64(2e9*3600)         // two thousand hours earlier
	gcPut(t, s, "figA", 1, old)          // referenced by the run below: kept
	gcPut(t, s, "figA", 2, old)          // unreferenced + stale: removed
	gcPut(t, s, "figB", 1, old)          // unreferenced + stale: removed
	gcPut(t, s, "figC", 1, now)          // unreferenced but fresh: kept
	if err := s.PutRun(&RunRecord{
		ID:     "run-000001",
		Spec:   RunSpec{IDs: []string{"figA"}, Seeds: []int64{1}},
		Status: "done",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := s.GC(GCPolicy{MinAge: time.Hour, Now: time.Unix(0, now)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 4 || res.Removed != 2 || res.Kept != 2 {
		t.Errorf("GC result = %+v, want scanned 4 / removed 2 / kept 2", res)
	}
	if res.RemovedBytes <= 0 {
		t.Errorf("RemovedBytes = %d, want > 0", res.RemovedBytes)
	}
	for _, c := range []struct {
		id       string
		seed     int64
		survives bool
	}{{"figA", 1, true}, {"figA", 2, false}, {"figB", 1, false}, {"figC", 1, true}} {
		_, err := s.Get(c.id, c.seed)
		if c.survives && err != nil {
			t.Errorf("%s seed %d: removed, want kept: %v", c.id, c.seed, err)
		}
		if !c.survives && !IsNotFound(err) {
			t.Errorf("%s seed %d: err = %v, want NotFound", c.id, c.seed, err)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d after GC, want 2", s.Len())
	}
	// The manifest was synced: a reopen sees the post-GC record set.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Errorf("reopened Len = %d, want 2", re.Len())
	}
	// Deleting the run releases its cell; everything stale then goes.
	if err := s.DeleteRun("run-000001"); err != nil {
		t.Fatal(err)
	}
	res, err = s.GC(GCPolicy{MinAge: time.Hour, Now: time.Unix(0, now)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || s.Len() != 1 {
		t.Errorf("post-delete GC removed %d (Len %d), want 1 removed, Len 1", res.Removed, s.Len())
	}
}

// TestGCEmptyAndConcurrentPut: a sweep over an empty store is a clean
// no-op, and GC racing fresh Puts never removes what it should keep
// (run under -race).
func TestGCEmptyAndConcurrentPut(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.GC(GCPolicy{MinAge: time.Hour}); err != nil || res.Scanned != 0 || res.Removed != 0 {
		t.Errorf("empty GC = %+v err %v, want clean zero sweep", res, err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				gcPut(t, s, "live", int64(g*100+i), 0) // SavedUnixNs 0 → stamped now
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.GC(GCPolicy{MinAge: time.Hour}); err != nil {
					t.Errorf("concurrent GC: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 40 {
		t.Errorf("Len = %d after concurrent put/GC, want 40 (fresh cells must survive)", s.Len())
	}
}
