// Package store is the durable results store under the experiment
// engine: it persists each (experiment, seed) cell's table as a
// self-describing, schema-versioned JSONL record so replicated runs can
// survive restarts and grow seed sets incrementally instead of
// recomputing every cell from scratch.
//
// Layout on disk (everything lives under one directory):
//
//	DIR/
//	  index.jsonl                 one line per stored record (manifest)
//	  cells/<id>__seed<n>.json    one self-describing record per cell
//
// Every write is crash-safe: a record is written to a temp file,
// fsync'd, then renamed into place, and the manifest is rewritten the
// same way after each put. The manifest is purely derived state — Open
// rebuilds it by scanning the cells directory, so a corrupt or missing
// index never loses records.
//
// Numeric cells are serialized as strconv 'g'/-1 strings rather than
// JSON numbers: that round-trips every finite float64 bit-exactly and
// carries NaN/±Inf (which encoding/json rejects as numbers), so a
// resumed run can reproduce a fresh run bit-for-bit.
//
// Cross-process writers: several processes (llama-serve plus fleet
// llama-worker processes on a shared filesystem) may hold the same
// directory open and persist the same cell concurrently. That is safe
// by construction, not by locking: a record is a pure function of
// (experiment, seed), so racing writers produce identical bytes, and
// the atomic rename means the last rename wins with the same content —
// a reader observes either no file or one complete valid record, never
// a torn one. Each process's index.jsonl rewrite races the others' the
// same way; since the manifest is derived state rebuilt by Open, a
// stale manifest from the losing writer costs nothing. The property
// test TestCrossProcessWriters drives two handles concurrently and
// checks exactly these invariants.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SchemaVersion is the record format this package writes. Get rejects
// records carrying any other version (they surface as a *CorruptError
// and the caller recomputes the cell).
const SchemaVersion = 1

// Meta carries the engine/cache provenance of one stored record. It is
// informational: none of it feeds back into results, so two records of
// the same (experiment, seed) with different Meta still decode to the
// same table.
type Meta struct {
	// SavedUnixNs is the wall-clock write time.
	SavedUnixNs int64 `json:"saved_unix_ns"`
	// Concurrency, ShardRows and BatchRows record the engine shape that
	// produced the table (outputs are bit-identical across all of them).
	Concurrency int  `json:"concurrency"`
	ShardRows   bool `json:"shard_rows"`
	BatchRows   int  `json:"batch_rows"`
	// CacheHits and CacheMisses are the response-cache lookups the cell
	// performed, when the run could attribute them (single-worker runs).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// ElapsedNs is the compute time the cell cost when it was computed.
	ElapsedNs int64 `json:"elapsed_ns"`
	// LUT marks a cell computed in the approximate interpolated-lookup
	// mode. Such cells are not bit-identical to exact computation, so
	// resume runs never reuse them (they are recomputed instead) — the
	// store must never silently launder approximate rows into an exact
	// run.
	LUT bool `json:"lut,omitempty"`
}

// Record is the self-describing persisted form of one (experiment,
// seed) result table.
type Record struct {
	// Schema is the record format version (SchemaVersion when written by
	// this package).
	Schema int `json:"schema"`
	// ID and Seed identify the cell.
	ID   string `json:"id"`
	Seed int64  `json:"seed"`
	// Title is the experiment's display title.
	Title string `json:"title"`
	// Columns labels the numeric columns.
	Columns []string `json:"columns"`
	// Rows is the table body; every cell is a strconv 'g'/-1 string (see
	// the package comment for why not JSON numbers).
	Rows [][]string `json:"rows"`
	// Notes carries the table's free-form notes.
	Notes []string `json:"notes,omitempty"`
	// Meta is the engine/cache provenance of the record.
	Meta Meta `json:"meta"`

	// Path is where the record was read from or written to; set by Get
	// and Put, never serialized.
	Path string `json:"-"`

	// decoded memoizes DecodeRows so Get's validation decode is reused by
	// the caller's decode instead of parsing every cell twice.
	decoded [][]float64
}

// EncodeRows converts a numeric table into the lossless string form
// Record.Rows carries.
func EncodeRows(rows [][]float64) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		enc := make([]string, len(row))
		for j, v := range row {
			enc[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		out[i] = enc
	}
	return out
}

// DecodeRows parses the record's string cells back into float64 rows,
// enforcing column arity. The round trip is bit-exact for finite
// values and preserves NaN/±Inf. The result is memoized on the record
// (and shared across calls), so validation and consumption decode once.
func (r *Record) DecodeRows() ([][]float64, error) {
	if r.decoded != nil {
		return r.decoded, nil
	}
	out := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			return nil, fmt.Errorf("row %d has %d cells, want %d columns", i, len(row), len(r.Columns))
		}
		dec := make([]float64, len(row))
		for j, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: non-numeric cell %q", i, j, s)
			}
			dec[j] = v
		}
		out[i] = dec
	}
	r.decoded = out
	return out, nil
}

// NotFoundError reports that no record exists for a cell.
type NotFoundError struct {
	// ID and Seed identify the missing cell; Path is where it would live.
	ID   string
	Seed int64
	Path string
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("store: no record for %s (seed %d) at %s", e.ID, e.Seed, e.Path)
}

// IsNotFound reports whether err means "cell not stored" (as opposed to
// stored but unreadable).
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// CorruptError reports a record that exists but cannot be trusted:
// truncated, unparseable, schema-mismatched, or inconsistent with the
// cell it claims to be. It names the experiment, seed and path so the
// caller can report exactly which file to recompute or delete.
type CorruptError struct {
	// ID and Seed identify the cell the record was read for; Path is the
	// offending file.
	ID   string
	Seed int64
	Path string
	// Err is the underlying defect.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt record for %s (seed %d) at %s: %v", e.ID, e.Seed, e.Path, e.Err)
}

// Unwrap returns the underlying defect.
func (e *CorruptError) Unwrap() error { return e.Err }

// indexEntry is one manifest line in index.jsonl.
type indexEntry struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Seed   int64  `json:"seed"`
	File   string `json:"file"`
	Rows   int    `json:"rows"`
}

// Store is a durable results store rooted at one directory. Methods are
// safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]indexEntry // keyed by cell filename
	// dirty marks manifest entries not yet flushed to index.jsonl; Put
	// defers the manifest write so a batch of puts costs one rewrite.
	dirty bool
}

// Open creates (if needed) and opens a store directory, rebuilding the
// in-memory manifest from the records on disk. Records that fail to
// parse are left in place — they surface as *CorruptError on Get — so
// opening a damaged store never destroys evidence.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	cells := filepath.Join(dir, "cells")
	if err := os.MkdirAll(cells, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", cells, err)
	}
	s := &Store{dir: dir, index: make(map[string]indexEntry)}
	entries, err := os.ReadDir(cells)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", cells, err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		rec, err := readRecord(filepath.Join(cells, name))
		if err != nil {
			continue // unreadable record: visible to Get, absent from the manifest
		}
		s.index[name] = indexEntry{
			Schema: rec.Schema, ID: rec.ID, Seed: rec.Seed,
			File: filepath.Join("cells", name), Rows: len(rec.Rows),
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of readable records in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// CellPath returns the path the record for (id, seed) lives at, whether
// or not it exists yet.
func (s *Store) CellPath(id string, seed int64) string {
	return filepath.Join(s.dir, "cells", cellFile(id, seed))
}

// cellFile maps a cell to its filename; the ID is path-escaped so
// experiment IDs can never traverse or collide across directories.
func cellFile(id string, seed int64) string {
	return fmt.Sprintf("%s__seed%d.json", url.PathEscape(id), seed)
}

// Put atomically persists one record: temp file + fsync + rename. The
// record's Schema is stamped with SchemaVersion and its Path with the
// final location. The index.jsonl manifest write is deferred — call
// Sync after a batch of puts to flush it in one rewrite (the manifest
// is derived state rebuilt by Open, so a missed Sync costs nothing but
// manifest freshness, never records).
func (s *Store) Put(rec *Record) error {
	if rec == nil || rec.ID == "" {
		return errors.New("store: Put needs a record with an ID")
	}
	for i, row := range rec.Rows {
		if len(row) != len(rec.Columns) {
			return fmt.Errorf("store: %s (seed %d): row %d arity %d != %d columns",
				rec.ID, rec.Seed, i, len(row), len(rec.Columns))
		}
	}
	rec.Schema = SchemaVersion
	if rec.Meta.SavedUnixNs == 0 {
		rec.Meta.SavedUnixNs = time.Now().UnixNano()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode %s (seed %d): %w", rec.ID, rec.Seed, err)
	}
	name := cellFile(rec.ID, rec.Seed)
	path := filepath.Join(s.dir, "cells", name)
	if err := writeFileAtomic(path, append(line, '\n')); err != nil {
		return fmt.Errorf("store: write %s (seed %d): %w", rec.ID, rec.Seed, err)
	}
	rec.Path = path

	s.mu.Lock()
	s.index[name] = indexEntry{
		Schema: rec.Schema, ID: rec.ID, Seed: rec.Seed,
		File: filepath.Join("cells", name), Rows: len(rec.Rows),
	}
	s.dirty = true
	s.mu.Unlock()
	return nil
}

// Sync flushes the manifest to index.jsonl (atomic temp-file + fsync +
// rename) if any Put happened since the last flush. One Sync after a
// batch of puts keeps manifest maintenance O(records) instead of
// O(records²).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	if err := s.writeIndexLocked(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// GCPolicy controls one Store.GC sweep.
type GCPolicy struct {
	// MinAge is the retention window: only cells saved at least MinAge
	// before Now are candidates for removal. Recency stands in for
	// liveness — a cell a concurrent writer persisted moments ago is
	// never collected, whether or not its run record landed yet.
	MinAge time.Duration
	// Now anchors the age check; the zero value means time.Now(). Tests
	// pin it to exercise retention without sleeping.
	Now time.Time
}

// GCResult summarizes one GC sweep.
type GCResult struct {
	// Scanned counts the cell records considered.
	Scanned int `json:"scanned"`
	// Removed counts cell records deleted; RemovedBytes is their total
	// on-disk size.
	Removed int `json:"removed"`
	// RemovedBytes is the disk space the sweep reclaimed.
	RemovedBytes int64 `json:"removed_bytes"`
	// Kept counts cells retained — referenced by a run record, or
	// younger than the retention window.
	Kept int `json:"kept"`
}

// GC removes cell records that no run record references and that are
// older than the policy's retention window, so a long-lived server's
// disk stays bounded by its live history instead of growing with every
// spec it ever saw. A cell is referenced when any run record's spec
// covers its (experiment, seed); deleting a run record (DELETE
// /runs/{id}) is what releases its cells for a later sweep. Removal can
// only ever cost recomputation, never correctness: a future run that
// wants a collected cell recomputes it bit-identically (determinism
// invariant 6). Safe for concurrent use with Put — each candidate is
// re-read under the store lock immediately before removal, so a cell
// re-written mid-sweep is seen fresh and kept.
func (s *Store) GC(p GCPolicy) (GCResult, error) {
	now := p.Now
	if now.IsZero() {
		now = time.Now()
	}
	runs, err := s.ListRuns()
	if err != nil {
		return GCResult{}, err
	}
	referenced := make(map[string]struct{})
	for _, rr := range runs {
		for _, id := range rr.Spec.IDs {
			for _, seed := range rr.Spec.Seeds {
				referenced[cellFile(id, seed)] = struct{}{}
			}
		}
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.index))
	for name := range s.index {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	res := GCResult{Scanned: len(names)}
	for _, name := range names {
		if _, ok := referenced[name]; ok {
			res.Kept++
			continue
		}
		path := filepath.Join(s.dir, "cells", name)
		s.mu.Lock()
		if _, ok := s.index[name]; !ok {
			s.mu.Unlock()
			continue // removed by a concurrent sweep
		}
		// Re-read under the lock: a concurrent Put may have just renamed a
		// fresh record into place, and a fresh SavedUnixNs must veto removal.
		rec, err := readRecord(path)
		if err != nil || now.Sub(time.Unix(0, rec.Meta.SavedUnixNs)) < p.MinAge {
			s.mu.Unlock()
			res.Kept++
			continue
		}
		var size int64
		//lint:allow mutexio the re-check-and-remove must stay under s.mu so a racing in-process Put cannot land between the veto check and the unlink (TestGCEmptyAndConcurrentPut)
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		//lint:allow mutexio removal under s.mu is the GC veto contract: a fresh Put either lands before the lock (and vetoes above) or after the unlink (and survives)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			s.mu.Unlock()
			return res, fmt.Errorf("store: gc remove %s: %w", path, err)
		}
		delete(s.index, name)
		s.dirty = true
		s.mu.Unlock()
		res.Removed++
		res.RemovedBytes += size
	}
	return res, s.Sync()
}

// Get loads and validates the record for (id, seed). It returns a
// *NotFoundError when the cell was never stored, and a *CorruptError —
// naming the experiment, seed and path — when a record exists but is
// truncated, unparseable, schema-mismatched, mislabelled, or carries
// rows that do not decode. It never panics on hostile input.
func (s *Store) Get(id string, seed int64) (*Record, error) {
	path := s.CellPath(id, seed)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &NotFoundError{ID: id, Seed: seed, Path: path}
		}
		return nil, &CorruptError{ID: id, Seed: seed, Path: path, Err: err}
	}
	rec, err := decodeRecord(data)
	if err != nil {
		return nil, &CorruptError{ID: id, Seed: seed, Path: path, Err: err}
	}
	if rec.ID != id || rec.Seed != seed {
		return nil, &CorruptError{ID: id, Seed: seed, Path: path,
			Err: fmt.Errorf("record labelled %s (seed %d)", rec.ID, rec.Seed)}
	}
	if _, err := rec.DecodeRows(); err != nil {
		return nil, &CorruptError{ID: id, Seed: seed, Path: path, Err: err}
	}
	rec.Path = path
	return rec, nil
}

// readRecord loads and structurally validates one record file.
func readRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeRecord(data)
}

// decodeRecord parses one JSONL record, enforcing the single-line shape
// and the schema version.
func decodeRecord(data []byte) (*Record, error) {
	trimmed := strings.TrimRight(string(data), "\n")
	if trimmed == "" {
		return nil, errors.New("empty record file")
	}
	if strings.Contains(trimmed, "\n") {
		return nil, errors.New("record file holds more than one line")
	}
	var rec Record
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		return nil, fmt.Errorf("truncated or invalid JSON: %v", err)
	}
	if rec.Schema != SchemaVersion {
		return nil, fmt.Errorf("schema version %d, want %d", rec.Schema, SchemaVersion)
	}
	return &rec, nil
}

// writeIndexLocked rewrites index.jsonl (sorted by id, then seed) via
// the same atomic temp-file + fsync + rename path records use. Callers
// hold s.mu.
func (s *Store) writeIndexLocked() error {
	entries := make([]indexEntry, 0, len(s.index))
	for _, e := range s.index {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].ID != entries[j].ID {
			return entries[i].ID < entries[j].ID
		}
		return entries[i].Seed < entries[j].Seed
	})
	var sb strings.Builder
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("store: encode index: %w", err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	if err := writeFileAtomic(filepath.Join(s.dir, "index.jsonl"), []byte(sb.String())); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via temp file + fsync + rename,
// then fsyncs the parent directory so the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: some filesystems refuse directory fsync
		d.Close()
	}
	return nil
}
