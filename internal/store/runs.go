package store

// Run records: the durable metadata layer the llama-serve service sits
// on. Cell records (store.go) persist each (experiment, seed) table;
// run records persist each *submission* — its spec, lifecycle status
// and cell counts — under DIR/runs/, so a restarted server re-lists
// every run it ever accepted and re-serves completed results from the
// cell records alone. A run record never carries result bytes: the
// result of a completed run is always reconstructed from its cells,
// which is what makes re-served output bit-identical to the original
// (determinism invariant 7 builds on invariant 6).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// RunSchemaVersion is the run-record format this package writes.
const RunSchemaVersion = 1

// RunSpec mirrors the engine's submission shape (experiments.RunSpec)
// field-for-field. It is declared here rather than aliased because the
// store sits below the experiments package in the layer diagram and
// must not import upward.
type RunSpec struct {
	// IDs are the resolved experiment IDs the run executes.
	IDs []string `json:"ids"`
	// Seeds are the replication seeds.
	Seeds []int64 `json:"seeds"`
	// ShardRows and BatchRows record the fan-out shape (outputs are
	// bit-identical across all of them).
	ShardRows bool `json:"shard_rows,omitempty"`
	BatchRows int  `json:"batch_rows,omitempty"`
	// Resume records whether the run consulted the store before
	// queueing cells.
	Resume bool `json:"resume,omitempty"`
}

// RunRecord is the persisted lifecycle of one submitted run.
type RunRecord struct {
	// Schema is the record format version (RunSchemaVersion when written
	// by this package).
	Schema int `json:"schema"`
	// ID is the run identifier the service assigned (e.g. "run-000003").
	ID string `json:"id"`
	// Spec is the normalized submission the run executes.
	Spec RunSpec `json:"spec"`
	// Status is the lifecycle state, owned by the service layer
	// (running / done / failed / cancelled / interrupted); the store
	// treats it as opaque.
	Status string `json:"status"`
	// Error carries the run error for failed/cancelled/interrupted runs.
	Error string `json:"error,omitempty"`
	// CreatedUnixNs and FinishedUnixNs bound the run's wall-clock life.
	CreatedUnixNs  int64 `json:"created_unix_ns"`
	FinishedUnixNs int64 `json:"finished_unix_ns,omitempty"`
	// ReusedCells and ComputedCells record how much of the run was
	// answered from the store versus computed fresh.
	ReusedCells   int `json:"reused_cells,omitempty"`
	ComputedCells int `json:"computed_cells,omitempty"`

	// Path is where the record was read from or written to; set by
	// GetRun/PutRun/ListRuns, never serialized.
	Path string `json:"-"`
}

// RunNotFoundError reports that no run record exists for an ID.
type RunNotFoundError struct {
	// ID is the missing run; Path is where its record would live.
	ID   string
	Path string
}

// Error implements error.
func (e *RunNotFoundError) Error() string {
	return fmt.Sprintf("store: no run record for %s at %s", e.ID, e.Path)
}

// IsRunNotFound reports whether err means "run never recorded" (as
// opposed to recorded but unreadable).
func IsRunNotFound(err error) bool {
	var nf *RunNotFoundError
	return errors.As(err, &nf)
}

// runsDir returns the directory run records live in.
func (s *Store) runsDir() string { return filepath.Join(s.dir, "runs") }

// RunPath returns the path the record for a run ID lives at, whether or
// not it exists yet. IDs are path-escaped like cell IDs, so a hostile
// run ID can never traverse directories.
func (s *Store) RunPath(id string) string {
	return filepath.Join(s.runsDir(), url.PathEscape(id)+".json")
}

// PutRun atomically persists one run record (temp file + fsync +
// rename, like cell records), stamping its Schema and Path. Unlike cell
// puts, run records are not manifest-tracked: ListRuns scans the runs
// directory, so there is nothing to Sync.
func (s *Store) PutRun(rec *RunRecord) error {
	if rec == nil || rec.ID == "" {
		return errors.New("store: PutRun needs a record with an ID")
	}
	if err := os.MkdirAll(s.runsDir(), 0o755); err != nil {
		return fmt.Errorf("store: create %s: %w", s.runsDir(), err)
	}
	rec.Schema = RunSchemaVersion
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode run %s: %w", rec.ID, err)
	}
	path := s.RunPath(rec.ID)
	if err := writeFileAtomic(path, append(line, '\n')); err != nil {
		return fmt.Errorf("store: write run %s: %w", rec.ID, err)
	}
	rec.Path = path
	return nil
}

// GetRun loads and validates the record for a run ID. It returns a
// *RunNotFoundError when the run was never recorded, and a
// *CorruptError (with Seed 0) naming the path when a record exists but
// is truncated, unparseable, schema-mismatched or mislabelled.
func (s *Store) GetRun(id string) (*RunRecord, error) {
	path := s.RunPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &RunNotFoundError{ID: id, Path: path}
		}
		return nil, &CorruptError{ID: id, Path: path, Err: err}
	}
	rec, err := decodeRunRecord(data)
	if err != nil {
		return nil, &CorruptError{ID: id, Path: path, Err: err}
	}
	if rec.ID != id {
		return nil, &CorruptError{ID: id, Path: path,
			Err: fmt.Errorf("record labelled %s", rec.ID)}
	}
	rec.Path = path
	return rec, nil
}

// ListRuns returns every readable run record, sorted by ID. Unreadable
// records are skipped — they stay on disk as evidence and surface as
// *CorruptError from GetRun — so a single damaged record never hides
// the rest.
func (s *Store) ListRuns() ([]*RunRecord, error) {
	entries, err := os.ReadDir(s.runsDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // no run was ever recorded
		}
		return nil, fmt.Errorf("store: scan %s: %w", s.runsDir(), err)
	}
	var out []*RunRecord
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(s.runsDir(), name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rec, err := decodeRunRecord(data)
		if err != nil {
			continue
		}
		if name != url.PathEscape(rec.ID)+".json" {
			continue // mislabelled file: evidence for GetRun, not a listing
		}
		rec.Path = path
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// DeleteRun removes a run's record. Deleting a run never touches cell
// records — cells are shared across runs, and a re-submitted spec
// reuses them. Deleting an unrecorded run is a no-op.
func (s *Store) DeleteRun(id string) error {
	if err := os.Remove(s.RunPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete run %s: %w", id, err)
	}
	return nil
}

// decodeRunRecord parses one single-line run record, enforcing the
// schema version.
func decodeRunRecord(data []byte) (*RunRecord, error) {
	trimmed := strings.TrimRight(string(data), "\n")
	if trimmed == "" {
		return nil, errors.New("empty run record file")
	}
	if strings.Contains(trimmed, "\n") {
		return nil, errors.New("run record file holds more than one line")
	}
	var rec RunRecord
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		return nil, fmt.Errorf("truncated or invalid JSON: %v", err)
	}
	if rec.Schema != RunSchemaVersion {
		return nil, fmt.Errorf("run schema version %d, want %d", rec.Schema, RunSchemaVersion)
	}
	if rec.ID == "" {
		return nil, errors.New("run record has no ID")
	}
	return &rec, nil
}
