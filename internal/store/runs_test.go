package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleRun builds a representative run record.
func sampleRun(id string) *RunRecord {
	return &RunRecord{
		ID: id,
		Spec: RunSpec{
			IDs: []string{"fig2a", "tab1"}, Seeds: []int64{1, 2, 3},
			ShardRows: true, BatchRows: 4, Resume: true,
		},
		Status:        "running",
		CreatedUnixNs: 12345,
	}
}

// TestRunRecordRoundTrip: PutRun stamps schema and path, GetRun returns
// the same record.
func TestRunRecordRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRun("run-000001")
	if err := s.PutRun(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != RunSchemaVersion || rec.Path == "" {
		t.Errorf("PutRun left schema=%d path=%q", rec.Schema, rec.Path)
	}
	got, err := s.GetRun("run-000001")
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != "running" || got.CreatedUnixNs != 12345 ||
		len(got.Spec.IDs) != 2 || got.Spec.Seeds[2] != 3 || !got.Spec.ShardRows || got.Spec.BatchRows != 4 || !got.Spec.Resume {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// Update in place: status transitions overwrite atomically.
	rec.Status = "done"
	rec.FinishedUnixNs = 67890
	if err := s.PutRun(rec); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetRun("run-000001")
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != "done" || got.FinishedUnixNs != 67890 {
		t.Errorf("update lost: %+v", got)
	}
}

// TestRunNotFound: an unrecorded run is a typed not-found, not a
// corrupt record.
func TestRunNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.GetRun("run-000042")
	if !IsRunNotFound(err) {
		t.Fatalf("err = %v, want RunNotFoundError", err)
	}
	if IsRunNotFound(nil) {
		t.Error("IsRunNotFound(nil) = true")
	}
}

// TestRunRecordCorrupt: truncated, mislabelled and schema-drifted
// records surface as CorruptError naming the path; ListRuns skips them
// without hiding healthy siblings.
func TestRunRecordCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(sampleRun("run-000001")); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"truncated":  `{"schema":1,"id":"run-9`,
		"mislabel":   `{"schema":1,"id":"other","status":"done"}`,
		"badschema":  `{"schema":99,"id":"run-000009","status":"done"}`,
		"empty":      "",
		"multi-line": "{\"schema\":1,\"id\":\"run-000009\"}\n{\"schema\":1,\"id\":\"run-000009\"}",
	}
	for name, body := range cases {
		path := s.RunPath("run-000009")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.GetRun("run-000009"); err == nil || IsRunNotFound(err) {
			t.Errorf("%s: GetRun err = %v, want corrupt", name, err)
		} else if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error does not name the file: %v", name, err)
		}
		runs, err := s.ListRuns()
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 1 || runs[0].ID != "run-000001" {
			t.Errorf("%s: ListRuns = %d records, want only the healthy one", name, len(runs))
		}
	}
}

// TestListRunsSortedAndEmpty: no runs directory means no runs (a store
// that never served is still openable), and listings sort by ID.
func TestListRunsSortedAndEmpty(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.ListRuns()
	if err != nil || len(runs) != 0 {
		t.Fatalf("empty store: runs=%v err=%v", runs, err)
	}
	for _, id := range []string{"run-000003", "run-000001", "run-000002"} {
		if err := s.PutRun(sampleRun(id)); err != nil {
			t.Fatal(err)
		}
	}
	runs, err = s.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 || runs[0].ID != "run-000001" || runs[2].ID != "run-000003" {
		ids := make([]string, len(runs))
		for i, r := range runs {
			ids[i] = r.ID
		}
		t.Errorf("ListRuns order = %v", ids)
	}
}

// TestDeleteRun: removal is real and idempotent, and never touches
// cell records.
func TestDeleteRun(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Record{ID: "fig2a", Seed: 1, Columns: []string{"x"}, Rows: [][]string{{"1"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(sampleRun("run-000001")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteRun("run-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRun("run-000001"); !IsRunNotFound(err) {
		t.Fatalf("after delete: %v", err)
	}
	if err := s.DeleteRun("run-000001"); err != nil {
		t.Errorf("second delete: %v", err)
	}
	if _, err := s.Get("fig2a", 1); err != nil {
		t.Errorf("cell record vanished with the run: %v", err)
	}
}

// TestRunPathEscaping: hostile run IDs cannot traverse out of the runs
// directory.
func TestRunPathEscaping(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := s.RunPath("../../etc/passwd")
	if filepath.Dir(p) != filepath.Join(s.Dir(), "runs") {
		t.Errorf("RunPath escaped the runs dir: %s", p)
	}
}
