package simclock

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	c.Schedule(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	c.RunUntil(100 * time.Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if c.Now() != 100*time.Millisecond {
		t.Errorf("clock at %v, want 100ms", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	c.RunFor(2 * time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestEventSeesEventTime(t *testing.T) {
	c := New()
	var at time.Duration
	c.Schedule(42*time.Millisecond, func(now time.Duration) { at = now })
	c.RunUntil(time.Second)
	if at != 42*time.Millisecond {
		t.Errorf("event time = %v", at)
	}
}

func TestRecurring(t *testing.T) {
	c := New()
	count := 0
	rec := c.ScheduleEvery(20*time.Millisecond, func(now time.Duration) {
		count++
		if count == 5 {
			// Cancel from inside the callback.
			// (The handle is captured below; cancellation applies to
			// future firings.)
		}
	})
	c.RunUntil(100 * time.Millisecond) // fires at 20,40,60,80,100
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	rec.Cancel()
	c.RunUntil(200 * time.Millisecond)
	if count != 5 {
		t.Errorf("recurring fired after cancel: %d", count)
	}
}

func TestCancelInsideCallback(t *testing.T) {
	c := New()
	count := 0
	var rec *Recurring
	rec = c.ScheduleEvery(10*time.Millisecond, func(time.Duration) {
		count++
		if count == 3 {
			rec.Cancel()
		}
	})
	c.RunUntil(time.Second)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestEventSchedulingEvents(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.Schedule(10*time.Millisecond, func(now time.Duration) {
		c.Schedule(5*time.Millisecond, func(now2 time.Duration) {
			fired = append(fired, now2)
		})
	})
	c.RunUntil(time.Second)
	if len(fired) != 1 || fired[0] != 15*time.Millisecond {
		t.Errorf("nested event fired at %v", fired)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := New()
	ran := false
	c.Schedule(time.Second, func(time.Duration) { ran = true })
	c.RunUntil(500 * time.Millisecond)
	if ran {
		t.Error("future event ran early")
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d", c.Pending())
	}
	c.RunUntil(time.Second) // exactly at deadline: runs
	if !ran {
		t.Error("event at deadline should run")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Error("Step on empty queue should be false")
	}
	c.Schedule(time.Millisecond, func(time.Duration) {})
	if !c.Step() {
		t.Error("Step should execute the pending event")
	}
}

func TestPanics(t *testing.T) {
	c := New()
	cases := []func(){
		func() { c.Schedule(-time.Second, func(time.Duration) {}) },
		func() { c.Schedule(time.Second, nil) },
		func() { c.ScheduleEvery(0, func(time.Duration) {}) },
		func() { c.ScheduleEvery(time.Second, nil) },
		func() { c.RunUntil(-time.Second) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRNGDeterministicStreams(t *testing.T) {
	a1 := RNG(7, "noise")
	a2 := RNG(7, "noise")
	b := RNG(7, "motion")
	c := RNG(8, "noise")
	va1, va2 := a1.Float64(), a2.Float64()
	if va1 != va2 {
		t.Error("same seed+stream should match")
	}
	if vb := b.Float64(); vb == va1 {
		t.Error("different streams should diverge")
	}
	if vc := c.Float64(); vc == va1 {
		t.Error("different seeds should diverge")
	}
}
