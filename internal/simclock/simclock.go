// Package simclock provides the deterministic discrete-event clock that
// ties the LLAMA simulation together: power-supply voltage switching
// (50 Hz), receiver sampling (1 MHz blocks), human motion, and controller
// decisions all share one virtual timeline, so experiments are exactly
// reproducible from a seed.
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is a discrete-event simulation clock. The zero value is not
// usable; call New.
type Clock struct {
	now    time.Duration
	queue  eventQueue
	nextID int64
}

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	id  int64 // tie-break: FIFO for simultaneous events
	fn  func(now time.Duration)
	rec *Recurring
}

// Recurring is the handle of a repeating event; Cancel stops it.
type Recurring struct {
	period   time.Duration
	canceled bool
}

// Cancel stops future firings of the recurring event.
func (r *Recurring) Cancel() { r.canceled = true }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// New returns a clock starting at t = 0.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Time projects the current virtual time onto a wall-clock base:
// base + Now(). It adapts the simulated timeline to APIs that take a
// time.Time clock (the fleet coordinator's Config.Now), so lease-expiry
// edges can be driven deterministically event by event.
func (c *Clock) Time(base time.Time) time.Time { return base.Add(c.now) }

// Schedule runs fn once, delay after the current time. A negative delay
// panics: the simulator cannot deliver events to the past.
func (c *Clock) Schedule(delay time.Duration, fn func(now time.Duration)) {
	if delay < 0 {
		panic("simclock: negative delay")
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	c.nextID++
	heap.Push(&c.queue, &event{at: c.now + delay, id: c.nextID, fn: fn})
}

// ScheduleEvery runs fn every period, starting one period from now, until
// the returned handle is canceled. A non-positive period panics.
func (c *Clock) ScheduleEvery(period time.Duration, fn func(now time.Duration)) *Recurring {
	if period <= 0 {
		panic("simclock: non-positive period")
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	rec := &Recurring{period: period}
	c.nextID++
	heap.Push(&c.queue, &event{at: c.now + period, id: c.nextID, fn: fn, rec: rec})
	return rec
}

// Step executes the next pending event and returns true, or returns false
// when the queue is empty. Time jumps to the event's timestamp.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*event)
		if e.rec != nil && e.rec.canceled {
			continue
		}
		c.now = e.at
		e.fn(c.now)
		if e.rec != nil && !e.rec.canceled {
			c.nextID++
			heap.Push(&c.queue, &event{at: e.at + e.rec.period, id: c.nextID, fn: e.fn, rec: e.rec})
		}
		return true
	}
	return false
}

// RunUntil executes events in order until the virtual time would exceed
// deadline; the clock is left at the deadline. Events scheduled exactly at
// the deadline run.
func (c *Clock) RunUntil(deadline time.Duration) {
	if deadline < c.now {
		panic(fmt.Sprintf("simclock: deadline %v before now %v", deadline, c.now))
	}
	for c.queue.Len() > 0 && c.queue[0].at <= deadline {
		c.Step()
	}
	c.now = deadline
}

// RunFor advances the clock by d, executing due events.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// Pending returns the number of queued events (recurring count once).
func (c *Clock) Pending() int { return c.queue.Len() }

// RNG derives a deterministic random stream from a master seed and a
// stream label, so independent model components (noise, scatterers,
// motion) never share or race a generator.
func RNG(masterSeed int64, stream string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, b := range []byte(stream) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(masterSeed ^ h))
}
