package scpi

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/psu"
)

// boundInstrument returns a fully bound tree for parser robustness tests.
func boundInstrument() (*Tree, *psu.Supply) {
	supply := psu.New()
	tree := NewTree()
	now := time.Duration(0)
	Bind(tree, supply, func() time.Duration { now += 25 * time.Millisecond; return now })
	return tree, supply
}

// TestDispatchNeverPanicsOnGarbage throws random printable and binary
// lines at the full instrument tree: the dispatcher must always return
// (response or queued error), never panic.
func TestDispatchNeverPanicsOnGarbage(t *testing.T) {
	tree, _ := boundInstrument()
	rng := rand.New(rand.NewSource(44))
	alphabet := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789:;?*,. \t-")
	for i := 0; i < 20000; i++ {
		n := rng.Intn(48)
		line := make([]byte, n)
		for j := range line {
			line[j] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must not panic; errors are fine.
		tree.Dispatch(string(line)) //nolint:errcheck
	}
	// Binary garbage too.
	for i := 0; i < 5000; i++ {
		n := rng.Intn(32)
		line := make([]byte, n)
		rng.Read(line)
		tree.Dispatch(string(line)) //nolint:errcheck
	}
}

// TestDispatchAdversarialCorpus runs a table of hand-picked nasty inputs.
func TestDispatchAdversarialCorpus(t *testing.T) {
	tree, supply := boundInstrument()
	corpus := []string{
		"",
		";;;;",
		":::::",
		"?",
		"*",
		"VOLT",                         // set with no argument
		"VOLT ",                        // trailing space, no argument
		"VOLT 1 2 3",                   // too many tokens (parsed as one arg string)
		"VOLT NaN",                     // non-numeric
		"VOLT 1e309",                   // float overflow
		"VOLT -0",                      // negative zero is a legal 0
		"APPL",                         // missing everything
		"APPL CH1",                     // missing voltage
		"APPL CH1,",                    // empty voltage
		"APPL ,5",                      // empty channel
		"APPL CH99,5",                  // bad channel
		"APPL CH1,5,9",                 // extra arg
		"INST:SEL",                     // missing parameter
		"INST:SEL CHX",                 // malformed channel
		"OUTP MAYBE",                   // bad boolean
		"*IDN",                         // identification as a set
		"MEAS:VOLT 5",                  // query-only used as set
		"SYST:ERR",                     // query-only used as set
		strings.Repeat("VOLT 5;", 200), // long chains
		strings.Repeat("A", 4000),      // long header
		"INST:SEL:EXTRA:DEEP:PATH CH1", // overlong path
		"vOlT? ; iNsT:sEl? ;  *idn?",   // case soup with spaces
	}
	for _, line := range corpus {
		// No panics allowed; queries may error.
		tree.Dispatch(line) //nolint:errcheck
	}
	// The instrument must still be fully functional afterwards.
	resp, err := tree.Dispatch("*IDN?")
	if err != nil || !strings.Contains(resp, "2230G") {
		t.Fatalf("instrument wedged after corpus: %q, %v", resp, err)
	}
	if err := supply.Select(psu.CH2); err != nil {
		t.Fatal(err)
	}
	if resp, err := tree.Dispatch("INST:SEL?"); err != nil || resp != "CH2" {
		t.Fatalf("selection broken after corpus: %q, %v", resp, err)
	}
	// Drain the error queue: it must terminate.
	for i := 0; ; i++ {
		if tree.PopError() == `0,"No error"` {
			break
		}
		if i > 1000 {
			t.Fatal("error queue never drains")
		}
	}
}

// TestNegativeZeroVoltage pins the edge semantics: "-0" parses to 0,
// which is in range.
func TestNegativeZeroVoltage(t *testing.T) {
	tree, supply := boundInstrument()
	if _, err := tree.Dispatch("VOLT -0"); err != nil {
		t.Fatal(err)
	}
	if e := tree.PopError(); e != `0,"No error"` {
		t.Fatalf("-0 volt queued error %q", e)
	}
	v, err := supply.Setpoint(psu.CH1)
	if err != nil || v != 0 {
		t.Fatalf("setpoint = %v, %v", v, err)
	}
}
