package scpi

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/llama-surface/llama/internal/psu"
)

// Server serves an SCPI command tree over newline-delimited TCP — the
// byte-level equivalent of a VISA TCPIP::SOCKET instrument session.
type Server struct {
	tree *Tree

	// IdleTimeout closes connections with no traffic; instruments drop
	// stale sessions the same way. Zero or negative means sessions never
	// expire (no read deadline is armed).
	IdleTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup
}

// NewServer wraps a command tree in a server with a 30 s idle timeout.
func NewServer(tree *Tree) *Server {
	if tree == nil {
		panic("scpi: nil tree")
	}
	return &Server{tree: tree, IdleTimeout: 30 * time.Second, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and starts
// accepting in a background goroutine. The returned address is the bound
// listener address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("scpi: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("scpi: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 4096), 64*1024)
	w := bufio.NewWriter(conn)
	for {
		// A zero/negative IdleTimeout must clear the deadline, not arm one
		// in the past that would expire the session instantly — and must
		// also undo a deadline armed on an earlier iteration if the field
		// was zeroed mid-session.
		var deadline time.Time
		if s.IdleTimeout > 0 {
			deadline = time.Now().Add(s.IdleTimeout)
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			return
		}
		if !r.Scan() {
			return
		}
		line := strings.TrimRight(r.Text(), "\r")
		resp, err := s.tree.Dispatch(line)
		// Queries always get a reply line, even on error, so the client
		// never blocks waiting: the SCPI error text itself is returned.
		if err != nil {
			resp = err.Error()
		}
		if resp != "" || strings.Contains(line, "?") {
			if _, werr := w.WriteString(resp + "\n"); werr != nil {
				return
			}
			if werr := w.Flush(); werr != nil {
				return
			}
		}
	}
}

// Shutdown stops accepting, closes all connections and waits for handler
// goroutines, honoring ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	// Snapshot under the lock, close outside it: once shutdown is set, a
	// conn the accept loop races in is closed by the loop itself, so the
	// snapshot misses nothing — and no socket teardown runs under s.mu.
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("scpi: shutdown: %w", ctx.Err())
	}
}

// Client is a line-oriented SCPI client session.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	// Timeout bounds each Send write and Query round trip. Zero or
	// negative means no deadline: operations block until the peer
	// responds or the connection dies.
	Timeout time.Duration
}

// opDeadline resolves the absolute deadline for one client operation; a
// non-positive Timeout yields the zero time, which net.Conn treats as
// "no deadline" (and clears any deadline a previous operation armed).
func (c *Client) opDeadline() time.Time {
	if c.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.Timeout)
}

// Dial connects to an SCPI server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scpi: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), Timeout: 5 * time.Second}, nil
}

// Send transmits a non-query command (no response expected).
func (c *Client) Send(cmd string) error {
	if strings.Contains(cmd, "?") {
		return fmt.Errorf("scpi: Send called with query %q; use Query", cmd)
	}
	if err := c.conn.SetWriteDeadline(c.opDeadline()); err != nil {
		return err
	}
	_, err := c.conn.Write([]byte(cmd + "\n"))
	if err != nil {
		return fmt.Errorf("scpi: send %q: %w", cmd, err)
	}
	return nil
}

// Query transmits a query and returns the single-line response.
func (c *Client) Query(cmd string) (string, error) {
	if !strings.Contains(cmd, "?") {
		return "", fmt.Errorf("scpi: Query called with non-query %q; use Send", cmd)
	}
	if err := c.conn.SetDeadline(c.opDeadline()); err != nil {
		return "", err
	}
	if _, err := c.conn.Write([]byte(cmd + "\n")); err != nil {
		return "", fmt.Errorf("scpi: query %q: %w", cmd, err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("scpi: query %q response: %w", cmd, err)
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// QueryFloat runs Query and parses the response as a float64.
func (c *Client) QueryFloat(cmd string) (float64, error) {
	s, err := c.Query(cmd)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("scpi: %q returned non-numeric %q", cmd, s)
	}
	return v, nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// Bind registers the 2230G command subset on a tree, driving the supply
// model. now supplies virtual (or wall) time for slew/rate computations.
//
// Supported headers (full forms):
//
//	*IDN?                       identification
//	INSTRUMENT:SELECT CH<n>     channel select (query returns CH<n>)
//	SOURCE:VOLTAGE <v>          set selected channel's voltage (query ok)
//	MEASURE:VOLTAGE?            measured (slewed) terminal voltage
//	OUTPUT ON|OFF|1|0           selected channel output enable (query ok)
//	APPLY CH<n>,<v>             one-shot channel+voltage program
//	SYSTEM:ERROR?               pop the error queue
func Bind(tree *Tree, supply *psu.Supply, now func() time.Duration) {
	if supply == nil || now == nil {
		panic("scpi: Bind needs a supply and a time source")
	}
	tree.Add("*IDN", func(args []string, query bool) (string, error) {
		if !query {
			return "", errors.New(`-100,"Command error; *IDN is query-only"`)
		}
		return psu.IDN, nil
	})
	tree.Add("INSTrument:SELect", func(args []string, query bool) (string, error) {
		if query {
			return supply.Selected().String(), nil
		}
		if len(args) != 1 {
			return "", errors.New(`-109,"Missing parameter; INST:SEL CH<n>"`)
		}
		ch, err := parseChannel(args[0])
		if err != nil {
			return "", err
		}
		if err := supply.Select(ch); err != nil {
			return "", scpiErr(err)
		}
		return "", nil
	})
	// SOURce is an optional default node in the 2230G's tree, so both
	// "SOUR:VOLT" and bare "VOLT" must resolve; register the handler
	// under both spellings.
	voltHandler := func(args []string, query bool) (string, error) {
		if query {
			v, err := supply.Setpoint(supply.Selected())
			if err != nil {
				return "", scpiErr(err)
			}
			return strconv.FormatFloat(v, 'f', 3, 64), nil
		}
		if len(args) != 1 {
			return "", errors.New(`-109,"Missing parameter; VOLT <v>"`)
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return "", fmt.Errorf(`-104,"Data type error; %s"`, args[0])
		}
		if err := supply.SetVoltage(supply.Selected(), v, now()); err != nil {
			return "", scpiErr(err)
		}
		return "", nil
	}
	tree.Add("SOURce:VOLTage", voltHandler)
	tree.Add("VOLTage", voltHandler)
	tree.Add("MEASure:VOLTage", func(args []string, query bool) (string, error) {
		if !query {
			return "", errors.New(`-100,"Command error; MEAS:VOLT is query-only"`)
		}
		v, err := supply.OutputVoltage(supply.Selected(), now())
		if err != nil {
			return "", scpiErr(err)
		}
		return strconv.FormatFloat(v, 'f', 3, 64), nil
	})
	tree.Add("OUTPut", func(args []string, query bool) (string, error) {
		if query {
			on, err := supply.Output(supply.Selected())
			if err != nil {
				return "", scpiErr(err)
			}
			if on {
				return "1", nil
			}
			return "0", nil
		}
		if len(args) != 1 {
			return "", errors.New(`-109,"Missing parameter; OUTP ON|OFF"`)
		}
		var on bool
		switch strings.ToUpper(args[0]) {
		case "ON", "1":
			on = true
		case "OFF", "0":
			on = false
		default:
			return "", fmt.Errorf(`-104,"Data type error; %s"`, args[0])
		}
		if err := supply.SetOutput(supply.Selected(), on); err != nil {
			return "", scpiErr(err)
		}
		return "", nil
	})
	tree.Add("APPLy", func(args []string, query bool) (string, error) {
		if query || len(args) != 2 {
			return "", errors.New(`-109,"Parameter error; APPL CH<n>,<v>"`)
		}
		ch, err := parseChannel(args[0])
		if err != nil {
			return "", err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return "", fmt.Errorf(`-104,"Data type error; %s"`, args[1])
		}
		if err := supply.SetVoltage(ch, v, now()); err != nil {
			return "", scpiErr(err)
		}
		return "", nil
	})
	tree.Add("SYSTem:ERRor", func(args []string, query bool) (string, error) {
		if !query {
			return "", errors.New(`-100,"Command error; SYST:ERR is query-only"`)
		}
		return tree.PopError(), nil
	})
}

// parseChannel converts "CH2" (or "2") to a psu.Channel.
func parseChannel(s string) (psu.Channel, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	s = strings.TrimPrefix(s, "CH")
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf(`-104,"Data type error; channel %s"`, s)
	}
	ch := psu.Channel(n)
	if !ch.Valid() {
		return 0, fmt.Errorf(`-222,"Data out of range; channel %d"`, n)
	}
	return ch, nil
}

// scpiErr wraps instrument model errors in SCPI error-code syntax.
func scpiErr(err error) error {
	switch {
	case errors.Is(err, psu.ErrTooFast):
		return fmt.Errorf(`-213,"Init ignored; %v"`, err)
	case errors.Is(err, psu.ErrVoltageRange):
		return fmt.Errorf(`-222,"Data out of range; %v"`, err)
	case errors.Is(err, psu.ErrInvalidChannel):
		return fmt.Errorf(`-222,"Data out of range; %v"`, err)
	default:
		return fmt.Errorf(`-300,"Device error; %v"`, err)
	}
}
