package scpi

import (
	"strings"
	"testing"
)

func echoTree(t *testing.T) *Tree {
	t.Helper()
	tree := NewTree()
	tree.Add("INSTrument:SELect", func(args []string, query bool) (string, error) {
		if query {
			return "CH1", nil
		}
		return "", nil
	})
	volt := func(args []string, query bool) (string, error) {
		if query {
			return "5.000", nil
		}
		return "", nil
	}
	tree.Add("SOURce:VOLTage", volt)
	tree.Add("VOLTage", volt) // SOURce is an optional default node
	return tree
}

func TestSpecParsing(t *testing.T) {
	path := parseSpec("INSTrument:SELect")
	if len(path) != 2 {
		t.Fatalf("path len = %d", len(path))
	}
	if path[0].full != "INSTRUMENT" || path[0].short != "INST" {
		t.Errorf("token 0 = %+v", path[0])
	}
	if path[1].full != "SELECT" || path[1].short != "SEL" {
		t.Errorf("token 1 = %+v", path[1])
	}
}

func TestAbbreviationMatching(t *testing.T) {
	c := command{full: "INSTRUMENT", short: "INST"}
	for _, ok := range []string{"INST", "INSTR", "INSTRUMENT"} {
		if !c.matches(ok) {
			t.Errorf("%q should match", ok)
		}
	}
	for _, bad := range []string{"IN", "INS", "INSTRUMENTS", "INSTX", "VOLT"} {
		if c.matches(bad) {
			t.Errorf("%q should not match", bad)
		}
	}
}

func TestDispatchShortAndLongForms(t *testing.T) {
	tree := echoTree(t)
	for _, form := range []string{
		"INST:SEL?", "INSTRUMENT:SELECT?", "inst:sel?", ":INST:SEL?",
	} {
		resp, err := tree.Dispatch(form)
		if err != nil || resp != "CH1" {
			t.Errorf("Dispatch(%q) = %q, %v", form, resp, err)
		}
	}
}

func TestDispatchUndefinedHeader(t *testing.T) {
	tree := echoTree(t)
	_, err := tree.Dispatch("BOGUS:CMD?")
	if err == nil || !strings.Contains(err.Error(), "-113") {
		t.Errorf("undefined header error = %v", err)
	}
	// Error is queued.
	if e := tree.PopError(); !strings.Contains(e, "-113") {
		t.Errorf("queued error = %q", e)
	}
	if e := tree.PopError(); e != `0,"No error"` {
		t.Errorf("empty queue = %q", e)
	}
}

func TestDispatchSemicolonChain(t *testing.T) {
	tree := echoTree(t)
	resp, err := tree.Dispatch("INST:SEL CH2; VOLT?; INST:SEL?")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "5.000;CH1" {
		t.Errorf("chained response = %q", resp)
	}
}

func TestDispatchSetErrorsAreQueuedNotReturned(t *testing.T) {
	tree := echoTree(t)
	// A failing non-query should not fail the dispatch.
	resp, err := tree.Dispatch("NOPE 5")
	if err != nil || resp != "" {
		t.Errorf("set error should be silent: %q, %v", resp, err)
	}
	if e := tree.PopError(); !strings.Contains(e, "-113") {
		t.Errorf("queued = %q", e)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	tree := echoTree(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	tree.Add("INSTrument:SELect", func([]string, bool) (string, error) { return "", nil })
}

func TestBadSpecPanics(t *testing.T) {
	for _, spec := range []string{"", "a:", "lower"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %q should panic", spec)
				}
			}()
			NewTree().Add(spec, func([]string, bool) (string, error) { return "", nil })
		}()
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler should panic")
		}
	}()
	NewTree().Add("TEST", nil)
}

func TestErrorQueueBounded(t *testing.T) {
	tree := echoTree(t)
	for i := 0; i < 40; i++ {
		tree.Dispatch("NOPE")
	}
	count := 0
	for tree.PopError() != `0,"No error"` {
		count++
		if count > 100 {
			t.Fatal("error queue never drains")
		}
	}
	if count != 16 {
		t.Errorf("queue kept %d errors, want 16", count)
	}
}

func TestCommandsListing(t *testing.T) {
	tree := echoTree(t)
	cmds := tree.Commands()
	if len(cmds) != 3 {
		t.Fatalf("commands = %v", cmds)
	}
	if cmds[0] != "INSTRUMENT:SELECT" {
		t.Errorf("sorted commands = %v", cmds)
	}
}

func TestArgumentSplitting(t *testing.T) {
	tree := NewTree()
	var got []string
	tree.Add("APPLy", func(args []string, query bool) (string, error) {
		got = append([]string(nil), args...)
		return "", nil
	})
	if _, err := tree.Dispatch("APPL CH2, 12.5"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "CH2" || got[1] != "12.5" {
		t.Errorf("args = %v", got)
	}
}

func TestStarCommand(t *testing.T) {
	tree := NewTree()
	tree.Add("*IDN", func(args []string, query bool) (string, error) {
		return "FAKE,INSTRUMENT", nil
	})
	resp, err := tree.Dispatch("*IDN?")
	if err != nil || resp != "FAKE,INSTRUMENT" {
		t.Errorf("*IDN? = %q, %v", resp, err)
	}
}
