package scpi

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/psu"
)

// virtualClock is an adjustable time source for the instrument binding.
type virtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (v *virtualClock) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *virtualClock) Advance(d time.Duration) {
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// startInstrument spins up a bound PSU server on an ephemeral port.
func startInstrument(t *testing.T) (*Client, *psu.Supply, *virtualClock) {
	t.Helper()
	supply := psu.New()
	clock := &virtualClock{}
	tree := NewTree()
	Bind(tree, supply, clock.Now)
	srv := NewServer(tree)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, supply, clock
}

func TestIdentification(t *testing.T) {
	c, _, _ := startInstrument(t)
	idn, err := c.Query("*IDN?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(idn, "2230G") {
		t.Errorf("IDN = %q", idn)
	}
}

func TestProgramVoltageOverNetwork(t *testing.T) {
	c, supply, clock := startInstrument(t)
	steps := []string{
		"INST:SEL CH1",
		"VOLT 12.5",
		"OUTP ON",
	}
	for _, cmd := range steps {
		if err := c.Send(cmd); err != nil {
			t.Fatal(err)
		}
		clock.Advance(25 * time.Millisecond)
	}
	// Queries are synchronous, so by the time the next query returns the
	// previous Sends have been processed (same TCP stream, in order).
	v, err := c.QueryFloat("VOLT?")
	if err != nil {
		t.Fatal(err)
	}
	if v != 12.5 {
		t.Errorf("VOLT? = %v", v)
	}
	sp, _ := supply.Setpoint(psu.CH1)
	if sp != 12.5 {
		t.Errorf("instrument setpoint = %v", sp)
	}
	// Measured voltage settles after the slew.
	clock.Advance(time.Second)
	mv, err := c.QueryFloat("MEAS:VOLT?")
	if err != nil {
		t.Fatal(err)
	}
	if mv != 12.5 {
		t.Errorf("MEAS:VOLT? = %v", mv)
	}
}

func TestApplyBothChannels(t *testing.T) {
	c, supply, clock := startInstrument(t)
	if err := c.Send("APPL CH1,5.0"); err != nil {
		t.Fatal(err)
	}
	// Flush the pipeline with a query BEFORE advancing the clock, so the
	// server is guaranteed to have stamped the first APPLy at the old
	// virtual time (Send is asynchronous on the TCP stream).
	if e, err := c.Query("SYST:ERR?"); err != nil || !strings.Contains(e, "No error") {
		t.Fatalf("first APPL failed: %q %v", e, err)
	}
	clock.Advance(25 * time.Millisecond)
	if err := c.Send("APPL CH2,7.5"); err != nil {
		t.Fatal(err)
	}
	if e, err := c.Query("SYST:ERR?"); err != nil || !strings.Contains(e, "No error") {
		t.Fatalf("second APPL failed: %q %v", e, err)
	}
	v1, _ := supply.Setpoint(psu.CH1)
	v2, _ := supply.Setpoint(psu.CH2)
	if v1 != 5.0 || v2 != 7.5 {
		t.Errorf("setpoints = %v/%v", v1, v2)
	}
}

func TestRateLimitSurfacesAsSCPIError(t *testing.T) {
	c, _, _ := startInstrument(t)
	// Two immediate programs: second must hit the 50 Hz limit.
	if err := c.Send("APPL CH1,5.0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("APPL CH1,6.0"); err != nil {
		t.Fatal(err)
	}
	errq, err := c.Query("SYST:ERR?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errq, "-213") {
		t.Errorf("expected rate-limit error, got %q", errq)
	}
}

func TestOutOfRangeVoltage(t *testing.T) {
	c, _, _ := startInstrument(t)
	if err := c.Send("APPL CH1,42.0"); err != nil {
		t.Fatal(err)
	}
	errq, err := c.Query("SYST:ERR?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errq, "-222") {
		t.Errorf("expected range error, got %q", errq)
	}
}

func TestOutputQuery(t *testing.T) {
	c, _, _ := startInstrument(t)
	on, err := c.Query("OUTP?")
	if err != nil || on != "0" {
		t.Errorf("OUTP? = %q, %v", on, err)
	}
	if err := c.Send("OUTP ON"); err != nil {
		t.Fatal(err)
	}
	on, err = c.Query("OUTP?")
	if err != nil || on != "1" {
		t.Errorf("OUTP? after ON = %q, %v", on, err)
	}
}

func TestQueryOnUndefinedHeaderStillResponds(t *testing.T) {
	c, _, _ := startInstrument(t)
	resp, err := c.Query("NOPE:NADA?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "-113") {
		t.Errorf("undefined query response = %q", resp)
	}
}

func TestClientAPIMisuse(t *testing.T) {
	c, _, _ := startInstrument(t)
	if err := c.Send("VOLT?"); err == nil {
		t.Error("Send with query should error")
	}
	if _, err := c.Query("VOLT 5"); err == nil {
		t.Error("Query with non-query should error")
	}
}

func TestConcurrentClients(t *testing.T) {
	supply := psu.New()
	clock := &virtualClock{}
	tree := NewTree()
	Bind(tree, supply, clock.Now)
	srv := NewServer(tree)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			cl, err := Dial(ctx, addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				if idn, err := cl.Query("*IDN?"); err != nil || !strings.Contains(idn, "2230G") {
					t.Errorf("query failed: %q %v", idn, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestZeroIdleTimeoutNeverExpires: IdleTimeout 0 means "no deadline" —
// the session must survive an idle window far longer than the deadline a
// naive time.Now().Add(0) would have armed (which expires instantly).
func TestZeroIdleTimeoutNeverExpires(t *testing.T) {
	supply := psu.New()
	clock := &virtualClock{}
	tree := NewTree()
	Bind(tree, supply, clock.Now)
	srv := NewServer(tree)
	srv.IdleTimeout = 0
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("*IDN?"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	time.Sleep(150 * time.Millisecond) // idle across what a past deadline would kill
	if _, err := c.Query("*IDN?"); err != nil {
		t.Fatalf("query after idle window: zero-IdleTimeout session expired: %v", err)
	}
}

// TestPositiveIdleTimeoutStillExpires: the zero-means-forever fix must
// not disarm real idle timeouts — a stale session is still dropped.
func TestPositiveIdleTimeoutStillExpires(t *testing.T) {
	supply := psu.New()
	clock := &virtualClock{}
	tree := NewTree()
	Bind(tree, supply, clock.Now)
	srv := NewServer(tree)
	srv.IdleTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("*IDN?"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // well past the idle window
	c.Timeout = 500 * time.Millisecond
	if _, err := c.Query("*IDN?"); err == nil {
		t.Fatal("session survived 6× the idle timeout")
	}
}

// TestClientZeroTimeout: a Client with Timeout 0 must treat it as "no
// deadline" — Send and Query work instead of failing on a deadline
// armed in the past. Also exercises clearing: a previous operation's
// positive deadline must not leak into a later zero-timeout operation.
func TestClientZeroTimeout(t *testing.T) {
	c, _, _ := startInstrument(t)
	// Arm a real deadline first so the zero-timeout path must clear it.
	c.Timeout = time.Second
	if _, err := c.Query("*IDN?"); err != nil {
		t.Fatal(err)
	}
	c.Timeout = 0
	time.Sleep(20 * time.Millisecond)
	if err := c.Send("INST:SEL CH1"); err != nil {
		t.Fatalf("Send with zero timeout: %v", err)
	}
	idn, err := c.Query("*IDN?")
	if err != nil {
		t.Fatalf("Query with zero timeout: %v", err)
	}
	if !strings.Contains(idn, "2230G") {
		t.Errorf("IDN = %q", idn)
	}
}

func TestShutdownUnblocksClients(t *testing.T) {
	c, _, _ := startInstrument(t)
	// Shutdown happens in cleanup; just verify a query works before.
	if _, err := c.Query("*IDN?"); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bind(nil) should panic")
		}
	}()
	Bind(NewTree(), nil, nil)
}
