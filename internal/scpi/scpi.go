// Package scpi implements the instrument-control protocol LLAMA's
// controller uses to program the bias supply: SCPI (Standard Commands for
// Programmable Instruments) over a newline-delimited TCP byte stream, the
// same wire format VISA's TCPIP::SOCKET resource class carries to a real
// Tektronix 2230G (§3.3).
//
// The package has three parts: a command tree with SCPI-style abbreviated
// header matching ("INSTrument" matches INST, INSTR, INSTRUMENT, …), a
// context-aware TCP server with per-connection deadlines, and a client
// with request/response helpers. The psu binding (Bind) exposes the
// subset of the 2230G command set the paper's Python/VISA script uses.
package scpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Handler executes one parsed command. args are the comma-separated
// arguments (already trimmed); query says whether the header ended in '?'.
// A non-nil error is converted into an SCPI error-queue entry; for queries
// the returned string is sent back to the client.
type Handler func(args []string, query bool) (string, error)

// command is one node of the tree.
type command struct {
	// full is the full-length header mnemonic, e.g. "INSTRUMENT".
	full string
	// short is the required abbreviation prefix, e.g. "INST".
	short string
}

// matches reports whether token (already uppercased) is a legal spelling:
// either the short form or any prefix-extension of it up to the full form.
func (c command) matches(token string) bool {
	if len(token) < len(c.short) || len(token) > len(c.full) {
		return false
	}
	return strings.HasPrefix(c.full, token)
}

// Node is a registered command path with its handler.
type node struct {
	path    []command
	handler Handler
}

// Tree is an SCPI command dispatcher. Register paths with Add, then
// Dispatch raw lines against it. Tree is safe for concurrent dispatch
// after registration completes.
type Tree struct {
	mu    sync.RWMutex
	nodes []node
	// errq is the SCPI error queue (SYSTem:ERRor?).
	errq []string
}

// NewTree returns an empty dispatcher.
func NewTree() *Tree { return &Tree{} }

// Add registers a handler under an SCPI path spec like
// "INSTrument:SELect" — uppercase letters form the required short form,
// the full token is the whole word. It panics on malformed specs or
// duplicate registrations (programmer errors).
func (t *Tree) Add(spec string, h Handler) {
	if h == nil {
		panic("scpi: nil handler")
	}
	path := parseSpec(spec)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range t.nodes {
		if samePath(n.path, path) {
			panic(fmt.Sprintf("scpi: duplicate registration %q", spec))
		}
	}
	t.nodes = append(t.nodes, node{path: path, handler: h})
}

// parseSpec splits "INSTrument:SELect" into command tokens.
func parseSpec(spec string) []command {
	parts := strings.Split(spec, ":")
	path := make([]command, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			panic(fmt.Sprintf("scpi: empty token in spec %q", spec))
		}
		short := p
		for i, r := range p {
			if r >= 'a' && r <= 'z' {
				short = p[:i]
				break
			}
		}
		if short == "" {
			panic(fmt.Sprintf("scpi: spec token %q has no short form", p))
		}
		path = append(path, command{full: strings.ToUpper(p), short: strings.ToUpper(short)})
	}
	return path
}

func samePath(a, b []command) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].full != b[i].full {
			return false
		}
	}
	return true
}

// Dispatch parses and executes one SCPI line (without the trailing
// newline). Multiple semicolon-separated commands are executed in order;
// query responses are joined with ';'. Errors are pushed onto the error
// queue and reported through SYSTem:ERRor? in instrument fashion — the
// returned error is non-nil only for queries that failed (so the server
// can still answer something).
func (t *Tree) Dispatch(line string) (string, error) {
	var responses []string
	for _, part := range strings.Split(line, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		resp, isQuery, err := t.dispatchOne(part)
		if err != nil {
			t.pushError(err.Error())
			if isQuery {
				return "", err
			}
			continue
		}
		if isQuery {
			responses = append(responses, resp)
		}
	}
	return strings.Join(responses, ";"), nil
}

// dispatchOne handles a single command unit.
func (t *Tree) dispatchOne(part string) (resp string, isQuery bool, err error) {
	header := part
	var argstr string
	if i := strings.IndexAny(part, " \t"); i >= 0 {
		header, argstr = part[:i], strings.TrimSpace(part[i+1:])
	}
	isQuery = strings.HasSuffix(header, "?")
	header = strings.TrimSuffix(header, "?")
	tokens := strings.Split(strings.ToUpper(strings.TrimPrefix(header, ":")), ":")

	h := t.lookup(tokens)
	if h == nil {
		return "", isQuery, fmt.Errorf("-113,\"Undefined header; %s\"", header)
	}
	var args []string
	if argstr != "" {
		args = strings.Split(argstr, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	resp, err = h(args, isQuery)
	return resp, isQuery, err
}

// lookup finds the handler whose path matches the tokens.
func (t *Tree) lookup(tokens []string) Handler {
	t.mu.RLock()
	defer t.mu.RUnlock()
outer:
	for _, n := range t.nodes {
		if len(n.path) != len(tokens) {
			continue
		}
		for i, c := range n.path {
			if !c.matches(tokens[i]) {
				continue outer
			}
		}
		return n.handler
	}
	return nil
}

// pushError appends to the bounded error queue.
func (t *Tree) pushError(msg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errq) >= 16 {
		return // queue overflow is silently dropped, like hardware
	}
	t.errq = append(t.errq, msg)
}

// PopError removes and returns the oldest queued error, or the SCPI
// no-error sentinel when the queue is empty.
func (t *Tree) PopError() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errq) == 0 {
		return `0,"No error"`
	}
	e := t.errq[0]
	t.errq = t.errq[1:]
	return e
}

// Commands returns the registered full-form paths, sorted, for
// documentation and debugging.
func (t *Tree) Commands() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		var parts []string
		for _, c := range n.path {
			parts = append(parts, c.full)
		}
		out = append(out, strings.Join(parts, ":"))
	}
	sort.Strings(out)
	return out
}
