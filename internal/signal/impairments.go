package signal

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// FrontEnd models the analog/digital imperfections of a real receiver
// chain — the reasons a measured RSSI differs from the channel's analytic
// power even before thermal noise. The zero value is a perfect front end.
//
// Applying the front end to a block is deterministic given the RNG
// stream, so experiments stay reproducible.
type FrontEnd struct {
	// CFOHz is the carrier frequency offset between transmitter and
	// receiver LOs (ppm-scale of the carrier on cheap radios).
	CFOHz float64
	// SampleRateHz is the ADC rate the offsets are normalized by.
	SampleRateHz float64
	// PhaseNoiseStd is the per-sample random-walk phase increment (rad):
	// the integrated LO phase noise.
	PhaseNoiseStd float64
	// IQGainImbalance is the fractional gain mismatch between I and Q
	// arms (ε in (1+ε) on the Q arm).
	IQGainImbalance float64
	// IQPhaseSkewRad is the quadrature error away from 90°.
	IQPhaseSkewRad float64
	// DCOffset adds a static complex bias (LO leakage).
	DCOffset complex128
	// QuantBits is the ADC resolution per rail; 0 disables quantization.
	QuantBits int
	// FullScale is the ADC full-scale amplitude for quantization.
	FullScale float64

	phase   float64 // CFO accumulator
	pnPhase float64 // phase-noise random walk
}

// Validate reports an error for unusable configurations.
func (f *FrontEnd) Validate() error {
	switch {
	case f.SampleRateHz < 0:
		return fmt.Errorf("signal: negative sample rate")
	case f.CFOHz != 0 && f.SampleRateHz <= 0:
		return fmt.Errorf("signal: CFO needs a sample rate")
	case math.Abs(f.CFOHz) > f.SampleRateHz/2 && f.SampleRateHz > 0:
		return fmt.Errorf("signal: CFO %g Hz beyond Nyquist", f.CFOHz)
	case f.PhaseNoiseStd < 0:
		return fmt.Errorf("signal: negative phase-noise std")
	case f.QuantBits < 0 || f.QuantBits > 24:
		return fmt.Errorf("signal: quantizer bits %d outside [0,24]", f.QuantBits)
	case f.QuantBits > 0 && f.FullScale <= 0:
		return fmt.Errorf("signal: quantizer needs a positive full scale")
	}
	return nil
}

// USRPN210FrontEnd returns impairments representative of the paper's lab
// receiver: small CFO (GPSDO-free TCXO), mild phase noise, 14-bit ADC.
func USRPN210FrontEnd(sampleRate float64) *FrontEnd {
	return &FrontEnd{
		CFOHz:           180, // ~0.07 ppm at 2.44 GHz
		SampleRateHz:    sampleRate,
		PhaseNoiseStd:   0.002,
		IQGainImbalance: 0.01,
		IQPhaseSkewRad:  0.005,
		DCOffset:        complex(2e-4, -1e-4),
		QuantBits:       14,
		FullScale:       1.0,
	}
}

// ESP8266FrontEnd returns the much rougher chain of a $3 IoT SoC.
func ESP8266FrontEnd(sampleRate float64) *FrontEnd {
	return &FrontEnd{
		CFOHz:           12e3, // ~5 ppm crystal
		SampleRateHz:    sampleRate,
		PhaseNoiseStd:   0.02,
		IQGainImbalance: 0.05,
		IQPhaseSkewRad:  0.03,
		DCOffset:        complex(3e-3, 2e-3),
		QuantBits:       10,
		FullScale:       1.0,
	}
}

// Apply distorts the block in place and returns it. Phase state persists
// across calls (the LO keeps drifting), so consecutive blocks are
// continuous like a real stream.
func (f *FrontEnd) Apply(buf []complex128, rng *rand.Rand) []complex128 {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	cfoStep := 0.0
	if f.SampleRateHz > 0 {
		cfoStep = 2 * math.Pi * f.CFOHz / f.SampleRateHz
	}
	for i := range buf {
		x := buf[i]
		// LO rotation: CFO plus phase-noise walk.
		f.phase += cfoStep
		if f.phase > math.Pi {
			f.phase -= 2 * math.Pi
		}
		if f.PhaseNoiseStd > 0 && rng != nil {
			f.pnPhase += f.PhaseNoiseStd * rng.NormFloat64()
		}
		x *= cmplx.Rect(1, f.phase+f.pnPhase)
		// IQ imbalance: Q arm gain and quadrature skew (the skew mixes a
		// sine of the I arm into Q — the classic image-generating term).
		if f.IQGainImbalance != 0 || f.IQPhaseSkewRad != 0 {
			iArm := real(x)
			qArm := imag(x) * (1 + f.IQGainImbalance)
			qArm = qArm*math.Cos(f.IQPhaseSkewRad) + iArm*math.Sin(f.IQPhaseSkewRad)
			x = complex(iArm, qArm)
		}
		// LO leakage.
		x += f.DCOffset
		// ADC quantization.
		if f.QuantBits > 0 {
			x = complex(quantize(real(x), f.QuantBits, f.FullScale),
				quantize(imag(x), f.QuantBits, f.FullScale))
		}
		buf[i] = x
	}
	return buf
}

// quantize rounds v to the nearest code of a mid-tread quantizer with the
// given bits and full scale, clipping at the rails.
func quantize(v float64, bits int, fullScale float64) float64 {
	levels := float64(int64(1) << uint(bits-1))
	step := fullScale / levels
	q := math.Round(v/step) * step
	if q > fullScale {
		q = fullScale
	}
	if q < -fullScale {
		q = -fullScale
	}
	return q
}

// Reset clears the accumulated LO phase state.
func (f *FrontEnd) Reset() { f.phase, f.pnPhase = 0, 0 }

// EstimateDCOffset returns the block mean — the standard DC estimator a
// receiver subtracts before power measurement.
func EstimateDCOffset(buf []complex128) complex128 {
	if len(buf) == 0 {
		return 0
	}
	var acc complex128
	for _, x := range buf {
		acc += x
	}
	return acc / complex(float64(len(buf)), 0)
}

// RemoveDCOffset subtracts the block mean in place and returns buf.
func RemoveDCOffset(buf []complex128) []complex128 {
	dc := EstimateDCOffset(buf)
	for i := range buf {
		buf[i] -= dc
	}
	return buf
}

// EstimateCFO returns the frequency offset (Hz) of a tone-bearing block
// via the phase of the lag-1 autocorrelation — the standard single-lag
// estimator, unbiased for offsets below fs/2.
func EstimateCFO(buf []complex128, sampleRateHz float64) float64 {
	if len(buf) < 2 || sampleRateHz <= 0 {
		return 0
	}
	var acc complex128
	for i := 1; i < len(buf); i++ {
		acc += buf[i] * cmplx.Conj(buf[i-1])
	}
	return cmplx.Phase(acc) * sampleRateHz / (2 * math.Pi)
}
