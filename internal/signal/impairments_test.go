package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFrontEndValidate(t *testing.T) {
	if err := (&FrontEnd{}).Validate(); err != nil {
		t.Errorf("zero front end should be valid: %v", err)
	}
	if err := USRPN210FrontEnd(1e6).Validate(); err != nil {
		t.Error(err)
	}
	if err := ESP8266FrontEnd(1e6).Validate(); err != nil {
		t.Error(err)
	}
	bad := []*FrontEnd{
		{SampleRateHz: -1},
		{CFOHz: 100}, // no sample rate
		{CFOHz: 9e5, SampleRateHz: 1e6},
		{PhaseNoiseStd: -1},
		{QuantBits: -1},
		{QuantBits: 30},
		{QuantBits: 8}, // no full scale
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad front end %d accepted", i)
		}
	}
}

func TestPerfectFrontEndIsTransparent(t *testing.T) {
	f := &FrontEnd{}
	src := NewToneSource(100e3, 1e6, 0.5)
	buf := src.Fill(make([]complex128, 256))
	orig := append([]complex128(nil), buf...)
	f.Apply(buf, rand.New(rand.NewSource(1)))
	for i := range buf {
		if buf[i] != orig[i] {
			t.Fatalf("perfect front end altered sample %d", i)
		}
	}
}

func TestCFOShiftsTone(t *testing.T) {
	fs := 1e6
	f := &FrontEnd{CFOHz: 50e3, SampleRateHz: fs}
	src := NewToneSource(100e3, fs, 1)
	buf := src.Fill(make([]complex128, 1024))
	f.Apply(buf, nil)
	spec := append([]complex128(nil), buf...)
	FFT(spec)
	bin, _ := PeakBin(spec, 0, len(spec))
	got := BinFrequency(bin, len(spec), fs)
	if math.Abs(got-150e3) > 2e3 {
		t.Errorf("tone after CFO at %v Hz, want 150 kHz", got)
	}
}

func TestCFOEstimatorRecoversOffset(t *testing.T) {
	fs := 1e6
	f := &FrontEnd{CFOHz: 37e3, SampleRateHz: fs}
	// A DC "tone" (zero offset) so the estimate equals the CFO itself.
	buf := make([]complex128, 2048)
	for i := range buf {
		buf[i] = 1
	}
	f.Apply(buf, nil)
	if got := EstimateCFO(buf, fs); math.Abs(got-37e3) > 100 {
		t.Errorf("estimated CFO = %v Hz, want 37 kHz", got)
	}
	if EstimateCFO(buf[:1], fs) != 0 {
		t.Error("short buffer CFO should be 0")
	}
}

func TestPhaseContinuityAcrossBlocks(t *testing.T) {
	fs := 1e6
	f := &FrontEnd{CFOHz: 10e3, SampleRateHz: fs}
	a := make([]complex128, 64)
	b := make([]complex128, 64)
	for i := range a {
		a[i], b[i] = 1, 1
	}
	f.Apply(a, nil)
	f.Apply(b, nil)
	// The first sample of b should continue a's rotation.
	step := cmplx.Phase(a[1] / a[0])
	gap := cmplx.Phase(b[0] / a[63])
	if math.Abs(gap-step) > 1e-9 {
		t.Errorf("phase discontinuity across blocks: %v vs %v", gap, step)
	}
	f.Reset()
	c := make([]complex128, 2)
	c[0], c[1] = 1, 1
	f.Apply(c, nil)
	if math.Abs(cmplx.Phase(c[0])-step) > 1e-9 {
		t.Error("reset should restart the LO phase")
	}
}

func TestPhaseNoiseSpreadsSpectrum(t *testing.T) {
	fs := 1e6
	rng := rand.New(rand.NewSource(5))
	clean := NewToneSource(125e3, fs, 1).Fill(make([]complex128, 4096))
	noisy := append([]complex128(nil), clean...)
	f := &FrontEnd{PhaseNoiseStd: 0.05, SampleRateHz: fs}
	f.Apply(noisy, rng)
	// Compare energy concentration at the tone bin.
	peakFrac := func(buf []complex128) float64 {
		spec := append([]complex128(nil), buf...)
		FFT(spec)
		_, mag := PeakBin(spec, 0, len(spec))
		var total float64
		for _, x := range spec {
			total += real(x)*real(x) + imag(x)*imag(x)
		}
		return mag * mag / total
	}
	if !(peakFrac(noisy) < peakFrac(clean)*0.95) {
		t.Errorf("phase noise should smear the tone: %v vs %v", peakFrac(noisy), peakFrac(clean))
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	fs := 1e6
	f := &FrontEnd{IQGainImbalance: 0.1, IQPhaseSkewRad: 0.05, SampleRateHz: fs}
	buf := NewToneSource(125e3, fs, 1).Fill(make([]complex128, 4096))
	f.Apply(buf, nil)
	spec := append([]complex128(nil), buf...)
	FFT(spec)
	// The image appears at −125 kHz.
	n := len(spec)
	toneBin := int(125e3 / fs * float64(n))
	imageBin := n - toneBin
	img := cmplx.Abs(spec[imageBin])
	tone := cmplx.Abs(spec[toneBin])
	if img < tone*0.01 {
		t.Errorf("no IQ image visible: tone %v image %v", tone, img)
	}
	if img > tone {
		t.Error("image exceeds tone — imbalance model broken")
	}
}

func TestDCOffsetAndRemoval(t *testing.T) {
	f := &FrontEnd{DCOffset: complex(0.05, -0.03)}
	buf := make([]complex128, 512)
	f.Apply(buf, nil)
	dc := EstimateDCOffset(buf)
	if cmplx.Abs(dc-complex(0.05, -0.03)) > 1e-12 {
		t.Errorf("estimated DC = %v", dc)
	}
	RemoveDCOffset(buf)
	if got := cmplx.Abs(EstimateDCOffset(buf)); got > 1e-12 {
		t.Errorf("residual DC = %v", got)
	}
	if EstimateDCOffset(nil) != 0 {
		t.Error("empty DC estimate should be 0")
	}
}

func TestQuantizationError(t *testing.T) {
	f := &FrontEnd{QuantBits: 8, FullScale: 1}
	rng := rand.New(rand.NewSource(9))
	buf := make([]complex128, 4096)
	orig := make([]complex128, len(buf))
	for i := range buf {
		buf[i] = complex(rng.Float64()*1.6-0.8, rng.Float64()*1.6-0.8)
		orig[i] = buf[i]
	}
	f.Apply(buf, nil)
	step := 1.0 / 128
	for i := range buf {
		if math.Abs(real(buf[i])-real(orig[i])) > step/2+1e-12 {
			t.Fatalf("quantization error at %d exceeds half step", i)
		}
	}
	// Clipping at the rails.
	over := []complex128{complex(2, -2)}
	f.Apply(over, nil)
	if real(over[0]) > 1 || imag(over[0]) < -1 {
		t.Errorf("clipping failed: %v", over[0])
	}
}

func TestCheapChipWorseThanUSRP(t *testing.T) {
	// The ESP8266 front end must destroy more of a tone's coherence
	// than the USRP's — the hardware story behind Fig. 2's wider IoT
	// RSSI distributions. Coherence = normalized correlation between
	// the distorted block and the clean reference.
	// A 256-sample (0.26 ms) block: short enough that the USRP's 180 Hz
	// CFO only rotates ~0.3 rad (coherent), long enough that the ESP's
	// 12 kHz CFO wraps many times (decoherent).
	fs := 1e6
	coherence := func(f *FrontEnd, seed int64) float64 {
		clean := NewToneSource(125e3, fs, 0.5).Fill(make([]complex128, 256))
		buf := append([]complex128(nil), clean...)
		f.Apply(buf, rand.New(rand.NewSource(seed)))
		var dot complex128
		var ea, eb float64
		for i := range buf {
			dot += buf[i] * cmplx.Conj(clean[i])
			ea += real(buf[i])*real(buf[i]) + imag(buf[i])*imag(buf[i])
			eb += real(clean[i])*real(clean[i]) + imag(clean[i])*imag(clean[i])
		}
		return cmplx.Abs(dot) / math.Sqrt(ea*eb)
	}
	u := coherence(USRPN210FrontEnd(fs), 3)
	e := coherence(ESP8266FrontEnd(fs), 3)
	if !(e < u) {
		t.Errorf("ESP8266 coherence %v should trail USRP %v", e, u)
	}
	if u < 0.5 {
		t.Errorf("USRP coherence %v implausibly low over a 4 ms block", u)
	}
}
