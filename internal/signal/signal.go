// Package signal provides the complex-baseband DSP used by the simulated
// receivers: tone generation (the paper's USRP transmitter sends a
// continuous cosine at a 500 kHz offset), AWGN, power/RSSI estimation, and
// spectral analysis (Goertzel and a radix-2 FFT) for the sensing pipeline.
//
// All buffers are []complex128 at an explicit sample rate. Functions that
// stream samples accept caller-provided buffers so hot paths stay
// allocation-free (gopacket's SerializeBuffer discipline).
package signal

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/llama-surface/llama/internal/units"
)

// ToneSource generates a complex exponential at a fixed baseband offset —
// the paper's "cosine signal over 500 KHz" as seen after downconversion.
type ToneSource struct {
	// OffsetHz is the tone's baseband offset (500 kHz in the paper).
	OffsetHz float64
	// SampleRateHz is the generation rate (1 MHz receiver sampling).
	SampleRateHz float64
	// Amplitude is the tone's field amplitude; power is Amplitude².
	Amplitude float64

	phase float64
}

// NewToneSource returns a tone source; it panics when the tone does not
// satisfy Nyquist at the given sample rate.
func NewToneSource(offsetHz, sampleRateHz, amplitude float64) *ToneSource {
	if sampleRateHz <= 0 {
		panic("signal: non-positive sample rate")
	}
	// A complex tone at exactly fs/2 is representable (it alternates
	// sign), which is precisely the paper's 500 kHz tone at 1 MHz
	// sampling; only beyond that does it alias.
	if math.Abs(offsetHz) > sampleRateHz/2 {
		panic(fmt.Sprintf("signal: tone %g Hz violates Nyquist at %g Hz", offsetHz, sampleRateHz))
	}
	return &ToneSource{OffsetHz: offsetHz, SampleRateHz: sampleRateHz, Amplitude: amplitude}
}

// Fill writes the next len(dst) samples into dst and returns dst.
func (t *ToneSource) Fill(dst []complex128) []complex128 {
	step := 2 * math.Pi * t.OffsetHz / t.SampleRateHz
	for i := range dst {
		dst[i] = cmplx.Rect(t.Amplitude, t.phase)
		t.phase += step
		if t.phase > math.Pi {
			t.phase -= 2 * math.Pi
		}
	}
	return dst
}

// Scale multiplies every sample by the complex channel response h in
// place and returns buf — applying a flat-fading channel to a block.
func Scale(buf []complex128, h complex128) []complex128 {
	for i := range buf {
		buf[i] *= h
	}
	return buf
}

// AddAWGN adds circular complex Gaussian noise with total power noiseW to
// each sample in place, using rng, and returns buf.
func AddAWGN(buf []complex128, noiseW float64, rng *rand.Rand) []complex128 {
	if noiseW < 0 {
		panic("signal: negative noise power")
	}
	sigma := math.Sqrt(noiseW / 2)
	for i := range buf {
		buf[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return buf
}

// Power returns the mean sample power of buf; zero for an empty buffer.
func Power(buf []complex128) float64 {
	if len(buf) == 0 {
		return 0
	}
	var s float64
	for _, x := range buf {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return s / float64(len(buf))
}

// PowerDBm returns Power in dBm, treating sample power as watts.
func PowerDBm(buf []complex128) float64 { return units.WattsToDBm(Power(buf)) }

// RSSIEstimator accumulates block power estimates with exponential
// smoothing, the way a cheap receiver's RSSI register behaves.
type RSSIEstimator struct {
	// Alpha is the smoothing factor in (0, 1]; 1 = no smoothing.
	Alpha float64

	value float64
	init  bool
}

// NewRSSIEstimator returns an estimator; it panics for alpha outside (0,1].
func NewRSSIEstimator(alpha float64) *RSSIEstimator {
	if alpha <= 0 || alpha > 1 {
		panic("signal: RSSI alpha must be in (0,1]")
	}
	return &RSSIEstimator{Alpha: alpha}
}

// Update folds a block of samples into the estimate and returns the new
// smoothed power in watts.
func (r *RSSIEstimator) Update(buf []complex128) float64 {
	p := Power(buf)
	if !r.init {
		r.value = p
		r.init = true
		return r.value
	}
	r.value = r.Alpha*p + (1-r.Alpha)*r.value
	return r.value
}

// Value returns the current smoothed power in watts (0 before any update).
func (r *RSSIEstimator) Value() float64 { return r.value }

// ValueDBm returns the current estimate in dBm.
func (r *RSSIEstimator) ValueDBm() float64 { return units.WattsToDBm(r.value) }

// Reset clears the estimator state.
func (r *RSSIEstimator) Reset() { r.value, r.init = 0, false }

// Goertzel evaluates the DFT of buf at a single frequency binHz given the
// sample rate, returning the complex bin value normalized by the buffer
// length. It is the cheap way to track one tone (the receiver's 500 kHz
// carrier) without a full FFT.
func Goertzel(buf []complex128, binHz, sampleRateHz float64) complex128 {
	if sampleRateHz <= 0 {
		panic("signal: non-positive sample rate")
	}
	n := len(buf)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * binHz / sampleRateHz
	e := cmplx.Rect(1, -w)
	var acc complex128
	ph := complex(1, 0)
	for _, x := range buf {
		acc += x * ph
		ph *= e
	}
	return acc / complex(float64(n), 0)
}

// FFT computes the in-place radix-2 decimation-in-time FFT of buf. The
// length must be a power of two; it panics otherwise. The transform is
// unnormalized (inverse = conj–FFT–conj/N).
func FFT(buf []complex128) {
	n := len(buf)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("signal: FFT length must be a power of two")
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := buf[i+j]
				v := buf[i+j+length/2] * w
				buf[i+j] = u + v
				buf[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the unnormalized-companion inverse FFT of buf in place
// (including the 1/N factor, so IFFT(FFT(x)) == x).
func IFFT(buf []complex128) {
	for i := range buf {
		buf[i] = cmplx.Conj(buf[i])
	}
	FFT(buf)
	n := complex(float64(len(buf)), 0)
	for i := range buf {
		buf[i] = cmplx.Conj(buf[i]) / n
	}
}

// HannWindow applies a Hann window in place and returns buf.
func HannWindow(buf []complex128) []complex128 {
	n := len(buf)
	if n < 2 {
		return buf
	}
	for i := range buf {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		buf[i] *= complex(w, 0)
	}
	return buf
}

// PeakBin returns the index and magnitude of the largest-magnitude bin in
// spectrum[lo:hi). It panics on an empty or inverted range.
func PeakBin(spectrum []complex128, lo, hi int) (int, float64) {
	if lo < 0 || hi > len(spectrum) || lo >= hi {
		panic("signal: bad peak search range")
	}
	best, bestMag := lo, cmplx.Abs(spectrum[lo])
	for i := lo + 1; i < hi; i++ {
		if m := cmplx.Abs(spectrum[i]); m > bestMag {
			best, bestMag = i, m
		}
	}
	return best, bestMag
}

// BinFrequency converts an FFT bin index to hertz for an n-point
// transform at the given sample rate, mapping upper-half bins to negative
// frequencies.
func BinFrequency(bin, n int, sampleRateHz float64) float64 {
	if n <= 0 {
		panic("signal: non-positive FFT size")
	}
	if bin >= n/2 {
		bin -= n
	}
	return float64(bin) * sampleRateHz / float64(n)
}

// NextPow2 returns the smallest power of two ≥ n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// MeanAndStd returns the mean and standard deviation of xs (population
// convention); both zero for an empty slice.
func MeanAndStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the per-bin probability mass (percent, summing to ≈100 for samples in
// range). Out-of-range samples are clipped into the edge bins, matching
// how Fig. 2/20's PDFs are plotted. It panics for nbins ≤ 0 or hi ≤ lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []float64 {
	if nbins <= 0 || hi <= lo {
		panic("signal: bad histogram shape")
	}
	h := make([]float64, nbins)
	if len(xs) == 0 {
		return h
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h[i]++
	}
	scale := 100 / float64(len(xs))
	for i := range h {
		h[i] *= scale
	}
	return h
}
