package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToneSourcePowerAndFrequency(t *testing.T) {
	src := NewToneSource(500e3, 1e6, 0.5)
	buf := src.Fill(make([]complex128, 4096))
	// Tone power = amplitude².
	if got := Power(buf); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("tone power = %v, want 0.25", got)
	}
	// All energy at 500 kHz... which at fs=1 MHz is the Nyquist edge;
	// use a gentler offset for the bin check.
	src2 := NewToneSource(250e3, 1e6, 1)
	buf2 := src2.Fill(make([]complex128, 1024))
	spec := append([]complex128(nil), buf2...)
	FFT(spec)
	bin, _ := PeakBin(spec, 0, len(spec))
	if got := BinFrequency(bin, len(spec), 1e6); math.Abs(got-250e3) > 1e3 {
		t.Errorf("tone peak at %v Hz, want 250 kHz", got)
	}
}

func TestToneSourceContinuity(t *testing.T) {
	// Two consecutive Fill calls must be phase-continuous.
	src := NewToneSource(100e3, 1e6, 1)
	a := src.Fill(make([]complex128, 64))
	b := src.Fill(make([]complex128, 64))
	// The sample after a[63] should advance by the same step.
	step := cmplx.Phase(a[1] / a[0])
	gap := cmplx.Phase(b[0] / a[63])
	if math.Abs(gap-step) > 1e-9 {
		t.Errorf("phase discontinuity: step %v vs gap %v", step, gap)
	}
}

func TestToneSourcePanics(t *testing.T) {
	for _, c := range []struct{ off, fs float64 }{{600e3, 1e6}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewToneSource(%v, %v) should panic", c.off, c.fs)
				}
			}()
			NewToneSource(c.off, c.fs, 1)
		}()
	}
}

func TestScale(t *testing.T) {
	buf := []complex128{1, 2, 3}
	Scale(buf, 2i)
	if buf[0] != 2i || buf[2] != 6i {
		t.Errorf("scale wrong: %v", buf)
	}
}

func TestAddAWGNPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]complex128, 200000)
	AddAWGN(buf, 0.01, rng)
	if got := Power(buf); math.Abs(got-0.01) > 0.0005 {
		t.Errorf("noise power = %v, want 0.01", got)
	}
}

func TestAddAWGNPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative noise power should panic")
		}
	}()
	AddAWGN(make([]complex128, 4), -1, rand.New(rand.NewSource(1)))
}

func TestPowerEmpty(t *testing.T) {
	if Power(nil) != 0 {
		t.Error("empty power should be 0")
	}
}

func TestRSSIEstimatorSmoothing(t *testing.T) {
	est := NewRSSIEstimator(0.5)
	if est.Value() != 0 {
		t.Error("initial value should be 0")
	}
	est.Update([]complex128{2}) // power 4
	if est.Value() != 4 {
		t.Errorf("first update should seed directly: %v", est.Value())
	}
	est.Update([]complex128{0}) // power 0
	if est.Value() != 2 {
		t.Errorf("smoothed value = %v, want 2", est.Value())
	}
	est.Reset()
	if est.Value() != 0 {
		t.Error("reset should clear")
	}
}

func TestRSSIEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha 0 should panic")
		}
	}()
	NewRSSIEstimator(0)
}

func TestGoertzelMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	buf := make([]complex128, n)
	for i := range buf {
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	spec := append([]complex128(nil), buf...)
	FFT(spec)
	fs := 1e6
	for _, bin := range []int{0, 3, 17, 100} {
		want := spec[bin] / complex(float64(n), 0)
		got := Goertzel(buf, float64(bin)*fs/float64(n), fs)
		if cmplx.Abs(got-want) > 1e-9 {
			t.Errorf("bin %d: goertzel %v vs fft %v", bin, got, want)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]complex128, 512)
	orig := make([]complex128, 512)
	for i := range buf {
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = buf[i]
	}
	FFT(buf)
	IFFT(buf)
	for i := range buf {
		if cmplx.Abs(buf[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Σ|x|² == Σ|X|²/N.
	rng := rand.New(rand.NewSource(4))
	buf := make([]complex128, 256)
	for i := range buf {
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	tp := Power(buf) * float64(len(buf))
	FFT(buf)
	var fp float64
	for _, x := range buf {
		fp += real(x)*real(x) + imag(x)*imag(x)
	}
	fp /= float64(len(buf))
	if math.Abs(tp-fp) > 1e-6*(1+tp) {
		t.Errorf("Parseval violated: %v vs %v", tp, fp)
	}
}

func TestFFTPanicsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT of length 3 should panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTEmptyOK(t *testing.T) {
	FFT(nil) // must not panic
}

func TestHannWindowEndsNearZero(t *testing.T) {
	buf := make([]complex128, 64)
	for i := range buf {
		buf[i] = 1
	}
	HannWindow(buf)
	if cmplx.Abs(buf[0]) > 1e-12 || cmplx.Abs(buf[63]) > 1e-12 {
		t.Error("Hann endpoints should be ~0")
	}
	if math.Abs(real(buf[32])-1) > 0.01 {
		t.Errorf("Hann center = %v, want ≈1", buf[32])
	}
}

func TestPeakBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted range should panic")
		}
	}()
	PeakBin(make([]complex128, 8), 5, 2)
}

func TestBinFrequencyNegativeHalf(t *testing.T) {
	// Bin N-1 is -fs/N.
	if got := BinFrequency(255, 256, 1e6); math.Abs(got+1e6/256) > 1e-9 {
		t.Errorf("bin 255 = %v Hz", got)
	}
	if got := BinFrequency(0, 256, 1e6); got != 0 {
		t.Errorf("bin 0 = %v Hz", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 511: 512, 512: 512, 513: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMeanAndStd(t *testing.T) {
	m, s := MeanAndStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Errorf("mean/std = %v/%v, want 5/2", m, s)
	}
	m, s = MeanAndStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-45, -44.9, -40, -35, -30.1, -100, 0}, -45, -30, 3)
	var total float64
	for _, v := range h {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("histogram mass = %v, want 100", total)
	}
	// Clipping: -100 lands in bin 0, 0 in the last bin.
	if h[0] < h[2] {
		t.Errorf("unexpected shape: %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad histogram shape should panic")
		}
	}()
	Histogram(nil, 0, 1, 0)
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
