package sensing

import (
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

// sensingScene reproduces the §5.2.2 geometry: reflective deployment,
// transceiver pair 70 cm apart, metasurface 2 m away, 5 mW transmit.
func sensingScene(surf *metasurface.Surface) *channel.Scene {
	sc := channel.DefaultScene(surf, 0.70)
	sc.Mode = metasurface.Reflective
	sc.Geom = channel.Geometry{TxRx: 0.70, TxSurface: 2.0, SurfaceRx: 2.0}
	sc.TxPowerW = 5e-3
	// Respiration sensing uses co-polarized endpoints; detectability is
	// a power question, not a polarization-mismatch one.
	sc.Tx.Orientation = 0
	sc.MeasurementSaturation = 0
	return sc
}

func TestBreatherValidate(t *testing.T) {
	if err := DefaultBreather().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Breather{
		{RateHz: 0, ChestDisplacementM: 5e-3, BaselineReflectivity: 0.3},
		{RateHz: 0.25, ChestDisplacementM: 0, BaselineReflectivity: 0.3},
		{RateHz: 0.25, ChestDisplacementM: 5e-3, BaselineReflectivity: 0},
		{RateHz: 0.25, ChestDisplacementM: 0.2, BaselineReflectivity: 0.3},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("breather %d accepted", i)
		}
	}
}

func TestNewMonitorValidation(t *testing.T) {
	sc := sensingScene(nil)
	if _, err := NewMonitor(nil, DefaultBreather(), 10, 0.5); err == nil {
		t.Error("nil scene accepted")
	}
	if _, err := NewMonitor(sc, Breather{}, 10, 0.5); err == nil {
		t.Error("bad breather accepted")
	}
	if _, err := NewMonitor(sc, DefaultBreather(), 0, 0.5); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := NewMonitor(sc, DefaultBreather(), 10, -1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestAnalyzeRecoversKnownRate(t *testing.T) {
	// Synthetic clean sinusoid at 0.3 Hz.
	fs := 10.0
	n := int(60 * fs)
	rssi := make([]float64, n)
	for i := range rssi {
		rssi[i] = -50 + 1.5*math.Sin(2*math.Pi*0.3*float64(i)/fs)
	}
	a, err := Analyze(rssi, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Detected {
		t.Fatal("clean sinusoid not detected")
	}
	if math.Abs(a.RateHz-0.3) > 0.05 {
		t.Errorf("rate = %v Hz, want 0.3", a.RateHz)
	}
}

func TestAnalyzeRejectsNoise(t *testing.T) {
	rng := simclock.RNG(9, "noise-only")
	fs := 10.0
	rssi := make([]float64, int(60*fs))
	for i := range rssi {
		rssi[i] = -55 + 1.5*rng.NormFloat64()
	}
	a, err := Analyze(rssi, fs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Detected {
		t.Errorf("pure noise detected as breathing (SNR %v dB)", a.PeakSNRdB)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(make([]float64, 4), 10); err == nil {
		t.Error("short recording accepted")
	}
	if _, err := Analyze(make([]float64, 64), 0); err == nil {
		t.Error("zero sample rate accepted")
	}
	// 16 samples at 10 Hz cannot resolve 0.1 Hz.
	if _, err := Analyze(make([]float64, 16), 1000); err == nil {
		t.Error("unresolvable band accepted")
	}
}

func TestFig23SurfaceEnablesDetection(t *testing.T) {
	// The paper's Fig. 23 experiment: at 5 mW the respiration is
	// undetectable without the metasurface and detectable with it.
	surf := metasurface.MustNew(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	surf.SetBias(8, 8)

	run := func(s *metasurface.Surface, seed int64) Analysis {
		sc := sensingScene(s)
		mon, err := NewMonitor(sc, DefaultBreather(), 10, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		rec := mon.Record(60, simclock.RNG(seed, "fig23"))
		a, err := Analyze(rec, mon.SampleRateHz)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	withSurf := run(surf, 21)
	withoutSurf := run(nil, 21)
	if !withSurf.Detected {
		t.Errorf("with surface: breathing not detected (SNR %v dB)", withSurf.PeakSNRdB)
	}
	if withSurf.Detected && math.Abs(withSurf.RateHz-0.25) > 0.06 {
		t.Errorf("detected rate %v Hz, want 0.25", withSurf.RateHz)
	}
	if !(withSurf.PeakSNRdB > withoutSurf.PeakSNRdB) {
		t.Errorf("surface should raise sensing SNR: %v vs %v dB",
			withSurf.PeakSNRdB, withoutSurf.PeakSNRdB)
	}
}

func TestRecordPanics(t *testing.T) {
	sc := sensingScene(nil)
	mon, err := NewMonitor(sc, DefaultBreather(), 10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { mon.Record(0, simclock.RNG(1, "x")) },
		func() { mon.Record(10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
}
