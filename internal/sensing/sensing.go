// Package sensing implements the paper's §5.2.2 case study: human
// respiration monitoring through the reflected-signal path, with the
// metasurface boosting an otherwise sub-noise breathing signature.
//
// The model: a person's chest displaces a few millimeters with each
// breath, modulating the phase (and slightly the amplitude) of the path
// that bounces off their torso. At low transmit power the modulated
// component drowns in receiver noise; introducing the reflective
// metasurface raises the through-the-target signal energy so the periodic
// component becomes detectable again. Rate extraction uses spectral
// analysis of the slow RSSI time series.
package sensing

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/units"
)

// Breather models the human target.
type Breather struct {
	// RateHz is the respiration rate (0.2–0.4 Hz typical adult).
	RateHz float64
	// ChestDisplacementM is the peak chest excursion (≈5 mm).
	ChestDisplacementM float64
	// BaselineReflectivity is the torso's field reflection magnitude.
	BaselineReflectivity float64
	// ExtraPathM is the torso bounce's excess path length over the
	// dominant path. Its static phase k·ExtraPath sets the operating
	// point of the phase-to-power conversion: near quadrature the
	// breathing fundamental dominates; at a null only the (weak) second
	// harmonic survives — the classic respiration-sensing blind spot.
	ExtraPathM float64
	// BouncePathM is the total Tx→person→Rx path length. In the §5.2.2
	// geometry the person sits between the transceiver pair and the
	// surface, about a meter from each endpoint.
	BouncePathM float64
}

// DefaultBreather returns a 15 breath/min adult whose bounce path sits
// near quadrature at 2.44 GHz, positioned per the §5.2.2 geometry.
func DefaultBreather() Breather {
	return Breather{RateHz: 0.25, ChestDisplacementM: 5e-3, BaselineReflectivity: 0.09, ExtraPathM: 0.40, BouncePathM: 2.1}
}

// Validate reports an error for unphysical targets.
func (b Breather) Validate() error {
	switch {
	case b.RateHz <= 0 || b.RateHz > 2:
		return fmt.Errorf("sensing: implausible breathing rate %g Hz", b.RateHz)
	case b.ChestDisplacementM <= 0 || b.ChestDisplacementM > 0.05:
		return fmt.Errorf("sensing: implausible chest displacement %g m", b.ChestDisplacementM)
	case b.BaselineReflectivity <= 0 || b.BaselineReflectivity > 1:
		return fmt.Errorf("sensing: reflectivity %g outside (0,1]", b.BaselineReflectivity)
	case b.ExtraPathM < 0:
		return fmt.Errorf("sensing: negative excess path %g m", b.ExtraPathM)
	case b.BouncePathM <= 0:
		return fmt.Errorf("sensing: non-positive bounce path %g m", b.BouncePathM)
	}
	return nil
}

// SensingCoupling scales how strongly the surface's bounce illuminates
// the sensing region relative to the direct path. The far-field image
// model underestimates this: the person stands ~1 m from a 0.48 m panel —
// inside its radiating near field, where the panel's aperture delivers
// far more energy than an image-point source of the same total path, and
// the person crosses both legs of the bounce. Calibrated so the with- and
// without-surface detection outcomes straddle Fig. 23's 5 mW threshold.
const SensingCoupling = 25

// ClutterDecay is the AR(1) pole of the slow RSSI clutter process.
const ClutterDecay = 0.97

// Monitor runs the respiration experiment.
type Monitor struct {
	// Scene is the radio configuration; the target modulates only the
	// paths through the person's location, never the direct LoS.
	Scene *channel.Scene
	// Target is the breather.
	Target Breather
	// SampleRateHz is the RSSI report rate (slow time).
	SampleRateHz float64
	// RSSINoiseDB is the per-sample white measurement noise.
	RSSINoiseDB float64
	// ClutterDB is the innovation of the AR(1) low-frequency clutter
	// (gain drift, residual motion) that actually limits respiration
	// sensing at low SNR; its 1/f²-shaped spectrum lands inside the
	// breathing band. NewMonitor defaults it to 0.18 dB.
	ClutterDB float64
}

// NewMonitor validates and builds a Monitor.
func NewMonitor(scene *channel.Scene, target Breather, sampleRateHz, rssiNoiseDB float64) (*Monitor, error) {
	if scene == nil {
		return nil, errors.New("sensing: nil scene")
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if sampleRateHz <= 0 {
		return nil, errors.New("sensing: non-positive sample rate")
	}
	if rssiNoiseDB < 0 {
		return nil, errors.New("sensing: negative RSSI noise")
	}
	return &Monitor{
		Scene: scene, Target: target, SampleRateHz: sampleRateHz,
		RSSINoiseDB: rssiNoiseDB, ClutterDB: 0.18,
	}, nil
}

// breathingField decomposes the scene into the static field and the
// person-path component the chest modulates:
//
//   - hStatic: the full scene field (direct LoS + surface bounce). The
//     chest never modulates this; the person is off the LoS.
//   - hPerson: the torso-scattered path Tx→person→Rx, whose strength
//     scales with how brightly the sensing region is illuminated. The
//     surface's contribution to that illumination is measured
//     polarization-agnostically (the torso depolarizes on scatter), which
//     is exactly how LLAMA boosts sensing: more energy through the region
//     around the target (§5.2.2).
func (m *Monitor) breathingField() (hStatic, hPerson complex128) {
	hStatic = m.Scene.FieldTransfer()
	// Direct-only reference.
	bare := *m.Scene
	bare.Surface = nil
	hDirect := bare.FieldTransfer()
	// Polarization-agnostic surface illumination boost: probe with a
	// circularly polarized receive state so the cross-polarized surface
	// return is counted.
	probe := *m.Scene
	probe.Rx.Antenna = antenna.CircularPatch
	probeBare := probe
	probeBare.Surface = nil
	surfMag := cmplx.Abs(probe.FieldTransfer() - probeBare.FieldTransfer())
	dirMag := cmplx.Abs(probeBare.FieldTransfer())
	illum := 1.0
	if dirMag > 0 {
		illum += SensingCoupling * surfMag / dirMag
	}
	// Torso bounce over its own (longer) path, with depolarized
	// scattering leaking a fixed fraction into the receive state.
	bounce := bare
	bounce.Geom = channel.Geometry{TxRx: m.Target.BouncePathM}
	hPerson = bounce.FieldTransfer() *
		complex(m.Target.BaselineReflectivity*illum, 0)
	_ = hDirect
	return hStatic, hPerson
}

// Record simulates durationS seconds of RSSI samples: the static field
// plus the chest-modulated person path, with white estimator noise and
// AR(1) low-frequency clutter.
func (m *Monitor) Record(durationS float64, rng *rand.Rand) []float64 {
	if durationS <= 0 {
		panic("sensing: non-positive duration")
	}
	if rng == nil {
		panic("sensing: nil RNG")
	}
	n := int(durationS * m.SampleRateHz)
	out := make([]float64, n)
	lambda := units.Wavelength(m.Scene.FreqHz)
	hStatic, hPerson := m.breathingField()
	staticPhase := units.WaveNumber(m.Scene.FreqHz) * m.Target.ExtraPathM
	clutter := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) / m.SampleRateHz
		disp := m.Target.ChestDisplacementM * math.Sin(2*math.Pi*m.Target.RateHz*t)
		phase := staticPhase + 4*math.Pi*disp/lambda
		total := hStatic + hPerson*cmplx.Rect(1, phase)
		pw := m.Scene.TxPowerW * (real(total)*real(total) + imag(total)*imag(total))
		pw += m.Scene.NoisePowerW()
		rssi := units.WattsToDBm(pw)
		clutter = ClutterDecay*clutter + m.ClutterDB*rng.NormFloat64()
		rssi += clutter + m.RSSINoiseDB*rng.NormFloat64()
		out[i] = rssi
	}
	return out
}

// Analysis is the outcome of rate extraction.
type Analysis struct {
	// RateHz is the detected breathing rate (0 when not detected).
	RateHz float64
	// PeakSNRdB is the spectral peak's prominence over the noise floor
	// of the breathing band.
	PeakSNRdB float64
	// Detected reports whether the peak clears the detection threshold.
	Detected bool
}

// DetectionThresholdDB is the spectral prominence required to declare a
// breathing rate detected. The peak-to-median spread of pure Rayleigh
// noise across a ~40-bin band reaches 8–9 dB, so the threshold sits above
// that.
const DetectionThresholdDB = 10

// DetrendWindowS is the moving-average window (seconds) removed from the
// recording before spectral analysis. It high-passes the series around
// 1/DetrendWindowS Hz, suppressing the 1/f² gain-drift clutter that would
// otherwise masquerade as a low-frequency "breathing" peak.
const DetrendWindowS = 4.0

// Analyze extracts the respiration rate from an RSSI recording sampled at
// sampleRateHz: moving-average detrend, window, FFT, then search the
// 0.15–0.8 Hz band for a prominent peak.
func Analyze(rssi []float64, sampleRateHz float64) (Analysis, error) {
	if len(rssi) < 16 {
		return Analysis{}, fmt.Errorf("sensing: recording too short (%d samples)", len(rssi))
	}
	if sampleRateHz <= 0 {
		return Analysis{}, errors.New("sensing: non-positive sample rate")
	}
	detrended := detrend(rssi, int(DetrendWindowS*sampleRateHz))
	n := signal.NextPow2(len(detrended))
	buf := make([]complex128, n)
	for i, v := range detrended {
		buf[i] = complex(v, 0)
	}
	signal.HannWindow(buf[:len(detrended)])
	signal.FFT(buf)

	binHz := sampleRateHz / float64(n)
	lo := int(math.Ceil(0.15 / binHz))
	hi := int(math.Floor(0.8 / binHz))
	if lo < 1 {
		lo = 1
	}
	if hi >= n/2 {
		hi = n/2 - 1
	}
	if hi <= lo {
		return Analysis{}, fmt.Errorf("sensing: recording too short to resolve the breathing band (%d bins)", hi-lo)
	}
	peak, peakMag := signal.PeakBin(buf, lo, hi+1)
	// Band noise floor: median magnitude across the band.
	mags := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		if i != peak {
			mags = append(mags, cmplx.Abs(buf[i]))
		}
	}
	floor := median(mags)
	if floor <= 0 {
		floor = 1e-12
	}
	snr := 20 * math.Log10(peakMag/floor)
	a := Analysis{
		RateHz:    float64(peak) * binHz,
		PeakSNRdB: snr,
		Detected:  snr >= DetectionThresholdDB,
	}
	if !a.Detected {
		a.RateHz = 0
	}
	return a, nil
}

// detrend subtracts a centered moving average of the given window from
// each sample. Window values below 2 return a mean-removed copy.
func detrend(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window < 2 || window >= len(xs) {
		mean, _ := signal.MeanAndStd(xs)
		for i, v := range xs {
			out[i] = v - mean
		}
		return out
	}
	half := window / 2
	// Prefix sums for O(n) sliding means.
	prefix := make([]float64, len(xs)+1)
	for i, v := range xs {
		prefix[i+1] = prefix[i] + v
	}
	for i := range xs {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		mean := (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
		out[i] = xs[i] - mean
	}
	return out
}

// median returns the middle value of xs (average of the two middles for
// even length); zero for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	m := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[m]
	}
	return (sorted[m-1] + sorted[m]) / 2
}
