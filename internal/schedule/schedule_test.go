package schedule

import (
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/radio"
	"github.com/llama-surface/llama/internal/units"
)

// twoRealLinks builds two differently-mismatched device links over one
// shared surface, with throughput from the radio rate-adaptation model.
func twoRealLinks(t *testing.T) ([]Link, *metasurface.Surface) {
	t.Helper()
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, rxOrient, dist float64) Link {
		sc := channel.DefaultScene(surf, dist)
		sc.Rx.Orientation = rxOrient
		// Low transmit power keeps the links mid-ladder so polarization
		// conflicts actually cost rate (at high SNR every policy
		// saturates the top MCS and scheduling is moot).
		sc.TxPowerW = 2e-5
		return Link{
			Name: name,
			Throughput: func(vx, vy float64) float64 {
				surf.SetBias(vx, vy)
				return radio.AdaptedThroughput(radio.WiFi11g, sc.SNR(), 1500)
			},
		}
	}
	return []Link{
		mk("sensor-A", 0, 0.48),         // Tx at 90° → full mismatch
		mk("sensor-B", math.Pi/4, 0.60), // partial mismatch
	}, surf
}

func coarseGrid() BiasGrid { return BiasGrid{VMin: 0, VMax: 30, Step: 5} }

func TestValidation(t *testing.T) {
	links, _ := twoRealLinks(t)
	if _, err := Static(nil, coarseGrid()); err == nil {
		t.Error("no links accepted")
	}
	if _, err := Static([]Link{{}}, coarseGrid()); err == nil {
		t.Error("nameless link accepted")
	}
	if _, err := Static(links, BiasGrid{VMin: 10, VMax: 5, Step: 1}); err == nil {
		t.Error("inverted grid accepted")
	}
	if _, err := Static(links, BiasGrid{VMin: 0, VMax: 30, Step: 0}); err == nil {
		t.Error("zero step accepted")
	}
	if err := DefaultGrid().Validate(); err != nil {
		t.Error(err)
	}
}

func TestStaticFindsJointOptimum(t *testing.T) {
	links, _ := twoRealLinks(t)
	alloc, err := Static(links, coarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.PerLink) != 2 {
		t.Fatalf("per-link entries = %d", len(alloc.PerLink))
	}
	// Both entries share one bias.
	if alloc.PerLink[0].Vx != alloc.PerLink[1].Vx || alloc.PerLink[0].Vy != alloc.PerLink[1].Vy {
		t.Error("static policy must use a single bias pair")
	}
	if alloc.Sum() <= 0 {
		t.Error("zero aggregate throughput")
	}
}

func TestRoundRobinServesEachOptimally(t *testing.T) {
	links, surf := twoRealLinks(t)
	alloc, err := RoundRobin(links, coarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range alloc.PerLink {
		if math.Abs(la.Share-0.5) > 1e-12 {
			t.Errorf("%s share = %v, want 0.5", la.Name, la.Share)
		}
	}
	// Each link's slot bias should give it at least the static policy's
	// instantaneous throughput (it is the selfish optimum).
	static, err := Static(links, coarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	for i, la := range alloc.PerLink {
		surf.SetBias(la.Vx, la.Vy)
		instant := links[i].Throughput(la.Vx, la.Vy)
		if instant+1 < static.PerLink[i].MeanThroughput {
			t.Errorf("%s selfish bias (%v) worse than joint (%v)",
				la.Name, instant, static.PerLink[i].MeanThroughput)
		}
	}
}

func TestProportionalEqualizesThroughput(t *testing.T) {
	links, _ := twoRealLinks(t)
	alloc, err := Proportional(links, coarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	// Max-min water-filling with per-slot optima equalizes the mean
	// throughputs exactly.
	a, b := alloc.PerLink[0].MeanThroughput, alloc.PerLink[1].MeanThroughput
	if math.Abs(a-b) > 1e-6*(a+b) {
		t.Errorf("proportional shares unequal: %v vs %v", a, b)
	}
	// Shares sum to 1.
	if s := alloc.PerLink[0].Share + alloc.PerLink[1].Share; math.Abs(s-1) > 1e-12 {
		t.Errorf("shares sum to %v", s)
	}
}

func TestFairnessOrdering(t *testing.T) {
	links, _ := twoRealLinks(t)
	ranked, err := Compare(links, coarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("policies = %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Min() > ranked[i-1].Min()+1 {
			t.Errorf("ranking violated: %s(%v) above %s(%v)",
				ranked[i-1].Policy, ranked[i-1].Min(), ranked[i].Policy, ranked[i].Min())
		}
	}
	// A real finding of this model: with log-like rate curves, a −3 dB
	// static compromise usually beats halving the air time, so static
	// frequently tops the fairness ranking on moderately conflicting
	// links. All policies must at least keep both links alive.
	for _, a := range ranked {
		if a.Min() <= 0 {
			t.Errorf("%s starves a link", a.Policy)
		}
	}
}

func TestTimeSharingWinsOnPolarizationCliff(t *testing.T) {
	// When two links need orthogonal rotations and the compromise falls
	// off the PER cliff (zero rate), only time sharing keeps both
	// alive — the §7 polarization-reuse case in its purest form.
	cliff := func(wantHigh bool) func(vx, vy float64) float64 {
		return func(vx, vy float64) float64 {
			if (vx > 15) == wantHigh {
				return 10e6
			}
			return 0
		}
	}
	links := []Link{
		{Name: "needs-high", Throughput: cliff(true)},
		{Name: "needs-low", Throughput: cliff(false)},
	}
	grid := coarseGrid()
	static, err := Static(links, grid)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Proportional(links, grid)
	if err != nil {
		t.Fatal(err)
	}
	if static.Min() != 0 {
		t.Errorf("static should starve one cliff link, min = %v", static.Min())
	}
	if prop.Min() < 4e6 {
		t.Errorf("proportional min = %v, want ≈5e6", prop.Min())
	}
	rr, err := RoundRobin(links, grid)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Min() < 4e6 {
		t.Errorf("round-robin min = %v, want ≈5e6", rr.Min())
	}
}

func TestAllocationAggregates(t *testing.T) {
	a := Allocation{PerLink: []LinkAllocation{
		{MeanThroughput: 10}, {MeanThroughput: 4},
	}}
	if a.Sum() != 14 || a.Min() != 4 {
		t.Errorf("sum/min = %v/%v", a.Sum(), a.Min())
	}
	if (Allocation{}).Min() != 0 {
		t.Error("empty allocation min should be 0")
	}
}

func TestProportionalRejectsDeadLink(t *testing.T) {
	dead := []Link{{Name: "dead", Throughput: func(vx, vy float64) float64 { return 0 }}}
	if _, err := Proportional(dead, coarseGrid()); err == nil {
		t.Error("zero-throughput link accepted")
	}
}
