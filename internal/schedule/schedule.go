// Package schedule implements the paper's §7 future-work direction: when
// several IoT devices with different polarization orientations share one
// LLAMA surface, tuning the rotation becomes a scheduling problem — the
// surface can serve different devices in different time slots
// ("polarization reuse"), or park at a joint compromise.
//
// The scheduler evaluates three policies over a slot horizon:
//
//   - Static: one bias pair for everyone (the best joint setting);
//   - RoundRobin: each link gets its own optimal bias in its slot;
//   - Proportional: slots are allotted to maximize the minimum per-link
//     throughput (max-min fairness via greedy water-filling).
package schedule

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Link is one endpoint pair sharing the surface.
type Link struct {
	// Name labels the link in reports.
	Name string
	// Throughput returns the link's goodput (bit/s) when the surface is
	// biased at (vx, vy). Implementations wrap channel scenes + radio
	// rate adaptation.
	Throughput func(vx, vy float64) float64
}

// Validate reports an error for unusable links.
func (l Link) Validate() error {
	if l.Name == "" {
		return errors.New("schedule: link needs a name")
	}
	if l.Throughput == nil {
		return fmt.Errorf("schedule: link %s has no throughput model", l.Name)
	}
	return nil
}

// BiasGrid enumerates the candidate bias pairs policies search over.
type BiasGrid struct {
	// VMin, VMax bound both axes.
	VMin, VMax float64
	// Step is the grid pitch in volts.
	Step float64
}

// DefaultGrid covers the supply range at 1.5 V pitch.
func DefaultGrid() BiasGrid { return BiasGrid{VMin: 0, VMax: 30, Step: 1.5} }

// Validate reports an error for degenerate grids.
func (g BiasGrid) Validate() error {
	if g.Step <= 0 || g.VMax <= g.VMin {
		return fmt.Errorf("schedule: bad grid [%g,%g] step %g", g.VMin, g.VMax, g.Step)
	}
	return nil
}

// points enumerates the grid.
func (g BiasGrid) points() [][2]float64 {
	var pts [][2]float64
	for vx := g.VMin; vx <= g.VMax+1e-9; vx += g.Step {
		for vy := g.VMin; vy <= g.VMax+1e-9; vy += g.Step {
			pts = append(pts, [2]float64{vx, vy})
		}
	}
	return pts
}

// Allocation is the outcome of a policy: per-link time share, bias
// assignment and resulting mean throughput.
type Allocation struct {
	// Policy names the strategy.
	Policy string
	// PerLink holds each link's outcome, index-aligned with the input.
	PerLink []LinkAllocation
}

// LinkAllocation is one link's share of the schedule.
type LinkAllocation struct {
	// Name mirrors the link name.
	Name string
	// Share is the fraction of slots the link's preferred bias is
	// active.
	Share float64
	// Vx, Vy is the bias used during the link's slots.
	Vx, Vy float64
	// MeanThroughput is the slot-averaged goodput in bit/s.
	MeanThroughput float64
}

// Sum returns the aggregate mean throughput.
func (a Allocation) Sum() float64 {
	var s float64
	for _, l := range a.PerLink {
		s += l.MeanThroughput
	}
	return s
}

// Min returns the worst per-link mean throughput (the fairness metric).
func (a Allocation) Min() float64 {
	m := math.Inf(1)
	for _, l := range a.PerLink {
		if l.MeanThroughput < m {
			m = l.MeanThroughput
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// validateInputs checks the common preconditions.
func validateInputs(links []Link, grid BiasGrid) error {
	if len(links) == 0 {
		return errors.New("schedule: no links")
	}
	for _, l := range links {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return grid.Validate()
}

// Static parks the surface at the single bias pair maximizing the sum
// throughput — no time sharing.
func Static(links []Link, grid BiasGrid) (Allocation, error) {
	if err := validateInputs(links, grid); err != nil {
		return Allocation{}, err
	}
	bestSum := math.Inf(-1)
	var bestBias [2]float64
	var bestTps []float64
	for _, p := range grid.points() {
		var sum float64
		tps := make([]float64, len(links))
		for i, l := range links {
			tps[i] = l.Throughput(p[0], p[1])
			sum += tps[i]
		}
		if sum > bestSum {
			bestSum, bestBias, bestTps = sum, p, tps
		}
	}
	alloc := Allocation{Policy: "static"}
	for i, l := range links {
		alloc.PerLink = append(alloc.PerLink, LinkAllocation{
			Name: l.Name, Share: 1, Vx: bestBias[0], Vy: bestBias[1],
			MeanThroughput: bestTps[i],
		})
	}
	return alloc, nil
}

// perLinkOptima finds each link's selfish best bias and throughput.
func perLinkOptima(links []Link, grid BiasGrid) ([][2]float64, []float64) {
	biases := make([][2]float64, len(links))
	tps := make([]float64, len(links))
	for i := range tps {
		tps[i] = math.Inf(-1)
	}
	for _, p := range grid.points() {
		for i, l := range links {
			if tp := l.Throughput(p[0], p[1]); tp > tps[i] {
				tps[i], biases[i] = tp, p
			}
		}
	}
	return biases, tps
}

// RoundRobin gives every link an equal share of slots at its own optimal
// bias — polarization reuse by time division.
func RoundRobin(links []Link, grid BiasGrid) (Allocation, error) {
	if err := validateInputs(links, grid); err != nil {
		return Allocation{}, err
	}
	biases, tps := perLinkOptima(links, grid)
	share := 1 / float64(len(links))
	alloc := Allocation{Policy: "round-robin"}
	for i, l := range links {
		alloc.PerLink = append(alloc.PerLink, LinkAllocation{
			Name: l.Name, Share: share, Vx: biases[i][0], Vy: biases[i][1],
			MeanThroughput: tps[i] * share,
		})
	}
	return alloc, nil
}

// Proportional allots slot shares to maximize the minimum per-link mean
// throughput: slower links get proportionally more air time (max-min
// water-filling; with each link served at its own optimum, the closed
// form is share_i ∝ 1/tp_i).
func Proportional(links []Link, grid BiasGrid) (Allocation, error) {
	if err := validateInputs(links, grid); err != nil {
		return Allocation{}, err
	}
	biases, tps := perLinkOptima(links, grid)
	var invSum float64
	for _, tp := range tps {
		if tp <= 0 {
			return Allocation{}, fmt.Errorf("schedule: link with zero achievable throughput")
		}
		invSum += 1 / tp
	}
	alloc := Allocation{Policy: "proportional"}
	for i, l := range links {
		share := (1 / tps[i]) / invSum
		alloc.PerLink = append(alloc.PerLink, LinkAllocation{
			Name: l.Name, Share: share, Vx: biases[i][0], Vy: biases[i][1],
			MeanThroughput: tps[i] * share,
		})
	}
	return alloc, nil
}

// Compare runs all three policies and returns them sorted by minimum
// per-link throughput (the fairness ranking).
func Compare(links []Link, grid BiasGrid) ([]Allocation, error) {
	static, err := Static(links, grid)
	if err != nil {
		return nil, err
	}
	rr, err := RoundRobin(links, grid)
	if err != nil {
		return nil, err
	}
	prop, err := Proportional(links, grid)
	if err != nil {
		return nil, err
	}
	out := []Allocation{static, rr, prop}
	sort.Slice(out, func(i, j int) bool { return out[i].Min() > out[j].Min() })
	return out, nil
}
