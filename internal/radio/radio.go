// Package radio models the PHY layer of the commodity protocols LLAMA
// serves: 802.11g Wi-Fi rates and BLE 1M GFSK. It converts the SNR the
// channel package produces into bit error rate, packet error rate and
// effective throughput, quantifying the paper's observation that "an
// increase in the received power usually translates to a throughput
// improvement" (§5 performance-metrics discussion).
//
// The BER models are the standard AWGN closed forms (coherent M-QAM /
// PSK via the Gaussian Q-function, non-coherent GFSK for BLE);
// convolutional coding is approximated by an SNR coding gain, which is
// accurate to within ~1 dB over the packet-error knee — plenty for the
// relative comparisons the experiments make.
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Q returns the Gaussian tail probability Q(x) = 0.5·erfc(x/√2).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// Modulation identifies a constellation.
type Modulation int

// Supported constellations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
	GFSK // BLE's Gaussian FSK
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	case GFSK:
		return "GFSK"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns log2(M).
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case GFSK:
		return 1
	default:
		panic("radio: unknown modulation")
	}
}

// BER returns the uncoded bit error rate at the given per-symbol linear
// SNR (Es/N0) on an AWGN channel.
func (m Modulation) BER(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	switch m {
	case BPSK:
		// Eb/N0 == Es/N0 for BPSK.
		return Q(math.Sqrt(2 * snr))
	case QPSK:
		// Gray-coded QPSK matches BPSK per bit: Es = 2Eb.
		return Q(math.Sqrt(snr))
	case QAM16:
		// Standard Gray-coded M-QAM approximation.
		return qamBER(16, snr)
	case QAM64:
		return qamBER(64, snr)
	case GFSK:
		// Non-coherent binary FSK: 0.5·exp(−Eb/2N0).
		return 0.5 * math.Exp(-snr/2)
	default:
		panic("radio: unknown modulation")
	}
}

// qamBER is the Gray-coded square-QAM bit error approximation:
// (4/log2 M)·(1−1/√M)·Q(√(3·SNR/(M−1))).
func qamBER(m float64, snr float64) float64 {
	k := math.Log2(m)
	arg := math.Sqrt(3 * snr / (m - 1))
	ber := (4 / k) * (1 - 1/math.Sqrt(m)) * Q(arg)
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// Rate is one PHY operating point.
type Rate struct {
	// Name labels the rate ("11g 54M", "BLE 1M").
	Name string
	// Modulation is the constellation.
	Modulation Modulation
	// CodeRate is the FEC rate (1 = uncoded).
	CodeRate float64
	// CodingGainDB approximates the FEC's SNR advantage at the PER knee.
	CodingGainDB float64
	// BitRate is the nominal PHY bit rate in bit/s.
	BitRate float64
}

// Validate reports an error for unusable rates.
func (r Rate) Validate() error {
	switch {
	case r.CodeRate <= 0 || r.CodeRate > 1:
		return fmt.Errorf("radio: %s: code rate %g outside (0,1]", r.Name, r.CodeRate)
	case r.CodingGainDB < 0:
		return fmt.Errorf("radio: %s: negative coding gain", r.Name)
	case r.BitRate <= 0:
		return fmt.Errorf("radio: %s: non-positive bit rate", r.Name)
	}
	return nil
}

// BER returns the effective post-coding bit error rate at linear SNR.
func (r Rate) BER(snr float64) float64 {
	effective := snr * math.Pow(10, r.CodingGainDB/10)
	return r.Modulation.BER(effective)
}

// PER returns the packet error rate for a frame of frameBytes at linear
// SNR, assuming independent residual bit errors.
func (r Rate) PER(snr float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		panic("radio: non-positive frame size")
	}
	ber := r.BER(snr)
	bits := float64(frameBytes * 8)
	// 1 − (1−BER)^bits, computed in log space for tiny BER.
	return -math.Expm1(bits * math.Log1p(-ber))
}

// Throughput returns the expected goodput in bit/s at linear SNR for the
// given frame size: rate × (1 − PER).
func (r Rate) Throughput(snr float64, frameBytes int) float64 {
	return r.BitRate * (1 - r.PER(snr, frameBytes))
}

// WiFi11g is the 802.11g rate set (simplified: the four modulation tiers
// with representative coding).
var WiFi11g = []Rate{
	{Name: "11g 6M", Modulation: BPSK, CodeRate: 0.5, CodingGainDB: 5.0, BitRate: 6e6},
	{Name: "11g 12M", Modulation: QPSK, CodeRate: 0.5, CodingGainDB: 5.0, BitRate: 12e6},
	{Name: "11g 24M", Modulation: QAM16, CodeRate: 0.5, CodingGainDB: 5.0, BitRate: 24e6},
	{Name: "11g 36M", Modulation: QAM16, CodeRate: 0.75, CodingGainDB: 3.5, BitRate: 36e6},
	{Name: "11g 48M", Modulation: QAM64, CodeRate: 0.67, CodingGainDB: 4.0, BitRate: 48e6},
	{Name: "11g 54M", Modulation: QAM64, CodeRate: 0.75, CodingGainDB: 3.5, BitRate: 54e6},
}

// BLE1M is the Bluetooth Low Energy 1 Mbit/s uncoded PHY.
var BLE1M = Rate{Name: "BLE 1M", Modulation: GFSK, CodeRate: 1, CodingGainDB: 0, BitRate: 1e6}

// SelectRate returns the rate from the table with the highest expected
// throughput at the given SNR and frame size — idealized rate adaptation.
// It returns an error for an empty table.
func SelectRate(table []Rate, snr float64, frameBytes int) (Rate, error) {
	if len(table) == 0 {
		return Rate{}, errors.New("radio: empty rate table")
	}
	best := table[0]
	bestTp := best.Throughput(snr, frameBytes)
	for _, r := range table[1:] {
		if tp := r.Throughput(snr, frameBytes); tp > bestTp {
			best, bestTp = r, tp
		}
	}
	return best, nil
}

// AdaptedThroughput returns the throughput of the best rate at SNR.
func AdaptedThroughput(table []Rate, snr float64, frameBytes int) float64 {
	r, err := SelectRate(table, snr, frameBytes)
	if err != nil {
		return 0
	}
	return r.Throughput(snr, frameBytes)
}

// SNRForPER inverts PER: the minimum linear SNR at which the rate meets
// the target packet error rate, found by bisection. It returns an error
// for unreachable targets.
func (r Rate) SNRForPER(target float64, frameBytes int) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("radio: PER target %g outside (0,1)", target)
	}
	lo, hi := 1e-3, 1e8
	if r.PER(hi, frameBytes) > target {
		return 0, fmt.Errorf("radio: %s cannot reach PER %g", r.Name, target)
	}
	for i := 0; i < 200 && hi/lo > 1.0001; i++ {
		mid := math.Sqrt(lo * hi)
		if r.PER(mid, frameBytes) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// RateLadder returns the SNR thresholds (dB) at which each rate in the
// table becomes the throughput-optimal choice, sorted ascending — the
// crossover structure rate adaptation walks as LLAMA improves the link.
func RateLadder(table []Rate, frameBytes int) []float64 {
	var thresholds []float64
	prev := ""
	for db := -10.0; db <= 45; db += 0.1 {
		snr := math.Pow(10, db/10)
		r, err := SelectRate(table, snr, frameBytes)
		if err != nil {
			return nil
		}
		if r.Name != prev {
			if prev != "" {
				thresholds = append(thresholds, db)
			}
			prev = r.Name
		}
	}
	sort.Float64s(thresholds)
	return thresholds
}
