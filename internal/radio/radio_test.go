package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQFunction(t *testing.T) {
	// Textbook values.
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.15866},
		{2, 0.02275},
		{3, 0.00135},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Monotone decreasing.
	if !(Q(0.5) > Q(1.0) && Q(1.0) > Q(2.0)) {
		t.Error("Q not decreasing")
	}
}

func TestModulationStringsAndBits(t *testing.T) {
	cases := map[Modulation]struct {
		name string
		bits int
	}{
		BPSK:  {"BPSK", 1},
		QPSK:  {"QPSK", 2},
		QAM16: {"16-QAM", 4},
		QAM64: {"64-QAM", 6},
		GFSK:  {"GFSK", 1},
	}
	for m, want := range cases {
		if m.String() != want.name {
			t.Errorf("%v name", m)
		}
		if m.BitsPerSymbol() != want.bits {
			t.Errorf("%v bits = %d", m, m.BitsPerSymbol())
		}
	}
}

func TestBERAtZeroSNRIsCoinFlip(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, GFSK} {
		if got := m.BER(0); got != 0.5 {
			t.Errorf("%v BER(0) = %v, want 0.5", m, got)
		}
		if got := m.BER(-1); got != 0.5 {
			t.Errorf("%v BER(<0) = %v, want 0.5", m, got)
		}
	}
}

func TestBERMonotoneDecreasing(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, GFSK} {
		prev := 1.0
		for db := -5.0; db <= 30; db += 1 {
			ber := m.BER(math.Pow(10, db/10))
			if ber > prev+1e-15 {
				t.Errorf("%v BER rises at %v dB", m, db)
			}
			prev = ber
		}
	}
}

func TestDenserConstellationsNeedMoreSNR(t *testing.T) {
	// At a fixed moderate SNR, BER orders BPSK < QPSK < 16QAM < 64QAM.
	snr := math.Pow(10, 12.0/10)
	if !(BPSK.BER(snr) <= QPSK.BER(snr) &&
		QPSK.BER(snr) < QAM16.BER(snr) &&
		QAM16.BER(snr) < QAM64.BER(snr)) {
		t.Errorf("constellation ordering broken: %v %v %v %v",
			BPSK.BER(snr), QPSK.BER(snr), QAM16.BER(snr), QAM64.BER(snr))
	}
}

func TestBPSKKnownValue(t *testing.T) {
	// BPSK at Eb/N0 = 9.6 dB gives BER ≈ 1e-5 (classic benchmark).
	snr := math.Pow(10, 9.6/10)
	ber := BPSK.BER(snr)
	if ber < 0.3e-5 || ber > 3e-5 {
		t.Errorf("BPSK BER(9.6 dB) = %v, want ≈1e-5", ber)
	}
}

func TestRateValidate(t *testing.T) {
	for _, r := range WiFi11g {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	if err := BLE1M.Validate(); err != nil {
		t.Errorf("BLE: %v", err)
	}
	bad := []Rate{
		{Name: "cr0", CodeRate: 0, BitRate: 1e6},
		{Name: "cr2", CodeRate: 2, BitRate: 1e6},
		{Name: "neg", CodeRate: 0.5, CodingGainDB: -1, BitRate: 1e6},
		{Name: "br", CodeRate: 0.5, BitRate: 0},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s accepted", r.Name)
		}
	}
}

func TestPERShape(t *testing.T) {
	r := WiFi11g[0] // 6M BPSK
	// PER → 1 at terrible SNR, → 0 at great SNR, monotone between.
	if got := r.PER(1e-3, 1500); got < 0.99 {
		t.Errorf("PER at -30 dB = %v, want ≈1", got)
	}
	if got := r.PER(1e4, 1500); got > 1e-6 {
		t.Errorf("PER at 40 dB = %v, want ≈0", got)
	}
	prev := 1.1
	for db := -10.0; db <= 30; db += 1 {
		per := r.PER(math.Pow(10, db/10), 1500)
		if per > prev+1e-12 {
			t.Errorf("PER rises at %v dB", db)
		}
		prev = per
	}
	// Bigger frames fail more.
	snr := math.Pow(10, 3.0/10)
	if !(r.PER(snr, 1500) > r.PER(snr, 100)) {
		t.Error("long frames should fail more often")
	}
}

func TestPERPanicsOnBadFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frame size should panic")
		}
	}()
	BLE1M.PER(1, 0)
}

func TestThroughputCeilingAndFloor(t *testing.T) {
	r := WiFi11g[5] // 54M
	if got := r.Throughput(1e6, 1500); math.Abs(got-54e6) > 1e3 {
		t.Errorf("clean-channel throughput = %v", got)
	}
	if got := r.Throughput(1e-3, 1500); got > 1e3 {
		t.Errorf("hopeless-channel throughput = %v", got)
	}
}

func TestSelectRatePrefersFastWhenClean(t *testing.T) {
	r, err := SelectRate(WiFi11g, 1e5, 1500) // 50 dB
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "11g 54M" {
		t.Errorf("clean channel picked %s", r.Name)
	}
	// Weak channel: the robust low rate wins.
	r, err = SelectRate(WiFi11g, math.Pow(10, 2.0/10), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Modulation == QAM64 {
		t.Errorf("weak channel picked %s", r.Name)
	}
	if _, err := SelectRate(nil, 1, 100); err == nil {
		t.Error("empty table accepted")
	}
}

func TestAdaptedThroughputMonotone(t *testing.T) {
	prev := -1.0
	for db := -5.0; db <= 40; db += 1 {
		tp := AdaptedThroughput(WiFi11g, math.Pow(10, db/10), 1500)
		if tp < prev-1 {
			t.Errorf("adapted throughput falls at %v dB: %v after %v", db, tp, prev)
		}
		prev = tp
	}
	if AdaptedThroughput(nil, 10, 100) != 0 {
		t.Error("empty table throughput should be 0")
	}
}

func TestSNRForPERInvertsPER(t *testing.T) {
	for _, r := range []Rate{WiFi11g[0], WiFi11g[5], BLE1M} {
		snr, err := r.SNRForPER(0.1, 1500)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if got := r.PER(snr, 1500); math.Abs(got-0.1) > 0.02 {
			t.Errorf("%s: PER at inverted SNR = %v, want 0.1", r.Name, got)
		}
	}
	if _, err := BLE1M.SNRForPER(0, 100); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := BLE1M.SNRForPER(1, 100); err == nil {
		t.Error("target 1 accepted")
	}
}

func TestRateLadderStructure(t *testing.T) {
	thresholds := RateLadder(WiFi11g, 1500)
	if len(thresholds) < 3 {
		t.Fatalf("ladder has %d crossovers, want several", len(thresholds))
	}
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] <= thresholds[i-1] {
			t.Error("ladder not sorted ascending")
		}
	}
	if RateLadder(nil, 100) != nil {
		t.Error("empty table ladder should be nil")
	}
}

func TestLLAMAGainMovesUpTheLadder(t *testing.T) {
	// The point of it all: a 15 dB link-budget gain moves the rate
	// adaptation several rungs up the ladder.
	frame := 1500
	snrMismatch := math.Pow(10, 6.0/10) // weak mismatched link
	snrFixed := math.Pow(10, 21.0/10)   // after LLAMA's +15 dB
	before, err := SelectRate(WiFi11g, snrMismatch, frame)
	if err != nil {
		t.Fatal(err)
	}
	after, err := SelectRate(WiFi11g, snrFixed, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !(after.BitRate > before.BitRate) {
		t.Errorf("gain did not raise the rate: %s → %s", before.Name, after.Name)
	}
	tpBefore := AdaptedThroughput(WiFi11g, snrMismatch, frame)
	tpAfter := AdaptedThroughput(WiFi11g, snrFixed, frame)
	if tpAfter < 2*tpBefore {
		t.Errorf("throughput gain %vx too small", tpAfter/tpBefore)
	}
}

func TestPERProperty(t *testing.T) {
	// PER ∈ [0,1] for any SNR and frame size.
	f := func(dbRaw float64, frameRaw uint16) bool {
		if math.IsNaN(dbRaw) || math.IsInf(dbRaw, 0) {
			return true
		}
		db := math.Mod(dbRaw, 60)
		frame := int(frameRaw%4096) + 1
		for _, r := range WiFi11g {
			per := r.PER(math.Pow(10, db/10), frame)
			if per < 0 || per > 1 || math.IsNaN(per) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
