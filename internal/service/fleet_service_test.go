package service_test

// Service-level fleet coverage: llama-serve with -fleet-only computes
// nothing itself — external fleet workers drain every job over the
// mounted /fleet/* endpoints — yet the served result is byte-identical
// to llama-bench. Plus the SSE stalled-client regression: a subscriber
// that stops reading without closing its connection must tear the
// stream down within the write timeout, not pin the handler goroutine
// for the run's lifetime.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/fleet"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

// TestFleetOnlyServiceMatchesBench: a fleet-only server grants every
// job to external workers over HTTP and still serves llama-bench bytes.
func TestFleetOnlyServiceMatchesBench(t *testing.T) {
	svc, ts := newServerCfg(t, t.TempDir(), service.Config{
		Fleet: true, FleetOnly: true, FleetTTL: 2 * time.Second,
	})
	want := benchBytes(t, experiments.Options{
		IDs: []string{"fig2a", "tab1"}, Seeds: []int64{1, 2}, Concurrency: 1,
	}, "csv")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Client: &fleet.Client{Base: ts.URL},
			Name:   fmt.Sprintf("svc-w%d", i),
			Poll:   5 * time.Millisecond,
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Run(ctx) }()
	}
	defer wg.Wait()
	defer cancel()

	id := submit(t, ts.URL, `{"ids":["fig2a","tab1"],"seeds":[1,2],"shard_rows":true}`)
	awaitStatus(t, ts.URL, id, service.StatusDone)
	code, got, _ := fetchResult(t, ts.URL, id, "csv")
	if code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	if got != want {
		t.Error("fleet-only served CSV differs from llama-bench bytes")
	}
	if st := svc.Fleet().Stats(); st.Completed == 0 {
		t.Errorf("fleet stats %+v: external workers completed nothing", st)
	}
}

// stallWriter is an SSE subscriber that stops reading: every Write
// blocks until the handler's write deadline (set via the
// http.ResponseController path) fires, then fails like a timed-out
// socket. If the handler never sets a deadline, writes block for the
// full fallback — the pre-fix behavior this test pins down.
type stallWriter struct {
	mu       sync.Mutex
	deadline time.Time
	header   http.Header
}

func (w *stallWriter) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *stallWriter) WriteHeader(int) {}

func (w *stallWriter) Flush() {}

func (w *stallWriter) SetWriteDeadline(d time.Time) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.deadline = d
	return nil
}

func (w *stallWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	d := w.deadline
	w.mu.Unlock()
	wait := 30 * time.Second // no deadline set: stall "forever"
	if !d.IsZero() {
		wait = time.Until(d)
	}
	if wait > 0 {
		time.Sleep(wait)
	}
	if d.IsZero() {
		return len(p), nil
	}
	return 0, os.ErrDeadlineExceeded
}

// TestEventsStalledClient: an events subscriber whose connection
// stalls (never reads, never closes) is torn down within the write
// timeout instead of pinning the handler for the run's lifetime.
func TestEventsStalledClient(t *testing.T) {
	svc, ts := newServerCfg(t, t.TempDir(), service.Config{
		Workers:           1,
		EventPoll:         10 * time.Millisecond,
		EventWriteTimeout: 50 * time.Millisecond,
	})
	// svc-block parks the run: without the write deadline the stream
	// would sit in Write until the run ends — which is never.
	id := submit(t, ts.URL, `{"ids":["svc-block"],"seeds":[1]}`)
	t.Cleanup(func() {
		// Cancel the parked run and drain the service so its background
		// record writes quiesce before TempDir removal.
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodGet, "/runs/"+id+"/events", nil)
		svc.ServeHTTP(&stallWriter{}, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("events handler still pinned by a stalled client after 5s")
	}
}

// TestEventsKeepaliveOnQuietStream: a healthy but idle run still
// produces traffic (comment keepalives) so stall detection has writes
// to time out on; data frames remain exactly the status/progress set.
func TestEventsKeepaliveOnQuietStream(t *testing.T) {
	svc, ts := newServerCfg(t, t.TempDir(), service.Config{
		Workers:   1,
		EventPoll: 10 * time.Millisecond,
	})
	t.Cleanup(func() {
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	id := submit(t, ts.URL, `{"ids":["svc-block"],"seeds":[1]}`)
	resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Let several quiet ticks pass, then cancel the run to end the
	// stream; the parked point returns promptly on cancellation.
	time.Sleep(100 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	evs := readSSE(t, resp.Body)
	if len(evs) == 0 {
		t.Fatal("no events before stream end")
	}
	for _, ev := range evs {
		if ev.name != "status" && ev.name != "progress" {
			t.Errorf("unexpected event %q (keepalives must be comments, not frames)", ev.name)
		}
	}
	last := evs[len(evs)-1]
	if last.name != "status" || !strings.Contains(last.data, service.StatusCancelled) {
		t.Errorf("stream ended on %s %q, want terminal cancelled status", last.name, last.data)
	}
}

// TestFleetOnlyRequiresFleet: the config guard mirrors the CLI's.
func TestFleetOnlyRequiresFleet(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := service.New(service.Config{Store: st, FleetOnly: true}); err == nil || !strings.Contains(err.Error(), "Fleet") {
		t.Fatalf("New(FleetOnly without Fleet) = %v, want config error", err)
	}
}
