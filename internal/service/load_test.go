package service_test

// TestSustainedLoad is the sustained-traffic smoke the hardening work
// is judged by: hundreds of concurrent client sessions hammering a
// 2-worker server with the full lifecycle — submit (retrying 429s),
// poll or stream events, fetch and verify result bytes, delete — while
// the test asserts the server's resources stay bounded: goroutines
// settle back to baseline, the cell directory never grows past the
// distinct (experiment, seed) pairs in play, nobody starves, and every
// result byte equals llama-bench's stdout for the same spec
// (invariants 7 and 8). Afterwards a full delete + GC drains the store
// to empty. Run under -race in CI; skipped with -short.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

// loadSpec pairs a submission body with its llama-bench reference.
type loadSpec struct {
	body string
	ids  []string
	seed []int64
}

func TestSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load smoke skipped in -short mode")
	}
	const sessions = 200
	const workers = 2
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	svc, ts := newServerCfg(t, dir, service.Config{
		Workers:   workers,
		MaxQueued: 24,
		Retention: time.Nanosecond,
		EventPoll: 5 * time.Millisecond,
	})

	// Six specs over five distinct (experiment, seed) cells: the store
	// must converge to those five files no matter how many of the 200
	// sessions run each spec.
	specs := []loadSpec{
		{`{"ids":["fig2a"],"seeds":[1]}`, []string{"fig2a"}, []int64{1}},
		{`{"ids":["tab1"],"seeds":[1]}`, []string{"tab1"}, []int64{1}},
		{`{"ids":["fig2a"],"seeds":[2]}`, []string{"fig2a"}, []int64{2}},
		{`{"ids":["fig2a","tab1"],"seeds":[1]}`, []string{"fig2a", "tab1"}, []int64{1}},
		{`{"ids":["tab1"],"seeds":[1,2]}`, []string{"tab1"}, []int64{1, 2}},
		{`{"ids":["fig2b"],"seeds":[1]}`, []string{"fig2b"}, []int64{1}},
	}
	const distinctCells = 5
	want := make([]string, len(specs))
	for i, sp := range specs {
		want[i] = benchBytes(t, experiments.Options{IDs: sp.ids, Seeds: sp.seed, Concurrency: 1}, "csv")
	}

	// submitRetry honours admission control: 429s carry Retry-After and
	// are retried (with a capped sleep so the test stays fast).
	submitRetry := func(body string) (string, error) {
		for {
			resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
			if err != nil {
				return "", err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated:
				var got struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(raw, &got); err != nil || got.ID == "" {
					return "", fmt.Errorf("submit response %q: %v", raw, err)
				}
				return got.ID, nil
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					return "", fmt.Errorf("429 without Retry-After")
				}
				time.Sleep(10 * time.Millisecond)
			default:
				return "", fmt.Errorf("submit: code %d body %s", resp.StatusCode, raw)
			}
		}
	}
	pollDone := func(id string) error {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/runs/" + id)
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var got struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(raw, &got); err != nil {
				return fmt.Errorf("status %q: %v", raw, err)
			}
			switch {
			case got.Status == service.StatusDone:
				return nil
			case got.Status != service.StatusRunning:
				return fmt.Errorf("run %s ended %s", id, got.Status)
			case time.Now().After(deadline):
				return fmt.Errorf("run %s starved (still running)", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	streamDone := func(id string) error {
		resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		evs := readSSE(t, resp.Body)
		if len(evs) == 0 {
			return fmt.Errorf("run %s: empty event stream", id)
		}
		var last struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(evs[len(evs)-1].data), &last); err != nil {
			return fmt.Errorf("run %s terminal frame %q: %v", id, evs[len(evs)-1].data, err)
		}
		if last.Status != service.StatusDone {
			return fmt.Errorf("run %s stream ended %s", id, last.Status)
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := i % len(specs)
			id, err := submitRetry(specs[sp].body)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			// Even sessions poll, odd sessions consume the event stream.
			if i%2 == 0 {
				err = pollDone(id)
			} else {
				err = streamDone(id)
			}
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			code, body, _ := fetchResult(t, ts.URL, id, "csv")
			if code != http.StatusOK {
				errs <- fmt.Errorf("session %d: result code %d", i, code)
				return
			}
			if body != want[sp] {
				errs <- fmt.Errorf("session %d: result bytes differ from llama-bench for spec %d", i, sp)
				return
			}
			if i%3 == 0 {
				if code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusNoContent {
					errs <- fmt.Errorf("session %d: delete code %d body %s", i, code, raw)
				}
			}
		}(i)
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(90 * time.Second):
		t.Fatalf("sessions starved: %d goroutines still live after 90s", runtime.NumGoroutine())
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Disk stays bounded: however many of the 200 runs computed or
	// reused them, only the distinct cells exist.
	cells, err := filepath.Glob(filepath.Join(dir, "cells", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) > distinctCells {
		t.Errorf("cell directory grew to %d files, want ≤ %d", len(cells), distinctCells)
	}

	// Full drain: delete every remaining run, then GC — the store must
	// empty out completely.
	var list struct {
		Runs []struct {
			ID string `json:"id"`
		} `json:"runs"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/runs", "", &list); code != http.StatusOK {
		t.Fatalf("listing runs: code %d body %s", code, raw)
	}
	for _, rn := range list.Runs {
		if code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+rn.ID, "", nil); code != http.StatusNoContent {
			t.Errorf("draining %s: code %d body %s", rn.ID, code, raw)
		}
	}
	var gc store.GCResult
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/admin/gc", "", &gc); code != http.StatusOK {
		t.Fatalf("POST /admin/gc: code %d body %s", code, raw)
	}
	if gc.Kept != 0 {
		t.Errorf("gc after full drain kept %d cells: %+v", gc.Kept, gc)
	}
	if cells, _ := filepath.Glob(filepath.Join(dir, "cells", "*")); len(cells) != 0 {
		t.Errorf("%d cell files survived the drain+gc", len(cells))
	}
	if recs, _ := os.ReadDir(filepath.Join(dir, "runs")); len(recs) != 0 {
		t.Errorf("%d run records survived the drain", len(recs))
	}

	// Goroutines settle back to baseline (+ the pool and a little HTTP
	// slack) once the churn is over.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+workers+16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d now=%d — sustained traffic leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = svc
}
