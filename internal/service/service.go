// Package service is the long-lived experiment service behind
// cmd/llama-serve: an HTTP/JSON front over the experiments Scheduler
// with the durable results store as its backend. It turns the one-shot
// CLI shape into the networked-service shape the software-defined
// metasurface literature assumes — submit a run, poll its status, fetch
// its tables — while keeping the repository's determinism contract: the
// bytes served for a completed run are identical to what llama-bench
// prints for the same spec, including after a server restart, because
// results are always reconstructed from the store's cell records
// (determinism invariant 7 in ARCHITECTURE.md).
//
// Endpoints:
//
//	POST   /runs                     submit {ids, seeds, shard_rows, batch_rows, resume}
//	GET    /runs                     list runs
//	GET    /runs/{id}                status + progress
//	GET    /runs/{id}/events         live status/progress stream (server-sent events)
//	GET    /runs/{id}/result?format= fetch tables (csv, json or text; default csv)
//	DELETE /runs/{id}                cancel a live run / delete a finished run's record
//	POST   /admin/gc                 drop cells unreferenced by any run and older than the retention window
//	GET    /healthz                  liveness + run counts (503 once draining)
//
// The server is built for sustained traffic: submissions beyond
// Config.MaxQueued are refused with 429 + Retry-After instead of
// queueing without bound, result reconstruction rides the scheduler's
// priority lane so it never waits behind live compute, and run-record
// writes are sequence-versioned so a DELETE can never be undone by an
// in-flight watcher write (determinism invariant 8: lifecycle traffic
// never changes result bytes).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/fleet"
	"github.com/llama-surface/llama/internal/store"
)

// Run lifecycle states persisted in store.RunRecord.Status.
const (
	// StatusRunning marks a run whose jobs are queued or executing.
	StatusRunning = "running"
	// StatusDone marks a run that completed; its result is servable.
	StatusDone = "done"
	// StatusFailed marks a run whose engine reported an error.
	StatusFailed = "failed"
	// StatusCancelled marks a run stopped by DELETE or server shutdown;
	// its completed cells persist in the store.
	StatusCancelled = "cancelled"
	// StatusInterrupted marks a run found mid-flight when the server
	// restarted: its completed cells are in the store, so re-submitting
	// the same spec resumes instead of recomputing.
	StatusInterrupted = "interrupted"
)

// Config assembles a Server.
type Config struct {
	// Store is the durable backend for cell results and run records.
	// Required.
	Store *store.Store
	// Workers bounds the scheduler pool shared by every run; ≤0 means
	// GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives operational log lines (submissions,
	// completions, persistence failures). nil discards them.
	Logf func(format string, args ...any)
	// Now supplies run-record timestamps; nil means time.Now. Tests pin
	// it for stable records.
	Now func() time.Time
	// MaxQueued bounds the submissions in flight (queued + executing)
	// at once; further POST /runs get 429 + Retry-After until one
	// finishes. ≤0 means unbounded.
	MaxQueued int
	// Retention is the POST /admin/gc policy: cells unreferenced by any
	// run record and older than this are removed. ≤0 disables GC (the
	// endpoint answers 409).
	Retention time.Duration
	// EventPoll is the sampling interval for /runs/{id}/events progress
	// frames; ≤0 means 200ms. Terminal transitions are pushed promptly
	// regardless.
	EventPoll time.Duration
	// EventWriteTimeout bounds each /runs/{id}/events frame write: a
	// client that stops reading for this long has its stream torn down
	// instead of pinning the handler goroutine forever. ≤0 means 10s.
	EventWriteTimeout time.Duration
	// Fleet mounts the distributed-worker endpoints (/fleet/lease,
	// /fleet/heartbeat, /fleet/complete, /fleet/stats): llama-worker
	// processes lease shard jobs from this server and post rows back.
	// Results stay byte-identical to a single-process run for any fleet
	// size or failure schedule (determinism invariant 9).
	Fleet bool
	// FleetTTL is the lease heartbeat deadline; a worker silent for this
	// long loses its lease and the job is reassigned. ≤0 means 10s.
	// Ignored unless Fleet is set.
	FleetTTL time.Duration
	// FleetOnly starts no local compute workers: every job is executed
	// by fleet workers, and the server spends its CPU on serving.
	// Requires Fleet.
	FleetOnly bool
}

// Server is the HTTP service: one shared Scheduler, one Store, and the
// run registry mapping IDs to live handles and durable records. It
// implements http.Handler.
type Server struct {
	st         *store.Store
	sched      *experiments.Scheduler
	mux        *http.ServeMux
	logf       func(format string, args ...any)
	now        func() time.Time
	maxQueued  int
	retention  time.Duration
	eventPoll  time.Duration
	eventWrite time.Duration

	// fleetc is the lease coordinator when Config.Fleet is set; reapStop
	// ends its periodic expiry sweep. The coordinator runs on the real
	// clock even when Config.Now is pinned: lease deadlines police live
	// worker processes, not record timestamps.
	fleetc   *fleet.Coordinator
	reapStop chan struct{}
	reapDone chan struct{}

	mu       sync.Mutex
	runs     map[string]*run
	nextID   int
	live     int // submissions in flight, bounded by maxQueued
	closed   bool
	watchers sync.WaitGroup
}

// run is one submission's service-side state: the durable record plus,
// while the server that accepted it is alive, the live handle. Results
// are never cached in memory — every result request reconstructs the
// report from the store (see reportFor), so a long-lived server's
// footprint is bounded by the runs in flight, not the runs it has ever
// served.
//
// Record writes are ordered by (seq, persisted, deleted), all guarded
// by the server mutex: every in-memory mutation bumps seq, persistRun
// writes only when seq is ahead of persisted, and deleted is a
// tombstone no later write may cross. persistMu serializes the disk
// writes themselves (and DELETE's removal) without holding the server
// mutex across I/O. Without this ordering a DELETE racing the
// watcher's terminal write resurrects the record on disk.
type run struct {
	rec    *store.RunRecord
	handle *experiments.RunHandle

	seq       int
	persisted int
	deleted   bool
	persistMu sync.Mutex
	// finished is closed when the run reaches a terminal status, so
	// event streams push the final frame promptly instead of waiting
	// out a poll tick.
	finished chan struct{}
}

// New builds a Server over cfg.Store, re-listing every run the store
// remembers. Runs recorded as running belong to a previous process —
// they are marked interrupted (their completed cells are already in the
// store, so re-submitting the same spec resumes rather than
// recomputes). Close the server with Shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	if cfg.FleetOnly && !cfg.Fleet {
		return nil, errors.New("service: Config.FleetOnly requires Config.Fleet")
	}
	s := &Server{
		st: cfg.Store,
		sched: experiments.NewScheduler(experiments.SchedulerConfig{
			Workers: cfg.Workers, Store: cfg.Store, LeaseOnly: cfg.FleetOnly,
		}),
		logf:       cfg.Logf,
		now:        cfg.Now,
		maxQueued:  cfg.MaxQueued,
		retention:  cfg.Retention,
		eventPoll:  cfg.EventPoll,
		eventWrite: cfg.EventWriteTimeout,
		runs:       make(map[string]*run),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.eventPoll <= 0 {
		s.eventPoll = 200 * time.Millisecond
	}
	if s.eventWrite <= 0 {
		s.eventWrite = 10 * time.Second
	}
	if cfg.Fleet {
		var err error
		s.fleetc, err = fleet.NewCoordinator(fleet.Config{
			Sched: s.sched, TTL: cfg.FleetTTL, Logf: s.logf,
		})
		if err != nil {
			s.sched.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	recs, err := cfg.Store.ListRuns()
	if err != nil {
		s.sched.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	// Every re-listed run is terminal (running ones were just marked
	// interrupted), so their finished channels start closed and their
	// on-disk records are already current (persisted == seq).
	relisted := make(chan struct{})
	close(relisted)
	for _, rec := range recs {
		if rec.Status == StatusRunning {
			rec.Status = StatusInterrupted
			rec.Error = "server stopped while the run was in flight; completed cells persist — resubmit the spec to resume"
			if err := cfg.Store.PutRun(rec); err != nil {
				s.logf("service: marking %s interrupted: %v", rec.ID, err)
			}
		}
		s.runs[rec.ID] = &run{rec: rec, seq: 1, persisted: 1, finished: relisted}
		if n := runNumber(rec.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /runs/{id}", s.handleDelete)
	mux.HandleFunc("POST /admin/gc", s.handleGC)
	if s.fleetc != nil {
		// The fleet handler's patterns already carry the /fleet prefix.
		mux.Handle("/fleet/", fleet.Handler(s.fleetc))
		// Expiry is otherwise checked lazily on fleet calls; the periodic
		// sweep guarantees a dead fleet's leases still requeue (and local
		// workers pick them up) even when no worker ever calls again.
		s.reapStop = make(chan struct{})
		s.reapDone = make(chan struct{})
		go s.reapLeases()
	}
	s.mux = mux
	return s, nil
}

// reapLeases expires overdue fleet leases on a timer until Shutdown.
func (s *Server) reapLeases() {
	defer close(s.reapDone)
	period := s.fleetc.TTL() / 2
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			s.fleetc.Reap()
		}
	}
}

// Fleet returns the lease coordinator, nil unless Config.Fleet was
// set. Tests and operators use it for stats.
func (s *Server) Fleet() *fleet.Coordinator { return s.fleetc }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: no new submissions are accepted, every
// live run is cancelled (the scheduler persists their completed cells —
// the salvage path), run records are updated, and the worker pool is
// released. It returns ctx.Err() if the drain outlives ctx. The HTTP
// listener itself is the caller's to stop (http.Server.Shutdown) before
// calling this.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var live []*experiments.RunHandle
	for _, rn := range s.runs {
		if rn.handle != nil {
			live = append(live, rn.handle)
		}
	}
	s.mu.Unlock()
	if s.fleetc != nil {
		close(s.reapStop)
		<-s.reapDone
		s.fleetc.Close() // outstanding leases requeue, then cancellation settles them
	}
	for _, h := range live {
		h.Cancel()
	}
	done := make(chan struct{})
	go func() {
		s.watchers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.sched.Close()
	return s.st.Sync()
}

// runNumber parses the numeric suffix of a "run-N" ID, -1 otherwise.
func runNumber(id string) int {
	rest, ok := strings.CutPrefix(id, "run-")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// submitRequest is the POST /runs body. Zero values mean: every
// registered experiment, seed {1}, unsharded, store reuse on.
type submitRequest struct {
	IDs       []string `json:"ids,omitempty"`
	Seeds     []int64  `json:"seeds,omitempty"`
	ShardRows bool     `json:"shard_rows,omitempty"`
	BatchRows int      `json:"batch_rows,omitempty"`
	// Resume defaults to true: the service exists to reuse the store.
	// Outputs are bit-identical either way (invariant 6), so disabling
	// it only forces recomputation.
	Resume *bool `json:"resume,omitempty"`
}

// runStatus is the status JSON served for one run.
type runStatus struct {
	ID             string        `json:"id"`
	Status         string        `json:"status"`
	Spec           store.RunSpec `json:"spec"`
	Error          string        `json:"error,omitempty"`
	Progress       *progressJSON `json:"progress,omitempty"`
	ReusedCells    int           `json:"reused_cells,omitempty"`
	ComputedCells  int           `json:"computed_cells,omitempty"`
	CreatedUnixNs  int64         `json:"created_unix_ns"`
	FinishedUnixNs int64         `json:"finished_unix_ns,omitempty"`
	ResultURL      string        `json:"result_url,omitempty"`
}

// progressJSON is the live job-slot progress of a running submission.
type progressJSON struct {
	TotalJobs int `json:"total_jobs"`
	DoneJobs  int `json:"done_jobs"`
}

// handleSubmit accepts a run spec, records it, and submits it to the
// shared scheduler. Admission is bounded: when Config.MaxQueued
// submissions are already in flight, the request is refused with 429 +
// Retry-After instead of queueing without bound.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds the 1 MiB limit")
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	spec := experiments.RunSpec{
		IDs:       req.IDs,
		Seeds:     req.Seeds,
		ShardRows: req.ShardRows,
		BatchRows: req.BatchRows,
		Resume:    req.Resume == nil || *req.Resume,
	}
	// Reserve an admission slot before touching the scheduler so the
	// in-flight bound can never be overshot by concurrent submitters.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.maxQueued > 0 && s.live >= s.maxQueued {
		n := s.live
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d submissions already in flight (limit %d); retry shortly", n, s.maxQueued))
		return
	}
	s.live++
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
	}
	// Submissions live on the server's lifetime, not the request's: the
	// response returns immediately while the run executes, so the run
	// must not die with the POST context.
	//lint:allow context runs outlive their POST request by design; Shutdown cancels them through the scheduler, not a request context
	handle, err := s.sched.Submit(context.Background(), spec)
	if err != nil {
		release()
		if errors.Is(err, experiments.ErrSchedulerClosed) {
			writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// The submission raced Shutdown past the admission check. Cancel
		// AND drain it so nothing outlives the 503 — Shutdown's snapshot
		// of live handles was already taken, so nobody else will wait
		// this one out.
		handle.Cancel()
		<-handle.Done()
		release()
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	id := fmt.Sprintf("run-%06d", s.nextID)
	s.nextID++
	norm := handle.Spec()
	rec := &store.RunRecord{
		ID: id,
		Spec: store.RunSpec{
			IDs: norm.IDs, Seeds: norm.Seeds,
			ShardRows: norm.ShardRows, BatchRows: norm.BatchRows, Resume: norm.Resume,
		},
		Status:        StatusRunning,
		CreatedUnixNs: s.now().UnixNano(),
	}
	rn := &run{rec: rec, handle: handle, seq: 1, finished: make(chan struct{})}
	s.runs[id] = rn
	s.watchers.Add(1)
	s.mu.Unlock()
	// The initial record lands on disk before the watcher starts, so the
	// watcher's terminal write (seq 2) is always ordered after it.
	s.persistRun(rn)
	go s.watch(rn)
	s.logf("service: %s submitted (%d experiments × %d seeds)", id, len(norm.IDs), len(norm.Seeds))
	w.Header().Set("Location", "/runs/"+id)
	writeJSON(w, http.StatusCreated, s.runStatusOf(rn))
}

// persistRun writes rn's record to the store iff its in-memory state is
// ahead of what is on disk and the run has not been deleted. persistMu
// serializes writers per run; the seq/persisted pair makes each write
// at-most-once per mutation; the deleted tombstone (checked under the
// same mutex that sets it) guarantees no write starts after DELETE has
// removed the record — and DELETE in turn takes persistMu before
// removing, so it also cannot overtake a write already in flight.
func (s *Server) persistRun(rn *run) {
	rn.persistMu.Lock()
	defer rn.persistMu.Unlock()
	s.mu.Lock()
	if rn.deleted || rn.seq <= rn.persisted {
		s.mu.Unlock()
		return
	}
	seq := rn.seq
	cp := *rn.rec
	s.mu.Unlock()
	if err := s.st.PutRun(&cp); err != nil {
		// The run still executes and its cells still persist; only the
		// run-level metadata is at risk. Say so rather than killing the
		// submission. persisted still advances: a failed write is not
		// retried until the next mutation bumps seq.
		s.logf("service: persisting run record %s: %v", cp.ID, err)
	}
	s.mu.Lock()
	rn.rec.Path = cp.Path
	if seq > rn.persisted {
		rn.persisted = seq
	}
	s.mu.Unlock()
}

// watch waits for one submission to finish, then updates its durable
// record and releases the run's admission slot. The terminal write
// goes through persistRun, so it is ordered against the initial write
// and suppressed entirely if the run was deleted in the meantime.
func (s *Server) watch(rn *run) {
	defer s.watchers.Done()
	rep, err := rn.handle.Report()
	s.mu.Lock()
	rec := rn.rec
	rec.FinishedUnixNs = s.now().UnixNano()
	switch {
	case err == nil:
		rec.Status = StatusDone
	case errors.Is(err, context.Canceled):
		rec.Status = StatusCancelled
		rec.Error = err.Error()
	default:
		rec.Status = StatusFailed
		rec.Error = err.Error()
	}
	if rep != nil {
		rec.ReusedCells = rep.ReusedCells
		rec.ComputedCells = rep.ComputedCells
	}
	rn.seq++
	s.live--
	id, status := rec.ID, rec.Status
	s.mu.Unlock()
	close(rn.finished)
	s.persistRun(rn)
	if serr := s.st.Sync(); serr != nil {
		s.logf("service: syncing store: %v", serr)
	}
	s.logf("service: %s %s", id, status)
}

// runStatusOf builds the status JSON for one run (locks internally).
func (s *Server) runStatusOf(rn *run) runStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := rn.rec
	st := runStatus{
		ID:             rec.ID,
		Status:         rec.Status,
		Spec:           rec.Spec,
		Error:          rec.Error,
		ReusedCells:    rec.ReusedCells,
		ComputedCells:  rec.ComputedCells,
		CreatedUnixNs:  rec.CreatedUnixNs,
		FinishedUnixNs: rec.FinishedUnixNs,
	}
	if rec.Status == StatusDone {
		st.ResultURL = "/runs/" + rec.ID + "/result"
	}
	if rn.handle != nil && rec.Status == StatusRunning {
		p := rn.handle.Progress()
		st.Progress = &progressJSON{TotalJobs: p.TotalJobs, DoneJobs: p.DoneJobs}
	}
	return st
}

// lookup resolves a run ID, or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*run, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	rn, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no run %q", id))
		return nil, false
	}
	return rn, true
}

// handleList serves every known run's status, sorted by ID.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]runStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		rn := s.runs[id]
		s.mu.Unlock()
		if rn != nil {
			out = append(out, s.runStatusOf(rn))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// handleStatus serves one run's status and live progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.runStatusOf(rn))
}

// handleResult serves a completed run's tables. The bytes are exactly
// what llama-bench prints for the same spec — both render through
// Report.WriteTables — and a restarted server reconstructs the report
// from the store's cell records, so the bytes survive restarts too
// (invariant 7).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	var contentType string
	switch format {
	case "csv":
		contentType = "text/csv; charset=utf-8"
	case "json":
		contentType = "application/json"
	case "text":
		contentType = "text/plain; charset=utf-8"
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want csv, json or text)", format))
		return
	}
	s.mu.Lock()
	status := rn.rec.Status
	s.mu.Unlock()
	if status != StatusDone {
		writeErr(w, http.StatusConflict, fmt.Sprintf("run %s is %s; results are served once it is done", rn.rec.ID, status))
		return
	}
	rep, err := s.reportFor(r.Context(), rn)
	if err != nil {
		if errors.Is(err, experiments.ErrSchedulerClosed) {
			writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		writeErr(w, http.StatusInternalServerError, fmt.Sprintf("reloading %s from the store: %v", rn.rec.ID, err))
		return
	}
	// Render to a buffer first so a mid-render failure becomes a clean
	// error response instead of a torn body.
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, format); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// reportFor reconstructs the run's report from the store through the
// scheduler, forcing Resume: every cell of a done run is already
// persisted, so the engine decodes rather than recomputes, and
// invariant 6 makes the reconstructed bytes identical to the original
// run's — whether this process computed the run or inherited it across
// a restart. Rebuilding per request (instead of caching reports in
// memory) keeps a long-lived server's footprint bounded; the store IS
// the result cache. The reconstruction rides the scheduler's priority
// lane: fully-persisted runs decode without touching the worker pool,
// so a result fetch returns promptly even when the pool is saturated
// with live compute.
func (s *Server) reportFor(ctx context.Context, rn *run) (*experiments.Report, error) {
	s.mu.Lock()
	spec := rn.rec.Spec
	s.mu.Unlock()
	handle, err := s.sched.SubmitPriority(ctx, experiments.RunSpec{
		IDs: spec.IDs, Seeds: spec.Seeds,
		ShardRows: spec.ShardRows, BatchRows: spec.BatchRows,
		Resume: true,
	})
	if err != nil {
		return nil, err
	}
	return handle.Report()
}

// handleDelete cancels a live run (202; its record then reads
// cancelled, with completed cells persisted) or deletes a finished
// run's record (204; cell records stay, they are shared across runs).
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	if rn.deleted {
		// A concurrent DELETE won the race after our lookup.
		id := rn.rec.ID
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no run %q", id))
		return
	}
	live := rn.handle != nil && rn.rec.Status == StatusRunning
	id := rn.rec.ID
	if !live {
		// Tombstone under the same lock that guards seq/persisted: any
		// persistRun from here on is a no-op, so the record cannot be
		// resurrected after removal.
		rn.deleted = true
		delete(s.runs, id)
	}
	s.mu.Unlock()
	if live {
		rn.handle.Cancel()
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "status": "cancelling"})
		return
	}
	// persistMu orders the removal after any record write already in
	// flight (the tombstone stops all later ones).
	rn.persistMu.Lock()
	err := s.st.DeleteRun(id)
	rn.persistMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.logf("service: %s deleted", id)
	w.WriteHeader(http.StatusNoContent)
}

// handleHealthz is the liveness probe: the run registry's size doubles
// as a cheap functional check that the store was listable at startup.
// Once Shutdown begins the probe answers 503 — load balancers key on
// the status code, and a draining server must stop receiving traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.runs)
	closed := s.closed
	s.mu.Unlock()
	code := http.StatusOK
	if closed {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ok": !closed, "runs": n, "store": s.st.Dir()})
}

// handleGC removes cells unreferenced by any run record and older than
// the configured retention window (Config.Retention / llama-serve
// -retention). Referenced and recent cells always survive, so GC never
// changes the bytes any listed run serves (invariant 8).
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	if s.retention <= 0 {
		writeErr(w, http.StatusConflict, "gc is disabled: start the server with a retention window (llama-serve -retention)")
		return
	}
	res, err := s.st.GC(store.GCPolicy{MinAge: s.retention, Now: s.now()})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.logf("service: gc removed %d/%d cells (%d bytes)", res.Removed, res.Scanned, res.RemovedBytes)
	writeJSON(w, http.StatusOK, res)
}

// terminalStatus reports whether a run can no longer change status.
func terminalStatus(status string) bool { return status != StatusRunning }

// handleEvents streams one run's lifecycle as server-sent events: a
// "status" frame immediately and on every status change (including a
// prompt terminal frame via the run's finished channel), a "progress"
// frame whenever the sampled job counters move, and an SSE comment as
// keepalive on quiet ticks. Every write carries a deadline
// (Config.EventWriteTimeout) — the keepalives guarantee a write
// happens each poll tick, so a client that stalls without closing its
// connection tears the stream down within timeout+poll instead of
// pinning this goroutine for the run's lifetime. The stream ends with
// the terminal status frame, when the client goes away, or on the
// first failed write.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if _, ok := w.(http.Flusher); !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Deadlines use the wall clock even when s.now is pinned: they bound
	// real network writes, not record timestamps. A transport that cannot
	// set deadlines (ErrNotSupported) still streams, it just keeps the
	// old unbounded behavior.
	rc := http.NewResponseController(w)
	push := func(frame []byte) error {
		if err := rc.SetWriteDeadline(time.Now().Add(s.eventWrite)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return err
		}
		return rc.Flush()
	}
	writeEvent := func(event string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return nil // unserializable frame: skip it, keep the stream
		}
		return push(fmt.Appendf(nil, "event: %s\ndata: %s\n\n", event, data))
	}
	cur := s.runStatusOf(rn)
	if writeEvent("status", cur) != nil || terminalStatus(cur.Status) {
		return
	}
	lastStatus := cur.Status
	lastDone := -1
	if cur.Progress != nil {
		lastDone = cur.Progress.DoneJobs
	}
	ticker := time.NewTicker(s.eventPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-rn.finished:
			_ = writeEvent("status", s.runStatusOf(rn))
			return
		case <-ticker.C:
			cur = s.runStatusOf(rn)
			switch {
			case cur.Status != lastStatus:
				lastStatus = cur.Status
				if writeEvent("status", cur) != nil || terminalStatus(cur.Status) {
					return
				}
			case cur.Progress != nil && cur.Progress.DoneJobs != lastDone:
				lastDone = cur.Progress.DoneJobs
				if writeEvent("progress", cur.Progress) != nil {
					return
				}
			default:
				if push([]byte(": keepalive\n\n")) != nil {
					return
				}
			}
		}
	}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits one JSON error response.
func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
