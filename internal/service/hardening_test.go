package service_test

// Sustained-traffic hardening coverage: the /events stream, admission
// control (429 + Retry-After), the scheduler's round-robin fairness
// and priority lane, result promptness under a saturated pool, and the
// GC endpoint. Run under -race in CI.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

func init() {
	// svc-work: a sweep whose points take real wall-clock time, so
	// fairness and streaming tests can observe runs mid-flight. Only the
	// service test binary registers it (the experiments package's own
	// tests pin the registry's exact contents).
	experiments.RegisterSweep(&experiments.Sweep{
		ID:          "svc-work",
		Description: "test-only sweep with slow points",
		Title:       "slow sweep",
		Columns:     []string{"i", "seed"},
		Points:      4,
		Point: func(ctx context.Context, seed int64, i int) (experiments.PointResult, error) {
			select {
			case <-ctx.Done():
				return experiments.PointResult{}, ctx.Err()
			case <-time.After(15 * time.Millisecond):
			}
			return experiments.Row(float64(i), float64(seed)), nil
		},
	})
}

// newServerCfg is newServer with the full hardening config exposed.
func newServerCfg(t *testing.T, dir string, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes an event stream until the server closes it.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var evs []sseEvent
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			evs = append(evs, cur)
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return evs
}

// TestEventsStream: /runs/{id}/events opens with a status frame, emits
// progress frames as job counters move, pushes the terminal status
// frame promptly, and then ends the stream.
func TestEventsStream(t *testing.T) {
	_, ts := newServerCfg(t, t.TempDir(), service.Config{Workers: 1, EventPoll: 10 * time.Millisecond})
	id := submit(t, ts.URL, `{"ids":["svc-work"],"seeds":[1,2,3,4]}`)
	resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	evs := readSSE(t, resp.Body)
	if len(evs) < 2 {
		t.Fatalf("got %d event frames, want at least an opening and a terminal status", len(evs))
	}
	if evs[0].name != "status" {
		t.Errorf("first frame is %q, want status", evs[0].name)
	}
	var last struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(evs[len(evs)-1].data), &last); err != nil {
		t.Fatalf("terminal frame %q: %v", evs[len(evs)-1].data, err)
	}
	if evs[len(evs)-1].name != "status" || last.Status != service.StatusDone {
		t.Errorf("terminal frame = %s %q, want status done", evs[len(evs)-1].name, last.Status)
	}
	progress, lastDone := 0, -1
	for _, ev := range evs {
		if ev.name != "progress" {
			continue
		}
		progress++
		var p struct {
			TotalJobs int `json:"total_jobs"`
			DoneJobs  int `json:"done_jobs"`
		}
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("progress frame %q: %v", ev.data, err)
		}
		if p.TotalJobs != 4 || p.DoneJobs <= lastDone {
			t.Errorf("progress frame %+v: want total_jobs 4 and strictly increasing done_jobs (prev %d)", p, lastDone)
		}
		lastDone = p.DoneJobs
	}
	if progress < 1 {
		t.Errorf("no progress frames in %d-frame stream", len(evs))
	}
	// A finished run's stream is just its terminal frame.
	resp2, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if evs := readSSE(t, resp2.Body); len(evs) != 1 || evs[0].name != "status" {
		t.Errorf("finished run stream = %+v, want exactly one status frame", evs)
	}
}

// TestAdmissionControl429: submissions beyond MaxQueued are refused
// with 429 + Retry-After, and capacity freed by a finishing run is
// usable again.
func TestAdmissionControl429(t *testing.T) {
	_, ts := newServerCfg(t, t.TempDir(), service.Config{Workers: 1, MaxQueued: 1})
	id := submit(t, ts.URL, `{"ids":["svc-block"],"seeds":[1]}`)
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"ids":["fig2a"],"seeds":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over the bound: code %d body %s, want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(string(raw), "limit 1") {
		t.Errorf("429 body %q does not name the limit", raw)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusAccepted {
		t.Fatalf("cancelling the parked run: code %d", code)
	}
	awaitStatus(t, ts.URL, id, service.StatusCancelled)
	id2 := submit(t, ts.URL, `{"ids":["fig2a"],"seeds":[1]}`)
	awaitStatus(t, ts.URL, id2, service.StatusDone)
}

// TestResultPromptUnderLoad: fetching a done run's result must not
// queue behind live compute — reconstruction is decode-only and rides
// the priority lane, so it returns promptly even when every worker is
// parked on another run.
func TestResultPromptUnderLoad(t *testing.T) {
	_, ts := newServerCfg(t, t.TempDir(), service.Config{Workers: 1})
	want := benchBytes(t, experiments.Options{IDs: []string{"tab1"}, Seeds: []int64{1}, Concurrency: 1}, "csv")
	done := submit(t, ts.URL, `{"ids":["tab1"],"seeds":[1]}`)
	awaitStatus(t, ts.URL, done, service.StatusDone)
	parked := submit(t, ts.URL, `{"ids":["svc-block"],"seeds":[1]}`)
	start := time.Now()
	code, body, _ := fetchResult(t, ts.URL, done, "csv")
	elapsed := time.Since(start)
	if code != http.StatusOK || body != want {
		t.Fatalf("result under load: code %d, bytes match %v", code, body == want)
	}
	if elapsed > 3*time.Second {
		t.Errorf("result took %v with the pool saturated; reconstruction queued behind compute", elapsed)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+parked, "", nil); code != http.StatusAccepted {
		t.Fatalf("cancelling parked run: code %d", code)
	}
	awaitStatus(t, ts.URL, parked, service.StatusCancelled)
}

// TestRoundRobinFairness: with one worker, a small submission arriving
// behind a large one must finish while the large one is still running —
// the dispatcher hands out jobs round-robin across submissions instead
// of draining them FIFO.
func TestRoundRobinFairness(t *testing.T) {
	sched := experiments.NewScheduler(experiments.SchedulerConfig{Workers: 1})
	defer sched.Close()
	big, err := sched.Submit(context.Background(), experiments.RunSpec{
		IDs: []string{"svc-work"}, Seeds: manySeeds(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := sched.Submit(context.Background(), experiments.RunSpec{
		IDs: []string{"svc-work"}, Seeds: []int64{101, 102},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Report(); err != nil {
		t.Fatalf("small run: %v", err)
	}
	p := big.Progress()
	if p.DoneJobs >= p.TotalJobs {
		t.Errorf("big run already finished (%d/%d jobs) when the small run completed — dispatch is FIFO, not round-robin",
			p.DoneJobs, p.TotalJobs)
	}
	if _, err := big.Report(); err != nil {
		t.Fatalf("big run: %v", err)
	}
}

// TestPriorityLaneJumpsQueue: a priority submission must be served
// before queued normal work even though it arrived last.
func TestPriorityLaneJumpsQueue(t *testing.T) {
	sched := experiments.NewScheduler(experiments.SchedulerConfig{Workers: 1})
	defer sched.Close()
	big, err := sched.Submit(context.Background(), experiments.RunSpec{
		IDs: []string{"svc-work"}, Seeds: manySeeds(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	pri, err := sched.SubmitPriority(context.Background(), experiments.RunSpec{
		IDs: []string{"svc-work"}, Seeds: []int64{201, 202},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pri.Report(); err != nil {
		t.Fatalf("priority run: %v", err)
	}
	p := big.Progress()
	if p.DoneJobs >= p.TotalJobs {
		t.Errorf("big run already finished (%d/%d jobs) when the priority run completed — the priority lane is not served first",
			p.DoneJobs, p.TotalJobs)
	}
	if _, err := big.Report(); err != nil {
		t.Fatalf("big run: %v", err)
	}
}

// manySeeds returns seeds 1..n.
func manySeeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// TestGCEndpoint: POST /admin/gc removes cells left behind by deleted
// runs under the retention policy, answers 409 when retention is
// disabled, and never touches cells a listed run still references.
func TestGCEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newServerCfg(t, dir, service.Config{Workers: 2, Retention: time.Nanosecond})
	keep := submit(t, ts.URL, `{"ids":["tab1"],"seeds":[1]}`)
	awaitStatus(t, ts.URL, keep, service.StatusDone)
	drop := submit(t, ts.URL, `{"ids":["fig2a"],"seeds":[7]}`)
	awaitStatus(t, ts.URL, drop, service.StatusDone)
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+drop, "", nil); code != http.StatusNoContent {
		t.Fatalf("deleting run: code %d", code)
	}
	var res store.GCResult
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/admin/gc", "", &res); code != http.StatusOK {
		t.Fatalf("POST /admin/gc: code %d body %s", code, raw)
	}
	if res.Removed < 1 {
		t.Errorf("gc removed %d cells, want the deleted run's cell gone: %+v", res.Removed, res)
	}
	// The kept run still serves the same bytes after GC (invariant 8).
	want := benchBytes(t, experiments.Options{IDs: []string{"tab1"}, Seeds: []int64{1}, Concurrency: 1}, "csv")
	if code, body, _ := fetchResult(t, ts.URL, keep, "csv"); code != http.StatusOK || body != want {
		t.Errorf("kept run after gc: code %d, bytes match %v", code, body == want)
	}
	// fig2a's cell is gone from disk.
	cells, err := filepath.Glob(filepath.Join(dir, "cells", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if strings.Contains(filepath.Base(c), "fig2a") {
			t.Errorf("unreferenced cell %s survived gc", c)
		}
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}

	// Retention unset → GC refuses.
	_, ts2 := newServer(t, t.TempDir(), 1)
	if code, raw := doJSON(t, http.MethodPost, ts2.URL+"/admin/gc", "", nil); code != http.StatusConflict {
		t.Errorf("gc without retention: code %d body %s, want 409", code, raw)
	}
}
