package service_test

// Service-level lock-in of determinism invariant 7: the bytes served
// over HTTP for a completed run are identical to llama-bench's stdout
// for the same spec — including when a restarted server reconstructs
// the report from the store — plus lifecycle coverage (cancel, delete,
// drain-time salvage, validation). Run under -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

// blockRelease gates the svc-block test sweep: its second point parks
// until the channel closes or its context dies, giving tests a
// deterministic "in-flight run" to cancel or drain.
var blockRelease = make(chan struct{})

func init() {
	experiments.RegisterSweep(&experiments.Sweep{
		ID:          "svc-block",
		Description: "test-only sweep whose last point blocks until released or cancelled",
		Title:       "blocking sweep",
		Columns:     []string{"i", "seed"},
		Points:      2,
		Point: func(ctx context.Context, seed int64, i int) (experiments.PointResult, error) {
			if i == 1 {
				select {
				case <-blockRelease:
				case <-ctx.Done():
					return experiments.PointResult{}, ctx.Err()
				}
			}
			return experiments.Row(float64(i), float64(seed)), nil
		},
	})
}

// newServer opens a store-backed service over dir and wires it to an
// httptest server.
func newServer(t *testing.T, dir string, workers int) (*service.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st, Workers: workers, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// doJSON performs one request and decodes the JSON response body into
// out (out may be nil to discard).
func doJSON(t *testing.T, method, url string, body string, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// submit posts a run and returns its ID.
func submit(t *testing.T, base, body string) string {
	t.Helper()
	var got struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	code, raw := doJSON(t, http.MethodPost, base+"/runs", body, &got)
	if code != http.StatusCreated || got.ID == "" {
		t.Fatalf("POST /runs: code %d body %s", code, raw)
	}
	return got.ID
}

// awaitStatus polls a run until it reaches want (or fails the test).
func awaitStatus(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		code, raw := doJSON(t, http.MethodGet, base+"/runs/"+id, "", &got)
		if code != http.StatusOK {
			t.Fatalf("GET /runs/%s: code %d body %s", id, code, raw)
		}
		if got.Status == want {
			return
		}
		if got.Status == service.StatusFailed && want != service.StatusFailed {
			t.Fatalf("run %s failed: %s", id, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %q, want %q", id, got.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchResult fetches a completed run's tables.
func fetchResult(t *testing.T, base, id, format string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/runs/%s/result?format=%s", base, id, format))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header.Get("Content-Type")
}

// benchBytes renders the reference: what llama-bench prints to stdout
// for the same spec (serial engine + Report.WriteTables).
func benchBytes(t *testing.T, opts experiments.Options, format string) string {
	t.Helper()
	rep, err := experiments.Execute(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, format); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestResultMatchesBenchAcrossRestart is invariant 7 end to end: a run
// served over HTTP is byte-identical to llama-bench output for the same
// (IDs, seeds, workers, shard) spec, and stays byte-identical when a
// NEW server process re-serves it from the store alone.
func TestResultMatchesBenchAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newServer(t, dir, 4)
	wantCSV := benchBytes(t, experiments.Options{IDs: []string{"fig2a", "tab1"}, Seeds: []int64{1, 2, 3}, Concurrency: 1}, "csv")
	wantJSON := benchBytes(t, experiments.Options{IDs: []string{"fig2a", "tab1"}, Seeds: []int64{1, 2, 3}, Concurrency: 1}, "json")

	id := submit(t, ts.URL, `{"ids":["fig2a","tab1"],"seeds":[1,2,3],"shard_rows":true}`)
	awaitStatus(t, ts.URL, id, service.StatusDone)

	code, gotCSV, ctype := fetchResult(t, ts.URL, id, "csv")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/csv") {
		t.Fatalf("result: code %d content-type %s", code, ctype)
	}
	if gotCSV != wantCSV {
		t.Error("served CSV differs from llama-bench bytes")
	}
	if code, gotJSON, _ := fetchResult(t, ts.URL, id, "json"); code != http.StatusOK || gotJSON != wantJSON {
		t.Errorf("served JSON: code %d, bytes match=%v", code, gotJSON == wantJSON)
	}

	// Restart: shut the first server down, open a second over the same
	// store. It must re-list the run as done and re-serve identical
	// bytes with zero recomputation (every cell decodes from the store).
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	_, ts2 := newServer(t, dir, 2)
	var st struct {
		Status string `json:"status"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts2.URL+"/runs/"+id, "", &st); code != http.StatusOK || st.Status != service.StatusDone {
		t.Fatalf("restarted status: code %d body %s", code, raw)
	}
	code, again, _ := fetchResult(t, ts2.URL, id, "csv")
	if code != http.StatusOK {
		t.Fatalf("restarted result: code %d", code)
	}
	if again != wantCSV {
		t.Error("restarted server served different bytes (invariant 7 broken)")
	}
}

// TestSharedStoreReusesCells: a second run whose spec overlaps an
// earlier run's cells answers the overlap from the store instead of
// recomputing, and still matches the fresh-run reference bytes.
func TestSharedStoreReusesCells(t *testing.T) {
	dir := t.TempDir()
	_, ts := newServer(t, dir, 2)
	first := submit(t, ts.URL, `{"ids":["tab1"],"seeds":[1,2]}`)
	awaitStatus(t, ts.URL, first, service.StatusDone)
	second := submit(t, ts.URL, `{"ids":["tab1"],"seeds":[1,2,3]}`)
	awaitStatus(t, ts.URL, second, service.StatusDone)
	var st struct {
		ReusedCells   int `json:"reused_cells"`
		ComputedCells int `json:"computed_cells"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/runs/"+second, "", &st)
	if st.ReusedCells != 2 || st.ComputedCells != 1 {
		t.Errorf("reused %d / computed %d, want 2 / 1", st.ReusedCells, st.ComputedCells)
	}
	want := benchBytes(t, experiments.Options{IDs: []string{"tab1"}, Seeds: []int64{1, 2, 3}, Concurrency: 1}, "csv")
	if _, got, _ := fetchResult(t, ts.URL, second, "csv"); got != want {
		t.Error("resumed run served different bytes than a fresh run")
	}
}

// TestCancelSalvagesCompletedCells: DELETE on a live run cancels it;
// the already-finished sibling cell persists to the store (the salvage
// path), so nothing computed is lost.
func TestCancelSalvagesCompletedCells(t *testing.T) {
	dir := t.TempDir()
	_, ts := newServer(t, dir, 2)
	id := submit(t, ts.URL, `{"ids":["fig2a","svc-block"],"seeds":[1]}`)
	// Wait until the fast sibling's job retired (svc-block stays parked),
	// so exactly one of two jobs is done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct {
			Progress struct {
				DoneJobs int `json:"done_jobs"`
			} `json:"progress"`
		}
		doJSON(t, http.MethodGet, ts.URL+"/runs/"+id, "", &st)
		if st.Progress.DoneJobs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fast sibling never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusAccepted {
		t.Fatalf("DELETE live run: code %d body %s", code, raw)
	}
	awaitStatus(t, ts.URL, id, service.StatusCancelled)
	if code, _, _ := fetchResult(t, ts.URL, id, "csv"); code != http.StatusConflict {
		t.Errorf("result of cancelled run: code %d, want 409", code)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("fig2a", 1); err != nil {
		t.Errorf("completed sibling cell not salvaged into the store: %v", err)
	}
	// A finished (cancelled) run's DELETE removes the record.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusNoContent {
		t.Errorf("DELETE finished run: code %d, want 204", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/runs/"+id, "", nil); code != http.StatusNotFound {
		t.Errorf("deleted run still resolves: code %d", code)
	}
}

// TestShutdownDrainsInFlight: Shutdown with a parked run cancels it,
// persists the completed sibling cells, and records the run as
// cancelled — so a restarted server shows an honest history.
func TestShutdownDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newServer(t, dir, 2)
	id := submit(t, ts.URL, `{"ids":["tab1","svc-block"],"seeds":[1]}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct {
			Progress struct {
				DoneJobs int `json:"done_jobs"`
			} `json:"progress"`
		}
		doJSON(t, http.MethodGet, ts.URL+"/runs/"+id, "", &st)
		if st.Progress.DoneJobs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fast sibling never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("tab1", 1); err != nil {
		t.Errorf("drain did not persist the completed cell: %v", err)
	}
	rec, err := st.GetRun(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != service.StatusCancelled {
		t.Errorf("drained run recorded as %q, want cancelled", rec.Status)
	}
}

// TestValidationAndLifecycleErrors covers the fail-fast paths: bad
// JSON, unknown experiment IDs, unknown runs, unknown formats, and
// result requests for unfinished runs.
func TestValidationAndLifecycleErrors(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), 2)
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/runs", `{"ids":`, nil); code != http.StatusBadRequest {
		t.Errorf("bad JSON: code %d body %s", code, raw)
	}
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/runs", `{"ids":["no-such-fig"]}`, nil); code != http.StatusBadRequest || !strings.Contains(raw, "unknown id") {
		t.Errorf("unknown experiment: code %d body %s", code, raw)
	}
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/runs", `{"bogus_field":1}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d body %s", code, raw)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/runs/run-999999", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown run: code %d", code)
	}
	id := submit(t, ts.URL, `{"ids":["tab1"]}`)
	awaitStatus(t, ts.URL, id, service.StatusDone)
	if code, raw, _ := fetchResult(t, ts.URL, id, "yaml"); code != http.StatusBadRequest || !strings.Contains(raw, "unknown format") {
		t.Errorf("unknown format: code %d body %s", code, raw)
	}
	var health struct {
		OK   bool `json:"ok"`
		Runs int  `json:"runs"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusOK || !health.OK || health.Runs != 1 {
		t.Errorf("healthz: code %d body %s", code, raw)
	}
	var list struct {
		Runs []struct {
			ID string `json:"id"`
		} `json:"runs"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/runs", "", &list); code != http.StatusOK || len(list.Runs) != 1 || list.Runs[0].ID != id {
		t.Errorf("list: code %d body %s", code, raw)
	}
}

// TestDefaultSeedAndFormat: an empty spec body runs seed {1} over the
// named IDs, and the result defaults to CSV.
func TestDefaultSeedAndFormat(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), 2)
	id := submit(t, ts.URL, `{"ids":["fig2a"]}`)
	awaitStatus(t, ts.URL, id, service.StatusDone)
	want := benchBytes(t, experiments.Options{IDs: []string{"fig2a"}, Seeds: []int64{1}, Concurrency: 1}, "csv")
	resp, err := http.Get(ts.URL + "/runs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(raw) != want {
		t.Errorf("default-format result: code %d, bytes match=%v", resp.StatusCode, string(raw) == want)
	}
}
