package service_test

// Regression coverage for the run-record lifecycle races this service
// hardening fixed: the record write-ordering race (a fast run's final
// record clobbered by or resurrecting around DELETE), the
// submit-vs-shutdown leak, /healthz status-code semantics, oversized
// submissions, and concurrent DELETE / result / list races. All run
// under -race in CI.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

// TestFastRunRecordNotClobbered is the write-ordering regression: a
// run record, once deleted, must never be resurrected by a stale write.
// A run reaches its terminal in-memory status the instant the watcher
// releases the server lock, but its terminal disk write (PutRun) is
// still in flight; a DELETE landing in that window removes the record,
// after which the unordered pre-fix write re-created ("resurrected")
// the run on disk — a durably wrong history a restarted server would
// re-list. The first phase hammers the narrow window with fast real
// runs; the second widens it deterministically with a huge cancelled
// spec, whose multi-hundred-KB terminal record keeps PutRun busy for
// milliseconds while DELETEs are spammed into the gap.
func TestFastRunRecordNotClobbered(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newServer(t, dir, 2)
	var ids []string
	for i := 0; i < 15; i++ {
		id := submit(t, ts.URL, `{"ids":["fig2a"],"seeds":[1]}`)
		ids = append(ids, id)
		awaitStatus(t, ts.URL, id, service.StatusDone)
		if code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusNoContent {
			t.Fatalf("DELETE %s: code %d body %s", id, code, raw)
		}
	}
	var sb strings.Builder
	sb.WriteString(`{"ids":["svc-block"],"seeds":[1`)
	for seed := 2; seed <= 40000; seed++ {
		fmt.Fprintf(&sb, ",%d", seed)
	}
	sb.WriteString(`]}`)
	for attempt := 0; attempt < 4; attempt++ {
		id := submit(t, ts.URL, sb.String())
		ids = append(ids, id)
		// Spam DELETE: the first hit cancels the live run (202), the rest
		// pound the gap between the in-memory flip to cancelled and the
		// completion of the watcher's terminal record write.
		deadline := time.Now().Add(20 * time.Second)
		for {
			code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil)
			if code == http.StatusNoContent || code == http.StatusNotFound {
				break
			}
			if code != http.StatusAccepted {
				t.Fatalf("DELETE %s: code %d body %s", id, code, raw)
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s never reached a deletable state", id)
			}
		}
	}
	// Shutdown waits out every watcher, so any stale write has landed (or
	// been suppressed) by the time the store is inspected.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("%d deleted run(s) resurrected on disk (first: %s, status %q) — run-record writes are not ordered",
			len(recs), recs[0].ID, recs[0].Status)
	}
	for _, id := range ids {
		if _, err := st.GetRun(id); !store.IsRunNotFound(err) {
			t.Errorf("GetRun(%s) after delete = %v, want RunNotFound", id, err)
		}
	}
}

// TestSubmitShutdownNoLeak is the submit-vs-shutdown regression
// (alongside the scheduler's TestSchedulerGoroutineBound): submissions
// racing Shutdown either land (201, then drain to a terminal status) or
// bounce (503/429) — and either way nothing outlives the drain; the
// goroutine count settles back to baseline.
func TestSubmitShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	svc, ts := newServer(t, t.TempDir(), 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, 24)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i], _ = doJSON(t, http.MethodPost, ts.URL+"/runs", `{"ids":["fig2a"],"seeds":[1]}`, nil)
		}(i)
	}
	close(start)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		switch code {
		case http.StatusCreated, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			t.Errorf("racing submit %d: code %d, want 201/503/429", i, code)
		}
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d now=%d — submit/shutdown race leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHealthzDrainIs503: probes key on status codes, so /healthz must
// flip to 503 the moment Shutdown begins — 200 with "ok": false reads
// as healthy to every load balancer.
func TestHealthzDrainIs503(t *testing.T) {
	svc, ts := newServer(t, t.TempDir(), 1)
	var health struct {
		OK bool `json:"ok"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("live healthz: code %d body %s", code, raw)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusServiceUnavailable || health.OK {
		t.Errorf("draining healthz: code %d body %s, want 503 with ok=false", code, raw)
	}
}

// TestOversizedBody413: a submission body over the 1 MiB cap is the
// client's fault and names the limit — 413, not a generic 400.
func TestOversizedBody413(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), 1)
	huge := `{"ids":["fig2a"],"seeds":[` + strings.Repeat("1,", 1<<19) + `1]}`
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d, want 413 (body %s)", resp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), "1 MiB") {
		t.Errorf("oversized-body error %q does not name the 1 MiB limit", buf.String())
	}
}

// TestConcurrentDeleteFinishedRun: racing DELETEs of the same finished
// run must resolve cleanly — one wins with 204, the rest see 404 (or a
// second clean 204), never a 500.
func TestConcurrentDeleteFinishedRun(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), 2)
	id := submit(t, ts.URL, `{"ids":["fig2a"],"seeds":[1]}`)
	awaitStatus(t, ts.URL, id, service.StatusDone)
	const racers = 8
	codes := make([]int, racers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i], _ = doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil)
		}(i)
	}
	close(start)
	wg.Wait()
	won := 0
	for i, code := range codes {
		switch code {
		case http.StatusNoContent:
			won++
		case http.StatusNotFound:
		default:
			t.Errorf("racer %d: code %d, want 204 or 404", i, code)
		}
	}
	if won < 1 {
		t.Error("no DELETE racer won with 204")
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/runs/"+id, "", nil); code != http.StatusNotFound {
		t.Errorf("run still resolves after racing deletes: code %d", code)
	}
}

// TestDeleteDuringResultAndList: DELETE racing GET /result and GET
// /runs must leave every response well-formed — results either serve
// the full correct bytes or a clean 404, listings always decode.
func TestDeleteDuringResultAndList(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), 2)
	want := benchBytes(t, experiments.Options{IDs: []string{"tab1"}, Seeds: []int64{1}, Concurrency: 1}, "csv")
	for round := 0; round < 6; round++ {
		id := submit(t, ts.URL, `{"ids":["tab1"],"seeds":[1]}`)
		awaitStatus(t, ts.URL, id, service.StatusDone)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(3)
		go func() {
			defer wg.Done()
			<-start
			code, body, _ := fetchResult(t, ts.URL, id, "csv")
			if code == http.StatusOK && body != want {
				t.Errorf("round %d: result served wrong bytes during delete race", round)
			} else if code != http.StatusOK && code != http.StatusNotFound {
				t.Errorf("round %d: result during delete: code %d, want 200 or 404", round, code)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			if code, raw := doJSON(t, http.MethodDelete, ts.URL+"/runs/"+id, "", nil); code != http.StatusNoContent && code != http.StatusNotFound {
				t.Errorf("round %d: delete code %d body %s", round, code, raw)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			var list struct {
				Runs []struct {
					ID string `json:"id"`
				} `json:"runs"`
			}
			if code, raw := doJSON(t, http.MethodGet, ts.URL+"/runs", "", &list); code != http.StatusOK {
				t.Errorf("round %d: list during delete: code %d body %s", round, code, raw)
			}
		}()
		close(start)
		wg.Wait()
	}
}
