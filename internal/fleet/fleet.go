// Package fleet distributes llama-serve's compute across worker
// processes. The coordinator side pulls shard jobs out of the
// experiment scheduler through its lease interface
// (experiments.Scheduler.TryLease) and deals them to remote workers
// over a small HTTP pull protocol — lease, heartbeat, complete — with
// heartbeat deadlines: a worker that dies or stalls mid-job loses its
// lease and the job is requeued for someone else. The worker side
// (Worker, cmd/llama-worker) polls for leases, recomputes each job
// from its pure description with the local experiment registry, and
// posts the rows back.
//
// Fleet transparency is determinism invariant 9 (ARCHITECTURE.md): for
// any fleet size and any schedule of worker failures, a run's bytes
// are identical to a single-process run. The coordinator never trusts
// fleet timing — completions land in pre-assigned collection slots
// guarded by a per-job settle CAS, so a late duplicate from a
// presumed-dead worker is accepted if it is first or dropped if it is
// not, and either way the bytes match (every worker computes the same
// pure function).
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
)

// Lease lifecycle errors, mapped by the HTTP layer to 404/409.
var (
	// ErrUnknownLease means the lease ID was never granted or its record
	// has already been purged (terminal records are kept 2×TTL).
	ErrUnknownLease = errors.New("fleet: unknown lease")
	// ErrLeaseExpired means the lease's heartbeat deadline passed and the
	// job was requeued; the holder should drop the work (a completion is
	// still worth posting — it is accepted if the recomputation has not
	// finished first).
	ErrLeaseExpired = errors.New("fleet: lease expired")
	// ErrClosed means the coordinator is shutting down.
	ErrClosed = errors.New("fleet: coordinator closed")
)

// Config configures a Coordinator.
type Config struct {
	// Sched is the scheduler whose jobs the fleet executes. Required.
	Sched *experiments.Scheduler
	// TTL is the lease heartbeat deadline: a lease not heartbeated for
	// TTL is expired and its job requeued. Defaults to 10s.
	TTL time.Duration
	// Now supplies the clock; defaults to time.Now. Tests drive expiry
	// deterministically through simclock.Clock.Time.
	Now func() time.Time
	// Logf, when non-nil, receives one line per lease-lifecycle event.
	Logf func(format string, args ...any)
}

// leaseState is the lifecycle of one granted lease.
type leaseState int

const (
	leaseLive    leaseState = iota // granted, deadline in the future
	leaseExpired                   // deadline passed; job requeued
	leaseDone                      // completed or failed by its holder
)

// lease is the coordinator's record of one granted job.
type lease struct {
	id       string
	job      *experiments.LeasedJob
	desc     experiments.JobDesc
	worker   string
	deadline time.Time
	state    leaseState
	ended    time.Time // when the lease left leaseLive, for record purge
}

// Stats counts lease-lifecycle events since the coordinator started.
type Stats struct {
	// Granted counts leases handed out (including re-grants of requeued
	// jobs); Live is the current outstanding count.
	Granted int64 `json:"granted"`
	Live    int64 `json:"live"`
	// Completed counts first-writer completions; Duplicates counts
	// well-formed completions dropped because the job had already
	// settled (late replies from presumed-dead workers).
	Completed  int64 `json:"completed"`
	Duplicates int64 `json:"duplicates"`
	// Expired counts leases reaped past their heartbeat deadline;
	// Failed counts completions that carried a worker error.
	Expired int64 `json:"expired"`
	Failed  int64 `json:"failed"`
	// Workers maps worker names to their latest reported response-table
	// warmth. Absent until a worker reports one (the empty map is
	// omitted from JSON, so consumers of the counter fields are
	// unaffected).
	Workers map[string]WorkerTables `json:"workers,omitempty"`
}

// WorkerTables is one worker's response-table warmth report: how much
// persisted precompute it imported at startup and its live exact
// response-cache counters. Workers attach it to lease requests;
// GET /fleet/stats surfaces the latest report per worker, so a fleet
// operator can see whether workers actually start warm instead of
// re-deriving every design's physics from scratch.
type WorkerTables struct {
	// WarmTables and WarmEntries count the persisted response tables
	// (and total entries) the worker imported at startup.
	WarmTables  int `json:"warm_tables"`
	WarmEntries int `json:"warm_entries"`
	// Hits and Misses are the worker's process-wide exact response-cache
	// lookups so far; HitRate is Hits/(Hits+Misses), 0 before any lookup.
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Coordinator deals scheduler jobs to fleet workers and polices their
// leases. Methods are safe for concurrent use.
type Coordinator struct {
	sched *experiments.Scheduler
	ttl   time.Duration
	now   func() time.Time
	logf  func(format string, args ...any)

	mu     sync.Mutex
	leases map[string]*lease
	nextID int64
	closed bool
	stats  Stats
}

// NewCoordinator validates cfg and returns a running coordinator.
// Expiry is checked lazily on every Lease/Heartbeat/Complete/Reap call
// rather than by a background timer, so a simulated clock drives it
// deterministically.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Sched == nil {
		return nil, errors.New("fleet: Config.Sched is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Coordinator{
		sched:  cfg.Sched,
		ttl:    cfg.TTL,
		now:    cfg.Now,
		logf:   cfg.Logf,
		leases: make(map[string]*lease),
	}, nil
}

// TTL returns the configured lease heartbeat deadline.
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// Lease grants the next dispatchable job to worker, or returns
// (nil, false) when no job is queued right now — the worker backs off
// and polls again. Expired leases are reaped first, so a requeued job
// can be re-granted by the very call that notices its old holder died.
func (c *Coordinator) Lease(worker string) (*Grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false
	}
	c.reapLocked(c.now())
	job := c.sched.TryLease()
	if job == nil {
		return nil, false
	}
	c.nextID++
	l := &lease{
		id:       fmt.Sprintf("lease-%d", c.nextID),
		job:      job,
		desc:     job.Desc(),
		worker:   worker,
		deadline: c.now().Add(c.ttl),
		state:    leaseLive,
	}
	c.leases[l.id] = l
	c.stats.Granted++
	c.stats.Live++
	c.logf("fleet: lease %s: %s -> worker %s (deadline %s)", l.id, l.desc, worker, l.deadline.Format(time.RFC3339Nano))
	return &Grant{ID: l.id, Desc: l.desc, TTL: c.ttl}, true
}

// Grant is one granted lease: the job to compute, the lease ID to
// heartbeat and complete under, and the TTL the holder must beat.
type Grant struct {
	// ID names the lease in Heartbeat/Complete calls.
	ID string
	// Desc is the job, in worker-computable terms.
	Desc experiments.JobDesc
	// TTL is the heartbeat deadline interval; holders heartbeat at a
	// fraction of it (Worker uses TTL/3).
	TTL time.Duration
}

// Heartbeat extends a live lease's deadline to now+TTL. A heartbeat
// arriving exactly at the deadline keeps the lease (expiry is strictly
// after); one arriving later gets ErrLeaseExpired and the job has been
// requeued. ErrUnknownLease means the ID was never granted or its
// record aged out.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	l, ok := c.leases[id]
	if !ok {
		return ErrUnknownLease
	}
	switch l.state {
	case leaseExpired:
		return ErrLeaseExpired
	case leaseDone:
		return nil // already finished; nothing to extend, nothing to retry
	}
	l.deadline = now.Add(c.ttl)
	return nil
}

// Complete delivers a holder's result (or, when workErr is non-empty,
// its compute failure) for lease id. Idempotent and late-duplicate
// safe: completing a lease that already expired still forwards the
// rows — the settle CAS accepts them if the requeued copy has not
// finished first and drops them otherwise; completing a lease twice is
// a no-op. A malformed payload returns an error (the HTTP layer's 400)
// and requeues the job so an honest worker recomputes it.
func (c *Coordinator) Complete(id string, res experiments.ExternalResult, workErr string) error {
	c.mu.Lock()
	now := c.now()
	c.reapLocked(now)
	l, ok := c.leases[id]
	if !ok {
		c.mu.Unlock()
		return ErrUnknownLease
	}
	if l.state == leaseDone {
		c.mu.Unlock()
		return nil
	}
	settledBefore := l.job.Settled()
	c.mu.Unlock()

	// Forward outside the coordinator lock: Complete/Fail take the
	// scheduler's lock and may trigger a submission's finalize.
	var err error
	if workErr != "" {
		l.job.Fail(errors.New(workErr))
	} else {
		err = l.job.Complete(res)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if l.state == leaseDone {
		return nil // a racing Complete for the same lease got there first
	}
	if err != nil {
		// Malformed payload: the job is still leased; requeue it so the
		// work is not stranded until the TTL reaps it.
		l.job.Abandon()
		c.endLocked(l, leaseExpired, now)
		c.logf("fleet: lease %s: rejected completion from worker %s: %v", l.id, l.worker, err)
		return err
	}
	c.endLocked(l, leaseDone, now)
	switch {
	case workErr != "":
		c.stats.Failed++
		c.logf("fleet: lease %s: worker %s failed: %s", l.id, l.worker, workErr)
	case settledBefore:
		c.stats.Duplicates++
		c.logf("fleet: lease %s: duplicate completion from worker %s dropped", l.id, l.worker)
	default:
		c.stats.Completed++
	}
	return nil
}

// Reap expires every lease whose deadline has strictly passed,
// requeueing their jobs, and purges terminal lease records older than
// 2×TTL. It is called implicitly by every other method; tests (and a
// service's periodic sweep) may call it directly.
func (c *Coordinator) Reap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.now())
}

// reapLocked is Reap under c.mu, at an explicit instant.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, l := range c.leases {
		if l.state == leaseLive && now.After(l.deadline) {
			c.endLocked(l, leaseExpired, now)
			c.stats.Expired++
			c.logf("fleet: lease %s: worker %s missed deadline; requeueing %s", l.id, l.worker, l.desc)
			l.job.Abandon()
		}
	}
	// Terminal records linger 2×TTL so a late duplicate still gets a
	// clean idempotent answer instead of ErrUnknownLease, then age out.
	horizon := now.Add(-2 * c.ttl)
	for id, l := range c.leases {
		if l.state != leaseLive && l.ended.Before(horizon) {
			delete(c.leases, id)
		}
	}
}

// endLocked moves a lease to a terminal state, stamps it for purge and
// maintains the Live gauge (decremented exactly once per lease).
func (c *Coordinator) endLocked(l *lease, st leaseState, now time.Time) {
	if l.state == leaseLive {
		c.stats.Live--
	}
	l.state = st
	l.ended = now
}

// Stats returns a snapshot of the lease-lifecycle counters. The
// Workers map is deep-copied so the snapshot stays stable while
// workers keep reporting.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	if len(c.stats.Workers) > 0 {
		st.Workers = make(map[string]WorkerTables, len(c.stats.Workers))
		for name, wt := range c.stats.Workers {
			st.Workers[name] = wt
		}
	}
	return st
}

// RecordWorkerTables stores a worker's latest response-table warmth
// report under its name (latest report wins). Empty worker names are
// dropped — there is nothing meaningful to attribute them to.
func (c *Coordinator) RecordWorkerTables(worker string, wt WorkerTables) {
	if worker == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.stats.Workers == nil {
		c.stats.Workers = make(map[string]WorkerTables)
	}
	c.stats.Workers[worker] = wt
}

// Close stops granting and abandons every live lease so outstanding
// jobs return to the scheduler (whose own Close settles them). Safe to
// call more than once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var live []*lease
	for _, l := range c.leases {
		if l.state == leaseLive {
			c.endLocked(l, leaseExpired, c.now())
			live = append(live, l)
		}
	}
	c.mu.Unlock()
	for _, l := range live {
		l.job.Abandon()
	}
}
