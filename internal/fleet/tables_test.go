package fleet

// Coverage of the worker warm-table reporting: the coordinator keeps the
// latest report per worker, hands out only copies, and the report rides
// the lease poll over HTTP so GET /fleet/stats can show each worker's
// warm-start hit rate.

import (
	"testing"
	"time"
)

// TestRecordWorkerTables: per-worker reports land in Stats, latest wins,
// anonymous reports are dropped, and the returned map is a copy — a
// caller mutating it must not corrupt coordinator state.
func TestRecordWorkerTables(t *testing.T) {
	_, c, _ := httpFleet(t, time.Second)

	if st := c.Stats(); len(st.Workers) != 0 {
		t.Fatalf("fresh coordinator already has worker tables: %+v", st.Workers)
	}
	c.RecordWorkerTables("", WorkerTables{WarmTables: 1}) // anonymous: dropped
	c.RecordWorkerTables("w1", WorkerTables{WarmTables: 2, WarmEntries: 40, Hits: 10, Misses: 30, HitRate: 0.25})
	c.RecordWorkerTables("w2", WorkerTables{WarmTables: 1, WarmEntries: 7})
	st := c.Stats()
	if len(st.Workers) != 2 {
		t.Fatalf("Workers = %+v, want w1 and w2 only", st.Workers)
	}
	if wt := st.Workers["w1"]; wt.WarmTables != 2 || wt.Hits != 10 || wt.HitRate != 0.25 {
		t.Errorf("w1 = %+v", wt)
	}

	// Latest report wins: the worker's counters grow across polls.
	c.RecordWorkerTables("w1", WorkerTables{WarmTables: 2, WarmEntries: 40, Hits: 90, Misses: 30, HitRate: 0.75})
	if wt := c.Stats().Workers["w1"]; wt.Hits != 90 || wt.HitRate != 0.75 {
		t.Errorf("stale report survived: %+v", wt)
	}

	// The snapshot is a copy.
	snap := c.Stats()
	snap.Workers["w1"] = WorkerTables{}
	delete(snap.Workers, "w2")
	if wt := c.Stats().Workers["w1"]; wt.Hits != 90 {
		t.Error("mutating a Stats snapshot reached coordinator state")
	}
	if _, ok := c.Stats().Workers["w2"]; !ok {
		t.Error("deleting from a Stats snapshot reached coordinator state")
	}
}

// TestLeaseCarriesWorkerTables: a table report attached to the lease
// poll is recorded even when no job is granted, a report-less poll stays
// wire-compatible, and the report is visible through GET /fleet/stats.
func TestLeaseCarriesWorkerTables(t *testing.T) {
	_, c, ts := httpFleet(t, time.Second)
	cl := &Client{Base: ts.URL}

	wt := WorkerTables{WarmTables: 3, WarmEntries: 120, Hits: 50, Misses: 10, HitRate: 50.0 / 60}
	if _, ok, err := cl.Lease("warm-worker", &wt); err != nil || ok {
		t.Fatalf("lease on an idle fleet: ok=%v err=%v", ok, err)
	}
	if _, ok, err := cl.Lease("plain-worker", nil); err != nil || ok {
		t.Fatalf("report-less lease: ok=%v err=%v", ok, err)
	}

	if got := c.Stats().Workers["warm-worker"]; got != wt {
		t.Errorf("coordinator recorded %+v, want %+v", got, wt)
	}
	if _, ok := c.Stats().Workers["plain-worker"]; ok {
		t.Error("report-less worker grew a tables entry")
	}

	// Round trip through the JSON stats endpoint.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Workers["warm-worker"]; got != wt {
		t.Errorf("/fleet/stats returned %+v, want %+v", got, wt)
	}
}
