package fleet

// Seeded chaos suite for determinism invariant 9: a fleet of workers
// with an injected per-seed failure schedule — die mid-lease, hang
// past the TTL and answer late, skip heartbeats, complete twice —
// must still finish every run with CSV bytes identical to the
// single-process reference, with every abandoned job observably
// reassigned. The schedule is a pure function of (chaos seed, worker),
// so a failure reproduces from its seed. Run under -race in CI.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/simclock"
)

func init() {
	// A test-only sweep wide enough to give the chaos schedule many
	// leases to corrupt, with NaN/±Inf cells so the encoding path is
	// exercised under fire too. Pure in (seed, i), like every sweep.
	experiments.RegisterSweep(&experiments.Sweep{
		ID:          "fleet-chaos",
		Description: "test-only sweep for fleet chaos runs (NaN/Inf cells included)",
		Title:       "fleet chaos fixture",
		Columns:     []string{"i", "seed", "value", "edge"},
		Points:      25,
		Point: func(ctx context.Context, seed int64, i int) (experiments.PointResult, error) {
			if err := ctx.Err(); err != nil {
				return experiments.PointResult{}, err
			}
			v := math.Sin(float64(i)*1.7) * float64(seed+1)
			edge := 0.0
			switch i % 5 {
			case 1:
				edge = math.NaN()
			case 2:
				edge = math.Inf(1)
			case 3:
				edge = math.Inf(-1)
			}
			return experiments.Row(float64(i), float64(seed), v, edge), nil
		},
	})
}

// chaosAct is one worker behavior drawn per lease from the seeded
// schedule.
type chaosAct int

const (
	actNormal     chaosAct = iota // compute, complete
	actDie                        // vanish mid-lease; never answer
	actHang                       // stall past the TTL, then answer late
	actSlowBeat                   // heartbeat too slowly, then answer late
	actDupDeliver                 // complete, then complete again
)

// chaosRun drives one lease-only scheduler + coordinator with a fleet
// of n misbehaving workers and returns the run's CSV bytes.
func chaosRun(t *testing.T, chaosSeed int64, fleetSize int, spec experiments.RunSpec) (string, Stats) {
	t.Helper()
	sched := experiments.NewScheduler(experiments.SchedulerConfig{LeaseOnly: true})
	defer sched.Close()
	const ttl = 150 * time.Millisecond
	c, err := NewCoordinator(Config{Sched: sched, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h, err := sched.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var late sync.WaitGroup // detached late-completion deliveries
	var injected atomic.Int64
	for w := 0; w < fleetSize; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The schedule is pure in (chaos seed, worker index): the same
			// seed replays the same failures.
			rng := simclock.RNG(chaosSeed, fmt.Sprintf("chaos-worker-%d", w))
			for {
				select {
				case <-done:
					return
				default:
				}
				g, ok := c.Lease(fmt.Sprintf("w%d", w))
				if !ok {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				act := actNormal
				if r := rng.Float64(); r < 0.12 {
					act = actDie
				} else if r < 0.22 {
					act = actHang
				} else if r < 0.30 {
					act = actSlowBeat
				} else if r < 0.38 {
					act = actDupDeliver
				}
				if act != actNormal {
					injected.Add(1)
				}
				switch act {
				case actDie:
					continue // worker "crashes": the lease just rots
				case actHang, actSlowBeat:
					// Both miss the deadline (actSlowBeat's only heartbeat is
					// already too late) and then deliver anyway — the
					// accepted-or-dropped path.
					res, err := experiments.ComputeJob(context.Background(), g.Desc)
					if err != nil {
						c.Complete(g.ID, experiments.ExternalResult{}, err.Error())
						continue
					}
					late.Add(1)
					go func(g *Grant, res experiments.ExternalResult) {
						defer late.Done()
						time.Sleep(ttl + ttl/2)
						if act == actSlowBeat {
							_ = c.Heartbeat(g.ID) // too late: ErrLeaseExpired
						}
						_ = c.Complete(g.ID, res, "")
					}(g, res)
				case actDupDeliver:
					res, err := experiments.ComputeJob(context.Background(), g.Desc)
					if err != nil {
						c.Complete(g.ID, experiments.ExternalResult{}, err.Error())
						continue
					}
					if err := c.Complete(g.ID, res, ""); err != nil {
						t.Errorf("chaos worker %d: complete %s: %v", w, g.Desc, err)
					}
					if err := c.Complete(g.ID, res, ""); err != nil {
						t.Errorf("chaos worker %d: duplicate complete %s: %v", w, g.Desc, err)
					}
				default:
					res, err := experiments.ComputeJob(context.Background(), g.Desc)
					if err != nil {
						c.Complete(g.ID, experiments.ExternalResult{}, err.Error())
						continue
					}
					if err := c.Complete(g.ID, res, ""); err != nil {
						t.Errorf("chaos worker %d: complete %s: %v", w, g.Desc, err)
					}
				}
			}
		}(w)
	}
	// Reap on a timer too: with a small fleet every worker can be
	// mid-hang at once, and an abandoned job must still requeue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				c.Reap()
			}
		}
	}()

	select {
	case <-h.Done():
	case <-time.After(90 * time.Second):
		t.Fatalf("chaos run wedged: seed %d fleet %d, stats %+v, progress %+v",
			chaosSeed, fleetSize, c.Stats(), h.Progress())
	}
	close(done)
	wg.Wait()
	late.Wait()

	rep, err := h.Report()
	if err != nil {
		t.Fatalf("chaos run failed: seed %d fleet %d: %v", chaosSeed, fleetSize, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	if injected.Load() == 0 {
		t.Fatalf("seed %d fleet %d: chaos schedule injected no failures — widen the spec", chaosSeed, fleetSize)
	}
	return buf.String(), c.Stats()
}

// TestFleetChaosBitIdentity is the acceptance gate: for chaos seeds
// {1, 7, 42} × fleet sizes {1, 2, 4}, a fleet run under injected
// worker failures produces CSV bytes identical to the single-process
// reference (what llama-bench prints for the same spec), every job is
// accounted, and abandoned leases are observably reassigned.
func TestFleetChaosBitIdentity(t *testing.T) {
	spec := experiments.RunSpec{
		IDs:       []string{"fleet-chaos", "tab1"},
		Seeds:     []int64{1, 2},
		ShardRows: true,
	}
	ref, err := experiments.Execute(context.Background(), experiments.Options{
		IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.WriteTables(&want, "csv"); err != nil {
		t.Fatal(err)
	}
	for _, chaosSeed := range []int64{1, 7, 42} {
		for _, fleetSize := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("seed%d_fleet%d", chaosSeed, fleetSize), func(t *testing.T) {
				got, st := chaosRun(t, chaosSeed, fleetSize, spec)
				if got != want.String() {
					t.Errorf("CSV bytes differ from single-process run (stats %+v)", st)
				}
				if st.Expired == 0 {
					t.Errorf("no lease ever expired (stats %+v) — the schedule injected failures, so reassignment should be observable", st)
				}
				if st.Completed == 0 {
					t.Errorf("no completion recorded (stats %+v)", st)
				}
			})
		}
	}
}
