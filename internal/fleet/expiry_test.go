package fleet

// Lease-expiry clock edges, driven deterministically by the simclock:
// a heartbeat arriving exactly at the deadline keeps the lease (expiry
// is strictly after), a reassignment racing the original holder's
// completion resolves to exactly one writer, and a job survives two
// consecutive holder deaths. Real-time sleeps would make these edges
// racy; the simulated clock makes them exact.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/simclock"
)

// simCoordinator builds a lease-only scheduler and a coordinator whose
// clock is the simclock projected onto a fixed base instant.
func simCoordinator(t *testing.T, ttl time.Duration) (*experiments.Scheduler, *Coordinator, *simclock.Clock) {
	t.Helper()
	sched := experiments.NewScheduler(experiments.SchedulerConfig{LeaseOnly: true})
	t.Cleanup(sched.Close)
	clk := simclock.New()
	base := time.Unix(1_700_000_000, 0)
	c, err := NewCoordinator(Config{
		Sched: sched,
		TTL:   ttl,
		Now:   func() time.Time { return clk.Time(base) },
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched, c, clk
}

// submitCell queues one whole-experiment job (tab1, one seed) and
// returns its handle.
func submitCell(t *testing.T, sched *experiments.Scheduler) *experiments.RunHandle {
	t.Helper()
	h, err := sched.Submit(context.Background(), experiments.RunSpec{IDs: []string{"tab1"}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// finishRun completes the handle's report and fails the test on error.
func finishRun(t *testing.T, h *experiments.RunHandle) {
	t.Helper()
	if _, err := h.Report(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestHeartbeatExactlyAtDeadline: the deadline instant itself is still
// alive — expiry is now.After(deadline), not now >= deadline — so a
// heartbeat landing exactly on it extends the lease, and the first
// instant past it kills the lease.
func TestHeartbeatExactlyAtDeadline(t *testing.T) {
	const ttl = 10 * time.Second
	sched, c, clk := simCoordinator(t, ttl)
	h := submitCell(t, sched)
	g, ok := c.Lease("edge-worker")
	if !ok {
		t.Fatal("no lease granted")
	}

	clk.RunFor(ttl) // exactly the deadline
	c.Reap()
	if err := c.Heartbeat(g.ID); err != nil {
		t.Fatalf("heartbeat exactly at deadline: %v, want lease kept", err)
	}
	if st := c.Stats(); st.Expired != 0 || st.Live != 1 {
		t.Fatalf("stats after at-deadline heartbeat = %+v, want 1 live, 0 expired", st)
	}

	clk.RunFor(ttl) // exactly the extended deadline: still alive
	if err := c.Heartbeat(g.ID); err != nil {
		t.Fatalf("heartbeat at extended deadline: %v", err)
	}

	clk.RunFor(ttl + time.Nanosecond) // one instant past: dead
	c.Reap()
	if err := c.Heartbeat(g.ID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat past deadline: %v, want ErrLeaseExpired", err)
	}
	if st := c.Stats(); st.Expired != 1 || st.Live != 0 {
		t.Fatalf("stats after expiry = %+v, want 1 expired, 0 live", st)
	}

	// The job went back on the queue: the next lease call gets it.
	g2, ok := c.Lease("edge-worker-2")
	if !ok {
		t.Fatal("expired job was not re-grantable")
	}
	if g2.Desc != g.Desc {
		t.Fatalf("re-granted desc %s != original %s", g2.Desc, g.Desc)
	}
	res, err := experiments.ComputeJob(context.Background(), g2.Desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(g2.ID, res, ""); err != nil {
		t.Fatal(err)
	}
	finishRun(t, h)
}

// TestReassignmentRacesCompletion: the lease expires and is re-granted
// while the original holder was merely slow, not dead. Whichever
// completion lands first wins the settle CAS; the other is dropped as
// a duplicate; the run finishes with every job accounted exactly once.
func TestReassignmentRacesCompletion(t *testing.T) {
	const ttl = 5 * time.Second
	sched, c, clk := simCoordinator(t, ttl)
	h := submitCell(t, sched)
	slow, ok := c.Lease("slow-worker")
	if !ok {
		t.Fatal("no lease granted")
	}
	clk.RunFor(ttl + time.Second)
	c.Reap() // slow-worker presumed dead; job requeued
	fast, ok := c.Lease("fast-worker")
	if !ok {
		t.Fatal("requeued job not re-granted")
	}
	res, err := experiments.ComputeJob(context.Background(), slow.Desc)
	if err != nil {
		t.Fatal(err)
	}
	// The presumed-dead holder answers first: its rows are accepted (they
	// are bit-identical to what anyone else would compute).
	if err := c.Complete(slow.ID, res, ""); err != nil {
		t.Fatalf("late completion on expired lease: %v, want accepted", err)
	}
	// The reassigned holder finishes second: dropped as a duplicate.
	if err := c.Complete(fast.ID, res, ""); err != nil {
		t.Fatalf("duplicate completion: %v, want silent drop", err)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Duplicates != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 completed, 1 duplicate, 1 expired", st)
	}
	finishRun(t, h)
}

// TestDoubleReassignAfterTwoDeaths: two consecutive holders die without
// completing; the third grant still carries the same job and its
// completion finishes the run.
func TestDoubleReassignAfterTwoDeaths(t *testing.T) {
	const ttl = 3 * time.Second
	sched, c, clk := simCoordinator(t, ttl)
	h := submitCell(t, sched)
	var descs []experiments.JobDesc
	var last *Grant
	for i := 0; i < 3; i++ {
		g, ok := c.Lease("doomed")
		if !ok {
			t.Fatalf("grant %d: no lease", i)
		}
		descs = append(descs, g.Desc)
		last = g
		if i < 2 {
			clk.RunFor(ttl + time.Millisecond)
			c.Reap()
		}
	}
	if descs[0] != descs[1] || descs[1] != descs[2] {
		t.Fatalf("reassignments drifted: %v", descs)
	}
	if st := c.Stats(); st.Expired != 2 {
		t.Fatalf("stats = %+v, want exactly 2 expired", st)
	}
	res, err := experiments.ComputeJob(context.Background(), last.Desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(last.ID, res, ""); err != nil {
		t.Fatal(err)
	}
	finishRun(t, h)
}

// TestLeaseRecordPurge: terminal lease records answer idempotently for
// 2×TTL, then age out to ErrUnknownLease — the coordinator's memory is
// bounded by recent leases, not every lease ever granted.
func TestLeaseRecordPurge(t *testing.T) {
	const ttl = 4 * time.Second
	sched, c, clk := simCoordinator(t, ttl)
	h := submitCell(t, sched)
	g, ok := c.Lease("w")
	if !ok {
		t.Fatal("no lease granted")
	}
	res, err := experiments.ComputeJob(context.Background(), g.Desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(g.ID, res, ""); err != nil {
		t.Fatal(err)
	}
	// Within the retention horizon a repeat answer is a clean no-op.
	clk.RunFor(ttl)
	if err := c.Complete(g.ID, res, ""); err != nil {
		t.Fatalf("repeat completion inside retention: %v", err)
	}
	// Past 2×TTL the record is purged.
	clk.RunFor(2*ttl + time.Second)
	c.Reap()
	if err := c.Complete(g.ID, res, ""); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("completion after purge: %v, want ErrUnknownLease", err)
	}
	if err := c.Heartbeat(g.ID); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("heartbeat after purge: %v, want ErrUnknownLease", err)
	}
	finishRun(t, h)
}

// TestWorkerErrorFailsRun: a completion carrying a worker error fails
// the submission with that error, like a local worker failure.
func TestWorkerErrorFailsRun(t *testing.T) {
	sched, c, _ := simCoordinator(t, 5*time.Second)
	h := submitCell(t, sched)
	g, ok := c.Lease("w")
	if !ok {
		t.Fatal("no lease granted")
	}
	if err := c.Complete(g.ID, experiments.ExternalResult{}, "bias driver browned out"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Report(); err == nil {
		t.Fatal("run succeeded despite worker failure")
	} else if got := err.Error(); !strings.Contains(got, "browned out") {
		t.Fatalf("run error %q does not carry the worker failure", got)
	}
	if st := c.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 failed", st)
	}
}
