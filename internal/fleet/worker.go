package fleet

// Worker is the pull loop a fleet process runs (cmd/llama-worker):
// lease a job, heartbeat it at TTL/3 while computing, post the result,
// repeat. Compute is pure in the job desc (experiments.ComputeJob), so
// any worker — or the coordinator recomputing after this worker's
// death — produces the same bytes.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/store"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Client reaches the coordinator. Required.
	Client *Client
	// Name identifies the worker in coordinator logs; defaults to
	// "worker".
	Name string
	// Store, when non-nil, persists whole-experiment cell results
	// directly (shared filesystem deployments); sharded point batches
	// are partial cells and always flow back through the coordinator,
	// whose finalize persists them. Duplicate cell writes from racing
	// workers are safe: records are deterministic and written atomically
	// (see internal/store's cross-process notes).
	Store *store.Store
	// Poll is the idle backoff between lease attempts when the
	// coordinator has no work; defaults to 200ms.
	Poll time.Duration
	// Logf, when non-nil, receives one line per job.
	Logf func(format string, args ...any)
	// Compute overrides the job executor; defaults to
	// experiments.ComputeJob. Tests inject hangs and failures here.
	Compute func(ctx context.Context, d experiments.JobDesc) (experiments.ExternalResult, error)
	// Tables, when non-nil, is consulted before each lease request and
	// its report piggybacked to the coordinator (GET /fleet/stats shows
	// the latest per worker). cmd/llama-worker wires it to the process's
	// live response-table stats plus the warm-start import counts.
	Tables func() *WorkerTables
}

// Worker runs the fleet pull loop against one coordinator.
type Worker struct {
	cfg  WorkerConfig
	jobs atomic.Int64
}

// NewWorker validates cfg and returns a worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Client == nil {
		return nil, errors.New("fleet: WorkerConfig.Client is required")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Compute == nil {
		cfg.Compute = experiments.ComputeJob
	}
	return &Worker{cfg: cfg}, nil
}

// Jobs returns how many jobs this worker has completed or failed.
func (w *Worker) Jobs() int64 { return w.jobs.Load() }

// Run pulls and executes jobs until ctx is cancelled; it returns
// ctx.Err() then. Transient coordinator errors (connection refused
// during a restart, 5xx) back off and retry rather than kill the loop.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var wt *WorkerTables
		if w.cfg.Tables != nil {
			wt = w.cfg.Tables()
		}
		grant, ok, err := w.cfg.Client.Lease(w.cfg.Name, wt)
		if err != nil {
			w.cfg.Logf("fleet worker %s: lease: %v (retrying)", w.cfg.Name, err)
			if !sleepCtx(ctx, w.cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			if !sleepCtx(ctx, w.cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		w.runJob(ctx, grant)
		w.jobs.Add(1)
	}
}

// runJob computes one granted job under a heartbeat, then posts its
// result or failure.
func (w *Worker) runJob(ctx context.Context, g Grant) {
	w.cfg.Logf("fleet worker %s: %s under %s", w.cfg.Name, g.Desc, g.ID)
	// The compute context dies with the lease: once a heartbeat comes
	// back "expired" the job has been requeued, so burning more CPU on
	// it only produces a duplicate the coordinator will drop anyway.
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		period := g.TTL / 3
		if period <= 0 {
			period = time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-jctx.Done():
				return
			case <-t.C:
				if err := w.cfg.Client.Heartbeat(g.ID); errors.Is(err, ErrLeaseExpired) || errors.Is(err, ErrUnknownLease) {
					w.cfg.Logf("fleet worker %s: lost lease %s: %v", w.cfg.Name, g.ID, err)
					cancel()
					return
				}
			}
		}
	}()
	res, err := w.cfg.Compute(jctx, g.Desc)
	cancel()
	<-hbDone
	if err != nil {
		if jctx.Err() != nil {
			// Lost the lease or the worker is shutting down: either way the
			// job is not failed, just abandoned — the lease expires and the
			// coordinator reassigns it. Reporting the cancellation as a
			// worker failure here would wrongly fail the whole run on a
			// clean Ctrl-C.
			w.cfg.Logf("fleet worker %s: abandoning %s: %v", w.cfg.Name, g.Desc, err)
			return
		}
		w.cfg.Logf("fleet worker %s: %s failed: %v", w.cfg.Name, g.Desc, err)
		if err := w.cfg.Client.Fail(g.ID, err); err != nil {
			w.cfg.Logf("fleet worker %s: reporting failure for %s: %v", w.cfg.Name, g.ID, err)
		}
		return
	}
	if w.cfg.Store != nil && res.Cell != nil {
		rec := experiments.CellRecord(res.Cell, g.Desc.Seed, store.Meta{
			Concurrency: 1, ElapsedNs: int64(res.Elapsed),
		})
		if perr := w.cfg.Store.Put(rec); perr != nil {
			w.cfg.Logf("fleet worker %s: persisting %s: %v", w.cfg.Name, g.Desc, perr)
		} else if perr := w.cfg.Store.Sync(); perr != nil {
			w.cfg.Logf("fleet worker %s: syncing store: %v", w.cfg.Name, perr)
		}
	}
	if err := w.cfg.Client.Complete(g.ID, res); err != nil {
		w.cfg.Logf("fleet worker %s: completing %s: %v", w.cfg.Name, g.ID, err)
	}
}

// sleepCtx sleeps d or until ctx is done; it reports whether the sleep
// ran its full course.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
