package fleet

// HTTP wire layer of the lease protocol. Floats cross the wire as
// strconv 'g'/-1 strings — the store's lossless encoding — because
// encoding/json rejects NaN/±Inf float64 values and several
// experiments legitimately produce them; the string round trip is
// bit-exact, which invariant 9 requires.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/store"
)

// Wire types.

// leaseRequest is the body of POST /fleet/lease.
type leaseRequest struct {
	// Worker is a self-chosen worker name, used only in coordinator logs
	// and stats attribution.
	Worker string `json:"worker"`
	// Tables, when present, piggybacks the worker's response-table
	// warmth report on the lease poll (surfaced via GET /fleet/stats).
	// Optional so pre-existing workers stay wire-compatible.
	Tables *WorkerTables `json:"tables,omitempty"`
}

// leaseResponse is the 200 body of POST /fleet/lease; "no job" is a
// bare 204.
type leaseResponse struct {
	// LeaseID names the grant in heartbeat/complete calls.
	LeaseID string `json:"lease_id"`
	// Job is the work to compute.
	Job wireDesc `json:"job"`
	// TTLMillis is the heartbeat deadline interval in milliseconds.
	TTLMillis int64 `json:"ttl_ms"`
}

// wireDesc mirrors experiments.JobDesc field for field.
type wireDesc struct {
	ID      string `json:"id"`
	Seed    int64  `json:"seed"`
	Sharded bool   `json:"sharded"`
	Point   int    `json:"point"`
	Count   int    `json:"count"`
}

func toWireDesc(d experiments.JobDesc) wireDesc {
	return wireDesc{ID: d.ID, Seed: d.Seed, Sharded: d.Sharded, Point: d.Point, Count: d.Count}
}

func (w wireDesc) desc() experiments.JobDesc {
	return experiments.JobDesc{ID: w.ID, Seed: w.Seed, Sharded: w.Sharded, Point: w.Point, Count: w.Count}
}

// heartbeatRequest is the body of POST /fleet/heartbeat.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// completeRequest is the body of POST /fleet/complete: either Error
// (the worker's compute failure) or the job-shaped result payload.
type completeRequest struct {
	LeaseID string `json:"lease_id"`
	// Error, when non-empty, reports the worker's compute failure; the
	// result fields are then ignored.
	Error string `json:"error,omitempty"`
	// Points carries a sharded job's per-point output, in batch order.
	Points []wirePoint `json:"points,omitempty"`
	// Cell carries a whole-experiment job's table.
	Cell *wireResult `json:"cell,omitempty"`
	// ElapsedMillis is the worker's compute time for the job.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// wirePoint is one sweep point's output with string-encoded rows.
type wirePoint struct {
	Rows  [][]string `json:"rows,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

// wireResult is a whole experiment table with string-encoded rows.
type wireResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
}

// decodeWireRows parses string cells back to float64 rows (bit-exact,
// NaN/±Inf included).
func decodeWireRows(rows [][]string) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		dec := make([]float64, len(row))
		for j, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: non-numeric cell %q", i, j, s)
			}
			dec[j] = v
		}
		out[i] = dec
	}
	return out, nil
}

// toWire encodes an in-memory result for the completion payload.
func toWire(res experiments.ExternalResult) ([]wirePoint, *wireResult) {
	var pts []wirePoint
	for _, p := range res.Points {
		pts = append(pts, wirePoint{Rows: store.EncodeRows(p.Rows), Notes: p.Notes})
	}
	var cell *wireResult
	if res.Cell != nil {
		cell = &wireResult{
			ID:      res.Cell.ID,
			Title:   res.Cell.Title,
			Columns: res.Cell.Columns,
			Rows:    store.EncodeRows(res.Cell.Rows),
			Notes:   res.Cell.Notes,
		}
	}
	return pts, cell
}

// fromWire decodes a completion payload back to an ExternalResult.
func fromWire(req completeRequest) (experiments.ExternalResult, error) {
	var out experiments.ExternalResult
	out.Elapsed = time.Duration(req.ElapsedMillis) * time.Millisecond
	for i, p := range req.Points {
		rows, err := decodeWireRows(p.Rows)
		if err != nil {
			return out, fmt.Errorf("point %d: %w", i, err)
		}
		out.Points = append(out.Points, experiments.PointResult{Rows: rows, Notes: p.Notes})
	}
	if req.Cell != nil {
		rows, err := decodeWireRows(req.Cell.Rows)
		if err != nil {
			return out, fmt.Errorf("cell: %w", err)
		}
		out.Cell = &experiments.Result{
			ID:      req.Cell.ID,
			Title:   req.Cell.Title,
			Columns: req.Cell.Columns,
			Rows:    rows,
			Notes:   req.Cell.Notes,
		}
	}
	return out, nil
}

// Handler serves the coordinator's lease protocol:
//
//	POST /fleet/lease      {"worker":W}            -> 200 grant | 204 no job
//	POST /fleet/heartbeat  {"lease_id":L}          -> 204 | 404 unknown | 409 expired
//	POST /fleet/complete   {"lease_id":L, ...}     -> 204 | 404 unknown | 400 malformed
//	GET  /fleet/stats                              -> 200 Stats JSON
//
// Mount it on the serving mux at "/" — its patterns carry the /fleet
// prefix already.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.Tables != nil {
			c.RecordWorkerTables(req.Worker, *req.Tables)
		}
		g, ok := c.Lease(req.Worker)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, leaseResponse{
			LeaseID:   g.ID,
			Job:       toWireDesc(g.Desc),
			TTLMillis: g.TTL.Milliseconds(),
		})
	})
	mux.HandleFunc("POST /fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		switch err := c.Heartbeat(req.LeaseID); {
		case errors.Is(err, ErrUnknownLease):
			httpError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrLeaseExpired):
			httpError(w, http.StatusConflict, err.Error())
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	mux.HandleFunc("POST /fleet/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := fromWire(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		switch err := c.Complete(req.LeaseID, res, req.Error); {
		case errors.Is(err, ErrUnknownLease):
			httpError(w, http.StatusNotFound, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	mux.HandleFunc("GET /fleet/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	return mux
}

// readJSON decodes the request body into v, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Client speaks the worker side of the wire protocol against one
// coordinator base URL.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// HTTP is the underlying client; nil means a 30s-timeout default.
	HTTP *http.Client
}

// httpClient returns the configured or default underlying client.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// post sends one JSON request and decodes the reply into out (when out
// is non-nil and the reply has a body). It maps the protocol's error
// statuses back to the coordinator's sentinel errors.
func (c *Client) post(path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound:
		return resp.StatusCode, ErrUnknownLease
	case http.StatusConflict:
		return resp.StatusCode, ErrLeaseExpired
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: %s: decoding reply: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Lease requests a job, optionally piggybacking the worker's
// response-table warmth report (nil to report nothing); ok is false
// when the coordinator has none right now.
func (c *Client) Lease(worker string, tables *WorkerTables) (grant Grant, ok bool, err error) {
	var resp leaseResponse
	status, err := c.post("/fleet/lease", leaseRequest{Worker: worker, Tables: tables}, &resp)
	if err != nil {
		return Grant{}, false, err
	}
	if status == http.StatusNoContent {
		return Grant{}, false, nil
	}
	return Grant{
		ID:   resp.LeaseID,
		Desc: resp.Job.desc(),
		TTL:  time.Duration(resp.TTLMillis) * time.Millisecond,
	}, true, nil
}

// Heartbeat extends the lease; ErrLeaseExpired / ErrUnknownLease map
// the protocol's 409/404.
func (c *Client) Heartbeat(leaseID string) error {
	_, err := c.post("/fleet/heartbeat", heartbeatRequest{LeaseID: leaseID}, nil)
	return err
}

// Complete posts the job's computed result under its lease.
func (c *Client) Complete(leaseID string, res experiments.ExternalResult) error {
	pts, cell := toWire(res)
	_, err := c.post("/fleet/complete", completeRequest{
		LeaseID:       leaseID,
		Points:        pts,
		Cell:          cell,
		ElapsedMillis: res.Elapsed.Milliseconds(),
	}, nil)
	return err
}

// Fail reports the worker's compute failure under its lease.
func (c *Client) Fail(leaseID string, workErr error) error {
	msg := "unknown worker error"
	if workErr != nil {
		msg = workErr.Error()
	}
	_, err := c.post("/fleet/complete", completeRequest{LeaseID: leaseID, Error: msg}, nil)
	return err
}

// Stats fetches the coordinator's lease counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.httpClient().Get(c.Base + "/fleet/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("fleet: /fleet/stats: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
