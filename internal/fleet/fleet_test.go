package fleet

// End-to-end coverage over real HTTP: llama-worker's loop (Worker +
// Client) against the coordinator's Handler, including the scaling
// property the fleet exists for (wall-clock shrinks as workers join)
// and mid-run worker death with observable reassignment.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/store"
)

const sleepPointMs = 15

func init() {
	// A sweep whose points cost real wall-clock, so fleet scaling is
	// measurable: 12 points × 15ms ≈ 180ms of serial compute.
	experiments.RegisterSweep(&experiments.Sweep{
		ID:          "fleet-sleep",
		Description: "test-only sweep with slow points for fleet scaling runs",
		Title:       "fleet scaling fixture",
		Columns:     []string{"i", "seed"},
		Points:      12,
		Point: func(ctx context.Context, seed int64, i int) (experiments.PointResult, error) {
			select {
			case <-ctx.Done():
				return experiments.PointResult{}, ctx.Err()
			case <-time.After(sleepPointMs * time.Millisecond):
			}
			return experiments.Row(float64(i), float64(seed)), nil
		},
	})
}

// httpFleet wires a lease-only scheduler, coordinator and HTTP server.
func httpFleet(t *testing.T, ttl time.Duration) (*experiments.Scheduler, *Coordinator, *httptest.Server) {
	t.Helper()
	sched := experiments.NewScheduler(experiments.SchedulerConfig{LeaseOnly: true})
	t.Cleanup(sched.Close)
	c, err := NewCoordinator(Config{Sched: sched, TTL: ttl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(Handler(c))
	t.Cleanup(ts.Close)
	return sched, c, ts
}

// startWorkers runs n fleet workers against base until the returned
// stop function is called (it joins them).
func startWorkers(t *testing.T, base string, n int, cfg func(*WorkerConfig)) (workers []*Worker, stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := WorkerConfig{
			Client: &Client{Base: base},
			Name:   fmt.Sprintf("w%d", i),
			Poll:   5 * time.Millisecond,
			Logf:   t.Logf,
		}
		if cfg != nil {
			cfg(&wc)
		}
		w, err := NewWorker(wc)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return workers, func() { cancel(); wg.Wait() }
}

// runCSV submits spec, waits, and renders CSV.
func runCSV(t *testing.T, sched *experiments.Scheduler, spec experiments.RunSpec) string {
	t.Helper()
	h, err := sched.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// referenceCSV renders the serial single-process bytes for spec.
func referenceCSV(t *testing.T, spec experiments.RunSpec) string {
	t.Helper()
	rep, err := experiments.Execute(context.Background(), experiments.Options{
		IDs: spec.IDs, Seeds: spec.Seeds, Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetHTTPEndToEnd: real Workers over real HTTP drain a
// lease-only run — sharded sweep jobs and whole-experiment cells,
// NaN/Inf cells included — to bytes identical to the single-process
// reference, and the workers' whole-cell records land in the shared
// store byte-identically to coordinator-side persistence.
func TestFleetHTTPEndToEnd(t *testing.T) {
	spec := experiments.RunSpec{
		IDs:   []string{"fleet-chaos", "tab1"},
		Seeds: []int64{1, 2},
		// tab1 rides whole-cell (unsharded sweeps still shard when
		// ShardRows is set, so shard fleet-chaos but keep batches >1).
		ShardRows: true,
		BatchRows: 4,
	}
	want := referenceCSV(t, spec)
	sched, c, ts := httpFleet(t, 2*time.Second)
	dir := t.TempDir()
	wst, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	workers, stop := startWorkers(t, ts.URL, 3, func(wc *WorkerConfig) { wc.Store = wst })
	defer stop()
	if got := runCSV(t, sched, spec); got != want {
		t.Error("fleet-over-HTTP bytes differ from single-process run")
	}
	var jobs int64
	for _, w := range workers {
		jobs += w.Jobs()
	}
	if jobs == 0 {
		t.Error("no worker reported completing any job")
	}
	if st := c.Stats(); st.Completed == 0 {
		t.Errorf("coordinator stats %+v: no completions", st)
	}
}

// TestFleetWorkerDeathMidRun: a worker killed while holding leases has
// its jobs reassigned within the heartbeat timeout and the run still
// finishes with reference bytes — the process-kill drill the CI smoke
// repeats with real OS processes.
func TestFleetWorkerDeathMidRun(t *testing.T) {
	spec := experiments.RunSpec{IDs: []string{"fleet-sleep"}, Seeds: []int64{1, 2}, ShardRows: true}
	want := referenceCSV(t, spec)
	const ttl = 200 * time.Millisecond
	sched, c, ts := httpFleet(t, ttl)

	// The doomed worker computes slowly and is killed mid-job.
	doomedCtx, killDoomed := context.WithCancel(context.Background())
	doomed, err := NewWorker(WorkerConfig{
		Client: &Client{Base: ts.URL},
		Name:   "doomed",
		Poll:   5 * time.Millisecond,
		Logf:   t.Logf,
		Compute: func(ctx context.Context, d experiments.JobDesc) (experiments.ExternalResult, error) {
			select {
			case <-ctx.Done(): // killed (or lease lost): never completes
				return experiments.ExternalResult{}, ctx.Err()
			case <-time.After(time.Hour):
				return experiments.ExternalResult{}, errors.New("unreachable")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	doomedDone := make(chan struct{})
	go func() { defer close(doomedDone); _ = doomed.Run(doomedCtx) }()

	// Wait until the doomed worker actually holds a lease, then kill it.
	deadline := time.Now().Add(10 * time.Second)
	h, err := sched.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for c.Stats().Granted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killed := time.Now()
	killDoomed()
	<-doomedDone

	// A healthy fleet picks up the pieces.
	_, stop := startWorkers(t, ts.URL, 2, nil)
	defer stop()
	for c.Stats().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("killed worker's lease never expired (stats %+v)", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if waited := time.Since(killed); waited > 4*ttl {
		t.Errorf("reassignment took %v, want within a few heartbeat timeouts (%v)", waited, ttl)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTables(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Error("bytes differ after mid-run worker death")
	}
}

// TestFleetScaling: the fleet's reason to exist — the same run's
// wall-clock shrinks as workers are added. fleet-sleep serializes to
// ~360ms of compute (24 points × 15ms); four workers should beat one
// comfortably even on a loaded CI box.
func TestFleetScaling(t *testing.T) {
	spec := experiments.RunSpec{IDs: []string{"fleet-sleep"}, Seeds: []int64{1, 2}, ShardRows: true}
	want := referenceCSV(t, spec)
	elapsed := make(map[int]time.Duration)
	for _, n := range []int{1, 4} {
		sched, _, ts := httpFleet(t, 5*time.Second)
		_, stop := startWorkers(t, ts.URL, n, nil)
		start := time.Now()
		if got := runCSV(t, sched, spec); got != want {
			t.Errorf("fleet of %d: bytes differ from single-process run", n)
		}
		elapsed[n] = time.Since(start)
		stop()
	}
	t.Logf("wall-clock: 1 worker %v, 4 workers %v", elapsed[1], elapsed[4])
	if elapsed[4] >= elapsed[1] {
		t.Errorf("adding workers did not shrink wall-clock: 1 worker %v, 4 workers %v", elapsed[1], elapsed[4])
	}
}

// TestWireEncodingRoundTrip: NaN and ±Inf survive the completion
// payload bit-exactly — the reason rows cross as strings, not JSON
// numbers.
func TestWireEncodingRoundTrip(t *testing.T) {
	res, err := experiments.ComputeJob(context.Background(), experiments.JobDesc{
		ID: "fleet-chaos", Seed: 3, Sharded: true, Point: 0, Count: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, cell := toWire(res)
	back, err := fromWire(completeRequest{Points: pts, Cell: cell})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatalf("round trip lost points: %d != %d", len(back.Points), len(res.Points))
	}
	for i := range res.Points {
		a, b := res.Points[i].Rows, back.Points[i].Rows
		if len(a) != len(b) {
			t.Fatalf("point %d: row count %d != %d", i, len(b), len(a))
		}
		for r := range a {
			for c := range a[r] {
				av, bv := a[r][c], b[r][c]
				if av != bv && !(av != av && bv != bv) { // NaN-safe compare
					t.Errorf("point %d row %d col %d: %v != %v", i, r, c, bv, av)
				}
			}
		}
	}
}

// TestHandlerErrorMapping: unknown and expired leases map to 404/409
// sentinels through the client, and malformed JSON is a 400.
func TestHandlerErrorMapping(t *testing.T) {
	_, _, ts := httpFleet(t, time.Second)
	cl := &Client{Base: ts.URL}
	if err := cl.Heartbeat("lease-999"); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("heartbeat unknown: %v, want ErrUnknownLease", err)
	}
	if err := cl.Complete("lease-999", experiments.ExternalResult{}); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("complete unknown: %v, want ErrUnknownLease", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/fleet/lease", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed lease body: %d, want 400", resp.StatusCode)
	}
}
