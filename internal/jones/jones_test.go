package jones

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

func TestLinearStates(t *testing.T) {
	h := Horizontal()
	v := Vertical()
	if math.Abs(h.Norm()-1) > 1e-12 || math.Abs(v.Norm()-1) > 1e-12 {
		t.Fatal("basis states not normalized")
	}
	// Orthogonal linear states couple zero power — the mismatch scenario.
	if p := PLF(h, v); p > 1e-20 {
		t.Errorf("PLF(H,V) = %v, want 0", p)
	}
	if p := PLF(h, h); math.Abs(p-1) > 1e-12 {
		t.Errorf("PLF(H,H) = %v, want 1", p)
	}
}

func TestPLFMalusLaw(t *testing.T) {
	// PLF between linear states at relative angle θ is cos²θ (Malus).
	for _, deg := range []float64{0, 15, 30, 45, 60, 75, 90} {
		th := units.Radians(deg)
		got := PLF(LinearAt(0), LinearAt(th))
		want := math.Cos(th) * math.Cos(th)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("PLF at %v° = %v, want %v", deg, got, want)
		}
	}
}

func TestPLFCircularToLinear(t *testing.T) {
	// Circular↔linear coupling loses exactly 3 dB (paper §2).
	for _, lin := range []Vector{Horizontal(), Vertical(), LinearAt(0.3)} {
		got := PLFdB(CircularRight(), lin)
		if math.Abs(got+3.0103) > 1e-3 {
			t.Errorf("circular→linear = %v dB, want −3.01", got)
		}
	}
}

func TestPLFdBOrthogonal(t *testing.T) {
	// cos(π/2) is ~6e-17 in floats, so the PLF is a denormal-tiny number
	// rather than exactly zero; anything below -200 dB is "orthogonal".
	if got := PLFdB(Horizontal(), Vertical()); got > -200 {
		t.Errorf("orthogonal PLF = %v dB, want < -200", got)
	}
	if PLF(Vector{}, Horizontal()) != 0 {
		t.Error("zero state PLF should be 0")
	}
}

func TestCircularStates(t *testing.T) {
	r := CircularRight()
	l := CircularLeft()
	if p := PLF(r, l); p > 1e-20 {
		t.Errorf("PLF(RHC,LHC) = %v, want 0", p)
	}
	if ar := AxialRatio(r); math.Abs(ar-1) > 1e-9 {
		t.Errorf("axial ratio of circular = %v, want 1", ar)
	}
	if dl := DegreeOfLinearity(r); dl > 1e-12 {
		t.Errorf("degree of linearity of circular = %v, want 0", dl)
	}
}

func TestEllipticalMatchesEq1(t *testing.T) {
	// Eq. (1): [a, b·e^{jπ/2}].
	v := Elliptical(3, 4, math.Pi/2)
	if real(v.X) != 3 || imag(v.X) != 0 {
		t.Errorf("X component = %v", v.X)
	}
	if math.Abs(real(v.Y)) > 1e-12 || math.Abs(imag(v.Y)-4) > 1e-12 {
		t.Errorf("Y component = %v, want 4j", v.Y)
	}
}

func TestQuarterWavePlateAction(t *testing.T) {
	// A QWP at 45° turns horizontal linear into circular.
	q := QWPAt(0, math.Pi/4)
	out := q.MulVec(Horizontal())
	if dl := DegreeOfLinearity(out); dl > 1e-9 {
		t.Errorf("QWP@45(H) linearity = %v, want 0 (circular)", dl)
	}
	// Power is conserved (lossless plate).
	if math.Abs(out.NormSq()-1) > 1e-12 {
		t.Errorf("QWP not unitary: out power %v", out.NormSq())
	}
	// QWP aligned with the axes leaves H and V unchanged in power.
	qa := QuarterWavePlate(0)
	if p := TransmittedPower(qa, Horizontal()); math.Abs(p-1) > 1e-12 {
		t.Errorf("aligned QWP transmits %v of H", p)
	}
}

func TestHalfWavePlateFlips(t *testing.T) {
	// HWP at angle θ maps linear at φ to linear at 2θ−φ.
	h := Rotated(HalfWavePlate(0), units.Radians(30))
	out := h.MulVec(LinearAt(0))
	got := OrientationAngle(out)
	if math.Abs(got-units.Radians(60)) > 1e-9 {
		t.Errorf("HWP@30°(H) orientation = %v°, want 60°", units.Degrees(got))
	}
}

func TestPolarizationRotatorEq8(t *testing.T) {
	// The composed rotator must equal a pure rotation by δ/2 (Eq. 8),
	// up to common phase, for any δ.
	for _, deltaDeg := range []float64{0, 10, 30, 45, 60, 90, 120, 179} {
		delta := units.Radians(deltaDeg)
		p := PolarizationRotator(0.2, 0.7, delta)
		got := RotationAngle(p)
		want := delta / 2
		// RotationAngle folds to (−π/2, π/2]; δ/2 ≤ 89.5° here so no fold.
		if math.Abs(math.Abs(got)-want) > 1e-9 {
			t.Errorf("δ=%v°: rotator angle = %v°, want ±%v°",
				deltaDeg, units.Degrees(got), units.Degrees(want))
		}
		// And it must be unitary (lossless ideal elements).
		if !p.IsUnitary(1e-9) {
			t.Errorf("δ=%v°: rotator is not unitary", deltaDeg)
		}
	}
}

func TestPolarizationRotatorCorrectsMismatch(t *testing.T) {
	// End-to-end §2 story: V-polarized Tx, H-polarized Rx — complete
	// mismatch. A rotator with δ = π recovers full coupling.
	tx := Vertical()
	rx := Horizontal()
	if PLF(tx, rx) > 1e-20 {
		// expected: total mismatch
	} else {
		p := PolarizationRotator(0, 0, math.Pi) // rotates by 90°
		out := p.MulVec(tx)
		if got := PLF(out, rx); math.Abs(got-1) > 1e-9 {
			t.Errorf("rotated PLF = %v, want 1", got)
		}
	}
}

func TestRotationAngleOfPureRotations(t *testing.T) {
	for _, deg := range []float64{-89, -45, -10, 0, 10, 45, 89} {
		th := units.Radians(deg)
		got := RotationAngle(Rotator(th))
		if math.Abs(got-th) > 1e-12 {
			t.Errorf("RotationAngle(R(%v°)) = %v°", deg, units.Degrees(got))
		}
		// With an arbitrary common phase attached.
		m := Rotator(th).Scale(complex(math.Cos(1.1), math.Sin(1.1)))
		got = RotationAngle(m)
		if math.Abs(got-th) > 1e-9 {
			t.Errorf("phase-scaled RotationAngle = %v°, want %v°", units.Degrees(got), deg)
		}
	}
}

func TestRotationAngleFoldsModuloPi(t *testing.T) {
	// Rotations by θ and θ−π give the same folded angle.
	th := units.Radians(120)
	got := RotationAngle(Rotator(th))
	want := units.Radians(120 - 180)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("fold: got %v°, want %v°", units.Degrees(got), units.Degrees(want))
	}
}

func TestLinearPolarizer(t *testing.T) {
	p := LinearPolarizer(0)
	// Passes H fully, blocks V.
	if got := TransmittedPower(p, Horizontal()); math.Abs(got-1) > 1e-12 {
		t.Errorf("polarizer passes %v of aligned", got)
	}
	if got := TransmittedPower(p, Vertical()); got > 1e-20 {
		t.Errorf("polarizer passes %v of crossed", got)
	}
	// At 45° it passes half.
	if got := TransmittedPower(LinearPolarizer(math.Pi/4), Horizontal()); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("45° polarizer passes %v, want 0.5", got)
	}
}

func TestLossyBirefringent(t *testing.T) {
	b := LossyBirefringent(0, math.Pi/3, 0.8, 0.6)
	if b.IsUnitary(1e-6) {
		t.Error("lossy BFS should not be unitary")
	}
	if got := TransmittedPower(b, Horizontal()); math.Abs(got-0.64) > 1e-12 {
		t.Errorf("lossy BFS X power = %v, want 0.64", got)
	}
	if got := TransmittedPower(b, Vertical()); math.Abs(got-0.36) > 1e-12 {
		t.Errorf("lossy BFS Y power = %v, want 0.36", got)
	}
}

func TestStokesKnownStates(t *testing.T) {
	s0, s1, s2, s3 := Stokes(Horizontal())
	if s0 != 1 || s1 != 1 || s2 != 0 || s3 != 0 {
		t.Errorf("Stokes(H) = %v %v %v %v", s0, s1, s2, s3)
	}
	s0, s1, s2, s3 = Stokes(LinearAt(math.Pi / 4))
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1) > 1e-12 || math.Abs(s2-1) > 1e-12 || math.Abs(s3) > 1e-12 {
		t.Errorf("Stokes(45°) = %v %v %v %v", s0, s1, s2, s3)
	}
	_, _, _, s3 = Stokes(CircularLeft())
	if math.Abs(s3-1) > 1e-12 {
		t.Errorf("Stokes(LHC) S3 = %v, want 1", s3)
	}
}

func TestStokesIdentity(t *testing.T) {
	// S0² = S1² + S2² + S3² for fully polarized states.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		v := Vector{
			X: complex(r.Float64()*2-1, r.Float64()*2-1),
			Y: complex(r.Float64()*2-1, r.Float64()*2-1),
		}
		s0, s1, s2, s3 := Stokes(v)
		lhs := s0 * s0
		rhs := s1*s1 + s2*s2 + s3*s3
		if math.Abs(lhs-rhs) > 1e-9*(1+lhs) {
			t.Fatalf("Stokes identity failed: %v vs %v", lhs, rhs)
		}
	}
}

func TestOrientationAngle(t *testing.T) {
	for _, deg := range []float64{-80, -45, 0, 30, 45, 80} {
		v := LinearAt(units.Radians(deg))
		got := units.Degrees(OrientationAngle(v))
		if math.Abs(got-deg) > 1e-9 {
			t.Errorf("orientation of linear@%v° = %v°", deg, got)
		}
	}
}

func TestRotatorMovesOrientation(t *testing.T) {
	// Property: a rotator by θ moves a linear state's orientation by θ.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		start := math.Mod(a, math.Pi/3) // stay away from fold boundaries
		rot := math.Mod(b, math.Pi/8)
		v := LinearAt(start)
		out := Rotator(rot).MulVec(v)
		got := OrientationAngle(out)
		want := units.NormalizeAngle(start + rot)
		diff := math.Abs(units.NormalizeAngle(got - want))
		// Orientation is mod π.
		return diff < 1e-6 || math.Abs(diff-math.Pi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCascadeOrder(t *testing.T) {
	// A polarizer at 0° followed by a rotator: order matters.
	pol := LinearPolarizer(0)
	rot := Rotator(math.Pi / 2)
	// V → polarizer (blocked) → rotator: zero.
	m1 := Cascade(pol, rot)
	if p := TransmittedPower(m1, Vertical()); p > 1e-20 {
		t.Errorf("pol-then-rot passes %v of V", p)
	}
	// V → rotator (→H) → polarizer: passes fully.
	m2 := Cascade(rot, pol)
	if p := TransmittedPower(m2, Vertical()); math.Abs(p-1) > 1e-9 {
		t.Errorf("rot-then-pol passes %v of V, want 1", p)
	}
}

func TestCascadeEmpty(t *testing.T) {
	if !Cascade().ApproxEqual(mat2.Identity(), 0) {
		t.Error("empty cascade should be identity")
	}
}

func TestAxialRatioLinear(t *testing.T) {
	if !math.IsInf(AxialRatio(Horizontal()), 1) {
		t.Error("axial ratio of linear should be +Inf")
	}
	if AxialRatio(Vector{}) != math.Inf(1) {
		t.Error("axial ratio of zero vector should be +Inf (χ=0 convention)")
	}
}

func TestTransmittedPowerZeroInput(t *testing.T) {
	if TransmittedPower(Rotator(1), Vector{}) != 0 {
		t.Error("zero input should transmit zero power")
	}
}

func TestRotatorDeltaHalfProperty(t *testing.T) {
	// Property test over the full usable δ range: P(δ) applied to any
	// linear state rotates its orientation by exactly δ/2.
	f := func(deltaRaw, startRaw float64) bool {
		if math.IsNaN(deltaRaw) || math.IsNaN(startRaw) ||
			math.IsInf(deltaRaw, 0) || math.IsInf(startRaw, 0) {
			return true
		}
		delta := math.Abs(math.Mod(deltaRaw, math.Pi*0.9)) // δ ∈ [0, 0.9π)
		start := math.Mod(startRaw, math.Pi/6)
		p := PolarizationRotator(0, 0, delta)
		out := p.MulVec(LinearAt(start))
		got := OrientationAngle(out)
		want := start + delta/2
		d := math.Abs(units.NormalizeAngle(got - want))
		if d > math.Pi/2 {
			d = math.Abs(d - math.Pi) // orientation is mod π
		}
		// Sign of rotation depends on QWP handedness convention; accept
		// either direction but require the magnitude to be δ/2.
		want2 := start - delta/2
		d2 := math.Abs(units.NormalizeAngle(got - want2))
		if d2 > math.Pi/2 {
			d2 = math.Abs(d2 - math.Pi)
		}
		return d < 1e-6 || d2 < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
