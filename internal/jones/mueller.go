package jones

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/llama-surface/llama/internal/mat2"
)

// Mueller is a 4×4 real Mueller matrix acting on Stokes vectors. Where
// Jones calculus describes fully polarized fields, Mueller calculus also
// carries partial polarization — the state of a field after depolarizing
// multipath, which is exactly what a LLAMA surface receives in the
// laboratory environment of §5.1.2.
type Mueller [4][4]float64

// StokesVector is (S0, S1, S2, S3).
type StokesVector [4]float64

// StokesOf returns the Stokes vector of a (fully polarized) Jones state.
func StokesOf(v Vector) StokesVector {
	s0, s1, s2, s3 := Stokes(v)
	return StokesVector{s0, s1, s2, s3}
}

// DegreeOfPolarization returns sqrt(S1²+S2²+S3²)/S0 ∈ [0,1]; zero for an
// unpolarized field, one for fully polarized. Zero-power states return 0.
func (s StokesVector) DegreeOfPolarization() float64 {
	if s[0] <= 0 {
		return 0
	}
	p := math.Sqrt(s[1]*s[1]+s[2]*s[2]+s[3]*s[3]) / s[0]
	if p > 1 {
		return 1
	}
	return p
}

// Power returns S0.
func (s StokesVector) Power() float64 { return s[0] }

// Add superposes two incoherent fields (Stokes vectors add for mutually
// incoherent waves — the multipath-summation property Jones vectors lack).
func (s StokesVector) Add(o StokesVector) StokesVector {
	return StokesVector{s[0] + o[0], s[1] + o[1], s[2] + o[2], s[3] + o[3]}
}

// Scale multiplies all components by k (k ≥ 0 for physical fields).
func (s StokesVector) Scale(k float64) StokesVector {
	return StokesVector{k * s[0], k * s[1], k * s[2], k * s[3]}
}

// Apply returns M·s.
func (m Mueller) Apply(s StokesVector) StokesVector {
	var out StokesVector
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i] += m[i][j] * s[j]
		}
	}
	return out
}

// Mul returns the matrix product m·n (n acts first).
func (m Mueller) Mul(n Mueller) Mueller {
	var out Mueller
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				out[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return out
}

// MuellerIdentity returns the identity element.
func MuellerIdentity() Mueller {
	var m Mueller
	for i := 0; i < 4; i++ {
		m[i][i] = 1
	}
	return m
}

// MuellerFromJones converts a Jones matrix to its Mueller equivalent via
// M = A·(J⊗J*)·A⁻¹ evaluated element-wise with the standard Pauli-basis
// expansion. Any polarization element expressible in Jones form (i.e. any
// non-depolarizing element) converts exactly.
func MuellerFromJones(j Matrix) Mueller {
	// Pauli-like basis expansion: with J = [a b; c d],
	// the coherency transfer gives the closed forms below (Chipman,
	// Handbook of Optics, ch. 14).
	a, b, c, d := j.A, j.B, j.C, j.D
	aa, bb, cc, dd := norm2(a), norm2(b), norm2(c), norm2(d)
	var m Mueller
	m[0][0] = 0.5 * (aa + bb + cc + dd)
	m[0][1] = 0.5 * (aa - bb + cc - dd)
	m[0][2] = real(a*cmplx.Conj(b) + c*cmplx.Conj(d))
	m[0][3] = imag(a*cmplx.Conj(b) + c*cmplx.Conj(d))
	m[1][0] = 0.5 * (aa + bb - cc - dd)
	m[1][1] = 0.5 * (aa - bb - cc + dd)
	m[1][2] = real(a*cmplx.Conj(b) - c*cmplx.Conj(d))
	m[1][3] = imag(a*cmplx.Conj(b) - c*cmplx.Conj(d))
	m[2][0] = real(a*cmplx.Conj(c) + b*cmplx.Conj(d))
	m[2][1] = real(a*cmplx.Conj(c) - b*cmplx.Conj(d))
	m[2][2] = real(a*cmplx.Conj(d) + b*cmplx.Conj(c))
	m[2][3] = imag(a*cmplx.Conj(d) - b*cmplx.Conj(c))
	m[3][0] = -imag(a*cmplx.Conj(c) + b*cmplx.Conj(d))
	m[3][1] = -imag(a*cmplx.Conj(c) - b*cmplx.Conj(d))
	m[3][2] = -imag(a*cmplx.Conj(d) + b*cmplx.Conj(c))
	m[3][3] = real(a*cmplx.Conj(d) - b*cmplx.Conj(c))
	return m
}

func norm2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

// Depolarizer returns the isotropic partial depolarizer that keeps a
// fraction p ∈ [0,1] of the polarized component (p = 1 is identity,
// p = 0 output is fully unpolarized). It panics outside [0,1].
func Depolarizer(p float64) Mueller {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("jones: depolarizer fraction %g outside [0,1]", p))
	}
	var m Mueller
	m[0][0] = 1
	m[1][1], m[2][2], m[3][3] = p, p, p
	return m
}

// DepolarizationIndex returns Chipman's depolarization index of m:
// sqrt((Σ mᵢⱼ² − m00²)/(3·m00²)) ∈ [0,1], 1 for non-depolarizing
// elements. Zero-transmission matrices return 0.
func (m Mueller) DepolarizationIndex() float64 {
	if m[0][0] == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sum += m[i][j] * m[i][j]
		}
	}
	di := math.Sqrt((sum - m[0][0]*m[0][0]) / (3 * m[0][0] * m[0][0]))
	if di > 1 {
		di = 1
	}
	return di
}

// MultipathStokes incoherently sums the Stokes vectors of a set of field
// contributions (Jones vectors scaled by their amplitudes): the partially
// polarized aggregate a receiver in a scattering environment sees over
// timescales longer than the coherence time.
func MultipathStokes(fields []mat2.Vec) StokesVector {
	var acc StokesVector
	for _, f := range fields {
		acc = acc.Add(StokesOf(f))
	}
	return acc
}

// PolarizedReceivedFraction returns the fraction of a partially polarized
// field's power a linear receive antenna at angle psi captures:
// ½·(1 + p·cos(2(ψ−ψ₀))·plin) where the polarized component's linear part
// projects per Malus and the unpolarized half splits evenly. Expressed
// directly from Stokes components:
//
//	f = ½·(S0 + S1·cos2ψ + S2·sin2ψ) / S0
//
// Zero-power fields return 0.
func (s StokesVector) PolarizedReceivedFraction(psi float64) float64 {
	if s[0] <= 0 {
		return 0
	}
	f := 0.5 * (s[0] + s[1]*math.Cos(2*psi) + s[2]*math.Sin(2*psi)) / s[0]
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
