package jones

import (
	"math"
	"math/rand"
	"testing"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

func TestMuellerFromJonesIdentity(t *testing.T) {
	m := MuellerFromJones(mat2.Identity())
	if m != MuellerIdentity() {
		t.Errorf("Mueller of identity Jones = %v", m)
	}
}

func TestMuellerMatchesJonesOnPureStates(t *testing.T) {
	// For any non-depolarizing element, applying the Jones matrix and
	// converting to Stokes must equal applying the Mueller matrix to the
	// input Stokes vector.
	rng := rand.New(rand.NewSource(31))
	elements := []Matrix{
		Rotator(0.3),
		QuarterWavePlate(0.2),
		QWPAt(0, math.Pi/4),
		LinearPolarizer(0.7),
		LossyBirefringent(0.1, 1.1, 0.8, 0.6),
		PolarizationRotator(0, 0, 1.3),
	}
	for ei, el := range elements {
		mm := MuellerFromJones(el)
		for i := 0; i < 50; i++ {
			in := Vector{
				X: complex(rng.NormFloat64(), rng.NormFloat64()),
				Y: complex(rng.NormFloat64(), rng.NormFloat64()),
			}
			viaJones := StokesOf(el.MulVec(in))
			viaMueller := mm.Apply(StokesOf(in))
			for k := 0; k < 4; k++ {
				if math.Abs(viaJones[k]-viaMueller[k]) > 1e-9*(1+math.Abs(viaJones[k])) {
					t.Fatalf("element %d: Stokes[%d] %v (Jones) vs %v (Mueller)",
						ei, k, viaJones[k], viaMueller[k])
				}
			}
		}
	}
}

func TestMuellerComposition(t *testing.T) {
	// Mueller(A·B) == Mueller(A)·Mueller(B).
	a := QWPAt(0, math.Pi/4)
	b := Rotator(0.5)
	lhs := MuellerFromJones(a.Mul(b))
	rhs := MuellerFromJones(a).Mul(MuellerFromJones(b))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(lhs[i][j]-rhs[i][j]) > 1e-9 {
				t.Fatalf("composition differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestDegreeOfPolarization(t *testing.T) {
	// Pure states: DoP = 1.
	for _, v := range []Vector{Horizontal(), CircularLeft(), LinearAt(0.9)} {
		if dop := StokesOf(v).DegreeOfPolarization(); math.Abs(dop-1) > 1e-9 {
			t.Errorf("pure state DoP = %v", dop)
		}
	}
	// Equal-power incoherent H + V: unpolarized.
	s := StokesOf(Horizontal()).Add(StokesOf(Vertical()))
	if dop := s.DegreeOfPolarization(); dop > 1e-9 {
		t.Errorf("H+V incoherent DoP = %v, want 0", dop)
	}
	// Zero power.
	if (StokesVector{}).DegreeOfPolarization() != 0 {
		t.Error("zero-power DoP should be 0")
	}
}

func TestDepolarizer(t *testing.T) {
	d := Depolarizer(0.5)
	in := StokesOf(Horizontal())
	out := d.Apply(in)
	if math.Abs(out.Power()-1) > 1e-12 {
		t.Errorf("depolarizer changed power: %v", out.Power())
	}
	if dop := out.DegreeOfPolarization(); math.Abs(dop-0.5) > 1e-12 {
		t.Errorf("DoP after 0.5 depolarizer = %v", dop)
	}
	// Full depolarizer.
	if dop := Depolarizer(0).Apply(in).DegreeOfPolarization(); dop > 1e-12 {
		t.Errorf("full depolarizer left DoP %v", dop)
	}
	// Identity depolarizer.
	if Depolarizer(1).Apply(in) != in {
		t.Error("p=1 depolarizer should be identity")
	}
}

func TestDepolarizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p>1 should panic")
		}
	}()
	Depolarizer(1.5)
}

func TestDepolarizationIndex(t *testing.T) {
	// Non-depolarizing elements have DI = 1.
	for _, el := range []Matrix{Rotator(0.4), QuarterWavePlate(0), LinearPolarizer(0.3)} {
		if di := MuellerFromJones(el).DepolarizationIndex(); math.Abs(di-1) > 1e-9 {
			t.Errorf("non-depolarizing DI = %v", di)
		}
	}
	// Partial depolarizer: DI = p.
	if di := Depolarizer(0.6).DepolarizationIndex(); math.Abs(di-0.6) > 1e-12 {
		t.Errorf("DI of 0.6-depolarizer = %v", di)
	}
	// Zero matrix.
	if (Mueller{}).DepolarizationIndex() != 0 {
		t.Error("zero matrix DI should be 0")
	}
}

func TestMultipathStokesDepolarizes(t *testing.T) {
	// Many random-polarization paths of similar power: the aggregate
	// degree of polarization collapses — why the mismatch floor rises in
	// the laboratory environment (§5.1.2).
	rng := rand.New(rand.NewSource(17))
	var fields []mat2.Vec
	for i := 0; i < 64; i++ {
		fields = append(fields, LinearAt(rng.Float64()*math.Pi))
	}
	s := MultipathStokes(fields)
	if dop := s.DegreeOfPolarization(); dop > 0.35 {
		t.Errorf("64 random paths DoP = %v, want small", dop)
	}
	// A single path stays pure.
	if dop := MultipathStokes(fields[:1]).DegreeOfPolarization(); math.Abs(dop-1) > 1e-9 {
		t.Errorf("single path DoP = %v", dop)
	}
}

func TestPolarizedReceivedFraction(t *testing.T) {
	// Fully polarized H into an H antenna: everything; into V: nothing.
	h := StokesOf(Horizontal())
	if f := h.PolarizedReceivedFraction(0); math.Abs(f-1) > 1e-12 {
		t.Errorf("co-pol fraction = %v", f)
	}
	if f := h.PolarizedReceivedFraction(math.Pi / 2); f > 1e-12 {
		t.Errorf("cross-pol fraction = %v", f)
	}
	// Malus at 30°.
	want := math.Cos(units.Radians(30)) * math.Cos(units.Radians(30))
	if f := h.PolarizedReceivedFraction(units.Radians(30)); math.Abs(f-want) > 1e-12 {
		t.Errorf("30° fraction = %v, want %v", f, want)
	}
	// Unpolarized: half at any angle — the orientation-independence that
	// makes depolarized multipath rescue a mismatched link.
	unpol := StokesOf(Horizontal()).Add(StokesOf(Vertical()))
	for _, psi := range []float64{0, 0.6, math.Pi / 2} {
		if f := unpol.PolarizedReceivedFraction(psi); math.Abs(f-0.5) > 1e-12 {
			t.Errorf("unpolarized fraction at %v = %v, want 0.5", psi, f)
		}
	}
	// Zero power.
	if (StokesVector{}).PolarizedReceivedFraction(0) != 0 {
		t.Error("zero-power fraction should be 0")
	}
}

func TestStokesScale(t *testing.T) {
	s := StokesOf(Horizontal()).Scale(3)
	if s.Power() != 3 {
		t.Errorf("scaled power = %v", s.Power())
	}
	if math.Abs(s.DegreeOfPolarization()-1) > 1e-12 {
		t.Error("scaling should preserve DoP")
	}
}
