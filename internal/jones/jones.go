// Package jones implements Jones calculus for polarized plane waves.
//
// The polarization state of a radio wave is a complex 2-vector (the Jones
// vector, Eq. 1 of the paper); every linear polarization-manipulating
// element — wave plate, birefringent structure, polarizer, the LLAMA
// metasurface itself — is a complex 2×2 Jones matrix, and a stack of
// elements composes by matrix multiplication (Eq. 2). The package provides
// the standard states and elements, the paper's rotator construction
// P = Q₊₄₅°·B·Q₋₄₅° (Eq. 8), and the measurement-side quantities the
// evaluation relies on: polarization loss factor, extracted rotation angle,
// Stokes parameters and axial ratio.
package jones

import (
	"math"
	"math/cmplx"

	"github.com/llama-surface/llama/internal/mat2"
)

// Vector is a Jones polarization state: complex amplitudes of the X and Y
// field components of a plane wave travelling along +Z.
type Vector = mat2.Vec

// Matrix is a Jones matrix: the linear map an optical/RF element applies to
// a Jones vector.
type Matrix = mat2.Mat

// LinearAt returns the unit Jones vector of a linearly polarized wave whose
// E-field makes angle theta (radians) with the X axis.
func LinearAt(theta float64) Vector {
	return Vector{
		X: complex(math.Cos(theta), 0),
		Y: complex(math.Sin(theta), 0),
	}
}

// Horizontal returns the x̂-polarized unit state.
func Horizontal() Vector { return LinearAt(0) }

// Vertical returns the ŷ-polarized unit state.
func Vertical() Vector { return LinearAt(math.Pi / 2) }

// CircularRight returns the right-hand circular unit state
// (1, −j)/√2 under the physics convention used in the paper's Eq. (1).
func CircularRight() Vector {
	s := complex(1/math.Sqrt2, 0)
	return Vector{X: s, Y: -1i * s}
}

// CircularLeft returns the left-hand circular unit state (1, +j)/√2.
func CircularLeft() Vector {
	s := complex(1/math.Sqrt2, 0)
	return Vector{X: s, Y: 1i * s}
}

// Elliptical returns the Jones vector with X amplitude a, Y amplitude b and
// a relative phase of phi radians on the Y component: [a, b·e^{jφ}]. The
// paper's Eq. (1) is the special case φ = π/2.
func Elliptical(a, b, phi float64) Vector {
	return Vector{
		X: complex(a, 0),
		Y: complex(b, 0) * cmplx.Exp(complex(0, phi)),
	}
}

// Rotator returns the Jones matrix of an ideal polarization rotator by
// theta radians: the rotation matrix R(θ) of Eq. (4).
func Rotator(theta float64) Matrix { return mat2.Rotation(theta) }

// Rotated returns the Jones matrix of element m rotated counterclockwise by
// theta: R(θ)·M·R(θ)ᵀ (Eq. 4).
func Rotated(m Matrix, theta float64) Matrix {
	r := mat2.Rotation(theta)
	return r.Mul(m).Mul(r.Transpose())
}

// WavePlate returns the Jones matrix of a retarder whose fast axis lies
// along X, with retardation delta radians applied to the Y component and a
// common phase alpha:
//
//	e^{jα} · diag(1, e^{jδ})
func WavePlate(alpha, delta float64) Matrix {
	return mat2.Diag(1, cmplx.Exp(complex(0, delta))).Scale(cmplx.Exp(complex(0, alpha)))
}

// QuarterWavePlate returns the axis-aligned QWP of the paper's Eq. (3):
// e^{jα}·diag(1, e^{jπ/2}).
func QuarterWavePlate(alpha float64) Matrix { return WavePlate(alpha, math.Pi/2) }

// HalfWavePlate returns an axis-aligned half-wave plate diag(1, −1) with
// common phase alpha.
func HalfWavePlate(alpha float64) Matrix { return WavePlate(alpha, math.Pi) }

// QWPAt returns a quarter-wave plate rotated by theta radians, as used for
// the paper's Q₊₄₅° and Q₋₄₅° elements (Eqs. 5–6).
//
// Note the paper writes the rotated plate as R(θ)·M·R(θ) rather than
// R(θ)·M·R(θ)ᵀ; for θ = ±45° the two differ only in a sign convention that
// cancels in the composed rotator. We use the standard similarity transform
// (R·M·Rᵀ) so that individual plates behave physically on their own.
func QWPAt(alpha, theta float64) Matrix {
	return Rotated(QuarterWavePlate(alpha), theta)
}

// Birefringent returns the tunable birefringent structure (BFS) of Eq. (7):
// e^{jβ}·diag(1, e^{jδ}), where delta is the differential transmission
// phase between the X and Y axes set by the bias voltages.
func Birefringent(beta, delta float64) Matrix { return WavePlate(beta, delta) }

// LossyBirefringent returns a BFS with per-axis field transmission
// magnitudes tx, ty (≤1) in addition to the differential phase delta and
// common phase beta. This models the FR4 structure, whose dielectric loss
// makes the element sub-unitary.
func LossyBirefringent(beta, delta, tx, ty float64) Matrix {
	return mat2.Diag(
		complex(tx, 0),
		complex(ty, 0)*cmplx.Exp(complex(0, delta)),
	).Scale(cmplx.Exp(complex(0, beta)))
}

// LinearPolarizer returns the Jones matrix of an ideal linear polarizer
// with transmission axis at angle theta.
func LinearPolarizer(theta float64) Matrix {
	return Rotated(mat2.Diag(1, 0), theta)
}

// PolarizationRotator composes the paper's rotator (Eq. 8):
//
//	P = Q₊₄₅° · B(δ) · Q₋₄₅°
//
// which equals a pure rotation by δ/2 up to a common phase. alpha is the
// QWP common phase, beta the BFS common phase, delta the BFS differential
// phase.
func PolarizationRotator(alpha, beta, delta float64) Matrix {
	qPlus := QWPAt(alpha, math.Pi/4)
	qMinus := QWPAt(alpha, -math.Pi/4)
	b := Birefringent(beta, delta)
	return qPlus.Mul(b).Mul(qMinus)
}

// RotationAngle extracts the equivalent rotation angle (radians, in
// (−π/2, π/2]) of a Jones matrix that is a scalar multiple of a rotation
// matrix, such as the output of PolarizationRotator. For matrices that are
// not pure rotations it returns the angle of the best-fit rotation: the
// polar angle of (Re tr(M·Rᵀ(θ)) maximizer), computed in closed form as
// atan2(C−B, A+D) on the real rotation part.
func RotationAngle(m Matrix) float64 {
	// For M = e^{jφ}·R(θ): A+D = 2e^{jφ}cosθ and C−B = 2e^{jφ}sinθ.
	// Dividing out the common phase keeps only θ.
	sum := m.A + m.D
	dif := m.C - m.B
	// Use the phase of the larger of the two to de-rotate, so θ near ±π/2
	// stays well-conditioned.
	var phase complex128
	if cmplx.Abs(sum) >= cmplx.Abs(dif) {
		phase = cmplx.Exp(complex(0, -cmplx.Phase(sum)))
	} else {
		phase = cmplx.Exp(complex(0, -cmplx.Phase(dif)))
	}
	c := real(sum * phase)
	s := real(dif * phase)
	theta := math.Atan2(s, c)
	// Rotation by θ and θ±π are indistinguishable up to overall sign
	// (common phase) for polarization power purposes; fold into
	// (−π/2, π/2].
	for theta > math.Pi/2 {
		theta -= math.Pi
	}
	for theta <= -math.Pi/2 {
		theta += math.Pi
	}
	return theta
}

// PLF returns the polarization loss factor between a transmitted state t
// and a receive antenna state r: |⟨r̂, t̂⟩|² ∈ [0, 1]. Both states are
// normalized internally; if either is zero PLF returns 0.
func PLF(t, r Vector) float64 {
	tn, ok1 := t.Normalize()
	rn, ok2 := r.Normalize()
	if !ok1 || !ok2 {
		return 0
	}
	d := rn.Dot(tn)
	return real(d)*real(d) + imag(d)*imag(d)
}

// PLFdB returns the polarization mismatch loss in dB (≤ 0), −Inf for fully
// orthogonal states.
func PLFdB(t, r Vector) float64 {
	p := PLF(t, r)
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// TransmittedPower returns the power gain |M·v̂|² of element M applied to
// the normalized state of v: ≤1 for passive elements. Zero input returns 0.
func TransmittedPower(m Matrix, v Vector) float64 {
	vn, ok := v.Normalize()
	if !ok {
		return 0
	}
	return m.MulVec(vn).NormSq()
}

// Stokes returns the Stokes parameters (S0, S1, S2, S3) of state v:
//
//	S0 = |Ex|² + |Ey|²   total power
//	S1 = |Ex|² − |Ey|²   horizontal/vertical balance
//	S2 = 2·Re(Ex*·Ey)    ±45° balance
//	S3 = 2·Im(Ex*·Ey)    circular balance
func Stokes(v Vector) (s0, s1, s2, s3 float64) {
	px := real(v.X)*real(v.X) + imag(v.X)*imag(v.X)
	py := real(v.Y)*real(v.Y) + imag(v.Y)*imag(v.Y)
	cross := cmplx.Conj(v.X) * v.Y
	return px + py, px - py, 2 * real(cross), 2 * imag(cross)
}

// OrientationAngle returns the orientation ψ (radians, in (−π/2, π/2]) of
// the polarization ellipse major axis: ψ = ½·atan2(S2, S1).
func OrientationAngle(v Vector) float64 {
	_, s1, s2, _ := Stokes(v)
	psi := 0.5 * math.Atan2(s2, s1)
	for psi > math.Pi/2 {
		psi -= math.Pi
	}
	for psi <= -math.Pi/2 {
		psi += math.Pi
	}
	return psi
}

// EllipticityAngle returns the ellipticity angle χ ∈ [−π/4, π/4]:
// χ = ½·asin(S3/S0). χ = 0 is linear, ±π/4 is circular.
func EllipticityAngle(v Vector) float64 {
	s0, _, _, s3 := Stokes(v)
	if s0 <= 0 {
		return 0
	}
	r := s3 / s0
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return 0.5 * math.Asin(r)
}

// AxialRatio returns the polarization ellipse axial ratio (major/minor,
// ≥ 1; +Inf for perfectly linear states).
func AxialRatio(v Vector) float64 {
	chi := math.Abs(EllipticityAngle(v))
	t := math.Tan(chi)
	if t == 0 {
		return math.Inf(1)
	}
	return 1 / t
}

// DegreeOfLinearity returns sqrt(S1²+S2²)/S0 ∈ [0,1]; 1 for purely linear
// states, 0 for circular.
func DegreeOfLinearity(v Vector) float64 {
	s0, s1, s2, _ := Stokes(v)
	if s0 <= 0 {
		return 0
	}
	return math.Hypot(s1, s2) / s0
}

// Cascade multiplies element matrices in propagation order: the wave meets
// elems[0] first (Eq. 2: Jout = M_N···M_2·M_1·J_in).
func Cascade(elems ...Matrix) Matrix {
	out := mat2.Identity()
	for _, m := range elems {
		out = m.Mul(out)
	}
	return out
}
