package metasurface

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

// Lattice models the surface as its physical population of functional
// units (180 in the prototype) rather than one homogeneous sheet. Each
// unit carries its own fabrication deviations — bias offset, loss excess,
// detune — and can fail outright (a varactor open or short during
// assembly). The aggregate response is the coherent average of the unit
// responses, which is how a plane wave illuminating the whole panel sums
// the per-unit fields.
//
// The homogeneous Surface type remains the fast path; Lattice answers the
// manufacturing questions the paper's cost argument raises: how much
// fabrication spread and how many dead units can the design absorb before
// the polarization rotation degrades?
type Lattice struct {
	design Design
	units  []latticeUnit

	biasX, biasY float64
}

// latticeUnit is one cell's deviation set.
type latticeUnit struct {
	// biasErrX/Y shift the effective bias the cell's varactors see.
	biasErrX, biasErrY float64
	// lossExcess multiplies the cell's field transmission (≤ 1).
	lossExcess float64
	// detune scales the cell's differential phase.
	detune float64
	// failedX/Y mark dead varactor banks: the axis sticks at zero bias.
	failedX, failedY bool
}

// LatticeSpec sets the manufacturing spread.
type LatticeSpec struct {
	// BiasSpreadV is the per-unit 1σ bias error in volts (assembly and
	// bias-network tolerance).
	BiasSpreadV float64
	// LossSpreadDB is the per-unit 1σ excess loss in dB.
	LossSpreadDB float64
	// DetuneSpread is the per-unit 1σ fractional differential-phase
	// error.
	DetuneSpread float64
	// FailureRate is the probability that a unit's axis bank is dead.
	FailureRate float64
}

// DefaultLatticeSpec returns tolerances typical of cheap FR4 assembly
// with hand-placed varactors — the prototype regime the paper describes
// needing up to 30 V to compensate.
func DefaultLatticeSpec() LatticeSpec {
	return LatticeSpec{BiasSpreadV: 0.6, LossSpreadDB: 0.4, DetuneSpread: 0.05, FailureRate: 0.005}
}

// Validate reports an error for unusable specs.
func (s LatticeSpec) Validate() error {
	switch {
	case s.BiasSpreadV < 0 || s.LossSpreadDB < 0 || s.DetuneSpread < 0:
		return fmt.Errorf("metasurface: negative lattice spread")
	case s.FailureRate < 0 || s.FailureRate > 1:
		return fmt.Errorf("metasurface: failure rate %g outside [0,1]", s.FailureRate)
	}
	return nil
}

// NewLattice draws a manufactured surface instance from the design and
// spec using the seeded RNG.
func NewLattice(d Design, spec LatticeSpec, seed int64) (*Lattice, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := d.Units()
	l := &Lattice{design: d, units: make([]latticeUnit, n)}
	for i := range l.units {
		l.units[i] = latticeUnit{
			biasErrX:   spec.BiasSpreadV * rng.NormFloat64(),
			biasErrY:   spec.BiasSpreadV * rng.NormFloat64(),
			lossExcess: units.DBToFieldRatio(-math.Abs(spec.LossSpreadDB * rng.NormFloat64())),
			detune:     1 + spec.DetuneSpread*rng.NormFloat64(),
			failedX:    rng.Float64() < spec.FailureRate,
			failedY:    rng.Float64() < spec.FailureRate,
		}
	}
	return l, nil
}

// MustNewLattice panics on error; for prefab designs in examples/tests.
func MustNewLattice(d Design, spec LatticeSpec, seed int64) *Lattice {
	l, err := NewLattice(d, spec, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Design returns the lattice's design description.
func (l *Lattice) Design() Design { return l.design }

// Units returns the unit count.
func (l *Lattice) Units() int { return len(l.units) }

// SetBias programs the shared bias rails (all units see the same rail,
// §3.3's two-channel biasing).
func (l *Lattice) SetBias(vx, vy float64) {
	l.biasX = units.Clamp(vx, l.design.MinBiasV, l.design.MaxBiasV)
	l.biasY = units.Clamp(vy, l.design.MinBiasV, l.design.MaxBiasV)
}

// Bias returns the rail voltages.
func (l *Lattice) Bias() (vx, vy float64) { return l.biasX, l.biasY }

// FailedUnits returns how many units have at least one dead axis.
func (l *Lattice) FailedUnits() int {
	n := 0
	for _, u := range l.units {
		if u.failedX || u.failedY {
			n++
		}
	}
	return n
}

// unitJones evaluates one unit's transmissive Jones matrix at frequency f
// under the current rails.
func (l *Lattice) unitJones(f float64, u latticeUnit) mat2.Mat {
	d := l.design
	vx, vy := l.biasX+u.biasErrX, l.biasY+u.biasErrY
	if u.failedX {
		vx = 0
	}
	if u.failedY {
		vy = 0
	}
	vx = units.Clamp(vx, d.MinBiasV, d.MaxBiasV)
	vy = units.Clamp(vy, d.MinBiasV, d.MaxBiasV)
	tx := d.bfsAxisNetwork(f, AxisX, vx).ToS(units.Z0FreeSpace).S21
	ty := d.bfsAxisNetwork(f, AxisY, vy).ToS(units.Z0FreeSpace).S21
	// The detune deviation scales the differential phase by rotating
	// ty's phase toward/away from tx's.
	if u.detune != 1 {
		dphi := units.NormalizeAngle(phase(ty) - phase(tx))
		ty = rect(abs(ty), phase(tx)+dphi*u.detune)
	}
	bfs := mat2.Diag(tx, ty).Scale(complex(u.lossExcess, 0))
	qPlus := d.qwpJones(f, math.Pi/4)
	qMinus := d.qwpJones(f, -math.Pi/4)
	return qPlus.Mul(bfs).Mul(qMinus)
}

// JonesTransmissive returns the panel's aggregate Jones matrix: the
// coherent mean of the unit responses.
func (l *Lattice) JonesTransmissive(f float64) mat2.Mat {
	var acc mat2.Mat
	for _, u := range l.units {
		acc = acc.Add(l.unitJones(f, u))
	}
	return acc.Scale(complex(1/float64(len(l.units)), 0))
}

// RotationDegrees extracts the aggregate rotation magnitude in degrees.
func (l *Lattice) RotationDegrees(f float64) float64 {
	return math.Abs(units.Degrees(rotationAngleOf(l.JonesTransmissive(f))))
}

// Efficiency returns the aggregate Eq. 11 efficiency for an X-polarized
// wave.
func (l *Lattice) Efficiency(f float64) float64 {
	m := l.JonesTransmissive(f)
	e := m.MulVec(mat2.Vec{X: 1})
	return e.NormSq()
}

// EfficiencyDB returns Efficiency in dB.
func (l *Lattice) EfficiencyDB(f float64) float64 {
	return units.LinearToDB(l.Efficiency(f))
}

// YieldReport quantifies manufacturing robustness: the rotation and
// efficiency deltas between this manufactured instance and the ideal
// homogeneous surface at the same bias.
type YieldReport struct {
	// FailedUnits is the count with ≥1 dead axis.
	FailedUnits int
	// RotationLossDeg is how much of the ideal rotation the panel lost.
	RotationLossDeg float64
	// EfficiencyLossDB is the extra insertion loss vs ideal.
	EfficiencyLossDB float64
}

// Yield compares the lattice against the ideal surface at bias (vx, vy)
// and frequency f.
func (l *Lattice) Yield(f, vx, vy float64) (YieldReport, error) {
	ideal, err := New(l.design)
	if err != nil {
		return YieldReport{}, err
	}
	ideal.SetBias(vx, vy)
	l.SetBias(vx, vy)
	return YieldReport{
		FailedUnits:      l.FailedUnits(),
		RotationLossDeg:  ideal.RotationDegrees(f) - l.RotationDegrees(f),
		EfficiencyLossDB: ideal.EfficiencyDB(AxisX, f) - l.EfficiencyDB(f),
	}, nil
}

// Small complex helpers that keep unitJones readable without importing
// math/cmplx at every call site.
func phase(c complex128) float64 { return math.Atan2(imag(c), real(c)) }
func abs(c complex128) float64   { return math.Hypot(real(c), imag(c)) }
func rect(r, th float64) complex128 {
	return complex(r*math.Cos(th), r*math.Sin(th))
}

// rotationAngleOf mirrors jones.RotationAngle without the import cycle
// (jones imports mat2 only, but keeping metasurface's dependency list
// tight): extract the best-fit rotation angle of m.
func rotationAngleOf(m mat2.Mat) float64 {
	sum := m.A + m.D
	dif := m.C - m.B
	var ph float64
	if abs(sum) >= abs(dif) {
		ph = -phase(sum)
	} else {
		ph = -phase(dif)
	}
	rot := rect(1, ph)
	c := real(sum * rot)
	s := real(dif * rot)
	th := math.Atan2(s, c)
	for th > math.Pi/2 {
		th -= math.Pi
	}
	for th <= -math.Pi/2 {
		th += math.Pi
	}
	return th
}
