package metasurface

// The response table: memoization of the per-axis circuit evaluations
// underneath every Surface query. The physics is pure — an axis response
// depends only on (design, axis, frequency, bias) and a QWP response only
// on (design, frequency) — so repeated evaluations at the same operating
// point (a bias-plane FullScan revisits each per-axis bias 21 times; the
// QWP boards never change at all) can be computed once and shared, bit
// for bit. Because the design — not the Surface — determines the result,
// one table serves every Surface of a design (see table.go for the
// fingerprint-keyed registry and the persisted export/import forms). The
// table is transparent by construction: a miss runs exactly the
// evaluation the uncached path runs, and a hit returns the stored result
// of that same evaluation, so cached and uncached outputs are
// bit-identical (determinism invariants #5 and #10 in ARCHITECTURE.md).
//
// Concurrency model (the contention-free read path). The memoized
// entries live in immutable map snapshots published through an
// atomic.Pointer: a hit is one atomic load plus one map read — no lock,
// no allocation, no shared cache line written beyond a sharded counter.
// Writers batch fresh entries in a pending map under a plain mutex and
// publish copy-on-write: a published map is never written again, so a
// reader holding the old snapshot sees a consistent (merely stale) view
// and the race detector can prove the absence of torn reads. Concurrent
// misses on the same key are grouped singleflight-style: exactly one
// goroutine evaluates, the rest wait on its completion channel, so
// redundant evaluation is bounded at one per distinct key. Counters are
// sharded across cache-line-padded slots (statShard) so hit accounting
// never bounces one hot line between cores.

import (
	"math"
	"sync"
	"sync/atomic"
)

// CacheStats reports the lookup counters of a response cache: Hits is the
// number of evaluations answered from memory, Misses the number computed
// (and stored). Counters are monotone over the cache's lifetime. With
// concurrent misses grouped singleflight-style, a miss means "this
// lookup ran the evaluation" — waiters answered by another goroutine's
// in-flight evaluation count as hits, so Misses equals the number of
// distinct evaluations performed.
type CacheStats struct {
	Hits, Misses uint64
}

// Lookups returns the total number of cache consultations.
func (c CacheStats) Lookups() uint64 { return c.Hits + c.Misses }

// HitRate returns Hits/Lookups in [0, 1]; zero for an unused cache.
func (c CacheStats) HitRate() float64 {
	if n := c.Lookups(); n > 0 {
		return float64(c.Hits) / float64(n)
	}
	return 0
}

// Sub returns the counter deltas c − earlier, for windowed measurements
// over the monotone global counters.
func (c CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Hits: c.Hits - earlier.Hits, Misses: c.Misses - earlier.Misses}
}

// cachingOff flips the package-wide cache switch; the zero value means
// caching is ON (the default). Stored inverted so the default needs no
// init.
var cachingOff atomic.Bool

// SetCaching switches response caching on or off process-wide (the
// llama-bench -cache flag, for A/B physics timing). The switch is
// consulted per evaluation, so it can be flipped between runs; outputs
// are bit-identical either way.
func SetCaching(on bool) { cachingOff.Store(!on) }

// CachingEnabled reports whether response caching is on.
func CachingEnabled() bool { return !cachingOff.Load() }

// statShards is the number of padded counter slots per sharded counter
// pair. Surfaces are dealt slots round-robin at construction, so up to
// statShards concurrently hot surfaces account their lookups without
// ever contending on one cache line.
const statShards = 16

// statShard is one slot of a sharded counter pair, padded out to a full
// cache line so neighbouring slots never share one: concurrent Add
// traffic on adjacent slots would otherwise bounce the line between
// cores, which is exactly the cost sharding exists to remove.
type statShard struct {
	hits, misses atomic.Uint64
	_            [48]byte
}

// shardedStats is a pair of monotone counters spread over padded shards.
// Adds touch one shard; loads sum all of them, so the three stat views
// (per-surface, per-table, global) stay exact while the hot path never
// serializes on a single counter word.
type shardedStats struct {
	shards [statShards]statShard
}

// add folds a lookup outcome into one shard.
func (s *shardedStats) add(shard uint32, hits, misses uint64) {
	sh := &s.shards[shard%statShards]
	if hits != 0 {
		sh.hits.Add(hits)
	}
	if misses != 0 {
		sh.misses.Add(misses)
	}
}

// load sums every shard into one CacheStats view.
func (s *shardedStats) load() CacheStats {
	var out CacheStats
	for i := range s.shards {
		out.Hits += s.shards[i].hits.Load()
		out.Misses += s.shards[i].misses.Load()
	}
	return out
}

// reset zeroes every shard (test isolation).
func (s *shardedStats) reset() {
	for i := range s.shards {
		s.shards[i].hits.Store(0)
		s.shards[i].misses.Store(0)
	}
}

// globalStats aggregates lookups across every design table in the
// process, so harnesses (llama-bench, the experiment engine) can report
// cache effectiveness without plumbing individual surfaces out of
// runners. Each lookup is counted exactly once here, once on its design
// table, and once on the Surface that asked — three views of the same
// event, never double-counted within a view.
var globalStats shardedStats

// shardSeq deals out counter-shard slots round-robin at Surface
// construction, so concurrently built surfaces (one per worker in the
// scheduler and benchmarks) land on distinct shards.
var shardSeq atomic.Uint32

// nextStatShard returns the next round-robin shard slot.
func nextStatShard() uint32 { return shardSeq.Add(1) % statShards }

// GlobalCacheStats returns the process-wide response-table counters,
// summed over every design table. The counters are monotone; callers
// wanting a windowed measurement snapshot before/after and use
// CacheStats.Sub.
func GlobalCacheStats() CacheStats { return globalStats.load() }

// ResetGlobalCacheStats zeroes the process-wide counters (test isolation).
func ResetGlobalCacheStats() { globalStats.reset() }

// axisKey identifies one per-axis evaluation by the exact float bit
// patterns of its operating point, so keys never alias across distinct
// floats (and NaN/−0 edge cases stay distinct rather than colliding).
type axisKey struct {
	axis Axis
	f, v uint64
}

// flightCall tracks one in-flight evaluation: the computing goroutine
// fills val and closes done; waiters block on done and read val. val is
// written before done is closed, so the close is the publication edge.
type flightCall[V any] struct {
	done chan struct{}
	val  V
}

// snapMap is the contention-free memoization core: an immutable map
// snapshot published through an atomic pointer, plus a mutex-guarded
// pending map that batches fresh entries between copy-on-write
// publishes and a singleflight registry for in-flight evaluations.
//
// Reads probe the snapshot first (lock-free, allocation-free); only a
// snapshot miss takes the mutex, where the entry is found in pending,
// joined in flight, or computed exactly once. Publishes merge
// snapshot+pending into a fresh map: amortized O(1) per insert under
// the size-proportional threshold in maybePublishLocked, with lockedHit
// promoting hot pending entries early so a stable working set always
// converges to the lock-free path.
type snapMap[K comparable, V any] struct {
	// snap is the published immutable snapshot. The pointed-to map is
	// never mutated after Store — readers need no lock and the old
	// snapshot stays valid for readers still holding it.
	snap atomic.Pointer[map[K]V]

	mu      sync.Mutex
	pending map[K]V
	flight  map[K]*flightCall[V]
	// lockHits counts lookups since the last publish that had to take
	// the mutex to find their answer; crossing the promotion threshold
	// publishes early (see lockedHit).
	lockHits int
}

// newSnapMap returns an empty snapMap ready for use.
func newSnapMap[K comparable, V any]() *snapMap[K, V] {
	m := &snapMap[K, V]{
		pending: make(map[K]V),
		flight:  make(map[K]*flightCall[V]),
	}
	empty := make(map[K]V)
	m.snap.Store(&empty)
	return m
}

// get answers from the published snapshot only: one atomic load and one
// map read — no lock, no allocation. ok=false does not mean absent, only
// not yet published; lookup handles the slow path.
func (m *snapMap[K, V]) get(k K) (V, bool) {
	v, ok := (*m.snap.Load())[k]
	return v, ok
}

// size returns the number of distinct entries (published + pending).
func (m *snapMap[K, V]) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(*m.snap.Load()) + len(m.pending)
}

// lookup returns the value for k, calling eval at most once
// process-wide per key: concurrent callers missing the same key wait on
// the first caller's in-flight evaluation. hit=false means exactly
// "this call ran eval" — pending finds and flight waits report hits.
func (m *snapMap[K, V]) lookup(k K, eval func() V) (V, bool) {
	if v, ok := m.get(k); ok {
		return v, true
	}
	m.mu.Lock()
	if v, ok := (*m.snap.Load())[k]; ok { // republished since the fast probe
		m.lockedHit()
		m.mu.Unlock()
		return v, true
	}
	if v, ok := m.pending[k]; ok {
		m.lockedHit()
		m.mu.Unlock()
		return v, true
	}
	if c, ok := m.flight[k]; ok {
		m.mu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	m.flight[k] = c
	m.mu.Unlock()
	c.val = eval()
	m.mu.Lock()
	m.pending[k] = c.val
	delete(m.flight, k)
	m.maybePublishLocked()
	m.mu.Unlock()
	close(c.done)
	return c.val, false
}

// lookupBatch resolves every key against one snapshot load, then
// handles all misses in one grouped pass under a single mutex
// acquisition: still-missing keys are deduplicated, registered in
// flight, and evaluated outside the lock; keys another goroutine is
// already computing are joined, not recomputed. out must have len(keys)
// slots. eval runs at most once per distinct missing key, and the
// returned counters follow the scalar convention: misses counts
// evaluations this call ran, everything else is a hit.
func (m *snapMap[K, V]) lookupBatch(keys []K, out []V, eval func(K) V) (hits, misses uint64) {
	snap := *m.snap.Load()
	var missing []int
	for i, k := range keys {
		if v, ok := snap[k]; ok {
			out[i] = v
			hits++
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return hits, 0
	}
	var (
		mine    []K         // distinct keys this call computes, in first-seen order
		mineIdx map[K][]int // key → out positions awaiting it
		waits   []*flightCall[V]
		waitIdx []int
	)
	m.mu.Lock()
	// No publish can happen while mu is held, so the re-loaded snapshot
	// and pending are stable for the whole grouping pass.
	snap = *m.snap.Load()
	for _, i := range missing {
		k := keys[i]
		if v, ok := snap[k]; ok {
			out[i] = v
			hits++
			continue
		}
		if v, ok := m.pending[k]; ok {
			out[i] = v
			hits++
			continue
		}
		if c, ok := m.flight[k]; ok {
			waits = append(waits, c)
			waitIdx = append(waitIdx, i)
			hits++
			continue
		}
		if _, ok := mineIdx[k]; ok { // duplicate within this batch
			mineIdx[k] = append(mineIdx[k], i)
			hits++
			continue
		}
		if mineIdx == nil {
			mineIdx = make(map[K][]int)
		}
		c := &flightCall[V]{done: make(chan struct{})}
		m.flight[k] = c
		mine = append(mine, k)
		mineIdx[k] = []int{i}
		misses++
	}
	m.mu.Unlock()
	if len(mine) > 0 {
		vals := make([]V, len(mine))
		for j, k := range mine {
			vals[j] = eval(k)
		}
		closes := make([]*flightCall[V], len(mine))
		m.mu.Lock()
		for j, k := range mine {
			c := m.flight[k]
			c.val = vals[j]
			closes[j] = c
			delete(m.flight, k)
			m.pending[k] = vals[j]
		}
		m.maybePublishLocked()
		m.mu.Unlock()
		for _, c := range closes {
			close(c.done)
		}
		for j, k := range mine {
			for _, i := range mineIdx[k] {
				out[i] = vals[j]
			}
		}
	}
	for wi, c := range waits {
		<-c.done
		out[waitIdx[wi]] = c.val
	}
	return hits, misses
}

// lockedHit records a lookup that had to take the mutex to find its
// answer (pending, or a snapshot republished since the fast probe).
// Accumulating lock-path hits mean the pending entries are hot, so they
// are promoted into a published snapshot ahead of the size threshold —
// a stable working set therefore always ends up fully lock-free. The
// threshold scales with the snapshot so promotion publishes stay
// amortized against copy cost.
func (m *snapMap[K, V]) lockedHit() {
	m.lockHits++
	if len(m.pending) > 0 && m.lockHits >= 32+len(*m.snap.Load())/16 {
		m.publishLocked()
	}
}

// maybePublishLocked publishes when pending has grown to a quarter of
// the snapshot (or the snapshot is still empty): each publish then
// copies at most ~5× the entries admitted since the last one, keeping
// total copy work linear in the number of distinct keys — amortized
// O(1) per miss — while fresh entries still reach the lock-free
// snapshot quickly.
func (m *snapMap[K, V]) maybePublishLocked() {
	if n := len(m.pending); n > 0 && 4*n >= len(*m.snap.Load()) {
		m.publishLocked()
	}
}

// publishLocked merges snapshot+pending into a fresh map and publishes
// it. The retired snapshot is never written again — readers still
// holding it see a consistent, merely stale view — which is the entire
// safety argument: every published map is immutable.
func (m *snapMap[K, V]) publishLocked() {
	old := *m.snap.Load()
	merged := make(map[K]V, len(old)+len(m.pending))
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range old {
		merged[k] = v
	}
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range m.pending {
		merged[k] = v
	}
	m.snap.Store(&merged)
	m.pending = make(map[K]V)
	m.lockHits = 0
}

// flush publishes any pending entries immediately, so subsequent reads
// of the current contents are answered lock-free. Benchmarks use it to
// measure the steady-state read path; correctness never needs it.
func (m *snapMap[K, V]) flush() {
	m.mu.Lock()
	if len(m.pending) > 0 {
		m.publishLocked()
	}
	m.mu.Unlock()
}

// merge folds imported entries into the map and publishes immediately
// (imports are rare and bulk, so the amortizing threshold would only
// delay warm starts). Existing entries win, though by purity both sides
// hold identical bits. keys and vals are parallel slices.
func (m *snapMap[K, V]) merge(keys []K, vals []V) {
	m.mu.Lock()
	old := *m.snap.Load()
	merged := make(map[K]V, len(old)+len(m.pending)+len(keys))
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range old {
		merged[k] = v
	}
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range m.pending {
		merged[k] = v
	}
	for i, k := range keys {
		if _, ok := merged[k]; !ok {
			merged[k] = vals[i]
		}
	}
	m.snap.Store(&merged)
	m.pending = make(map[K]V)
	m.lockHits = 0
	m.mu.Unlock()
}

// snapshot returns a private union of published and pending entries;
// the caller owns the returned map (export path).
func (m *snapMap[K, V]) snapshot() map[K]V {
	m.mu.Lock()
	old := *m.snap.Load()
	out := make(map[K]V, len(old)+len(m.pending))
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range old {
		out[k] = v
	}
	//lint:allow purity copying a map into a fresh map is order-independent
	for k, v := range m.pending {
		out[k] = v
	}
	m.mu.Unlock()
	return out
}

// responseTable memoizes the per-axis and per-frequency QWP evaluations
// of one design, shared by every Surface of that design. Both entry
// kinds live in snapMaps, so lookups are lock-free snapshot reads and
// concurrent misses on one key evaluate once (see the snapMap doc). The
// lut pointer holds the design's precomputed interpolation grid when
// approximate mode is active (lut.go).
type responseTable struct {
	fingerprint string

	axis *snapMap[axisKey, axisResponse]
	qwp  *snapMap[uint64, qwpResponse]

	counters shardedStats

	lut atomic.Pointer[lutGrid]
}

// newResponseTable returns an empty table for one design fingerprint.
func newResponseTable(fp string) *responseTable {
	return &responseTable{
		fingerprint: fp,
		axis:        newSnapMap[axisKey, axisResponse](),
		qwp:         newSnapMap[uint64, qwpResponse](),
	}
}

// stats sums the table's sharded counters.
func (t *responseTable) stats() CacheStats { return t.counters.load() }

// count folds one lookup outcome into the table's and the global
// sharded counters on the caller's shard slot.
func (t *responseTable) count(shard uint32, hit bool) {
	if hit {
		t.counters.add(shard, 1, 0)
		globalStats.add(shard, 1, 0)
	} else {
		t.counters.add(shard, 0, 1)
		globalStats.add(shard, 0, 1)
	}
}

// countBatch folds a batched lookup's outcome counters in one add per view.
func (t *responseTable) countBatch(shard uint32, hits, misses uint64) {
	t.counters.add(shard, hits, misses)
	globalStats.add(shard, hits, misses)
}

// axisAt returns the memoized per-axis response, computing and storing
// it on first use, and reports whether it was a hit. shard selects the
// caller's counter slot. The hit path is one snapshot probe plus two
// sharded counter adds — no lock, no allocation.
func (t *responseTable) axisAt(d Design, axis Axis, f, v float64, shard uint32) (axisResponse, bool) {
	key := axisKey{axis: axis, f: math.Float64bits(f), v: math.Float64bits(v)}
	if r, ok := t.axis.get(key); ok {
		t.count(shard, true)
		return r, true
	}
	r, hit := t.axis.lookup(key, func() axisResponse { return d.axisEval(axis, f, v) })
	t.count(shard, hit)
	return r, hit
}

// qwpAt returns the memoized QWP response at frequency f, computing and
// storing it on first use, and reports whether it was a hit. The hit
// path performs no allocation.
func (t *responseTable) qwpAt(d Design, f float64, shard uint32) (qwpResponse, bool) {
	key := math.Float64bits(f)
	if r, ok := t.qwp.get(key); ok {
		t.count(shard, true)
		return r, true
	}
	r, hit := t.qwp.lookup(key, func() qwpResponse { return d.qwpEval(f) })
	t.count(shard, hit)
	return r, hit
}

// axisPoint is one per-axis operating point of a batched lookup.
type axisPoint struct {
	axis Axis
	f, v float64
}

// axisBatch resolves a whole slice of per-axis operating points against
// one snapshot load, computing all misses in one grouped singleflight
// pass (see snapMap.lookupBatch). out must have len(pts) slots. The
// returned counters follow the scalar convention (misses = evaluations
// this call ran) and are already folded into the table and global views.
func (t *responseTable) axisBatch(d Design, pts []axisPoint, out []axisResponse, shard uint32) (hits, misses uint64) {
	keys := make([]axisKey, len(pts))
	for i, p := range pts {
		keys[i] = axisKey{axis: p.axis, f: math.Float64bits(p.f), v: math.Float64bits(p.v)}
	}
	hits, misses = t.axis.lookupBatch(keys, out, func(k axisKey) axisResponse {
		return d.axisEval(k.axis, math.Float64frombits(k.f), math.Float64frombits(k.v))
	})
	t.countBatch(shard, hits, misses)
	return hits, misses
}

// qwpBatch resolves the QWP responses of a whole frequency slice against
// one snapshot load, grouping misses like axisBatch. out must have
// len(freqs) slots.
func (t *responseTable) qwpBatch(d Design, freqs []float64, out []qwpResponse, shard uint32) (hits, misses uint64) {
	keys := make([]uint64, len(freqs))
	for i, f := range freqs {
		keys[i] = math.Float64bits(f)
	}
	hits, misses = t.qwp.lookupBatch(keys, out, func(k uint64) qwpResponse {
		return d.qwpEval(math.Float64frombits(k))
	})
	t.countBatch(shard, hits, misses)
	return hits, misses
}
