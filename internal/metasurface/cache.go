package metasurface

// The response table: memoization of the per-axis circuit evaluations
// underneath every Surface query. The physics is pure — an axis response
// depends only on (design, axis, frequency, bias) and a QWP response only
// on (design, frequency) — so repeated evaluations at the same operating
// point (a bias-plane FullScan revisits each per-axis bias 21 times; the
// QWP boards never change at all) can be computed once and shared, bit
// for bit. Because the design — not the Surface — determines the result,
// one table serves every Surface of a design (see table.go for the
// fingerprint-keyed registry and the persisted export/import forms). The
// table is transparent by construction: a miss runs exactly the
// evaluation the uncached path runs, and a hit returns the stored result
// of that same evaluation, so cached and uncached outputs are
// bit-identical (determinism invariants #5 and #10 in ARCHITECTURE.md).

import (
	"math"
	"sync"
	"sync/atomic"
)

// CacheStats reports the lookup counters of a response cache: Hits is the
// number of evaluations answered from memory, Misses the number computed
// (and stored). Counters are monotone over the cache's lifetime.
type CacheStats struct {
	Hits, Misses uint64
}

// Lookups returns the total number of cache consultations.
func (c CacheStats) Lookups() uint64 { return c.Hits + c.Misses }

// HitRate returns Hits/Lookups in [0, 1]; zero for an unused cache.
func (c CacheStats) HitRate() float64 {
	if n := c.Lookups(); n > 0 {
		return float64(c.Hits) / float64(n)
	}
	return 0
}

// Sub returns the counter deltas c − earlier, for windowed measurements
// over the monotone global counters.
func (c CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Hits: c.Hits - earlier.Hits, Misses: c.Misses - earlier.Misses}
}

// cachingOff flips the package-wide cache switch; the zero value means
// caching is ON (the default). Stored inverted so the default needs no
// init.
var cachingOff atomic.Bool

// Global lookup counters aggregated across every design table in the
// process, so harnesses (llama-bench, the experiment engine) can report
// cache effectiveness without plumbing individual surfaces out of
// runners. Each lookup is counted exactly once here, once on its design
// table, and once on the Surface that asked — three views of the same
// event, never double-counted within a view.
var globalHits, globalMisses atomic.Uint64

// SetCaching switches response caching on or off process-wide (the
// llama-bench -cache flag, for A/B physics timing). The switch is
// consulted per evaluation, so it can be flipped between runs; outputs
// are bit-identical either way.
func SetCaching(on bool) { cachingOff.Store(!on) }

// CachingEnabled reports whether response caching is on.
func CachingEnabled() bool { return !cachingOff.Load() }

// GlobalCacheStats returns the process-wide response-table counters,
// summed over every design table. The counters are monotone; callers
// wanting a windowed measurement snapshot before/after and use
// CacheStats.Sub.
func GlobalCacheStats() CacheStats {
	return CacheStats{Hits: globalHits.Load(), Misses: globalMisses.Load()}
}

// ResetGlobalCacheStats zeroes the process-wide counters (test isolation).
func ResetGlobalCacheStats() {
	globalHits.Store(0)
	globalMisses.Store(0)
}

// axisKey identifies one per-axis evaluation by the exact float bit
// patterns of its operating point, so keys never alias across distinct
// floats (and NaN/−0 edge cases stay distinct rather than colliding).
type axisKey struct {
	axis Axis
	f, v uint64
}

// responseTable memoizes the per-axis and per-frequency QWP evaluations
// of one design, shared by every Surface of that design. It is safe for
// concurrent use: lookups take a read lock, stores a write lock, and the
// counters are atomic. Two goroutines missing on the same key both
// compute (the evaluation is pure, so they store the same bits) —
// redundant work is bounded by the worker count and never affects
// results. The lut pointer holds the design's precomputed interpolation
// grid when approximate mode is active (lut.go).
type responseTable struct {
	fingerprint string

	mu   sync.RWMutex
	axis map[axisKey]axisResponse
	qwp  map[uint64]qwpResponse

	hits, misses atomic.Uint64

	lut atomic.Pointer[lutGrid]
}

// newResponseTable returns an empty table for one design fingerprint.
func newResponseTable(fp string) *responseTable {
	return &responseTable{
		fingerprint: fp,
		axis:        make(map[axisKey]axisResponse),
		qwp:         make(map[uint64]qwpResponse),
	}
}

// stats snapshots the table's counters.
func (t *responseTable) stats() CacheStats {
	return CacheStats{Hits: t.hits.Load(), Misses: t.misses.Load()}
}

// axisAt returns the memoized per-axis response, computing and storing it
// on first use, and reports whether it was a hit. The hit path performs
// no allocation.
func (t *responseTable) axisAt(d Design, axis Axis, f, v float64) (axisResponse, bool) {
	key := axisKey{axis: axis, f: math.Float64bits(f), v: math.Float64bits(v)}
	t.mu.RLock()
	r, ok := t.axis[key]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		globalHits.Add(1)
		return r, true
	}
	t.misses.Add(1)
	globalMisses.Add(1)
	r = d.axisEval(axis, f, v)
	t.mu.Lock()
	t.axis[key] = r
	t.mu.Unlock()
	return r, false
}

// qwpAt returns the memoized QWP response at frequency f, computing and
// storing it on first use, and reports whether it was a hit. The hit
// path performs no allocation.
func (t *responseTable) qwpAt(d Design, f float64) (qwpResponse, bool) {
	key := math.Float64bits(f)
	t.mu.RLock()
	r, ok := t.qwp[key]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		globalHits.Add(1)
		return r, true
	}
	t.misses.Add(1)
	globalMisses.Add(1)
	r = d.qwpEval(f)
	t.mu.Lock()
	t.qwp[key] = r
	t.mu.Unlock()
	return r, false
}
