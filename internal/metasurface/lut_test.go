package metasurface

// Contracts of the approximate LUT mode: it is off by default, its
// interpolation error stays inside a measured bound (and shrinks with a
// denser grid), out-of-grid points fall back bit-identically to the
// exact path, in-grid lookups never allocate, and its counters are kept
// strictly apart from the exact-cache counters.

import (
	"math/cmplx"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

// lutMaxErrDefault is the asserted ceiling on |S21_lut − S21_exact|
// over the probe grid below with the default LUT config. Measured max
// on this model is ≈2.3e-2 (the bias axis is the sharp direction:
// varactor capacitance is steepest at low bias); the ceiling leaves
// ~2× headroom so legitimate float jitter cannot flake the test while
// a real resolution regression (which shows up as ≥2× error) still
// fails. README.md quotes this bound.
const lutMaxErrDefault = 0.05

// offGridProbes returns bias/frequency probe points deliberately off
// the LUT lattice (irrational-ish offsets), where interpolation error
// is largest.
func offGridProbes(d Design) (biases, freqs []float64) {
	for v := d.MinBiasV + 0.137; v < d.MaxBiasV; v += 1.73 {
		biases = append(biases, v)
	}
	for f := d.CenterHz * 0.81; f <= d.CenterHz*1.19; f += d.CenterHz * 0.0317 {
		freqs = append(freqs, f)
	}
	return biases, freqs
}

// lutMaxErr measures the worst |S21| deviation of the LUT path from the
// exact evaluation over the probe grid, for both axes.
func lutMaxErr(t *testing.T, d Design, cfg LUTConfig) float64 {
	t.Helper()
	SetLUTConfig(cfg)
	SetLUT(true)
	defer SetLUT(false)
	s := MustNew(d)
	biases, freqs := offGridProbes(d)
	maxErr := 0.0
	for _, axis := range []Axis{AxisX, AxisY} {
		for _, v := range biases {
			for _, f := range freqs {
				exact := d.axisEval(axis, f, v).s.S21
				got := s.AxisTransmission(axis, f, v)
				if e := cmplx.Abs(got - exact); e > maxErr {
					maxErr = e
				}
			}
		}
	}
	return maxErr
}

// TestLUTDisabledByDefault: approximate mode must never be on unless a
// caller opted in — and with it off, lookups take the exact path and
// move no LUT counters.
func TestLUTDisabledByDefault(t *testing.T) {
	if LUTEnabled() {
		t.Fatal("LUT mode on without opt-in")
	}
	ResetGlobalLUTStats()
	ResetResponseTables()
	s := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	s.SetBias(8, 8)
	s.JonesTransmissive(units.DefaultCarrierHz)
	if g := GlobalLUTStats(); g.Interpolated != 0 || g.Fallbacks != 0 {
		t.Errorf("exact run moved LUT counters: %+v", g)
	}
}

// TestLUTErrorBound: with the default grid the interpolated response
// stays within the advertised error bound of the exact evaluation at
// every probe point, the error is genuinely nonzero (this mode is
// approximate, not secretly exact), and a denser grid tightens it.
func TestLUTErrorBound(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	errDefault := lutMaxErr(t, d, DefaultLUTConfig())
	t.Logf("default grid max |ΔS21| = %.3e (bound %.3e)", errDefault, lutMaxErrDefault)
	if errDefault > lutMaxErrDefault {
		t.Errorf("default-grid LUT error %.3e exceeds the advertised bound %.3e", errDefault, lutMaxErrDefault)
	}
	if errDefault == 0 {
		t.Error("LUT error exactly zero at off-grid probes: the test is not probing interpolation")
	}

	dense := DefaultLUTConfig()
	dense.BiasSteps = dense.BiasSteps*4 - 3
	dense.FreqSteps = dense.FreqSteps*4 - 3
	ResetResponseTables()
	errDense := lutMaxErr(t, d, dense)
	t.Logf("4x-dense grid max |ΔS21| = %.3e", errDense)
	if errDense >= errDefault {
		t.Errorf("densifying the grid did not reduce the error: %.3e -> %.3e", errDefault, errDense)
	}
	SetLUTConfig(DefaultLUTConfig())
}

// TestLUTOutOfRangeFallsBackExact: operating points outside the grid
// (and NaN) must be answered by the exact path, bit-identically, and
// counted as fallbacks.
func TestLUTOutOfRangeFallsBackExact(t *testing.T) {
	ResetResponseTables()
	ResetGlobalLUTStats()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	SetLUTConfig(DefaultLUTConfig())
	SetLUT(true)
	defer SetLUT(false)
	s := MustNew(d)
	// Far outside the frequency window: CenterHz·(1±0.25).
	f := d.CenterHz * 2
	got := s.AxisTransmission(AxisX, f, 8)
	want := d.axisEval(AxisX, f, 8).s.S21
	if !sameC(got, want) {
		t.Error("out-of-grid LUT lookup not bit-identical to the exact path")
	}
	g := GlobalLUTStats()
	if g.Fallbacks == 0 {
		t.Errorf("out-of-grid lookup not counted as fallback: %+v", g)
	}
	if g.Interpolated != 0 {
		t.Errorf("out-of-grid lookup counted as interpolated: %+v", g)
	}
}

// TestLUTInGridLookupDoesNotAllocate: once the grid is built, the
// interpolating lookup must be allocation-free — the whole point of the
// mode is a tight scan loop.
func TestLUTInGridLookupDoesNotAllocate(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	SetLUTConfig(DefaultLUTConfig())
	SetLUT(true)
	defer SetLUT(false)
	s := MustNew(d)
	f := d.CenterHz
	s.AxisTransmission(AxisX, f, 8.2) // builds the grid
	if n := testing.AllocsPerRun(100, func() {
		s.AxisTransmission(AxisX, f, 8.2)
	}); n != 0 {
		t.Errorf("in-grid LUT lookup allocates %.1f objects/op, want 0", n)
	}
}

// TestLUTCountersSeparateFromCache: interpolated answers must not move
// the exact-cache counters (per surface or global) — the two stats
// families answer different questions and double counting would corrupt
// both.
func TestLUTCountersSeparateFromCache(t *testing.T) {
	ResetResponseTables()
	ResetGlobalLUTStats()
	cacheBefore := GlobalCacheStats()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	SetLUTConfig(DefaultLUTConfig())
	SetLUT(true)
	defer SetLUT(false)
	s := MustNew(d)
	for i := 0; i < 5; i++ {
		s.AxisTransmission(AxisX, d.CenterHz, 8+float64(i)*0.01)
	}
	if g := GlobalLUTStats(); g.Interpolated != 5 {
		t.Errorf("LUT counters = %+v, want 5 interpolated", g)
	}
	if st := s.CacheStats(); st.Lookups() != 0 {
		t.Errorf("interpolated answers moved surface cache counters: %+v", st)
	}
	if d := GlobalCacheStats().Sub(cacheBefore); d.Hits != 0 || d.Misses != 0 {
		t.Errorf("interpolated answers moved global cache counters: %+v", d)
	}
	// The QWP path stays exact even in LUT mode: a full Jones query moves
	// the exact counters by exactly the one QWP evaluation.
	s.SetBias(8, 8)
	s.JonesTransmissive(d.CenterHz)
	if st := s.CacheStats(); st.Lookups() != 1 {
		t.Errorf("QWP under LUT mode: %d exact lookups, want exactly 1", st.Lookups())
	}
}
