package metasurface

import (
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

func idealSpec() LatticeSpec { return LatticeSpec{} }

func TestLatticeSpecValidate(t *testing.T) {
	if err := DefaultLatticeSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LatticeSpec{
		{BiasSpreadV: -1},
		{LossSpreadDB: -1},
		{DetuneSpread: -1},
		{FailureRate: -0.1},
		{FailureRate: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestNewLatticeValidation(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	if _, err := NewLattice(d, LatticeSpec{FailureRate: 2}, 1); err == nil {
		t.Error("bad spec accepted")
	}
	d.BFSLayers = 0
	if _, err := NewLattice(d, idealSpec(), 1); err == nil {
		t.Error("bad design accepted")
	}
}

func TestMustNewLatticePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewLattice should panic")
		}
	}()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	d.BFSLayers = 0
	MustNewLattice(d, idealSpec(), 1)
}

func TestIdealLatticeMatchesSurface(t *testing.T) {
	// With zero spread and zero failures, the lattice aggregate must
	// equal the homogeneous surface.
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	lat := MustNewLattice(d, idealSpec(), 1)
	surf := MustNew(d)
	f0 := units.DefaultCarrierHz
	for _, bias := range [][2]float64{{2, 15}, {8, 8}, {15, 2}} {
		lat.SetBias(bias[0], bias[1])
		surf.SetBias(bias[0], bias[1])
		if !lat.JonesTransmissive(f0).ApproxEqual(surf.JonesTransmissive(f0), 1e-9) {
			t.Errorf("ideal lattice diverges from surface at bias %v", bias)
		}
		if math.Abs(lat.RotationDegrees(f0)-surf.RotationDegrees(f0)) > 1e-6 {
			t.Errorf("rotation mismatch at bias %v", bias)
		}
	}
}

func TestLatticeCounts(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	lat := MustNewLattice(d, idealSpec(), 1)
	if lat.Units() != 180 {
		t.Errorf("units = %d, want 180", lat.Units())
	}
	if lat.FailedUnits() != 0 {
		t.Errorf("ideal lattice has %d failures", lat.FailedUnits())
	}
	if lat.Design().Name != d.Name {
		t.Error("design accessor")
	}
}

func TestLatticeSetBiasClamps(t *testing.T) {
	lat := MustNewLattice(OptimizedFR4Design(units.DefaultCarrierHz), idealSpec(), 1)
	lat.SetBias(-3, 99)
	vx, vy := lat.Bias()
	if vx != 0 || vy != 30 {
		t.Errorf("bias = (%v, %v)", vx, vy)
	}
}

func TestFabricationSpreadDegradesGracefully(t *testing.T) {
	// Realistic spread should cost a little rotation and a fraction of a
	// dB — not collapse the response.
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	lat := MustNewLattice(d, DefaultLatticeSpec(), 7)
	rep, err := lat.Yield(units.DefaultCarrierHz, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.RotationLossDeg) > 10 {
		t.Errorf("rotation loss %v° too large for default spread", rep.RotationLossDeg)
	}
	if rep.EfficiencyLossDB > 2 || rep.EfficiencyLossDB < -1 {
		t.Errorf("efficiency loss %v dB out of band", rep.EfficiencyLossDB)
	}
}

func TestFailureInjectionDegradesRotation(t *testing.T) {
	// Killing a growing fraction of varactor banks must monotonically
	// (approximately) pull the aggregate rotation toward the dead-cell
	// response, and the panel must remain passive.
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	f0 := units.DefaultCarrierHz
	ideal := MustNew(d)
	ideal.SetBias(2, 15)
	fullRot := ideal.RotationDegrees(f0)

	prevLoss := -1.0
	for _, rate := range []float64{0.05, 0.25, 0.6} {
		spec := LatticeSpec{FailureRate: rate}
		lat := MustNewLattice(d, spec, 11)
		lat.SetBias(2, 15)
		rot := lat.RotationDegrees(f0)
		loss := fullRot - rot
		if loss < prevLoss-3 { // allow small non-monotonic wiggle from draws
			t.Errorf("rotation loss shrank with more failures: %v after %v (rate %v)", loss, prevLoss, rate)
		}
		prevLoss = loss
		if lat.Efficiency(f0) > 1 {
			t.Errorf("failed lattice became active at rate %v", rate)
		}
		if rate >= 0.25 && lat.FailedUnits() == 0 {
			t.Errorf("no failures drawn at rate %v", rate)
		}
	}
}

func TestYieldDeterministicPerSeed(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	a := MustNewLattice(d, DefaultLatticeSpec(), 3)
	b := MustNewLattice(d, DefaultLatticeSpec(), 3)
	c := MustNewLattice(d, DefaultLatticeSpec(), 4)
	f0 := units.DefaultCarrierHz
	a.SetBias(5, 20)
	b.SetBias(5, 20)
	c.SetBias(5, 20)
	if a.RotationDegrees(f0) != b.RotationDegrees(f0) {
		t.Error("same seed should reproduce the same panel")
	}
	if a.RotationDegrees(f0) == c.RotationDegrees(f0) {
		t.Error("different seeds should differ")
	}
}

func TestLatticePassivity(t *testing.T) {
	lat := MustNewLattice(OptimizedFR4Design(units.DefaultCarrierHz), DefaultLatticeSpec(), 5)
	for _, bias := range [][2]float64{{0, 0}, {2, 15}, {30, 30}} {
		lat.SetBias(bias[0], bias[1])
		if eff := lat.Efficiency(units.DefaultCarrierHz); eff > 1+1e-9 {
			t.Errorf("lattice active at bias %v: %v", bias, eff)
		}
	}
}
