// Package metasurface implements the LLAMA programmable polarization
// rotator: the paper's primary contribution.
//
// The physical surface is a laminated PCB stack — two quarter-wave-plate
// (QWP) boards rotated ±45° sandwiching a tunable birefringent structure
// (BFS) whose X- and Y-axis transmission phases are set by varactor bias
// voltages (Fig. 6). In place of the paper's HFSS full-wave solver, each
// principal axis of each board is modelled as a synthetic transmission-line
// section (slow-wave loaded line) with:
//
//   - phase constant from the effective index (plus varactor loading for
//     the BFS axes, via the standard distributed-loading relation),
//   - attenuation from substrate dielectric loss scaled by a field
//     concentration factor, conductor loss, and varactor ESR,
//   - characteristic-impedance deviation from free space, producing the
//     Fabry–Pérot ripple visible in the paper's S21 plots.
//
// Cascading the per-axis ABCD matrices and converting to S-parameters
// (Eqs. 9–10) yields complex transmission coefficients Tx(f,Vx), Ty(f,Vy);
// the surface's Jones matrix is then Q₊₄₅·diag(Tx,Ty)·Q₋₄₅ (Eq. 8), from
// which the polarization rotation θr = δ/2 and the transmission
// efficiencies of Eq. 11 follow.
package metasurface

import (
	"fmt"
	"math"

	"github.com/llama-surface/llama/internal/materials"
	"github.com/llama-surface/llama/internal/units"
	"github.com/llama-surface/llama/internal/varactor"
)

// Axis selects one of the two principal axes of the birefringent layers.
type Axis int

// The two principal axes. The X axis is horizontal in the surface frame.
const (
	AxisX Axis = iota
	AxisY
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	if a == AxisX {
		return "X"
	}
	return "Y"
}

// Mode selects how the surface is deployed (§3.2).
type Mode int

const (
	// Transmissive: endpoints on opposite sides, signal passes through.
	Transmissive Mode = iota
	// Reflective: endpoints on the same side, signal reflects off the
	// metal backplane behind the stack.
	Reflective
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Transmissive {
		return "transmissive"
	}
	return "reflective"
}

// Design is the buildable description of a LLAMA-style polarization
// rotator. Use one of the prefab constructors (OptimizedFR4Design,
// NaiveFR4Design, Rogers5880Design) or fill the fields and call Validate.
type Design struct {
	// Name labels the design in reports.
	Name string
	// Substrate is the PCB dielectric.
	Substrate materials.Dielectric
	// Diode is the varactor model loading the BFS patterns.
	Diode varactor.Model
	// CenterHz is the design center frequency f0.
	CenterHz float64

	// PatternIndex is the base slow-wave refractive index of the printed
	// sections: meandered copper patterns slow the guided wave well below
	// c, which is what makes electrically long paths fit in a thin board.
	PatternIndex float64

	// QWPLayerThickness is the dielectric thickness of each QWP board,
	// meters (BoM accounting).
	QWPLayerThickness float64
	// QWPPath is the electrical path length (meters) of the meandered
	// pattern traces of one QWP board (Fig. 6's inner + outer patterns) —
	// the length the guided wave actually travels per board.
	QWPPath float64
	// QWPConcentration multiplies the substrate's bulk dielectric
	// attenuation along the patterned path: printed slow-wave patterns
	// concentrate fields in the laminate.
	QWPConcentration float64
	// QWPMismatch is the fractional characteristic-impedance deviation
	// of the QWP sections from free space (Fabry–Pérot ripple source).
	QWPMismatch float64
	// QWPSelectivity is the normalized susceptance slope (B·Z0 per unit
	// fractional detuning) of the resonant shunt tanks printed on each
	// QWP face. It sets the surface's band-pass rolloff: larger values
	// narrow the usable band.
	QWPSelectivity float64

	// BFSLayers is the number of varactor-loaded phase-shifter layers.
	// The paper's optimized design uses two; the naive scaled-down
	// 10 GHz design uses four.
	BFSLayers int
	// BFSLayerThickness is the dielectric thickness per BFS layer
	// (BoM accounting).
	BFSLayerThickness float64
	// BFSPath is the electrical path length (meters) of the meandered
	// BFS pattern per layer (the Fig. 6 BFS traces are 23.2 mm long in a
	// 40 mm cell).
	BFSPath float64
	// BFSConcentration multiplies bulk dielectric attenuation along the
	// loaded BFS path (loading concentrates fields further).
	BFSConcentration float64
	// LoadPitch is the varactor loading pitch along the synthetic line,
	// meters. Smaller pitch = heavier loading = more phase swing and
	// more loss. Calibrate with CalibrateLoadPitch.
	LoadPitch float64
	// BFSSelectivity is the normalized susceptance scale of the
	// varactor-loaded tanks on the BFS faces. Because the tank
	// capacitance is the diode's C(V), bias detunes the tank: low bias
	// (large C) pulls the efficiency peak down in frequency and costs
	// insertion loss at the carrier — the behaviour of Fig. 11.
	BFSSelectivity float64
	// BFSResonanceBias is the bias voltage (volts) at which the BFS face
	// tanks resonate exactly at CenterHz.
	BFSResonanceBias float64

	// BiasOffsetX is the effective bias error (volts) of the X axis
	// relative to Y, modelling the fabrication and assembly error the
	// paper compensates by extending the sweep range to 30 V.
	BiasOffsetX float64

	// UnitSize is the unit-cell edge, meters (32 mm QWP / 40 mm BFS in
	// Fig. 6; a single figure is used for BoM accounting).
	UnitSize float64
	// UnitsX, UnitsY are the lattice dimensions.
	UnitsX, UnitsY int
	// VaractorsPerUnit is the diode count per functional unit (4 in the
	// prototype: two per axis).
	VaractorsPerUnit int
	// VaractorUnitCost is the per-diode cost in USD (~$0.50).
	VaractorUnitCost float64

	// MinBiasV, MaxBiasV delimit the usable control range (0–30 V with
	// the paper's Tektronix 2230G supply).
	MinBiasV, MaxBiasV float64
}

// Validate reports an error when the design cannot be built.
func (d Design) Validate() error {
	if err := d.Substrate.Validate(); err != nil {
		return fmt.Errorf("metasurface: %s: %w", d.Name, err)
	}
	if err := d.Diode.Validate(); err != nil {
		return fmt.Errorf("metasurface: %s: %w", d.Name, err)
	}
	switch {
	case d.CenterHz <= 0:
		return fmt.Errorf("metasurface: %s: non-positive center frequency", d.Name)
	case d.PatternIndex < 1:
		return fmt.Errorf("metasurface: %s: pattern index < 1", d.Name)
	case d.QWPLayerThickness <= 0:
		return fmt.Errorf("metasurface: %s: non-positive QWP thickness", d.Name)
	case d.QWPPath <= 0:
		return fmt.Errorf("metasurface: %s: non-positive QWP path", d.Name)
	case d.QWPConcentration < 1:
		return fmt.Errorf("metasurface: %s: QWP concentration < 1", d.Name)
	case math.Abs(d.QWPMismatch) >= 0.5:
		return fmt.Errorf("metasurface: %s: QWP mismatch |%g| ≥ 0.5", d.Name, d.QWPMismatch)
	case d.QWPSelectivity < 0:
		return fmt.Errorf("metasurface: %s: negative QWP selectivity", d.Name)
	case d.BFSSelectivity < 0:
		return fmt.Errorf("metasurface: %s: negative BFS selectivity", d.Name)
	case d.BFSSelectivity > 0 && d.BFSResonanceBias <= 0:
		return fmt.Errorf("metasurface: %s: BFS tanks need a positive resonance bias", d.Name)
	case d.BFSLayers < 1:
		return fmt.Errorf("metasurface: %s: needs ≥1 BFS layer", d.Name)
	case d.BFSLayerThickness <= 0:
		return fmt.Errorf("metasurface: %s: non-positive BFS thickness", d.Name)
	case d.BFSPath <= 0:
		return fmt.Errorf("metasurface: %s: non-positive BFS path", d.Name)
	case d.BFSConcentration < 1:
		return fmt.Errorf("metasurface: %s: BFS concentration < 1", d.Name)
	case d.LoadPitch <= 0:
		return fmt.Errorf("metasurface: %s: non-positive load pitch", d.Name)
	case d.UnitSize <= 0 || d.UnitsX < 1 || d.UnitsY < 1:
		return fmt.Errorf("metasurface: %s: bad lattice geometry", d.Name)
	case d.VaractorsPerUnit < 1:
		return fmt.Errorf("metasurface: %s: needs ≥1 varactor per unit", d.Name)
	case d.MinBiasV < 0 || d.MaxBiasV <= d.MinBiasV:
		return fmt.Errorf("metasurface: %s: invalid bias range [%g,%g]", d.Name, d.MinBiasV, d.MaxBiasV)
	}
	return nil
}

// Units returns the total functional unit count.
func (d Design) Units() int { return d.UnitsX * d.UnitsY }

// Area returns the surface area in m².
func (d Design) Area() float64 {
	return float64(d.UnitsX) * float64(d.UnitsY) * d.UnitSize * d.UnitSize
}

// VaractorCount returns the total diode count (720 for the prototype).
func (d Design) VaractorCount() int { return d.Units() * d.VaractorsPerUnit }

// CopperLayers returns the total patterned copper layer count: two faces
// per QWP board plus one per BFS layer.
func (d Design) CopperLayers() int { return 4 + d.BFSLayers }

// BillOfMaterials returns the cost breakdown of the design, reproducing
// the paper's §4 accounting.
func (d Design) BillOfMaterials() materials.BillOfMaterials {
	stack := materials.Stackup{
		Substrate:      d.Substrate,
		CopperLayers:   d.CopperLayers(),
		LayerThickness: (2*d.QWPLayerThickness + float64(d.BFSLayers)*d.BFSLayerThickness) / float64(d.CopperLayers()),
		Area:           d.Area(),
	}
	return materials.BillOfMaterials{
		PCB:             stack.BoardCost(),
		Varactors:       float64(d.VaractorCount()) * d.VaractorUnitCost,
		ControlOverhead: 0.05 * stack.BoardCost(), // connectors, bias tees
	}
}

// OptimizedFR4Design returns the paper's contribution: the cheap FR4 stack
// with two thin phase-shifter layers, tuned for centerHz (2.44 GHz for the
// prototype; §3.2 also reports a 900 MHz rescale).
//
// The prototype lattice is 480×480 mm with 180 functional units; the
// bias-asymmetry term reproduces the nonzero Table 1 diagonal.
func OptimizedFR4Design(centerHz float64) Design {
	scale := units.ISMBandCenter / centerHz // geometric scaling for other bands
	d := Design{
		Name:              fmt.Sprintf("LLAMA optimized FR4 @%.2f GHz", centerHz/1e9),
		Substrate:         materials.FR4,
		Diode:             varactor.SMV1233,
		CenterHz:          centerHz,
		PatternIndex:      2.5,
		QWPLayerThickness: 1.0e-3 * scale,
		QWPPath:           0.020 * scale,
		QWPConcentration:  2.5,
		QWPMismatch:       0.08,
		QWPSelectivity:    7,
		BFSLayers:         2,
		BFSLayerThickness: 0.8e-3 * scale,
		BFSPath:           0.0232 * scale, // Fig. 6 BFS trace length
		BFSConcentration:  2.5,
		LoadPitch:         80e-3 * scale, // recalibrated below
		BFSSelectivity:    0.35,
		BFSResonanceBias:  8,
		BiasOffsetX:       1.1,
		UnitSize:          0.0358 * scale, // blended 32/40 mm unit pitch
		UnitsX:            12,
		UnitsY:            15,
		VaractorsPerUnit:  4,
		VaractorUnitCost:  0.50,
		MinBiasV:          0,
		MaxBiasV:          30,
	}
	d.LoadPitch = d.CalibrateLoadPitch(units.Radians(97), d.effectiveMinBias(2), 15)
	return d
}

// effectiveMinBias returns the lowest bias the X axis can actually see
// when the controller programs vNominal: the fabrication bias offset
// shifts the axis (§3.3 explains why the sweep range extends to 30 V).
func (d Design) effectiveMinBias(vNominal float64) float64 {
	v := vNominal - d.BiasOffsetX
	if v < 0 {
		v = 0
	}
	return v
}

// NaiveFR4Design returns the straw-man the paper measures in Fig. 9: the
// multi-layer geometry of the 10 GHz Rogers design [36] scaled to 2.4 GHz
// but fabricated on FR4. Twice the phase-shifter layers at three times the
// thickness make the 0.02 loss tangent ruinous.
func NaiveFR4Design(centerHz float64) Design {
	d := OptimizedFR4Design(centerHz)
	d.Name = fmt.Sprintf("naive FR4 @%.2f GHz", centerHz/1e9)
	d.QWPLayerThickness *= 3
	d.QWPPath *= 2
	d.QWPConcentration = 8
	d.BFSLayers = 4
	d.BFSLayerThickness *= 3
	d.BFSPath *= 1.7
	d.BFSConcentration = 14
	d.LoadPitch = d.CalibrateLoadPitch(units.Radians(97), d.effectiveMinBias(2), 15)
	return d
}

// Rogers5880Design returns the reference design of Fig. 8: the same
// multi-layer geometry as NaiveFR4Design but on low-loss Rogers 5880,
// reproducing the high transmission efficiency of [36].
func Rogers5880Design(centerHz float64) Design {
	d := NaiveFR4Design(centerHz)
	d.Name = fmt.Sprintf("Rogers 5880 @%.2f GHz", centerHz/1e9)
	d.Substrate = materials.Rogers5880
	d.LoadPitch = d.CalibrateLoadPitch(units.Radians(97), d.effectiveMinBias(2), 15)
	return d
}

// CalibrateLoadPitch searches for the varactor loading pitch that makes
// the BFS transmission-phase swing between bias vLo and vHi equal target
// radians at the design center frequency. The paper's Table 1 corner
// (48.7° rotation = 97.4° differential phase between 2 V and 15 V) is the
// calibration point. The swing is measured on the full per-axis network
// (loaded line plus varactor tanks) with phase unwrapped by stepping the
// bias, so tank contributions are included. The returned pitch is found
// by bisection; the search is monotone because heavier loading (smaller
// pitch) always increases phase swing.
func (d Design) CalibrateLoadPitch(target float64, vLo, vHi float64) float64 {
	if target <= 0 {
		panic("metasurface: non-positive calibration target")
	}
	swing := func(pitch float64) float64 {
		trial := d
		trial.LoadPitch = pitch
		return math.Abs(trial.bfsUnwrappedPhaseDelta(trial.CenterHz, vLo, vHi))
	}
	// Bracket: huge pitch = negligible loading; tiny pitch = heavy.
	loPitch, hiPitch := 0.2e-3, 20.0
	if swing(loPitch) < target {
		// Even the heaviest loading cannot reach the target; return the
		// heaviest valid pitch rather than failing, so exotic designs
		// degrade gracefully.
		return loPitch
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(loPitch * hiPitch) // geometric bisection
		if swing(mid) > target {
			loPitch = mid
		} else {
			hiPitch = mid
		}
	}
	return math.Sqrt(loPitch * hiPitch)
}
