package metasurface

// The per-design response-table registry. PR 3's cache lived and died
// with its Surface, so fig15's seven per-distance surfaces of the same
// design each recomputed the full circuit response. The memoized
// evaluations depend only on the *design's physics* — never on which
// Surface instance asked — so the tables here are keyed by a canonical
// fingerprint of the design's physical parameters and shared across
// every Surface of that design, across goroutines, and (through the
// export/import forms below plus internal/store) across processes.
// Sharing is transparent: a table entry holds the bit-exact output of
// the same pure evaluation the uncached path runs, so shared, persisted
// and per-surface caching all produce identical bytes (determinism
// invariant #10 in ARCHITECTURE.md).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/twoport"
)

// responseTableVersion is folded into every design fingerprint so that
// persisted tables computed by an older physics model can never alias a
// newer one: bump it whenever axisEval/qwpEval (or anything they call)
// changes numerically, and all stored tables become unreachable and are
// recomputed.
const responseTableVersion = 1

// DesignFingerprint returns the canonical identity of a design's
// response physics: a hex digest over every numeric field of the
// design, its substrate, and its varactor model — exactly the inputs
// axisEval and qwpEval can observe — plus the response-table version.
// Name strings are deliberately excluded (labels do not change
// physics); every numeric field is deliberately included, because an
// omitted field that later influences an evaluation would alias two
// different designs onto one table, while an extra field merely splits
// tables. Two designs with equal fingerprints produce bit-identical
// responses at every operating point.
func DesignFingerprint(d Design) string {
	h := sha256.New()
	var buf [8]byte
	word := func(x uint64) {
		binary.BigEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	f := func(x float64) { word(math.Float64bits(x)) }
	i := func(x int) { word(uint64(int64(x))) }

	fmt.Fprintf(h, "llama-response-table-v%d:", responseTableVersion)
	// Substrate (materials.Dielectric), numeric fields in declaration order.
	f(d.Substrate.EpsilonR)
	f(d.Substrate.LossTangent)
	f(d.Substrate.CostPerM2PerLayer)
	// Diode (varactor.Model), numeric fields in declaration order.
	f(d.Diode.C0)
	f(d.Diode.Vj)
	f(d.Diode.M)
	f(d.Diode.Cp)
	f(d.Diode.Rs)
	f(d.Diode.Ls)
	f(d.Diode.LeakageA)
	f(d.Diode.MinBias)
	f(d.Diode.MaxBias)
	// Design, numeric fields in declaration order.
	f(d.CenterHz)
	f(d.PatternIndex)
	f(d.QWPLayerThickness)
	f(d.QWPPath)
	f(d.QWPConcentration)
	f(d.QWPMismatch)
	f(d.QWPSelectivity)
	i(d.BFSLayers)
	f(d.BFSLayerThickness)
	f(d.BFSPath)
	f(d.BFSConcentration)
	f(d.LoadPitch)
	f(d.BFSSelectivity)
	f(d.BFSResonanceBias)
	f(d.BiasOffsetX)
	f(d.UnitSize)
	i(d.UnitsX)
	i(d.UnitsY)
	i(d.VaractorsPerUnit)
	f(d.VaractorUnitCost)
	f(d.MinBiasV)
	f(d.MaxBiasV)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// The process-wide table registry: one shared response table per design
// fingerprint. Surfaces resolve their table once at construction, so
// the registry lock is never on a lookup hot path.
var (
	tablesMu sync.Mutex
	tables   = make(map[string]*responseTable)
)

// tableFor returns the shared response table for fingerprint fp,
// creating an empty one on first use.
func tableFor(fp string) *responseTable {
	tablesMu.Lock()
	defer tablesMu.Unlock()
	t, ok := tables[fp]
	if !ok {
		t = newResponseTable(fp)
		tables[fp] = t
	}
	return t
}

// TableStats returns the shared response table's counters for design d:
// hits and misses summed over every Surface of that design in this
// process. Zero if no Surface of the design has been built yet.
func TableStats(d Design) CacheStats {
	tablesMu.Lock()
	t := tables[DesignFingerprint(d)]
	tablesMu.Unlock()
	if t == nil {
		return CacheStats{}
	}
	return t.stats()
}

// TableCount returns the number of design tables currently registered.
func TableCount() int {
	tablesMu.Lock()
	defer tablesMu.Unlock()
	return len(tables)
}

// ResetResponseTables empties the table registry (test isolation, and
// A/B benchmarks that need a cold exact path). Surfaces built before
// the reset keep their old table; build surfaces after resetting.
func ResetResponseTables() {
	tablesMu.Lock()
	defer tablesMu.Unlock()
	tables = make(map[string]*responseTable)
}

// Serialized entry arities. An axis row is
//
//	[axis, f, v, s11re, s11im, s12re, s12im, s21re, s21im, s22re, s22im, z0, gammaRe, gammaIm]
//
// and a QWP row is
//
//	[f, fastS×9, slowS×9, plusMat×8, minusMat×8]
//
// where an S-parameter block is the four complex entries as re/im pairs
// followed by the reference impedance, and a Jones-matrix block is the
// four complex entries as re/im pairs. Floats are formatted with
// strconv.FormatFloat(v, 'g', -1, 64), the shortest string that parses
// back to the identical bits (the store's lossless convention).
const (
	axisEntryCols = 14
	qwpEntryCols  = 35
)

// TableExport is the store-friendly serialization of one design's
// response table: pure string rows, so internal/store can persist it
// without importing this package. Produced by ExportResponseTables,
// consumed by ImportResponseTable.
type TableExport struct {
	// Fingerprint is the DesignFingerprint the entries belong to.
	Fingerprint string
	// Axis holds one row per memoized per-axis evaluation (axisEntryCols
	// columns each), sorted canonically.
	Axis [][]string
	// QWP holds one row per memoized QWP evaluation (qwpEntryCols
	// columns each), sorted canonically.
	QWP [][]string
}

// Entries returns the total entry count of the export.
func (t TableExport) Entries() int { return len(t.Axis) + len(t.QWP) }

// fmtFloat renders one float losslessly.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fmtComplex appends the lossless re/im pair of c to row.
func fmtComplex(row []string, c complex128) []string {
	return append(row, fmtFloat(real(c)), fmtFloat(imag(c)))
}

// fmtSParams appends an S-parameter block (9 columns) to row.
func fmtSParams(row []string, s twoport.SParams) []string {
	row = fmtComplex(row, s.S11)
	row = fmtComplex(row, s.S12)
	row = fmtComplex(row, s.S21)
	row = fmtComplex(row, s.S22)
	return append(row, fmtFloat(s.Z0))
}

// fmtMat appends a Jones-matrix block (8 columns) to row.
func fmtMat(row []string, m mat2.Mat) []string {
	row = fmtComplex(row, m.A)
	row = fmtComplex(row, m.B)
	row = fmtComplex(row, m.C)
	return fmtComplex(row, m.D)
}

// ExportResponseTables snapshots every registered design table in a
// canonical order: tables sorted by fingerprint, axis entries by
// (axis, frequency bits, bias bits), QWP entries by frequency bits.
// Two processes holding the same entries export identical bytes, which
// keeps persisted table records diff-stable.
func ExportResponseTables() []TableExport {
	tablesMu.Lock()
	list := make([]*responseTable, 0, len(tables))
	for _, t := range tables {
		list = append(list, t)
	}
	tablesMu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].fingerprint < list[j].fingerprint })

	out := make([]TableExport, 0, len(list))
	for _, t := range list {
		out = append(out, t.export())
	}
	return out
}

// export snapshots one table in canonical order. The snapshot unions
// the published map with any still-pending entries, so nothing computed
// before the export is ever missing from it.
func (t *responseTable) export() TableExport {
	axisMap := t.axis.snapshot()
	qwpMap := t.qwp.snapshot()
	axisKeys := make([]axisKey, 0, len(axisMap))
	for k := range axisMap {
		axisKeys = append(axisKeys, k)
	}
	qwpKeys := make([]uint64, 0, len(qwpMap))
	for k := range qwpMap {
		qwpKeys = append(qwpKeys, k)
	}
	sort.Slice(axisKeys, func(i, j int) bool {
		a, b := axisKeys[i], axisKeys[j]
		if a.axis != b.axis {
			return a.axis < b.axis
		}
		if a.f != b.f {
			return a.f < b.f
		}
		return a.v < b.v
	})
	sort.Slice(qwpKeys, func(i, j int) bool { return qwpKeys[i] < qwpKeys[j] })

	ex := TableExport{
		Fingerprint: t.fingerprint,
		Axis:        make([][]string, 0, len(axisKeys)),
		QWP:         make([][]string, 0, len(qwpKeys)),
	}
	for _, k := range axisKeys {
		r := axisMap[k]
		row := make([]string, 0, axisEntryCols)
		row = append(row, k.axis.String(),
			fmtFloat(math.Float64frombits(k.f)), fmtFloat(math.Float64frombits(k.v)))
		row = fmtSParams(row, r.s)
		row = fmtComplex(row, r.shortGamma)
		ex.Axis = append(ex.Axis, row)
	}
	for _, k := range qwpKeys {
		r := qwpMap[k]
		row := make([]string, 0, qwpEntryCols)
		row = append(row, fmtFloat(math.Float64frombits(k)))
		row = fmtSParams(row, r.fastS)
		row = fmtSParams(row, r.slowS)
		row = fmtMat(row, r.plus)
		row = fmtMat(row, r.minus)
		ex.QWP = append(ex.QWP, row)
	}
	return ex
}

// rowReader walks one serialized row, tracking the first parse error.
type rowReader struct {
	row []string
	i   int
	err error
}

// next parses the next float column.
func (r *rowReader) next() float64 {
	if r.err != nil {
		return 0
	}
	if r.i >= len(r.row) {
		r.err = fmt.Errorf("metasurface: table row truncated at column %d", r.i)
		return 0
	}
	v, err := strconv.ParseFloat(r.row[r.i], 64)
	if err != nil {
		r.err = fmt.Errorf("metasurface: table row column %d: %w", r.i, err)
		return 0
	}
	r.i++
	return v
}

// complexVal parses the next re/im pair.
func (r *rowReader) complexVal() complex128 {
	re := r.next()
	im := r.next()
	return complex(re, im)
}

// sparams parses the next S-parameter block.
func (r *rowReader) sparams() twoport.SParams {
	return twoport.SParams{
		S11: r.complexVal(), S12: r.complexVal(),
		S21: r.complexVal(), S22: r.complexVal(),
		Z0: r.next(),
	}
}

// mat parses the next Jones-matrix block.
func (r *rowReader) mat() mat2.Mat {
	return mat2.Mat{A: r.complexVal(), B: r.complexVal(), C: r.complexVal(), D: r.complexVal()}
}

// ImportResponseTable merges a previously exported table into the
// registry (union: existing entries win, though by purity both sides
// hold identical bits) and returns the number of entries in the export.
// The whole export is validated before any entry is applied, so a
// corrupt record never half-populates a table — callers treat an error
// as "recompute from scratch". Imports do not advance any hit/miss
// counters.
func ImportResponseTable(ex TableExport) (int, error) {
	if ex.Fingerprint == "" {
		return 0, fmt.Errorf("metasurface: table import: empty fingerprint")
	}
	type axisEntry struct {
		key axisKey
		val axisResponse
	}
	type qwpEntry struct {
		key uint64
		val qwpResponse
	}
	axisEntries := make([]axisEntry, 0, len(ex.Axis))
	for n, row := range ex.Axis {
		if len(row) != axisEntryCols {
			return 0, fmt.Errorf("metasurface: table import: axis row %d has %d columns, want %d", n, len(row), axisEntryCols)
		}
		var ax Axis
		switch row[0] {
		case AxisX.String():
			ax = AxisX
		case AxisY.String():
			ax = AxisY
		default:
			return 0, fmt.Errorf("metasurface: table import: axis row %d: unknown axis %q", n, row[0])
		}
		r := rowReader{row: row, i: 1}
		key := axisKey{axis: ax, f: math.Float64bits(r.next()), v: math.Float64bits(r.next())}
		val := axisResponse{s: r.sparams(), shortGamma: r.complexVal()}
		if r.err != nil {
			return 0, fmt.Errorf("metasurface: table import: axis row %d: %w", n, r.err)
		}
		axisEntries = append(axisEntries, axisEntry{key: key, val: val})
	}
	qwpEntries := make([]qwpEntry, 0, len(ex.QWP))
	for n, row := range ex.QWP {
		if len(row) != qwpEntryCols {
			return 0, fmt.Errorf("metasurface: table import: qwp row %d has %d columns, want %d", n, len(row), qwpEntryCols)
		}
		r := rowReader{row: row}
		key := math.Float64bits(r.next())
		val := qwpResponse{fastS: r.sparams(), slowS: r.sparams(), plus: r.mat(), minus: r.mat()}
		if r.err != nil {
			return 0, fmt.Errorf("metasurface: table import: qwp row %d: %w", n, r.err)
		}
		qwpEntries = append(qwpEntries, qwpEntry{key: key, val: val})
	}

	t := tableFor(ex.Fingerprint)
	axisKeys := make([]axisKey, len(axisEntries))
	axisVals := make([]axisResponse, len(axisEntries))
	for i, e := range axisEntries {
		axisKeys[i], axisVals[i] = e.key, e.val
	}
	qwpKeys := make([]uint64, len(qwpEntries))
	qwpVals := make([]qwpResponse, len(qwpEntries))
	for i, e := range qwpEntries {
		qwpKeys[i], qwpVals[i] = e.key, e.val
	}
	// merge publishes the union snapshot immediately: warm-started
	// entries are lock-free from the first lookup.
	t.axis.merge(axisKeys, axisVals)
	t.qwp.merge(qwpKeys, qwpVals)
	return len(axisEntries) + len(qwpEntries), nil
}
