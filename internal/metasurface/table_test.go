package metasurface

// Contracts of the design-keyed response-table registry: fingerprint
// canonicalization, cross-surface sharing, three-view counter
// attribution (per surface / per design table / global), and the
// lossless export/import round trip that backs persistence.

import (
	"reflect"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

// TestDesignFingerprintPhysics: the fingerprint must be stable for the
// same design, indifferent to labels, and sensitive to every physical
// parameter a response evaluation can observe.
func TestDesignFingerprintPhysics(t *testing.T) {
	base := OptimizedFR4Design(units.DefaultCarrierHz)
	fp := DesignFingerprint(base)
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if again := DesignFingerprint(base); again != fp {
		t.Fatalf("fingerprint not deterministic: %s != %s", again, fp)
	}

	renamed := base
	renamed.Name = "same physics, different label"
	renamed.Substrate.Name = "relabelled laminate"
	renamed.Diode.Name = "relabelled diode"
	if got := DesignFingerprint(renamed); got != fp {
		t.Errorf("renaming changed the fingerprint: labels must not split tables")
	}

	// Every mutation below changes physics and must change the key —
	// an aliased table would serve one design's responses for another.
	mutations := map[string]func(*Design){
		"substrate epsilon": func(d *Design) { d.Substrate.EpsilonR *= 1.001 },
		"diode C0":          func(d *Design) { d.Diode.C0 *= 1.001 },
		"center frequency":  func(d *Design) { d.CenterHz += 1e6 },
		"bfs layers":        func(d *Design) { d.BFSLayers++ },
		"load pitch":        func(d *Design) { d.LoadPitch *= 1.001 },
		"bias offset":       func(d *Design) { d.BiasOffsetX += 0.01 },
		"bias range":        func(d *Design) { d.MaxBiasV += 1 },
	}
	for name, mutate := range mutations {
		d := base
		mutate(&d)
		if got := DesignFingerprint(d); got == fp {
			t.Errorf("%s: physics mutation did not change the fingerprint", name)
		}
	}
}

// TestSharedTableCrossSurface: surfaces of one design share one table
// (a sibling's identical query hits), while a different design gets its
// own table.
func TestSharedTableCrossSurface(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	f := units.DefaultCarrierHz

	a := MustNew(d)
	a.SetBias(8, 8)
	a.JonesTransmissive(f)
	if st := a.CacheStats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("first surface = %+v, want 3 misses", st)
	}

	b := MustNew(d)
	b.SetBias(8, 8)
	b.JonesTransmissive(f)
	if st := b.CacheStats(); st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("sibling surface = %+v, want 3 hits against shared entries", st)
	}
	if TableCount() != 1 {
		t.Fatalf("TableCount = %d, want 1 (same design, one table)", TableCount())
	}

	other := MustNew(NaiveFR4Design(units.DefaultCarrierHz))
	other.SetBias(8, 8)
	other.JonesTransmissive(f)
	if st := other.CacheStats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("different design = %+v, want its own cold table", st)
	}
	if TableCount() != 2 {
		t.Fatalf("TableCount = %d, want 2 after a second design", TableCount())
	}
}

// TestTableStatsThreeViews: per-surface, per-design-table and global
// counters must agree — each lookup counts exactly once in each view,
// and the sum over a design's surfaces equals its table's counters.
// The windowed (Sub) form is what the engine's single-worker
// attribution relies on.
func TestTableStatsThreeViews(t *testing.T) {
	ResetResponseTables()
	before := GlobalCacheStats()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	f := units.DefaultCarrierHz

	a := MustNew(d)
	b := MustNew(d)
	a.SetBias(8, 8)
	b.SetBias(8, 9) // shares the X-axis and QWP entries, misses on Y
	a.JonesTransmissive(f)
	b.JonesTransmissive(f)
	b.JonesTransmissive(f) // all hits

	sa, sb := a.CacheStats(), b.CacheStats()
	sum := CacheStats{Hits: sa.Hits + sb.Hits, Misses: sa.Misses + sb.Misses}
	table := TableStats(d)
	global := GlobalCacheStats().Sub(before)
	if sum != table {
		t.Errorf("sum of surfaces %+v != design table %+v", sum, table)
	}
	if table != global {
		t.Errorf("design table %+v != global window %+v (single design in window)", table, global)
	}
	if s := a.TableStats(); s != table {
		t.Errorf("Surface.TableStats %+v != TableStats(design) %+v", s, table)
	}
	// Pin the arithmetic so the no-double-count claim is concrete:
	// a misses 3; b hits X+QWP (2), misses Y (1); b's repeat hits 3.
	if want := (CacheStats{Hits: 5, Misses: 4}); table != want {
		t.Errorf("table counters %+v, want %+v", table, want)
	}
}

// TestResetResponseTables: reset empties the registry, and surfaces
// built afterwards start cold.
func TestResetResponseTables(t *testing.T) {
	ResetResponseTables()
	s := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	s.SetBias(8, 8)
	s.JonesTransmissive(units.DefaultCarrierHz)
	if TableCount() == 0 {
		t.Fatal("no table registered after use")
	}
	ResetResponseTables()
	if TableCount() != 0 {
		t.Fatalf("TableCount = %d after reset", TableCount())
	}
	fresh := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	fresh.SetBias(8, 8)
	fresh.JonesTransmissive(units.DefaultCarrierHz)
	if st := fresh.CacheStats(); st.Misses != 3 {
		t.Errorf("post-reset surface = %+v, want a cold start (3 misses)", st)
	}
}

// TestTableExportImportRoundTrip: export → fresh registry → import must
// hand back bit-identical responses with zero recomputation, and
// re-exporting the imported table must reproduce the exported bytes
// exactly (the persistence path's lossless contract).
func TestTableExportImportRoundTrip(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	src := MustNew(d)
	want := make(map[float64]struct{ x, y complex128 })
	biases := []float64{0, 0.1, 7.3, 15, 30}
	for _, v := range biases {
		src.SetBias(v, v)
		for _, f := range []float64{2.2e9, units.DefaultCarrierHz} {
			src.JonesTransmissive(f)
			want[f*1e3+v] = struct{ x, y complex128 }{
				src.AxisTransmission(AxisX, f, v),
				src.AxisTransmission(AxisY, f, v),
			}
		}
	}

	exports := ExportResponseTables()
	if len(exports) != 1 {
		t.Fatalf("%d exports, want 1", len(exports))
	}
	ex := exports[0]
	if ex.Fingerprint != DesignFingerprint(d) {
		t.Fatalf("export fingerprint %s != design fingerprint", ex.Fingerprint)
	}
	if ex.Entries() == 0 {
		t.Fatal("empty export")
	}

	ResetResponseTables()
	n, err := ImportResponseTable(ex)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if n != ex.Entries() {
		t.Fatalf("imported %d entries, export carries %d", n, ex.Entries())
	}

	warm := MustNew(d)
	for _, v := range biases {
		warm.SetBias(v, v)
		for _, f := range []float64{2.2e9, units.DefaultCarrierHz} {
			k := f*1e3 + v
			if got := warm.AxisTransmission(AxisX, f, v); !sameC(got, want[k].x) {
				t.Fatalf("X response at (%g, %g) changed across export/import", f, v)
			}
			if got := warm.AxisTransmission(AxisY, f, v); !sameC(got, want[k].y) {
				t.Fatalf("Y response at (%g, %g) changed across export/import", f, v)
			}
		}
	}
	if st := warm.CacheStats(); st.Misses != 0 {
		t.Errorf("warm surface recomputed %d entries; import should have pre-filled all of them", st.Misses)
	}

	again := ExportResponseTables()
	if len(again) != 1 || !reflect.DeepEqual(again[0], ex) {
		t.Error("re-export after import is not byte-identical: persisted tables would churn")
	}
}

// TestImportRejectsCorrupt: a record that fails validation must be
// rejected whole — no half-populated table, no counter movement.
func TestImportRejectsCorrupt(t *testing.T) {
	ResetResponseTables()
	good := TableExport{
		Fingerprint: "test-fp",
		Axis: [][]string{{
			"X", "2.45e9", "8",
			"0.1", "0", "0.9", "0", "0.9", "0", "0.1", "0", "377", "0.5", "0",
		}},
	}
	for name, ex := range map[string]TableExport{
		"no fingerprint": {Axis: good.Axis},
		"bad arity": {Fingerprint: "fp", Axis: [][]string{
			{"X", "2.45e9", "8"},
		}},
		"unknown axis": {Fingerprint: "fp", Axis: [][]string{
			append([]string{"Z"}, good.Axis[0][1:]...),
		}},
		"non-numeric cell": {Fingerprint: "fp", Axis: [][]string{
			append([]string{"X", "2.45e9", "not-a-float"}, good.Axis[0][3:]...),
		}},
		"bad qwp arity": {Fingerprint: "fp", QWP: [][]string{{"2.45e9", "1"}}},
	} {
		if _, err := ImportResponseTable(ex); err == nil {
			t.Errorf("%s: corrupt import accepted", name)
		}
	}
	if TableCount() != 0 {
		t.Fatalf("rejected imports left %d table(s) in the registry", TableCount())
	}
	// A mixed record — one valid row, one corrupt — must be all-or-nothing.
	mixed := TableExport{
		Fingerprint: "mixed-fp",
		Axis:        [][]string{good.Axis[0], {"X", "oops"}},
	}
	if _, err := ImportResponseTable(mixed); err == nil {
		t.Fatal("mixed corrupt import accepted")
	}
	if n, err := ImportResponseTable(TableExport{Fingerprint: "mixed-fp"}); err != nil || n != 0 {
		t.Fatalf("probe import: n=%d err=%v", n, err)
	}
	for _, ex := range ExportResponseTables() {
		if ex.Fingerprint == "mixed-fp" && ex.Entries() != 0 {
			t.Fatalf("mixed corrupt import half-populated the table with %d entries", ex.Entries())
		}
	}
}
