package metasurface

// The batched evaluation API. A sweep runner visits a whole axis of
// operating points per row — 21×21 bias pairs in a FullScan, seven
// biases per fig11 frequency — and the scalar path pays a snapshot
// load, counter update and (on a cold table) a mutex round-trip per
// point. JonesBatch resolves the whole axis against ONE published
// snapshot, computes every miss in one grouped singleflight pass, and
// folds the counters in one add, so per-point synchronization traffic
// amortizes away. Results are bit-identical to calling the scalar path
// point by point in every mode — exact, caching disabled, and
// approximate LUT — because both paths resolve through the same
// memoized evaluations and assemble through the same helpers
// (jonesTransmissiveFrom / jonesReflectiveFrom). That equivalence is
// determinism invariant #11 in ARCHITECTURE.md, locked in under -race
// by batch_test.go.

import (
	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

// BatchPoint is one operating point of a batched surface evaluation:
// the carrier frequency plus the X/Y bias pair. Biases are clamped to
// the design's control range exactly as SetBias clamps, so a batch
// point behaves like SetBias(VX, VY) followed by a scalar query.
type BatchPoint struct {
	// F is the evaluation frequency in Hz.
	F float64
	// VX, VY are the X- and Y-axis bias voltages in volts.
	VX, VY float64
}

// JonesBatch computes the surface's Jones matrix at every point in one
// grouped pass, appending nothing to the surface's own bias state. dst
// is reused when it has capacity (pass nil to allocate); the resized
// slice is returned. Each dst[i] is bit-identical to
//
//	s.SetBias(pts[i].VX, pts[i].VY)
//	s.Jones(mode, pts[i].F)
//
// in every cache mode (invariant #11).
func (s *Surface) JonesBatch(mode Mode, pts []BatchPoint, dst []mat2.Mat) []mat2.Mat {
	if cap(dst) < len(pts) {
		dst = make([]mat2.Mat, len(pts))
	}
	dst = dst[:len(pts)]
	if len(pts) == 0 {
		return dst
	}
	xr, yr, qw := s.batchResponses(pts)
	for i := range pts {
		if mode == Reflective {
			dst[i] = jonesReflectiveFrom(xr[i], yr[i], qw[i])
		} else {
			dst[i] = jonesTransmissiveFrom(xr[i], yr[i], qw[i])
		}
	}
	return dst
}

// Warm pre-resolves (and thus memoizes) every response a later scan of
// the given points will need — both axes and the QWP — without
// assembling any Jones matrix. The memoized primitives serve both
// modes, so one Warm covers transmissive and reflective queries alike.
// Warming is bit-neutral by construction: it only populates the same
// memoization state the scan itself would populate, never an output.
func (s *Surface) Warm(pts []BatchPoint) {
	if len(pts) == 0 {
		return
	}
	s.batchResponses(pts)
}

// batchResponses resolves the per-axis and QWP responses of every
// point. On the exact cached path all 2·n axis points and n QWP
// frequencies resolve against one snapshot each, in one grouped
// singleflight pass per kind. The LUT and uncached paths loop the same
// per-point resolution the scalar path uses — per-mode bit-identity is
// the contract, not a shared fast path.
func (s *Surface) batchResponses(pts []BatchPoint) (xr, yr []axisResponse, qw []qwpResponse) {
	n := len(pts)
	xr = make([]axisResponse, n)
	yr = make([]axisResponse, n)
	qw = make([]qwpResponse, n)
	lo, hi := s.design.MinBiasV, s.design.MaxBiasV
	if s.table == nil || !CachingEnabled() || LUTEnabled() {
		// The scalar resolution already handles these modes (LUT
		// interpolation with exact fallback, or direct evaluation);
		// batching only groups the loop.
		for i, p := range pts {
			xr[i] = s.axisAt(AxisX, p.F, units.Clamp(p.VX, lo, hi))
			yr[i] = s.axisAt(AxisY, p.F, units.Clamp(p.VY, lo, hi))
			qw[i] = s.qwpAt(p.F)
		}
		return xr, yr, qw
	}
	ap := make([]axisPoint, 2*n)
	for i, p := range pts {
		ap[2*i] = axisPoint{axis: AxisX, f: p.F, v: units.Clamp(p.VX, lo, hi)}
		ap[2*i+1] = axisPoint{axis: AxisY, f: p.F, v: units.Clamp(p.VY, lo, hi)}
	}
	ar := make([]axisResponse, 2*n)
	ahits, amisses := s.table.axisBatch(s.design, ap, ar, s.shard)
	for i := range pts {
		xr[i] = ar[2*i]
		yr[i] = ar[2*i+1]
	}
	freqs := make([]float64, n)
	for i, p := range pts {
		freqs[i] = p.F
	}
	qhits, qmisses := s.table.qwpBatch(s.design, freqs, qw, s.shard)
	s.hits.Add(ahits + qhits)
	s.misses.Add(amisses + qmisses)
	return xr, yr, qw
}
