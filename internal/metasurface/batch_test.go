package metasurface

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

// batchTestPoints builds a deterministic operating-point set spanning
// the band and control range, including repeated points (batch dedup),
// out-of-range biases (clamping) and, under LUT mode, out-of-grid
// frequencies (exact fallback).
func batchTestPoints() []BatchPoint {
	rng := rand.New(rand.NewSource(11))
	pts := []BatchPoint{
		{F: units.DefaultCarrierHz, VX: 8, VY: 8},
		{F: units.DefaultCarrierHz, VX: 8, VY: 8}, // duplicate of the above
		{F: 2.0e9, VX: 0, VY: 30},
		{F: 2.8e9, VX: 30, VY: 0},
		{F: 2.45e9, VX: -3, VY: 99}, // clamps to the control range
		{F: 1.0e9, VX: 5, VY: 5},    // far out of any LUT grid
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, BatchPoint{
			F:  2.0e9 + 0.8e9*rng.Float64(),
			VX: 30 * rng.Float64(),
			VY: 30 * rng.Float64(),
		})
	}
	return pts
}

// scalarJones is the reference path a batch point must reproduce:
// SetBias then a scalar Jones query.
func scalarJones(s *Surface, mode Mode, p BatchPoint) mat2.Mat {
	s.SetBias(p.VX, p.VY)
	return s.Jones(mode, p.F)
}

// TestBatchMatchesScalarAllModes is determinism invariant #11: JonesBatch
// must be bit-identical to the scalar SetBias+Jones loop in every cache
// mode — exact cached, caching disabled, and approximate LUT — and the
// exact modes must also match the uncached evaluation (invariant #10
// composed with #11). Run under -race this also certifies the grouped
// miss path.
func TestBatchMatchesScalarAllModes(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	pts := batchTestPoints()

	// Uncached reference, computed before any cache exists.
	SetCaching(false)
	ref := make(map[Mode][]mat2.Mat)
	for _, mode := range []Mode{Transmissive, Reflective} {
		s := MustNew(d)
		for _, p := range pts {
			ref[mode] = append(ref[mode], scalarJones(s, mode, p))
		}
	}
	SetCaching(true)

	check := func(t *testing.T, name string) {
		t.Helper()
		for _, mode := range []Mode{Transmissive, Reflective} {
			scalar := MustNew(d)
			batch := MustNew(d)
			got := batch.JonesBatch(mode, pts, nil)
			if len(got) != len(pts) {
				t.Fatalf("%s mode %v: JonesBatch returned %d results for %d points", name, mode, len(got), len(pts))
			}
			for i, p := range pts {
				want := scalarJones(scalar, mode, p)
				if !sameMat(got[i], want) {
					t.Fatalf("%s mode %v point %d (%+v): batch %v != scalar %v", name, mode, i, p, got[i], want)
				}
			}
			// A second batch over the same points (pure hit path) must
			// return the same bits, reusing the destination slice.
			again := batch.JonesBatch(mode, pts, got)
			for i := range pts {
				if !sameMat(again[i], ref[mode][i]) && name != "lut" {
					t.Fatalf("%s mode %v point %d: cached batch diverged from uncached reference", name, mode, i)
				}
			}
		}
	}

	t.Run("exact-cached", func(t *testing.T) {
		check(t, "exact-cached")
		// And against the uncached reference directly.
		for _, mode := range []Mode{Transmissive, Reflective} {
			s := MustNew(d)
			for i, m := range s.JonesBatch(mode, pts, nil) {
				if !sameMat(m, ref[mode][i]) {
					t.Fatalf("mode %v point %d: cached batch != uncached reference", mode, i)
				}
			}
		}
	})
	t.Run("disabled", func(t *testing.T) {
		SetCaching(false)
		defer SetCaching(true)
		check(t, "disabled")
	})
	t.Run("lut", func(t *testing.T) {
		SetLUT(true)
		defer func() {
			SetLUT(false)
			ResetGlobalLUTStats()
			ResetResponseTables()
		}()
		check(t, "lut")
	})
}

// TestJonesBatchEmptyAndDst covers the trivial edges: an empty batch
// returns an empty (possibly reused) slice and touches no counters.
func TestJonesBatchEmptyAndDst(t *testing.T) {
	ResetResponseTables()
	s := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	if got := s.JonesBatch(Transmissive, nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if st := s.CacheStats(); st.Lookups() != 0 {
		t.Fatalf("empty batch recorded %d lookups", st.Lookups())
	}
	dst := make([]mat2.Mat, 0, 8)
	got := s.JonesBatch(Transmissive, []BatchPoint{{F: units.DefaultCarrierHz, VX: 8, VY: 8}}, dst)
	if len(got) != 1 || cap(got) != 8 {
		t.Fatalf("dst reuse: len %d cap %d, want 1/8", len(got), cap(got))
	}
}

// TestWarmFillsTheTable: Warm must pre-resolve exactly the entries a
// later scan needs, so the scan itself records zero misses — and it must
// be bit-neutral, so the warmed scan equals the unwarmed reference.
func TestWarmFillsTheTable(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	pts := batchTestPoints()

	cold := MustNew(d)
	want := cold.JonesBatch(Transmissive, pts, nil)

	ResetResponseTables()
	warmer := MustNew(d)
	warmer.Warm(pts)
	scan := MustNew(d)
	got := scan.JonesBatch(Transmissive, pts, nil)
	if st := scan.CacheStats(); st.Misses != 0 {
		t.Fatalf("scan after Warm recorded %d misses, want 0", st.Misses)
	}
	for i := range pts {
		if !sameMat(got[i], want[i]) {
			t.Fatalf("point %d: warmed scan diverged from cold scan", i)
		}
	}
	// Warming again is free: every entry already exists.
	before := TableStats(d)
	warmer.Warm(pts)
	if after := TableStats(d); after.Misses != before.Misses {
		t.Fatalf("repeat Warm computed %d new entries", after.Misses-before.Misses)
	}
}

// TestSingleflightBoundsRedundantEvals hammers one snapMap with many
// goroutines racing over the same fresh key set, all released together,
// and asserts the singleflight grouping held: eval ran EXACTLY once per
// distinct key — not once per goroutine — and every caller got the
// computed value. Both the scalar and the batched lookup paths are
// exercised against the same map. Run under -race.
func TestSingleflightBoundsRedundantEvals(t *testing.T) {
	const workers = 16
	const keys = 64
	m := newSnapMap[int, int]()
	var evals atomic.Uint64
	eval := func(k int) int {
		evals.Add(1)
		return k * 31
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			if w%2 == 0 {
				// Scalar path, each worker in a different key order.
				for i := 0; i < keys; i++ {
					k := (i*7 + w) % keys
					if v, _ := m.lookup(k, func() int { return eval(k) }); v != k*31 {
						errs <- "scalar lookup returned a wrong value"
						return
					}
				}
			} else {
				// Batched path with in-batch duplicates.
				ks := make([]int, 0, keys+8)
				for i := 0; i < keys; i++ {
					ks = append(ks, (keys-1-i+w)%keys)
				}
				ks = append(ks, ks[:8]...)
				out := make([]int, len(ks))
				m.lookupBatch(ks, out, eval)
				for i, k := range ks {
					if out[i] != k*31 {
						errs <- "batched lookup returned a wrong value"
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if n := evals.Load(); n != keys {
		t.Fatalf("%d evaluations for %d distinct keys; singleflight must bound redundant evals at zero", n, keys)
	}
	if got := m.size(); got != keys {
		t.Fatalf("map holds %d entries, want %d", got, keys)
	}
}

// TestSnapshotPublicationRace races readers of a hot key set against
// writers continuously inserting fresh keys (forcing copy-on-write
// publishes mid-read) across several seeds and goroutine counts. Every
// read must return the precomputed reference bits — a reader sees the
// old snapshot or the new one, never a torn map — and the per-table,
// global and per-view counters must account every lookup exactly (the
// three views never under-count). Run under -race this is the
// publication-safety certificate for the whole design.
func TestSnapshotPublicationRace(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	for _, seed := range []int64{1, 7} {
		for _, readers := range []int{1, 4, 8} {
			// Reference responses for the hot keys, straight from the pure
			// evaluation (no cache involved).
			rng := rand.New(rand.NewSource(seed))
			type hotKey struct {
				axis Axis
				f, v float64
			}
			hot := make([]hotKey, 24)
			refs := make([]axisResponse, len(hot))
			for i := range hot {
				axis := AxisX
				if i%2 == 1 {
					axis = AxisY
				}
				hot[i] = hotKey{axis: axis, f: 2.0e9 + 0.8e9*rng.Float64(), v: 30 * rng.Float64()}
				refs[i] = d.axisEval(hot[i].axis, hot[i].f, hot[i].v)
			}

			tbl := newResponseTable("race-test")
			const rounds = 300
			errs := make(chan string, readers)
			var lookups atomic.Uint64

			// Writer: a stream of fresh keys keeps pending non-empty and
			// publishes churning while readers hold old snapshots.
			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					v := 0.001 * float64(i+1)
					tbl.axisAt(d, AxisX, 2.31e9, v, uint32(i))
					lookups.Add(1)
				}
			}()
			var readerWG sync.WaitGroup
			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func(r int) {
					defer readerWG.Done()
					for i := 0; i < rounds; i++ {
						ki := (i + r) % len(hot)
						k := hot[ki]
						got, _ := tbl.axisAt(d, k.axis, k.f, k.v, uint32(r))
						lookups.Add(1)
						if !sameC(got.s.S21, refs[ki].s.S21) || !sameC(got.shortGamma, refs[ki].shortGamma) {
							errs <- "axis response diverged from the pure evaluation under publication churn"
							return
						}
					}
				}(r)
			}
			readerWG.Wait()
			close(stop)
			writerWG.Wait()
			close(errs)
			for e := range errs {
				t.Fatalf("seed %d readers %d: %s", seed, readers, e)
			}
			if st := tbl.stats(); st.Lookups() != lookups.Load() {
				t.Fatalf("seed %d readers %d: table counted %d lookups, %d performed — views must never under-count",
					seed, readers, st.Lookups(), lookups.Load())
			}
		}
	}
}

// TestStatShardPadding pins the anti-false-sharing layout: each counter
// shard must occupy a whole number of 64-byte cache lines so adjacent
// shards never share one, and the sharded pair must be exactly its
// shards (no stray header pulling slot 0 onto a shared line).
func TestStatShardPadding(t *testing.T) {
	if sz := unsafe.Sizeof(statShard{}); sz%64 != 0 || sz == 0 {
		t.Fatalf("statShard is %d bytes; must be a non-zero multiple of the 64-byte cache line", sz)
	}
	if sz, want := unsafe.Sizeof(shardedStats{}), uintptr(statShards)*unsafe.Sizeof(statShard{}); sz != want {
		t.Fatalf("shardedStats is %d bytes, want %d (shards only, densely packed)", sz, want)
	}
}
