package metasurface

import (
	"math"
	"sync"
	"testing"

	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/units"
)

// sameMat compares two Jones matrices by raw float bit patterns — the
// literal "cached ≡ uncached" contract, with no tolerance to hide behind.
func sameMat(a, b mat2.Mat) bool {
	return sameC(a.A, b.A) && sameC(a.B, b.B) && sameC(a.C, b.C) && sameC(a.D, b.D)
}

func sameC(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// denseGrid is the (f, bias) grid the transparency tests sweep: frequency
// across the band including off-center values, bias across the control
// range including the non-representable 0.1-style values a FullScan
// produces.
var denseFreqs = []float64{2.0e9, 2.35e9, units.DefaultCarrierHz, 2.47712e9, 2.8e9}
var denseBiases = []float64{0, 0.1, 1.5, 2, 7.3, 8, 14.999, 15, 29.9, 30}

// TestCacheTransparent: every cached query must be bit-identical to the
// uncached evaluation over a dense (f, bias) grid — hits and misses
// alike, for every Surface method that draws on the response cache.
func TestCacheTransparent(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	cached := MustNew(d)
	uncached := MustNew(d)
	for _, vx := range denseBiases {
		for _, vy := range denseBiases[:4] { // full × full is slow; a band suffices
			for _, f := range denseFreqs {
				cached.SetBias(vx, vy)
				uncached.SetBias(vx, vy)
				// Two passes over the cached surface: the first populates
				// (miss path), the second must return the stored bits (hit
				// path). Both must equal the uncached evaluation.
				SetCaching(false)
				wantT := uncached.JonesTransmissive(f)
				wantR := uncached.JonesReflective(f)
				wantFront := uncached.FrontReflection(f)
				wantEff := uncached.Efficiency(AxisX, f)
				wantPhase := uncached.DifferentialPhase(f)
				SetCaching(true)
				for pass := 0; pass < 2; pass++ {
					if got := cached.JonesTransmissive(f); !sameMat(got, wantT) {
						t.Fatalf("JonesTransmissive(%g) pass %d at (%g,%g): cached %v != uncached %v", f, pass, vx, vy, got, wantT)
					}
					if got := cached.JonesReflective(f); !sameMat(got, wantR) {
						t.Fatalf("JonesReflective(%g) pass %d at (%g,%g): cached != uncached", f, pass, vx, vy)
					}
					if got := cached.FrontReflection(f); !sameC(got, wantFront) {
						t.Fatalf("FrontReflection(%g) pass %d at (%g,%g): cached %v != uncached %v", f, pass, vx, vy, got, wantFront)
					}
					if got := cached.Efficiency(AxisX, f); math.Float64bits(got) != math.Float64bits(wantEff) {
						t.Fatalf("Efficiency(%g) pass %d at (%g,%g): cached %v != uncached %v", f, pass, vx, vy, got, wantEff)
					}
					if got := cached.DifferentialPhase(f); math.Float64bits(got) != math.Float64bits(wantPhase) {
						t.Fatalf("DifferentialPhase(%g) pass %d at (%g,%g): cached %v != uncached %v", f, pass, vx, vy, got, wantPhase)
					}
				}
			}
		}
	}
}

// TestCacheHitMissAccounting pins the counter arithmetic: one
// JonesTransmissive costs two axis evaluations plus one QWP evaluation,
// so a surface backed by a fresh design table misses 3 times and a
// repeat hits 3 times. Tables are design-keyed and process-wide, so the
// test resets the registry first — otherwise any earlier test using the
// same design would have pre-warmed the entries.
func TestCacheHitMissAccounting(t *testing.T) {
	ResetResponseTables()
	s := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	s.SetBias(8, 8)
	f := units.DefaultCarrierHz
	if st := s.CacheStats(); st.Lookups() != 0 {
		t.Fatalf("fresh surface has %d lookups", st.Lookups())
	}
	s.JonesTransmissive(f)
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("first evaluation: %+v, want 0 hits / 3 misses", st)
	}
	s.JonesTransmissive(f)
	if st := s.CacheStats(); st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("repeat evaluation: %+v, want 3 hits / 3 misses", st)
	}
	// FrontReflection reuses the axis entries the Jones call populated.
	s.FrontReflection(f)
	if st := s.CacheStats(); st.Hits != 5 || st.Misses != 3 {
		t.Fatalf("front reflection: %+v, want 5 hits / 3 misses", st)
	}
	// A new bias point misses on the changed axes but still hits the QWP.
	s.SetBias(8, 9)
	s.JonesTransmissive(f)
	if st := s.CacheStats(); st.Hits != 7 || st.Misses != 4 {
		t.Fatalf("new Vy: %+v, want 7 hits / 4 misses (X axis + QWP hit, Y axis miss)", st)
	}
	if hr := s.CacheStats().HitRate(); hr <= 0.5 || hr >= 1 {
		t.Errorf("hit rate = %v, want in (0.5, 1)", hr)
	}
}

// TestCacheDisabledCountsNothing: with caching off the counters must not
// advance (the evaluation bypasses the cache entirely).
func TestCacheDisabledCountsNothing(t *testing.T) {
	SetCaching(false)
	defer SetCaching(true)
	if CachingEnabled() {
		t.Fatal("SetCaching(false) did not take")
	}
	s := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	s.SetBias(8, 8)
	s.JonesTransmissive(units.DefaultCarrierHz)
	s.JonesReflective(units.DefaultCarrierHz)
	if st := s.CacheStats(); st.Lookups() != 0 {
		t.Fatalf("disabled cache recorded %d lookups", st.Lookups())
	}
}

// TestGlobalCacheStats: the process-wide counters aggregate across
// surfaces and reset cleanly. Two surfaces of the same design share one
// response table, so the second surface's identical query hits the
// entries the first one computed — the global view must show exactly
// one computation of the shared physics, not two.
func TestGlobalCacheStats(t *testing.T) {
	ResetResponseTables()
	ResetGlobalCacheStats()
	a := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	b := MustNew(OptimizedFR4Design(units.DefaultCarrierHz))
	a.SetBias(8, 8)
	b.SetBias(8, 8)
	a.JonesTransmissive(units.DefaultCarrierHz)
	b.JonesTransmissive(units.DefaultCarrierHz)
	g := GlobalCacheStats()
	if g.Misses != 3 || g.Hits != 3 {
		t.Fatalf("global stats = %+v, want 3 misses (first surface computes) + 3 hits (same-design sibling reuses)", g)
	}
	if st := a.CacheStats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("first surface = %+v, want 0 hits / 3 misses", st)
	}
	if st := b.CacheStats(); st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("sibling surface = %+v, want 3 hits / 0 misses (entries shared by design)", st)
	}
	a.JonesTransmissive(units.DefaultCarrierHz)
	now := GlobalCacheStats()
	if now.Hits != 6 {
		t.Fatalf("global stats = %+v, want 6 hits", now)
	}
	if d := now.Sub(g); d.Hits != 3 || d.Misses != 0 {
		t.Errorf("windowed delta = %+v, want 3 hits / 0 misses", d)
	}
	ResetGlobalCacheStats()
	if g := GlobalCacheStats(); g.Lookups() != 0 {
		t.Errorf("reset left %+v", g)
	}
}

// TestCacheStatsZeroValue covers the accessors' empty edges.
func TestCacheStatsZeroValue(t *testing.T) {
	var st CacheStats
	if st.HitRate() != 0 || st.Lookups() != 0 {
		t.Errorf("zero stats: rate %v, lookups %d", st.HitRate(), st.Lookups())
	}
}

// TestCacheConcurrentStress shares ONE cached surface across many
// goroutines hammering the same small (f) set with a fixed bias — the
// read-mostly regime the engine's workers would produce — and checks
// every result against the serially precomputed reference. Run under
// -race this certifies the cache's synchronization.
func TestCacheConcurrentStress(t *testing.T) {
	ResetResponseTables()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	shared := MustNew(d)
	shared.SetBias(2, 15)

	// Reference values from an uncached evaluation (global switch off,
	// before any goroutines exist).
	SetCaching(false)
	ref := MustNew(d)
	ref.SetBias(2, 15)
	type want struct {
		t, r  mat2.Mat
		front complex128
		eff   float64
	}
	wants := make([]want, len(denseFreqs))
	for i, f := range denseFreqs {
		wants[i] = want{
			t:     ref.JonesTransmissive(f),
			r:     ref.JonesReflective(f),
			front: ref.FrontReflection(f),
			eff:   ref.Efficiency(AxisY, f),
		}
	}
	SetCaching(true)

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				fi := (i + w) % len(denseFreqs)
				f := denseFreqs[fi]
				if got := shared.JonesTransmissive(f); !sameMat(got, wants[fi].t) {
					errs <- "JonesTransmissive diverged under concurrency"
					return
				}
				if got := shared.JonesReflective(f); !sameMat(got, wants[fi].r) {
					errs <- "JonesReflective diverged under concurrency"
					return
				}
				if got := shared.FrontReflection(f); !sameC(got, wants[fi].front) {
					errs <- "FrontReflection diverged under concurrency"
					return
				}
				if got := shared.Efficiency(AxisY, f); math.Float64bits(got) != math.Float64bits(wants[fi].eff) {
					errs <- "Efficiency diverged under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Everything after the first computation per (axis/QWP, f) key must
	// hit; concurrent first touches may duplicate a miss per worker, but
	// never more.
	st := shared.CacheStats()
	if st.Hits == 0 {
		t.Error("stress run recorded no hits")
	}
	if limit := uint64(3 * len(denseFreqs) * workers); st.Misses > limit {
		t.Errorf("miss count %d exceeds the %d concurrent-first-touch bound", st.Misses, limit)
	}
}
