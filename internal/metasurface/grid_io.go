package metasurface

// Persisted LUT grids. A dense interpolation grid costs 2·nv·nf circuit
// evaluations per design (lut.go) — cheap once, wasteful once per
// process: llama-bench, llama-serve and every fleet worker used to
// rebuild identical grids on their first approximate-mode lookup. The
// export/import forms here mirror table.go's: pure string rows with
// lossless float columns, so internal/store can persist grids under
// DIR/grids/ without importing this package, and a warm-started process
// installs the grid without a single evaluation (GlobalLUTGridBuilds
// stays at zero). Grid nodes are exact outputs of the same pure
// axisEval the local build runs, and every float round-trips bit-exact,
// so an imported grid interpolates bit-identically to a locally built
// one.

import (
	"fmt"
	"sort"
	"strconv"
)

// Serialized grid arities. A sample row is one axisResponse —
//
//	[s11re, s11im, s12re, s12im, s21re, s21im, s22re, s22im, z0, gammaRe, gammaIm]
//
// — and the meta row is
//
//	[biasSteps, freqSteps, freqSpan, vMin, vStep, fMin, fStep]
//
// with integers in base 10 and floats formatted with
// strconv.FormatFloat(v, 'g', -1, 64), the shortest string that parses
// back to the identical bits (the store's lossless convention).
const (
	gridSampleCols = 11
	gridMetaCols   = 7
)

// GridExport is the store-friendly serialization of one design's LUT
// grid: pure string rows, so internal/store can persist it without
// importing this package. Produced by ExportLUTGrids, consumed by
// ImportLUTGrid.
type GridExport struct {
	// Fingerprint is the DesignFingerprint the grid belongs to.
	Fingerprint string
	// Meta is the grid geometry row (gridMetaCols columns; see above).
	Meta []string
	// Samples holds 2·nv·nf rows of gridSampleCols columns: the full
	// X-axis block first, then the Y-axis block, bias-major within each
	// (the exact layout of lutGrid.samples).
	Samples [][]string
}

// Entries returns the sample count of the export.
func (g GridExport) Entries() int { return len(g.Samples) }

// ExportLUTGrids snapshots every built LUT grid in the process, sorted
// by design fingerprint. Tables whose grid was never built (exact-mode
// processes) are skipped — there is nothing to persist.
func ExportLUTGrids() []GridExport {
	tablesMu.Lock()
	list := make([]*responseTable, 0, len(tables))
	for _, t := range tables {
		list = append(list, t)
	}
	tablesMu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].fingerprint < list[j].fingerprint })

	var out []GridExport
	for _, t := range list {
		if g := t.lut.Load(); g != nil {
			out = append(out, exportGrid(t.fingerprint, g))
		}
	}
	return out
}

// exportGrid serializes one grid.
func exportGrid(fp string, g *lutGrid) GridExport {
	ex := GridExport{
		Fingerprint: fp,
		Meta: []string{
			strconv.Itoa(g.cfg.BiasSteps), strconv.Itoa(g.cfg.FreqSteps),
			fmtFloat(g.cfg.FreqSpan),
			fmtFloat(g.vMin), fmtFloat(g.vStep), fmtFloat(g.fMin), fmtFloat(g.fStep),
		},
		Samples: make([][]string, 0, 2*g.nv*g.nf),
	}
	for _, axis := range []Axis{AxisX, AxisY} {
		for _, r := range g.samples[axis] {
			row := make([]string, 0, gridSampleCols)
			row = fmtSParams(row, r.s)
			row = fmtComplex(row, r.shortGamma)
			ex.Samples = append(ex.Samples, row)
		}
	}
	return ex
}

// ImportLUTGrid validates a previously exported grid in full and — only
// if every row parses — installs it on the design's table, so a corrupt
// record never half-installs a grid (callers treat an error as "warn
// and rebuild on demand"). It returns the number of samples installed.
// Imports never bump GlobalLUTGridBuilds: an imported grid is the build
// the process did NOT pay for. A grid whose geometry does not match the
// active LUT config is still installed verbatim; lutAxisAt rebuilds on
// first use if the configured resolution differs.
func ImportLUTGrid(ex GridExport) (int, error) {
	if ex.Fingerprint == "" {
		return 0, fmt.Errorf("metasurface: grid import: empty fingerprint")
	}
	if len(ex.Meta) != gridMetaCols {
		return 0, fmt.Errorf("metasurface: grid import: meta has %d columns, want %d", len(ex.Meta), gridMetaCols)
	}
	biasSteps, err := strconv.Atoi(ex.Meta[0])
	if err != nil {
		return 0, fmt.Errorf("metasurface: grid import: bias steps: %w", err)
	}
	freqSteps, err := strconv.Atoi(ex.Meta[1])
	if err != nil {
		return 0, fmt.Errorf("metasurface: grid import: freq steps: %w", err)
	}
	if biasSteps < 2 || freqSteps < 2 {
		return 0, fmt.Errorf("metasurface: grid import: degenerate grid %d×%d", biasSteps, freqSteps)
	}
	mr := rowReader{row: ex.Meta, i: 2}
	freqSpan := mr.next()
	vMin, vStep := mr.next(), mr.next()
	fMin, fStep := mr.next(), mr.next()
	if mr.err != nil {
		return 0, fmt.Errorf("metasurface: grid import: meta: %w", mr.err)
	}
	if !(vStep > 0) || !(fStep > 0) {
		return 0, fmt.Errorf("metasurface: grid import: non-positive grid step (%s, %s)",
			fmtFloat(vStep), fmtFloat(fStep))
	}
	perAxis := biasSteps * freqSteps
	if len(ex.Samples) != 2*perAxis {
		return 0, fmt.Errorf("metasurface: grid import: %d sample rows, want %d", len(ex.Samples), 2*perAxis)
	}
	g := &lutGrid{
		cfg:  LUTConfig{BiasSteps: biasSteps, FreqSteps: freqSteps, FreqSpan: freqSpan},
		vMin: vMin, vStep: vStep,
		fMin: fMin, fStep: fStep,
		nv: biasSteps, nf: freqSteps,
	}
	for _, axis := range []Axis{AxisX, AxisY} {
		s := make([]axisResponse, perAxis)
		for i := range s {
			row := ex.Samples[int(axis)*perAxis+i]
			if len(row) != gridSampleCols {
				return 0, fmt.Errorf("metasurface: grid import: sample row %d has %d columns, want %d",
					int(axis)*perAxis+i, len(row), gridSampleCols)
			}
			rr := rowReader{row: row}
			s[i] = axisResponse{s: rr.sparams(), shortGamma: rr.complexVal()}
			if rr.err != nil {
				return 0, fmt.Errorf("metasurface: grid import: sample row %d: %w", int(axis)*perAxis+i, rr.err)
			}
		}
		g.samples[axis] = s
	}
	tableFor(ex.Fingerprint).lut.Store(g)
	return len(ex.Samples), nil
}
