package metasurface

// Contracts of grid persistence: an exported grid round-trips through
// its pure-string form bit-exactly, a corrupt export is rejected whole
// (never half-installed), the parallel build is bit-identical for any
// worker count, and a warm-started process answers in-grid lookups with
// ZERO grid builds — the observable the store integration exists for.

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

// buildTestGrid builds a small grid for the test design and installs it
// on the design's table, returning the design. Small (5×4) so corrupt-
// record tests can enumerate rows cheaply.
func buildTestGrid(t *testing.T) Design {
	t.Helper()
	ResetResponseTables()
	ResetGlobalLUTStats()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	g := buildLUTGrid(d, LUTConfig{BiasSteps: 5, FreqSteps: 4, FreqSpan: 0.25})
	tableFor(DesignFingerprint(d)).lut.Store(g)
	return d
}

// TestGridExportImportRoundTrip: export → fresh registry → import →
// re-export must reproduce the export verbatim, and the imported grid
// must interpolate bit-identically to the locally built one.
func TestGridExportImportRoundTrip(t *testing.T) {
	d := buildTestGrid(t)
	built := tableFor(DesignFingerprint(d)).lut.Load()
	exports := ExportLUTGrids()
	if len(exports) != 1 {
		t.Fatalf("ExportLUTGrids returned %d grids, want 1", len(exports))
	}
	ex := exports[0]
	if ex.Fingerprint != DesignFingerprint(d) {
		t.Fatalf("export labelled %q", ex.Fingerprint)
	}
	if want := 2 * 5 * 4; ex.Entries() != want {
		t.Fatalf("export holds %d samples, want %d", ex.Entries(), want)
	}

	ResetResponseTables()
	n, err := ImportLUTGrid(ex)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if n != ex.Entries() {
		t.Fatalf("import installed %d samples, want %d", n, ex.Entries())
	}
	imported := tableFor(DesignFingerprint(d)).lut.Load()
	if imported == nil {
		t.Fatal("import did not install a grid")
	}
	if !reflect.DeepEqual(built.samples, imported.samples) {
		t.Fatal("imported samples are not bit-identical to the built grid")
	}
	if again := ExportLUTGrids(); !reflect.DeepEqual(again, exports) {
		t.Fatal("re-export of the imported grid differs from the original export")
	}
	// Interpolated answers from both grids agree bit-for-bit at an
	// off-lattice point.
	f := d.CenterHz * 1.0173
	v := 7.31
	a, okA := built.at(AxisY, f, v)
	b, okB := imported.at(AxisY, f, v)
	if !okA || !okB || !sameC(a.s.S21, b.s.S21) || !sameC(a.shortGamma, b.shortGamma) {
		t.Fatal("imported grid interpolates differently from the built grid")
	}
}

// TestGridImportRejectsCorrupt: every class of damage — bad arity, bad
// numbers, degenerate geometry, missing rows — must reject the import
// as a whole, leaving the table's grid absent.
func TestGridImportRejectsCorrupt(t *testing.T) {
	d := buildTestGrid(t)
	good := ExportLUTGrids()[0]

	damage := map[string]func(GridExport) GridExport{
		"empty fingerprint": func(ex GridExport) GridExport { ex.Fingerprint = ""; return ex },
		"meta arity": func(ex GridExport) GridExport {
			ex.Meta = ex.Meta[:len(ex.Meta)-1]
			return ex
		},
		"unparseable bias steps": func(ex GridExport) GridExport {
			ex.Meta = append([]string(nil), ex.Meta...)
			ex.Meta[0] = "five"
			return ex
		},
		"degenerate grid": func(ex GridExport) GridExport {
			ex.Meta = append([]string(nil), ex.Meta...)
			ex.Meta[0] = "1"
			return ex
		},
		"non-positive step": func(ex GridExport) GridExport {
			ex.Meta = append([]string(nil), ex.Meta...)
			ex.Meta[4] = "0"
			return ex
		},
		"missing sample rows": func(ex GridExport) GridExport {
			ex.Samples = ex.Samples[:len(ex.Samples)-1]
			return ex
		},
		"sample arity": func(ex GridExport) GridExport {
			rows := append([][]string(nil), ex.Samples...)
			rows[3] = rows[3][:5]
			ex.Samples = rows
			return ex
		},
		"unparseable sample": func(ex GridExport) GridExport {
			rows := append([][]string(nil), ex.Samples...)
			row := append([]string(nil), rows[7]...)
			row[0] = "NaN-ish"
			rows[7] = row
			ex.Samples = rows
			return ex
		},
	}
	for name, corrupt := range damage {
		ResetResponseTables()
		if _, err := ImportLUTGrid(corrupt(good)); err == nil {
			t.Errorf("%s: corrupt export imported without error", name)
		}
		if g := tableFor(DesignFingerprint(d)).lut.Load(); g != nil {
			t.Errorf("%s: rejected import still installed a grid", name)
		}
	}
	ResetResponseTables()
}

// TestGridBuildParallelDeterministic: the striped parallel build must be
// bit-identical to the single-worker build — the worker count is an
// execution detail, never an input to the physics.
func TestGridBuildParallelDeterministic(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	cfg := LUTConfig{BiasSteps: 9, FreqSteps: 5, FreqSpan: 0.25}
	parallel := buildLUTGrid(d, cfg)
	prev := runtime.GOMAXPROCS(1)
	serial := buildLUTGrid(d, cfg)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(parallel.samples, serial.samples) {
		t.Fatal("parallel grid build is not bit-identical to the single-worker build")
	}
	ResetGlobalLUTStats()
}

// TestGridWarmStartZeroRebuild is the acceptance observable: a process
// warm-started from a persisted grid record answers in-grid lookups by
// interpolation with GlobalLUTGridBuilds still at zero — the dense
// rebuild was the cost being eliminated.
func TestGridWarmStartZeroRebuild(t *testing.T) {
	// "First process": build at the active resolution and export.
	ResetResponseTables()
	ResetGlobalLUTStats()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	SetLUTConfig(LUTConfig{}) // defaults
	SetLUT(true)
	defer func() {
		SetLUT(false)
		ResetGlobalLUTStats()
		ResetResponseTables()
	}()
	first := MustNew(d)
	first.SetBias(8, 8)
	want := first.JonesTransmissive(units.DefaultCarrierHz)
	if GlobalLUTGridBuilds() != 1 {
		t.Fatalf("first process built %d grids, want 1", GlobalLUTGridBuilds())
	}
	ex := ExportLUTGrids()

	// "Second process": fresh registry, import, same lookup.
	ResetResponseTables()
	ResetGlobalLUTStats()
	for _, g := range ex {
		if _, err := ImportLUTGrid(g); err != nil {
			t.Fatalf("import: %v", err)
		}
	}
	warm := MustNew(d)
	warm.SetBias(8, 8)
	lutBefore := GlobalLUTStats()
	got := warm.JonesTransmissive(units.DefaultCarrierHz)
	if !sameMat(got, want) {
		t.Fatal("warm-started LUT answer differs from the building process's answer")
	}
	if GlobalLUTGridBuilds() != 0 {
		t.Fatalf("warm-started process built %d grids, want 0 (that is the point of persisting them)", GlobalLUTGridBuilds())
	}
	if d := GlobalLUTStats().Sub(lutBefore); d.Interpolated == 0 {
		t.Fatal("warm-started lookup did not interpolate from the imported grid")
	}
}
