package metasurface

// A/B benchmark of the contention-free read path. The snapshot table
// answers warm lookups with one atomic load, one map read and two
// sharded counter adds — no lock, no allocation — while the mutexTable
// replica below reproduces the RWMutex+shared-counter design it
// replaced. CI runs both with -cpu 1,8 and gates on the snapshot path
// allocating nothing and clearing ≥2× the mutex throughput at 8
// goroutines (BENCH_10.json): an RLock still writes the lock word, so
// its cache line bounces between every reading core exactly like a
// shared counter would.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

// benchAxisKeys is the hot working set both tables are measured on:
// enough keys to defeat trivial branch prediction, few enough to stay
// cache-resident, the regime of a warm bias-plane scan.
func benchAxisKeys() []axisPoint {
	pts := make([]axisPoint, 64)
	for i := range pts {
		axis := AxisX
		if i%2 == 1 {
			axis = AxisY
		}
		pts[i] = axisPoint{axis: axis, f: 2.0e9 + float64(i)*1.1e7, v: float64(i%31) + 0.25}
	}
	return pts
}

// mutexTable is a benchmark-only replica of the RWMutex response table
// the snapshot design replaced: one reader-writer lock around a plain
// map, with a single shared counter pair — the baseline the ≥2×
// parallel-throughput gate in CI measures against.
type mutexTable struct {
	mu   sync.RWMutex
	axis map[axisKey]axisResponse

	hits, misses atomic.Uint64
}

func newMutexTable() *mutexTable {
	return &mutexTable{axis: make(map[axisKey]axisResponse)}
}

func (t *mutexTable) axisAt(d Design, axis Axis, f, v float64) axisResponse {
	key := axisKey{axis: axis, f: math.Float64bits(f), v: math.Float64bits(v)}
	t.mu.RLock()
	r, ok := t.axis[key]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return r
	}
	t.mu.Lock()
	if r, ok = t.axis[key]; !ok {
		r = d.axisEval(axis, f, v)
		t.axis[key] = r
	}
	t.mu.Unlock()
	t.misses.Add(1)
	return r
}

// BenchmarkTableParallelSnapshot measures the steady-state hit path of
// the snapshot table under parallel readers (run with -cpu 1,8). The
// working set is prewarmed and flushed into a published snapshot, so
// every timed lookup is the lock-free fast path; the 0 allocs/op this
// reports is a CI gate.
func BenchmarkTableParallelSnapshot(b *testing.B) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	tbl := newResponseTable("bench-snapshot")
	pts := benchAxisKeys()
	for _, p := range pts {
		tbl.axisAt(d, p.axis, p.f, p.v, 0)
	}
	tbl.axis.flush()
	var seq atomic.Uint32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		shard := seq.Add(1)
		i := int(shard)
		for pb.Next() {
			p := pts[i%len(pts)]
			i++
			r, _ := tbl.axisAt(d, p.axis, p.f, p.v, shard)
			if r.s.Z0 == 0 {
				b.Fatal("degenerate response")
			}
		}
	})
}

// BenchmarkTableParallelMutex is the same workload against the RWMutex
// replica — the denominator of the CI speedup gate.
func BenchmarkTableParallelMutex(b *testing.B) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	tbl := newMutexTable()
	pts := benchAxisKeys()
	for _, p := range pts {
		tbl.axisAt(d, p.axis, p.f, p.v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			p := pts[i%len(pts)]
			i++
			r := tbl.axisAt(d, p.axis, p.f, p.v)
			if r.s.Z0 == 0 {
				b.Fatal("degenerate response")
			}
		}
	})
}

// BenchmarkTableBatchAxis measures the grouped batch resolution of a
// whole warm axis (the per-row unit of JonesBatch) against the same
// table, for comparison with 64 scalar lookups.
func BenchmarkTableBatchAxis(b *testing.B) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	tbl := newResponseTable("bench-batch")
	pts := benchAxisKeys()
	out := make([]axisResponse, len(pts))
	tbl.axisBatch(d, pts, out, 0)
	tbl.axis.flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.axisBatch(d, pts, out, 0)
	}
	if out[0].s.Z0 == 0 {
		b.Fatal("degenerate response")
	}
}
