package metasurface

// The approximate LUT mode: instead of memoizing exact operating
// points, precompute each design's per-axis response on a dense
// (bias, frequency) grid once and answer every in-range lookup by
// bilinear interpolation — the technique behind precomputed
// capacitance→phase tables in metasurface control firmware. This mode
// is explicitly opt-in (SetLUT / llama-bench -lut) and explicitly
// approximate: interpolated responses are NOT bit-identical to the
// exact path, so LUT mode sits outside determinism invariant #10 and
// its lookups are counted separately (GlobalLUTStats). Out-of-grid
// operating points (and NaN inputs) fall back to the exact path, so
// accuracy degrades only inside the advertised, tested error bound.
// The QWP evaluation is bias-independent and already one exact
// computation per frequency, so it always stays exact.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/llama-surface/llama/internal/twoport"
)

// LUTConfig sets the resolution of the precomputed response grid.
type LUTConfig struct {
	// BiasSteps is the number of grid samples across the design's
	// [MinBiasV, MaxBiasV] control range. Minimum 2.
	BiasSteps int
	// FreqSteps is the number of grid samples across the frequency
	// window. Minimum 2.
	FreqSteps int
	// FreqSpan is the fractional half-width of the frequency window
	// around the design center: the grid covers CenterHz·(1±FreqSpan).
	FreqSpan float64
}

// DefaultLUTConfig returns the grid used when none is configured:
// 121 bias steps (0.25 V pitch over a 30 V range) × 33 frequency steps
// over ±25% of the design center — dense enough for the error bound
// asserted in lut_test.go, cheap enough (2·121·33 evaluations per
// design) to build in milliseconds.
func DefaultLUTConfig() LUTConfig {
	return LUTConfig{BiasSteps: 121, FreqSteps: 33, FreqSpan: 0.25}
}

// normalize clamps a config to usable values; zero fields take defaults.
func (c LUTConfig) normalize() LUTConfig {
	def := DefaultLUTConfig()
	if c.BiasSteps <= 0 {
		c.BiasSteps = def.BiasSteps
	}
	if c.FreqSteps <= 0 {
		c.FreqSteps = def.FreqSteps
	}
	if c.FreqSpan <= 0 {
		c.FreqSpan = def.FreqSpan
	}
	if c.BiasSteps < 2 {
		c.BiasSteps = 2
	}
	if c.FreqSteps < 2 {
		c.FreqSteps = 2
	}
	return c
}

// LUTStats counts approximate-mode lookups: Interpolated answers came
// from the grid, Fallbacks were out-of-range points answered by the
// exact path. Counters are monotone; window with Sub.
type LUTStats struct {
	Interpolated, Fallbacks uint64
}

// Sub returns the counter deltas s − earlier.
func (s LUTStats) Sub(earlier LUTStats) LUTStats {
	return LUTStats{
		Interpolated: s.Interpolated - earlier.Interpolated,
		Fallbacks:    s.Fallbacks - earlier.Fallbacks,
	}
}

// lutOn is the package-wide approximate-mode switch; zero value = off.
var lutOn atomic.Bool

// lutConfig holds the active grid config; nil means DefaultLUTConfig.
var lutConfig atomic.Pointer[LUTConfig]

// Process-wide approximate-mode counters.
var globalLUTInterp, globalLUTFallback atomic.Uint64

// globalLUTBuilds counts dense-grid constructions (buildLUTGrid runs).
// A process warm-started from persisted grid records (grid_io.go +
// internal/store) answers every in-range lookup without this counter
// ever moving — the observable form of "zero grid rebuild cost".
var globalLUTBuilds atomic.Uint64

// GlobalLUTGridBuilds returns the number of dense LUT grids this
// process has built from scratch. Grids installed by ImportLUTGrid do
// not count — that is the point of persisting them.
func GlobalLUTGridBuilds() uint64 { return globalLUTBuilds.Load() }

// SetLUT switches the approximate interpolated-lookup mode on or off
// process-wide (the llama-bench -lut flag). Off by default: LUT mode
// trades bit-exactness for speed and must be an explicit choice.
func SetLUT(on bool) { lutOn.Store(on) }

// LUTEnabled reports whether approximate LUT mode is on.
func LUTEnabled() bool { return lutOn.Load() }

// SetLUTConfig sets the grid resolution for subsequently built LUTs.
// Zero or negative fields take their defaults. Already-built grids with
// a different config are rebuilt on next use.
func SetLUTConfig(cfg LUTConfig) {
	cfg = cfg.normalize()
	lutConfig.Store(&cfg)
}

// ActiveLUTConfig returns the grid config new LUTs will be built with.
func ActiveLUTConfig() LUTConfig {
	if c := lutConfig.Load(); c != nil {
		return *c
	}
	return DefaultLUTConfig()
}

// GlobalLUTStats returns the process-wide approximate-mode counters.
func GlobalLUTStats() LUTStats {
	return LUTStats{Interpolated: globalLUTInterp.Load(), Fallbacks: globalLUTFallback.Load()}
}

// ResetGlobalLUTStats zeroes the approximate-mode counters, including
// the grid-build counter (test isolation).
func ResetGlobalLUTStats() {
	globalLUTInterp.Store(0)
	globalLUTFallback.Store(0)
	globalLUTBuilds.Store(0)
}

// lutGrid is one design's precomputed response grid: per-axis samples
// on a regular (bias, frequency) lattice, flattened row-major as
// [biasIndex*nf + freqIndex]. Built once, then read lock-free through
// an atomic pointer — the interpolating lookup performs no allocation
// and takes no lock.
type lutGrid struct {
	cfg         LUTConfig
	vMin, vStep float64
	fMin, fStep float64
	nv, nf      int
	samples     [2][]axisResponse
}

// buildLUTGrid evaluates the full grid for design d. The samples come
// from the same axisEval the exact path runs (including the X-axis
// bias-offset handling), so grid nodes are exact and interpolation
// error appears only between nodes. Construction is parallel: bias rows
// are striped across GOMAXPROCS goroutines, each writing disjoint
// sample slots whose values depend only on (design, axis, f, v) — the
// grid is bit-identical for any worker count, including one.
func buildLUTGrid(d Design, cfg LUTConfig) *lutGrid {
	globalLUTBuilds.Add(1)
	cfg = cfg.normalize()
	g := &lutGrid{
		cfg:  cfg,
		nv:   cfg.BiasSteps,
		nf:   cfg.FreqSteps,
		vMin: d.MinBiasV,
		fMin: d.CenterHz * (1 - cfg.FreqSpan),
	}
	fMax := d.CenterHz * (1 + cfg.FreqSpan)
	g.vStep = (d.MaxBiasV - d.MinBiasV) / float64(g.nv-1)
	g.fStep = (fMax - g.fMin) / float64(g.nf-1)
	g.samples[AxisX] = make([]axisResponse, g.nv*g.nf)
	g.samples[AxisY] = make([]axisResponse, g.nv*g.nf)
	rows := 2 * g.nv // one unit of work: one bias row of one axis
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for row := w; row < rows; row += workers {
				axis := AxisX
				if row >= g.nv {
					axis = AxisY
				}
				i := row % g.nv
				v := g.vMin + float64(i)*g.vStep
				s := g.samples[axis]
				for j := 0; j < g.nf; j++ {
					f := g.fMin + float64(j)*g.fStep
					s[i*g.nf+j] = d.axisEval(axis, f, v)
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}

// lerpC interpolates one complex component.
func lerpC(a, b complex128, t float64) complex128 {
	return a + (b-a)*complex(t, 0)
}

// sparamsLerp interpolates each scattering component; Z0 is the shared
// reference impedance, identical at every node, and passes through.
func sparamsLerp(a, b twoport.SParams, t float64) twoport.SParams {
	return twoport.SParams{
		S11: lerpC(a.S11, b.S11, t),
		S12: lerpC(a.S12, b.S12, t),
		S21: lerpC(a.S21, b.S21, t),
		S22: lerpC(a.S22, b.S22, t),
		Z0:  a.Z0,
	}
}

// bilerpAxis bilinearly blends four grid nodes, component-wise: first
// along frequency (t = tf) at both bias rows, then along bias (t = tv).
func bilerpAxis(r00, r01, r10, r11 axisResponse, tv, tf float64) axisResponse {
	blend := func(a, b axisResponse, t float64) axisResponse {
		return axisResponse{
			s:          sparamsLerp(a.s, b.s, t),
			shortGamma: lerpC(a.shortGamma, b.shortGamma, t),
		}
	}
	lo := blend(r00, r01, tf)
	hi := blend(r10, r11, tf)
	return blend(lo, hi, tv)
}

// at answers one lookup from the grid, or reports ok=false for an
// operating point outside it (including NaN coordinates, which fail
// every range comparison).
func (g *lutGrid) at(axis Axis, f, v float64) (axisResponse, bool) {
	u := (v - g.vMin) / g.vStep
	w := (f - g.fMin) / g.fStep
	if !(u >= 0 && u <= float64(g.nv-1) && w >= 0 && w <= float64(g.nf-1)) {
		return axisResponse{}, false
	}
	i, j := int(u), int(w)
	if i > g.nv-2 {
		i = g.nv - 2
	}
	if j > g.nf-2 {
		j = g.nf - 2
	}
	s := g.samples[axis]
	base := i*g.nf + j
	return bilerpAxis(s[base], s[base+1], s[base+g.nf], s[base+g.nf+1],
		u-float64(i), w-float64(j)), true
}

// lutMu serializes grid builds per table (a field would do, but the
// build is rare and cold; one package lock keeps responseTable lean).
var lutMu sync.Mutex

// lutAxisAt answers an axis lookup in approximate mode: interpolate
// when the operating point is inside the grid (building the grid on
// first use, or when the configured resolution changed), otherwise
// report ok=false so the caller falls back to the exact path.
func (t *responseTable) lutAxisAt(d Design, axis Axis, f, v float64) (axisResponse, bool) {
	cfg := ActiveLUTConfig()
	g := t.lut.Load()
	if g == nil || g.cfg != cfg {
		lutMu.Lock()
		if g = t.lut.Load(); g == nil || g.cfg != cfg {
			g = buildLUTGrid(d, cfg)
			t.lut.Store(g)
		}
		lutMu.Unlock()
	}
	r, ok := g.at(axis, f, v)
	if ok {
		globalLUTInterp.Add(1)
	} else {
		globalLUTFallback.Add(1)
	}
	return r, ok
}
