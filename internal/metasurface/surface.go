package metasurface

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync/atomic"

	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/twoport"
	"github.com/llama-surface/llama/internal/units"
)

// Surface is a buildable, biasable instance of a Design. It is immutable
// except for the two bias voltages, making it safe to share read-only
// across goroutines when the bias is externally synchronized (the
// simulator's power-supply model owns bias updates). Its response cache
// is internally synchronized, so concurrent read-only queries (Jones*,
// Efficiency, FrontReflection, …) are race-free.
type Surface struct {
	design Design

	// biasX, biasY are the current reverse-bias voltages in volts.
	biasX, biasY float64

	// table is the design's shared response table, resolved once from
	// the fingerprint-keyed registry (table.go): every Surface of the
	// same design shares one table, so entries computed by one are hits
	// for all. Results are bit-identical with caching disabled
	// (SetCaching).
	table *responseTable

	// hits, misses count this surface's own lookups against the shared
	// table, so per-surface attribution survives sharing: the sum over
	// all surfaces of a design equals the design table's counters.
	hits, misses atomic.Uint64

	// shard is this surface's slot in the sharded table/global counters
	// (cache.go), dealt round-robin at construction so concurrently hot
	// surfaces never bounce one counter cache line between cores.
	shard uint32
}

// New builds a Surface from a validated design.
func New(d Design) (*Surface, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &Surface{
		design: d,
		biasX:  d.MinBiasV,
		biasY:  d.MinBiasV,
		table:  tableFor(DesignFingerprint(d)),
		shard:  nextStatShard(),
	}, nil
}

// MustNew builds a Surface and panics on an invalid design. Intended for
// the prefab designs in examples and benchmarks.
func MustNew(d Design) *Surface {
	s, err := New(d)
	if err != nil {
		panic(err)
	}
	return s
}

// Design returns the surface's immutable design description.
func (s *Surface) Design() Design { return s.design }

// SetBias sets the X- and Y-axis bias voltages, clamped to the design's
// control range (the physical supply cannot exceed its programmed limits).
func (s *Surface) SetBias(vx, vy float64) {
	s.biasX = units.Clamp(vx, s.design.MinBiasV, s.design.MaxBiasV)
	s.biasY = units.Clamp(vy, s.design.MinBiasV, s.design.MaxBiasV)
}

// Bias returns the current bias voltages (vx, vy).
func (s *Surface) Bias() (vx, vy float64) { return s.biasX, s.biasY }

// String implements fmt.Stringer.
func (s *Surface) String() string {
	return fmt.Sprintf("%s [%d units, bias %.1f/%.1f V]",
		s.design.Name, s.design.Units(), s.biasX, s.biasY)
}

// CacheStats returns the counters of this surface's own lookups against
// its design's shared response table — hits include entries another
// surface of the same design computed. Counters advance only while
// caching is enabled (SetCaching); exact-path lookups only (approximate
// LUT answers are counted by GlobalLUTStats instead).
func (s *Surface) CacheStats() CacheStats {
	return CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load()}
}

// TableStats returns the counters of the design-wide shared table this
// surface resolves against: its own lookups plus every sibling
// surface's. Zero for a zero-value Surface.
func (s *Surface) TableStats() CacheStats {
	if s.table == nil {
		return CacheStats{}
	}
	return s.table.stats()
}

// axisResponse is the complete per-axis physics evaluation: the front-
// referenced S-parameters of the BFS stack (S11 and S21 from a single
// ToS) and the reflection coefficient with the ground-plane short behind
// it (reflective mode). One evaluation serves every Surface query.
type axisResponse struct {
	s          twoport.SParams
	shortGamma complex128
}

// qwpResponse is the bias-independent per-frequency QWP evaluation: the
// per-axis S-parameters of one board and the ±45°-rotated Jones matrices
// built from them (Eq. 8's Q₊₄₅ and Q₋₄₅).
type qwpResponse struct {
	fastS, slowS twoport.SParams
	plus, minus  mat2.Mat
}

// axisEval performs the per-axis evaluation from scratch: build the BFS
// stack once, convert to S-parameters once, and derive the short-circuit
// reflection from the same network. This is the single source of truth
// the cache memoizes — the cached and uncached paths both run exactly
// this function, which is what makes the cache transparent.
func (d Design) axisEval(axis Axis, f, v float64) axisResponse {
	net := d.bfsAxisNetwork(f, axis, v)
	// Short-circuit load for the reflective deployment: Γ_in with Zin of
	// the short-terminated network. Use a tiny but nonzero load to stay
	// off the ABCD singularity.
	zin := net.InputImpedance(complex(1e-6, 0))
	return axisResponse{
		s:          net.ToS(units.Z0FreeSpace),
		shortGamma: twoport.ReflectionCoefficient(zin, complex(units.Z0FreeSpace, 0)),
	}
}

// qwpEval performs the per-frequency QWP evaluation from scratch: one
// fast-axis and one slow-axis line build, then both rotated Jones
// matrices from the shared diagonal. Bias never enters, so the result is
// reusable across an entire bias-plane scan.
func (d Design) qwpEval(f float64) qwpResponse {
	z0 := units.Z0FreeSpace
	fastS := d.qwpAxisLine(f, false).ToS(z0)
	slowS := d.qwpAxisLine(f, true).ToS(z0)
	diag := mat2.Diag(fastS.S21, slowS.S21)
	return qwpResponse{
		fastS: fastS,
		slowS: slowS,
		plus:  jones.Rotated(diag, math.Pi/4),
		minus: jones.Rotated(diag, -math.Pi/4),
	}
}

// axisAt returns the per-axis response: interpolated from the LUT grid
// in approximate mode (in-range points only), otherwise through the
// shared exact table when caching is enabled.
func (s *Surface) axisAt(axis Axis, f, v float64) axisResponse {
	if s.table != nil && LUTEnabled() {
		if r, ok := s.table.lutAxisAt(s.design, axis, f, v); ok {
			return r
		}
		// Out-of-grid operating point: fall through to the exact path.
	}
	if s.table == nil || !CachingEnabled() {
		return s.design.axisEval(axis, f, v)
	}
	r, hit := s.table.axisAt(s.design, axis, f, v, s.shard)
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return r
}

// qwpAt returns the QWP response, through the shared table when caching
// is enabled. The QWP is bias-independent — one exact evaluation per
// frequency — so approximate mode never applies here.
func (s *Surface) qwpAt(f float64) qwpResponse {
	if s.table == nil || !CachingEnabled() {
		return s.design.qwpEval(f)
	}
	r, hit := s.table.qwpAt(s.design, f, s.shard)
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return r
}

// effectiveIndex returns the unloaded effective refractive index of the
// synthetic line sections: fields live partly in substrate, partly in air.
func (d Design) effectiveIndex() float64 {
	return math.Sqrt((d.Substrate.EpsilonR + 1) / 2)
}

// qwpAxisLine returns the ABCD network of one QWP board along one
// principal axis: a slow-wave pattern line of electrical length QWPPath.
// The fast axis is phase-advanced and the slow axis retarded so that the
// differential phase is 90° at the design center; phase scales linearly
// with frequency (transmission-line dispersion).
func (d Design) qwpAxisLine(f float64, slow bool) twoport.ABCD {
	n := d.PatternIndex
	path := d.QWPPath
	k0 := units.WaveNumber(d.CenterHz)
	// Differential index between slow and fast axes such that
	// (nSlow−nFast)·k0·path = π/2 along the pattern trace.
	dn := (math.Pi / 2) / (k0 * path)
	nAxis := n - dn/2
	if slow {
		nAxis = n + dn/2
	}
	if nAxis < 1 {
		nAxis = 1 // synthetic lines cannot be faster than light
	}
	beta := units.WaveNumber(f) * nAxis
	alpha := d.Substrate.DielectricAttenuation(f)*d.QWPConcentration +
		0.3 // conductor + radiation residual, nepers/m
	zc := units.Z0FreeSpace * (1 + d.QWPMismatch)
	if slow {
		zc = units.Z0FreeSpace * (1 - d.QWPMismatch)
	}
	line := twoport.TransmissionLine(complex(zc, 0), complex(alpha, beta), path)
	tank := twoport.ShuntAdmittance(d.qwpTankAdmittance(f))
	return twoport.Cascade(tank, line, tank)
}

// qwpTankAdmittance returns the shunt admittance of the resonant tank
// printed on each QWP face: zero at the design center, susceptance growing
// with fractional detuning at slope QWPSelectivity (normalized to Z0).
// This is the standard parallel-LC form B = Yt·(f/f0 − f0/f).
func (d Design) qwpTankAdmittance(f float64) complex128 {
	if d.QWPSelectivity == 0 {
		return 0
	}
	detune := f/d.CenterHz - d.CenterHz/f
	return complex(0, d.QWPSelectivity/units.Z0FreeSpace*detune)
}

// bfsTankAdmittance returns the shunt admittance of the varactor-loaded
// tank on a BFS face at frequency f and bias v. The tank's capacitive arm
// is the diode itself, so bias moves the resonance: it sits exactly at the
// design center when v = BFSResonanceBias.
func (d Design) bfsTankAdmittance(f, v float64) complex128 {
	if d.BFSSelectivity == 0 {
		return 0
	}
	w := units.AngularFrequency(f)
	w0 := units.AngularFrequency(d.CenterHz)
	cRes := d.Diode.Capacitance(d.BFSResonanceBias)
	// Scale factor κ makes B·Z0 = BFSSelectivity·(C(v)/C(res) − 1) at
	// the center frequency.
	kappa := d.BFSSelectivity / (w0 * cRes * units.Z0FreeSpace)
	ct := kappa * d.Diode.Capacitance(v)
	lt := 1 / (w0 * w0 * kappa * cRes)
	b := w*ct - 1/(w*lt)
	return complex(0, b)
}

// qwpJones returns the Jones matrix of one QWP board rotated by theta,
// computed from the per-axis circuit model.
func (d Design) qwpJones(f, theta float64) mat2.Mat {
	z0 := units.Z0FreeSpace
	fastS := d.qwpAxisLine(f, false).ToS(z0)
	slowS := d.qwpAxisLine(f, true).ToS(z0)
	diag := mat2.Diag(fastS.S21, slowS.S21)
	return jones.Rotated(diag, theta)
}

// loadedLine describes the varactor-loaded synthetic line of one BFS axis
// at a given bias: characteristic impedance drops and phase constant grows
// with loading (distributed-loading relations), and the varactor ESR adds
// shunt-conductance loss.
func (d Design) loadedLine(f, bias float64) (zc complex128, gamma complex128) {
	n := d.PatternIndex
	w := units.AngularFrequency(f)
	cv := d.Diode.Capacitance(bias)
	// Unloaded per-unit-length parameters of a Z0-matched line with
	// index n: L' = Z0·n/c, C' = n/(Z0·c).
	z0 := units.Z0FreeSpace
	cPrime := n / (z0 * units.C)
	loading := cv / (d.LoadPitch * cPrime)
	root := math.Sqrt(1 + loading)
	zcr := z0 / root
	beta := (w * n / units.C) * root
	// Losses: concentrated dielectric + conductor residual + varactor
	// ESR. The ESR appears as a distributed shunt conductance
	// G = (ωCv)²·Rs per load, spaced at the pitch.
	g := (w * cv) * (w * cv) * d.Diode.Rs / d.LoadPitch
	alphaESR := g * zcr / 2
	alpha := d.Substrate.DielectricAttenuation(f)*d.BFSConcentration + 0.5 + alphaESR
	return complex(zcr, 0), complex(alpha, beta)
}

// bfsStack returns the cascaded ABCD network of all BFS layers at the
// literal bias v (no axis offset): one layer build, then the identical
// layers composed as a matrix power — no per-call slice, ⌈log₂n⌉
// multiplies.
func (d Design) bfsStack(f, v float64) twoport.ABCD {
	zc, gamma := d.loadedLine(f, v)
	line := twoport.TransmissionLine(zc, gamma, d.BFSPath)
	tank := twoport.ShuntAdmittance(d.bfsTankAdmittance(f, v))
	layer := twoport.Cascade(tank, line, tank)
	return twoport.CascadeN(layer, d.BFSLayers)
}

// bfsAxisNetwork returns the cascaded ABCD network of all BFS layers along
// one axis at the given bias voltage. The X axis sees the design's bias
// offset (fabrication/assembly error, §3.3).
func (d Design) bfsAxisNetwork(f float64, axis Axis, bias float64) twoport.ABCD {
	if axis == AxisX {
		bias -= d.BiasOffsetX
		if bias < 0 {
			bias = 0
		}
	}
	return d.bfsStack(f, bias)
}

// bfsAxisPhase returns the line-only transmission phase (radians) of one
// BFS axis at frequency f and bias v — the electrical length of the
// loaded line, with no mod-2π ambiguity (excludes face-tank phase).
func (d Design) bfsAxisPhase(f, v float64) float64 {
	_, gamma := d.loadedLine(f, v)
	return imag(gamma) * d.BFSPath * float64(d.BFSLayers)
}

// bfsUnwrappedPhaseDelta returns the full-network transmission phase
// change (radians, sign preserved) of one BFS axis as the bias moves from
// v1 to v2 at frequency f. The bias is stepped in small increments and
// each wrapped phase difference accumulated, which unwraps the total even
// when it exceeds 2π.
func (d Design) bfsUnwrappedPhaseDelta(f, v1, v2 float64) float64 {
	const steps = 64
	phaseAt := func(v float64) float64 {
		// AxisY sees the nominal bias (no offset); build directly through
		// the shared stack evaluator — no per-step layer slice.
		return d.bfsStack(f, v).ToS(units.Z0FreeSpace).TransmissionPhase()
	}
	total := 0.0
	prev := phaseAt(v1)
	for i := 1; i <= steps; i++ {
		v := v1 + (v2-v1)*float64(i)/steps
		cur := phaseAt(v)
		total += units.NormalizeAngle(cur - prev)
		prev = cur
	}
	return total
}

// AxisTransmission returns the complex through-stack transmission
// coefficient of one BFS principal axis at frequency f and bias v,
// referenced to free space.
func (s *Surface) AxisTransmission(axis Axis, f, v float64) complex128 {
	return s.axisAt(axis, f, v).s.S21
}

// jonesTransmissiveFrom assembles Eq. (8)'s Q₊₄₅·B·Q₋₄₅ from resolved
// responses. The scalar and batched paths both assemble through exactly
// this function, which is what makes batched ≡ scalar bit-identity
// (determinism invariant #11) hold by construction rather than by test
// alone.
func jonesTransmissiveFrom(xr, yr axisResponse, q qwpResponse) mat2.Mat {
	bfs := mat2.Diag(xr.s.S21, yr.s.S21)
	return q.plus.Mul(bfs).Mul(q.minus)
}

// JonesTransmissive returns the Jones matrix of the whole surface in
// transmissive mode at frequency f with the current bias: Eq. (8)'s
// Q₊₄₅·B·Q₋₄₅ with every element taken from the circuit model.
func (s *Surface) JonesTransmissive(f float64) mat2.Mat {
	xr := s.axisAt(AxisX, f, s.biasX)
	yr := s.axisAt(AxisY, f, s.biasY)
	return jonesTransmissiveFrom(xr, yr, s.qwpAt(f))
}

// axisReflection returns the complex reflection coefficient of one BFS
// axis backed by the metal ground plane (short-circuit termination), as
// seen from the front of the BFS stack.
func (s *Surface) axisReflection(axis Axis, f, v float64) complex128 {
	return s.axisAt(axis, f, v).shortGamma
}

// JonesReflective returns the Jones matrix of the surface in reflective
// mode at frequency f with the current bias.
//
// Two terms superpose in reception coordinates:
//
//   - the front-face specular reflection off the first QWP board
//     (small, bias-independent, polarization-preserving), and
//   - the stack round trip: in through Q₋₄₅, reflect off the
//     ground-plane-backed BFS with per-axis coefficients, back out
//     through the same plate (transpose by reciprocity).
//
// For ideal elements the round trip reduces to a fixed 90° polarization
// flip whose common phase carries the bias dependence — which is why the
// paper observes that "the rotation will be cancelled after the signal is
// reflected" yet still measures bias-dependent received power: the
// interference between the two terms, and the per-axis loss asymmetry,
// modulate the reflected amplitude.
func (s *Surface) JonesReflective(f float64) mat2.Mat {
	q := s.qwpAt(f)
	xr := s.axisAt(AxisX, f, s.biasX)
	yr := s.axisAt(AxisY, f, s.biasY)
	return jonesReflectiveFrom(xr, yr, q)
}

// jonesReflectiveFrom assembles the reflective-mode Jones matrix from
// resolved responses — the shared assembly of the scalar and batched
// paths (see jonesTransmissiveFrom).
func jonesReflectiveFrom(xr, yr axisResponse, q qwpResponse) mat2.Mat {
	inner := mat2.Diag(xr.shortGamma, yr.shortGamma)
	round := q.minus.Transpose().Mul(inner).Mul(q.minus)
	// Front-face specular term: reflection of the (slightly mismatched)
	// QWP sections.
	spec := mat2.Diag(q.fastS.S11, q.slowS.S11)
	// Power that reflects specularly never enters the stack: derate the
	// round trip accordingly so the two terms share the incident energy.
	gf := cmplx.Abs(q.fastS.S11)
	gs := cmplx.Abs(q.slowS.S11)
	gmax := math.Max(gf, gs)
	round = round.Scale(complex(1-gmax*gmax, 0))
	total := round.Add(spec)
	// Passivity clamp: constructive interference between the two terms
	// can nudge the composite marginally above unit gain at low-loss
	// corners of the model; a passive reflector cannot amplify, so scale
	// back to the unit sphere when that happens.
	if s := maxSingularValue(total); s > 1 {
		total = total.Scale(complex(1/s, 0))
	}
	return total
}

// maxSingularValue returns the largest singular value of m — the maximum
// field gain over all input polarizations — via the closed-form
// eigenvalues of m†m.
func maxSingularValue(m mat2.Mat) float64 {
	h := m.Adjoint().Mul(m) // Hermitian, PSD
	tr := real(h.Trace())
	det := real(h.Det())
	disc := tr*tr/4 - det
	if disc < 0 {
		disc = 0
	}
	lam := tr/2 + math.Sqrt(disc)
	if lam < 0 {
		return 0
	}
	return math.Sqrt(lam)
}

// FrontReflection returns the bias-dependent complex reflection
// coefficient of the surface's illuminated face in transmissive mode
// (axis average). The channel model uses it for the surface↔antenna
// standing-wave term that makes the optimal bias drift with link distance
// (Fig. 15).
func (s *Surface) FrontReflection(f float64) complex128 {
	sx := s.axisAt(AxisX, f, s.biasX).s.S11
	sy := s.axisAt(AxisY, f, s.biasY).s.S11
	return (sx + sy) / 2
}

// Jones returns the surface's Jones matrix in the given mode.
func (s *Surface) Jones(mode Mode, f float64) mat2.Mat {
	if mode == Reflective {
		return s.JonesReflective(f)
	}
	return s.JonesTransmissive(f)
}

// JonesEfficiency returns the Eq. (11) transmission efficiency a Jones
// matrix applies to an incident wave polarized along the given axis:
// |S_co|² + |S_cross|², i.e. ‖M·ê‖². It is the scalar Efficiency path
// factored out so batched callers (Surface.JonesBatch consumers) can
// derive bit-identical efficiencies from batch-resolved matrices.
func JonesEfficiency(m mat2.Mat, axis Axis) float64 {
	in := jones.Horizontal()
	if axis == AxisY {
		in = jones.Vertical()
	}
	return m.MulVec(in).NormSq()
}

// Efficiency returns the Eq. (11) transmission efficiency for an incident
// wave polarized along the given axis, at frequency f with the current
// bias: |S_co|² + |S_cross|², i.e. ‖M·ê‖².
func (s *Surface) Efficiency(axis Axis, f float64) float64 {
	return JonesEfficiency(s.JonesTransmissive(f), axis)
}

// EfficiencyDB returns Efficiency in dB.
func (s *Surface) EfficiencyDB(axis Axis, f float64) float64 {
	return units.LinearToDB(s.Efficiency(axis, f))
}

// RotationAngle returns the polarization rotation (radians, folded into
// (−π/2, π/2]) the surface applies in transmissive mode at frequency f
// with the current bias, extracted from the Jones matrix.
func (s *Surface) RotationAngle(f float64) float64 {
	return jones.RotationAngle(s.JonesTransmissive(f))
}

// RotationDegrees returns RotationAngle in degrees, as reported in
// Table 1 and Fig. 15(h). The sign is folded out: the paper reports
// magnitudes.
func (s *Surface) RotationDegrees(f float64) float64 {
	return math.Abs(units.Degrees(s.RotationAngle(f)))
}

// DifferentialPhase returns δ = arg(Ty) − arg(Tx) (radians, wrapped to
// (−π, π]) of the BFS at frequency f with the current bias — the quantity
// the rotator halves (θr = δ/2, Eq. 8).
func (s *Surface) DifferentialPhase(f float64) float64 {
	tx := s.AxisTransmission(AxisX, f, s.biasX)
	ty := s.AxisTransmission(AxisY, f, s.biasY)
	return units.NormalizeAngle(cmplx.Phase(ty) - cmplx.Phase(tx))
}

// InsertionLossDB returns the best-case power insertion loss (dB ≥ 0) of
// the surface in transmissive mode at frequency f for an X-polarized
// wave: −10·log10(efficiency).
func (s *Surface) InsertionLossDB(f float64) float64 {
	return -s.EfficiencyDB(AxisX, f)
}

// BandwidthAboveDB returns the contiguous bandwidth (Hz) around the design
// center where the X-axis efficiency stays above threshDB (e.g. −3 or −5),
// scanned over [fLo, fHi] with the given step. The paper's optimized
// design claims 150 MHz above −5 dB.
func (s *Surface) BandwidthAboveDB(threshDB, fLo, fHi, step float64) float64 {
	if step <= 0 || fHi <= fLo {
		panic("metasurface: bad bandwidth scan range")
	}
	f0 := s.design.CenterHz
	lo, hi := f0, f0
	for f := f0; f >= fLo; f -= step {
		if s.EfficiencyDB(AxisX, f) < threshDB {
			break
		}
		lo = f
	}
	for f := f0; f <= fHi; f += step {
		if s.EfficiencyDB(AxisX, f) < threshDB {
			break
		}
		hi = f
	}
	if hi == lo {
		return 0
	}
	return hi - lo
}
