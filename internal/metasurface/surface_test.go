package metasurface

import (
	"math"
	"math/rand"
	"testing"

	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/units"
)

var biasGrid = []float64{2, 3, 4, 5, 6, 10, 15} // Table 1 grid

func optimized(t *testing.T) *Surface {
	t.Helper()
	s, err := New(OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrefabDesignsValidate(t *testing.T) {
	for _, d := range []Design{
		OptimizedFR4Design(units.DefaultCarrierHz),
		NaiveFR4Design(units.DefaultCarrierHz),
		Rogers5880Design(units.DefaultCarrierHz),
		OptimizedFR4Design(units.RFIDBandCenter),
	} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsBadDesigns(t *testing.T) {
	base := OptimizedFR4Design(units.DefaultCarrierHz)
	mutations := []func(*Design){
		func(d *Design) { d.CenterHz = 0 },
		func(d *Design) { d.PatternIndex = 0.5 },
		func(d *Design) { d.QWPLayerThickness = 0 },
		func(d *Design) { d.QWPPath = 0 },
		func(d *Design) { d.QWPConcentration = 0.5 },
		func(d *Design) { d.QWPMismatch = 0.9 },
		func(d *Design) { d.QWPSelectivity = -1 },
		func(d *Design) { d.BFSLayers = 0 },
		func(d *Design) { d.BFSLayerThickness = 0 },
		func(d *Design) { d.BFSPath = 0 },
		func(d *Design) { d.BFSConcentration = 0 },
		func(d *Design) { d.LoadPitch = 0 },
		func(d *Design) { d.BFSSelectivity = -0.1 },
		func(d *Design) { d.BFSSelectivity = 1; d.BFSResonanceBias = 0 },
		func(d *Design) { d.UnitsX = 0 },
		func(d *Design) { d.UnitSize = 0 },
		func(d *Design) { d.VaractorsPerUnit = 0 },
		func(d *Design) { d.MinBiasV = 10; d.MaxBiasV = 5 },
		func(d *Design) { d.Substrate.EpsilonR = 0.2 },
		func(d *Design) { d.Diode.C0 = 0 },
	}
	for i, mut := range mutations {
		d := base
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d: invalid design accepted", i)
		}
		if _, err := New(d); err == nil {
			t.Errorf("mutation %d: New accepted invalid design", i)
		}
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid design")
		}
	}()
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	d.BFSLayers = 0
	MustNew(d)
}

func TestPrototypeGeometryMatchesPaper(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	// §4: 180 functional units, 720 varactors, ~480×480 mm.
	if d.Units() != 180 {
		t.Errorf("units = %d, want 180", d.Units())
	}
	if d.VaractorCount() != 720 {
		t.Errorf("varactors = %d, want 720", d.VaractorCount())
	}
	side := math.Sqrt(d.Area())
	if side < 0.40 || side > 0.56 {
		t.Errorf("surface side = %v m, want ≈0.48", side)
	}
}

func TestBillOfMaterialsMatchesPaperScale(t *testing.T) {
	// §4: total prototype ≈ $900, ≈$5 per unit.
	bom := OptimizedFR4Design(units.DefaultCarrierHz).BillOfMaterials()
	if bom.Total() < 500 || bom.Total() > 1400 {
		t.Errorf("BoM total = $%.0f, want ≈$900", bom.Total())
	}
	per := bom.PerUnit(180)
	if per < 3 || per > 8 {
		t.Errorf("per-unit = $%.2f, want ≈$5", per)
	}
	// Rogers build must be dramatically more expensive (the paper's
	// cost argument).
	rog := Rogers5880Design(units.DefaultCarrierHz).BillOfMaterials()
	if rog.PCB < 5*bom.PCB {
		t.Errorf("Rogers PCB $%.0f should dwarf FR4 $%.0f", rog.PCB, bom.PCB)
	}
}

func TestSubstrateOrderingFigs8to10(t *testing.T) {
	// Fig. 8 vs 9 vs 10: Rogers good, naive FR4 terrible, optimized FR4
	// comparable to Rogers.
	f0 := units.DefaultCarrierHz
	rog := MustNew(Rogers5880Design(f0))
	naive := MustNew(NaiveFR4Design(f0))
	opt := MustNew(OptimizedFR4Design(f0))
	for _, s := range []*Surface{rog, naive, opt} {
		s.SetBias(8, 8)
	}
	eRog := rog.EfficiencyDB(AxisX, f0)
	eNaive := naive.EfficiencyDB(AxisX, f0)
	eOpt := opt.EfficiencyDB(AxisX, f0)
	if eRog < -4 {
		t.Errorf("Rogers efficiency %v dB, want ≥ -4 (Fig. 8)", eRog)
	}
	if eNaive > -15 {
		t.Errorf("naive FR4 efficiency %v dB, want ≤ -15 (Fig. 9)", eNaive)
	}
	if math.Abs(eOpt-eRog) > 3 {
		t.Errorf("optimized FR4 (%v dB) should be comparable to Rogers (%v dB) (Fig. 10)", eOpt, eRog)
	}
	if !(eOpt > eNaive+8) {
		t.Errorf("optimization should recover ≥8 dB over naive FR4: %v vs %v", eOpt, eNaive)
	}
}

func TestBandPassRolloff(t *testing.T) {
	// Figs. 8/10: efficiency rolls off away from the ISM band.
	s := optimized(t)
	s.SetBias(8, 8)
	center := s.EfficiencyDB(AxisX, units.DefaultCarrierHz)
	low := s.EfficiencyDB(AxisX, 2.0e9)
	high := s.EfficiencyDB(AxisX, 2.8e9)
	if !(center > low+5) || !(center > high+5) {
		t.Errorf("no band-pass shape: center %v, edges %v / %v", center, low, high)
	}
}

func TestBandwidthClaimFig10(t *testing.T) {
	// §3.2: two-layer design achieves ≥150 MHz with efficiency > −5 dB.
	s := optimized(t)
	s.SetBias(8, 8)
	bw := s.BandwidthAboveDB(-5, 2.0e9, 2.9e9, 5e6)
	if bw < 150e6 {
		t.Errorf("-5 dB bandwidth = %.0f MHz, want ≥ 150", bw/1e6)
	}
	// And it must cover the ISM band comfortably at nominal bias.
	if bw < 100e6 {
		t.Errorf("bandwidth below ISM band width")
	}
}

func TestBandwidthPanicsOnBadRange(t *testing.T) {
	s := optimized(t)
	defer func() {
		if recover() == nil {
			t.Error("bad scan range should panic")
		}
	}()
	s.BandwidthAboveDB(-5, 2.9e9, 2.0e9, 5e6)
}

func TestEfficiencyUnderBiasFig11(t *testing.T) {
	// Fig. 11: in 2.4–2.5 GHz, efficiency stays above about −8 dB for
	// all bias combinations in the 2–15 V control range, and low bias
	// (detuned tank) is lossier than nominal.
	s := optimized(t)
	worst := 0.0
	for _, vy := range biasGrid {
		s.SetBias(8, vy)
		for f := 2.40e9; f <= 2.50e9; f += 0.02e9 {
			eff := s.EfficiencyDB(AxisY, f)
			if eff < worst {
				worst = eff
			}
		}
	}
	if worst < -10 {
		t.Errorf("worst in-band efficiency = %v dB, want ≥ -10 (Fig. 11 shows ≥ -8)", worst)
	}
	s.SetBias(8, 2)
	lowBias := s.EfficiencyDB(AxisY, units.DefaultCarrierHz)
	s.SetBias(8, 8)
	nominal := s.EfficiencyDB(AxisY, units.DefaultCarrierHz)
	if !(nominal > lowBias) {
		t.Errorf("low bias should be lossier: nominal %v vs low %v", nominal, lowBias)
	}
}

func TestTable1RotationShape(t *testing.T) {
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	var all []float64
	min, max := math.Inf(1), 0.0
	for _, vy := range biasGrid {
		for _, vx := range biasGrid {
			s.SetBias(vx, vy)
			r := s.RotationDegrees(f0)
			all = append(all, r)
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
	}
	// Table 1 spans 1.9°–48.7°.
	if min > 3 {
		t.Errorf("min rotation = %v°, want ≤ 3 (Table 1: 1.9°)", min)
	}
	if max < 40 || max > 62 {
		t.Errorf("max rotation = %v°, want ≈49 (Table 1: 48.7°)", max)
	}
	_ = all
}

func TestTable1CornerAndDiagonal(t *testing.T) {
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	// Corner (Vx=2, Vy=15) is the largest differential: ≈48°.
	s.SetBias(2, 15)
	corner := s.RotationDegrees(f0)
	if corner < 40 {
		t.Errorf("corner rotation = %v°, want ≥ 40", corner)
	}
	// Diagonal is small but nonzero at low bias (fabrication asymmetry)
	// and shrinks at high bias — Table 1: 11.6° at (2,2) → 2.0° at (15,15).
	s.SetBias(2, 2)
	lowDiag := s.RotationDegrees(f0)
	s.SetBias(15, 15)
	highDiag := s.RotationDegrees(f0)
	if lowDiag < 4 || lowDiag > 25 {
		t.Errorf("diag(2,2) = %v°, want ≈12", lowDiag)
	}
	if highDiag > 5 {
		t.Errorf("diag(15,15) = %v°, want ≈2", highDiag)
	}
	if !(lowDiag > highDiag) {
		t.Error("diagonal should shrink with bias")
	}
}

func TestRotationRowMonotoneFig15Style(t *testing.T) {
	// Along the Vy=15 column (Vx rising 2→15), rotation falls: the
	// differential phase shrinks as the axes approach each other.
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	prev := math.Inf(1)
	for _, vx := range biasGrid {
		s.SetBias(vx, 15)
		r := s.RotationDegrees(f0)
		if r >= prev {
			t.Errorf("rotation not decreasing along Vx at Vy=15: %v° after %v°", r, prev)
		}
		prev = r
	}
}

func TestRotationEqualsHalfDifferentialPhase(t *testing.T) {
	// Eq. 8: θr = δ/2. The circuit QWPs are slightly lossy/imbalanced,
	// so allow a few degrees of slack.
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	for _, vy := range biasGrid {
		s.SetBias(8, vy)
		rot := s.RotationDegrees(f0)
		want := math.Abs(units.Degrees(s.DifferentialPhase(f0))) / 2
		if math.Abs(rot-want) > 5 {
			t.Errorf("Vy=%v: rotation %v° vs δ/2 = %v°", vy, rot, want)
		}
	}
}

func TestJonesTransmissivePassive(t *testing.T) {
	// The surface is passive: no polarization state may gain power, at
	// any frequency or bias.
	s := optimized(t)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		f := 2.0e9 + r.Float64()*0.8e9
		s.SetBias(r.Float64()*30, r.Float64()*30)
		m := s.JonesTransmissive(f)
		in := jones.LinearAt(r.Float64() * math.Pi)
		if p := m.MulVec(in).NormSq(); p > 1.0+1e-9 {
			t.Fatalf("active transmissive surface: power %v at f=%v", p, f)
		}
	}
}

func TestJonesReflectivePassive(t *testing.T) {
	s := optimized(t)
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		f := 2.3e9 + r.Float64()*0.3e9
		s.SetBias(r.Float64()*30, r.Float64()*30)
		m := s.JonesReflective(f)
		in := jones.LinearAt(r.Float64() * math.Pi)
		if p := m.MulVec(in).NormSq(); p > 1.0+1e-6 {
			t.Fatalf("active reflective surface: power %v at f=%v", p, f)
		}
	}
}

func TestReflectiveCrossPolDominant(t *testing.T) {
	// The stack round trip behaves as a 90° flip (QWP–mirror–QWP): a
	// V-polarized wave reflects mostly H-polarized. This is what rescues
	// the mismatched same-side link (§5.2).
	s := optimized(t)
	s.SetBias(8, 8)
	m := s.JonesReflective(units.DefaultCarrierHz)
	v := jones.Vertical()
	cross := jones.PLF(m.MulVec(v), jones.Horizontal()) * m.MulVec(v).NormSq()
	co := jones.PLF(m.MulVec(v), jones.Vertical()) * m.MulVec(v).NormSq()
	if !(cross > co) {
		t.Errorf("reflective surface should cross-polarize: cross %v vs co %v", cross, co)
	}
}

func TestReflectiveBiasRangeSmallerThanTransmissive(t *testing.T) {
	// Fig. 21 vs Fig. 15: the bias sweep changes reflective power much
	// less than transmissive power ("the rotation will be cancelled
	// after the signal is reflected").
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	rangeOf := func(mode Mode) float64 {
		min, max := math.Inf(1), math.Inf(-1)
		for _, vy := range biasGrid {
			for _, vx := range biasGrid {
				s.SetBias(vx, vy)
				m := s.Jones(mode, f0)
				// Mismatched link: V-pol Tx, H-pol Rx.
				e := m.MulVec(jones.Vertical())
				p := real(e.X)*real(e.X) + imag(e.X)*imag(e.X)
				if p < min {
					min = p
				}
				if p > max {
					max = p
				}
			}
		}
		if min <= 0 {
			min = 1e-12
		}
		return units.LinearToDB(max / min)
	}
	trans := rangeOf(Transmissive)
	refl := rangeOf(Reflective)
	if !(trans > refl) {
		t.Errorf("bias dynamic range: transmissive %v dB should exceed reflective %v dB", trans, refl)
	}
	if trans < 10 {
		t.Errorf("transmissive bias range = %v dB, want > 10 (Fig. 15 heatmaps)", trans)
	}
}

func TestSetBiasClamps(t *testing.T) {
	s := optimized(t)
	s.SetBias(-5, 99)
	vx, vy := s.Bias()
	if vx != 0 || vy != 30 {
		t.Errorf("bias = (%v, %v), want clamped (0, 30)", vx, vy)
	}
}

func Test900MHzRescale(t *testing.T) {
	// §3.2: comparable performance after scaling to the 900 MHz band.
	s := MustNew(OptimizedFR4Design(units.RFIDBandCenter))
	s.SetBias(8, 8)
	eff := s.EfficiencyDB(AxisX, units.RFIDBandCenter)
	if eff < -6 {
		t.Errorf("900 MHz efficiency = %v dB, want ≥ -6", eff)
	}
	s.SetBias(2, 15)
	rot := s.RotationDegrees(units.RFIDBandCenter)
	if rot < 30 {
		t.Errorf("900 MHz max rotation = %v°, want ≥ 30", rot)
	}
}

func TestCalibrateLoadPitchMonotone(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	small := d.CalibrateLoadPitch(units.Radians(50), 0.9, 15)
	large := d.CalibrateLoadPitch(units.Radians(120), 0.9, 15)
	// A bigger phase-swing target needs heavier loading → smaller pitch.
	if !(large < small) {
		t.Errorf("pitch should shrink with target: %v vs %v", large, small)
	}
}

func TestCalibrateLoadPitchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive target should panic")
		}
	}()
	OptimizedFR4Design(units.DefaultCarrierHz).CalibrateLoadPitch(0, 2, 15)
}

func TestEffectiveMinBias(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	if got := d.effectiveMinBias(2); math.Abs(got-(2-d.BiasOffsetX)) > 1e-12 {
		t.Errorf("effectiveMinBias(2) = %v", got)
	}
	if got := d.effectiveMinBias(0.5); got != 0 {
		t.Errorf("effectiveMinBias(0.5) = %v, want clamp to 0", got)
	}
}

func TestStringers(t *testing.T) {
	if AxisX.String() != "X" || AxisY.String() != "Y" {
		t.Error("axis strings")
	}
	if Transmissive.String() != "transmissive" || Reflective.String() != "reflective" {
		t.Error("mode strings")
	}
	s := optimized(t)
	if s.String() == "" {
		t.Error("surface string")
	}
}

func TestInsertionLossPositive(t *testing.T) {
	s := optimized(t)
	s.SetBias(8, 8)
	il := s.InsertionLossDB(units.DefaultCarrierHz)
	if il <= 0 || il > 8 {
		t.Errorf("insertion loss = %v dB, want (0, 8]", il)
	}
}

func TestReciprocityOfAxisNetworks(t *testing.T) {
	d := OptimizedFR4Design(units.DefaultCarrierHz)
	for _, v := range biasGrid {
		net := d.bfsAxisNetwork(units.DefaultCarrierHz, AxisY, v)
		if !net.IsReciprocal(1e-6) {
			t.Errorf("BFS network not reciprocal at %v V", v)
		}
	}
}

func TestJonesModeDispatch(t *testing.T) {
	s := optimized(t)
	f0 := units.DefaultCarrierHz
	if !s.Jones(Transmissive, f0).ApproxEqual(s.JonesTransmissive(f0), 0) {
		t.Error("Jones(Transmissive) mismatch")
	}
	if !s.Jones(Reflective, f0).ApproxEqual(s.JonesReflective(f0), 0) {
		t.Error("Jones(Reflective) mismatch")
	}
}
