package channel

import (
	"math"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func TestStaticPose(t *testing.T) {
	p := StaticPose(0.7)
	for _, tm := range []time.Duration{0, time.Second, time.Hour} {
		if p.OrientationAt(tm) != 0.7 {
			t.Fatal("static pose moved")
		}
	}
}

func TestArmSwingShape(t *testing.T) {
	a := ArmSwing{MeanRad: 1.0, AmplitudeRad: 0.5, PeriodS: 1}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean at t=0 (sin 0 = 0), peak at quarter period.
	if got := a.OrientationAt(0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("swing at 0 = %v", got)
	}
	if got := a.OrientationAt(250 * time.Millisecond); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("swing at T/4 = %v, want 1.5", got)
	}
	// Periodicity.
	if math.Abs(a.OrientationAt(time.Second)-a.OrientationAt(2*time.Second)) > 1e-9 {
		t.Error("swing not periodic")
	}
	// Bounded within mean ± amplitude.
	for ms := 0; ms < 2000; ms += 37 {
		v := a.OrientationAt(time.Duration(ms) * time.Millisecond)
		if v < 0.5-1e-9 || v > 1.5+1e-9 {
			t.Fatalf("swing out of bounds: %v", v)
		}
	}
}

func TestArmSwingValidate(t *testing.T) {
	if err := (ArmSwing{AmplitudeRad: -1, PeriodS: 1}).Validate(); err == nil {
		t.Error("negative amplitude accepted")
	}
	if err := (ArmSwing{AmplitudeRad: 1, PeriodS: 0}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
}

func TestRandomWalkPose(t *testing.T) {
	w, err := NewRandomWalkPose(0.8, 0.02, 0.05, 10*time.Millisecond, 10*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed.
	w2, err := NewRandomWalkPose(0.8, 0.02, 0.05, 10*time.Millisecond, 10*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []time.Duration{0, time.Second, 5 * time.Second} {
		if w.OrientationAt(tm) != w2.OrientationAt(tm) {
			t.Fatal("same-seed walks differ")
		}
	}
	// Stays near the mean (mean reversion).
	var worst float64
	for ms := 0; ms < 10000; ms += 10 {
		d := math.Abs(w.OrientationAt(time.Duration(ms)*time.Millisecond) - 0.8)
		if d > worst {
			worst = d
		}
	}
	if worst > 1.0 {
		t.Errorf("walk wandered %v rad from mean", worst)
	}
	// Clamps beyond horizon and before zero.
	if w.OrientationAt(time.Hour) != w.OrientationAt(10*time.Second) {
		t.Error("beyond-horizon should clamp")
	}
	if w.OrientationAt(-time.Second) != w.OrientationAt(0) {
		t.Error("negative time should clamp to start")
	}
}

func TestRandomWalkValidation(t *testing.T) {
	if _, err := NewRandomWalkPose(0, -1, 0.1, time.Millisecond, time.Second, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewRandomWalkPose(0, 0.1, 2, time.Millisecond, time.Second, 1); err == nil {
		t.Error("reversion > 1 accepted")
	}
	if _, err := NewRandomWalkPose(0, 0.1, 0.1, 0, time.Second, 1); err == nil {
		t.Error("zero tick accepted")
	}
}

func TestTurntable(t *testing.T) {
	tt := Turntable{StartRad: 0, RateRadPerS: math.Pi / 2}
	if got := tt.OrientationAt(2 * time.Second); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("turntable at 2 s = %v, want π", got)
	}
}

func TestMismatchTimelineAndAvailability(t *testing.T) {
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	surf.SetBias(8, 8)
	sc := DefaultScene(surf, 0.48)
	// Swing through match and mismatch once per second.
	swing := ArmSwing{MeanRad: math.Pi / 4, AmplitudeRad: math.Pi / 4, PeriodS: 1}
	tl := MismatchTimeline(sc, swing, 50*time.Millisecond, 2*time.Second)
	if len(tl) != 41 {
		t.Fatalf("timeline samples = %d", len(tl))
	}
	// Power must actually vary with the swing.
	min, max := tl[0], tl[0]
	for _, p := range tl {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min < 3 {
		t.Errorf("swing produced only %v dB of variation", max-min)
	}
	// Availability is monotone in the threshold.
	if !(Availability(tl, min-1) == 1) {
		t.Error("everything should clear a below-min threshold")
	}
	if !(Availability(tl, max+1) == 0) {
		t.Error("nothing should clear an above-max threshold")
	}
	mid := Availability(tl, (min+max)/2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid-threshold availability = %v", mid)
	}
	if Availability(nil, -50) != 0 {
		t.Error("empty timeline availability should be 0")
	}
}

func TestMismatchTimelinePanics(t *testing.T) {
	sc := DefaultScene(nil, 0.48)
	for _, f := range []func(){
		func() { MismatchTimeline(sc, nil, time.Millisecond, time.Second) },
		func() { MismatchTimeline(sc, StaticPose(0), 0, time.Second) },
		func() { MismatchTimeline(sc, StaticPose(0), time.Millisecond, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
