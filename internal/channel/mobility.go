package channel

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Trajectory produces an endpoint orientation (radians) as a function of
// virtual time — the motion models behind Fig. 1's wearable scenarios.
type Trajectory interface {
	// OrientationAt returns the element angle at virtual time t.
	OrientationAt(t time.Duration) float64
}

// StaticPose is a fixed orientation (a wall-mounted device).
type StaticPose float64

// OrientationAt implements Trajectory.
func (s StaticPose) OrientationAt(time.Duration) float64 { return float64(s) }

// ArmSwing models a walking user's wrist: a sinusoidal swing around a
// mean pose, the canonical dynamic-mismatch source the paper's Fig. 1
// illustrates.
type ArmSwing struct {
	// MeanRad is the rest orientation.
	MeanRad float64
	// AmplitudeRad is the swing half-angle (≈40–60° walking).
	AmplitudeRad float64
	// PeriodS is the gait cycle (≈1 s walking).
	PeriodS float64
	// PhaseRad offsets the cycle start.
	PhaseRad float64
}

// Validate reports an error for unusable swings.
func (a ArmSwing) Validate() error {
	if a.AmplitudeRad < 0 {
		return fmt.Errorf("channel: negative swing amplitude")
	}
	if a.PeriodS <= 0 {
		return fmt.Errorf("channel: non-positive swing period")
	}
	return nil
}

// OrientationAt implements Trajectory.
func (a ArmSwing) OrientationAt(t time.Duration) float64 {
	return a.MeanRad + a.AmplitudeRad*math.Sin(2*math.Pi*t.Seconds()/a.PeriodS+a.PhaseRad)
}

// RandomWalkPose models slow fidgeting: an Ornstein–Uhlenbeck-like
// orientation drift around a mean, sampled on a fixed tick so the
// trajectory is deterministic per seed and time-queryable.
type RandomWalkPose struct {
	mean    float64
	samples []float64
	tick    time.Duration
}

// NewRandomWalkPose pre-draws a walk of the given duration: reversion
// pulls the pose back toward mean, sigma is the per-tick innovation.
func NewRandomWalkPose(mean, sigma, reversion float64, tick, duration time.Duration, seed int64) (*RandomWalkPose, error) {
	if sigma < 0 || reversion < 0 || reversion > 1 {
		return nil, fmt.Errorf("channel: bad walk parameters σ=%g κ=%g", sigma, reversion)
	}
	if tick <= 0 || duration <= 0 {
		return nil, fmt.Errorf("channel: walk needs positive tick and duration")
	}
	rng := rand.New(rand.NewSource(seed))
	n := int(duration/tick) + 1
	samples := make([]float64, n)
	x := 0.0
	for i := range samples {
		samples[i] = mean + x
		x = (1-reversion)*x + sigma*rng.NormFloat64()
	}
	return &RandomWalkPose{mean: mean, samples: samples, tick: tick}, nil
}

// OrientationAt implements Trajectory, clamping beyond the pre-drawn
// horizon to the last sample.
func (r *RandomWalkPose) OrientationAt(t time.Duration) float64 {
	if t < 0 {
		return r.samples[0]
	}
	i := int(t / r.tick)
	if i >= len(r.samples) {
		return r.samples[len(r.samples)-1]
	}
	return r.samples[i]
}

// Turntable models the §3.4 measurement rig: a constant-rate rotation
// used to scan receiver orientations.
type Turntable struct {
	// StartRad is the orientation at t = 0.
	StartRad float64
	// RateRadPerS is the rotation speed.
	RateRadPerS float64
}

// OrientationAt implements Trajectory.
func (tt Turntable) OrientationAt(t time.Duration) float64 {
	return tt.StartRad + tt.RateRadPerS*t.Seconds()
}

// MismatchTimeline evaluates the instantaneous polarization mismatch loss
// (dB ≤ 0) between a moving transmitter and a static receiver over a time
// grid — the raw material for "how often does the link fall below X dB"
// availability questions.
func MismatchTimeline(sc *Scene, txMotion Trajectory, step, duration time.Duration) []float64 {
	if step <= 0 || duration <= 0 {
		panic("channel: timeline needs positive step and duration")
	}
	if txMotion == nil {
		panic("channel: nil trajectory")
	}
	n := int(duration/step) + 1
	out := make([]float64, n)
	work := *sc
	for i := 0; i < n; i++ {
		work.Tx.Orientation = txMotion.OrientationAt(time.Duration(i) * step)
		out[i] = work.ReceivedPowerDBm()
	}
	return out
}

// Availability returns the fraction of timeline samples at or above the
// threshold (dBm) — link availability under motion.
func Availability(timeline []float64, thresholdDBm float64) float64 {
	if len(timeline) == 0 {
		return 0
	}
	up := 0
	for _, p := range timeline {
		if p >= thresholdDBm {
			up++
		}
	}
	return float64(up) / float64(len(timeline))
}
