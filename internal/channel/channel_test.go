package channel

import (
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

func testSurface(t *testing.T) *metasurface.Surface {
	t.Helper()
	s, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// matchedScene returns a clean line-of-sight scene with aligned antennas.
func matchedScene(d float64) *Scene {
	sc := DefaultScene(nil, d)
	sc.Tx.Orientation = 0 // aligned with Rx
	return sc
}

func TestValidate(t *testing.T) {
	sc := DefaultScene(nil, 0.48)
	if err := sc.Validate(); err != nil {
		t.Fatalf("default scene invalid: %v", err)
	}
	bad := []func(*Scene){
		func(s *Scene) { s.FreqHz = 0 },
		func(s *Scene) { s.TxPowerW = 0 },
		func(s *Scene) { s.Geom.TxRx = 0 },
		func(s *Scene) { s.NoiseBandwidthHz = 0 },
		func(s *Scene) { s.MeasurementSaturation = -1 },
		func(s *Scene) { s.Tx.Antenna.GainDBi = 99 },
	}
	for i, mut := range bad {
		s := DefaultScene(nil, 0.48)
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Surface present without legs.
	s := DefaultScene(testSurface(t), 0.48)
	s.Geom.TxSurface = 0
	if err := s.Validate(); err == nil {
		t.Error("surface without legs accepted")
	}
}

func TestFriisAgreementWithoutSurface(t *testing.T) {
	// A matched LoS scene must reproduce the Friis equation to within
	// the antennas' XPD leakage (a fraction of a dB).
	sc := matchedScene(1.0)
	sc.Env = Absorber()
	want := units.WattsToDBm(units.FriisReceivedPower(
		sc.TxPowerW,
		units.DBToLinear(sc.Tx.Antenna.GainDBi),
		units.DBToLinear(sc.Rx.Antenna.GainDBi),
		sc.FreqHz, 1.0))
	got := sc.ReceivedPowerDBm()
	if math.Abs(got-want) > 0.5 {
		t.Errorf("LoS power = %v dBm, Friis says %v", got, want)
	}
}

func TestDistanceDecay(t *testing.T) {
	p1 := matchedScene(0.5).ReceivedPowerDBm()
	p2 := matchedScene(1.0).ReceivedPowerDBm()
	if math.Abs((p1-p2)-6.02) > 0.3 {
		t.Errorf("doubling distance lost %v dB, want ≈6", p1-p2)
	}
}

func TestMismatchCostsAtLeast10dB(t *testing.T) {
	// Fig. 2's premise: orthogonal orientation costs 10+ dB.
	matched := matchedScene(0.48).ReceivedPowerDBm()
	mismatched := DefaultScene(nil, 0.48).ReceivedPowerDBm()
	gap := matched - mismatched
	if gap < 10 {
		t.Errorf("mismatch gap = %v dB, want ≥ 10", gap)
	}
	if math.IsInf(mismatched, -1) {
		t.Error("mismatch should be finite (XPD leakage)")
	}
}

func TestSurfaceRecoversMismatchTransmissive(t *testing.T) {
	// The headline result (Fig. 16): with the surface at its best bias,
	// a mismatched through link gains >= 8 dB, approaching 15 dB at
	// favorable distances.
	surf := testSurface(t)
	sc := DefaultScene(surf, 0.48)
	base := DefaultScene(nil, 0.48)

	best := math.Inf(-1)
	for vx := 0.0; vx <= 30; vx += 1 {
		for vy := 0.0; vy <= 30; vy += 1 {
			surf.SetBias(vx, vy)
			if p := sc.ReceivedPowerDBm(); p > best {
				best = p
			}
		}
	}
	gain := best - base.ReceivedPowerDBm()
	if gain < 8 {
		t.Errorf("best-case surface gain = %v dB, want ≥ 8 (paper: up to 15)", gain)
	}
	if gain > 25 {
		t.Errorf("gain = %v dB is implausibly high", gain)
	}
}

func TestSurfaceBiasMattersTransmissive(t *testing.T) {
	// Fig. 15: received power varies strongly (>10 dB) across the bias
	// plane in the mismatched transmissive setup.
	surf := testSurface(t)
	sc := DefaultScene(surf, 0.48)
	min, max := math.Inf(1), math.Inf(-1)
	for vx := 0.0; vx <= 30; vx += 2 {
		for vy := 0.0; vy <= 30; vy += 2 {
			surf.SetBias(vx, vy)
			p := sc.ReceivedPowerDBm()
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
	}
	if max-min < 10 {
		t.Errorf("bias dynamic range = %v dB, want ≥ 10", max-min)
	}
}

func TestOptimalBiasShiftsWithDistance(t *testing.T) {
	// Fig. 15(a–g): the best (Vx,Vy) drifts as the Tx–Rx distance
	// changes, via the surface↔Tx standing-wave term.
	surf := testSurface(t)
	argmax := func(d float64) [2]float64 {
		sc := DefaultScene(surf, d)
		best, arg := math.Inf(-1), [2]float64{}
		for vx := 0.0; vx <= 30; vx += 1.5 {
			for vy := 0.0; vy <= 30; vy += 1.5 {
				surf.SetBias(vx, vy)
				if p := sc.ReceivedPowerDBm(); p > best {
					best, arg = p, [2]float64{vx, vy}
				}
			}
		}
		return arg
	}
	a := argmax(0.24)
	b := argmax(0.36)
	c := argmax(0.54)
	if a == b && b == c {
		t.Errorf("optimal bias identical at all distances: %v", a)
	}
}

func TestReflectiveSurfaceRecoversMismatch(t *testing.T) {
	// §5.2.1 / Fig. 22: in the reflective deployment the surface bounce
	// arrives cross-polarized and rescues the mismatched direct link by
	// a large margin (paper: up to 17 dB).
	surf := testSurface(t)
	sc := DefaultScene(surf, 0.70)
	sc.Mode = metasurface.Reflective
	sc.Geom = Geometry{TxRx: 0.70, TxSurface: 0.45, SurfaceRx: 0.45}

	base := *sc
	base.Surface = nil

	best := math.Inf(-1)
	for vx := 0.0; vx <= 30; vx += 2 {
		for vy := 0.0; vy <= 30; vy += 2 {
			surf.SetBias(vx, vy)
			if p := sc.ReceivedPowerDBm(); p > best {
				best = p
			}
		}
	}
	gain := best - base.ReceivedPowerDBm()
	if gain < 10 {
		t.Errorf("reflective gain = %v dB, want ≥ 10 (paper: 17)", gain)
	}
}

func TestReflectiveBiasRangeSmallerThanTransmissive(t *testing.T) {
	// Fig. 21 vs Fig. 15: bias changes move reflective power much less.
	surf := testSurface(t)
	rangeDB := func(mode metasurface.Mode) float64 {
		sc := DefaultScene(surf, 0.70)
		sc.Mode = mode
		if mode == metasurface.Reflective {
			sc.Geom = Geometry{TxRx: 0.70, TxSurface: 0.45, SurfaceRx: 0.45}
		}
		min, max := math.Inf(1), math.Inf(-1)
		for vx := 0.0; vx <= 30; vx += 2 {
			for vy := 0.0; vy <= 30; vy += 2 {
				surf.SetBias(vx, vy)
				p := sc.ReceivedPowerDBm()
				if p < min {
					min = p
				}
				if p > max {
					max = p
				}
			}
		}
		return max - min
	}
	tr := rangeDB(metasurface.Transmissive)
	rf := rangeDB(metasurface.Reflective)
	if !(tr > rf) {
		t.Errorf("transmissive range %v dB should exceed reflective %v dB", tr, rf)
	}
}

func TestMultipathRaisesMismatchedPower(t *testing.T) {
	// §5.1.2: without the surface, multipath raises a mismatched link's
	// power (depolarized bounces leak into the Rx polarization).
	clean := DefaultScene(nil, 0.48)
	lab := DefaultScene(nil, 0.48)
	lab.Tx.Antenna = antenna.OmniWiFi
	lab.Rx.Antenna = antenna.OmniWiFi
	lab.Env = Laboratory(7, 12)
	cleanOmni := DefaultScene(nil, 0.48)
	cleanOmni.Tx.Antenna = antenna.OmniWiFi
	cleanOmni.Rx.Antenna = antenna.OmniWiFi
	if !(lab.ReceivedPowerDBm() > cleanOmni.ReceivedPowerDBm()) {
		t.Errorf("multipath should raise mismatched omni power: %v vs %v",
			lab.ReceivedPowerDBm(), cleanOmni.ReceivedPowerDBm())
	}
	_ = clean
}

func TestDirectionalSuppressesMultipath(t *testing.T) {
	// Fig. 19(b): directional antennas are robust to multipath — the
	// scattered contribution is small relative to the direct path.
	mp := Laboratory(11, 12)
	dir := matchedScene(0.48)
	dir.Env = mp
	dirClean := matchedScene(0.48)
	omni := matchedScene(0.48)
	omni.Tx.Antenna = antenna.OmniWiFi
	omni.Rx.Antenna = antenna.OmniWiFi
	omni.Env = mp
	omniClean := matchedScene(0.48)
	omniClean.Tx.Antenna = antenna.OmniWiFi
	omniClean.Rx.Antenna = antenna.OmniWiFi

	dirShift := math.Abs(dir.ReceivedPowerDBm() - dirClean.ReceivedPowerDBm())
	omniShift := math.Abs(omni.ReceivedPowerDBm() - omniClean.ReceivedPowerDBm())
	if !(dirShift < omniShift) {
		t.Errorf("directional multipath shift %v dB should be below omni %v dB", dirShift, omniShift)
	}
}

func TestNoisePowerComposition(t *testing.T) {
	sc := DefaultScene(nil, 0.48)
	sc.InterferenceFloorDBm = -60
	n := units.WattsToDBm(sc.NoisePowerW())
	// Dominated by the -60 dBm floor.
	if math.Abs(n-(-60)) > 0.1 {
		t.Errorf("noise = %v dBm, want ≈ -60", n)
	}
	sc.InterferenceFloorDBm = math.Inf(-1)
	n = units.WattsToDBm(sc.NoisePowerW())
	// Thermal only: -114 + NF 6 = -108.
	if math.Abs(n-(-108)) > 0.2 {
		t.Errorf("thermal noise = %v dBm, want ≈ -108", n)
	}
}

func TestMeasuredSNRSaturates(t *testing.T) {
	sc := matchedScene(0.3)
	sc.MeasurementSaturation = 1.7
	sc.TxPowerW = 1 // 1 W: enormous true SNR
	se := sc.SpectralEfficiency()
	ceiling := math.Log2(1 + 1/1.7)
	if se > ceiling+1e-9 {
		t.Errorf("SE %v exceeds saturation ceiling %v", se, ceiling)
	}
	if se < ceiling*0.9 {
		t.Errorf("SE %v should approach ceiling %v at 1 W", se, ceiling)
	}
	// Capacity metric grows monotonically with power.
	sc.TxPowerW = 2e-6
	low := sc.SpectralEfficiency()
	sc.TxPowerW = 2e-3
	mid := sc.SpectralEfficiency()
	if !(low < mid && mid <= ceiling) {
		t.Errorf("SE not monotone: %v, %v, ceiling %v", low, mid, ceiling)
	}
}

func TestMeasuredSNRWithoutSaturationIsTrue(t *testing.T) {
	sc := matchedScene(0.3)
	sc.MeasurementSaturation = 0
	if math.Abs(sc.MeasuredSNR()-sc.SNR()) > 1e-9*sc.SNR() {
		t.Error("saturation 0 should give true SNR")
	}
}

func TestCapacityBps(t *testing.T) {
	sc := matchedScene(0.3)
	se := units.SpectralEfficiency(sc.MeasuredSNR())
	if math.Abs(sc.CapacityBps()-se*sc.NoiseBandwidthHz) > 1 {
		t.Error("CapacityBps should equal SE × bandwidth")
	}
}

func TestLaboratoryDeterministic(t *testing.T) {
	a := Laboratory(3, 10)
	b := Laboratory(3, 10)
	if len(a.Scatterers) != len(b.Scatterers) {
		t.Fatal("scatterer count differs")
	}
	for i := range a.Scatterers {
		if a.Scatterers[i] != b.Scatterers[i] {
			t.Fatalf("scatterer %d differs between same-seed environments", i)
		}
	}
	c := Laboratory(4, 10)
	same := true
	for i := range a.Scatterers {
		if a.Scatterers[i] != c.Scatterers[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical environments")
	}
}

func TestLaboratoryPanicsNegativeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative scatterer count should panic")
		}
	}()
	Laboratory(1, -1)
}

func TestAbsorberHasNoScatterers(t *testing.T) {
	if len(Absorber().Scatterers) != 0 {
		t.Error("absorber environment must be clean")
	}
}

func TestEndpointState(t *testing.T) {
	e := Endpoint{Antenna: antenna.DirectionalPatch, Orientation: 0.3}
	if math.Abs(e.State().Norm()-1) > 1e-9 {
		t.Error("endpoint state should be normalized")
	}
}

func TestFrequencyDependence(t *testing.T) {
	// Fig. 17: the surface keeps helping across 2.40–2.50 GHz.
	surf := testSurface(t)
	surf.SetBias(2, 15)
	for f := 2.40e9; f <= 2.50e9; f += 0.02e9 {
		sc := DefaultScene(surf, 0.48)
		sc.FreqHz = f
		base := DefaultScene(nil, 0.48)
		base.FreqHz = f
		gain := sc.ReceivedPowerDBm() - base.ReceivedPowerDBm()
		if gain < 3 {
			t.Errorf("f=%.2f GHz: surface gain %v dB, want clearly positive", f/1e9, gain)
		}
	}
}

// TestSceneTermCacheTransparent: the lazily cached endpoint and scatterer
// terms must be invisible — evaluating, mutating any cached-over field,
// and evaluating again must give bit-identical results to a fresh scene
// with the final configuration.
func TestSceneTermCacheTransparent(t *testing.T) {
	build := func() *Scene {
		sc := DefaultScene(nil, 0.48)
		sc.Env = Laboratory(7, 5)
		return sc
	}
	mutations := []struct {
		name string
		mut  func(*Scene)
	}{
		{"rx orientation", func(s *Scene) { s.Rx.Orientation = 0.3 }},
		{"tx antenna", func(s *Scene) { s.Tx.Antenna = antenna.OmniWiFi }},
		{"environment", func(s *Scene) { s.Env = Laboratory(8, 3) }},
		{"scatterer edited in place", func(s *Scene) { s.Env.Scatterers[2].PolRotation += 0.5 }},
		{"scatterers truncated", func(s *Scene) { s.Env.Scatterers = s.Env.Scatterers[:1] }},
	}
	for _, m := range mutations {
		warm := build()
		if warm.FieldTransfer() == 0 {
			t.Fatalf("%s: degenerate field", m.name)
		}
		m.mut(warm) // mutate AFTER the cache is populated
		fresh := build()
		m.mut(fresh) // fresh scene evaluated only in the final state
		got, want := warm.FieldTransfer(), fresh.FieldTransfer()
		if got != want {
			t.Errorf("%s: cached scene %v, fresh scene %v — stale terms survived mutation", m.name, got, want)
		}
	}
}

// TestSceneValueCopyDoesNotAliasTerms: Scenes are copied by value at
// several call sites (baseline comparisons, mobility timelines). A term
// rebuild in one copy must never write into backing arrays the other
// copy's still-valid cache reads from.
func TestSceneValueCopyDoesNotAliasTerms(t *testing.T) {
	orig := DefaultScene(nil, 0.48)
	orig.Env = Laboratory(3, 6)
	wantOrig := orig.FieldTransfer() // populate the original's terms

	clone := *orig
	clone.Tx.Antenna = antenna.OmniWiFi // different scatterer gains
	clone.Rx.Antenna = antenna.HalfWaveDipole
	_ = clone.FieldTransfer() // rebuild terms inside the copy

	if got := orig.FieldTransfer(); got != wantOrig {
		t.Fatalf("original scene drifted after a value copy rebuilt its terms: %v != %v", got, wantOrig)
	}
	fresh := DefaultScene(nil, 0.48)
	fresh.Env = Laboratory(3, 6)
	fresh.Tx.Antenna = antenna.OmniWiFi
	fresh.Rx.Antenna = antenna.HalfWaveDipole
	if got, want := clone.FieldTransfer(), fresh.FieldTransfer(); got != want {
		t.Fatalf("copied scene %v != fresh scene %v", got, want)
	}
}
