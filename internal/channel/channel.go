// Package channel simulates the polarization-aware radio channel the LLAMA
// evaluation runs over.
//
// A Scene composes endpoints (antennas with orientations), a link geometry,
// an optional metasurface (transmissive or reflective deployment, Fig. 14)
// and an environment (absorber-lined chamber or multipath-rich laboratory).
// The complex channel response is the coherent sum of Jones-weighted paths:
//
//	h = Σ_paths  a_p · ⟨ r̂ | M_p | t̂ ⟩
//
// where a_p carries spreading loss and propagation phase, M_p the
// polarization transformation of the path (identity for line of sight, the
// surface's Jones matrix for through/reflected paths, a random rotation
// for scatterers), and t̂/r̂ the endpoint polarization states.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// Endpoint is a radio terminal: an antenna model plus its physical
// polarization orientation (radians from the global X axis).
type Endpoint struct {
	// Antenna is the element model.
	Antenna antenna.Model
	// Orientation is the element rotation ψ about the boresight axis.
	Orientation float64
}

// State returns the endpoint's polarization Jones state.
func (e Endpoint) State() jones.Vector {
	return e.Antenna.PolarizationState(e.Orientation)
}

// Geometry fixes the scene distances in meters. For transmissive scenes
// the surface sits between the endpoints (TxSurface + SurfaceRx is the
// through-path length, and also the Tx–Rx distance when the surface is
// removed). For reflective scenes TxRx is the direct distance and
// TxSurface/SurfaceRx the legs of the bounce path.
type Geometry struct {
	TxRx      float64
	TxSurface float64
	SurfaceRx float64
}

// Validate reports an error for non-physical geometries.
func (g Geometry) Validate() error {
	if g.TxRx <= 0 {
		return fmt.Errorf("channel: non-positive Tx–Rx distance %g", g.TxRx)
	}
	if g.TxSurface < 0 || g.SurfaceRx < 0 {
		return fmt.Errorf("channel: negative surface leg")
	}
	return nil
}

// Scatterer is one multipath reflector: an extra path with its own length,
// complex strength and polarization rotation.
type Scatterer struct {
	// ExtraPathM is the excess path length over the direct path, meters.
	ExtraPathM float64
	// GainLinear is the field amplitude relative to a free-space path of
	// the same length (reflection efficiency ≤ 1).
	GainLinear float64
	// PolRotation is the polarization rotation the bounce applies.
	PolRotation float64
	// Depol is the depolarizing leak (0 = preserves polarization).
	Depol float64
	// OffBoresightTx, OffBoresightRx are the angles the scattered path
	// leaves/arrives relative to the antenna boresights, so directional
	// antennas can suppress it.
	OffBoresightTx, OffBoresightRx float64
}

// Environment is the propagation surrounding: a set of scatterers.
type Environment struct {
	// Name labels the environment in reports.
	Name string
	// Scatterers is empty for the absorber-covered test area.
	Scatterers []Scatterer
}

// Absorber returns the paper's default controlled environment: the test
// area covered with absorbing material (§4), i.e. no multipath.
func Absorber() Environment { return Environment{Name: "absorber"} }

// Laboratory returns a multipath-rich indoor environment with n seeded
// random scatterers, reproducing §5.1.2's "rich multipath (laboratory)"
// setting. Scatterer strengths follow the usual indoor power-law decay.
func Laboratory(seed int64, n int) Environment {
	return scatterEnv("laboratory", seed, n, 0.15, 0.5)
}

// Home returns a mild indoor environment: a few weak reflections, the
// regime of the paper's Fig. 2(b) BLE benchmark where the direct path
// still dominates and the mismatch gap survives.
func Home(seed int64, n int) Environment {
	return scatterEnv("home", seed, n, 0.03, 0.09)
}

// scatterEnv draws n scatterers with field gains in [gainLo, gainLo+gainSpan).
func scatterEnv(name string, seed int64, n int, gainLo, gainSpan float64) Environment {
	if n < 0 {
		panic("channel: negative scatterer count")
	}
	rng := rand.New(rand.NewSource(seed))
	env := Environment{Name: fmt.Sprintf("%s (%d scatterers)", name, n)}
	for i := 0; i < n; i++ {
		env.Scatterers = append(env.Scatterers, Scatterer{
			ExtraPathM:     0.5 + rng.ExpFloat64()*2.5,
			GainLinear:     gainLo + gainSpan*rng.Float64(),
			PolRotation:    rng.Float64() * math.Pi,
			Depol:          0.1 + 0.4*rng.Float64(),
			OffBoresightTx: (rng.Float64() - 0.5) * math.Pi,
			OffBoresightRx: (rng.Float64() - 0.5) * math.Pi,
		})
	}
	return env
}

// sceneTerms caches the per-scene derived quantities that are fixed
// between mutations: the endpoint polarization states and boresight gain
// product (identical for every path), and the per-scatterer Jones
// matrices and pattern gain products. The cache is invalidated by key
// comparison on access — the endpoint and scatterer fields are small
// comparable structs, so detecting a mutation costs a few equality tests
// where recomputing costs trig and antenna-pattern evaluations — which
// keeps it correct even though Scene's fields are exported and mutable.
//
// Rebuilds always allocate fresh slices (never reuse backing arrays):
// Scenes are copied by value in several call sites (baseline comparisons,
// mobility timelines), and a rebuild that wrote into a shared backing
// array would silently corrupt the other copy's still-valid cache.
type sceneTerms struct {
	// epValid guards the endpoint terms; the key fields record the
	// endpoint configuration they were computed from.
	epValid            bool
	txAnt, rxAnt       antenna.Model
	txOrient, rxOrient float64
	tState, rState     jones.Vector
	gain0              float64 // √(G_tx(0)·G_rx(0))

	// scatKey is the scatterer list the terms below were built from,
	// against the scatAnt antennas (orientation does not enter them, so
	// they survive endpoint rotation).
	scatTxAnt, scatRxAnt antenna.Model
	scatValid            bool
	scatKey              []Scatterer
	scatJones            []mat2.Mat
	scatGain             []float64
}

// Scene is a complete, evaluable radio configuration.
//
// A Scene is not safe for concurrent use: evaluation maintains a lazily
// computed term cache (and the surface bias is mutable shared state), so
// concurrent goroutines must each own their own Scene.
type Scene struct {
	// FreqHz is the carrier frequency.
	FreqHz float64
	// Tx, Rx are the endpoints.
	Tx, Rx Endpoint
	// TxPowerW is the transmit power in watts.
	TxPowerW float64
	// Geom fixes the distances.
	Geom Geometry
	// Surface is the deployed metasurface; nil means no surface (the
	// baseline configuration).
	Surface *metasurface.Surface
	// Mode selects transmissive or reflective deployment.
	Mode metasurface.Mode
	// Env is the propagation environment.
	Env Environment
	// NoiseBandwidthHz is the receiver noise bandwidth (1 MHz for the
	// paper's USRP sampling).
	NoiseBandwidthHz float64
	// NoiseFigureDB is the receiver noise figure.
	NoiseFigureDB float64
	// InterferenceFloorDBm models the SDR's effective in-band
	// interference + estimator floor; it adds to thermal noise. Set to
	// -Inf (or just very low) to disable.
	InterferenceFloorDBm float64
	// MeasurementSaturation is the multiplicative error fraction of the
	// receiver's SNR estimator: the measured SNR saturates at
	// 1/MeasurementSaturation however strong the signal. The paper's
	// capacity plots (Figs. 18/19/22) top out near 0.6 bit/s/Hz, which
	// corresponds to a saturation fraction ≈ 1.5–2.
	MeasurementSaturation float64
	// TxReflection is the Tx antenna structural reflection coefficient
	// used by the surface↔antenna standing-wave term.
	TxReflection float64

	// terms is the lazily computed, mutation-invalidated cache of
	// endpoint and scatterer derived quantities.
	terms sceneTerms
}

// endpointTerms returns the cached endpoint polarization states and the
// boresight gain product, recomputing them when an endpoint field has
// changed since the last evaluation.
func (s *Scene) endpointTerms() (t, r jones.Vector, gain0 float64) {
	m := &s.terms
	if !m.epValid ||
		m.txAnt != s.Tx.Antenna || m.txOrient != s.Tx.Orientation ||
		m.rxAnt != s.Rx.Antenna || m.rxOrient != s.Rx.Orientation {
		m.txAnt, m.txOrient = s.Tx.Antenna, s.Tx.Orientation
		m.rxAnt, m.rxOrient = s.Rx.Antenna, s.Rx.Orientation
		m.tState = s.Tx.State()
		m.rState = s.Rx.State()
		m.gain0 = math.Sqrt(s.Tx.Antenna.Gain(0) * s.Rx.Antenna.Gain(0))
		m.epValid = true
	}
	return m.tState, m.rState, m.gain0
}

// scattererTerms returns the cached per-scatterer polarization matrices
// and pattern gain products, rebuilding them when the environment's
// scatterer list or the endpoint antennas have changed (orientation
// doesn't enter, so a rotating endpoint keeps its scatterer terms).
func (s *Scene) scattererTerms() (jm []mat2.Mat, gain []float64) {
	m := &s.terms
	sc := s.Env.Scatterers
	same := m.scatValid &&
		m.scatTxAnt == s.Tx.Antenna && m.scatRxAnt == s.Rx.Antenna &&
		len(m.scatKey) == len(sc)
	for i := 0; same && i < len(sc); i++ {
		same = m.scatKey[i] == sc[i]
	}
	if !same {
		m.scatTxAnt, m.scatRxAnt = s.Tx.Antenna, s.Rx.Antenna
		m.scatKey = append([]Scatterer(nil), sc...)
		m.scatJones = make([]mat2.Mat, 0, len(sc))
		m.scatGain = make([]float64, 0, len(sc))
		for _, x := range sc {
			m.scatJones = append(m.scatJones, scattererJones(x))
			m.scatGain = append(m.scatGain,
				math.Sqrt(s.Tx.Antenna.Gain(x.OffBoresightTx)*s.Rx.Antenna.Gain(x.OffBoresightRx)))
		}
		m.scatValid = true
	}
	return m.scatJones, m.scatGain
}

// Validate reports an error when the scene is not evaluable.
func (s *Scene) Validate() error {
	if s.FreqHz <= 0 {
		return fmt.Errorf("channel: non-positive frequency")
	}
	if s.TxPowerW <= 0 {
		return fmt.Errorf("channel: non-positive transmit power")
	}
	if err := s.Geom.Validate(); err != nil {
		return err
	}
	if err := s.Tx.Antenna.Validate(); err != nil {
		return err
	}
	if err := s.Rx.Antenna.Validate(); err != nil {
		return err
	}
	if s.NoiseBandwidthHz <= 0 {
		return fmt.Errorf("channel: non-positive noise bandwidth")
	}
	if s.Surface != nil && (s.Geom.TxSurface <= 0 || s.Geom.SurfaceRx <= 0) {
		return fmt.Errorf("channel: surface present but surface legs unset")
	}
	if s.MeasurementSaturation < 0 {
		return fmt.Errorf("channel: negative measurement saturation")
	}
	return nil
}

// pathAmplitude returns the complex field transfer of a free-space leg of
// length d: (λ/4πd)·e^{−jkd}. Antenna gains are applied separately.
func (s *Scene) pathAmplitude(d float64) complex128 {
	lambda := units.Wavelength(s.FreqHz)
	mag := lambda / (4 * math.Pi * d)
	return cmplx.Rect(mag, -units.WaveNumber(s.FreqHz)*d)
}

// FieldTransfer returns the complex scalar channel h between the Tx and
// Rx ports, including antenna gains, polarization projection, the surface
// (when present) and the environment's multipath.
func (s *Scene) FieldTransfer() complex128 {
	tState, rState, gain0 := s.endpointTerms()

	var h complex128
	switch {
	case s.Surface == nil:
		// Direct line of sight only.
		h += s.losTerm(tState, rState, gain0, s.directDistance())
	case s.Mode == metasurface.Transmissive:
		h += s.throughSurfaceTerm(tState, rState, gain0)
	default: // Reflective
		h += s.losTerm(tState, rState, gain0, s.Geom.TxRx)
		h += s.reflectedTerm(tState, rState, gain0)
	}
	h += s.multipathTerms(tState, rState)
	return h
}

// directDistance returns the Tx–Rx separation used for the no-surface
// baseline: TxRx when set for reflective scenes, otherwise the through
// geometry's total.
func (s *Scene) directDistance() float64 {
	if s.Geom.TxSurface > 0 && s.Geom.SurfaceRx > 0 && s.Mode == metasurface.Transmissive {
		return s.Geom.TxSurface + s.Geom.SurfaceRx
	}
	return s.Geom.TxRx
}

// losTerm is a free-space path with no polarization transformation;
// gain0 is the cached boresight gain product from endpointTerms.
func (s *Scene) losTerm(t, r jones.Vector, gain0, d float64) complex128 {
	amp := s.pathAmplitude(d)
	return amp * complex(gain0, 0) * r.Dot(t)
}

// throughSurfaceTerm is the transmissive path: Tx → surface → Rx with the
// surface's Jones matrix applied, plus the surface↔Tx standing-wave
// correction that shifts the optimal bias with distance (Fig. 15's
// distance-dependent heatmaps).
func (s *Scene) throughSurfaceTerm(t, r jones.Vector, gain0 float64) complex128 {
	d1, d2 := s.Geom.TxSurface, s.Geom.SurfaceRx
	m := s.Surface.JonesTransmissive(s.FreqHz)
	amp := s.pathAmplitude(d1 + d2)
	direct := amp * complex(gain0, 0) * r.Dot(m.MulVec(t))
	// Standing wave: the surface's front face reflects part of the
	// incident wave back to the Tx antenna, which re-reflects it toward
	// the surface with an extra 2·d1 of travel. The product of the two
	// reflection coefficients modulates the through field.
	gamma := s.Surface.FrontReflection(s.FreqHz) * complex(s.TxReflection, 0)
	sw := gamma * cmplx.Rect(1, -2*units.WaveNumber(s.FreqHz)*d1)
	return direct * (1 + sw)
}

// reflectedTerm is the surface bounce path of the reflective deployment:
// by image theory over a large flat reflector the spreading distance is
// the sum of both legs.
func (s *Scene) reflectedTerm(t, r jones.Vector, gain0 float64) complex128 {
	d := s.Geom.TxSurface + s.Geom.SurfaceRx
	m := s.Surface.JonesReflective(s.FreqHz)
	amp := s.pathAmplitude(d)
	return amp * complex(gain0, 0) * r.Dot(m.MulVec(t))
}

// multipathTerms sums the environment's scattered paths. Directional
// antennas suppress off-boresight bounces through their pattern; the
// per-scatterer polarization matrices and gains come from the scene's
// term cache.
func (s *Scene) multipathTerms(t, r jones.Vector) complex128 {
	var h complex128
	base := s.directDistance()
	jm, gain := s.scattererTerms()
	for i, sc := range s.Env.Scatterers {
		d := base + sc.ExtraPathM
		amp := s.pathAmplitude(d) * complex(sc.GainLinear, 0)
		h += amp * complex(gain[i], 0) * r.Dot(jm[i].MulVec(t))
	}
	return h
}

// scattererJones builds the polarization transformation of a bounce:
// rotation plus a depolarizing leak.
func scattererJones(sc Scatterer) mat2.Mat {
	rot := mat2.Rotation(sc.PolRotation)
	depol := mat2.Mat{
		A: complex(1-sc.Depol/2, 0), B: complex(0, sc.Depol/2),
		C: complex(0, sc.Depol/2), D: complex(1-sc.Depol/2, 0),
	}
	return rot.Mul(depol)
}

// ReceivedPowerW returns the noiseless received signal power in watts.
func (s *Scene) ReceivedPowerW() float64 {
	h := s.FieldTransfer()
	mag := cmplx.Abs(h)
	return s.TxPowerW * mag * mag
}

// ReceivedPowerDBm returns ReceivedPowerW in dBm.
func (s *Scene) ReceivedPowerDBm() float64 {
	return units.WattsToDBm(s.ReceivedPowerW())
}

// NoisePowerW returns the effective receiver noise power: thermal noise
// over the noise bandwidth, degraded by the noise figure, plus the
// interference floor when configured.
func (s *Scene) NoisePowerW() float64 {
	n := units.ThermalNoiseWatts(s.NoiseBandwidthHz) * units.DBToLinear(s.NoiseFigureDB)
	if !math.IsInf(s.InterferenceFloorDBm, -1) && s.InterferenceFloorDBm != 0 {
		n += units.DBmToWatts(s.InterferenceFloorDBm)
	}
	return n
}

// SNR returns the true (estimator-independent) linear SNR.
func (s *Scene) SNR() float64 { return s.ReceivedPowerW() / s.NoisePowerW() }

// MeasuredSNR returns the SNR the receiver's estimator reports: the true
// ratio compressed by the multiplicative measurement floor, saturating at
// 1/MeasurementSaturation for strong signals. With saturation 0 this is
// the true SNR.
func (s *Scene) MeasuredSNR() float64 {
	pr := s.ReceivedPowerW()
	return pr / (s.NoisePowerW() + s.MeasurementSaturation*pr)
}

// SpectralEfficiency returns log2(1+MeasuredSNR) in bit/s/Hz — the
// "capacity" metric of Figs. 18/19/22.
func (s *Scene) SpectralEfficiency() float64 {
	return units.SpectralEfficiency(s.MeasuredSNR())
}

// CapacityBps returns the Shannon capacity over the noise bandwidth using
// the measured SNR.
func (s *Scene) CapacityBps() float64 {
	return units.ShannonCapacity(s.NoiseBandwidthHz, s.MeasuredSNR())
}

// DefaultScene returns a ready-to-evaluate controlled-experiment scene:
// USRP endpoints with directional patches in a mismatched (orthogonal)
// configuration behind absorber, 10 mW transmit power at the paper's
// default carrier, with the surface legs split evenly.
func DefaultScene(surface *metasurface.Surface, txRx float64) *Scene {
	return &Scene{
		FreqHz:                units.DefaultCarrierHz,
		Tx:                    Endpoint{Antenna: antenna.DirectionalPatch, Orientation: math.Pi / 2},
		Rx:                    Endpoint{Antenna: antenna.DirectionalPatch, Orientation: 0},
		TxPowerW:              10e-3,
		Geom:                  Geometry{TxRx: txRx, TxSurface: txRx / 2, SurfaceRx: txRx / 2},
		Surface:               surface,
		Mode:                  metasurface.Transmissive,
		Env:                   Absorber(),
		NoiseBandwidthHz:      1e6,
		NoiseFigureDB:         6,
		InterferenceFloorDBm:  -60,
		MeasurementSaturation: 1.7,
		TxReflection:          0.35,
	}
}
