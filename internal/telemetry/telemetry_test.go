package telemetry

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSerializeDecodeRoundTrip(t *testing.T) {
	in := Report{Seq: 42, Timestamp: 1234567 * time.Microsecond, RSSIdBm: -47.125, Flags: FlagSweepActive}
	buf := make([]byte, FrameLen)
	n, err := in.SerializeTo(buf)
	if err != nil || n != FrameLen {
		t.Fatalf("serialize: %d, %v", n, err)
	}
	var out Report
	if err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Timestamp != in.Timestamp || out.Flags != in.Flags {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
	if math.Abs(out.RSSIdBm-in.RSSIdBm) > 0.001 {
		t.Errorf("RSSI %v vs %v", out.RSSIdBm, in.RSSIdBm)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint32, micros uint32, milli int32, flags uint16) bool {
		in := Report{
			Seq:       seq,
			Timestamp: time.Duration(micros) * time.Microsecond,
			RSSIdBm:   float64(milli) / 1000,
			Flags:     flags,
		}
		buf := make([]byte, FrameLen)
		if _, err := in.SerializeTo(buf); err != nil {
			return false
		}
		var out Report
		if err := out.DecodeFromBytes(buf); err != nil {
			return false
		}
		return out.Seq == in.Seq && out.Timestamp == in.Timestamp &&
			out.Flags == in.Flags && math.Abs(out.RSSIdBm-in.RSSIdBm) < 0.0011
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAppend(t *testing.T) {
	r := Report{Seq: 1, RSSIdBm: -50}
	buf, err := r.Append([]byte{0xAA})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1+FrameLen || buf[0] != 0xAA {
		t.Errorf("append shape: %d bytes", len(buf))
	}
	var out Report
	if err := out.DecodeFromBytes(buf[1:]); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := make([]byte, FrameLen)
	r := Report{Seq: 7, RSSIdBm: -33}
	if _, err := r.SerializeTo(good); err != nil {
		t.Fatal(err)
	}
	var out Report
	// Short.
	if err := out.DecodeFromBytes(good[:10]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short error = %v", err)
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if err := out.DecodeFromBytes(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic error = %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[1] = 99
	if err := out.DecodeFromBytes(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version error = %v", err)
	}
	// Flipped payload bit breaks the CRC.
	bad = append([]byte(nil), good...)
	bad[17] ^= 0x01
	if err := out.DecodeFromBytes(bad); !errors.Is(err, ErrBadCRC) {
		t.Errorf("crc error = %v", err)
	}
}

func TestSerializeErrors(t *testing.T) {
	r := Report{RSSIdBm: -50}
	if _, err := r.SerializeTo(make([]byte, 10)); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short buffer error = %v", err)
	}
	r.RSSIdBm = math.NaN()
	if _, err := r.SerializeTo(make([]byte, FrameLen)); err == nil {
		t.Error("NaN RSSI should fail")
	}
	r.RSSIdBm = 1e10
	if _, err := r.SerializeTo(make([]byte, FrameLen)); err == nil {
		t.Error("absurd RSSI should fail")
	}
}

func TestTrailingBytesTolerated(t *testing.T) {
	buf := make([]byte, FrameLen+8)
	r := Report{Seq: 3, RSSIdBm: -60}
	if _, err := r.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := out.DecodeFromBytes(buf); err != nil {
		t.Errorf("padding should be tolerated: %v", err)
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	rep, err := NewReporter(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	for i := 0; i < 10; i++ {
		if err := rep.Report(time.Duration(i)*time.Millisecond, -40-float64(i), FlagSweepActive); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		got, err := col.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint32(i) {
			t.Errorf("seq = %d, want %d", got.Seq, i)
		}
		if math.Abs(got.RSSIdBm-(-40-float64(i))) > 0.01 {
			t.Errorf("rssi[%d] = %v", i, got.RSSIdBm)
		}
	}
	if col.Malformed() != 0 || col.Lost() != 0 {
		t.Errorf("malformed=%d lost=%d", col.Malformed(), col.Lost())
	}
}

func TestCollectorRejectsGarbage(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	rep, err := NewReporter(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Hand-roll garbage datagrams on a raw socket.
	raw, err := NewReporter(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.conn.Write([]byte("not a frame at all........")); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Then one good frame to sequence the test.
	if err := rep.Report(time.Millisecond, -50, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := col.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.RSSIdBm != -50 {
		t.Errorf("good frame rssi = %v", got.RSSIdBm)
	}
	if col.Malformed() < 2 {
		t.Errorf("malformed = %d, want ≥ 2", col.Malformed())
	}
}

func TestNextHonorsContext(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := col.Next(ctx); err == nil {
		t.Error("Next should fail on context timeout")
	}
}

func TestReporterBadAddress(t *testing.T) {
	if _, err := NewReporter("this is not an address"); err == nil {
		t.Error("bad address should fail")
	}
}

func TestStringer(t *testing.T) {
	r := Report{Seq: 9, RSSIdBm: -41.5}
	if !strings.Contains(r.String(), "-41.5") {
		t.Errorf("String = %q", r.String())
	}
}
