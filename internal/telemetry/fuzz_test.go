package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// TestDecodeNeverPanicsOnGarbage hammers the decoder with random bytes:
// a malformed datagram must produce an error, never a panic or a bogus
// accept (the CRC gate).
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	accepted := 0
	for i := 0; i < 50000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		var r Report
		if err := r.DecodeFromBytes(buf); err == nil {
			accepted++
		}
	}
	// A random 24+ byte buffer passes magic+version+CRC with
	// probability ≈ 2^-48; zero accepts expected over 50k trials.
	if accepted != 0 {
		t.Errorf("decoder accepted %d random buffers", accepted)
	}
}

// TestDecodeBitFlipsAlwaysCaught flips every single bit of a valid frame:
// the CRC (plus header checks) must catch each one.
func TestDecodeBitFlipsAlwaysCaught(t *testing.T) {
	good := make([]byte, FrameLen)
	r := Report{Seq: 1234, Timestamp: 5 * time.Second, RSSIdBm: -47.25, Flags: FlagSweepActive}
	if _, err := r.SerializeTo(good); err != nil {
		t.Fatal(err)
	}
	for byteIdx := 0; byteIdx < FrameLen; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), good...)
			mutated[byteIdx] ^= 1 << bit
			var out Report
			if err := out.DecodeFromBytes(mutated); err == nil {
				t.Fatalf("single bit flip at byte %d bit %d went undetected", byteIdx, bit)
			}
		}
	}
}

// TestDecodeTruncations exercises every prefix length of a valid frame.
func TestDecodeTruncations(t *testing.T) {
	good := make([]byte, FrameLen)
	r := Report{Seq: 7, RSSIdBm: -60}
	if _, err := r.SerializeTo(good); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < FrameLen; n++ {
		var out Report
		if err := out.DecodeFromBytes(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	var out Report
	if err := out.DecodeFromBytes(good); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}
