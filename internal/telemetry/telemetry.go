// Package telemetry carries receiver→controller RSSI reports: the feedback
// half of LLAMA's control loop (Fig. 5's "Signal Power Measurements").
//
// The wire format is a compact versioned binary layer in the style of
// gopacket's DecodingLayer: explicit SerializeTo/DecodeFromBytes on a
// fixed-layout frame with a CRC-32 trailer, so malformed datagrams are
// rejected rather than misparsed. Reports travel over UDP — the loop is
// latency-sensitive and tolerates loss (a missed sample just delays the
// sweep by one switch period).
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Frame layout (big-endian), 24 bytes total:
//
//	offset  size  field
//	0       1     magic 'L'
//	1       1     version (1)
//	2       2     flags
//	4       4     sequence number
//	8       8     sample timestamp, microseconds of virtual time
//	16      4     RSSI in milli-dBm, signed (−80 dBm = −80000)
//	20      4     CRC-32 (IEEE) of bytes 0–19
const (
	frameMagic   = 'L'
	frameVersion = 1
	// FrameLen is the wire size of an RSSI report.
	FrameLen = 24
)

// Flag bits.
const (
	// FlagSaturated marks samples whose front end was clipping.
	FlagSaturated uint16 = 1 << iota
	// FlagSweepActive marks samples taken during a bias sweep, so the
	// controller can label them with voltage states (Eq. 13).
	FlagSweepActive
)

// Decoding errors.
var (
	ErrShortFrame = errors.New("telemetry: short frame")
	ErrBadMagic   = errors.New("telemetry: bad magic byte")
	ErrBadVersion = errors.New("telemetry: unsupported version")
	ErrBadCRC     = errors.New("telemetry: CRC mismatch")
)

// Report is one RSSI measurement, timestamped in the receiver's virtual
// sample clock.
type Report struct {
	// Seq increments per report; gaps reveal datagram loss.
	Seq uint32
	// Timestamp is the receiver's virtual time for the measured block.
	Timestamp time.Duration
	// RSSIdBm is the measured power.
	RSSIdBm float64
	// Flags carries the Flag* bits.
	Flags uint16
}

// SerializeTo writes the frame into buf, which must have length ≥
// FrameLen; it returns the number of bytes written. RSSI magnitudes
// beyond ±2 MdBm (absurd) are rejected rather than silently wrapped.
func (r *Report) SerializeTo(buf []byte) (int, error) {
	if len(buf) < FrameLen {
		return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrShortFrame, FrameLen, len(buf))
	}
	milli := r.RSSIdBm * 1000
	if math.IsNaN(milli) || milli > math.MaxInt32 || milli < math.MinInt32 {
		return 0, fmt.Errorf("telemetry: RSSI %g dBm not encodable", r.RSSIdBm)
	}
	buf[0] = frameMagic
	buf[1] = frameVersion
	binary.BigEndian.PutUint16(buf[2:4], r.Flags)
	binary.BigEndian.PutUint32(buf[4:8], r.Seq)
	binary.BigEndian.PutUint64(buf[8:16], uint64(r.Timestamp/time.Microsecond))
	binary.BigEndian.PutUint32(buf[16:20], uint32(int32(milli)))
	crc := crc32.ChecksumIEEE(buf[:20])
	binary.BigEndian.PutUint32(buf[20:24], crc)
	return FrameLen, nil
}

// Append serializes the report onto the end of dst and returns the
// extended slice.
func (r *Report) Append(dst []byte) ([]byte, error) {
	n := len(dst)
	dst = append(dst, make([]byte, FrameLen)...)
	if _, err := r.SerializeTo(dst[n:]); err != nil {
		return dst[:n], err
	}
	return dst, nil
}

// DecodeFromBytes parses a frame in place, validating magic, version and
// CRC. Extra trailing bytes are ignored (UDP padding tolerance).
func (r *Report) DecodeFromBytes(buf []byte) error {
	if len(buf) < FrameLen {
		return fmt.Errorf("%w: %d bytes", ErrShortFrame, len(buf))
	}
	if buf[0] != frameMagic {
		return fmt.Errorf("%w: 0x%02x", ErrBadMagic, buf[0])
	}
	if buf[1] != frameVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, buf[1])
	}
	want := binary.BigEndian.Uint32(buf[20:24])
	if got := crc32.ChecksumIEEE(buf[:20]); got != want {
		return fmt.Errorf("%w: got %08x want %08x", ErrBadCRC, got, want)
	}
	r.Flags = binary.BigEndian.Uint16(buf[2:4])
	r.Seq = binary.BigEndian.Uint32(buf[4:8])
	r.Timestamp = time.Duration(binary.BigEndian.Uint64(buf[8:16])) * time.Microsecond
	r.RSSIdBm = float64(int32(binary.BigEndian.Uint32(buf[16:20]))) / 1000
	return nil
}

// String implements fmt.Stringer.
func (r *Report) String() string {
	return fmt.Sprintf("rssi[%d] %.2f dBm @%v flags=%04x", r.Seq, r.RSSIdBm, r.Timestamp, r.Flags)
}
