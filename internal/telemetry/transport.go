package telemetry

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Reporter sends RSSI reports to a collector over UDP. It is the
// receiver-side half of Fig. 5's feedback arrow.
type Reporter struct {
	conn *net.UDPConn
	mu   sync.Mutex
	seq  uint32
}

// NewReporter dials the collector address ("127.0.0.1:port").
func NewReporter(addr string) (*Reporter, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("telemetry: dial %s: %w", addr, err)
	}
	return &Reporter{conn: conn}, nil
}

// Report sends one measurement, stamping the next sequence number. The
// lock covers only the sequence stamp and serialization into a local
// frame — the socket write happens outside it, so one slow send never
// queues other reporters behind the kernel. A failed send therefore
// burns its sequence number; the collector counts the gap as a lost
// report, which is what a failed send is.
func (r *Reporter) Report(timestamp time.Duration, rssiDBm float64, flags uint16) error {
	var buf [FrameLen]byte
	r.mu.Lock()
	rep := Report{Seq: r.seq, Timestamp: timestamp, RSSIdBm: rssiDBm, Flags: flags}
	n, err := rep.SerializeTo(buf[:])
	if err != nil {
		r.mu.Unlock()
		return err
	}
	r.seq++
	r.mu.Unlock()
	if _, err := r.conn.Write(buf[:n]); err != nil {
		return fmt.Errorf("telemetry: send: %w", err)
	}
	return nil
}

// Close releases the socket.
func (r *Reporter) Close() error { return r.conn.Close() }

// Collector receives reports on a UDP socket and delivers them on a
// channel; malformed datagrams are counted, not delivered.
type Collector struct {
	conn    *net.UDPConn
	reports chan Report

	mu        sync.Mutex
	malformed int
	lost      int
	lastSeq   uint32
	seenAny   bool

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewCollector binds addr ("127.0.0.1:0" for ephemeral) and starts the
// receive loop. The channel buffers up to 1024 reports; overflow drops
// the oldest behaviour is NOT used — instead new reports are dropped and
// counted as lost, preserving timestamp monotonicity for the sweep
// synchronizer.
func NewCollector(addr string) (*Collector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	c := &Collector{
		conn:    conn,
		reports: make(chan Report, 1024),
		closed:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// Addr returns the bound address for reporters to dial.
func (c *Collector) Addr() string { return c.conn.LocalAddr().String() }

// Reports returns the delivery channel. It is closed when the collector
// shuts down.
func (c *Collector) Reports() <-chan Report { return c.reports }

// Next waits for one report, honoring ctx.
func (c *Collector) Next(ctx context.Context) (Report, error) {
	select {
	case rep, ok := <-c.reports:
		if !ok {
			return Report{}, fmt.Errorf("telemetry: collector closed")
		}
		return rep, nil
	case <-ctx.Done():
		return Report{}, fmt.Errorf("telemetry: next: %w", ctx.Err())
	}
}

// Malformed returns the count of datagrams rejected by decoding.
func (c *Collector) Malformed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.malformed
}

// Lost returns the count of reports inferred lost from sequence gaps plus
// reports dropped on channel overflow.
func (c *Collector) Lost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

func (c *Collector) recvLoop() {
	defer c.wg.Done()
	defer close(c.reports)
	buf := make([]byte, 2048)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var rep Report
		if err := rep.DecodeFromBytes(buf[:n]); err != nil {
			c.mu.Lock()
			c.malformed++
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		if c.seenAny && rep.Seq > c.lastSeq+1 {
			c.lost += int(rep.Seq - c.lastSeq - 1)
		}
		if !c.seenAny || rep.Seq > c.lastSeq {
			c.lastSeq = rep.Seq
			c.seenAny = true
		}
		c.mu.Unlock()
		select {
		case c.reports <- rep:
		default:
			c.mu.Lock()
			c.lost++
			c.mu.Unlock()
		}
	}
}

// Close shuts the socket and waits for the receive loop.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
