package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBLinearRoundTrip(t *testing.T) {
	for _, db := range []float64{-40, -10, -3, 0, 3, 10, 30} {
		got := LinearToDB(DBToLinear(db))
		if !ApproxEqual(got, db, 1e-9) {
			t.Errorf("round trip %v dB: got %v", db, got)
		}
	}
}

func TestDBLinearKnownValues(t *testing.T) {
	cases := []struct {
		db  float64
		lin float64
	}{
		{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {3.0102999566, 2},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); !ApproxEqual(got, c.lin, 1e-6) {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-1), -1) {
		t.Error("LinearToDB(-1) should be -Inf")
	}
	if !math.IsInf(WattsToDBm(0), -1) {
		t.Error("WattsToDBm(0) should be -Inf")
	}
}

func TestDBmWatts(t *testing.T) {
	cases := []struct {
		dbm float64
		w   float64
	}{
		{0, 1e-3}, {30, 1}, {-30, 1e-6}, {20, 0.1}, {10, 0.01},
	}
	for _, c := range cases {
		if got := DBmToWatts(c.dbm); !ApproxEqual(got, c.w, c.w*1e-9+1e-15) {
			t.Errorf("DBmToWatts(%v) = %v, want %v", c.dbm, got, c.w)
		}
		if got := WattsToDBm(c.w); !ApproxEqual(got, c.dbm, 1e-9) {
			t.Errorf("WattsToDBm(%v) = %v, want %v", c.w, got, c.dbm)
		}
	}
}

func TestMilliwattConversions(t *testing.T) {
	if got := MilliwattsToDBm(1); !ApproxEqual(got, 0, 1e-12) {
		t.Errorf("1 mW = %v dBm, want 0", got)
	}
	if got := DBmToMilliwatts(3.0102999566); !ApproxEqual(got, 2, 1e-6) {
		t.Errorf("3.01 dBm = %v mW, want 2", got)
	}
}

func TestFieldRatioDB(t *testing.T) {
	if got := FieldRatioToDB(10); !ApproxEqual(got, 20, 1e-12) {
		t.Errorf("FieldRatioToDB(10) = %v, want 20", got)
	}
	if got := DBToFieldRatio(20); !ApproxEqual(got, 10, 1e-9) {
		t.Errorf("DBToFieldRatio(20) = %v, want 10", got)
	}
	if !math.IsInf(FieldRatioToDB(0), -1) {
		t.Error("FieldRatioToDB(0) should be -Inf")
	}
}

func TestWavelength(t *testing.T) {
	// 2.4 GHz is a 12.5 cm wave, the half-wavelength step used in Fig. 15
	// is ~6 cm.
	got := Wavelength(2.4e9)
	if !ApproxEqual(got, 0.12491, 1e-4) {
		t.Errorf("Wavelength(2.4 GHz) = %v, want ~0.1249 m", got)
	}
	if got := Frequency(Wavelength(2.44e9)); !ApproxEqual(got, 2.44e9, 1) {
		t.Errorf("Frequency(Wavelength(f)) = %v, want 2.44e9", got)
	}
}

func TestWavelengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wavelength(0) should panic")
		}
	}()
	Wavelength(0)
}

func TestFrequencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Frequency(-1) should panic")
		}
	}()
	Frequency(-1)
}

func TestAngleHelpers(t *testing.T) {
	if got := Degrees(math.Pi); !ApproxEqual(got, 180, 1e-12) {
		t.Errorf("Degrees(pi) = %v", got)
	}
	if got := Radians(90); !ApproxEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("Radians(90) = %v", got)
	}
	if got := NormalizeAngle(3 * math.Pi); !ApproxEqual(got, math.Pi, 1e-9) {
		t.Errorf("NormalizeAngle(3pi) = %v, want pi", got)
	}
	if got := NormalizeAngleDeg(-270); !ApproxEqual(got, 90, 1e-9) {
		t.Errorf("NormalizeAngleDeg(-270) = %v, want 90", got)
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
			return true
		}
		got := NormalizeAngle(x)
		if got <= -math.Pi || got > math.Pi {
			return false
		}
		// Same angle modulo 2π.
		diff := math.Mod(x-got, 2*math.Pi)
		diff = math.Abs(diff)
		return diff < 1e-6 || math.Abs(diff-2*math.Pi) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalNoise(t *testing.T) {
	// kTB for 1 MHz at 290 K is the textbook -114 dBm.
	got := ThermalNoiseDBm(1e6)
	if !ApproxEqual(got, -113.98, 0.05) {
		t.Errorf("ThermalNoiseDBm(1 MHz) = %v, want ~-114", got)
	}
	// 1 Hz: -174 dBm/Hz.
	got = ThermalNoiseDBm(1)
	if !ApproxEqual(got, -173.98, 0.05) {
		t.Errorf("ThermalNoiseDBm(1 Hz) = %v, want ~-174", got)
	}
}

func TestShannonCapacity(t *testing.T) {
	// SNR 0 dB over 1 Hz is exactly 1 bit/s.
	if got := ShannonCapacity(1, 1); !ApproxEqual(got, 1, 1e-12) {
		t.Errorf("C(1 Hz, 0 dB) = %v, want 1", got)
	}
	if got := ShannonCapacity(1e6, 3); !ApproxEqual(got, 2e6, 1e-6*2e6) {
		t.Errorf("C(1 MHz, SNR=3) = %v, want 2e6", got)
	}
	if got := ShannonCapacity(1e6, -1); got != 0 {
		t.Errorf("negative SNR capacity = %v, want 0", got)
	}
	if got := SpectralEfficiency(1); !ApproxEqual(got, 1, 1e-12) {
		t.Errorf("SpectralEfficiency(1) = %v, want 1", got)
	}
}

func TestFriis(t *testing.T) {
	// At one wavelength distance the path gain is (1/4π)².
	f := 2.44e9
	d := Wavelength(f)
	want := 1 / (16 * math.Pi * math.Pi)
	if got := FriisPathGain(f, d); !ApproxEqual(got, want, want*1e-9) {
		t.Errorf("FriisPathGain at 1λ = %v, want %v", got, want)
	}
	// Doubling distance costs 6.02 dB.
	g1 := FriisPathGain(f, 1)
	g2 := FriisPathGain(f, 2)
	if got := LinearToDB(g1 / g2); !ApproxEqual(got, 6.0206, 1e-3) {
		t.Errorf("distance doubling = %v dB, want 6.02", got)
	}
	// Antenna gains multiply linearly.
	pr := FriisReceivedPower(2, 4, 8, f, 3)
	if want := 2 * 4 * 8 * FriisPathGain(f, 3); !ApproxEqual(pr, want, want*1e-12) {
		t.Errorf("FriisReceivedPower = %v, want %v", pr, want)
	}
}

func TestFriisPanicsOnZeroDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FriisReceivedPower(d=0) should panic")
		}
	}()
	FriisReceivedPower(1, 1, 1, 2.4e9, 0)
}

func TestFriisRangeExtension(t *testing.T) {
	// The paper: 15 dB link gain extends range by up to 5.6×.
	if got := FriisRangeExtension(15); !ApproxEqual(got, 5.62, 0.01) {
		t.Errorf("FriisRangeExtension(15) = %v, want ~5.62", got)
	}
	if got := FriisRangeExtension(0); !ApproxEqual(got, 1, 1e-12) {
		t.Errorf("FriisRangeExtension(0) = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Errorf("Clamp(5,0,10) = %v", got)
	}
	if got := Clamp(-5, 0, 10); got != 0 {
		t.Errorf("Clamp(-5,0,10) = %v", got)
	}
	if got := Clamp(15, 0, 10); got != 10 {
		t.Errorf("Clamp(15,0,10) = %v", got)
	}
}

func TestClampPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp with lo > hi should panic")
		}
	}()
	Clamp(0, 10, 0)
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(p)
		if p == 0 || math.IsInf(p, 0) || math.IsNaN(p) || p > 1e300 || p < 1e-300 {
			return true
		}
		back := DBToLinear(LinearToDB(p))
		return math.Abs(back-p) <= p*1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
