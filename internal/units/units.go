// Package units provides the unit conversions and physical constants used
// throughout the LLAMA simulator.
//
// Internally the simulator works in SI units (watts, hertz, meters, seconds).
// Decibel quantities appear only at API boundaries — experiment outputs,
// telemetry reports, and instrument readbacks — mirroring how the paper
// reports results (dBm received power, dB efficiency).
package units

import "math"

// Physical constants.
const (
	// C is the speed of light in vacuum, m/s.
	C = 299792458.0
	// Boltzmann is the Boltzmann constant, J/K.
	Boltzmann = 1.380649e-23
	// RoomTemperatureK is the reference noise temperature, kelvin.
	RoomTemperatureK = 290.0
	// Z0FreeSpace is the impedance of free space, ohms.
	Z0FreeSpace = 376.730313668
)

// ISM band boundaries and LLAMA defaults (Hz). The paper targets the
// 2.4 GHz ISM band and operates the USRP link at 2.44 GHz by default.
const (
	ISMBandLow    = 2.400e9
	ISMBandHigh   = 2.500e9
	ISMBandCenter = 2.450e9
	// DefaultCarrierHz is the default USRP center frequency used in the
	// paper's controlled experiments (§4).
	DefaultCarrierHz = 2.440e9
	// RFIDBandCenter is the 900 MHz band center the paper reports the
	// rescaled design for (§3.2).
	RFIDBandCenter = 0.915e9
)

// DBToLinear converts a power ratio expressed in dB to a linear ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB. A non-positive ratio
// returns -Inf, matching the mathematical limit.
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// DBmToWatts converts a power level in dBm to watts.
func DBmToWatts(dbm float64) float64 { return math.Pow(10, dbm/10) * 1e-3 }

// WattsToDBm converts a power level in watts to dBm. Non-positive power
// returns -Inf.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}

// MilliwattsToDBm converts milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 { return WattsToDBm(mw * 1e-3) }

// DBmToMilliwatts converts dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return DBmToWatts(dbm) * 1e3 }

// FieldRatioToDB converts a field (voltage/current) ratio to dB using the
// 20·log10 convention.
func FieldRatioToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// DBToFieldRatio converts dB to a field (voltage) ratio via 10^(db/20).
func DBToFieldRatio(db float64) float64 { return math.Pow(10, db/20) }

// Wavelength returns the free-space wavelength in meters for frequency f in
// hertz. It panics if f <= 0 because no physical carrier has such a
// frequency, and silently producing ±Inf would corrupt link-budget math.
func Wavelength(f float64) float64 {
	if f <= 0 {
		panic("units: non-positive frequency")
	}
	return C / f
}

// Frequency returns the frequency in hertz for a free-space wavelength in
// meters. It panics if lambda <= 0.
func Frequency(lambda float64) float64 {
	if lambda <= 0 {
		panic("units: non-positive wavelength")
	}
	return C / lambda
}

// AngularFrequency returns ω = 2πf.
func AngularFrequency(f float64) float64 { return 2 * math.Pi * f }

// WaveNumber returns the free-space wavenumber k = 2π/λ for frequency f.
func WaveNumber(f float64) float64 { return 2 * math.Pi / Wavelength(f) }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// NormalizeAngle wraps an angle in radians into (-π, π].
func NormalizeAngle(rad float64) float64 {
	for rad > math.Pi {
		rad -= 2 * math.Pi
	}
	for rad <= -math.Pi {
		rad += 2 * math.Pi
	}
	return rad
}

// NormalizeAngleDeg wraps an angle in degrees into (-180, 180].
func NormalizeAngleDeg(deg float64) float64 {
	return Degrees(NormalizeAngle(Radians(deg)))
}

// ThermalNoiseWatts returns kTB thermal noise power for bandwidth bw (Hz) at
// room temperature.
func ThermalNoiseWatts(bw float64) float64 {
	return Boltzmann * RoomTemperatureK * bw
}

// ThermalNoiseDBm returns kTB noise power in dBm for bandwidth bw (Hz).
func ThermalNoiseDBm(bw float64) float64 {
	return WattsToDBm(ThermalNoiseWatts(bw))
}

// ShannonCapacity returns the Shannon capacity in bit/s for bandwidth bw
// (Hz) and linear SNR. Negative SNR is clamped to zero capacity.
func ShannonCapacity(bw, snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return bw * math.Log2(1+snr)
}

// SpectralEfficiency returns the Shannon spectral efficiency (bit/s/Hz) for
// a linear SNR. The paper's Figs. 18/19/22 report this quantity (labelled
// "Mbps/Hz" there).
func SpectralEfficiency(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return math.Log2(1 + snr)
}

// FriisReceivedPower returns the received power (watts) of a free-space
// link via the Friis transmission equation.
//
//	Pr = Pt · Gt · Gr · (λ / 4πd)²
//
// pt is transmit power in watts, gt/gr are linear antenna gains, f is the
// carrier in Hz and d the distance in meters. It panics on non-positive d,
// because a zero-length path has no defined far field.
func FriisReceivedPower(pt, gt, gr, f, d float64) float64 {
	if d <= 0 {
		panic("units: non-positive link distance")
	}
	lambda := Wavelength(f)
	factor := lambda / (4 * math.Pi * d)
	return pt * gt * gr * factor * factor
}

// FriisPathGain returns the (dimensionless, <1) free-space path gain
// (λ/4πd)² between isotropic antennas.
func FriisPathGain(f, d float64) float64 {
	return FriisReceivedPower(1, 1, 1, f, d)
}

// FriisRangeExtension returns the factor by which the maximum link distance
// grows when the link budget improves by gainDB, per the Friis equation
// (distance scales as the square root of the power ratio). The paper quotes
// 15 dB → 5.6×.
func FriisRangeExtension(gainDB float64) float64 {
	return math.Sqrt(DBToLinear(gainDB))
}

// Clamp limits v to [lo, hi]. It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("units: clamp with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ApproxEqual reports whether a and b are equal within tol (absolute).
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
