// Package materials models the PCB dielectric substrates and conductors the
// LLAMA metasurface can be built from, and the per-unit-area cost model that
// motivates the paper's FR4 design.
//
// The paper's central materials argument: Rogers 5880 (loss tangent 0.0009)
// gives excellent transmission efficiency but is cost-prohibitive at wall
// scale, while FR4 (loss tangent 0.02) is ~20× lossier per unit thickness —
// so the structure, not the substrate, must be optimized (fewer, thinner
// phase-shifter layers).
package materials

import (
	"fmt"
	"math"

	"github.com/llama-surface/llama/internal/units"
)

// Dielectric describes a PCB substrate material.
type Dielectric struct {
	// Name identifies the material in reports.
	Name string
	// EpsilonR is the relative permittivity (real part).
	EpsilonR float64
	// LossTangent is tan δ, the ratio of the imaginary to real part of
	// the permittivity; dielectric loss grows linearly with it.
	LossTangent float64
	// CostPerM2PerLayer is the board cost in USD per square meter per
	// copper-clad layer, an aggregate of laminate + fabrication cost used
	// by the BoM model.
	CostPerM2PerLayer float64
}

// Conductor describes a metallization layer.
type Conductor struct {
	// Name identifies the metal.
	Name string
	// Conductivity in S/m.
	Conductivity float64
}

// Standard materials. FR4 and Rogers 5880 parameters follow the datasheets
// the paper cites ([13], [30]); costs are the scale used for the paper's
// $540-for-all-PCB-layers prototype figure.
var (
	// FR4 is the cheap glass-epoxy laminate LLAMA uses.
	FR4 = Dielectric{Name: "FR4", EpsilonR: 4.4, LossTangent: 0.020, CostPerM2PerLayer: 150}
	// Rogers5880 is the high-performance PTFE laminate used by the
	// 10 GHz design in [36] that LLAMA's design replaces.
	Rogers5880 = Dielectric{Name: "Rogers 5880", EpsilonR: 2.20, LossTangent: 0.0009, CostPerM2PerLayer: 3200}
	// Copper is standard PCB metallization.
	Copper = Conductor{Name: "copper", Conductivity: 5.8e7}
)

// Validate reports an error when the dielectric parameters are unphysical.
func (d Dielectric) Validate() error {
	if d.EpsilonR < 1 {
		return fmt.Errorf("materials: %s: εr %.3f < 1", d.Name, d.EpsilonR)
	}
	if d.LossTangent < 0 {
		return fmt.Errorf("materials: %s: negative loss tangent %g", d.Name, d.LossTangent)
	}
	if d.CostPerM2PerLayer < 0 {
		return fmt.Errorf("materials: %s: negative cost", d.Name)
	}
	return nil
}

// WavelengthIn returns the wavelength in the dielectric at frequency f:
// λ0/√εr.
func (d Dielectric) WavelengthIn(f float64) float64 {
	return units.Wavelength(f) / math.Sqrt(d.EpsilonR)
}

// PhaseConstant returns β = ω√(με) = k0·√εr in rad/m at frequency f.
func (d Dielectric) PhaseConstant(f float64) float64 {
	return units.WaveNumber(f) * math.Sqrt(d.EpsilonR)
}

// DielectricAttenuation returns the dielectric attenuation constant α_d in
// nepers per meter for a wave travelling through the bulk material:
//
//	α_d = (k0·√εr·tanδ) / 2
//
// This is the small-loss approximation (tanδ ≪ 1), the regime of both FR4
// and Rogers laminates.
func (d Dielectric) DielectricAttenuation(f float64) float64 {
	return d.PhaseConstant(f) * d.LossTangent / 2
}

// DielectricLossDB returns the one-way bulk dielectric loss in dB (≥ 0) of
// a slab of thickness t meters at frequency f.
func (d Dielectric) DielectricLossDB(f, t float64) float64 {
	if t < 0 {
		panic("materials: negative thickness")
	}
	// dB = 20·log10(e) · α · l  =  8.686 · α · l
	return 20 * math.Log10(math.E) * d.DielectricAttenuation(f) * t
}

// IntrinsicImpedance returns the wave impedance η = η0/√εr of the bulk
// dielectric.
func (d Dielectric) IntrinsicImpedance() float64 {
	return units.Z0FreeSpace / math.Sqrt(d.EpsilonR)
}

// PropagationConstant returns the complex γ = α + jβ of the bulk
// dielectric at frequency f.
func (d Dielectric) PropagationConstant(f float64) complex128 {
	return complex(d.DielectricAttenuation(f), d.PhaseConstant(f))
}

// String implements fmt.Stringer.
func (d Dielectric) String() string {
	return fmt.Sprintf("%s (εr=%.2f, tanδ=%.4f)", d.Name, d.EpsilonR, d.LossTangent)
}

// SkinDepth returns the conductor's skin depth in meters at frequency f.
func (c Conductor) SkinDepth(f float64) float64 {
	if f <= 0 {
		panic("materials: non-positive frequency")
	}
	mu0 := 4 * math.Pi * 1e-7
	return 1 / math.Sqrt(math.Pi*f*mu0*c.Conductivity)
}

// SurfaceResistance returns Rs = 1/(σ·δs) in ohms per square at frequency
// f, the quantity that sets conductor loss in printed patterns.
func (c Conductor) SurfaceResistance(f float64) float64 {
	return 1 / (c.Conductivity * c.SkinDepth(f))
}

// ConductorAttenuation returns the attenuation constant α_c in nepers per
// meter of a quasi-TEM line with characteristic impedance z0 and effective
// trace width w meters:
//
//	α_c = Rs / (z0 · w)
//
// (Pozar's microstrip conductor-loss formula.) It panics on non-positive
// z0 or w.
func (c Conductor) ConductorAttenuation(f, z0, w float64) float64 {
	if z0 <= 0 || w <= 0 {
		panic("materials: conductor attenuation needs positive z0 and width")
	}
	return c.SurfaceResistance(f) / (z0 * w)
}

// Stackup describes a laminated board: a substrate material, the number of
// patterned copper layers and each dielectric layer's thickness.
type Stackup struct {
	// Substrate is the dielectric between copper layers.
	Substrate Dielectric
	// CopperLayers is the number of patterned metal layers.
	CopperLayers int
	// LayerThickness is the dielectric thickness per layer, meters.
	LayerThickness float64
	// Area is the board area in m².
	Area float64
}

// Validate reports an error for unbuildable stackups.
func (s Stackup) Validate() error {
	if err := s.Substrate.Validate(); err != nil {
		return err
	}
	if s.CopperLayers < 1 {
		return fmt.Errorf("materials: stackup needs ≥1 copper layer, have %d", s.CopperLayers)
	}
	if s.LayerThickness <= 0 {
		return fmt.Errorf("materials: non-positive layer thickness %g", s.LayerThickness)
	}
	if s.Area <= 0 {
		return fmt.Errorf("materials: non-positive area %g", s.Area)
	}
	return nil
}

// TotalDielectricThickness returns the summed dielectric thickness.
func (s Stackup) TotalDielectricThickness() float64 {
	// n copper layers sandwich n−1 dielectric layers in a single
	// laminated board; a 1-layer "stackup" is just a carrier.
	n := s.CopperLayers - 1
	if n < 1 {
		n = 1
	}
	return float64(n) * s.LayerThickness
}

// BulkLossDB returns the one-way dielectric loss through the whole stack
// at frequency f, in dB.
func (s Stackup) BulkLossDB(f float64) float64 {
	return s.Substrate.DielectricLossDB(f, s.TotalDielectricThickness())
}

// BoardCost returns the PCB cost in USD for the stackup.
func (s Stackup) BoardCost() float64 {
	return s.Substrate.CostPerM2PerLayer * float64(s.CopperLayers) * s.Area
}

// BillOfMaterials aggregates the component costs of a surface build, used
// to reproduce the paper's §4 cost accounting ($540 PCB + varactors ≈ $900
// prototype, $5/unit).
type BillOfMaterials struct {
	// PCB is the laminate + fabrication cost in USD.
	PCB float64
	// Varactors is the total varactor diode cost in USD.
	Varactors float64
	// ControlOverhead is connectors, bias tees and assembly in USD.
	ControlOverhead float64
}

// Total returns the summed cost in USD.
func (b BillOfMaterials) Total() float64 { return b.PCB + b.Varactors + b.ControlOverhead }

// PerUnit returns the cost per functional unit for a surface with n units.
// It panics when n ≤ 0.
func (b BillOfMaterials) PerUnit(n int) float64 {
	if n <= 0 {
		panic("materials: per-unit cost needs positive unit count")
	}
	return b.Total() / float64(n)
}

// String implements fmt.Stringer.
func (b BillOfMaterials) String() string {
	return fmt.Sprintf("PCB $%.0f + varactors $%.0f + control $%.0f = $%.0f",
		b.PCB, b.Varactors, b.ControlOverhead, b.Total())
}
