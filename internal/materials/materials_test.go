package materials

import (
	"math"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/units"
)

func TestStandardMaterialsValid(t *testing.T) {
	for _, d := range []Dielectric{FR4, Rogers5880} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsUnphysical(t *testing.T) {
	bad := []Dielectric{
		{Name: "eps<1", EpsilonR: 0.5, LossTangent: 0.01},
		{Name: "neg tan", EpsilonR: 2, LossTangent: -0.1},
		{Name: "neg cost", EpsilonR: 2, LossTangent: 0.1, CostPerM2PerLayer: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", d.Name)
		}
	}
}

func TestFR4LossDominatesRogers(t *testing.T) {
	// The paper's core material claim: FR4's 0.02 loss tangent is ~22×
	// Rogers 5880's 0.0009, so for equal geometry FR4 must be much
	// lossier per meter.
	f := units.ISMBandCenter
	fr4 := FR4.DielectricAttenuation(f)
	rog := Rogers5880.DielectricAttenuation(f)
	if fr4 <= rog {
		t.Fatalf("FR4 α=%v should exceed Rogers α=%v", fr4, rog)
	}
	ratio := fr4 / rog
	// tanδ ratio is 22.2; εr difference adds √(4.4/2.2)=1.414.
	if ratio < 20 || ratio > 40 {
		t.Errorf("attenuation ratio = %v, want ≈31 (22.2·√2)", ratio)
	}
}

func TestDielectricLossGrowsWithThicknessAndFrequency(t *testing.T) {
	f := units.ISMBandCenter
	thin := FR4.DielectricLossDB(f, 0.4e-3)
	thick := FR4.DielectricLossDB(f, 1.6e-3)
	if !(thick > thin) {
		t.Error("thicker slab must lose more")
	}
	if math.Abs(thick/thin-4) > 1e-9 {
		t.Errorf("loss should be linear in thickness: ratio %v", thick/thin)
	}
	lo := FR4.DielectricLossDB(2.0e9, 1e-3)
	hi := FR4.DielectricLossDB(2.8e9, 1e-3)
	if !(hi > lo) {
		t.Error("loss must grow with frequency")
	}
}

func TestDielectricLossPanicsNegativeThickness(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative thickness should panic")
		}
	}()
	FR4.DielectricLossDB(2.4e9, -1)
}

func TestWavelengthInDielectric(t *testing.T) {
	f := 2.45e9
	l0 := units.Wavelength(f)
	lfr4 := FR4.WavelengthIn(f)
	if math.Abs(lfr4-l0/math.Sqrt(4.4)) > 1e-12 {
		t.Errorf("FR4 wavelength = %v", lfr4)
	}
	if !(lfr4 < l0) {
		t.Error("wavelength must shrink in dielectric")
	}
}

func TestIntrinsicImpedance(t *testing.T) {
	// η(FR4) = 377/√4.4 ≈ 179.6 Ω
	got := FR4.IntrinsicImpedance()
	if math.Abs(got-179.6) > 0.5 {
		t.Errorf("FR4 intrinsic impedance = %v, want ≈179.6", got)
	}
}

func TestPropagationConstantConsistent(t *testing.T) {
	f := 2.44e9
	g := FR4.PropagationConstant(f)
	if real(g) != FR4.DielectricAttenuation(f) {
		t.Error("γ real part mismatch")
	}
	if imag(g) != FR4.PhaseConstant(f) {
		t.Error("γ imaginary part mismatch")
	}
}

func TestSkinDepthCopper(t *testing.T) {
	// Copper at 2.44 GHz: δs ≈ 1.34 µm.
	got := Copper.SkinDepth(2.44e9)
	if math.Abs(got-1.34e-6) > 0.05e-6 {
		t.Errorf("skin depth = %v m, want ≈1.34 µm", got)
	}
	// Rs ≈ 12.9 mΩ/sq at 2.44 GHz.
	rs := Copper.SurfaceResistance(2.44e9)
	if math.Abs(rs-0.0129) > 0.001 {
		t.Errorf("Rs = %v Ω/sq, want ≈0.0129", rs)
	}
}

func TestSkinDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frequency should panic")
		}
	}()
	Copper.SkinDepth(0)
}

func TestConductorAttenuation(t *testing.T) {
	// α_c = Rs/(z0·w); sanity: positive and growing with frequency.
	a1 := Copper.ConductorAttenuation(2.0e9, 377, 0.01)
	a2 := Copper.ConductorAttenuation(2.8e9, 377, 0.01)
	if !(a2 > a1) || a1 <= 0 {
		t.Errorf("conductor attenuation not monotone: %v, %v", a1, a2)
	}
}

func TestConductorAttenuationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive width should panic")
		}
	}()
	Copper.ConductorAttenuation(2.4e9, 377, 0)
}

func TestStackupValidate(t *testing.T) {
	good := Stackup{Substrate: FR4, CopperLayers: 4, LayerThickness: 1e-3, Area: 0.48 * 0.48}
	if err := good.Validate(); err != nil {
		t.Errorf("valid stackup rejected: %v", err)
	}
	bad := []Stackup{
		{Substrate: FR4, CopperLayers: 0, LayerThickness: 1e-3, Area: 1},
		{Substrate: FR4, CopperLayers: 2, LayerThickness: 0, Area: 1},
		{Substrate: FR4, CopperLayers: 2, LayerThickness: 1e-3, Area: 0},
		{Substrate: Dielectric{EpsilonR: 0.1}, CopperLayers: 2, LayerThickness: 1e-3, Area: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad stackup %d accepted", i)
		}
	}
}

func TestStackupLossAndCost(t *testing.T) {
	// The paper's design choice: fewer, thinner FR4 layers lose less.
	thick := Stackup{Substrate: FR4, CopperLayers: 6, LayerThickness: 1.5e-3, Area: 0.2304}
	thin := Stackup{Substrate: FR4, CopperLayers: 4, LayerThickness: 0.8e-3, Area: 0.2304}
	f := units.ISMBandCenter
	if !(thin.BulkLossDB(f) < thick.BulkLossDB(f)) {
		t.Error("thin stack should lose less")
	}
	if !(thin.BoardCost() < thick.BoardCost()) {
		t.Error("thin stack should cost less")
	}
	// Rogers at the same geometry is dramatically more expensive.
	rogers := Stackup{Substrate: Rogers5880, CopperLayers: 4, LayerThickness: 0.8e-3, Area: 0.2304}
	if !(rogers.BoardCost() > 10*thin.BoardCost()) {
		t.Errorf("Rogers %v should be ≫ FR4 %v", rogers.BoardCost(), thin.BoardCost())
	}
}

func TestBillOfMaterials(t *testing.T) {
	// Paper §4: PCB ≈ $540, 720 varactors at ~$0.50 = $360, total $900,
	// $5/unit for 180 units.
	bom := BillOfMaterials{PCB: 540, Varactors: 360, ControlOverhead: 0}
	if bom.Total() != 900 {
		t.Errorf("total = %v, want 900", bom.Total())
	}
	if got := bom.PerUnit(180); math.Abs(got-5) > 1e-12 {
		t.Errorf("per unit = %v, want 5", got)
	}
	if !strings.Contains(bom.String(), "900") {
		t.Errorf("BoM string %q should mention total", bom.String())
	}
}

func TestPerUnitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PerUnit(0) should panic")
		}
	}()
	BillOfMaterials{}.PerUnit(0)
}

func TestStringer(t *testing.T) {
	if !strings.Contains(FR4.String(), "FR4") {
		t.Error("dielectric String should include name")
	}
}
