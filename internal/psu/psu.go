// Package psu models the programmable DC power supply that biases the
// LLAMA metasurface: a Tektronix 2230G-class triple-channel instrument
// (§3.3, [3]) with 0–30 V channels, a bounded voltage switch rate (50 Hz)
// and a finite settling slew.
//
// The model is purely stateful with explicit virtual-time injection, so it
// runs identically under the discrete-event simulator and behind the SCPI
// network server (package scpi).
package psu

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Channel identifies one output channel (CH1..CH3).
type Channel int

// The instrument's three channels. LLAMA uses CH1 for the X-axis bias and
// CH2 for the Y axis.
const (
	CH1 Channel = 1
	CH2 Channel = 2
	CH3 Channel = 3
)

// String implements fmt.Stringer.
func (c Channel) String() string { return fmt.Sprintf("CH%d", int(c)) }

// Valid reports whether the channel exists on the instrument.
func (c Channel) Valid() bool { return c >= CH1 && c <= CH3 }

// Instrument limits, matching the 2230G datasheet and the paper's usage.
const (
	// MaxVoltage is the per-channel programmable limit in volts.
	MaxVoltage = 30.0
	// MinSwitchInterval is the shortest time between setpoint changes —
	// the paper drives the supply at up to 50 Hz.
	MinSwitchInterval = 20 * time.Millisecond
	// SlewVoltsPerSecond is the output settling slew rate.
	SlewVoltsPerSecond = 2000.0
	// IDN is the *IDN? identification string.
	IDN = "TEKTRONIX,2230G-30-1,9200001,1.16-1.04"
)

// ErrTooFast is returned when a setpoint change arrives before
// MinSwitchInterval has elapsed since the previous change on any channel.
var ErrTooFast = errors.New("psu: setpoint change faster than 50 Hz switch limit")

// ErrInvalidChannel is returned for channel numbers outside CH1..CH3.
var ErrInvalidChannel = errors.New("psu: invalid channel")

// ErrVoltageRange is returned for setpoints outside [0, MaxVoltage].
var ErrVoltageRange = errors.New("psu: voltage outside 0–30 V range")

type channelState struct {
	setpoint   float64
	settleFrom float64
	changedAt  time.Duration
	output     bool
}

// Supply is the instrument model. It is safe for concurrent use: the SCPI
// server serves multiple connections.
type Supply struct {
	mu         sync.Mutex
	chans      [3]channelState
	selected   Channel
	lastChange time.Duration
	everSet    bool
}

// New returns a Supply with all outputs off, setpoints at 0 V and CH1
// selected.
func New() *Supply {
	return &Supply{selected: CH1}
}

// Select makes ch the target of channel-implicit commands (INST:SEL).
func (s *Supply) Select(ch Channel) error {
	if !ch.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selected = ch
	return nil
}

// Selected returns the currently selected channel.
func (s *Supply) Selected() Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.selected
}

// SetVoltage programs the setpoint of ch at virtual time now. It enforces
// the 50 Hz global switch-rate limit and the 0–30 V range.
func (s *Supply) SetVoltage(ch Channel, v float64, now time.Duration) error {
	if !ch.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	if v < 0 || v > MaxVoltage {
		return fmt.Errorf("%w: %g V", ErrVoltageRange, v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.everSet && now-s.lastChange < MinSwitchInterval {
		return fmt.Errorf("%w: %v since last change", ErrTooFast, now-s.lastChange)
	}
	st := &s.chans[ch-1]
	st.settleFrom = s.lockedOutputVoltage(ch, now)
	st.setpoint = v
	st.changedAt = now
	s.lastChange = now
	s.everSet = true
	return nil
}

// SetBoth programs CH1 and CH2 together (one switch event): the paper's
// controller changes both axis biases per sweep step.
func (s *Supply) SetBoth(v1, v2 float64, now time.Duration) error {
	if v1 < 0 || v1 > MaxVoltage || v2 < 0 || v2 > MaxVoltage {
		return fmt.Errorf("%w: %g/%g V", ErrVoltageRange, v1, v2)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.everSet && now-s.lastChange < MinSwitchInterval {
		return fmt.Errorf("%w: %v since last change", ErrTooFast, now-s.lastChange)
	}
	for i, v := range []float64{v1, v2} {
		ch := Channel(i + 1)
		st := &s.chans[i]
		st.settleFrom = s.lockedOutputVoltage(ch, now)
		st.setpoint = v
		st.changedAt = now
	}
	s.lastChange = now
	s.everSet = true
	return nil
}

// Setpoint returns the programmed voltage of ch.
func (s *Supply) Setpoint(ch Channel) (float64, error) {
	if !ch.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chans[ch-1].setpoint, nil
}

// SetOutput enables or disables ch's output stage.
func (s *Supply) SetOutput(ch Channel, on bool) error {
	if !ch.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chans[ch-1].output = on
	return nil
}

// Output reports whether ch's output stage is enabled.
func (s *Supply) Output(ch Channel) (bool, error) {
	if !ch.Valid() {
		return false, fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chans[ch-1].output, nil
}

// OutputVoltage returns the actual terminal voltage of ch at virtual time
// now: zero when the output is off, slew-limited toward the setpoint
// otherwise.
func (s *Supply) OutputVoltage(ch Channel, now time.Duration) (float64, error) {
	if !ch.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrInvalidChannel, int(ch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lockedOutputVoltage(ch, now), nil
}

// lockedOutputVoltage computes the slewed output; callers hold s.mu.
func (s *Supply) lockedOutputVoltage(ch Channel, now time.Duration) float64 {
	st := s.chans[ch-1]
	if !st.output {
		return 0
	}
	elapsed := now - st.changedAt
	if elapsed < 0 {
		elapsed = 0
	}
	maxStep := SlewVoltsPerSecond * elapsed.Seconds()
	diff := st.setpoint - st.settleFrom
	switch {
	case diff > maxStep:
		return st.settleFrom + maxStep
	case diff < -maxStep:
		return st.settleFrom - maxStep
	default:
		return st.setpoint
	}
}

// Settled reports whether ch's output has reached its setpoint at now.
func (s *Supply) Settled(ch Channel, now time.Duration) (bool, error) {
	v, err := s.OutputVoltage(ch, now)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.chans[ch-1]
	if !st.output {
		return true, nil
	}
	const tol = 1e-9
	return v > st.setpoint-tol && v < st.setpoint+tol, nil
}

// String implements fmt.Stringer.
func (s *Supply) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("2230G[%s sel, CH1=%.2fV CH2=%.2fV CH3=%.2fV]",
		s.selected, s.chans[0].setpoint, s.chans[1].setpoint, s.chans[2].setpoint)
}
