package psu

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestChannelValidity(t *testing.T) {
	if !CH1.Valid() || !CH2.Valid() || !CH3.Valid() {
		t.Error("CH1..CH3 must be valid")
	}
	if Channel(0).Valid() || Channel(4).Valid() {
		t.Error("out-of-range channels must be invalid")
	}
	if CH2.String() != "CH2" {
		t.Errorf("CH2 string = %q", CH2.String())
	}
}

func TestSelect(t *testing.T) {
	s := New()
	if s.Selected() != CH1 {
		t.Error("default selection should be CH1")
	}
	if err := s.Select(CH2); err != nil {
		t.Fatal(err)
	}
	if s.Selected() != CH2 {
		t.Error("selection did not stick")
	}
	if err := s.Select(Channel(9)); !errors.Is(err, ErrInvalidChannel) {
		t.Errorf("bad channel error = %v", err)
	}
}

func TestSetVoltageAndReadback(t *testing.T) {
	s := New()
	if err := s.SetVoltage(CH1, 12.5, 0); err != nil {
		t.Fatal(err)
	}
	v, err := s.Setpoint(CH1)
	if err != nil || v != 12.5 {
		t.Errorf("setpoint = %v, %v", v, err)
	}
}

func TestVoltageRangeEnforced(t *testing.T) {
	s := New()
	if err := s.SetVoltage(CH1, -1, 0); !errors.Is(err, ErrVoltageRange) {
		t.Errorf("negative voltage error = %v", err)
	}
	if err := s.SetVoltage(CH1, 30.5, 0); !errors.Is(err, ErrVoltageRange) {
		t.Errorf("over-range error = %v", err)
	}
	if err := s.SetVoltage(CH1, 30, 0); err != nil {
		t.Errorf("30 V should be allowed: %v", err)
	}
}

func TestSwitchRateLimit(t *testing.T) {
	s := New()
	if err := s.SetVoltage(CH1, 5, 0); err != nil {
		t.Fatal(err)
	}
	// 10 ms later: too fast (50 Hz = 20 ms min).
	if err := s.SetVoltage(CH1, 6, 10*time.Millisecond); !errors.Is(err, ErrTooFast) {
		t.Errorf("fast switch error = %v", err)
	}
	// 20 ms later: allowed.
	if err := s.SetVoltage(CH1, 6, 20*time.Millisecond); err != nil {
		t.Errorf("50 Hz switch rejected: %v", err)
	}
	// The limit is global across channels (shared programming bus).
	if err := s.SetVoltage(CH2, 3, 25*time.Millisecond); !errors.Is(err, ErrTooFast) {
		t.Errorf("cross-channel fast switch error = %v", err)
	}
}

func TestSetBothCountsAsOneSwitch(t *testing.T) {
	s := New()
	if err := s.SetBoth(5, 7, 0); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Setpoint(CH1)
	v2, _ := s.Setpoint(CH2)
	if v1 != 5 || v2 != 7 {
		t.Errorf("SetBoth = %v/%v", v1, v2)
	}
	if err := s.SetBoth(6, 8, 10*time.Millisecond); !errors.Is(err, ErrTooFast) {
		t.Errorf("fast SetBoth error = %v", err)
	}
	if err := s.SetBoth(6, 31, 40*time.Millisecond); !errors.Is(err, ErrVoltageRange) {
		t.Errorf("range error = %v", err)
	}
}

func TestOutputGating(t *testing.T) {
	s := New()
	if err := s.SetVoltage(CH1, 10, 0); err != nil {
		t.Fatal(err)
	}
	// Output off: terminal voltage is zero regardless of setpoint.
	v, err := s.OutputVoltage(CH1, time.Second)
	if err != nil || v != 0 {
		t.Errorf("off output voltage = %v, %v", v, err)
	}
	if err := s.SetOutput(CH1, true); err != nil {
		t.Fatal(err)
	}
	on, err := s.Output(CH1)
	if err != nil || !on {
		t.Errorf("output state = %v, %v", on, err)
	}
}

func TestSlewSettling(t *testing.T) {
	s := New()
	if err := s.SetOutput(CH1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVoltage(CH1, 20, 0); err != nil {
		t.Fatal(err)
	}
	// At 2000 V/s, 20 V takes 10 ms. Halfway there at 5 ms.
	v, _ := s.OutputVoltage(CH1, 5*time.Millisecond)
	if math.Abs(v-10) > 0.01 {
		t.Errorf("mid-slew voltage = %v, want 10", v)
	}
	settled, _ := s.Settled(CH1, 5*time.Millisecond)
	if settled {
		t.Error("should not be settled mid-slew")
	}
	v, _ = s.OutputVoltage(CH1, 15*time.Millisecond)
	if v != 20 {
		t.Errorf("settled voltage = %v, want 20", v)
	}
	settled, _ = s.Settled(CH1, 15*time.Millisecond)
	if !settled {
		t.Error("should be settled after slew")
	}
}

func TestSlewDownward(t *testing.T) {
	s := New()
	if err := s.SetOutput(CH2, true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVoltage(CH2, 20, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVoltage(CH2, 0, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v, _ := s.OutputVoltage(CH2, 105*time.Millisecond)
	if math.Abs(v-10) > 0.01 {
		t.Errorf("downward mid-slew = %v, want 10", v)
	}
}

func TestSettledWhenOutputOff(t *testing.T) {
	s := New()
	ok, err := s.Settled(CH3, 0)
	if err != nil || !ok {
		t.Errorf("off channel should report settled: %v %v", ok, err)
	}
}

func TestInvalidChannelEverywhere(t *testing.T) {
	s := New()
	bad := Channel(0)
	if err := s.SetVoltage(bad, 1, 0); !errors.Is(err, ErrInvalidChannel) {
		t.Error("SetVoltage should reject bad channel")
	}
	if _, err := s.Setpoint(bad); !errors.Is(err, ErrInvalidChannel) {
		t.Error("Setpoint should reject bad channel")
	}
	if err := s.SetOutput(bad, true); !errors.Is(err, ErrInvalidChannel) {
		t.Error("SetOutput should reject bad channel")
	}
	if _, err := s.Output(bad); !errors.Is(err, ErrInvalidChannel) {
		t.Error("Output should reject bad channel")
	}
	if _, err := s.OutputVoltage(bad, 0); !errors.Is(err, ErrInvalidChannel) {
		t.Error("OutputVoltage should reject bad channel")
	}
	if _, err := s.Settled(bad, 0); !errors.Is(err, ErrInvalidChannel) {
		t.Error("Settled should reject bad channel")
	}
}

func TestFiftyHertzSweepThroughput(t *testing.T) {
	// The paper's coarse-to-fine sweep issues T² = 25 voltage pairs per
	// iteration at 50 Hz: all must be accepted when spaced 20 ms apart.
	s := New()
	now := time.Duration(0)
	for i := 0; i < 25; i++ {
		if err := s.SetBoth(float64(i%6)*5, float64(i%6)*5, now); err != nil {
			t.Fatalf("step %d rejected: %v", i, err)
		}
		now += MinSwitchInterval
	}
}

func TestStringer(t *testing.T) {
	s := New()
	if !strings.Contains(s.String(), "2230G") {
		t.Errorf("String = %q", s.String())
	}
}
