package twoport

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/llama-surface/llama/internal/units"
)

func TestIdentityThrough(t *testing.T) {
	s := Identity().ToS(50)
	if cmplx.Abs(s.S11) > 1e-12 || cmplx.Abs(s.S22) > 1e-12 {
		t.Errorf("through has reflection: %v", s)
	}
	if cmplx.Abs(s.S21-1) > 1e-12 || cmplx.Abs(s.S12-1) > 1e-12 {
		t.Errorf("through does not transmit: %v", s)
	}
	if got := s.TransmissionMagDB(); math.Abs(got) > 1e-9 {
		t.Errorf("through |S21| = %v dB, want 0", got)
	}
}

func TestMatchedSeriesResistor(t *testing.T) {
	// A series 100 Ω resistor in a 50 Ω system: classic textbook values.
	s := SeriesImpedance(100).ToS(50)
	// S11 = Z/(Z+2Z0) = 100/200 = 0.5
	if math.Abs(cmplx.Abs(s.S11)-0.5) > 1e-12 {
		t.Errorf("S11 = %v, want 0.5", cmplx.Abs(s.S11))
	}
	// S21 = 2Z0/(Z+2Z0) = 0.5
	if math.Abs(cmplx.Abs(s.S21)-0.5) > 1e-12 {
		t.Errorf("S21 = %v, want 0.5", cmplx.Abs(s.S21))
	}
	if !s.IsPassive(1e-12) {
		t.Error("series resistor must be passive")
	}
}

func TestShuntResistor(t *testing.T) {
	// Shunt 25 Ω in 50 Ω system: S11 = −Z0/(Z0+2Z) = −50/100 = −0.5.
	s := ShuntImpedance(25).ToS(50)
	if math.Abs(real(s.S11)+0.5) > 1e-12 || math.Abs(imag(s.S11)) > 1e-12 {
		t.Errorf("S11 = %v, want -0.5", s.S11)
	}
	if math.Abs(cmplx.Abs(s.S21)-0.5) > 1e-12 {
		t.Errorf("S21 = %v, want 0.5", cmplx.Abs(s.S21))
	}
}

func TestShuntShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shunt short should panic")
		}
	}()
	ShuntImpedance(0)
}

func TestQuarterWaveLine(t *testing.T) {
	// A λ/4 lossless line inverts impedance: Zin = Zc²/ZL.
	f := 2.44e9
	lambda := units.Wavelength(f)
	beta := 2 * math.Pi / lambda
	line := LosslessLine(50, beta, lambda/4)
	zin := line.InputImpedance(100)
	want := 50.0 * 50.0 / 100.0
	if cmplx.Abs(zin-complex(want, 0)) > 1e-6 {
		t.Errorf("Zin = %v, want %v", zin, want)
	}
	// λ/2 line reproduces the load.
	line2 := LosslessLine(50, beta, lambda/2)
	zin2 := line2.InputImpedance(100)
	if cmplx.Abs(zin2-100) > 1e-6 {
		t.Errorf("λ/2 Zin = %v, want 100", zin2)
	}
}

func TestLosslessLineIsLossless(t *testing.T) {
	f := 2.44e9
	beta := 2 * math.Pi / units.Wavelength(f)
	for _, frac := range []float64{0.1, 0.25, 0.37, 0.5} {
		line := LosslessLine(75, beta, frac*units.Wavelength(f))
		s := line.ToS(75) // matched reference: no reflection
		if cmplx.Abs(s.S11) > 1e-9 {
			t.Errorf("matched lossless line reflects: %v", s)
		}
		if math.Abs(cmplx.Abs(s.S21)-1) > 1e-9 {
			t.Errorf("matched lossless line attenuates: |S21|=%v", cmplx.Abs(s.S21))
		}
		// Phase delay should be −βl.
		wantPhase := units.NormalizeAngle(-beta * frac * units.Wavelength(f))
		if math.Abs(units.NormalizeAngle(s.TransmissionPhase()-wantPhase)) > 1e-9 {
			t.Errorf("phase = %v, want %v", s.TransmissionPhase(), wantPhase)
		}
	}
}

func TestLossyLineAttenuates(t *testing.T) {
	f := 2.44e9
	lambda := units.Wavelength(f)
	beta := 2 * math.Pi / lambda
	alpha := 20.0 // nepers/m — strongly lossy for test visibility
	line := TransmissionLine(50, complex(alpha, beta), lambda/4)
	s := line.ToS(50)
	wantDB := -20 * math.Log10(math.E) * alpha * lambda / 4
	if got := s.TransmissionMagDB(); math.Abs(got-wantDB) > 0.01 {
		t.Errorf("lossy |S21| = %v dB, want %v dB", got, wantDB)
	}
	if !s.IsPassive(1e-9) {
		t.Error("lossy line must be passive")
	}
}

func TestSToABCDRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := 2.44e9
	beta := 2 * math.Pi / units.Wavelength(f)
	for i := 0; i < 100; i++ {
		// Random passive cascades.
		n := Cascade(
			SeriesImpedance(complex(r.Float64()*100, r.Float64()*200-100)),
			LosslessLine(complex(30+r.Float64()*100, 0), beta, r.Float64()*0.1),
			ShuntAdmittance(complex(r.Float64()*0.02, r.Float64()*0.04-0.02)),
		)
		s := n.ToS(50)
		back := FromS(s)
		if !back.M.ApproxEqual(n.M, 1e-6*(1+n.M.MaxAbs())) {
			t.Fatalf("S↔ABCD round trip failed at iter %d:\n%v\n%v", i, n.M, back.M)
		}
	}
}

func TestCascadeAgainstManualProduct(t *testing.T) {
	a := SeriesImpedance(10 + 5i)
	b := ShuntAdmittance(0.01 - 0.02i)
	got := Cascade(a, b).M
	want := a.M.Mul(b.M)
	if !got.ApproxEqual(want, 1e-12) {
		t.Error("cascade order mismatch")
	}
}

func TestReciprocity(t *testing.T) {
	f := 2.44e9
	beta := 2 * math.Pi / units.Wavelength(f)
	n := Cascade(
		SeriesImpedance(20+30i),
		LosslessLine(60, beta, 0.01),
		ShuntAdmittance(0.005-0.01i),
		TransmissionLine(40, complex(3, beta), 0.004),
	)
	if !n.IsReciprocal(1e-9) {
		t.Errorf("passive cascade should be reciprocal: det=%v", n.M.Det())
	}
	s := n.ToS(50)
	if cmplx.Abs(s.S12-s.S21) > 1e-9 {
		t.Errorf("reciprocal network must have S12 == S21: %v vs %v", s.S12, s.S21)
	}
}

func TestPassivityProperty(t *testing.T) {
	// Any cascade of passive elements must be passive.
	f := func(rs, xs, gs, bs uint8) bool {
		series := complex(float64(rs), float64(xs)-128)
		shunt := complex(float64(gs)*1e-4, (float64(bs)-128)*1e-4)
		n := Cascade(SeriesImpedance(series), ShuntAdmittance(shunt))
		s := n.ToS(50)
		return s.IsPassive(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransformer(t *testing.T) {
	tr := Transformer(2)
	zin := tr.InputImpedance(50)
	if cmplx.Abs(zin-200) > 1e-9 {
		t.Errorf("2:1 transformer Zin = %v, want 200", zin)
	}
}

func TestTransformerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero turns ratio should panic")
		}
	}()
	Transformer(0)
}

func TestPhaseShifterBandwidthEq12(t *testing.T) {
	// Eq. 12: bandwidth grows with line length (λ/m, so smaller m =
	// longer line = wider band). This is why the paper stacks two
	// phase-shifter layers: doubling the effective length recovers the
	// bandwidth a single thin FR4 layer lacks.
	f0 := 2.45e9
	bw4 := PhaseShifterBandwidth(f0, 4, 0.2, 50, 120)
	bw8 := PhaseShifterBandwidth(f0, 8, 0.2, 50, 120)
	if !(bw4 > bw8) {
		t.Errorf("longer line should be wider band: m=4 → %v, m=8 → %v", bw4, bw8)
	}
	// A severely mismatched short line has no usable passband at all.
	if got := PhaseShifterBandwidth(f0, 16, 0.05, 50, 800); got != 0 {
		t.Errorf("hopeless case bandwidth = %v, want 0", got)
	}
	// Bandwidth also grows with the tolerable reflection.
	loose := PhaseShifterBandwidth(f0, 4, 0.3, 50, 120)
	tight := PhaseShifterBandwidth(f0, 4, 0.1, 50, 120)
	if !(loose > tight) {
		t.Errorf("looser Γ must give wider band: %v vs %v", loose, tight)
	}
	// Perfect match: unbounded.
	if !math.IsInf(PhaseShifterBandwidth(f0, 4, 0.2, 50, 50), 1) {
		t.Error("matched load should give infinite bandwidth")
	}
	// Small mismatch with generous Γ: arg ≥ 1 → +Inf.
	if !math.IsInf(PhaseShifterBandwidth(f0, 4, 0.5, 50, 55), 1) {
		t.Error("slight mismatch with loose Γ should be unbounded")
	}
}

func TestPhaseShifterBandwidthPaperClaim(t *testing.T) {
	// The paper's two-layer design achieves ≥150 MHz with efficiency
	// better than −5 dB, wider than the 100 MHz ISM band. With a
	// moderate mismatch and Γmax=0.3 the model comfortably exceeds
	// 150 MHz at 2.45 GHz for a two-layer (effectively λ/4) section.
	bw := PhaseShifterBandwidth(2.45e9, 4, 0.3, units.Z0FreeSpace, 800)
	if bw < 150e6 {
		t.Errorf("two-layer bandwidth = %v MHz, want ≥ 150 MHz", bw/1e6)
	}
}

func TestPhaseShifterBandwidthPanics(t *testing.T) {
	for _, c := range []struct{ g, z0, zl float64 }{
		{0, 50, 100}, {1, 50, 100}, {0.2, 0, 100}, {0.2, 50, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for g=%v z0=%v zl=%v", c.g, c.z0, c.zl)
				}
			}()
			PhaseShifterBandwidth(2.45e9, 4, c.g, c.z0, c.zl)
		}()
	}
}

func TestQuarterWaveTransformer(t *testing.T) {
	if got := QuarterWaveTransformer(50, 200); math.Abs(got-100) > 1e-12 {
		t.Errorf("QWT(50,200) = %v, want 100", got)
	}
}

func TestReflectionCoefficientAndMismatchLoss(t *testing.T) {
	g := ReflectionCoefficient(100, 50)
	if cmplx.Abs(g-complex(1.0/3, 0)) > 1e-12 {
		t.Errorf("Γ = %v, want 1/3", g)
	}
	// |Γ|=1/3 → mismatch loss = −10log10(1−1/9) ≈ 0.512 dB.
	if got := MismatchLossDB(1.0 / 3); math.Abs(got-0.5115) > 1e-3 {
		t.Errorf("mismatch loss = %v dB", got)
	}
	if !math.IsInf(MismatchLossDB(1), 1) {
		t.Error("total reflection should be infinite loss")
	}
}

func TestLumpedElements(t *testing.T) {
	w := units.AngularFrequency(2.44e9)
	// 1 pF at 2.44 GHz: |Z| = 1/(ωC) ≈ 65.2 Ω, purely capacitive.
	z := CapacitorImpedance(1e-12, w)
	if real(z) != 0 || imag(z) >= 0 {
		t.Errorf("capacitor impedance = %v", z)
	}
	if math.Abs(cmplx.Abs(z)-65.2) > 0.5 {
		t.Errorf("|Zc| = %v, want ≈65.2", cmplx.Abs(z))
	}
	// 1 nH: |Z| = ωL ≈ 15.3 Ω inductive.
	zl := InductorImpedance(1e-9, w)
	if imag(zl) <= 0 {
		t.Errorf("inductor impedance = %v", zl)
	}
	if math.Abs(cmplx.Abs(zl)-15.33) > 0.1 {
		t.Errorf("|Zl| = %v, want ≈15.3", cmplx.Abs(zl))
	}
}

func TestResonance(t *testing.T) {
	// 2.9 nH with 1.5 pF resonates near 2.41 GHz.
	f0 := ResonantFrequency(2.9e-9, 1.5e-12)
	if math.Abs(f0-2.413e9) > 0.01e9 {
		t.Errorf("f0 = %v GHz", f0/1e9)
	}
	// Tank impedance is huge at resonance, small far away.
	w0 := units.AngularFrequency(f0)
	zAt := cmplx.Abs(ParallelLC(2.9e-9, 1.5e-12, w0*1.0000001))
	zOff := cmplx.Abs(ParallelLC(2.9e-9, 1.5e-12, w0*2))
	if zAt < 1e4 {
		t.Errorf("tank at resonance |Z| = %v, want very large", zAt)
	}
	if zOff > 100 {
		t.Errorf("tank off resonance |Z| = %v, want small", zOff)
	}
}

func TestSeriesRLC(t *testing.T) {
	w := units.AngularFrequency(2.44e9)
	z := SeriesRLC(1.5, 0.7e-9, 1.2e-12, w)
	if real(z) != 1.5 {
		t.Errorf("series R = %v", real(z))
	}
	// Zero C means no capacitive term.
	z2 := SeriesRLC(1, 1e-9, 0, w)
	if imag(z2) != w*1e-9 {
		t.Errorf("series L-only reactance = %v, want %v", imag(z2), w*1e-9)
	}
}

func TestVSWR(t *testing.T) {
	s := SParams{S11: 0.5, Z0: 50}
	if got := s.VSWR(); math.Abs(got-3) > 1e-12 {
		t.Errorf("VSWR(|Γ|=0.5) = %v, want 3", got)
	}
	s = SParams{S11: 1, Z0: 50}
	if !math.IsInf(s.VSWR(), 1) {
		t.Error("VSWR(|Γ|=1) should be Inf")
	}
}

func TestInputImpedanceOpenShort(t *testing.T) {
	f := 2.44e9
	lambda := units.Wavelength(f)
	beta := 2 * math.Pi / lambda
	// λ/8 shorted stub: Zin = jZc·tan(βl) = jZc.
	line := LosslessLine(50, beta, lambda/8)
	zin := line.InputImpedance(1e-9) // ~short
	if math.Abs(imag(zin)-50) > 0.01 || math.Abs(real(zin)) > 0.01 {
		t.Errorf("λ/8 shorted stub Zin = %v, want j50", zin)
	}
}

func TestStringOutput(t *testing.T) {
	s := Identity().ToS(50)
	if s.String() == "" {
		t.Error("empty S-params string")
	}
}

func TestCascadeNMatchesCascade(t *testing.T) {
	layer := Cascade(
		ShuntAdmittance(complex(0, 0.003)),
		TransmissionLine(complex(340, 0), complex(1.2, 55), 0.023),
		ShuntAdmittance(complex(0, 0.003)),
	)
	// n = 0 and n = 1 are the trivial identities.
	if got := CascadeN(layer, 0); got.M != Identity().M {
		t.Errorf("CascadeN(s, 0) = %v, want identity", got.M)
	}
	if got := CascadeN(layer, 1); got.M != layer.M {
		t.Errorf("CascadeN(s, 1) altered the section")
	}
	// n = 2 is a single square — bit-identical to the explicit product.
	if got, want := CascadeN(layer, 2), layer.M.Mul(layer.M); got.M != want {
		t.Errorf("CascadeN(s, 2) = %v, want %v", got.M, want)
	}
	// Larger n re-associates the product (that's the point), so compare
	// against the sequential chain within float tolerance.
	for _, n := range []int{3, 4, 5, 8, 13} {
		ns := make([]ABCD, n)
		for i := range ns {
			ns[i] = layer
		}
		want := Cascade(ns...)
		got := CascadeN(layer, n)
		scale := want.M.MaxAbs()
		if d := got.M.Sub(want.M).MaxAbs(); d > 1e-9*scale {
			t.Errorf("CascadeN(s, %d) differs from chain product by %g (scale %g)", n, d, scale)
		}
		if !got.IsReciprocal(1e-6 * scale * scale) {
			t.Errorf("CascadeN(s, %d) broke reciprocity", n)
		}
	}
}

func TestCascadeNPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative cascade count should panic")
		}
	}()
	CascadeN(Identity(), -1)
}
