// Package twoport implements two-port microwave network analysis.
//
// The LLAMA metasurface is analysed per polarization axis as a cascade of
// two-port elements — substrate slabs (lossy transmission-line sections),
// printed admittance patterns (shunt lumped elements) and varactor-loaded
// LC tanks. The package provides ABCD (chain) matrices, scattering (S)
// matrices and the conversions between them (Eqs. 9–10 of the paper), plus
// the phase-shifter bandwidth relation (Eq. 12) used to justify the
// two-layer FR4 design.
//
// Conventions: port 1 is the input, port 2 the output; Z0 is the reference
// impedance for S-parameters (free space when analysing a surface
// illuminated by a plane wave, 50 Ω for circuit fixtures).
package twoport

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/llama-surface/llama/internal/mat2"
)

// ABCD is a chain (transmission) matrix relating port-1 voltage/current to
// port-2 voltage/current:
//
//	| V1 |   | A B | | V2 |
//	| I1 | = | C D | | I2 |
//
// Cascading networks multiplies their ABCD matrices in signal order.
type ABCD struct {
	M mat2.Mat
}

// SParams holds the 2×2 scattering matrix of Eq. (10).
type SParams struct {
	S11, S12, S21, S22 complex128
	// Z0 is the reference impedance the parameters are normalized to.
	Z0 float64
}

// Identity returns the ABCD matrix of a zero-length through connection.
func Identity() ABCD { return ABCD{M: mat2.Identity()} }

// Cascade returns the chain product of networks in signal order: the wave
// enters ns[0] first.
func Cascade(ns ...ABCD) ABCD {
	out := mat2.Identity()
	for _, n := range ns {
		out = out.Mul(n.M)
	}
	return ABCD{M: out}
}

// CascadeN returns n identical sections cascaded, computed by binary
// exponentiation (matrix power) rather than a sequential chain product.
// LLAMA's BFS stack is BFSLayers copies of one layer network, so the hot
// evaluation path calls this instead of materializing a slice of repeats:
// no allocation, and ⌈log₂n⌉ multiplies instead of n. n = 0 is the
// zero-length through connection; negative n panics (a chain matrix power
// with negative exponent would be an inverse, which cascading never
// needs).
func CascadeN(section ABCD, n int) ABCD {
	if n < 0 {
		panic("twoport: negative cascade count")
	}
	// Accumulate without seeding from the identity: the first set bit
	// copies the running square directly, so CascadeN(s, 1) == s and
	// CascadeN(s, 2) is bit-identical to Cascade(s, s).
	var out mat2.Mat
	have := false
	base := section.M
	for {
		if n&1 == 1 {
			if have {
				out = out.Mul(base)
			} else {
				out, have = base, true
			}
		}
		n >>= 1
		if n == 0 {
			break
		}
		base = base.Mul(base)
	}
	if !have {
		return Identity()
	}
	return ABCD{M: out}
}

// SeriesImpedance returns the ABCD matrix of a series element with
// impedance z:
//
//	| 1 z |
//	| 0 1 |
func SeriesImpedance(z complex128) ABCD {
	return ABCD{M: mat2.Mat{A: 1, B: z, C: 0, D: 1}}
}

// ShuntAdmittance returns the ABCD matrix of a shunt element with
// admittance y:
//
//	| 1 0 |
//	| y 1 |
func ShuntAdmittance(y complex128) ABCD {
	return ABCD{M: mat2.Mat{A: 1, B: 0, C: y, D: 1}}
}

// ShuntImpedance returns a shunt element specified by impedance z. A zero
// impedance is a short circuit across the line, which has no finite
// admittance representation; it panics in that case.
func ShuntImpedance(z complex128) ABCD {
	if z == 0 {
		panic("twoport: shunt short circuit has infinite admittance")
	}
	return ShuntAdmittance(1 / z)
}

// TransmissionLine returns the ABCD matrix of a line segment with complex
// characteristic impedance zc and complex propagation constant gamma
// (= α + jβ, nepers and radians per meter) of physical length l:
//
//	| cosh(γl)      zc·sinh(γl) |
//	| sinh(γl)/zc   cosh(γl)    |
func TransmissionLine(zc complex128, gamma complex128, l float64) ABCD {
	gl := gamma * complex(l, 0)
	ch := cmplx.Cosh(gl)
	sh := cmplx.Sinh(gl)
	return ABCD{M: mat2.Mat{
		A: ch, B: zc * sh,
		C: sh / zc, D: ch,
	}}
}

// LosslessLine returns a transmission line with purely imaginary
// propagation (γ = jβ), given phase constant beta (rad/m) and length l.
func LosslessLine(zc complex128, beta, l float64) ABCD {
	return TransmissionLine(zc, complex(0, beta), l)
}

// Transformer returns the ABCD matrix of an ideal transformer with turns
// ratio n (V1 = n·V2).
func Transformer(n float64) ABCD {
	if n == 0 {
		panic("twoport: transformer with zero turns ratio")
	}
	return ABCD{M: mat2.Mat{A: complex(n, 0), D: complex(1/n, 0)}}
}

// ToS converts the ABCD matrix to S-parameters normalized to z0, using the
// standard relations (e.g. Pozar, Microwave Engineering, Table 4.2).
func (n ABCD) ToS(z0 float64) SParams {
	if z0 <= 0 {
		panic("twoport: non-positive reference impedance")
	}
	z := complex(z0, 0)
	a, b, c, d := n.M.A, n.M.B, n.M.C, n.M.D
	den := a + b/z + c*z + d
	return SParams{
		S11: (a + b/z - c*z - d) / den,
		S12: 2 * (a*d - b*c) / den,
		S21: 2 / den,
		S22: (-a + b/z - c*z + d) / den,
		Z0:  z0,
	}
}

// FromS converts S-parameters back to an ABCD matrix.
func FromS(s SParams) ABCD {
	z := complex(s.Z0, 0)
	den := 2 * s.S21
	if den == 0 {
		panic("twoport: S21 = 0 has no ABCD representation")
	}
	return ABCD{M: mat2.Mat{
		A: ((1+s.S11)*(1-s.S22) + s.S12*s.S21) / den,
		B: z * ((1+s.S11)*(1+s.S22) - s.S12*s.S21) / den,
		C: ((1-s.S11)*(1-s.S22) - s.S12*s.S21) / (z * den),
		D: ((1-s.S11)*(1+s.S22) + s.S12*s.S21) / den,
	}}
}

// IsReciprocal reports whether the network satisfies AD − BC = 1 within
// tol, which holds for any passive reciprocal structure (all of LLAMA's
// layers).
func (n ABCD) IsReciprocal(tol float64) bool {
	return cmplx.Abs(n.M.Det()-1) <= tol
}

// InputImpedance returns the impedance seen at port 1 when port 2 is
// terminated in load zl.
func (n ABCD) InputImpedance(zl complex128) complex128 {
	num := n.M.A*zl + n.M.B
	den := n.M.C*zl + n.M.D
	return num / den
}

// TransmissionMagDB returns |S21|² in dB — the "efficiency" quantity the
// paper plots in Figs. 8–11.
func (s SParams) TransmissionMagDB() float64 {
	m := cmplx.Abs(s.S21)
	if m <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(m)
}

// TransmissionPhase returns the phase of S21 in radians.
func (s SParams) TransmissionPhase() float64 { return cmplx.Phase(s.S21) }

// ReflectionMagDB returns |S11| in dB.
func (s SParams) ReflectionMagDB() float64 {
	m := cmplx.Abs(s.S11)
	if m <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(m)
}

// IsPassive reports whether the network dissipates or conserves power for
// excitation at either port: columns of S must have ≤ unit power (within
// tol).
func (s SParams) IsPassive(tol float64) bool {
	p1 := cmplx.Abs(s.S11)*cmplx.Abs(s.S11) + cmplx.Abs(s.S21)*cmplx.Abs(s.S21)
	p2 := cmplx.Abs(s.S22)*cmplx.Abs(s.S22) + cmplx.Abs(s.S12)*cmplx.Abs(s.S12)
	return p1 <= 1+tol && p2 <= 1+tol
}

// VSWR returns the voltage standing-wave ratio at port 1.
func (s SParams) VSWR() float64 {
	g := cmplx.Abs(s.S11)
	if g >= 1 {
		return math.Inf(1)
	}
	return (1 + g) / (1 - g)
}

// String renders the scattering matrix magnitudes for debugging.
func (s SParams) String() string {
	return fmt.Sprintf("S11=%.3f∠%.1f° S21=%.3f∠%.1f° (Z0=%g)",
		cmplx.Abs(s.S11), cmplx.Phase(s.S11)*180/math.Pi,
		cmplx.Abs(s.S21), cmplx.Phase(s.S21)*180/math.Pi, s.Z0)
}

// PhaseShifterBandwidth implements Eq. (12) of the paper: the usable
// bandwidth of a transmission-line phase shifter whose line length is λ/m,
// centered at f0, with maximum tolerable reflection coefficient gammaMax,
// between source impedance z0 and load impedance zl:
//
//	Δf = f0·(2 − (m/π)·arccos[ Γ/√(1−Γ²) · 2√(Z0·ZL)/|ZL−Z0| ])
//
// Bandwidth shrinks as the line gets electrically shorter at f0 (larger
// m): the arccos term is multiplied by m/π. This is the relation behind
// the paper's design note that "transmission bandwidth … changes
// approximately linearly with the length of the transmission line", which
// is why LLAMA stacks two phase-shifter layers to cover the ISM band.
//
// When the arccos argument exceeds 1 the match is good enough everywhere
// and the bandwidth is unbounded by mismatch; the function returns +Inf.
// A formula result below zero (severe mismatch on a short line) clamps to
// 0 — no usable passband. It panics for invalid gammaMax outside (0, 1)
// or non-positive impedances.
func PhaseShifterBandwidth(f0 float64, m float64, gammaMax, z0, zl float64) float64 {
	if gammaMax <= 0 || gammaMax >= 1 {
		panic("twoport: gammaMax must be in (0,1)")
	}
	if z0 <= 0 || zl <= 0 {
		panic("twoport: impedances must be positive")
	}
	if z0 == zl {
		return math.Inf(1) // perfectly matched at all frequencies
	}
	arg := gammaMax / math.Sqrt(1-gammaMax*gammaMax) *
		2 * math.Sqrt(z0*zl) / math.Abs(zl-z0)
	if arg >= 1 {
		return math.Inf(1)
	}
	bw := f0 * (2 - (m/math.Pi)*math.Acos(arg))
	if bw < 0 {
		return 0
	}
	return bw
}

// QuarterWaveTransformer returns the characteristic impedance of a λ/4
// matching section between z0 and zl.
func QuarterWaveTransformer(z0, zl float64) float64 {
	if z0 <= 0 || zl <= 0 {
		panic("twoport: impedances must be positive")
	}
	return math.Sqrt(z0 * zl)
}

// ReflectionCoefficient returns (zl−z0)/(zl+z0) for a load zl on a line of
// characteristic impedance z0.
func ReflectionCoefficient(zl, z0 complex128) complex128 {
	return (zl - z0) / (zl + z0)
}

// MismatchLossDB returns the power lost to reflection at an interface with
// reflection coefficient magnitude |Γ|: −10·log10(1−|Γ|²).
func MismatchLossDB(gamma float64) float64 {
	g2 := gamma * gamma
	if g2 >= 1 {
		return math.Inf(1)
	}
	return -10 * math.Log10(1-g2)
}

// CapacitorImpedance returns 1/(jωC) at angular frequency w.
func CapacitorImpedance(c, w float64) complex128 {
	if c <= 0 || w <= 0 {
		panic("twoport: capacitor impedance needs positive C and ω")
	}
	return complex(0, -1/(w*c))
}

// InductorImpedance returns jωL at angular frequency w.
func InductorImpedance(l, w float64) complex128 {
	return complex(0, w*l)
}

// SeriesRLC returns the impedance of a series R-L-C branch at angular
// frequency w. A zero capacitance means "no capacitor" (short, not open),
// matching how the branch is used to model varactor parasitics.
func SeriesRLC(r, l, c, w float64) complex128 {
	z := complex(r, w*l)
	if c > 0 {
		z += complex(0, -1/(w*c))
	}
	return z
}

// ParallelLC returns the impedance of an ideal parallel LC tank at angular
// frequency w. At resonance the impedance diverges; slightly off resonance
// it is large and reactive, which is how the varactor-loaded patterns
// produce a bias-dependent transmission phase.
func ParallelLC(l, c, w float64) complex128 {
	if l <= 0 || c <= 0 || w <= 0 {
		panic("twoport: parallel LC needs positive L, C, ω")
	}
	zl := InductorImpedance(l, w)
	zc := CapacitorImpedance(c, w)
	den := zl + zc
	if den == 0 {
		return complex(math.Inf(1), 0)
	}
	return zl * zc / den
}

// ResonantFrequency returns 1/(2π√(LC)).
func ResonantFrequency(l, c float64) float64 {
	if l <= 0 || c <= 0 {
		panic("twoport: resonance needs positive L and C")
	}
	return 1 / (2 * math.Pi * math.Sqrt(l*c))
}
