package control

import (
	"math"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/telemetry"
)

func syncCfg() SyncConfig {
	return SyncConfig{
		Vx0: 0, Vy0: 6, VDx: 6, VDy: 0,
		SwitchPeriod: 20 * time.Millisecond,
		States:       5,
	}
}

func TestStateIndexAndVoltageAt(t *testing.T) {
	s := syncCfg()
	cases := []struct {
		t   time.Duration
		idx int
		vx  float64
		vy  float64
	}{
		{0, 0, 0, 6},
		{19 * time.Millisecond, 0, 0, 6},
		{20 * time.Millisecond, 1, 6, 6},
		{59 * time.Millisecond, 2, 12, 6},
		{99 * time.Millisecond, 4, 24, 6},
		{500 * time.Millisecond, 4, 24, 6}, // clamped to last state
	}
	for _, c := range cases {
		if got := s.StateIndex(c.t); got != c.idx {
			t.Errorf("StateIndex(%v) = %d, want %d", c.t, got, c.idx)
		}
		vx, vy := s.VoltageAt(c.t)
		if vx != c.vx || vy != c.vy {
			t.Errorf("VoltageAt(%v) = (%v, %v), want (%v, %v)", c.t, vx, vy, c.vx, c.vy)
		}
	}
}

func TestStateIndexWithOffset(t *testing.T) {
	s := syncCfg()
	s.StartOffset = 7 * time.Millisecond // td
	if got := s.StateIndex(5 * time.Millisecond); got != 0 {
		t.Errorf("sample before start should map to state 0, got %d", got)
	}
	if got := s.StateIndex(27 * time.Millisecond); got != 1 {
		t.Errorf("StateIndex(27ms, td=7ms) = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []SyncConfig{
		{SwitchPeriod: 0, States: 5},
		{SwitchPeriod: time.Millisecond, States: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// makeSweepReports fabricates a recording: per-state power levels with
// samples every 1 ms and a true start offset.
func makeSweepReports(levels []float64, period, offset time.Duration) []telemetry.Report {
	var reports []telemetry.Report
	seq := uint32(0)
	total := time.Duration(len(levels)) * period
	for ts := time.Duration(0); ts < total; ts += time.Millisecond {
		idx := int((ts) / period)
		// The true schedule starts at `offset`: before it, state 0.
		shifted := ts + offset
		if shifted < total {
			idx = int(shifted / period)
		} else {
			idx = len(levels) - 1
		}
		_ = idx
		// Simpler and exact: compute state from (ts - offset).
		rel := ts - offset
		if rel < 0 {
			rel = 0
		}
		k := int(rel / period)
		if k >= len(levels) {
			k = len(levels) - 1
		}
		reports = append(reports, telemetry.Report{
			Seq:       seq,
			Timestamp: ts,
			RSSIdBm:   levels[k],
			Flags:     telemetry.FlagSweepActive,
		})
		seq++
	}
	return reports
}

func TestLabelReportsGroupsCorrectly(t *testing.T) {
	s := syncCfg()
	levels := []float64{-50, -42, -38, -45, -55}
	reports := makeSweepReports(levels, s.SwitchPeriod, 0)
	got := s.LabelReports(reports)
	for i, want := range levels {
		if math.Abs(got[i]-want) > 0.01 {
			t.Errorf("state %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestLabelReportsEmptyStateIsNaN(t *testing.T) {
	s := syncCfg()
	reports := []telemetry.Report{{Timestamp: 0, RSSIdBm: -40}}
	got := s.LabelReports(reports)
	if !math.IsNaN(got[3]) {
		t.Errorf("unsampled state should be NaN, got %v", got[3])
	}
	if math.Abs(got[0]+40) > 0.01 {
		t.Errorf("state 0 = %v", got[0])
	}
}

func TestEstimateOffsetRecoversTrueTd(t *testing.T) {
	s := syncCfg()
	levels := []float64{-50, -42, -38, -45, -55}
	trueOffset := 7 * time.Millisecond
	// Fabricate a recording whose state boundaries sit at td + k·Ts:
	// the estimator should discover td ≈ 7 ms (within the resolution).
	reports := makeSweepReports(levels, s.SwitchPeriod, trueOffset)
	got, err := s.EstimateOffset(reports, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	diff := (got - trueOffset).Abs()
	if diff > 2*time.Millisecond {
		t.Errorf("estimated offset %v, want ≈%v", got, trueOffset)
	}
}

func TestEstimateOffsetErrors(t *testing.T) {
	s := syncCfg()
	if _, err := s.EstimateOffset(nil, time.Millisecond); err == nil {
		t.Error("no reports accepted")
	}
	reports := makeSweepReports([]float64{-40, -50}, s.SwitchPeriod, 0)
	if _, err := s.EstimateOffset(reports, 0); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := s.EstimateOffset(reports, time.Second); err == nil {
		t.Error("resolution beyond period accepted")
	}
}
