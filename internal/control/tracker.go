package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Tracker maintains the surface's optimum under drift: a wearable swings
// its arm, furniture moves, the environment changes. Instead of re-running
// the full Algorithm 1 sweep continuously (25 switches per second of
// budget), the tracker watches the link and escalates through three
// tiers:
//
//  1. hold — power within the hysteresis band of the last optimum: do
//     nothing (zero switch cost);
//  2. refine — mild degradation: a small local grid around the current
//     bias pair (T×T over a ±window);
//  3. re-sweep — severe degradation: the full coarse-to-fine sweep.
//
// This is the natural production extension of §3.3's one-shot sweep, and
// what the wearable scenario in examples/ exercises.
type Tracker struct {
	cfg TrackerConfig
	act Actuator
	sen Sensor

	// reference is the power at the last accepted optimum.
	reference float64
	// vx, vy is the current bias pair.
	vx, vy float64
	// stats accumulate across Step calls.
	stats TrackerStats
	ready bool
}

// TrackerConfig tunes the escalation ladder.
type TrackerConfig struct {
	// Sweep is the full-sweep fallback configuration.
	Sweep SweepConfig
	// RefineWindowV is the ± bias window of the local refinement grid.
	RefineWindowV float64
	// RefineSteps is the per-axis grid size of the refinement tier.
	RefineSteps int
	// HoldToleranceDB degradation below this does nothing.
	HoldToleranceDB float64
	// ResweepThresholdDB degradation beyond this triggers a full sweep.
	ResweepThresholdDB float64
}

// DefaultTrackerConfig returns a ladder matched to the paper's sweep
// economics: hold within 1 dB, refine within 6 dB, re-sweep beyond.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		Sweep:              DefaultSweepConfig(),
		RefineWindowV:      4,
		RefineSteps:        3,
		HoldToleranceDB:    1,
		ResweepThresholdDB: 6,
	}
}

// Validate reports an error for unusable ladders.
func (c TrackerConfig) Validate() error {
	if err := c.Sweep.Validate(); err != nil {
		return err
	}
	switch {
	case c.RefineWindowV <= 0:
		return errors.New("control: non-positive refine window")
	case c.RefineSteps < 2:
		return errors.New("control: refine grid needs ≥2 steps")
	case c.HoldToleranceDB <= 0:
		return errors.New("control: non-positive hold tolerance")
	case c.ResweepThresholdDB <= c.HoldToleranceDB:
		return errors.New("control: re-sweep threshold must exceed hold tolerance")
	}
	return nil
}

// TrackerStats counts tier activations and switch spend.
type TrackerStats struct {
	Holds, Refines, Resweeps int
	Switches                 int
}

// Action identifies which tier a Step took.
type Action int

// Tracker actions.
const (
	ActionHold Action = iota
	ActionRefine
	ActionResweep
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionHold:
		return "hold"
	case ActionRefine:
		return "refine"
	default:
		return "re-sweep"
	}
}

// NewTracker builds a tracker over an actuator/sensor pair.
func NewTracker(cfg TrackerConfig, act Actuator, sen Sensor) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if act == nil || sen == nil {
		return nil, errors.New("control: tracker needs an actuator and a sensor")
	}
	return &Tracker{cfg: cfg, act: act, sen: sen}, nil
}

// Stats returns the accumulated tier counts.
func (t *Tracker) Stats() TrackerStats { return t.stats }

// Bias returns the current bias pair.
func (t *Tracker) Bias() (vx, vy float64) { return t.vx, t.vy }

// ReferenceDBm returns the power at the last accepted optimum.
func (t *Tracker) ReferenceDBm() float64 { return t.reference }

// Start performs the initial full sweep.
func (t *Tracker) Start(ctx context.Context) error {
	res, err := CoarseToFine(ctx, t.cfg.Sweep, t.act, t.sen)
	if err != nil {
		return fmt.Errorf("control: tracker start: %w", err)
	}
	t.vx, t.vy = res.BestVx, res.BestVy
	t.reference = res.BestPowerDBm
	t.stats.Switches += res.Switches
	t.stats.Resweeps++
	t.ready = true
	return nil
}

// Step measures the link once and escalates as needed, returning the tier
// taken and the post-step power.
func (t *Tracker) Step(ctx context.Context) (Action, float64, error) {
	if !t.ready {
		return ActionHold, 0, errors.New("control: tracker not started")
	}
	p, err := t.sen.Measure()
	if err != nil {
		return ActionHold, 0, fmt.Errorf("control: tracker measure: %w", err)
	}
	drop := t.reference - p
	switch {
	case drop <= t.cfg.HoldToleranceDB:
		t.stats.Holds++
		// Ratchet the reference upward if the link improved by itself.
		if p > t.reference {
			t.reference = p
		}
		return ActionHold, p, nil
	case drop <= t.cfg.ResweepThresholdDB:
		np, err := t.refine(ctx)
		if err != nil {
			return ActionRefine, p, err
		}
		t.stats.Refines++
		return ActionRefine, np, nil
	default:
		res, err := CoarseToFine(ctx, t.cfg.Sweep, t.act, t.sen)
		if err != nil {
			return ActionResweep, p, fmt.Errorf("control: tracker re-sweep: %w", err)
		}
		t.vx, t.vy = res.BestVx, res.BestVy
		t.reference = res.BestPowerDBm
		t.stats.Switches += res.Switches
		t.stats.Resweeps++
		return ActionResweep, res.BestPowerDBm, nil
	}
}

// refine runs the local grid around the current bias.
func (t *Tracker) refine(ctx context.Context) (float64, error) {
	best := math.Inf(-1)
	bvx, bvy := t.vx, t.vy
	n := t.cfg.RefineSteps
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("control: refine aborted: %w", err)
			}
			vx := t.vx + t.cfg.RefineWindowV*(2*float64(i)/float64(n-1)-1)
			vy := t.vy + t.cfg.RefineWindowV*(2*float64(j)/float64(n-1)-1)
			vx = clamp(vx, t.cfg.Sweep.VMin, t.cfg.Sweep.VMax)
			vy = clamp(vy, t.cfg.Sweep.VMin, t.cfg.Sweep.VMax)
			s, err := measureAt(t.act, t.sen, vx, vy)
			if err != nil {
				return 0, err
			}
			t.stats.Switches++
			if s.PowerDBm > best {
				best, bvx, bvy = s.PowerDBm, s.Vx, s.Vy
			}
		}
	}
	if err := t.act.Apply(bvx, bvy); err != nil {
		return 0, fmt.Errorf("control: refine apply: %w", err)
	}
	t.stats.Switches++
	t.vx, t.vy = bvx, bvy
	t.reference = best
	return best, nil
}

// RefineCost returns the switch budget of one refinement (grid plus the
// final apply) — n²+1 against the full sweep's N·T²+1.
func (c TrackerConfig) RefineCost() int { return c.RefineSteps*c.RefineSteps + 1 }

// TrackingBudget estimates the mean switches/second a deployment spends
// given an observed action mix, at the supply's switch period.
func (c TrackerConfig) TrackingBudget(stats TrackerStats, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(stats.Switches) / elapsed.Seconds()
}
