package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// PowerAt measures received power (dBm) with the receiver element rotated
// to rxAngle radians under bias pair (vx, vy) — the turntable-plus-sweep
// primitive of the §3.4 estimation procedure.
type PowerAt func(rxAngle, vx, vy float64) (float64, error)

// RotationEstimateConfig parameterizes the §3.4 procedure.
type RotationEstimateConfig struct {
	// AngleStepDeg is the turntable scan resolution (degrees).
	AngleStepDeg float64
	// Sweep configures the voltage search used in step 2.
	Sweep SweepConfig
	// ReferenceVx, ReferenceVy is the bias applied while locating the
	// matched orientation θ0 in step 1.
	ReferenceVx, ReferenceVy float64
}

// DefaultRotationEstimateConfig returns a 1° turntable scan with the
// paper's sweep settings.
func DefaultRotationEstimateConfig() RotationEstimateConfig {
	return RotationEstimateConfig{AngleStepDeg: 1, Sweep: DefaultSweepConfig(), ReferenceVx: 15, ReferenceVy: 15}
}

// RotationEstimate is the outcome of the §3.4 procedure.
type RotationEstimate struct {
	// Theta0 is the matched receiver orientation (radians) found in
	// step 1.
	Theta0 float64
	// VMin/VMax are the bias pairs giving minimum and maximum power at
	// θ0 (step 2).
	VMinPair, VMaxPair [2]float64
	// ThetaMin/ThetaMax are the re-matched orientations under those
	// states (step 3).
	ThetaMin, ThetaMax float64
	// MinRotationDeg, MaxRotationDeg are |θ0−θmax| and |θ0−θmin| — the
	// paper defines the minimum rotation from the max-power state and
	// vice versa (Fig. 12c).
	MinRotationDeg, MaxRotationDeg float64
	// Switches counts the actuations consumed.
	Switches int
}

// EstimateRotation runs the three-step procedure of §3.4:
//
//  1. rotate the receiver to find the orientation θ0 of maximum power
//     under a reference bias;
//  2. sweep the bias plane to find the voltage pairs of minimum and
//     maximum received power at θ0;
//  3. under each of those states, re-rotate the receiver to find the new
//     matched orientations; their offsets from θ0 are the achievable
//     minimum and maximum polarization rotation angles.
func EstimateRotation(ctx context.Context, cfg RotationEstimateConfig, measure PowerAt) (RotationEstimate, error) {
	if cfg.AngleStepDeg <= 0 || cfg.AngleStepDeg > 45 {
		return RotationEstimate{}, fmt.Errorf("control: bad angle step %g°", cfg.AngleStepDeg)
	}
	if err := cfg.Sweep.Validate(); err != nil {
		return RotationEstimate{}, err
	}
	if measure == nil {
		return RotationEstimate{}, errors.New("control: nil measurement callback")
	}
	var est RotationEstimate

	// Step 1: find θ0.
	theta0, _, n, err := scanOrientation(ctx, cfg, measure, cfg.ReferenceVx, cfg.ReferenceVy)
	if err != nil {
		return est, fmt.Errorf("control: step 1: %w", err)
	}
	est.Theta0 = theta0
	est.Switches += n

	// Step 2: voltage sweep at θ0 for min and max power states.
	act := ActuatorFunc(func(vx, vy float64) error { return nil })
	var lastVx, lastVy float64
	actTrack := ActuatorFunc(func(vx, vy float64) error { lastVx, lastVy = vx, vy; return act.Apply(vx, vy) })
	minP, maxP := math.Inf(1), math.Inf(-1)
	sen := SensorFunc(func() (float64, error) {
		p, err := measure(theta0, lastVx, lastVy)
		if err != nil {
			return 0, err
		}
		if p < minP {
			minP = p
			est.VMinPair = [2]float64{lastVx, lastVy}
		}
		if p > maxP {
			maxP = p
			est.VMaxPair = [2]float64{lastVx, lastVy}
		}
		return p, nil
	})
	sweepRes, err := CoarseToFine(ctx, cfg.Sweep, actTrack, sen)
	if err != nil {
		return est, fmt.Errorf("control: step 2: %w", err)
	}
	est.Switches += sweepRes.Switches

	// Step 3: re-match the receiver under both states.
	thetaMin, _, n, err := scanOrientation(ctx, cfg, measure, est.VMinPair[0], est.VMinPair[1])
	if err != nil {
		return est, fmt.Errorf("control: step 3 (min state): %w", err)
	}
	est.ThetaMin = thetaMin
	est.Switches += n
	thetaMax, _, n, err := scanOrientation(ctx, cfg, measure, est.VMaxPair[0], est.VMaxPair[1])
	if err != nil {
		return est, fmt.Errorf("control: step 3 (max state): %w", err)
	}
	est.ThetaMax = thetaMax
	est.Switches += n

	est.MaxRotationDeg = foldedDegrees(est.Theta0 - est.ThetaMin)
	est.MinRotationDeg = foldedDegrees(est.Theta0 - est.ThetaMax)
	// The labels follow the paper's convention: the state that maximized
	// power at θ0 needed the least rotation; guarantee min ≤ max.
	if est.MinRotationDeg > est.MaxRotationDeg {
		est.MinRotationDeg, est.MaxRotationDeg = est.MaxRotationDeg, est.MinRotationDeg
	}
	return est, nil
}

// scanOrientation rotates the receiver through 180° and returns the
// orientation of maximum power under the given bias.
func scanOrientation(ctx context.Context, cfg RotationEstimateConfig, measure PowerAt, vx, vy float64) (theta float64, power float64, n int, err error) {
	best := math.Inf(-1)
	bestTheta := 0.0
	for deg := 0.0; deg < 180; deg += cfg.AngleStepDeg {
		if err := ctx.Err(); err != nil {
			return 0, 0, n, err
		}
		th := deg * math.Pi / 180
		p, err := measure(th, vx, vy)
		if err != nil {
			return 0, 0, n, err
		}
		n++
		if p > best {
			best, bestTheta = p, th
		}
	}
	return bestTheta, best, n, nil
}

// foldedDegrees maps an orientation difference (radians) into [0°, 90°]:
// linear polarization orientation is mod 180°, and a rotation of θ and
// 180°−θ are indistinguishable in match power.
func foldedDegrees(rad float64) float64 {
	deg := math.Mod(math.Abs(rad)*180/math.Pi, 180)
	if deg > 90 {
		deg = 180 - deg
	}
	return deg
}

// SweepTimeSummary reports the time-cost comparison the paper makes in
// §3.3: the full scan at 1 V steps takes ~30 s, while Algorithm 1 with
// N=2, T=5 completes in 0.02·N·T² = 1 s.
type SweepTimeSummary struct {
	FullScan     time.Duration
	CoarseToFine time.Duration
	Speedup      float64
}

// CompareSweepTimes computes the summary for a given configuration and
// full-scan step.
func CompareSweepTimes(cfg SweepConfig, fullStepV float64) (SweepTimeSummary, error) {
	if err := cfg.Validate(); err != nil {
		return SweepTimeSummary{}, err
	}
	if fullStepV <= 0 {
		return SweepTimeSummary{}, errors.New("control: non-positive full-scan step")
	}
	stepsPerAxis := int((cfg.VMax-cfg.VMin)/fullStepV) + 1
	full := time.Duration(stepsPerAxis*stepsPerAxis) * cfg.SwitchPeriod
	fast := cfg.TimeCost()
	return SweepTimeSummary{
		FullScan:     full,
		CoarseToFine: fast,
		Speedup:      float64(full) / float64(fast),
	}, nil
}
