package control

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// surfaceTurntable builds a PowerAt callback backed by the real surface
// and channel models: the §3.4 lab bench in software.
func surfaceTurntable(t *testing.T) (PowerAt, *metasurface.Surface) {
	t.Helper()
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	sc := channel.DefaultScene(surf, 0.48)
	sc.Tx.Orientation = 0 // matched setup, as in Fig. 12(b-d)
	return func(rxAngle, vx, vy float64) (float64, error) {
		surf.SetBias(vx, vy)
		sc.Rx.Orientation = rxAngle
		return sc.ReceivedPowerDBm(), nil
	}, surf
}

func TestEstimateRotationOnRealSurface(t *testing.T) {
	measure, _ := surfaceTurntable(t)
	cfg := DefaultRotationEstimateConfig()
	cfg.AngleStepDeg = 2
	est, err := EstimateRotation(context.Background(), cfg, measure)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 12(d): rotation range ≈5°–45° in the matched setup.
	if est.MaxRotationDeg < 25 || est.MaxRotationDeg > 65 {
		t.Errorf("max rotation = %v°, want ≈45°", est.MaxRotationDeg)
	}
	if est.MinRotationDeg > est.MaxRotationDeg {
		t.Error("min rotation exceeds max")
	}
	if est.MinRotationDeg > 25 {
		t.Errorf("min rotation = %v°, want small", est.MinRotationDeg)
	}
	if est.Switches == 0 {
		t.Error("procedure should consume actuations")
	}
}

func TestEstimateRotationValidation(t *testing.T) {
	measure := PowerAt(func(a, x, y float64) (float64, error) { return 0, nil })
	cfg := DefaultRotationEstimateConfig()
	cfg.AngleStepDeg = 0
	if _, err := EstimateRotation(context.Background(), cfg, measure); err == nil {
		t.Error("zero angle step accepted")
	}
	cfg = DefaultRotationEstimateConfig()
	cfg.Sweep.Iterations = 0
	if _, err := EstimateRotation(context.Background(), cfg, measure); err == nil {
		t.Error("bad sweep accepted")
	}
	if _, err := EstimateRotation(context.Background(), DefaultRotationEstimateConfig(), nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestEstimateRotationPropagatesMeasureErrors(t *testing.T) {
	boom := errors.New("turntable jammed")
	measure := PowerAt(func(a, x, y float64) (float64, error) { return 0, boom })
	if _, err := EstimateRotation(context.Background(), DefaultRotationEstimateConfig(), measure); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestEstimateRotationHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	measure := PowerAt(func(a, x, y float64) (float64, error) { return 0, nil })
	if _, err := EstimateRotation(ctx, DefaultRotationEstimateConfig(), measure); err == nil {
		t.Error("canceled context should abort")
	}
}

func TestFoldedDegrees(t *testing.T) {
	cases := []struct{ rad, deg float64 }{
		{0, 0},
		{math.Pi / 4, 45},
		{math.Pi / 2, 90},
		{3 * math.Pi / 4, 45}, // 135° folds to 45°
		{-math.Pi / 4, 45},
		{math.Pi, 0}, // 180° is the same orientation
	}
	for _, c := range cases {
		if got := foldedDegrees(c.rad); math.Abs(got-c.deg) > 1e-9 {
			t.Errorf("foldedDegrees(%v) = %v, want %v", c.rad, got, c.deg)
		}
	}
}

func TestCompareSweepTimesValidation(t *testing.T) {
	if _, err := CompareSweepTimes(SweepConfig{}, 1); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := CompareSweepTimes(DefaultSweepConfig(), 0); err == nil {
		t.Error("zero step accepted")
	}
}
