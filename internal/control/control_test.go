package control

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// quadraticLandscape returns a smooth power surface peaking at (px, py).
func quadraticLandscape(px, py float64) func(vx, vy float64) float64 {
	return func(vx, vy float64) float64 {
		return -20 - 0.08*((vx-px)*(vx-px)+(vy-py)*(vy-py))
	}
}

// landscapeHarness adapts a pure function to Actuator+Sensor.
type landscapeHarness struct {
	f        func(vx, vy float64) float64
	vx, vy   float64
	applies  int
	measures int
}

func (h *landscapeHarness) Apply(vx, vy float64) error {
	h.vx, h.vy = vx, vy
	h.applies++
	return nil
}

func (h *landscapeHarness) Measure() (float64, error) {
	h.measures++
	return h.f(h.vx, h.vy), nil
}

func TestSweepConfigValidate(t *testing.T) {
	if err := DefaultSweepConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SweepConfig{
		{Iterations: 0, Switches: 5, VMin: 0, VMax: 30, SwitchPeriod: time.Millisecond},
		{Iterations: 2, Switches: 1, VMin: 0, VMax: 30, SwitchPeriod: time.Millisecond},
		{Iterations: 2, Switches: 5, VMin: 30, VMax: 0, SwitchPeriod: time.Millisecond},
		{Iterations: 2, Switches: 5, VMin: 0, VMax: 30, SwitchPeriod: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTimeCostMatchesPaperFormula(t *testing.T) {
	// §3.3: time cost is 0.02·N·T² seconds; N=2, T=5 → 1 s.
	cfg := DefaultSweepConfig()
	if got := cfg.TimeCost(); got != time.Second {
		t.Errorf("time cost = %v, want 1 s", got)
	}
}

func TestCoarseToFineFindsQuadraticPeak(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(18, 7)}
	cfg := DefaultSweepConfig()
	cfg.Iterations = 3
	res, err := CoarseToFine(context.Background(), cfg, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestVx-18) > 3 || math.Abs(res.BestVy-7) > 3 {
		t.Errorf("found (%v, %v), want ≈(18, 7)", res.BestVx, res.BestVy)
	}
	// Measurement budget: N·T² per the paper.
	if want := cfg.Iterations * cfg.Switches * cfg.Switches; len(res.Samples) != want {
		t.Errorf("samples = %d, want %d", len(res.Samples), want)
	}
}

func TestCoarseToFineOnRealSurfaceLandscape(t *testing.T) {
	// Drive the actual metasurface + mismatch-link physics: the sweep
	// must find a bias within a few dB of the global best found by a
	// fine exhaustive scan.
	surf := metasurface.MustNew(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	measure := func(vx, vy float64) float64 {
		surf.SetBias(vx, vy)
		m := surf.JonesTransmissive(units.DefaultCarrierHz)
		// Mismatched link: V-pol in, H-pol out.
		e := m.MulVec(vec(0, 1))
		p := real(e.X)*real(e.X) + imag(e.X)*imag(e.X)
		return units.LinearToDB(p)
	}
	h := &landscapeHarness{f: measure}
	res, err := CoarseToFine(context.Background(), DefaultSweepConfig(), h, h)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference.
	best := math.Inf(-1)
	for vx := 0.0; vx <= 30; vx += 0.5 {
		for vy := 0.0; vy <= 30; vy += 0.5 {
			if p := measure(vx, vy); p > best {
				best = p
			}
		}
	}
	if best-res.BestPowerDBm > 3 {
		t.Errorf("sweep found %v dB, exhaustive best %v dB (gap > 3 dB)", res.BestPowerDBm, best)
	}
}

func vec(x, y complex128) (v struct{ X, Y complex128 }) {
	v.X, v.Y = x, y
	return
}

func TestCoarseToFineRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := &landscapeHarness{f: quadraticLandscape(10, 10)}
	if _, err := CoarseToFine(ctx, DefaultSweepConfig(), h, h); err == nil {
		t.Error("canceled context should abort the sweep")
	}
}

func TestCoarseToFinePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	act := ActuatorFunc(func(vx, vy float64) error { return boom })
	sen := SensorFunc(func() (float64, error) { return 0, nil })
	if _, err := CoarseToFine(context.Background(), DefaultSweepConfig(), act, sen); !errors.Is(err, boom) {
		t.Errorf("actuator error not propagated: %v", err)
	}
	act2 := ActuatorFunc(func(vx, vy float64) error { return nil })
	sen2 := SensorFunc(func() (float64, error) { return 0, boom })
	if _, err := CoarseToFine(context.Background(), DefaultSweepConfig(), act2, sen2); !errors.Is(err, boom) {
		t.Errorf("sensor error not propagated: %v", err)
	}
}

func TestFullScanExhaustive(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(12, 24)}
	cfg := DefaultSweepConfig()
	res, err := FullScan(context.Background(), cfg, 1, h, h)
	if err != nil {
		t.Fatal(err)
	}
	// 31×31 grid.
	if len(res.Samples) != 961 {
		t.Errorf("samples = %d, want 961", len(res.Samples))
	}
	if math.Abs(res.BestVx-12) > 0.5 || math.Abs(res.BestVy-24) > 0.5 {
		t.Errorf("full scan found (%v, %v)", res.BestVx, res.BestVy)
	}
	// ~19 s at 50 Hz — the paper's "full scan takes ∼30 s" regime.
	if el := res.Elapsed(20 * time.Millisecond); el < 15*time.Second || el > 40*time.Second {
		t.Errorf("full scan elapsed = %v", el)
	}
}

func TestFullScanGridIndexedNotAccumulated(t *testing.T) {
	// A non-representable step (0.1) accumulates rounding error when the
	// grid is walked as vx += step: after 300 additions the last column
	// lands at 29.999999999999964 > VMax − ε and can drop entirely. The
	// indexed grid (VMin + i·step) must keep every column and land each
	// voltage on the exact indexed value.
	h := &landscapeHarness{f: quadraticLandscape(12, 24)}
	cfg := DefaultSweepConfig()
	res, err := FullScan(context.Background(), cfg, 0.1, h, h)
	if err != nil {
		t.Fatal(err)
	}
	const perAxis = 301 // 0.0, 0.1, …, 30.0
	if want := perAxis * perAxis; len(res.Samples) != want {
		t.Errorf("samples = %d, want %d", len(res.Samples), want)
	}
	// First row of the grid walks Vy over the whole axis: every voltage
	// must be the exact indexed value, including the final column at
	// VMin + 300·0.1 (NOT clamped to a drifted accumulation).
	for j := 0; j < perAxis && j < len(res.Samples); j++ {
		want := cfg.VMin + float64(j)*0.1
		if got := res.Samples[j].Vy; got != want {
			t.Fatalf("sample %d: Vy = %v, want exact %v", j, got, want)
		}
	}
}

func TestFullScanRejectsBadStep(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(1, 1)}
	if _, err := FullScan(context.Background(), DefaultSweepConfig(), 0, h, h); err == nil {
		t.Error("zero step accepted")
	}
}

func TestCoarseToFineBeatsFullScanTime(t *testing.T) {
	sum, err := CompareSweepTimes(DefaultSweepConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CoarseToFine != time.Second {
		t.Errorf("coarse-to-fine = %v", sum.CoarseToFine)
	}
	if sum.Speedup < 15 {
		t.Errorf("speedup = %v, want ≈19×", sum.Speedup)
	}
}

func TestCoordinateDescentOnSmoothLandscape(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(22, 9)}
	res, err := CoordinateDescent(context.Background(), DefaultSweepConfig(), 2, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestVx-22) > 2.5 || math.Abs(res.BestVy-9) > 2.5 {
		t.Errorf("descent found (%v, %v), want ≈(22, 9)", res.BestVx, res.BestVy)
	}
}

func TestCoordinateDescentRejectsBadRounds(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(1, 1)}
	if _, err := CoordinateDescent(context.Background(), DefaultSweepConfig(), 0, h, h); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestSweepLeavesSurfaceAtOptimum(t *testing.T) {
	h := &landscapeHarness{f: quadraticLandscape(18, 6)}
	res, err := CoarseToFine(context.Background(), DefaultSweepConfig(), h, h)
	if err != nil {
		t.Fatal(err)
	}
	if h.vx != res.BestVx || h.vy != res.BestVy {
		t.Errorf("surface left at (%v, %v), best was (%v, %v)", h.vx, h.vy, res.BestVx, res.BestVy)
	}
}
