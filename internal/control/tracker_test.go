package control

import (
	"context"
	"math"
	"testing"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// driftBench wires a tracker to the real surface + channel physics with a
// mutable Tx orientation, simulating a moving device.
type driftBench struct {
	surf  *metasurface.Surface
	scene *channel.Scene
}

func newDriftBench(t *testing.T) *driftBench {
	t.Helper()
	surf, err := metasurface.New(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	if err != nil {
		t.Fatal(err)
	}
	return &driftBench{surf: surf, scene: channel.DefaultScene(surf, 0.48)}
}

func (b *driftBench) actuator() Actuator {
	return ActuatorFunc(func(vx, vy float64) error {
		b.surf.SetBias(vx, vy)
		return nil
	})
}

func (b *driftBench) sensor() Sensor {
	return SensorFunc(func() (float64, error) {
		return b.scene.ReceivedPowerDBm(), nil
	})
}

func TestTrackerConfigValidate(t *testing.T) {
	if err := DefaultTrackerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*TrackerConfig){
		func(c *TrackerConfig) { c.Sweep.Iterations = 0 },
		func(c *TrackerConfig) { c.RefineWindowV = 0 },
		func(c *TrackerConfig) { c.RefineSteps = 1 },
		func(c *TrackerConfig) { c.HoldToleranceDB = 0 },
		func(c *TrackerConfig) { c.ResweepThresholdDB = 0.5 },
	}
	for i, mut := range mutations {
		c := DefaultTrackerConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewTrackerValidation(t *testing.T) {
	b := newDriftBench(t)
	if _, err := NewTracker(DefaultTrackerConfig(), nil, b.sensor()); err == nil {
		t.Error("nil actuator accepted")
	}
	if _, err := NewTracker(TrackerConfig{}, b.actuator(), b.sensor()); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTrackerRequiresStart(t *testing.T) {
	b := newDriftBench(t)
	tr, err := NewTracker(DefaultTrackerConfig(), b.actuator(), b.sensor())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Step(context.Background()); err == nil {
		t.Error("step before start accepted")
	}
}

func TestTrackerHoldsWhenStable(t *testing.T) {
	b := newDriftBench(t)
	tr, err := NewTracker(DefaultTrackerConfig(), b.actuator(), b.sensor())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().Switches
	for i := 0; i < 5; i++ {
		action, _, err := tr.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if action != ActionHold {
			t.Fatalf("stable link triggered %v", action)
		}
	}
	if tr.Stats().Switches != before {
		t.Error("hold tier should spend no switches")
	}
	if tr.Stats().Holds != 5 {
		t.Errorf("holds = %d", tr.Stats().Holds)
	}
}

func TestTrackerRefinesOnMildDrift(t *testing.T) {
	b := newDriftBench(t)
	cfg := DefaultTrackerConfig()
	tr, err := NewTracker(cfg, b.actuator(), b.sensor())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mild drift: rotate the Tx element away from the optimum until the
	// link drops into the refine band (between hold tolerance and the
	// re-sweep threshold). The direction that degrades depends on where
	// the sweep's optimum rotation landed, so probe adaptively.
	ref := tr.ReferenceDBm()
	drifted := false
	for _, sign := range []float64{+1, -1} {
		start := b.scene.Tx.Orientation
		for deg := 4.0; deg <= 40; deg += 4 {
			b.scene.Tx.Orientation = start + sign*units.Radians(deg)
			drop := ref - b.scene.ReceivedPowerDBm()
			if drop > cfg.HoldToleranceDB+0.5 && drop < cfg.ResweepThresholdDB-0.5 {
				drifted = true
				break
			}
		}
		if drifted {
			break
		}
		b.scene.Tx.Orientation = start
	}
	if !drifted {
		t.Skip("could not construct a mild-drift pose for this optimum")
	}
	action, _, err := tr.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionRefine {
		t.Fatalf("mild drift handled by %v, want refine", action)
	}
	// After handling, the next step should hold again.
	action, _, err = tr.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionHold {
		t.Errorf("post-recovery step took %v", action)
	}
}

func TestTrackerResweepsOnSevereDrift(t *testing.T) {
	b := newDriftBench(t)
	tr, err := NewTracker(DefaultTrackerConfig(), b.actuator(), b.sensor())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	refBefore := tr.ReferenceDBm()
	// Severe drift: swing the device a full 60°.
	b.scene.Tx.Orientation -= units.Radians(60)
	action, p, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionResweep {
		t.Fatalf("severe drift handled by %v", action)
	}
	if tr.Stats().Resweeps < 2 { // start + this one
		t.Errorf("resweeps = %d", tr.Stats().Resweeps)
	}
	// The recovered power should be within a few dB of the old optimum
	// (the surface can rotate either way).
	if refBefore-p > 8 {
		t.Errorf("recovered only to %v dBm from %v", p, refBefore)
	}
}

func TestTrackerRefineCheaperThanSweep(t *testing.T) {
	cfg := DefaultTrackerConfig()
	sweepCost := cfg.Sweep.Iterations*cfg.Sweep.Switches*cfg.Sweep.Switches + 1
	if cfg.RefineCost() >= sweepCost {
		t.Errorf("refine cost %d should undercut sweep cost %d", cfg.RefineCost(), sweepCost)
	}
}

func TestTrackerBudget(t *testing.T) {
	cfg := DefaultTrackerConfig()
	stats := TrackerStats{Switches: 100}
	if got := cfg.TrackingBudget(stats, 10e9); math.Abs(got-10) > 1e-9 {
		t.Errorf("budget = %v switches/s", got)
	}
	if cfg.TrackingBudget(stats, 0) != 0 {
		t.Error("zero elapsed should be zero budget")
	}
}

func TestActionString(t *testing.T) {
	if ActionHold.String() != "hold" || ActionRefine.String() != "refine" || ActionResweep.String() != "re-sweep" {
		t.Error("action strings")
	}
}

func TestTrackerArmSwingScenario(t *testing.T) {
	// End-to-end wearable story: a sequence of arm poses; the tracker
	// must keep the link within a few dB of each pose's achievable
	// optimum while spending far fewer switches than re-sweeping every
	// pose.
	b := newDriftBench(t)
	tr, err := NewTracker(DefaultTrackerConfig(), b.actuator(), b.sensor())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	poses := []float64{90, 88, 85, 95, 70, 72, 110, 90}
	for _, deg := range poses {
		b.scene.Tx.Orientation = units.Radians(deg)
		if _, _, err := tr.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stats := tr.Stats()
	everyPoseSweep := (len(poses) + 1) * 51 // sweeps + applies
	if stats.Switches >= everyPoseSweep {
		t.Errorf("tracker spent %d switches; naive re-sweep-every-pose would be %d",
			stats.Switches, everyPoseSweep)
	}
	if stats.Holds == 0 {
		t.Error("expected some holds across small pose changes")
	}
}
