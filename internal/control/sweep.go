// Package control implements LLAMA's centralized controller logic (§3.3–
// §3.4): the coarse-to-fine biasing voltage sweep of Algorithm 1, the
// exhaustive full scan it replaces, the receiver/power-supply
// synchronization of Eq. 13, and the polarization-rotation-degree
// estimation procedure.
//
// The algorithms are expressed over small interfaces (Actuator to apply a
// bias pair, Sensor to obtain a fresh RSSI) so the same code drives the
// in-process simulator, the networked SCPI+UDP stack, and the unit tests.
package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Actuator applies a bias-voltage pair to the surface (directly or through
// the SCPI power supply).
type Actuator interface {
	Apply(vx, vy float64) error
}

// Sensor returns a fresh received-power measurement (dBm) taken under the
// currently applied bias. Implementations block until the measurement
// postdates the last Apply (the synchronization contract of §3.3).
type Sensor interface {
	Measure() (float64, error)
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(vx, vy float64) error

// Apply implements Actuator.
func (f ActuatorFunc) Apply(vx, vy float64) error { return f(vx, vy) }

// SensorFunc adapts a function to the Sensor interface.
type SensorFunc func() (float64, error)

// Measure implements Sensor.
func (f SensorFunc) Measure() (float64, error) { return f() }

// SweepConfig parameterizes Algorithm 1.
type SweepConfig struct {
	// Iterations is N: the number of coarse-to-fine refinement rounds
	// (2 in the paper).
	Iterations int
	// Switches is T: the number of voltage steps per axis per iteration
	// (5 in the paper), giving T² measurements per iteration.
	Switches int
	// VMin, VMax bound the sweep (0–30 V with the paper's supply).
	VMin, VMax float64
	// SwitchPeriod is the per-measurement dwell (20 ms at the supply's
	// 50 Hz switch limit).
	SwitchPeriod time.Duration
}

// DefaultSweepConfig returns the paper's operating point: N=2, T=5,
// 0–30 V at 50 Hz.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Iterations: 2, Switches: 5, VMin: 0, VMax: 30, SwitchPeriod: 20 * time.Millisecond}
}

// Validate reports an error for unusable configurations.
func (c SweepConfig) Validate() error {
	switch {
	case c.Iterations < 1:
		return errors.New("control: sweep needs ≥1 iteration")
	case c.Switches < 2:
		return errors.New("control: sweep needs ≥2 switches per axis")
	case !(c.VMax > c.VMin):
		return fmt.Errorf("control: bad voltage range [%g, %g]", c.VMin, c.VMax)
	case c.SwitchPeriod <= 0:
		return errors.New("control: non-positive switch period")
	}
	return nil
}

// TimeCost returns the sweep duration predicted by the paper's model:
// SwitchPeriod · N · T² (0.02·N·T² seconds at 50 Hz).
func (c SweepConfig) TimeCost() time.Duration {
	return time.Duration(c.Iterations*c.Switches*c.Switches) * c.SwitchPeriod
}

// Sample is one sweep measurement.
type Sample struct {
	Vx, Vy   float64
	PowerDBm float64
}

// Result summarizes a sweep.
type Result struct {
	// BestVx, BestVy is the optimal bias pair found.
	BestVx, BestVy float64
	// BestPowerDBm is the power measured there.
	BestPowerDBm float64
	// Samples is the full measurement history in sweep order.
	Samples []Sample
	// Switches counts actuations (for time accounting).
	Switches int
}

// Elapsed returns the wall/virtual time the sweep consumed at the given
// switch period.
func (r Result) Elapsed(period time.Duration) time.Duration {
	return time.Duration(r.Switches) * period
}

// CoarseToFine runs Algorithm 1: each iteration lays a T×T voltage grid
// over the current search window, measures every combination, then
// shrinks the window to one step around the best cell. ctx aborts the
// sweep between measurements.
func CoarseToFine(ctx context.Context, cfg SweepConfig, act Actuator, sen Sensor) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	loX, hiX := cfg.VMin, cfg.VMax
	loY, hiY := cfg.VMin, cfg.VMax
	res := Result{BestPowerDBm: math.Inf(-1)}
	for n := 0; n < cfg.Iterations; n++ {
		stepX := (hiX - loX) / float64(cfg.Switches)
		stepY := (hiY - loY) / float64(cfg.Switches)
		var itBest Sample
		itBest.PowerDBm = math.Inf(-1)
		for i := 1; i <= cfg.Switches; i++ {
			for j := 1; j <= cfg.Switches; j++ {
				if err := ctx.Err(); err != nil {
					return res, fmt.Errorf("control: sweep aborted: %w", err)
				}
				vx := loX + float64(i)*stepX
				vy := loY + float64(j)*stepY
				s, err := measureAt(act, sen, vx, vy)
				if err != nil {
					return res, err
				}
				res.Samples = append(res.Samples, s)
				res.Switches++
				if s.PowerDBm > itBest.PowerDBm {
					itBest = s
				}
			}
		}
		if itBest.PowerDBm > res.BestPowerDBm {
			res.BestVx, res.BestVy, res.BestPowerDBm = itBest.Vx, itBest.Vy, itBest.PowerDBm
		}
		// Narrow to one step around the winner (Algorithm 1's
		// return Vr = [v−Vs, v]); clamp to the legal range.
		loX = clamp(itBest.Vx-stepX, cfg.VMin, cfg.VMax)
		hiX = clamp(itBest.Vx, cfg.VMin, cfg.VMax)
		loY = clamp(itBest.Vy-stepY, cfg.VMin, cfg.VMax)
		hiY = clamp(itBest.Vy, cfg.VMin, cfg.VMax)
		if hiX <= loX {
			hiX = loX + stepX/float64(cfg.Switches)
		}
		if hiY <= loY {
			hiY = loY + stepY/float64(cfg.Switches)
		}
	}
	// Leave the surface at the optimum.
	if err := act.Apply(res.BestVx, res.BestVy); err != nil {
		return res, fmt.Errorf("control: applying optimum: %w", err)
	}
	res.Switches++
	return res, nil
}

// ScanVoltages returns the per-axis voltage grid a FullScan with this
// config and step visits: VMin + i·stepV for every i whose voltage fits
// the range. Indexing (rather than accumulating vx += stepV) keeps every
// scan of the same range on bit-identical voltages — accumulated
// rounding error on non-representable steps (0.1, …) can drop or
// duplicate the last grid column. The epsilon admits a last column that
// lands within float noise of VMax. Exported so sweep runners can warm
// response caches for the exact voltages a scan will visit.
func ScanVoltages(cfg SweepConfig, stepV float64) []float64 {
	steps := int(math.Floor((cfg.VMax-cfg.VMin)/stepV + 1e-9))
	out := make([]float64, steps+1)
	for i := range out {
		out[i] = cfg.VMin + float64(i)*stepV
	}
	return out
}

// FullScan measures every combination on a uniform grid with the given
// voltage step — the ~30 s exhaustive baseline the paper's Algorithm 1
// replaces (§3.3). It returns the complete grid for heatmap rendering
// (Figs. 15 and 21).
func FullScan(ctx context.Context, cfg SweepConfig, stepV float64, act Actuator, sen Sensor) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if stepV <= 0 {
		return Result{}, errors.New("control: non-positive scan step")
	}
	res := Result{BestPowerDBm: math.Inf(-1)}
	voltages := ScanVoltages(cfg, stepV)
	for _, vx := range voltages {
		for _, vy := range voltages {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("control: scan aborted: %w", err)
			}
			s, err := measureAt(act, sen, vx, vy)
			if err != nil {
				return res, err
			}
			res.Samples = append(res.Samples, s)
			res.Switches++
			if s.PowerDBm > res.BestPowerDBm {
				res.BestVx, res.BestVy, res.BestPowerDBm = s.Vx, s.Vy, s.PowerDBm
			}
		}
	}
	if err := act.Apply(res.BestVx, res.BestVy); err != nil {
		return res, fmt.Errorf("control: applying optimum: %w", err)
	}
	res.Switches++
	return res, nil
}

// CoordinateDescent is the ablation comparator: golden-section search on
// one axis at a time, alternating for rounds. It needs fewer switches
// than Algorithm 1 on smooth landscapes but can stall on the ridged
// power surfaces the metasurface produces.
func CoordinateDescent(ctx context.Context, cfg SweepConfig, rounds int, act Actuator, sen Sensor) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if rounds < 1 {
		return Result{}, errors.New("control: descent needs ≥1 round")
	}
	res := Result{BestPowerDBm: math.Inf(-1)}
	vx := (cfg.VMin + cfg.VMax) / 2
	vy := (cfg.VMin + cfg.VMax) / 2
	const phi = 0.6180339887498949
	search := func(measure func(v float64) (float64, error)) (float64, error) {
		lo, hi := cfg.VMin, cfg.VMax
		a := hi - phi*(hi-lo)
		b := lo + phi*(hi-lo)
		fa, err := measure(a)
		if err != nil {
			return 0, err
		}
		fb, err := measure(b)
		if err != nil {
			return 0, err
		}
		for it := 0; it < 12 && hi-lo > 0.5; it++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if fa < fb { // maximizing
				lo = a
				a, fa = b, fb
				b = lo + phi*(hi-lo)
				if fb, err = measure(b); err != nil {
					return 0, err
				}
			} else {
				hi = b
				b, fb = a, fa
				a = hi - phi*(hi-lo)
				if fa, err = measure(a); err != nil {
					return 0, err
				}
			}
		}
		return (lo + hi) / 2, nil
	}
	for r := 0; r < rounds; r++ {
		nx, err := search(func(v float64) (float64, error) {
			s, err := measureAt(act, sen, v, vy)
			if err != nil {
				return 0, err
			}
			res.Samples = append(res.Samples, s)
			res.Switches++
			if s.PowerDBm > res.BestPowerDBm {
				res.BestVx, res.BestVy, res.BestPowerDBm = s.Vx, s.Vy, s.PowerDBm
			}
			return s.PowerDBm, nil
		})
		if err != nil {
			return res, err
		}
		vx = nx
		ny, err := search(func(v float64) (float64, error) {
			s, err := measureAt(act, sen, vx, v)
			if err != nil {
				return 0, err
			}
			res.Samples = append(res.Samples, s)
			res.Switches++
			if s.PowerDBm > res.BestPowerDBm {
				res.BestVx, res.BestVy, res.BestPowerDBm = s.Vx, s.Vy, s.PowerDBm
			}
			return s.PowerDBm, nil
		})
		if err != nil {
			return res, err
		}
		vy = ny
	}
	if err := act.Apply(res.BestVx, res.BestVy); err != nil {
		return res, fmt.Errorf("control: applying optimum: %w", err)
	}
	res.Switches++
	return res, nil
}

func measureAt(act Actuator, sen Sensor, vx, vy float64) (Sample, error) {
	if err := act.Apply(vx, vy); err != nil {
		return Sample{}, fmt.Errorf("control: apply (%g, %g): %w", vx, vy, err)
	}
	p, err := sen.Measure()
	if err != nil {
		return Sample{}, fmt.Errorf("control: measure at (%g, %g): %w", vx, vy, err)
	}
	return Sample{Vx: vx, Vy: vy, PowerDBm: p}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
