package control

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/llama-surface/llama/internal/telemetry"
)

// SyncConfig implements the paper's Eq. (13) sample-labelling scheme: the
// receiver's sample clock and the supply's switch clock are both constant
// rate, so a sample at time t can be attributed to the voltage state that
// was active, without any dedicated synchronization hardware.
type SyncConfig struct {
	// Vx0, Vy0 are the sweep's initial voltages at switch index 0.
	Vx0, Vy0 float64
	// VDx, VDy are the per-switch voltage increments (the VD terms).
	VDx, VDy float64
	// SwitchPeriod is Ts, the dwell per voltage state.
	SwitchPeriod time.Duration
	// StartOffset is td, the receiver-vs-supply start time difference.
	StartOffset time.Duration
	// States is the total number of voltage states in the schedule;
	// times beyond the schedule clamp to the last state.
	States int
}

// Validate reports an error for unusable sync parameters.
func (s SyncConfig) Validate() error {
	if s.SwitchPeriod <= 0 {
		return errors.New("control: non-positive switch period")
	}
	if s.States < 1 {
		return errors.New("control: sync needs ≥1 state")
	}
	return nil
}

// StateIndex returns the voltage-state index active at receiver time t.
// Samples before the schedule start map to state 0.
func (s SyncConfig) StateIndex(t time.Duration) int {
	rel := t - s.StartOffset
	if rel < 0 {
		return 0
	}
	idx := int(rel / s.SwitchPeriod)
	if idx >= s.States {
		idx = s.States - 1
	}
	return idx
}

// VoltageAt returns the (Vx, Vy) state active at receiver time t — Eq. 13
// evaluated at the labelled switch index.
func (s SyncConfig) VoltageAt(t time.Duration) (vx, vy float64) {
	k := float64(s.StateIndex(t))
	return s.Vx0 + s.VDx*k, s.Vy0 + s.VDy*k
}

// LabelReports groups RSSI reports by voltage state and returns the mean
// power (dBm domain averaged in linear power, as the paper measures) per
// state. States with no samples hold NaN.
func (s SyncConfig) LabelReports(reports []telemetry.Report) []float64 {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	sums := make([]float64, s.States)
	counts := make([]int, s.States)
	for _, r := range reports {
		idx := s.StateIndex(r.Timestamp)
		sums[idx] += math.Pow(10, r.RSSIdBm/10) // mW
		counts[idx]++
	}
	out := make([]float64, s.States)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = 10 * math.Log10(sums[i]/float64(counts[i]))
	}
	return out
}

// EstimateOffset recovers td from a labelled sweep recording: it scans
// candidate offsets over one switch period and picks the one minimizing
// the within-state power variance (samples grouped correctly are
// homogeneous; a misaligned grouping mixes adjacent states). resolution
// sets the scan granularity.
func (s SyncConfig) EstimateOffset(reports []telemetry.Report, resolution time.Duration) (time.Duration, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if resolution <= 0 || resolution > s.SwitchPeriod {
		return 0, fmt.Errorf("control: bad offset resolution %v", resolution)
	}
	if len(reports) == 0 {
		return 0, errors.New("control: no reports to align")
	}
	best := time.Duration(0)
	bestScore := math.Inf(1)
	for off := time.Duration(0); off < s.SwitchPeriod; off += resolution {
		trial := s
		trial.StartOffset = off
		score := trial.withinStateVariance(reports)
		if score < bestScore {
			bestScore, best = score, off
		}
	}
	return best, nil
}

// withinStateVariance sums the per-state power variance (linear domain).
func (s SyncConfig) withinStateVariance(reports []telemetry.Report) float64 {
	sums := make([]float64, s.States)
	sqs := make([]float64, s.States)
	counts := make([]float64, s.States)
	for _, r := range reports {
		idx := s.StateIndex(r.Timestamp)
		p := math.Pow(10, r.RSSIdBm/10)
		sums[idx] += p
		sqs[idx] += p * p
		counts[idx]++
	}
	var total float64
	for i := range sums {
		if counts[i] < 2 {
			continue
		}
		mean := sums[i] / counts[i]
		total += sqs[i]/counts[i] - mean*mean
	}
	return total
}
