// Package devices models the commodity IoT endpoints the paper evaluates
// with (Figs. 2 and 20): a Wi-Fi AP talking to an ESP8266-based Arduino,
// a BLE wearable talking to a Raspberry Pi 3, and the USRP N210 lab
// transceiver of the controlled experiments.
//
// Each device pairs an antenna model with protocol-level behaviour that
// shapes the RSSI distributions: transmit power, RSSI register
// quantization, report rate, and orientation jitter (a wearable on a
// moving wrist does not hold a fixed polarization).
package devices

import (
	"fmt"
	"math/rand"

	"github.com/llama-surface/llama/internal/antenna"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/units"
)

// Radio describes one endpoint device.
type Radio struct {
	// Name identifies the device.
	Name string
	// Antenna is the element model.
	Antenna antenna.Model
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// FreqHz is the operating carrier.
	FreqHz float64
	// RSSIStepDB is the RSSI register quantization (1 dB for Wi-Fi
	// chipsets, coarser for BLE stacks).
	RSSIStepDB float64
	// RSSINoiseDB is the per-report measurement jitter (standard
	// deviation, dB) of the device's RSSI estimator.
	RSSINoiseDB float64
	// OrientationJitterRad is the random wobble of the device's antenna
	// orientation between reports (wearables move; wall plugs do not).
	OrientationJitterRad float64
}

// Prefab devices matching the paper's hardware list.
var (
	// USRPN210 with a UBX-40 daughterboard: the lab transceiver (§4).
	USRPN210 = Radio{
		Name: "USRP N210 + UBX-40", Antenna: antenna.DirectionalPatch,
		TxPowerDBm: 10, FreqHz: units.DefaultCarrierHz,
		RSSIStepDB: 0.01, RSSINoiseDB: 0.1,
	}
	// NetgearAP is the 802.11g access point [2].
	NetgearAP = Radio{
		Name: "Netgear N300 AP", Antenna: antenna.HalfWaveDipole,
		TxPowerDBm: 16, FreqHz: 2.442e9,
		RSSIStepDB: 1, RSSINoiseDB: 1.2,
	}
	// ESP8266 is the cheap Arduino Wi-Fi board [11].
	ESP8266 = Radio{
		Name: "ESP8266 Arduino", Antenna: antenna.ESP8266PCB,
		TxPowerDBm: 14, FreqHz: 2.442e9,
		RSSIStepDB: 1, RSSINoiseDB: 1.5,
	}
	// MetaMotionR is the BLE wearable sensor [23].
	MetaMotionR = Radio{
		Name: "MetaMotionR wearable", Antenna: antenna.WearableBLE,
		TxPowerDBm: 0, FreqHz: 2.426e9,
		RSSIStepDB: 2, RSSINoiseDB: 1.8,
		OrientationJitterRad: 0.15,
	}
	// RaspberryPi3 is the BLE receiver [29].
	RaspberryPi3 = Radio{
		Name: "Raspberry Pi 3", Antenna: antenna.HalfWaveDipole,
		TxPowerDBm: 8, FreqHz: 2.426e9,
		RSSIStepDB: 1, RSSINoiseDB: 1.0,
	}
)

// Validate reports an error for unusable radios.
func (r Radio) Validate() error {
	if err := r.Antenna.Validate(); err != nil {
		return fmt.Errorf("devices: %s: %w", r.Name, err)
	}
	switch {
	case r.FreqHz <= 0:
		return fmt.Errorf("devices: %s: non-positive frequency", r.Name)
	case r.RSSIStepDB < 0 || r.RSSINoiseDB < 0:
		return fmt.Errorf("devices: %s: negative RSSI error terms", r.Name)
	case r.OrientationJitterRad < 0:
		return fmt.Errorf("devices: %s: negative orientation jitter", r.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (r Radio) String() string {
	return fmt.Sprintf("%s (%.0f dBm @ %.3f GHz, %s)", r.Name, r.TxPowerDBm, r.FreqHz/1e9, r.Antenna.Name)
}

// LinkConfig describes a device-to-device measurement campaign.
type LinkConfig struct {
	// Tx, Rx are the endpoints.
	Tx, Rx Radio
	// TxOrientation, RxOrientation are the nominal element angles.
	TxOrientation, RxOrientation float64
	// Scene is the underlying channel configuration; Tx power, carrier
	// and antennas are overridden from the radios.
	Scene *channel.Scene
}

// NewLink builds a LinkConfig over a base scene.
func NewLink(tx, rx Radio, txOrient, rxOrient float64, scene *channel.Scene) (*LinkConfig, error) {
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	if err := rx.Validate(); err != nil {
		return nil, err
	}
	if scene == nil {
		return nil, fmt.Errorf("devices: nil scene")
	}
	return &LinkConfig{Tx: tx, Rx: rx, TxOrientation: txOrient, RxOrientation: rxOrient, Scene: scene}, nil
}

// SampleRSSI simulates n RSSI reports over the link: each report re-rolls
// orientation jitter, evaluates the physical channel, then applies the
// device's estimator noise and register quantization. The result is the
// raw material of Fig. 2 / Fig. 20's PDFs.
func (l *LinkConfig) SampleRSSI(n int, rng *rand.Rand) []float64 {
	if n <= 0 {
		panic("devices: non-positive sample count")
	}
	if rng == nil {
		panic("devices: nil RNG")
	}
	sc := *l.Scene // shallow working copy; Surface pointer shared
	sc.FreqHz = l.Tx.FreqHz
	sc.TxPowerW = units.DBmToWatts(l.Tx.TxPowerDBm)
	sc.Tx.Antenna = l.Tx.Antenna
	sc.Rx.Antenna = l.Rx.Antenna
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sc.Tx.Orientation = l.TxOrientation + l.Tx.OrientationJitterRad*rng.NormFloat64()
		sc.Rx.Orientation = l.RxOrientation + l.Rx.OrientationJitterRad*rng.NormFloat64()
		rssi := sc.ReceivedPowerDBm()
		rssi += l.Rx.RSSINoiseDB * rng.NormFloat64()
		if l.Rx.RSSIStepDB > 0 {
			steps := rssi / l.Rx.RSSIStepDB
			rssi = l.Rx.RSSIStepDB * float64(int(steps+copysign05(steps)))
		}
		out[i] = rssi
	}
	return out
}

// copysign05 returns ±0.5 matching the sign of x, for round-half-away
// quantization without importing math for one call site.
func copysign05(x float64) float64 {
	if x < 0 {
		return -0.5
	}
	return 0.5
}
