package devices

import (
	"math"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

func TestPrefabRadiosValidate(t *testing.T) {
	for _, r := range []Radio{USRPN210, NetgearAP, ESP8266, MetaMotionR, RaspberryPi3} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}

func TestValidateRejectsBadRadios(t *testing.T) {
	bad := []Radio{
		{Name: "freq", Antenna: ESP8266.Antenna, FreqHz: 0},
		{Name: "rssi", Antenna: ESP8266.Antenna, FreqHz: 2.4e9, RSSIStepDB: -1},
		{Name: "jit", Antenna: ESP8266.Antenna, FreqHz: 2.4e9, OrientationJitterRad: -0.1},
		{Name: "ant", Antenna: ESP8266.Antenna, FreqHz: 2.4e9},
	}
	bad[3].Antenna.GainDBi = 99
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s should fail", r.Name)
		}
	}
}

func TestNewLinkValidation(t *testing.T) {
	sc := channel.DefaultScene(nil, 2.0)
	if _, err := NewLink(NetgearAP, ESP8266, 0, math.Pi/2, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLink(NetgearAP, ESP8266, 0, 0, nil); err == nil {
		t.Error("nil scene accepted")
	}
	badRx := ESP8266
	badRx.FreqHz = 0
	if _, err := NewLink(NetgearAP, badRx, 0, 0, sc); err == nil {
		t.Error("bad radio accepted")
	}
}

func TestFig2MismatchGap(t *testing.T) {
	// Fig. 2(a): the Wi-Fi link's matched and mismatched RSSI
	// distributions are separated by ≈10 dB.
	sc := channel.DefaultScene(nil, 2.0)
	rng := simclock.RNG(1, "fig2")
	matched, err := NewLink(NetgearAP, ESP8266, 0, 0, sc)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := NewLink(NetgearAP, ESP8266, 0, math.Pi/2, sc)
	if err != nil {
		t.Fatal(err)
	}
	mm, _ := signal.MeanAndStd(matched.SampleRSSI(600, rng))
	xm, _ := signal.MeanAndStd(mismatched.SampleRSSI(600, rng))
	gap := mm - xm
	if gap < 8 || gap > 25 {
		t.Errorf("Wi-Fi match/mismatch gap = %v dB, want ≈10–15", gap)
	}
}

func TestFig2BLEGap(t *testing.T) {
	// Fig. 2(b): BLE wearable ↔ RPi.
	sc := channel.DefaultScene(nil, 2.0)
	sc.Env = channel.Laboratory(3, 6) // the BLE benchmark ran indoors
	rng := simclock.RNG(2, "fig2b")
	matched, err := NewLink(MetaMotionR, RaspberryPi3, 0, 0, sc)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := NewLink(MetaMotionR, RaspberryPi3, 0, math.Pi/2, sc)
	if err != nil {
		t.Fatal(err)
	}
	mm, _ := signal.MeanAndStd(matched.SampleRSSI(600, rng))
	xm, _ := signal.MeanAndStd(mismatched.SampleRSSI(600, rng))
	if gap := mm - xm; gap < 5 {
		t.Errorf("BLE gap = %v dB, want ≥ 5 (Fig. 2b shows ≈10)", gap)
	}
}

func TestRSSIQuantization(t *testing.T) {
	sc := channel.DefaultScene(nil, 1.0)
	rx := ESP8266
	rx.RSSIStepDB = 1
	rx.RSSINoiseDB = 0
	link, err := NewLink(NetgearAP, rx, 0, 0, sc)
	if err != nil {
		t.Fatal(err)
	}
	rng := simclock.RNG(4, "quant")
	for _, v := range link.SampleRSSI(50, rng) {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			t.Fatalf("RSSI %v not quantized to 1 dB", v)
		}
	}
}

func TestWearableJitterWidensDistribution(t *testing.T) {
	sc := channel.DefaultScene(nil, 1.5)
	rng := simclock.RNG(5, "jitter")
	still := MetaMotionR
	still.OrientationJitterRad = 0
	moving := MetaMotionR // 0.15 rad wobble
	linkStill, err := NewLink(still, RaspberryPi3, 0, math.Pi/4, sc)
	if err != nil {
		t.Fatal(err)
	}
	linkMoving, err := NewLink(moving, RaspberryPi3, 0, math.Pi/4, sc)
	if err != nil {
		t.Fatal(err)
	}
	_, sdStill := signal.MeanAndStd(linkStill.SampleRSSI(800, rng))
	_, sdMoving := signal.MeanAndStd(linkMoving.SampleRSSI(800, rng))
	if !(sdMoving > sdStill) {
		t.Errorf("moving wearable std %v should exceed still %v", sdMoving, sdStill)
	}
}

func TestSurfaceClosesFig20Gap(t *testing.T) {
	// Fig. 20: with the surface at a good bias, the mismatched IoT link
	// approaches the matched distribution.
	surf := metasurface.MustNew(metasurface.OptimizedFR4Design(units.DefaultCarrierHz))
	scSurf := channel.DefaultScene(surf, 2.0)
	scBare := channel.DefaultScene(nil, 2.0)
	rng := simclock.RNG(6, "fig20")

	mismatchBare, err := NewLink(NetgearAP, ESP8266, 0, math.Pi/2, scBare)
	if err != nil {
		t.Fatal(err)
	}
	mismatchSurf, err := NewLink(NetgearAP, ESP8266, 0, math.Pi/2, scSurf)
	if err != nil {
		t.Fatal(err)
	}
	// Find a good bias with a coarse scan.
	best := math.Inf(-1)
	var bvx, bvy float64
	for vx := 0.0; vx <= 30; vx += 3 {
		for vy := 0.0; vy <= 30; vy += 3 {
			surf.SetBias(vx, vy)
			if p := scSurf.ReceivedPowerDBm(); p > best {
				best, bvx, bvy = p, vx, vy
			}
		}
	}
	surf.SetBias(bvx, bvy)
	mBare, _ := signal.MeanAndStd(mismatchBare.SampleRSSI(500, rng))
	mSurf, _ := signal.MeanAndStd(mismatchSurf.SampleRSSI(500, rng))
	if gain := mSurf - mBare; gain < 6 {
		t.Errorf("surface gain on IoT link = %v dB, want ≥ 6 (Fig. 20 shows ≈10)", gain)
	}
}

func TestSampleRSSIPanics(t *testing.T) {
	sc := channel.DefaultScene(nil, 1.0)
	link, err := NewLink(NetgearAP, ESP8266, 0, 0, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { link.SampleRSSI(0, simclock.RNG(1, "x")) },
		func() { link.SampleRSSI(10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStringer(t *testing.T) {
	if !strings.Contains(ESP8266.String(), "ESP8266") {
		t.Errorf("String = %q", ESP8266.String())
	}
}
