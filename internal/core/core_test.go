package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/psu"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.TxPowerW != 10e-3 || cfg.SamplesPerMeasure != 256 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.SwitchPeriod != psu.MinSwitchInterval {
		t.Errorf("switch period = %v", cfg.SwitchPeriod)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	bad := Config{Seed: 1}
	bad.Design = metasurface.OptimizedFR4Design(2.44e9)
	bad.Design.BFSLayers = 0
	if _, err := NewSystem(bad); err == nil {
		t.Error("invalid design accepted")
	}
	geomBad := Config{Seed: 1, Geom: channel.Geometry{TxRx: -1, TxSurface: 1, SurfaceRx: 1}}
	if _, err := NewSystem(geomBad); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestActuatorAdvancesVirtualTime(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	act := sys.Actuator()
	start := sys.Clock.Now()
	if err := act.Apply(5, 7); err != nil {
		t.Fatal(err)
	}
	if got := sys.Clock.Now() - start; got != psu.MinSwitchInterval {
		t.Errorf("actuation advanced %v, want %v", got, psu.MinSwitchInterval)
	}
	vx, vy := sys.Surface.Bias()
	if vx != 5 || vy != 7 {
		t.Errorf("surface bias = (%v, %v)", vx, vy)
	}
}

func TestActuatorRespectsSupplyRate(t *testing.T) {
	// Two applies in a row must both succeed: the dwell between them
	// satisfies the 50 Hz limit.
	sys, err := NewSystem(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	act := sys.Actuator()
	for i := 0; i < 5; i++ {
		if err := act.Apply(float64(i*3), float64(30-i*3)); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

func TestMeasureRSSITracksScene(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Actuator().Apply(2, 15); err != nil {
		t.Fatal(err)
	}
	// The block estimate should sit near the scene's analytic power
	// (within estimator noise).
	want := sys.CurrentDBm()
	got := sys.MeasureRSSI()
	if math.Abs(got-want) > 2.5 {
		t.Errorf("RSSI estimate %v dBm vs analytic %v dBm", got, want)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Optimize(context.Background(), control.DefaultSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	gain := sys.CurrentDBm() - sys.BaselineDBm()
	if gain < 6 {
		t.Errorf("closed-loop gain = %v dB, want ≥ 6 (paper: up to 15)", gain)
	}
	// Virtual time cost matches the paper's 0.02·N·T² = 1 s model (plus
	// the final apply).
	if el := res.Elapsed(sys.Config().SwitchPeriod); el < time.Second || el > 1200*time.Millisecond {
		t.Errorf("sweep took %v of virtual time, want ≈1 s", el)
	}
}

func TestFullScanEndToEnd(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.FullScan(context.Background(), control.DefaultSweepConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 49 {
		t.Errorf("samples = %d, want 7×7", len(res.Samples))
	}
}

func TestNetworkedSystemEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ns, err := StartNetworked(ctx, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	idn, err := ns.InstrumentID()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(idn, "2230G") {
		t.Errorf("IDN = %q", idn)
	}

	cfg := control.DefaultSweepConfig()
	res, err := ns.Optimize(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPowerDBm == 0 || len(res.Samples) != cfg.Iterations*cfg.Switches*cfg.Switches {
		t.Errorf("networked sweep shape: %d samples, best %v dBm", len(res.Samples), res.BestPowerDBm)
	}
	gain := ns.CurrentDBm() - ns.BaselineDBm()
	if gain < 5 {
		t.Errorf("networked closed-loop gain = %v dB, want ≥ 5", gain)
	}
	if ns.LostReports() != 0 {
		t.Errorf("lost %d telemetry reports on loopback", ns.LostReports())
	}
}

func TestNetworkedSystemClosesCleanly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ns, err := StartNetworked(ctx, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
